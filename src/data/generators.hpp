#pragma once
/// \file generators.hpp
/// \brief Synthetic dataset generators.
///
/// `uniform_u64` is the paper's exact experimental workload (§3: "Each
/// process generated 2²² random points independently between 0 and
/// 2³² − 1").  The labeled/regression generators back the ML examples the
/// paper's introduction motivates, and the duplicate-heavy generator
/// stresses the tie-breaking path.

#include <cstdint>
#include <vector>

#include "data/point.hpp"
#include "rng/rng.hpp"

namespace dknn {

/// `count` uniform values in [lo, hi] (defaults: the paper's [0, 2³² − 1]).
[[nodiscard]] std::vector<Value> uniform_u64(std::size_t count, Rng& rng, Value lo = 0,
                                             Value hi = (1ULL << 32) - 1);

/// `count` values drawn from only `distinct` candidates — many exact
/// duplicates, exercising the (distance, id) tie-break everywhere.
[[nodiscard]] std::vector<Value> duplicate_heavy_u64(std::size_t count, std::size_t distinct,
                                                     Rng& rng);

/// Parameters for the Gaussian-mixture classification generator.
struct ClusterSpec {
  std::size_t dim = 2;
  std::uint32_t clusters = 3;
  double center_box = 100.0;  ///< cluster centers uniform in [-box, box]^d
  double spread = 3.0;        ///< per-coordinate stddev within a cluster
};

/// A Gaussian mixture with *fixed* centers: construct once, then draw any
/// number of train/test samples from the same population (drawing train and
/// test through separate `gaussian_clusters` calls would re-randomize the
/// centers and make labels incomparable).
class GaussianMixture {
public:
  /// Draws `spec.clusters` centers uniformly in [-box, box]^dim.
  GaussianMixture(const ClusterSpec& spec, Rng& rng);

  /// Samples labeled points: label = cluster index.
  [[nodiscard]] std::vector<LabeledPoint> sample(std::size_t count, Rng& rng) const;

  [[nodiscard]] const std::vector<PointD>& centers() const { return centers_; }
  [[nodiscard]] const ClusterSpec& spec() const { return spec_; }

private:
  ClusterSpec spec_;
  std::vector<PointD> centers_;
};

/// Labeled Gaussian mixture: label = cluster index.  Convenience for
/// one-shot datasets; draws fresh centers each call (see GaussianMixture
/// for train/test splits).
[[nodiscard]] std::vector<LabeledPoint> gaussian_clusters(std::size_t count,
                                                          const ClusterSpec& spec, Rng& rng);

/// Regression synthetic: y = Σ_j sin(x_j) + x_0/2 + noise, x uniform in
/// [-range, range]^d. Smooth enough that ℓ-NN regression tracks it.
[[nodiscard]] std::vector<RegressionPoint> regression_dataset(std::size_t count, std::size_t dim,
                                                              double range, double noise_stddev,
                                                              Rng& rng);

/// The noiseless target function used by regression_dataset (for test
/// error measurement).
[[nodiscard]] double regression_truth(const PointD& x);

/// `count` uniform points in [-range, range]^dim.
[[nodiscard]] std::vector<PointD> uniform_points(std::size_t count, std::size_t dim, double range,
                                                 Rng& rng);

}  // namespace dknn

#pragma once
/// \file validate.hpp
/// \brief Centralized precondition validators shared by every query entry
///        path — the one place the error taxonomy and texts live.
///
/// Before the KnnService facade, each entry style (the per-query AoS
/// functors, the fused batch kernels, the kd-hybrid, the serve snapshot
/// path, the front end) carried its own ad-hoc DKNN_REQUIRE with its own
/// wording, so the same user mistake — a query of the wrong dimension, an
/// ℓ of zero — failed with a different message depending on which door it
/// walked through.  These helpers give every path the *same* typed error
/// with the *same* text (tests/test_service.cpp asserts the exact strings
/// across the scalar, vector, serve, and facade entries).
///
/// Taxonomy: everything derives from InvariantError (support/panic.hpp),
/// so pre-existing EXPECT_THROW(…, InvariantError) tests and catch sites
/// keep working; the subtypes exist so callers can discriminate.
///
///   PreconditionError            bad caller input (base)
///   ├── DimensionMismatchError   query dimension ≠ dataset dimension
///   └── InvalidEllError          ℓ = 0 where an answer is required
///
/// ℓ-semantics note: *scoring* an ℓ of zero is well-defined (empty local
/// top-ℓ slots — ParityFuzz.EllZeroYieldsEmptySlots pins it) and the
/// protocol runners select nothing (KnnEdge.EllZeroSelectsNothing), so
/// those paths stay permissive.  Paths that hand a caller an *answer* —
/// the KnnService facade and the serve front end — require ℓ ≥ 1 through
/// require_positive_ell so the failure is typed and worded identically.

#include <cstddef>
#include <cstdint>
#include <string>

#include "support/panic.hpp"

namespace dknn {

/// Base class of all caller-input precondition failures.
class PreconditionError : public InvariantError {
 public:
  using InvariantError::InvariantError;
};

/// A query's dimension does not match the dataset it is scored against.
class DimensionMismatchError final : public PreconditionError {
 public:
  using PreconditionError::PreconditionError;
};

/// ℓ = 0 handed to a path that must produce an answer.
class InvalidEllError final : public PreconditionError {
 public:
  using PreconditionError::PreconditionError;
};

/// The exact text every dimension-mismatch failure carries (exposed so
/// tests can assert it without duplicating the format).
[[nodiscard]] std::string dimension_mismatch_text(std::size_t expected, std::size_t got);

/// The exact text every ℓ-must-be-positive failure carries.
[[nodiscard]] const char* positive_ell_text();

/// Throws DimensionMismatchError unless got == expected.  `expected` is
/// the dataset's dimension, `got` the query's.
void require_query_dim(std::size_t expected, std::size_t got);

/// Throws InvalidEllError unless ell >= 1.
void require_positive_ell(std::uint64_t ell);

}  // namespace dknn

#include "data/simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "support/panic.hpp"

// DKNN_SIMD_X86 is defined (by CMake, for the dknn target only) exactly
// when kernels_avx2.cpp / kernels_avx512.cpp are part of the build, so the
// references below always link.  __builtin_cpu_supports additionally
// verifies the *running* CPU and the OS-enabled XSAVE state, which is what
// makes a DKNN_NATIVE_ARCH=OFF binary safe to migrate across machines.

namespace dknn::simd {
namespace {

bool cpu_supports(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return true;
#if defined(DKNN_SIMD_X86)
    case Isa::Avx2: return __builtin_cpu_supports("avx2") != 0;
    case Isa::Avx512: return __builtin_cpu_supports("avx512f") != 0;
#else
    case Isa::Avx2:
    case Isa::Avx512: return false;
#endif
  }
  return false;
}

/// DKNN_FORCE_ISA, decoded once: -1 = unset, else the Isa value.  A bad or
/// unsupported value panics — a forced-ISA run that silently fell back
/// would invalidate whatever the caller was measuring or testing.
int env_override() {
  static const int value = [] {
    const char* env = std::getenv("DKNN_FORCE_ISA");
    if (env == nullptr || *env == '\0') return -1;
    const std::optional<Isa> isa = parse_isa(env);
    if (!isa.has_value()) {
      panic(std::string("DKNN_FORCE_ISA=") + env + " — want scalar | avx2 | avx512");
    }
    if (!isa_supported(*isa)) {
      panic(std::string("DKNN_FORCE_ISA=") + env + " — not supported by this build/CPU");
    }
    return static_cast<int>(*isa);
  }();
  return value;
}

/// force_isa() state: -1 = no programmatic force.
std::atomic<int> g_forced{-1};

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Avx2: return "avx2";
    case Isa::Avx512: return "avx512";
  }
  return "unknown";
}

std::optional<Isa> parse_isa(std::string_view name) {
  if (name == "scalar") return Isa::Scalar;
  if (name == "avx2") return Isa::Avx2;
  if (name == "avx512") return Isa::Avx512;
  return std::nullopt;
}

bool isa_supported(Isa isa) { return cpu_supports(isa); }

Isa best_supported_isa() {
  static const Isa best = [] {
    if (cpu_supports(Isa::Avx512)) return Isa::Avx512;
    if (cpu_supports(Isa::Avx2)) return Isa::Avx2;
    return Isa::Scalar;
  }();
  return best;
}

void force_isa(std::optional<Isa> isa) {
  if (isa.has_value()) {
    DKNN_REQUIRE(isa_supported(*isa), "force_isa: ISA not supported by this build/CPU");
    g_forced.store(static_cast<int>(*isa), std::memory_order_release);
  } else {
    g_forced.store(-1, std::memory_order_release);
  }
}

Isa active_isa() {
  const int forced = g_forced.load(std::memory_order_acquire);
  if (forced >= 0) return static_cast<Isa>(forced);
  const int env = env_override();
  if (env >= 0) return static_cast<Isa>(env);
  return best_supported_isa();
}

const KernelOps& kernel_ops() {
  switch (active_isa()) {
    case Isa::Scalar: break;
#if defined(DKNN_SIMD_X86)
    case Isa::Avx2: return avx2_ops();
    case Isa::Avx512: return avx512_ops();
#else
    case Isa::Avx2:
    case Isa::Avx512: break;  // unreachable: never supported, never forced
#endif
  }
  return scalar_ops();
}

}  // namespace dknn::simd

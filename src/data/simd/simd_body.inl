// \file simd_body.inl
// \brief The ISA-generic body of the explicit-SIMD scoring kernels.
//
// Not a header.  Each vector TU (kernels_avx2.cpp, kernels_avx512.cpp)
// defines a vector abstraction `V` and then #includes this file INSIDE an
// anonymous namespace inside dknn::simd, so every definition here has
// internal linkage and is compiled exactly once per ISA with that ISA's
// flags.  Required V API (all static / value semantics):
//
//   static constexpr std::size_t kWidth;          // doubles per vector
//   static V load(const double* p);               // unaligned full load
//   static V load_partial(const double* p, n);    // first n lanes, rest 0.0
//   static V broadcast(double x);
//   static V zero();
//   V operator+(V, V); V operator-(V, V); V operator*(V, V);
//   static V max(V, V);  static V abs(V);  static V sqrt(V);
//   void store(double* p) const;                  // unaligned full store
//   static unsigned le_mask(V a, V b);            // bit i set iff a[i] <= b[i]
//
// Byte-parity rules (see README.md): lanes map to points, so each point's
// coordinates accumulate in ascending dimension order with one rounding
// per operation — the exact scalar sequence.  Never use FMA intrinsics.
// Tail handling is mask-based: load_partial for column reads, full-width
// stores/loads into the kTilePad'd tile buffer, and a lane-validity mask
// on the prefilter — no scalar remainder loops over points.
//
// ODR rule for everything in this file: no std:: algorithm/container
// templates (their comdat instantiations could be merged across TUs
// compiled at different ISA levels, and the linker may keep the wrong
// one).  Heap maintenance is hand-rolled below for exactly that reason;
// math goes through __builtin_* which always inlines.

constexpr std::size_t kMaxFixedDim = 16;

template <MetricKind K>
inline V accumulate_lane(V acc, V diff) {
  if constexpr (K == MetricKind::Euclidean || K == MetricKind::SquaredEuclidean) {
    return acc + diff * diff;
  } else if constexpr (K == MetricKind::Manhattan) {
    return acc + V::abs(diff);
  } else {
    static_assert(K == MetricKind::Chebyshev);
    return V::max(acc, V::abs(diff));
  }
}

/// Fixed-dimension kernel: the j-loop fully unrolls, the query broadcasts
/// hoist out of the i-loop, and the accumulator chain lives in one vector
/// register — each block of kWidth points costs D column loads and one
/// store.
template <MetricKind K, std::size_t D>
void tile_scores_fixed(const double* const* cols, const double* query, std::size_t t0,
                       std::size_t m, double* dist) {
  constexpr std::size_t W = V::kWidth;
  std::size_t i = 0;
  for (; i + W <= m; i += W) {
    V acc = V::zero();
    for (std::size_t j = 0; j < D; ++j) {
      acc = accumulate_lane<K>(acc, V::load(cols[j] + t0 + i) - V::broadcast(query[j]));
    }
    acc.store(dist + i);
  }
  if (i < m) {
    const std::size_t rem = m - i;
    V acc = V::zero();
    for (std::size_t j = 0; j < D; ++j) {
      acc = accumulate_lane<K>(acc,
                               V::load_partial(cols[j] + t0 + i, rem) - V::broadcast(query[j]));
    }
    acc.store(dist + i);  // full-width; kTilePad guarantees room past m
  }
}

/// Dynamic-dimension fallback: identical structure with a runtime j-loop.
/// Unlike the scalar TU's dimension-outer fallback the accumulator still
/// lives in a register, but per point the partial results are the same
/// ascending-j sequence, so the bytes match all other paths.
template <MetricKind K>
void tile_scores_dynamic(const double* const* cols, const double* query, std::size_t d,
                         std::size_t t0, std::size_t m, double* dist) {
  constexpr std::size_t W = V::kWidth;
  std::size_t i = 0;
  for (; i + W <= m; i += W) {
    V acc = V::zero();
    for (std::size_t j = 0; j < d; ++j) {
      acc = accumulate_lane<K>(acc, V::load(cols[j] + t0 + i) - V::broadcast(query[j]));
    }
    acc.store(dist + i);
  }
  if (i < m) {
    const std::size_t rem = m - i;
    V acc = V::zero();
    for (std::size_t j = 0; j < d; ++j) {
      acc = accumulate_lane<K>(acc,
                               V::load_partial(cols[j] + t0 + i, rem) - V::broadcast(query[j]));
    }
    acc.store(dist + i);
  }
}

template <MetricKind K>
void tile_scores_k(const double* const* cols, const double* query, std::size_t d,
                   std::size_t t0, std::size_t m, double* dist) {
  switch (d) {
#define DKNN_FIXED_DIM_CASE(D) \
  case D: return tile_scores_fixed<K, D>(cols, query, t0, m, dist);
    DKNN_FIXED_DIM_CASE(1)
    DKNN_FIXED_DIM_CASE(2)
    DKNN_FIXED_DIM_CASE(3)
    DKNN_FIXED_DIM_CASE(4)
    DKNN_FIXED_DIM_CASE(5)
    DKNN_FIXED_DIM_CASE(6)
    DKNN_FIXED_DIM_CASE(7)
    DKNN_FIXED_DIM_CASE(8)
    DKNN_FIXED_DIM_CASE(9)
    DKNN_FIXED_DIM_CASE(10)
    DKNN_FIXED_DIM_CASE(11)
    DKNN_FIXED_DIM_CASE(12)
    DKNN_FIXED_DIM_CASE(13)
    DKNN_FIXED_DIM_CASE(14)
    DKNN_FIXED_DIM_CASE(15)
    DKNN_FIXED_DIM_CASE(16)
#undef DKNN_FIXED_DIM_CASE
    case 0:
      for (std::size_t i = 0; i < m; ++i) dist[i] = 0.0;
      return;
    default: return tile_scores_dynamic<K>(cols, query, d, t0, m, dist);
  }
}
static_assert(kMaxFixedDim == 16, "keep the dispatch table in sync");

// --- bounded max-heap, hand-rolled (no std:: comdat in ISA TUs) -------------

/// Exactly std::pair's operator< for (double, id) with NaN-free firsts —
/// the Key order the whole repo selects on.
inline bool dist_less(const DistId& a, const DistId& b) {
  return a.first < b.first || (a.first == b.first && a.second < b.second);
}

inline void heap_swap(DistId& a, DistId& b) {
  const DistId t = a;
  a = b;
  b = t;
}

/// Max-heap push in Key order; the result is a valid heap for
/// std::sort_heap in the (baseline-compiled) kernel layer's epilogue.
inline void heap_push(HeapState& h, DistId entry) {
  std::size_t i = h.size++;
  h.data[i] = entry;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!dist_less(h.data[parent], h.data[i])) break;
    heap_swap(h.data[parent], h.data[i]);
    i = parent;
  }
}

inline void heap_replace_top(HeapState& h, DistId entry) {
  h.data[0] = entry;
  std::size_t i = 0;
  for (;;) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    std::size_t big = i;
    if (l < h.size && dist_less(h.data[big], h.data[l])) big = l;
    if (r < h.size && dist_less(h.data[big], h.data[r])) big = r;
    if (big == i) break;
    heap_swap(h.data[i], h.data[big]);
    i = big;
  }
}

/// One candidate through the exact scalar-path acceptance sequence,
/// including the re-check against the *current* threshold (the block-level
/// prefilter below uses the threshold from the block's start, which only
/// loosens — so survivors form a superset that this re-check trims back to
/// scalar-identical decisions).
template <MetricKind K>
inline void accept_candidate(HeapState& heap, double& threshold, double s, std::uint64_t id) {
  if (heap.size == heap.cap && s > threshold) return;
  if constexpr (K == MetricKind::Euclidean) {
    const DistId cand{__builtin_sqrt(s), id};
    if (heap.size < heap.cap) {
      heap_push(heap, cand);
      if (heap.size == heap.cap) threshold = reject_threshold_sq(heap.data[0].first);
    } else if (dist_less(cand, heap.data[0])) {
      heap_replace_top(heap, cand);
      threshold = reject_threshold_sq(heap.data[0].first);
    }
  } else {
    const DistId cand{s, id};
    if (heap.size < heap.cap) {
      heap_push(heap, cand);
      if (heap.size == heap.cap) threshold = heap.data[0].first;
    } else if (dist_less(cand, heap.data[0])) {
      heap_replace_top(heap, cand);
      threshold = heap.data[0].first;
    }
  }
}

/// Vectorized heap prefilter: compares a whole block of 2·kWidth candidate
/// distances (8 for AVX2, 16 for AVX-512) against the running heap bound
/// with two vector compares and one branch, touching the heap only for
/// lanes that survive.  Once the heap is warm almost every block rejects
/// entirely — the branch-per-point of the scalar scan becomes a
/// branch-per-16-points.
template <MetricKind K>
void heap_update_k(HeapState& heap, double& threshold, const double* raw,
                   const std::uint64_t* ids, std::size_t m) {
  constexpr std::size_t W = V::kWidth;
  constexpr std::size_t B = 2 * W;
  std::size_t i = 0;
  // Fill + align: while the heap is short every point is accepted (the
  // prefilter has nothing to reject), and blocks must start B-aligned so
  // their full-width loads stay inside the kTilePad'd tile.
  while (i < m && (heap.size < heap.cap || i % B != 0)) {
    accept_candidate<K>(heap, threshold, raw[i], ids[i]);
    ++i;
  }
  for (; i < m; i += B) {
    const std::size_t rem = m - i;
    const V bound = V::broadcast(threshold);
    unsigned mask = V::le_mask(V::load(raw + i), bound) |
                    (V::le_mask(V::load(raw + i + W), bound) << W);
    if (rem < B) mask &= (1u << rem) - 1u;  // lanes past m are scratch
    while (mask != 0) {
      const auto bit = static_cast<std::size_t>(__builtin_ctz(mask));
      mask &= mask - 1u;
      accept_candidate<K>(heap, threshold, raw[i + bit], ids[i + bit]);
    }
  }
}

/// In-place vector sqrt over dist[0, m) — score_store's materializing
/// Euclidean epilogue.  Hardware vsqrtpd is correctly rounded (IEEE-754
/// requires it), so every lane matches the scalar std::sqrt byte-for-byte.
/// Tail handling per the kTilePad contract: masked load (missing lanes
/// read as 0.0, whose sqrt is 0.0 — finite), full-width store into the pad.
void sqrt_tile_entry(double* dist, std::size_t m) {
  constexpr std::size_t W = V::kWidth;
  std::size_t i = 0;
  for (; i + W <= m; i += W) {
    V::sqrt(V::load(dist + i)).store(dist + i);
  }
  if (i < m) {
    V::sqrt(V::load_partial(dist + i, m - i)).store(dist + i);
  }
}

// --- MetricKind entry points (what the KernelOps table points at) -----------

void tile_scores_entry(MetricKind kind, const double* const* cols, const double* query,
                       std::size_t d, std::size_t t0, std::size_t m, double* dist) {
  switch (kind) {
    case MetricKind::Euclidean:
      return tile_scores_k<MetricKind::Euclidean>(cols, query, d, t0, m, dist);
    case MetricKind::SquaredEuclidean:
      return tile_scores_k<MetricKind::SquaredEuclidean>(cols, query, d, t0, m, dist);
    case MetricKind::Manhattan:
      return tile_scores_k<MetricKind::Manhattan>(cols, query, d, t0, m, dist);
    case MetricKind::Chebyshev:
      return tile_scores_k<MetricKind::Chebyshev>(cols, query, d, t0, m, dist);
  }
}

void heap_update_entry(MetricKind kind, HeapState& heap, double& threshold, const double* raw,
                       const std::uint64_t* ids, std::size_t m) {
  switch (kind) {
    case MetricKind::Euclidean:
      return heap_update_k<MetricKind::Euclidean>(heap, threshold, raw, ids, m);
    case MetricKind::SquaredEuclidean:
      return heap_update_k<MetricKind::SquaredEuclidean>(heap, threshold, raw, ids, m);
    case MetricKind::Manhattan:
      return heap_update_k<MetricKind::Manhattan>(heap, threshold, raw, ids, m);
    case MetricKind::Chebyshev:
      return heap_update_k<MetricKind::Chebyshev>(heap, threshold, raw, ids, m);
  }
}

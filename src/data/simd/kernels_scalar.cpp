/// \file kernels_scalar.cpp
/// \brief Portable reference scoring kernels (the PR 1 auto-vectorized
///        code, relocated behind the KernelOps dispatch table).
///
/// This TU is compiled at the build's baseline flags — "scalar" means
/// "whatever the compiler generates from plain C++", which under
/// -march=native may itself auto-vectorize.  What it pins down is the
/// *semantics*: per point, coordinates accumulate in ascending dimension
/// order with one rounding per operation (no FMA: -ffp-contract=off is
/// global), and selection runs on a bounded max-heap in Key order.  The
/// explicit-intrinsics TUs reproduce exactly this operation sequence,
/// which is why every ISA is byte-identical (tests/test_simd_parity.cpp).

#include <algorithm>
#include <cmath>
#include <limits>

#include "data/simd/kernel_ops.hpp"

namespace dknn::simd {
namespace {

/// Largest dimensionality with a fully-unrolled register-accumulating
/// kernel; larger d falls back to the dimension-outer loop.
constexpr std::size_t kMaxFixedDim = 16;

/// Fixed-dimension kernel: the j-loop fully unrolls and the accumulator
/// chain lives in registers, so each point costs D column loads and one
/// store; the i-loop auto-vectorizes.
template <MetricKind K, std::size_t D>
void tile_scores_fixed(const double* const* cols, const double* query, std::size_t t0,
                       std::size_t m, double* __restrict dist) {
  for (std::size_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < D; ++j) {
      const double diff = cols[j][t0 + i] - query[j];
      if constexpr (K == MetricKind::Euclidean || K == MetricKind::SquaredEuclidean) {
        acc += diff * diff;
      } else if constexpr (K == MetricKind::Manhattan) {
        acc += std::fabs(diff);
      } else {
        static_assert(K == MetricKind::Chebyshev);
        acc = std::max(acc, std::fabs(diff));
      }
    }
    dist[i] = acc;
  }
}

/// Dynamic-dimension fallback: dimension-outer accumulation through the
/// tile buffer (still vectorized, but pays dist loads/stores per dim).
/// Per point the partial sums are the same ascending-j sequence as the
/// fixed kernels, so the result bytes are identical either way.
template <MetricKind K>
void tile_scores_dynamic(const double* const* cols, const double* query, std::size_t d,
                         std::size_t t0, std::size_t m, double* __restrict dist) {
  std::fill_n(dist, m, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    const double qj = query[j];
    const double* __restrict col = cols[j] + t0;
    if constexpr (K == MetricKind::Euclidean || K == MetricKind::SquaredEuclidean) {
      for (std::size_t i = 0; i < m; ++i) {
        const double diff = col[i] - qj;
        dist[i] += diff * diff;
      }
    } else if constexpr (K == MetricKind::Manhattan) {
      for (std::size_t i = 0; i < m; ++i) dist[i] += std::fabs(col[i] - qj);
    } else {
      static_assert(K == MetricKind::Chebyshev);
      for (std::size_t i = 0; i < m; ++i) dist[i] = std::max(dist[i], std::fabs(col[i] - qj));
    }
  }
}

template <MetricKind K>
void tile_scores_k(const double* const* cols, const double* query, std::size_t d,
                   std::size_t t0, std::size_t m, double* dist) {
  switch (d) {
#define DKNN_FIXED_DIM_CASE(D) \
  case D: return tile_scores_fixed<K, D>(cols, query, t0, m, dist);
    DKNN_FIXED_DIM_CASE(1)
    DKNN_FIXED_DIM_CASE(2)
    DKNN_FIXED_DIM_CASE(3)
    DKNN_FIXED_DIM_CASE(4)
    DKNN_FIXED_DIM_CASE(5)
    DKNN_FIXED_DIM_CASE(6)
    DKNN_FIXED_DIM_CASE(7)
    DKNN_FIXED_DIM_CASE(8)
    DKNN_FIXED_DIM_CASE(9)
    DKNN_FIXED_DIM_CASE(10)
    DKNN_FIXED_DIM_CASE(11)
    DKNN_FIXED_DIM_CASE(12)
    DKNN_FIXED_DIM_CASE(13)
    DKNN_FIXED_DIM_CASE(14)
    DKNN_FIXED_DIM_CASE(15)
    DKNN_FIXED_DIM_CASE(16)
#undef DKNN_FIXED_DIM_CASE
    case 0: std::fill_n(dist, m, 0.0); return;
    default: return tile_scores_dynamic<K>(cols, query, d, t0, m, dist);
  }
}
static_assert(kMaxFixedDim == 16, "keep the dispatch table in sync");

/// Bounded max-heap view over HeapState.  Lexicographic pair order matches
/// Key order because encode_distance is strictly monotone.
struct BoundedHeap {
  HeapState& state;

  [[nodiscard]] bool full() const { return state.size == state.cap; }
  [[nodiscard]] const DistId& top() const { return state.data[0]; }
  void push(DistId entry) {
    state.data[state.size++] = entry;
    std::push_heap(state.data, state.data + state.size);
  }
  void replace_top(DistId entry) {
    std::pop_heap(state.data, state.data + state.size);
    state.data[state.size - 1] = entry;
    std::push_heap(state.data, state.data + state.size);
  }
};

/// Streams one scored tile into the heap.  For Euclidean, `raw` holds
/// squared sums and sqrt is applied only to candidates that survive the
/// threshold prefilter (O(ℓ log n) of them, not n); selection operates on
/// the exact sqrt values, so parity with the AoS path is bit-exact.
template <MetricKind K>
void heap_update_k(HeapState& state, double& threshold, const double* raw,
                   const std::uint64_t* ids, std::size_t m) {
  BoundedHeap heap{state};
  for (std::size_t i = 0; i < m; ++i) {
    const double s = raw[i];
    if (heap.full() && s > threshold) continue;  // common case: one compare
    if constexpr (K == MetricKind::Euclidean) {
      const DistId cand{std::sqrt(s), ids[i]};
      if (!heap.full()) {
        heap.push(cand);
        if (heap.full()) threshold = reject_threshold_sq(heap.top().first);
      } else if (cand < heap.top()) {
        heap.replace_top(cand);
        threshold = reject_threshold_sq(heap.top().first);
      }
    } else {
      const DistId cand{s, ids[i]};
      if (!heap.full()) {
        heap.push(cand);
        if (heap.full()) threshold = heap.top().first;
      } else if (cand < heap.top()) {
        heap.replace_top(cand);
        threshold = heap.top().first;
      }
    }
  }
}

void tile_scores_entry(MetricKind kind, const double* const* cols, const double* query,
                       std::size_t d, std::size_t t0, std::size_t m, double* dist) {
  switch (kind) {
    case MetricKind::Euclidean:
      return tile_scores_k<MetricKind::Euclidean>(cols, query, d, t0, m, dist);
    case MetricKind::SquaredEuclidean:
      return tile_scores_k<MetricKind::SquaredEuclidean>(cols, query, d, t0, m, dist);
    case MetricKind::Manhattan:
      return tile_scores_k<MetricKind::Manhattan>(cols, query, d, t0, m, dist);
    case MetricKind::Chebyshev:
      return tile_scores_k<MetricKind::Chebyshev>(cols, query, d, t0, m, dist);
  }
}

void heap_update_entry(MetricKind kind, HeapState& heap, double& threshold, const double* raw,
                       const std::uint64_t* ids, std::size_t m) {
  switch (kind) {
    case MetricKind::Euclidean:
      return heap_update_k<MetricKind::Euclidean>(heap, threshold, raw, ids, m);
    case MetricKind::SquaredEuclidean:
      return heap_update_k<MetricKind::SquaredEuclidean>(heap, threshold, raw, ids, m);
    case MetricKind::Manhattan:
      return heap_update_k<MetricKind::Manhattan>(heap, threshold, raw, ids, m);
    case MetricKind::Chebyshev:
      return heap_update_k<MetricKind::Chebyshev>(heap, threshold, raw, ids, m);
  }
}

/// The reference the vector sqrt epilogues must match byte-for-byte —
/// trivially so, because IEEE sqrt is correctly rounded everywhere.
void sqrt_tile_entry(double* dist, std::size_t m) {
  for (std::size_t i = 0; i < m; ++i) dist[i] = std::sqrt(dist[i]);
}

}  // namespace

const KernelOps& scalar_ops() {
  static constexpr KernelOps ops{"scalar", &tile_scores_entry, &heap_update_entry,
                                 &sqrt_tile_entry};
  return ops;
}

}  // namespace dknn::simd

/// \file kernels_avx2.cpp
/// \brief AVX2 scoring kernels: 4-wide double lanes, 8-wide heap
///        prefilter blocks, maskload tails.
///
/// Compiled with -mavx2 as its own TU (CMakeLists.txt); dispatch only
/// hands out avx2_ops() after __builtin_cpu_supports("avx2").  All logic
/// lives in simd_body.inl — this file supplies only the vector
/// abstraction.  No FMA intrinsics anywhere (byte parity; see README.md).

#include "data/simd/kernel_ops.hpp"

#if defined(DKNN_SIMD_X86)

#include <immintrin.h>

namespace dknn::simd {
namespace {

struct V {
  static constexpr std::size_t kWidth = 4;
  __m256d v;

  static V load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static V load_partial(const double* p, std::size_t n) {
    return {_mm256_maskload_pd(p, tail_mask(n))};
  }
  static V broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static V zero() { return {_mm256_setzero_pd()}; }
  friend V operator+(V a, V b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend V operator-(V a, V b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend V operator*(V a, V b) { return {_mm256_mul_pd(a.v, b.v)}; }
  static V max(V a, V b) { return {_mm256_max_pd(a.v, b.v)}; }
  static V abs(V a) { return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)}; }
  static V sqrt(V a) { return {_mm256_sqrt_pd(a.v)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  static unsigned le_mask(V a, V b) {
    // _CMP_LE_OQ: ordered ≤ — inputs are never NaN (kernel invariant).
    return static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)));
  }

  /// All-ones in the first n (1..3) 64-bit lanes — a sliding window over a
  /// constant table, so no per-call mask construction.
  static __m256i tail_mask(std::size_t n) {
    alignas(32) static constexpr std::int64_t kWindow[8] = {-1, -1, -1, -1, 0, 0, 0, 0};
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kWindow + (4 - n)));
  }
};

#include "data/simd/simd_body.inl"

}  // namespace

const KernelOps& avx2_ops() {
  static constexpr KernelOps ops{"avx2", &tile_scores_entry, &heap_update_entry,
                                 &sqrt_tile_entry};
  return ops;
}

}  // namespace dknn::simd

#endif  // DKNN_SIMD_X86

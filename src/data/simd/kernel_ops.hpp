#pragma once
/// \file kernel_ops.hpp
/// \brief The contract between the generic kernel layer (data/kernels.cpp)
///        and the per-ISA scoring implementations (kernels_scalar.cpp,
///        kernels_avx2.cpp, kernels_avx512.cpp).
///
/// A `KernelOps` is a table of three function pointers — tile scoring,
/// fused heap selection, and the materializing sqrt epilogue — filled in
/// by exactly one translation unit per ISA.  Each TU is compiled with its own target flags (see CMakeLists.txt)
/// and nothing else in the binary may inline code from it, so a machine
/// without AVX-512 never executes an AVX-512 instruction as long as
/// dispatch (data/simd/dispatch.hpp) never hands out that table.
///
/// This header is included by TUs compiled at *different* ISA levels, so it
/// must not define anything the linker could merge across them: only plain
/// structs, and helpers marked `static` (internal linkage — every TU gets
/// its own copy compiled at its own level).  See README.md in this
/// directory for the full rule set.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>

#include "data/metric_kind.hpp"

namespace dknn::simd {

/// (distance, point id) — first/second order matches Key order because
/// encode_distance is strictly monotone.  Identical layout to the
/// KernelScratch::heaps element type in data/kernels.hpp.
using DistId = std::pair<double, std::uint64_t>;

/// One query's bounded max-heap, stored in caller-owned scratch.  Passed by
/// reference across the dispatch boundary; implementations update `size`.
struct HeapState {
  DistId* data = nullptr;  ///< capacity `cap` entries
  std::size_t size = 0;    ///< live entries (valid max-heap in Key order)
  std::size_t cap = 0;     ///< min(ℓ, n) — never 0 at a dispatch call
};

/// Padding contract for the tile buffers: `dist`/`raw` below must be
/// readable AND writable for `round_up(m, kTilePad)` doubles.  The vector
/// kernels full-width-store scored tails and full-width-load prefilter
/// blocks instead of running scalar remainder loops; lanes at index ≥ m are
/// scratch (their values are ignored, never NaN-trapped, and never reach
/// the heap).  data/kernels.cpp sizes its tile buffer to a multiple of
/// this, which upper-bounds every in-tile access.
inline constexpr std::size_t kTilePad = 16;

/// One ISA's scoring implementation.
struct KernelOps {
  const char* name;  ///< "scalar" / "avx2" / "avx512"

  /// Raw scores for points [t0, t0 + m) of the column set: squared sums
  /// for the Euclidean family (sqrt is applied lazily during selection),
  /// direct values for L1/L∞.  Per point, coordinates accumulate in
  /// ascending dimension order with one rounding per operation — the exact
  /// operation sequence of the metric.hpp functors — so every ISA is
  /// byte-identical to the scalar reference (no FMA, no reassociation).
  /// `dist` obeys the kTilePad contract above.
  void (*tile_scores)(MetricKind kind, const double* const* cols, const double* query,
                      std::size_t d, std::size_t t0, std::size_t m, double* dist);

  /// Streams one scored tile into the bounded heap, updating `threshold`
  /// (the raw-domain rejection bound: +∞ until the heap fills, then
  /// heap-top-derived).  For Euclidean, sqrt is applied only to candidates
  /// that survive the threshold prefilter; selection compares exact sqrt
  /// values, so parity with the AoS path is bit-exact.  `raw` obeys the
  /// kTilePad contract; `ids[0..m)` are the tile's point ids.
  void (*heap_update)(MetricKind kind, HeapState& heap, double& threshold, const double* raw,
                      const std::uint64_t* ids, std::size_t m);

  /// In-place sqrt over dist[0, m) — the materializing score_store's
  /// Euclidean epilogue, where *every* rank must land in the metric's
  /// domain (exactly what the fused path's lazy sqrt avoids).  IEEE-754
  /// sqrt is correctly rounded at every ISA, so vector lanes are
  /// byte-identical to the scalar loop.  `dist` obeys the kTilePad
  /// contract: lanes in [m, round_up(m, kTilePad)) may be overwritten
  /// with scratch (the masked tail load keeps them finite).
  void (*sqrt_tile)(double* dist, std::size_t m);
};

/// Conservative squared-domain rejection threshold for the lazy-sqrt
/// Euclidean path.  Guarantee: raw > threshold  ⟹  sqrt(raw) > r, so a
/// squared score above it can be rejected without computing its sqrt.
/// Proof sketch: let r' = nextafter(r, ∞).  The returned value is ≥ r'² in
/// real arithmetic (one round-to-nearest error is undone by the final
/// next-up), so raw > threshold ⟹ √raw > r' in ℝ, and correctly-rounded
/// monotone sqrt then gives fl(√raw) ≥ r' > r.  False *accepts* merely
/// cost one sqrt and an exact comparison — never wrong answers.
///
/// `static`, not `inline`: each ISA TU must keep its own copy (an inline
/// definition is a comdat the linker may resolve to the copy compiled with
/// AVX-512 flags — an illegal-instruction trap on older machines).
[[nodiscard]] [[maybe_unused]] static double reject_threshold_sq(double r) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  const double up = std::nextafter(r, inf);
  return std::nextafter(up * up, inf);
}

/// The portable reference implementation (plain C++; whatever the compiler
/// auto-vectorizes at the build's baseline flags).  Always available.
[[nodiscard]] const KernelOps& scalar_ops();

/// Explicit-intrinsics implementations; defined only when the build
/// compiles the x86 variant TUs (CMake option DKNN_SIMD on an x86-64
/// toolchain — the TUs set DKNN_SIMD_X86).  Never call these directly:
/// go through dispatch.hpp, which checks CPUID first.
[[nodiscard]] const KernelOps& avx2_ops();
[[nodiscard]] const KernelOps& avx512_ops();

}  // namespace dknn::simd

#pragma once
/// \file dispatch.hpp
/// \brief Runtime ISA selection for the scoring kernels.
///
/// At first use the dispatcher picks the widest implementation the CPU
/// supports (CPUID, including OS XSAVE state via __builtin_cpu_supports)
/// out of whatever the build compiled in.  Two overrides exist, both for
/// testing and benchmarking — they never change a single output byte,
/// because every ISA is byte-identical by contract (fuzzed in
/// tests/test_simd_parity.cpp):
///
///   * environment: DKNN_FORCE_ISA=scalar|avx2|avx512 pins the whole
///     process (read once, at first dispatch; unknown or unsupported
///     values abort with a diagnostic rather than silently mis-measure);
///   * programmatic: force_isa(...) from tests/benches, which overrides
///     the environment and can be reverted with std::nullopt.
///
/// Thread-safe: selection is an atomic; force_isa() publishes before the
/// next kernel_ops() load.  Do not call force_isa() while another thread
/// is mid-score (the parity suites force only around serial calls).

#include <optional>
#include <string_view>

#include "data/simd/kernel_ops.hpp"

namespace dknn::simd {

/// ISA levels in ascending preference order (dispatch picks the highest
/// supported).  Values are contiguous from 0 so tests can iterate.
enum class Isa : std::uint8_t {
  Scalar = 0,  ///< portable C++ reference (compiler auto-vectorization)
  Avx2 = 1,    ///< 4-wide doubles, 8-wide heap prefilter blocks
  Avx512 = 2,  ///< 8-wide doubles, 16-wide heap prefilter blocks, masked tails
};
inline constexpr std::size_t kIsaCount = 3;

[[nodiscard]] const char* isa_name(Isa isa);

/// Parses "scalar" / "avx2" / "avx512"; nullopt on anything else.
[[nodiscard]] std::optional<Isa> parse_isa(std::string_view name);

/// True iff `isa` was compiled into this binary AND the running CPU (and
/// OS) support it.  Scalar is always supported.
[[nodiscard]] bool isa_supported(Isa isa);

/// The widest supported ISA — what auto-dispatch uses.
[[nodiscard]] Isa best_supported_isa();

/// Pins dispatch to `isa` (DKNN_REQUIREs isa_supported) until reverted
/// with std::nullopt.  Takes precedence over DKNN_FORCE_ISA.
void force_isa(std::optional<Isa> isa);

/// The ISA the next kernel call will run: forced > DKNN_FORCE_ISA > best.
[[nodiscard]] Isa active_isa();

/// The op table for active_isa().
[[nodiscard]] const KernelOps& kernel_ops();

/// RAII pin for tests and benches: forces `isa` for the object's lifetime
/// and restores auto-dispatch (DKNN_FORCE_ISA still honoured) on scope
/// exit — exception- and early-return-safe, so an assertion failure can't
/// leak a pinned ISA into later tests.  Not nestable: destruction restores
/// auto, not any outer pin.
class ScopedForceIsa {
 public:
  explicit ScopedForceIsa(Isa isa) { force_isa(isa); }
  ~ScopedForceIsa() { force_isa(std::nullopt); }
  ScopedForceIsa(const ScopedForceIsa&) = delete;
  ScopedForceIsa& operator=(const ScopedForceIsa&) = delete;
};

}  // namespace dknn::simd

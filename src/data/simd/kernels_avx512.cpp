/// \file kernels_avx512.cpp
/// \brief AVX-512 scoring kernels: 8-wide double lanes, 16-wide heap
///        prefilter blocks, native masked-load tails.
///
/// Compiled with -mavx512f as its own TU (CMakeLists.txt); dispatch only
/// hands out avx512_ops() after __builtin_cpu_supports("avx512f") — which
/// also verifies the OS enabled the ZMM state.  All logic lives in
/// simd_body.inl — this file supplies only the vector abstraction.  No FMA
/// intrinsics anywhere (byte parity; see README.md).

#include "data/simd/kernel_ops.hpp"

#if defined(DKNN_SIMD_X86)

#include <immintrin.h>

namespace dknn::simd {
namespace {

struct V {
  static constexpr std::size_t kWidth = 8;
  __m512d v;

  static V load(const double* p) { return {_mm512_loadu_pd(p)}; }
  static V load_partial(const double* p, std::size_t n) {
    const auto mask = static_cast<__mmask8>((1u << n) - 1u);
    return {_mm512_maskz_loadu_pd(mask, p)};
  }
  static V broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static V zero() { return {_mm512_setzero_pd()}; }
  friend V operator+(V a, V b) { return {_mm512_add_pd(a.v, b.v)}; }
  friend V operator-(V a, V b) { return {_mm512_sub_pd(a.v, b.v)}; }
  friend V operator*(V a, V b) { return {_mm512_mul_pd(a.v, b.v)}; }
  static V max(V a, V b) { return {_mm512_max_pd(a.v, b.v)}; }
  static V abs(V a) { return {_mm512_abs_pd(a.v)}; }
  static V sqrt(V a) { return {_mm512_sqrt_pd(a.v)}; }
  void store(double* p) const { _mm512_storeu_pd(p, v); }
  static unsigned le_mask(V a, V b) {
    // _CMP_LE_OQ: ordered ≤ — inputs are never NaN (kernel invariant).
    return static_cast<unsigned>(_mm512_cmp_pd_mask(a.v, b.v, _CMP_LE_OQ));
  }
};

#include "data/simd/simd_body.inl"

}  // namespace

const KernelOps& avx512_ops() {
  static constexpr KernelOps ops{"avx512", &tile_scores_entry, &heap_update_entry,
                                 &sqrt_tile_entry};
  return ops;
}

}  // namespace dknn::simd

#endif  // DKNN_SIMD_X86

#include "data/validate.hpp"

namespace dknn {

std::string dimension_mismatch_text(std::size_t expected, std::size_t got) {
  return "dknn: query dimension mismatch (expected " + std::to_string(expected) + ", got " +
         std::to_string(got) + ")";
}

const char* positive_ell_text() { return "dknn: ell must be >= 1"; }

void require_query_dim(std::size_t expected, std::size_t got) {
  if (got != expected) throw DimensionMismatchError(dimension_mismatch_text(expected, got));
}

void require_positive_ell(std::uint64_t ell) {
  if (ell == 0) throw InvalidEllError(positive_ell_text());
}

}  // namespace dknn

#pragma once
/// \file ids.hpp
/// \brief Random unique point identifiers (paper §2).
///
/// "one can use randomization to choose a unique ID for each of the n
/// points (choose a random number between say [1, n³] and they will be
/// unique with high probability)".  We draw from [1, max(n³, 2⁶³)) and
/// additionally *enforce* uniqueness by redrawing collisions — the paper's
/// w.h.p. guarantee becomes a certainty without changing the distribution
/// model, and downstream tie-breaking stays sound in every test run.

#include <cstdint>
#include <vector>

#include "data/point.hpp"
#include "rng/rng.hpp"

namespace dknn {

/// `count` distinct random ids, each ≥ 1.
[[nodiscard]] std::vector<PointId> assign_random_ids(std::size_t count, Rng& rng);

}  // namespace dknn

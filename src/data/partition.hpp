#pragma once
/// \file partition.hpp
/// \brief Distributing a dataset across the k machines.
///
/// The model says points are "distributed (in a balanced fashion) among the
/// k machines, i.e., each machine has O(n/k) points (adversarially
/// distributed)" — balanced in *count*, adversarial in *content*.  The
/// partitioners below cover the benign and adversarial corners the tests
/// sweep: round-robin, random, value-sorted (machine 0 gets the smallest
/// values — the worst case for pivot search locality), and a skewed variant
/// that leaves some machines empty (legal: O(n/k) includes zero).

#include <algorithm>
#include <cstdint>
#include <vector>

#include "rng/rng.hpp"
#include "rng/sampling.hpp"
#include "support/panic.hpp"

namespace dknn {

enum class PartitionScheme : std::uint8_t {
  RoundRobin,   ///< element i -> machine i mod k (balanced, interleaved)
  Random,       ///< uniform random machine per element (balanced in expectation)
  SortedBlocks, ///< sort, then contiguous blocks: machine 0 smallest (adversarial)
  FirstHeavy,   ///< all points on machine 0; the rest empty (max skew)
};

/// Splits `items` into k shards under `scheme`. Requires k >= 1. The
/// Random scheme consumes `rng`; other schemes ignore it.
template <typename T>
[[nodiscard]] std::vector<std::vector<T>> partition(std::vector<T> items, std::uint32_t k,
                                                    PartitionScheme scheme, Rng& rng) {
  DKNN_REQUIRE(k >= 1, "partition needs at least one machine");
  std::vector<std::vector<T>> shards(k);
  switch (scheme) {
    case PartitionScheme::RoundRobin: {
      for (auto& shard : shards) shard.reserve(items.size() / k + 1);
      for (std::size_t i = 0; i < items.size(); ++i) {
        shards[i % k].push_back(std::move(items[i]));
      }
      break;
    }
    case PartitionScheme::Random: {
      for (auto& item : items) {
        shards[static_cast<std::size_t>(rng.below(k))].push_back(std::move(item));
      }
      break;
    }
    case PartitionScheme::SortedBlocks: {
      std::sort(items.begin(), items.end());
      const std::size_t base = items.size() / k;
      std::size_t extra = items.size() % k;
      std::size_t pos = 0;
      for (std::uint32_t m = 0; m < k; ++m) {
        std::size_t take = base + (extra > 0 ? 1 : 0);
        if (extra > 0) --extra;
        for (std::size_t i = 0; i < take; ++i) shards[m].push_back(std::move(items[pos++]));
      }
      break;
    }
    case PartitionScheme::FirstHeavy: {
      shards[0] = std::move(items);
      break;
    }
  }
  return shards;
}

/// All scheme values, for parameterized tests.
[[nodiscard]] std::vector<PartitionScheme> all_partition_schemes();

/// Human-readable scheme name (test/bench labels).
[[nodiscard]] const char* partition_scheme_name(PartitionScheme scheme);

}  // namespace dknn

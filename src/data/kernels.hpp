#pragma once
/// \file kernels.hpp
/// \brief Fused batched scoring / top-ℓ kernels over FlatStore shards.
///
/// The per-query AoS path (`score_vector_shard` + `top_ell_smallest`)
/// materializes a full n-element `std::vector<Key>` per shard per query and
/// chases one heap pointer per point.  These kernels instead
///
///   * stream each coordinate *column* of a FlatStore contiguously
///     (auto-vectorizing across points),
///   * process a block of queries against each block of points while the
///     block is cache-hot, and
///   * fuse selection into scoring with a bounded max-heap per query, so
///     when ℓ ≪ n nothing of size n is ever allocated — with a reused
///     `KernelScratch`, the per-query hot path is allocation-free after
///     warm-up.
///
/// Parity contract (tested in tests/test_kernels.cpp): for every MetricKind
/// the fused kernels return *byte-identical* Key sets to the per-query AoS
/// path under the corresponding metric functor.  Distances are accumulated
/// in the same dimension order as the functors, and Euclidean applies its
/// sqrt before selection, so even rounding ties break identically.
///
/// The inner loops (tile scoring + fused heap selection) are runtime-ISA
/// dispatched: data/simd/dispatch.hpp picks scalar / AVX2 / AVX-512 per
/// CPUID, every level byte-identical to the scalar reference (fuzzed in
/// tests/test_simd_parity.cpp), overridable via DKNN_FORCE_ISA or
/// simd::force_isa() for testing.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "data/flat_store.hpp"
#include "data/key.hpp"
#include "data/metric.hpp"
#include "data/metric_kind.hpp"
#include "data/point.hpp"

namespace dknn {

namespace simd {
struct KernelOps;  // data/simd/kernel_ops.hpp — the per-ISA op table
}  // namespace simd

/// Applies `kind` to one AoS pair — the reference the kernels are tested
/// against (dispatches to the metric.hpp functors).
[[nodiscard]] double metric_distance(MetricKind kind, const PointD& a, const PointD& b);

/// Reusable scratch for the fused kernels.  Buffers grow to the high-water
/// mark and are then reused; keep one per thread / call site to make the
/// steady-state query loop allocation-free.
struct KernelScratch {
  std::vector<double> dist;                            ///< per-tile distances
  std::vector<std::pair<double, PointId>> heaps;       ///< Q bounded max-heaps, flattened
  std::vector<std::size_t> heap_sizes;                 ///< live entries per heap
  std::vector<double> thresholds;                      ///< per-query rejection thresholds
  std::vector<const double*> cols;                     ///< RangeTopEll column pointers
};

/// Scores every point of `store` against every query in `queries`, fused
/// with bounded top-ℓ selection.  `out` is resized to queries.size();
/// out[q] holds query q's min(ℓ, n) best keys ascending, ranks
/// encode_distance-encoded.  Point blocks are reused across the whole query
/// block while cache-hot.
void fused_top_ell_batch(const FlatStore& store, std::span<const PointD> queries,
                         std::size_t ell, MetricKind kind,
                         std::vector<std::vector<Key>>& out, KernelScratch& scratch);

/// Single-query convenience over fused_top_ell_batch.
[[nodiscard]] std::vector<Key> fused_top_ell(const FlatStore& store, const PointD& query,
                                             std::size_t ell, MetricKind kind);

/// Materializing SoA kernel: all n keys in point order (the AoS path's
/// output shape, minus the per-point indirection).  Benchmarked against the
/// fused path in bench/micro_kernels.cpp.
void score_store(const FlatStore& store, const PointD& query, MetricKind kind,
                 std::vector<Key>& out);

/// Single-query fused scorer over arbitrary contiguous index ranges of one
/// store — the leaf-range entry point for kd-tree-pruned scoring
/// (seq/kdtree.hpp's hybrid path).  Runs exactly the bounded-heap +
/// lazy-sqrt machinery of fused_top_ell_batch, so scoring *any*
/// decomposition of [0, n) into ranges, in any order, finishes with
/// byte-identical keys; skipping a range is sound whenever every point in
/// it provably scores above threshold().
class RangeTopEll {
 public:
  /// Borrows `store`, `query` and `scratch` for its lifetime.
  RangeTopEll(const FlatStore& store, const PointD& query, std::size_t ell, MetricKind kind,
              KernelScratch& scratch);

  /// Scores points [lo, hi); requires lo <= hi <= store.size().
  void score_range(std::size_t lo, std::size_t hi);

  /// Conservative rejection threshold in the kernel's raw-score domain
  /// (squared sums for the Euclidean family, direct values for L1/L∞): a
  /// point or subtree whose raw score provably exceeds this cannot enter
  /// the heap and may be skipped.  +∞ until the heap holds ℓ entries.
  [[nodiscard]] double threshold() const { return threshold_; }

  /// Sorts the selected keys ascending into `out`; the instance must not be
  /// fed further ranges afterwards.
  void finish(std::vector<Key>& out);

 private:
  const FlatStore& store_;
  const PointD& query_;
  MetricKind kind_;
  const simd::KernelOps* ops_ = nullptr;  ///< ISA resolved once at construction
  std::size_t cap_ = 0;       ///< min(ℓ, n); 0 disables scoring entirely
  KernelScratch& scratch_;    ///< dist tile, heap and column-pointer storage
  std::size_t heap_size_ = 0;
  double threshold_ = 0.0;
};

}  // namespace dknn

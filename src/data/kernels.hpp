#pragma once
/// \file kernels.hpp
/// \brief Fused batched scoring / top-ℓ kernels over FlatStore shards.
///
/// The per-query AoS path (`score_vector_shard` + `top_ell_smallest`)
/// materializes a full n-element `std::vector<Key>` per shard per query and
/// chases one heap pointer per point.  These kernels instead
///
///   * stream each coordinate *column* of a FlatStore contiguously
///     (auto-vectorizing across points),
///   * process a block of queries against each block of points while the
///     block is cache-hot, and
///   * fuse selection into scoring with a bounded max-heap per query, so
///     when ℓ ≪ n nothing of size n is ever allocated — with a reused
///     `KernelScratch`, the per-query hot path is allocation-free after
///     warm-up.
///
/// Parity contract (tested in tests/test_kernels.cpp): for every MetricKind
/// the fused kernels return *byte-identical* Key sets to the per-query AoS
/// path under the corresponding metric functor.  Distances are accumulated
/// in the same dimension order as the functors, and Euclidean applies its
/// sqrt before selection, so even rounding ties break identically.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "data/flat_store.hpp"
#include "data/key.hpp"
#include "data/metric.hpp"
#include "data/point.hpp"

namespace dknn {

/// Runtime metric selector for the kernel layer (the template functors in
/// metric.hpp stay the extensible API; kernels specialize the four the
/// paper's workloads use).
enum class MetricKind : std::uint8_t {
  Euclidean,         ///< ‖a − b‖₂
  SquaredEuclidean,  ///< ‖a − b‖₂² — same ℓ-NN order, no sqrt
  Manhattan,         ///< ‖a − b‖₁
  Chebyshev,         ///< ‖a − b‖∞
};

[[nodiscard]] const char* metric_kind_name(MetricKind kind);

/// Applies `kind` to one AoS pair — the reference the kernels are tested
/// against (dispatches to the metric.hpp functors).
[[nodiscard]] double metric_distance(MetricKind kind, const PointD& a, const PointD& b);

/// Reusable scratch for the fused kernels.  Buffers grow to the high-water
/// mark and are then reused; keep one per thread / call site to make the
/// steady-state query loop allocation-free.
struct KernelScratch {
  std::vector<double> dist;                            ///< per-tile distances
  std::vector<std::pair<double, PointId>> heaps;       ///< Q bounded max-heaps, flattened
  std::vector<std::size_t> heap_sizes;                 ///< live entries per heap
  std::vector<double> thresholds;                      ///< per-query rejection thresholds
};

/// Scores every point of `store` against every query in `queries`, fused
/// with bounded top-ℓ selection.  `out` is resized to queries.size();
/// out[q] holds query q's min(ℓ, n) best keys ascending, ranks
/// encode_distance-encoded.  Point blocks are reused across the whole query
/// block while cache-hot.
void fused_top_ell_batch(const FlatStore& store, std::span<const PointD> queries,
                         std::size_t ell, MetricKind kind,
                         std::vector<std::vector<Key>>& out, KernelScratch& scratch);

/// Single-query convenience over fused_top_ell_batch.
[[nodiscard]] std::vector<Key> fused_top_ell(const FlatStore& store, const PointD& query,
                                             std::size_t ell, MetricKind kind);

/// Materializing SoA kernel: all n keys in point order (the AoS path's
/// output shape, minus the per-point indirection).  Benchmarked against the
/// fused path in bench/micro_kernels.cpp.
void score_store(const FlatStore& store, const PointD& query, MetricKind kind,
                 std::vector<Key>& out);

}  // namespace dknn

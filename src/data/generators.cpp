#include "data/generators.hpp"

#include <cmath>

#include "support/panic.hpp"

namespace dknn {

std::vector<Value> uniform_u64(std::size_t count, Rng& rng, Value lo, Value hi) {
  DKNN_REQUIRE(lo <= hi, "uniform_u64: lo must be <= hi");
  std::vector<Value> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(rng.between(lo, hi));
  return out;
}

std::vector<Value> duplicate_heavy_u64(std::size_t count, std::size_t distinct, Rng& rng) {
  DKNN_REQUIRE(distinct >= 1, "duplicate_heavy_u64 needs at least one distinct value");
  std::vector<Value> candidates = uniform_u64(distinct, rng);
  std::vector<Value> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(candidates[static_cast<std::size_t>(rng.below(candidates.size()))]);
  }
  return out;
}

GaussianMixture::GaussianMixture(const ClusterSpec& spec, Rng& rng) : spec_(spec) {
  DKNN_REQUIRE(spec_.clusters >= 1, "need at least one cluster");
  DKNN_REQUIRE(spec_.dim >= 1, "need at least one dimension");
  centers_.reserve(spec_.clusters);
  for (std::uint32_t c = 0; c < spec_.clusters; ++c) {
    std::vector<double> coords(spec_.dim);
    for (auto& x : coords) x = (rng.uniform01() * 2.0 - 1.0) * spec_.center_box;
    centers_.emplace_back(std::move(coords));
  }
}

std::vector<LabeledPoint> GaussianMixture::sample(std::size_t count, Rng& rng) const {
  std::vector<LabeledPoint> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto label = static_cast<std::uint32_t>(rng.below(spec_.clusters));
    std::vector<double> coords(spec_.dim);
    for (std::size_t j = 0; j < spec_.dim; ++j) {
      coords[j] = centers_[label][j] + rng.gaussian(0.0, spec_.spread);
    }
    out.push_back(LabeledPoint{PointD(std::move(coords)), label});
  }
  return out;
}

std::vector<LabeledPoint> gaussian_clusters(std::size_t count, const ClusterSpec& spec, Rng& rng) {
  return GaussianMixture(spec, rng).sample(count, rng);
}

double regression_truth(const PointD& x) {
  double y = 0.0;
  for (std::size_t j = 0; j < x.dim(); ++j) y += std::sin(x[j]);
  if (x.dim() > 0) y += x[0] / 2.0;
  return y;
}

std::vector<RegressionPoint> regression_dataset(std::size_t count, std::size_t dim, double range,
                                                double noise_stddev, Rng& rng) {
  DKNN_REQUIRE(dim >= 1, "need at least one dimension");
  std::vector<RegressionPoint> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<double> coords(dim);
    for (auto& x : coords) x = (rng.uniform01() * 2.0 - 1.0) * range;
    PointD p(std::move(coords));
    const double y = regression_truth(p) + rng.gaussian(0.0, noise_stddev);
    out.push_back(RegressionPoint{std::move(p), y});
  }
  return out;
}

std::vector<PointD> uniform_points(std::size_t count, std::size_t dim, double range, Rng& rng) {
  DKNN_REQUIRE(dim >= 1, "need at least one dimension");
  std::vector<PointD> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<double> coords(dim);
    for (auto& x : coords) x = (rng.uniform01() * 2.0 - 1.0) * range;
    out.emplace_back(std::move(coords));
  }
  return out;
}

}  // namespace dknn

#include "data/ids.hpp"

#include <unordered_set>

#include "support/panic.hpp"

namespace dknn {

std::vector<PointId> assign_random_ids(std::size_t count, Rng& rng) {
  // Domain [1, hi]: n³ when it fits, else the full 63-bit range. Either way
  // collisions are vanishingly rare; the redraw loop certifies uniqueness.
  const auto n = static_cast<std::uint64_t>(count);
  std::uint64_t hi = ~std::uint64_t{0} >> 1;
  if (n > 0 && n < (1ULL << 21)) {  // n^3 < 2^63: use the paper's [1, n^3]
    const std::uint64_t cubed = n * n * n;
    hi = std::max<std::uint64_t>(cubed, 2);  // degenerate tiny n still needs room
  }
  std::unordered_set<PointId> used;
  used.reserve(count * 2);
  std::vector<PointId> ids;
  ids.reserve(count);
  while (ids.size() < count) {
    const PointId candidate = rng.between(1, hi);
    if (used.insert(candidate).second) ids.push_back(candidate);
  }
  return ids;
}

}  // namespace dknn

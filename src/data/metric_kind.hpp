#pragma once
/// \file metric_kind.hpp
/// \brief Runtime metric selector shared by the kernel layer and the
///        per-ISA SIMD translation units.
///
/// Split out of kernels.hpp so the ISA-specific TUs under data/simd/ can
/// see the enum without pulling in FlatStore/PointD (which drag std::vector
/// into TUs compiled with AVX flags — see src/data/simd/README.md for why
/// those TUs must stay free of shared template instantiations).

#include <cstdint>

namespace dknn {

/// Runtime metric selector for the kernel layer (the template functors in
/// metric.hpp stay the extensible API; kernels specialize the four the
/// paper's workloads use).
enum class MetricKind : std::uint8_t {
  Euclidean,         ///< ‖a − b‖₂
  SquaredEuclidean,  ///< ‖a − b‖₂² — same ℓ-NN order, no sqrt
  Manhattan,         ///< ‖a − b‖₁
  Chebyshev,         ///< ‖a − b‖∞
};

[[nodiscard]] const char* metric_kind_name(MetricKind kind);

}  // namespace dknn

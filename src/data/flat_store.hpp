#pragma once
/// \file flat_store.hpp
/// \brief Contiguous SoA (structure-of-arrays) storage for one machine's
///        d-dimensional shard.
///
/// The AoS representation (`std::vector<PointD>`) pays one heap allocation
/// and one pointer indirection per point — fine for protocol code, hostile
/// to the scoring hot loop that §3's "local computation" discussion says
/// dominates real wall-clock.  `FlatStore` keeps all n×d coordinates in one
/// dimension-major buffer (`coords[j·n + i]` = coordinate j of point i)
/// plus an id array aligned with point index, so the distance kernels in
/// data/kernels.hpp stream each coordinate column contiguously and
/// auto-vectorize across points (the PANDA-style layout, see PAPERS.md).
///
/// A store is immutable after construction: build it once per shard, score
/// any number of queries against it.
///
/// Two storage modes share one read API:
///   * owned — the constructors pack coordinates into a private buffer with
///     column stride == n (the historical layout);
///   * shared view — rows [0, n) of caller-provided capacity-strided
///     buffers (column stride ≥ n).  The serve layer's incremental delta
///     mirror appends row n+1 into the same buffers and publishes a new
///     view with a bumped n; rows below any published n are frozen by
///     contract, so readers of old views never observe a mutation.
/// Every kernel walks columns via dim_coords(), which already carries the
/// stride, so both modes score byte-identically.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "data/point.hpp"
#include "support/panic.hpp"

namespace dknn {

/// One machine's shard as contiguous dimension-major coordinates + ids.
class FlatStore {
public:
  /// Empty store of dimension `dim` (scoring it yields no keys).
  FlatStore() = default;
  explicit FlatStore(std::size_t dim) : d_(dim) {}

  /// Packs `points` (all of dimension points[0].dim()) and their aligned
  /// ids.  Empty `points` gives an empty store of dimension 0.
  FlatStore(std::span<const PointD> points, std::span<const PointId> ids);

  /// Shared-view mode: rows [0, n) of capacity-strided column buffers
  /// (`coords[j·stride + i]`, coords.size() ≥ dim·stride, ids.size() ≥ n,
  /// stride ≥ n).  The store co-owns the buffers; the writer may keep
  /// appending rows ≥ n into them (disjoint elements — no data race) but
  /// must never touch rows below the largest published n.
  FlatStore(std::shared_ptr<const std::vector<double>> coords,
            std::shared_ptr<const std::vector<PointId>> ids, std::size_t n, std::size_t dim,
            std::size_t stride);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t dim() const { return d_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }

  /// Coordinate j of every point — one contiguous column of n doubles.
  [[nodiscard]] std::span<const double> dim_coords(std::size_t j) const {
    DKNN_ASSERT(j < d_, "FlatStore: dimension out of range");
    return {coord_base() + j * stride_, n_};
  }

  [[nodiscard]] double coord(std::size_t i, std::size_t j) const {
    DKNN_ASSERT(i < n_ && j < d_, "FlatStore: index out of range");
    return coord_base()[j * stride_ + i];
  }

  [[nodiscard]] std::span<const PointId> ids() const { return {id_base(), n_}; }
  [[nodiscard]] PointId id(std::size_t i) const {
    DKNN_ASSERT(i < n_, "FlatStore: index out of range");
    return id_base()[i];
  }

  /// Gathers point i back into AoS form (tests / debugging; O(d)).
  [[nodiscard]] PointD point(std::size_t i) const;

private:
  [[nodiscard]] const double* coord_base() const {
    return shared_coords_ ? shared_coords_->data() : coords_.data();
  }
  [[nodiscard]] const PointId* id_base() const {
    return shared_ids_ ? shared_ids_->data() : ids_.data();
  }

  std::size_t n_ = 0;
  std::size_t d_ = 0;
  std::size_t stride_ = 0;      ///< column stride; == n_ in owned mode
  std::vector<double> coords_;  ///< owned mode: coords_[j * n_ + i]
  std::vector<PointId> ids_;
  std::shared_ptr<const std::vector<double>> shared_coords_;  ///< view mode
  std::shared_ptr<const std::vector<PointId>> shared_ids_;
};

}  // namespace dknn

#pragma once
/// \file flat_store.hpp
/// \brief Contiguous SoA (structure-of-arrays) storage for one machine's
///        d-dimensional shard.
///
/// The AoS representation (`std::vector<PointD>`) pays one heap allocation
/// and one pointer indirection per point — fine for protocol code, hostile
/// to the scoring hot loop that §3's "local computation" discussion says
/// dominates real wall-clock.  `FlatStore` keeps all n×d coordinates in one
/// dimension-major buffer (`coords[j·n + i]` = coordinate j of point i)
/// plus an id array aligned with point index, so the distance kernels in
/// data/kernels.hpp stream each coordinate column contiguously and
/// auto-vectorize across points (the PANDA-style layout, see PAPERS.md).
///
/// A store is immutable after construction: build it once per shard, score
/// any number of queries against it.

#include <cstdint>
#include <span>
#include <vector>

#include "data/point.hpp"
#include "support/panic.hpp"

namespace dknn {

/// One machine's shard as contiguous dimension-major coordinates + ids.
class FlatStore {
public:
  /// Empty store of dimension `dim` (scoring it yields no keys).
  FlatStore() = default;
  explicit FlatStore(std::size_t dim) : d_(dim) {}

  /// Packs `points` (all of dimension points[0].dim()) and their aligned
  /// ids.  Empty `points` gives an empty store of dimension 0.
  FlatStore(std::span<const PointD> points, std::span<const PointId> ids);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t dim() const { return d_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }

  /// Coordinate j of every point — one contiguous column of n doubles.
  [[nodiscard]] std::span<const double> dim_coords(std::size_t j) const {
    DKNN_ASSERT(j < d_, "FlatStore: dimension out of range");
    return {coords_.data() + j * n_, n_};
  }

  [[nodiscard]] double coord(std::size_t i, std::size_t j) const {
    DKNN_ASSERT(i < n_ && j < d_, "FlatStore: index out of range");
    return coords_[j * n_ + i];
  }

  [[nodiscard]] std::span<const PointId> ids() const { return ids_; }
  [[nodiscard]] PointId id(std::size_t i) const {
    DKNN_ASSERT(i < n_, "FlatStore: index out of range");
    return ids_[i];
  }

  /// Gathers point i back into AoS form (tests / debugging; O(d)).
  [[nodiscard]] PointD point(std::size_t i) const;

private:
  std::size_t n_ = 0;
  std::size_t d_ = 0;
  std::vector<double> coords_;  ///< dimension-major: coords_[j * n_ + i]
  std::vector<PointId> ids_;
};

}  // namespace dknn

#pragma once
/// \file point.hpp
/// \brief Point representations.
///
/// Two point families cover the paper's settings:
///   * `Value` — unsigned 64-bit scalars.  The paper's experiments use
///     random integers in [0, 2^32 − 1] with distance |p − q| (§3).
///   * `PointD` — dense d-dimensional vectors for the general ℓ-NN problem
///     ("points may be in some d-dimensional space", §1) under any metric
///     from data/metric.hpp.
///
/// `PointId` is the paper's §2 trick: each point receives a random unique ID
/// from [1, n³]; IDs break distance ties so all keyed comparisons are over
/// *distinct* keys, and algorithms ship (id, distance) pairs instead of
/// high-dimensional coordinates.

#include <cstdint>
#include <vector>

#include "serial/codec.hpp"

namespace dknn {

/// Scalar data point (the paper's experimental setting).
using Value = std::uint64_t;

/// Random unique identifier from [1, n³] (paper §2).
using PointId = std::uint64_t;

/// Dense d-dimensional point.
struct PointD {
  std::vector<double> coords;

  PointD() = default;
  explicit PointD(std::vector<double> c) : coords(std::move(c)) {}

  [[nodiscard]] std::size_t dim() const { return coords.size(); }
  [[nodiscard]] double operator[](std::size_t i) const { return coords[i]; }
  [[nodiscard]] double& operator[](std::size_t i) { return coords[i]; }

  friend bool operator==(const PointD&, const PointD&) = default;
};

inline void encode(Writer& w, const PointD& p) { encode(w, p.coords); }
inline PointD decode_impl(Reader& r, std::type_identity<PointD>) {
  return PointD(decode_impl(r, std::type_identity<std::vector<double>>{}));
}

/// Classification sample: point with a class label.
struct LabeledPoint {
  PointD x;
  std::uint32_t label = 0;

  friend bool operator==(const LabeledPoint&, const LabeledPoint&) = default;
};

/// Regression sample: point with a real-valued target.
struct RegressionPoint {
  PointD x;
  double y = 0.0;

  friend bool operator==(const RegressionPoint&, const RegressionPoint&) = default;
};

}  // namespace dknn

#include "data/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <type_traits>

#include "data/simd/dispatch.hpp"
#include "data/validate.hpp"

namespace dknn {
namespace {

using simd::HeapState;
using simd::KernelOps;

/// Points per block.  One column slice (8 KB) plus the distance tile stay
/// resident while the whole query block streams over them.  Must be a
/// multiple of simd::kTilePad: the vector kernels full-width-store scored
/// tails and full-width-load prefilter blocks into the tile buffer, and
/// round_up(m, kTilePad) <= kTile is what bounds those accesses.
constexpr std::size_t kTile = 1024;
static_assert(kTile % simd::kTilePad == 0, "tile buffer must absorb vector tails");

using DistId = simd::DistId;
static_assert(std::is_same_v<DistId, std::pair<double, PointId>>,
              "KernelScratch::heaps element layout is the dispatch ABI");

/// Column base pointers for one store: a stack array for typical
/// dimensionalities, heap-backed beyond.
constexpr std::size_t kMaxStackDims = 16;
struct ColumnPointers {
  const double* fixed[kMaxStackDims];
  std::vector<const double*> dynamic;

  explicit ColumnPointers(const FlatStore& store) {
    const std::size_t d = store.dim();
    if (d > kMaxStackDims) dynamic.resize(d);
    double const** out = d > kMaxStackDims ? dynamic.data() : fixed;
    for (std::size_t j = 0; j < d; ++j) out[j] = store.dim_coords(j).data();
  }
  [[nodiscard]] const double* const* get() const {
    return dynamic.empty() ? fixed : dynamic.data();
  }
};

void batch_impl(const KernelOps& ops, MetricKind kind, const FlatStore& store,
                std::span<const PointD> queries, std::size_t cap,
                std::vector<std::vector<Key>>& out, KernelScratch& scratch) {
  const std::size_t n = store.size();
  const std::size_t d = store.dim();
  const std::size_t num_queries = queries.size();
  scratch.dist.resize(kTile);
  scratch.heaps.resize(num_queries * cap);
  scratch.heap_sizes.assign(num_queries, 0);
  const PointId* ids = store.ids().data();
  const ColumnPointers cols(store);

  // Rejection thresholds, one per query (+∞ until that heap fills).
  scratch.thresholds.assign(num_queries, std::numeric_limits<double>::infinity());

  for (std::size_t t0 = 0; t0 < n; t0 += kTile) {
    const std::size_t m = std::min(kTile, n - t0);
    for (std::size_t q = 0; q < num_queries; ++q) {
      ops.tile_scores(kind, cols.get(), queries[q].coords.data(), d, t0, m,
                      scratch.dist.data());
      HeapState heap{scratch.heaps.data() + q * cap, scratch.heap_sizes[q], cap};
      ops.heap_update(kind, heap, scratch.thresholds[q], scratch.dist.data(), ids + t0, m);
      scratch.heap_sizes[q] = heap.size;
    }
  }

  for (std::size_t q = 0; q < num_queries; ++q) {
    DistId* heap = scratch.heaps.data() + q * cap;
    const std::size_t size = scratch.heap_sizes[q];
    // Any ISA's heap is a valid max-heap in Key order (distinct ids make
    // the order total), so sort_heap lands on the same ascending bytes
    // whatever layout the push sequence produced.
    std::sort_heap(heap, heap + size);
    out[q].clear();
    out[q].reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
      out[q].push_back(Key{encode_distance(heap[i].first), heap[i].second});
    }
  }
}

void score_store_impl(const KernelOps& ops, MetricKind kind, const FlatStore& store,
                      const PointD& query, std::vector<Key>& out) {
  const std::size_t n = store.size();
  const std::size_t d = store.dim();
  const PointId* ids = store.ids().data();
  const ColumnPointers cols(store);
  double dist[kTile];
  out.resize(n);
  for (std::size_t t0 = 0; t0 < n; t0 += kTile) {
    const std::size_t m = std::min(kTile, n - t0);
    ops.tile_scores(kind, cols.get(), query.coords.data(), d, t0, m, dist);
    // Materialization forces every rank into the metric's domain — the
    // fused path's lazy sqrt is exactly what this variant cannot do.  The
    // epilogue rides the same dispatch table as scoring (vsqrtpd on the
    // vector ISAs; correctly-rounded everywhere, so bytes never change).
    if (kind == MetricKind::Euclidean) ops.sqrt_tile(dist, m);
    for (std::size_t i = 0; i < m; ++i) {
      out[t0 + i] = Key{encode_distance(dist[i]), ids[t0 + i]};
    }
  }
}

}  // namespace

namespace {

/// The per-ISA entry switches can't panic themselves (the variant TUs stay
/// free of std::string-dragging headers — see data/simd/README.md), so an
/// out-of-enum kind would silently no-op into empty results.  Validate at
/// every public kernel entry instead, preserving the pre-dispatch loud
/// failure.
void require_known_kind(MetricKind kind, const char* where) {
  switch (kind) {
    case MetricKind::Euclidean:
    case MetricKind::SquaredEuclidean:
    case MetricKind::Manhattan:
    case MetricKind::Chebyshev: return;
  }
  panic(std::string(where) + ": unknown MetricKind");
}

}  // namespace

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::Euclidean: return "euclidean";
    case MetricKind::SquaredEuclidean: return "squared-euclidean";
    case MetricKind::Manhattan: return "manhattan";
    case MetricKind::Chebyshev: return "chebyshev";
  }
  return "unknown";
}

double metric_distance(MetricKind kind, const PointD& a, const PointD& b) {
  switch (kind) {
    case MetricKind::Euclidean: return EuclideanMetric{}(a, b);
    case MetricKind::SquaredEuclidean: return SquaredEuclidean{}(a, b);
    case MetricKind::Manhattan: return ManhattanMetric{}(a, b);
    case MetricKind::Chebyshev: return ChebyshevMetric{}(a, b);
  }
  panic("metric_distance: unknown MetricKind");
}

void fused_top_ell_batch(const FlatStore& store, std::span<const PointD> queries,
                         std::size_t ell, MetricKind kind,
                         std::vector<std::vector<Key>>& out, KernelScratch& scratch) {
  require_known_kind(kind, "fused_top_ell_batch");
  out.resize(queries.size());
  // An empty store has no knowable dimension (mirrors the AoS path, which
  // never checks dims against an empty shard); a non-empty one validates
  // even when ell == 0 so caller bugs aren't masked by empty results.
  if (!store.empty()) {
    for (const PointD& query : queries) require_query_dim(store.dim(), query.dim());
  }
  if (ell == 0 || store.empty()) {
    for (auto& keys : out) keys.clear();
    return;
  }
  const std::size_t cap = std::min(ell, store.size());
  batch_impl(simd::kernel_ops(), kind, store, queries, cap, out, scratch);
}

RangeTopEll::RangeTopEll(const FlatStore& store, const PointD& query, std::size_t ell,
                         MetricKind kind, KernelScratch& scratch)
    : store_(store), query_(query), kind_(kind), ops_(&simd::kernel_ops()),
      scratch_(scratch), threshold_(std::numeric_limits<double>::infinity()) {
  require_known_kind(kind, "RangeTopEll");
  if (!store.empty()) {
    require_query_dim(store.dim(), query.dim());
  }
  cap_ = std::min(ell, store.size());
  if (cap_ == 0) return;
  // All buffers live in the caller's scratch (reused across the query
  // block), so steady-state hybrid scoring is allocation-free like the
  // fused batch path.
  scratch_.dist.resize(kTile);
  scratch_.heaps.resize(cap_);
  scratch_.cols.resize(store.dim());
  for (std::size_t j = 0; j < store.dim(); ++j) scratch_.cols[j] = store.dim_coords(j).data();
}

void RangeTopEll::score_range(std::size_t lo, std::size_t hi) {
  DKNN_ASSERT(lo <= hi && hi <= store_.size(), "RangeTopEll: range out of bounds");
  if (cap_ == 0 || lo == hi) return;
  const PointId* ids = store_.ids().data();
  HeapState heap{scratch_.heaps.data(), heap_size_, cap_};
  for (std::size_t t0 = lo; t0 < hi; t0 += kTile) {
    const std::size_t m = std::min(kTile, hi - t0);
    ops_->tile_scores(kind_, scratch_.cols.data(), query_.coords.data(), store_.dim(), t0, m,
                      scratch_.dist.data());
    ops_->heap_update(kind_, heap, threshold_, scratch_.dist.data(), ids + t0, m);
  }
  heap_size_ = heap.size;
}

void RangeTopEll::finish(std::vector<Key>& out) {
  DistId* heap = scratch_.heaps.data();
  std::sort_heap(heap, heap + heap_size_);
  out.clear();
  out.reserve(heap_size_);
  for (std::size_t i = 0; i < heap_size_; ++i) {
    out.push_back(Key{encode_distance(heap[i].first), heap[i].second});
  }
}

std::vector<Key> fused_top_ell(const FlatStore& store, const PointD& query, std::size_t ell,
                               MetricKind kind) {
  KernelScratch scratch;
  std::vector<std::vector<Key>> out;
  fused_top_ell_batch(store, std::span<const PointD>(&query, 1), ell, kind, out, scratch);
  return std::move(out[0]);
}

void score_store(const FlatStore& store, const PointD& query, MetricKind kind,
                 std::vector<Key>& out) {
  require_known_kind(kind, "score_store");
  if (store.empty()) {
    out.clear();
    return;
  }
  require_query_dim(store.dim(), query.dim());
  score_store_impl(simd::kernel_ops(), kind, store, query, out);
}

}  // namespace dknn

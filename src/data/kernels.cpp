#include "data/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dknn {
namespace {

/// Points per block.  One column slice (8 KB) plus the distance tile stay
/// resident while the whole query block streams over them.
constexpr std::size_t kTile = 1024;

/// Largest dimensionality with a fully-unrolled register-accumulating
/// kernel; larger d falls back to the dimension-outer loop.
constexpr std::size_t kMaxFixedDim = 16;

using DistId = std::pair<double, PointId>;

/// Raw per-tile scores: squared sums for the Euclidean family (the sqrt, if
/// any, is applied lazily during selection), direct values for L1/L∞.
/// Per point, coordinates accumulate in ascending dimension order — the
/// exact operation sequence of the metric.hpp functors — so results are
/// byte-identical to the AoS path.

/// Fixed-dimension kernel: the j-loop fully unrolls and the accumulator
/// chain lives in registers, so each point costs D column loads and one
/// store; the i-loop auto-vectorizes.
template <MetricKind K, std::size_t D>
void tile_scores_fixed(const double* const* cols, const double* query, std::size_t t0,
                       std::size_t m, double* __restrict dist) {
  for (std::size_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < D; ++j) {
      const double diff = cols[j][t0 + i] - query[j];
      if constexpr (K == MetricKind::Euclidean || K == MetricKind::SquaredEuclidean) {
        acc += diff * diff;
      } else if constexpr (K == MetricKind::Manhattan) {
        acc += std::fabs(diff);
      } else {
        static_assert(K == MetricKind::Chebyshev);
        acc = std::max(acc, std::fabs(diff));
      }
    }
    dist[i] = acc;
  }
}

/// Dynamic-dimension fallback: dimension-outer accumulation through the
/// tile buffer (still vectorized, but pays dist loads/stores per dim).
template <MetricKind K>
void tile_scores_dynamic(const double* const* cols, const double* query, std::size_t d,
                         std::size_t t0, std::size_t m, double* __restrict dist) {
  std::fill_n(dist, m, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    const double qj = query[j];
    const double* __restrict col = cols[j] + t0;
    if constexpr (K == MetricKind::Euclidean || K == MetricKind::SquaredEuclidean) {
      for (std::size_t i = 0; i < m; ++i) {
        const double diff = col[i] - qj;
        dist[i] += diff * diff;
      }
    } else if constexpr (K == MetricKind::Manhattan) {
      for (std::size_t i = 0; i < m; ++i) dist[i] += std::fabs(col[i] - qj);
    } else {
      static_assert(K == MetricKind::Chebyshev);
      for (std::size_t i = 0; i < m; ++i) dist[i] = std::max(dist[i], std::fabs(col[i] - qj));
    }
  }
}

template <MetricKind K>
void tile_scores(const double* const* cols, const double* query, std::size_t d, std::size_t t0,
                 std::size_t m, double* dist) {
  switch (d) {
#define DKNN_FIXED_DIM_CASE(D) \
  case D: return tile_scores_fixed<K, D>(cols, query, t0, m, dist);
    DKNN_FIXED_DIM_CASE(1)
    DKNN_FIXED_DIM_CASE(2)
    DKNN_FIXED_DIM_CASE(3)
    DKNN_FIXED_DIM_CASE(4)
    DKNN_FIXED_DIM_CASE(5)
    DKNN_FIXED_DIM_CASE(6)
    DKNN_FIXED_DIM_CASE(7)
    DKNN_FIXED_DIM_CASE(8)
    DKNN_FIXED_DIM_CASE(9)
    DKNN_FIXED_DIM_CASE(10)
    DKNN_FIXED_DIM_CASE(11)
    DKNN_FIXED_DIM_CASE(12)
    DKNN_FIXED_DIM_CASE(13)
    DKNN_FIXED_DIM_CASE(14)
    DKNN_FIXED_DIM_CASE(15)
    DKNN_FIXED_DIM_CASE(16)
#undef DKNN_FIXED_DIM_CASE
    case 0: std::fill_n(dist, m, 0.0); return;
    default: return tile_scores_dynamic<K>(cols, query, d, t0, m, dist);
  }
}
static_assert(kMaxFixedDim == 16, "keep the dispatch table in sync");

/// Column base pointers for one store: a stack array for the fixed-dim
/// kernels, heap-backed past kMaxFixedDim.
struct ColumnPointers {
  const double* fixed[kMaxFixedDim];
  std::vector<const double*> dynamic;

  explicit ColumnPointers(const FlatStore& store) {
    const std::size_t d = store.dim();
    if (d > kMaxFixedDim) dynamic.resize(d);
    double const** out = d > kMaxFixedDim ? dynamic.data() : fixed;
    for (std::size_t j = 0; j < d; ++j) out[j] = store.dim_coords(j).data();
  }
  [[nodiscard]] const double* const* get() const {
    return dynamic.empty() ? fixed : dynamic.data();
  }
};

/// Bounded max-heap of (distance, id) over a caller-provided buffer.
/// Lexicographic pair order matches Key order because encode_distance is
/// strictly monotone.
struct BoundedHeap {
  DistId* data;
  std::size_t size;
  std::size_t cap;

  [[nodiscard]] bool full() const { return size == cap; }
  [[nodiscard]] const DistId& top() const { return data[0]; }
  void push(DistId entry) {
    data[size++] = entry;
    std::push_heap(data, data + size);
  }
  void replace_top(DistId entry) {
    std::pop_heap(data, data + size);
    data[size - 1] = entry;
    std::push_heap(data, data + size);
  }
};

/// Conservative squared-domain rejection threshold for the lazy-sqrt
/// Euclidean path.  Guarantee: raw > threshold  ⟹  sqrt(raw) > r, so a
/// squared score above it can be rejected without computing its sqrt.
/// Proof sketch: let r' = nextafter(r, ∞).  The returned value is ≥ r'² in
/// real arithmetic (one round-to-nearest error is undone by the final
/// next-up), so raw > threshold ⟹ √raw > r' in ℝ, and correctly-rounded
/// monotone sqrt then gives fl(√raw) ≥ r' > r.  False *accepts* merely
/// cost one sqrt and an exact comparison — never wrong answers.
[[nodiscard]] double reject_threshold_sq(double r) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  const double up = std::nextafter(r, inf);
  return std::nextafter(up * up, inf);
}

/// Streams one scored tile into the heap.  For Euclidean, `raw` holds
/// squared sums and sqrt is applied only to candidates that survive the
/// threshold prefilter (O(ℓ log n) of them, not n); selection operates on
/// the exact sqrt values, so parity with the AoS path is bit-exact.
template <MetricKind K>
void heap_update(BoundedHeap& heap, double& threshold, const double* raw, const PointId* ids,
                 std::size_t m) {
  for (std::size_t i = 0; i < m; ++i) {
    const double s = raw[i];
    if (heap.full() && s > threshold) continue;  // common case: one compare
    if constexpr (K == MetricKind::Euclidean) {
      const DistId cand{std::sqrt(s), ids[i]};
      if (!heap.full()) {
        heap.push(cand);
        if (heap.full()) threshold = reject_threshold_sq(heap.top().first);
      } else if (cand < heap.top()) {
        heap.replace_top(cand);
        threshold = reject_threshold_sq(heap.top().first);
      }
    } else {
      const DistId cand{s, ids[i]};
      if (!heap.full()) {
        heap.push(cand);
        if (heap.full()) threshold = heap.top().first;
      } else if (cand < heap.top()) {
        heap.replace_top(cand);
        threshold = heap.top().first;
      }
    }
  }
}

template <MetricKind K>
void batch_impl(const FlatStore& store, std::span<const PointD> queries, std::size_t cap,
                std::vector<std::vector<Key>>& out, KernelScratch& scratch) {
  const std::size_t n = store.size();
  const std::size_t d = store.dim();
  const std::size_t num_queries = queries.size();
  scratch.dist.resize(kTile);
  scratch.heaps.resize(num_queries * cap);
  scratch.heap_sizes.assign(num_queries, 0);
  const PointId* ids = store.ids().data();
  const ColumnPointers cols(store);

  // Rejection thresholds, one per query (+∞ until that heap fills).
  scratch.thresholds.assign(num_queries, std::numeric_limits<double>::infinity());

  for (std::size_t t0 = 0; t0 < n; t0 += kTile) {
    const std::size_t m = std::min(kTile, n - t0);
    for (std::size_t q = 0; q < num_queries; ++q) {
      tile_scores<K>(cols.get(), queries[q].coords.data(), d, t0, m, scratch.dist.data());
      BoundedHeap heap{scratch.heaps.data() + q * cap, scratch.heap_sizes[q], cap};
      heap_update<K>(heap, scratch.thresholds[q], scratch.dist.data(), ids + t0, m);
      scratch.heap_sizes[q] = heap.size;
    }
  }

  for (std::size_t q = 0; q < num_queries; ++q) {
    DistId* heap = scratch.heaps.data() + q * cap;
    const std::size_t size = scratch.heap_sizes[q];
    std::sort_heap(heap, heap + size);
    out[q].clear();
    out[q].reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
      out[q].push_back(Key{encode_distance(heap[i].first), heap[i].second});
    }
  }
}

template <MetricKind K>
void score_store_impl(const FlatStore& store, const PointD& query, std::vector<Key>& out) {
  const std::size_t n = store.size();
  const std::size_t d = store.dim();
  const PointId* ids = store.ids().data();
  const ColumnPointers cols(store);
  double dist[kTile];
  out.resize(n);
  for (std::size_t t0 = 0; t0 < n; t0 += kTile) {
    const std::size_t m = std::min(kTile, n - t0);
    tile_scores<K>(cols.get(), query.coords.data(), d, t0, m, dist);
    // Materialization forces every rank into the metric's domain — the
    // fused path's lazy sqrt is exactly what this variant cannot do.
    if constexpr (K == MetricKind::Euclidean) {
      for (std::size_t i = 0; i < m; ++i) dist[i] = std::sqrt(dist[i]);
    }
    for (std::size_t i = 0; i < m; ++i) {
      out[t0 + i] = Key{encode_distance(dist[i]), ids[t0 + i]};
    }
  }
}

}  // namespace

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::Euclidean: return "euclidean";
    case MetricKind::SquaredEuclidean: return "squared-euclidean";
    case MetricKind::Manhattan: return "manhattan";
    case MetricKind::Chebyshev: return "chebyshev";
  }
  return "unknown";
}

double metric_distance(MetricKind kind, const PointD& a, const PointD& b) {
  switch (kind) {
    case MetricKind::Euclidean: return EuclideanMetric{}(a, b);
    case MetricKind::SquaredEuclidean: return SquaredEuclidean{}(a, b);
    case MetricKind::Manhattan: return ManhattanMetric{}(a, b);
    case MetricKind::Chebyshev: return ChebyshevMetric{}(a, b);
  }
  panic("metric_distance: unknown MetricKind");
}

void fused_top_ell_batch(const FlatStore& store, std::span<const PointD> queries,
                         std::size_t ell, MetricKind kind,
                         std::vector<std::vector<Key>>& out, KernelScratch& scratch) {
  out.resize(queries.size());
  // An empty store has no knowable dimension (mirrors the AoS path, which
  // never checks dims against an empty shard); a non-empty one validates
  // even when ell == 0 so caller bugs aren't masked by empty results.
  if (!store.empty()) {
    for (const PointD& query : queries) {
      DKNN_REQUIRE(query.dim() == store.dim(), "fused_top_ell_batch: dimension mismatch");
    }
  }
  if (ell == 0 || store.empty()) {
    for (auto& keys : out) keys.clear();
    return;
  }
  const std::size_t cap = std::min(ell, store.size());
  switch (kind) {
    case MetricKind::Euclidean:
      return batch_impl<MetricKind::Euclidean>(store, queries, cap, out, scratch);
    case MetricKind::SquaredEuclidean:
      return batch_impl<MetricKind::SquaredEuclidean>(store, queries, cap, out, scratch);
    case MetricKind::Manhattan:
      return batch_impl<MetricKind::Manhattan>(store, queries, cap, out, scratch);
    case MetricKind::Chebyshev:
      return batch_impl<MetricKind::Chebyshev>(store, queries, cap, out, scratch);
  }
  panic("fused_top_ell_batch: unknown MetricKind");
}

RangeTopEll::RangeTopEll(const FlatStore& store, const PointD& query, std::size_t ell,
                         MetricKind kind, KernelScratch& scratch)
    : store_(store), query_(query), kind_(kind), scratch_(scratch),
      threshold_(std::numeric_limits<double>::infinity()) {
  if (!store.empty()) {
    DKNN_REQUIRE(query.dim() == store.dim(), "RangeTopEll: dimension mismatch");
  }
  cap_ = std::min(ell, store.size());
  if (cap_ == 0) return;
  // All buffers live in the caller's scratch (reused across the query
  // block), so steady-state hybrid scoring is allocation-free like the
  // fused batch path.
  scratch_.dist.resize(kTile);
  scratch_.heaps.resize(cap_);
  scratch_.cols.resize(store.dim());
  for (std::size_t j = 0; j < store.dim(); ++j) scratch_.cols[j] = store.dim_coords(j).data();
}

template <MetricKind K>
void RangeTopEll::range_impl(std::size_t lo, std::size_t hi) {
  const PointId* ids = store_.ids().data();
  BoundedHeap heap{scratch_.heaps.data(), heap_size_, cap_};
  for (std::size_t t0 = lo; t0 < hi; t0 += kTile) {
    const std::size_t m = std::min(kTile, hi - t0);
    tile_scores<K>(scratch_.cols.data(), query_.coords.data(), store_.dim(), t0, m,
                   scratch_.dist.data());
    heap_update<K>(heap, threshold_, scratch_.dist.data(), ids + t0, m);
  }
  heap_size_ = heap.size;
}

void RangeTopEll::score_range(std::size_t lo, std::size_t hi) {
  DKNN_ASSERT(lo <= hi && hi <= store_.size(), "RangeTopEll: range out of bounds");
  if (cap_ == 0 || lo == hi) return;
  switch (kind_) {
    case MetricKind::Euclidean: return range_impl<MetricKind::Euclidean>(lo, hi);
    case MetricKind::SquaredEuclidean: return range_impl<MetricKind::SquaredEuclidean>(lo, hi);
    case MetricKind::Manhattan: return range_impl<MetricKind::Manhattan>(lo, hi);
    case MetricKind::Chebyshev: return range_impl<MetricKind::Chebyshev>(lo, hi);
  }
  panic("RangeTopEll: unknown MetricKind");
}

void RangeTopEll::finish(std::vector<Key>& out) {
  DistId* heap = scratch_.heaps.data();
  std::sort_heap(heap, heap + heap_size_);
  out.clear();
  out.reserve(heap_size_);
  for (std::size_t i = 0; i < heap_size_; ++i) {
    out.push_back(Key{encode_distance(heap[i].first), heap[i].second});
  }
}

std::vector<Key> fused_top_ell(const FlatStore& store, const PointD& query, std::size_t ell,
                               MetricKind kind) {
  KernelScratch scratch;
  std::vector<std::vector<Key>> out;
  fused_top_ell_batch(store, std::span<const PointD>(&query, 1), ell, kind, out, scratch);
  return std::move(out[0]);
}

void score_store(const FlatStore& store, const PointD& query, MetricKind kind,
                 std::vector<Key>& out) {
  if (store.empty()) {
    out.clear();
    return;
  }
  DKNN_REQUIRE(query.dim() == store.dim(), "score_store: dimension mismatch");
  switch (kind) {
    case MetricKind::Euclidean: return score_store_impl<MetricKind::Euclidean>(store, query, out);
    case MetricKind::SquaredEuclidean:
      return score_store_impl<MetricKind::SquaredEuclidean>(store, query, out);
    case MetricKind::Manhattan: return score_store_impl<MetricKind::Manhattan>(store, query, out);
    case MetricKind::Chebyshev: return score_store_impl<MetricKind::Chebyshev>(store, query, out);
  }
  panic("score_store: unknown MetricKind");
}

}  // namespace dknn

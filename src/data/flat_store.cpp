#include "data/flat_store.hpp"

namespace dknn {

FlatStore::FlatStore(std::span<const PointD> points, std::span<const PointId> ids)
    : n_(points.size()), d_(points.empty() ? 0 : points[0].dim()) {
  DKNN_REQUIRE(points.size() == ids.size(), "FlatStore: points/ids must align");
  coords_.resize(n_ * d_);
  ids_.assign(ids.begin(), ids.end());
  for (std::size_t i = 0; i < n_; ++i) {
    const PointD& p = points[i];
    DKNN_REQUIRE(p.dim() == d_, "FlatStore: all points must share one dimension");
    for (std::size_t j = 0; j < d_; ++j) coords_[j * n_ + i] = p[j];
  }
}

PointD FlatStore::point(std::size_t i) const {
  DKNN_REQUIRE(i < n_, "FlatStore: index out of range");
  std::vector<double> c(d_);
  for (std::size_t j = 0; j < d_; ++j) c[j] = coords_[j * n_ + i];
  return PointD(std::move(c));
}

}  // namespace dknn

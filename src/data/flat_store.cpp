#include "data/flat_store.hpp"

namespace dknn {

FlatStore::FlatStore(std::span<const PointD> points, std::span<const PointId> ids)
    : n_(points.size()), d_(points.empty() ? 0 : points[0].dim()), stride_(points.size()) {
  DKNN_REQUIRE(points.size() == ids.size(), "FlatStore: points/ids must align");
  coords_.resize(n_ * d_);
  ids_.assign(ids.begin(), ids.end());
  for (std::size_t i = 0; i < n_; ++i) {
    const PointD& p = points[i];
    DKNN_REQUIRE(p.dim() == d_, "FlatStore: all points must share one dimension");
    for (std::size_t j = 0; j < d_; ++j) coords_[j * n_ + i] = p[j];
  }
}

FlatStore::FlatStore(std::shared_ptr<const std::vector<double>> coords,
                     std::shared_ptr<const std::vector<PointId>> ids, std::size_t n,
                     std::size_t dim, std::size_t stride)
    : n_(n),
      d_(dim),
      stride_(stride),
      shared_coords_(std::move(coords)),
      shared_ids_(std::move(ids)) {
  DKNN_REQUIRE(stride_ >= n_, "FlatStore: stride must cover every row");
  DKNN_REQUIRE(shared_coords_ != nullptr && shared_coords_->size() >= d_ * stride_,
               "FlatStore: shared coordinate buffer too small");
  DKNN_REQUIRE(shared_ids_ != nullptr && shared_ids_->size() >= n_,
               "FlatStore: shared id buffer too small");
}

PointD FlatStore::point(std::size_t i) const {
  DKNN_REQUIRE(i < n_, "FlatStore: index out of range");
  std::vector<double> c(d_);
  for (std::size_t j = 0; j < d_; ++j) c[j] = coord(i, j);
  return PointD(std::move(c));
}

}  // namespace dknn

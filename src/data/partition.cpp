#include "data/partition.hpp"

namespace dknn {

std::vector<PartitionScheme> all_partition_schemes() {
  return {PartitionScheme::RoundRobin, PartitionScheme::Random, PartitionScheme::SortedBlocks,
          PartitionScheme::FirstHeavy};
}

const char* partition_scheme_name(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::RoundRobin: return "round-robin";
    case PartitionScheme::Random: return "random";
    case PartitionScheme::SortedBlocks: return "sorted-blocks";
    case PartitionScheme::FirstHeavy: return "first-heavy";
  }
  return "unknown";
}

}  // namespace dknn

#pragma once
/// \file key.hpp
/// \brief The total order every distributed algorithm in this repo runs on.
///
/// A `Key` is a (distance, id) pair.  Distances are carried as 64-bit
/// unsigned "ranks": scalar |p − q| distances are used directly, and
/// non-negative doubles are mapped through an order-preserving bit trick
/// (IEEE-754 non-negative doubles compare identically as integers).  IDs
/// are the paper's random unique identifiers, so *all* keys are distinct
/// and ties in distance are broken exactly as §2 prescribes.  Keys are 128
/// bits on the wire — O(log n)-bit messages in the model's terms.

#include <bit>
#include <compare>
#include <cstdint>
#include <limits>

#include "serial/codec.hpp"
#include "support/panic.hpp"

namespace dknn {

/// Order-preserving encoding of a non-negative finite double into uint64.
[[nodiscard]] inline std::uint64_t encode_distance(double d) {
  DKNN_REQUIRE(d >= 0.0, "distances must be non-negative");
  DKNN_REQUIRE(d == d, "distance is NaN");
  // For non-negative IEEE doubles, the bit pattern is monotone in value.
  return std::bit_cast<std::uint64_t>(d);
}

/// Inverse of encode_distance.
[[nodiscard]] inline double decode_distance(std::uint64_t bits) {
  return std::bit_cast<double>(bits);
}

/// Approximate distances via scaling — paper §2, footnote 4: "if distances
/// are very large, one can use scaling to work with approximate distances
/// which will be accurate with good approximation."  Clearing the low
/// `drop_bits` of every rank makes all comparisons coarse by at most one
/// quantization step: selecting on quantized keys returns points whose
/// true distance exceeds the exact ℓ-th distance by < 2^drop_bits
/// (property-tested in tests/test_extensions.cpp).  On a real wire this is
/// what lets distance words shrink below O(log n) bits.
[[nodiscard]] constexpr std::uint64_t quantize_rank(std::uint64_t rank, unsigned drop_bits) {
  DKNN_REQUIRE(drop_bits <= 63, "quantize_rank: must keep at least one bit");
  const std::uint64_t mask = ~std::uint64_t{0} << drop_bits;
  return rank & mask;
}

/// Totally ordered (distance-rank, id) pair.
struct Key {
  std::uint64_t rank = 0;  ///< distance or scalar value, order-preserving
  std::uint64_t id = 0;    ///< unique tie-breaking point id

  friend constexpr auto operator<=>(const Key&, const Key&) = default;

  [[nodiscard]] static constexpr Key min_key() { return Key{0, 0}; }
  [[nodiscard]] static constexpr Key max_key() {
    return Key{std::numeric_limits<std::uint64_t>::max(),
               std::numeric_limits<std::uint64_t>::max()};
  }
};

inline void encode(Writer& w, const Key& k) {
  w.put_u64(k.rank);
  w.put_u64(k.id);
}
inline Key decode_impl(Reader& r, std::type_identity<Key>) {
  Key k;
  k.rank = r.get_u64();
  k.id = r.get_u64();
  return k;
}

/// Half-open search interval (lo, hi] over keys.
///
/// Algorithm 1's pseudocode keeps an inclusive [min, max] and sets
/// `min ← p` when accepting a prefix, which would recount the pivot; with
/// distinct keys the intended semantics is "strictly above p", i.e. a
/// half-open interval.  `lo = nullopt` means unbounded below (the initial
/// range must include the global minimum itself).
struct KeyRange {
  /// Exclusive lower bound; empty = −∞.
  bool has_lo = false;
  Key lo{};
  /// Inclusive upper bound.
  Key hi = Key::max_key();

  [[nodiscard]] bool contains(const Key& k) const { return (!has_lo || lo < k) && k <= hi; }
};

inline void encode(Writer& w, const KeyRange& r) {
  w.put_bool(r.has_lo);
  encode(w, r.lo);
  encode(w, r.hi);
}
inline KeyRange decode_impl(Reader& r, std::type_identity<KeyRange>) {
  KeyRange out;
  out.has_lo = r.get_bool();
  out.lo = decode_impl(r, std::type_identity<Key>{});
  out.hi = decode_impl(r, std::type_identity<Key>{});
  return out;
}

}  // namespace dknn

#pragma once
/// \file metric.hpp
/// \brief Distance functions.
///
/// The paper's dis(p, q) "can be taken any absolute norm ||p − q||" (§1.5);
/// the algorithms only ever *compare* distances, so any monotone transform
/// of a metric works too (squared Euclidean avoids the sqrt in hot loops —
/// it induces the same ℓ-NN order as Euclidean, which tests verify).

#include <bit>
#include <cmath>
#include <concepts>
#include <cstdint>

#include "data/point.hpp"
#include "data/validate.hpp"
#include "support/panic.hpp"

namespace dknn {

/// A metric maps two PointD to a non-negative double distance.
template <typename M>
concept MetricFor = requires(const M& m, const PointD& a, const PointD& b) {
  { m(a, b) } -> std::convertible_to<double>;
};

namespace detail {
/// `a` is the dataset point, `b` the query (the scoring loops call
/// metric(point, query)) — so the shared error reports the dataset's
/// dimension as "expected", identically to every other entry path.
inline void check_dims(const PointD& a, const PointD& b) { require_query_dim(a.dim(), b.dim()); }
}  // namespace detail

/// ||a − b||₂
struct EuclideanMetric {
  double operator()(const PointD& a, const PointD& b) const {
    detail::check_dims(a, b);
    double sum = 0.0;
    for (std::size_t i = 0; i < a.dim(); ++i) {
      const double d = a[i] - b[i];
      sum += d * d;
    }
    return std::sqrt(sum);
  }
};

/// ||a − b||₂² — same ℓ-NN ordering as Euclidean, no sqrt. Not a metric
/// (triangle inequality fails) but a valid comparison key.
struct SquaredEuclidean {
  double operator()(const PointD& a, const PointD& b) const {
    detail::check_dims(a, b);
    double sum = 0.0;
    for (std::size_t i = 0; i < a.dim(); ++i) {
      const double d = a[i] - b[i];
      sum += d * d;
    }
    return sum;
  }
};

/// ||a − b||₁
struct ManhattanMetric {
  double operator()(const PointD& a, const PointD& b) const {
    detail::check_dims(a, b);
    double sum = 0.0;
    for (std::size_t i = 0; i < a.dim(); ++i) sum += std::fabs(a[i] - b[i]);
    return sum;
  }
};

/// ||a − b||∞
struct ChebyshevMetric {
  double operator()(const PointD& a, const PointD& b) const {
    detail::check_dims(a, b);
    double best = 0.0;
    for (std::size_t i = 0; i < a.dim(); ++i) best = std::max(best, std::fabs(a[i] - b[i]));
    return best;
  }
};

/// ||a − b||_p for p ≥ 1.
struct MinkowskiMetric {
  double p = 3.0;
  explicit MinkowskiMetric(double p_in) : p(p_in) { DKNN_REQUIRE(p >= 1.0, "Minkowski needs p >= 1"); }
  double operator()(const PointD& a, const PointD& b) const {
    detail::check_dims(a, b);
    double sum = 0.0;
    for (std::size_t i = 0; i < a.dim(); ++i) sum += std::pow(std::fabs(a[i] - b[i]), p);
    return std::pow(sum, 1.0 / p);
  }
};

/// Hamming distance between 64-bit patterns (paper §1: "commonly used
/// metrics include Euclidean distance or Hamming distance").
[[nodiscard]] inline std::uint32_t hamming_distance(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint32_t>(std::popcount(a ^ b));
}

/// Scalar distance used by the paper's experiments: |p − q| on uint64.
[[nodiscard]] inline std::uint64_t scalar_distance(std::uint64_t p, std::uint64_t q) {
  return p > q ? p - q : q - p;
}

}  // namespace dknn

#include "core/dist_knn.hpp"

#include <algorithm>
#include <cmath>

#include "rng/sampling.hpp"
#include "seq/select.hpp"
#include "sim/collectives.hpp"
#include "support/panic.hpp"

namespace dknn {
namespace {

/// Header preceding a machine's sample messages: how many samples follow
/// and how many keys survived the local-ℓ cap (for the global target).
struct SampleHeader {
  std::uint8_t attempt = 0;
  std::uint64_t samples = 0;
  std::uint64_t capped_count = 0;  ///< |S_i| = min(ℓ, n_i)
};

void encode(Writer& w, const SampleHeader& v) {
  w.put_u8(v.attempt);
  w.put_varint(v.samples);
  w.put_varint(v.capped_count);
}
SampleHeader decode_impl(Reader& r, std::type_identity<SampleHeader>) {
  SampleHeader v;
  v.attempt = r.get_u8();
  v.samples = r.get_varint();
  v.capped_count = r.get_varint();
  return v;
}

/// One sampled key (kept one-key-per-message so message complexity matches
/// the paper's O(k log ℓ) accounting of O(log n)-bit messages).
struct SampleMsg {
  std::uint8_t attempt = 0;
  Key key{};
};

void encode(Writer& w, const SampleMsg& v) {
  w.put_u8(v.attempt);
  encode(w, v.key);
}
SampleMsg decode_impl(Reader& r, std::type_identity<SampleMsg>) {
  SampleMsg v;
  v.attempt = r.get_u8();
  v.key = decode<Key>(r);
  return v;
}

/// Leader's broadcast after evaluating the pruning radius.
struct Decision {
  std::uint8_t attempt = 0;
  bool proceed = false;    ///< false = retry with fresh samples
  bool prune_ok = true;    ///< proceed with a known-lossy prune (Monte Carlo)
  std::uint64_t target = 0;      ///< ℓ clamped to the total capped count
  std::uint64_t candidates = 0;  ///< Σ surviving candidates
};

void encode(Writer& w, const Decision& v) {
  w.put_u8(v.attempt);
  w.put_bool(v.proceed);
  w.put_bool(v.prune_ok);
  w.put_varint(v.target);
  w.put_varint(v.candidates);
}
Decision decode_impl(Reader& r, std::type_identity<Decision>) {
  Decision v;
  v.attempt = r.get_u8();
  v.proceed = r.get_bool();
  v.prune_ok = r.get_bool();
  v.target = r.get_varint();
  v.candidates = r.get_varint();
  return v;
}

/// Radius broadcast: `none` means "no pruning" (no samples existed, or the
/// retry budget was exhausted and we fall back to the always-correct path).
struct Radius {
  std::uint8_t attempt = 0;
  bool none = false;
  Key key{};
};

void encode(Writer& w, const Radius& v) {
  w.put_u8(v.attempt);
  w.put_bool(v.none);
  encode(w, v.key);
}
Radius decode_impl(Reader& r, std::type_identity<Radius>) {
  Radius v;
  v.attempt = r.get_u8();
  v.none = r.get_bool();
  v.key = decode<Key>(r);
  return v;
}

}  // namespace

std::uint64_t knn_sample_count(std::uint64_t ell, const KnnConfig& config) {
  const double l = static_cast<double>(std::max<std::uint64_t>(ell, 2));
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(config.sample_coeff * std::log(l))));
}

std::uint64_t knn_radius_rank(std::uint64_t ell, const KnnConfig& config) {
  const double l = static_cast<double>(std::max<std::uint64_t>(ell, 2));
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(config.rank_coeff * std::log(l))));
}

Task<KnnLocal> dist_knn(Ctx& ctx, std::vector<Key> local_scored, std::uint64_t ell,
                        KnnConfig config) {
  DKNN_REQUIRE(config.leader < ctx.world(), "leader id out of range");
  const std::uint32_t k = ctx.world();
  const bool is_leader = ctx.id() == config.leader;

  // Step 2: keep only the local ℓ best ("a single machine can hold at most
  // all the ℓ-NN points").  Heap-based: O(n_i log ℓ) local work and the
  // result is already sorted for the sampling/pruning steps below.
  std::vector<Key> capped =
      top_ell_smallest(std::span<const Key>(local_scored), static_cast<std::size_t>(ell));
  local_scored.clear();
  local_scored.shrink_to_fit();
  DKNN_REQUIRE(std::adjacent_find(capped.begin(), capped.end()) == capped.end(),
               "scored keys must be distinct (use unique point ids)");

  const std::uint64_t want_samples = knn_sample_count(ell, config);

  KnnLocal out;
  for (std::uint32_t attempt = 0;; ++attempt) {
    DKNN_ASSERT(attempt <= config.max_retries, "retry loop exceeded its budget");
    const auto attempt_tag = static_cast<std::uint8_t>(attempt & 0xFF);
    // After the retry budget, fall back to "no pruning": always correct,
    // just a larger instance for Algorithm 1 (at most kℓ keys).
    const bool prune_this_attempt = attempt < config.max_retries;

    // --- Steps 3-4: sample and ship to the leader -------------------------
    const std::uint64_t samples_here =
        prune_this_attempt ? std::min<std::uint64_t>(want_samples, capped.size()) : 0;
    std::vector<Key> my_samples;
    if (samples_here > 0) {
      my_samples = sample_without_replacement(std::span<const Key>(capped),
                                              static_cast<std::size_t>(samples_here), ctx.rng());
    }

    Radius radius;
    if (is_leader) {
      std::vector<Key> pool = my_samples;
      std::uint64_t total_capped = capped.size();
      if (k > 1) {
        auto headers = co_await recv_n(ctx, tags::kKnnSampleHeader, k - 1);
        std::uint64_t expected = 0;
        for (const auto& env : headers) {
          const auto header = from_bytes<SampleHeader>(env.payload);
          DKNN_ASSERT(header.attempt == attempt_tag, "stale sample header");
          expected += header.samples;
          total_capped += header.capped_count;
        }
        auto sample_msgs =
            co_await recv_n(ctx, tags::kKnnSample, static_cast<std::size_t>(expected));
        for (const auto& env : sample_msgs) {
          const auto msg = from_bytes<SampleMsg>(env.payload);
          DKNN_ASSERT(msg.attempt == attempt_tag, "stale sample");
          pool.push_back(msg.key);
        }
      }

      // --- Step 5: radius = sample at rank 21·ln ℓ --------------------------
      if (pool.empty() || !prune_this_attempt) {
        radius.none = true;
      } else {
        std::sort(pool.begin(), pool.end());
        const std::uint64_t rank = std::min<std::uint64_t>(knn_radius_rank(ell, config),
                                                           pool.size());  // 1-indexed
        radius.key = pool[static_cast<std::size_t>(rank - 1)];
      }
      radius.attempt = attempt_tag;
      for (MachineId m = 0; m < k; ++m) {
        if (m != config.leader) ctx.send_value(m, tags::kKnnRadius, radius);
      }

      // --- Steps 6-7: count survivors, decide --------------------------------
      const std::uint64_t target = std::min<std::uint64_t>(ell, total_capped);
      const auto end = radius.none
                           ? capped.end()
                           : std::upper_bound(capped.begin(), capped.end(), radius.key);
      const auto my_survivors = static_cast<std::uint64_t>(end - capped.begin());
      std::uint64_t survivors = my_survivors;
      if (k > 1) {
        auto counts = co_await recv_n(ctx, tags::kKnnCount, k - 1);
        for (const auto& env : counts) survivors += from_bytes<std::uint64_t>(env.payload);
      }

      Decision decision;
      decision.attempt = attempt_tag;
      decision.target = target;
      decision.candidates = survivors;
      if (survivors >= target) {
        decision.proceed = true;
        decision.prune_ok = true;
      } else if (config.las_vegas) {
        decision.proceed = false;  // resample (Lemma 2.3 failed low)
      } else {
        decision.proceed = true;   // Monte Carlo: press on, flag the loss
        decision.prune_ok = false;
      }
      for (MachineId m = 0; m < k; ++m) {
        if (m != config.leader) ctx.send_value(m, tags::kKnnDecision, decision);
      }
      if (!decision.proceed) {
        ++out.attempts;
        continue;
      }
      out.prune_ok = decision.prune_ok;
      out.candidates = decision.candidates;

      std::vector<Key> survivors_local(capped.begin(), end);
      SelectLocal sel = co_await dist_select(ctx, std::move(survivors_local), decision.target,
                                             SelectConfig{config.leader});
      out.selected = std::move(sel.selected);
      out.select_iterations = sel.iterations;
      co_return out;
    }

    // ----------------------------- follower side ---------------------------
    SampleHeader header;
    header.attempt = attempt_tag;
    header.samples = samples_here;
    header.capped_count = capped.size();
    ctx.send_value(config.leader, tags::kKnnSampleHeader, header);
    for (const Key& key : my_samples) {
      ctx.send_value(config.leader, tags::kKnnSample, SampleMsg{attempt_tag, key});
    }

    radius = co_await recv_value_from<Radius>(ctx, config.leader, tags::kKnnRadius);
    DKNN_ASSERT(radius.attempt == attempt_tag, "stale radius");
    const auto end = radius.none ? capped.end()
                                 : std::upper_bound(capped.begin(), capped.end(), radius.key);
    ctx.send_value(config.leader, tags::kKnnCount,
                   static_cast<std::uint64_t>(end - capped.begin()));

    const auto decision =
        co_await recv_value_from<Decision>(ctx, config.leader, tags::kKnnDecision);
    DKNN_ASSERT(decision.attempt == attempt_tag, "stale decision");
    if (!decision.proceed) {
      ++out.attempts;
      continue;
    }
    out.prune_ok = decision.prune_ok;
    out.candidates = decision.candidates;

    std::vector<Key> survivors_local(capped.begin(), end);
    SelectLocal sel = co_await dist_select(ctx, std::move(survivors_local), decision.target,
                                           SelectConfig{config.leader});
    out.selected = std::move(sel.selected);
    out.select_iterations = sel.iterations;
    co_return out;
  }
}

}  // namespace dknn

#include "core/simple_knn.hpp"

#include <algorithm>

#include "seq/select.hpp"
#include "sim/collectives.hpp"
#include "support/panic.hpp"

namespace dknn {

Task<SimpleKnnLocal> simple_knn(Ctx& ctx, std::vector<Key> local_scored, std::uint64_t ell,
                                SimpleKnnConfig config) {
  DKNN_REQUIRE(config.leader < ctx.world(), "leader id out of range");
  const std::uint32_t k = ctx.world();
  const bool is_leader = ctx.id() == config.leader;

  // Local ℓ-NN: ℓ smallest of the local scores (heap, O(n_i log ℓ)).
  local_scored =
      top_ell_smallest(std::span<const Key>(local_scored), static_cast<std::size_t>(ell));

  SimpleKnnLocal out;
  if (is_leader) {
    // Merge own + everyone's shipped candidates, take the ℓ best.
    std::vector<Key> pool = local_scored;
    if (k > 1) {
      auto shipments = co_await recv_n(ctx, tags::kSimpleShip, k - 1);
      for (const auto& env : shipments) {
        auto keys = from_bytes<std::vector<Key>>(env.payload);
        pool.insert(pool.end(), keys.begin(), keys.end());
      }
    }
    out.merged = top_ell_smallest(std::span<const Key>(pool), static_cast<std::size_t>(ell));
    if (config.announce_threshold) {
      // Threshold = worst accepted key; machines emit local keys <= it.
      SelFinished fin;
      fin.any = !out.merged.empty();
      if (fin.any) fin.bound = out.merged.back();
      for (MachineId m = 0; m < k; ++m) {
        if (m != config.leader) ctx.send_value(m, tags::kSimpleDone, fin);
      }
      if (fin.any) {
        const auto end =
            std::upper_bound(local_scored.begin(), local_scored.end(), fin.bound);
        out.selected.assign(local_scored.begin(), end);
      }
    }
    co_return out;
  }

  ctx.send_value(config.leader, tags::kSimpleShip, local_scored);
  if (config.announce_threshold) {
    const auto fin = co_await recv_value_from<SelFinished>(ctx, config.leader, tags::kSimpleDone);
    if (fin.any) {
      const auto end = std::upper_bound(local_scored.begin(), local_scored.end(), fin.bound);
      out.selected.assign(local_scored.begin(), end);
    }
  }
  co_return out;
}

}  // namespace dknn

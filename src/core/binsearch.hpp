#pragma once
/// \file binsearch.hpp
/// \brief Binary search over the distance domain — the approach of the
///        related work the paper cites ([3] Cahsai et al., [18] Yang et
///        al.: "binary search over the distance of the points from the
///        query point", §1.4).
///
/// The leader binary-searches the *numeric* 128-bit (distance, id) key
/// space for the smallest threshold T with |{keys ≤ T}| = ℓ; each probe is
/// a broadcast + count-gather (2 rounds, 2(k−1) messages).  Because probes
/// bisect the value domain rather than the data, the round count is
/// Θ(log |domain|) — independent of n and ℓ but a large constant (up to
/// 128) — and, pointedly, this is *not* a comparison-based algorithm: it
/// evades the paper's Ω(log n) comparison-based lower bound discussion by
/// exploiting bounded integer keys.  The benches put these trade-offs side
/// by side (experiment E5).

#include <cstdint>
#include <vector>

#include "core/protocol.hpp"
#include "data/key.hpp"
#include "sim/context.hpp"
#include "sim/task.hpp"

namespace dknn {

struct BinSearchConfig {
  MachineId leader = 0;
};

struct BinSearchLocal {
  /// This machine's keys among the global ℓ smallest (ascending).
  std::vector<Key> selected;
  /// Probe count (same value on every machine).
  std::uint32_t probes = 0;
  Key bound{};
  bool any = false;
};

/// Runs the binary-search selection; every machine calls with the same
/// `ell`/`config`.  Selects min(ell, Σ|local_keys|) keys globally.
/// Deterministic.
[[nodiscard]] Task<BinSearchLocal> binsearch_select(Ctx& ctx, std::vector<Key> local_keys,
                                                    std::uint64_t ell,
                                                    BinSearchConfig config = {});

}  // namespace dknn

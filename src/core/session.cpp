#include "core/session.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace dknn {
namespace detail {

SessionResult assemble_session(std::vector<SessionSlot> slots, RunReport report,
                               std::size_t num_queries) {
  SessionResult result;
  result.report = std::move(report);
  result.leader = slots[0].leader;
  for (const auto& slot : slots) {
    DKNN_ASSERT(slot.leader == result.leader, "machines disagree on the leader");
  }
  result.election_rounds = slots[result.leader].election_rounds;
  result.queries.resize(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    auto& out = result.queries[q];
    out.index = q;
    for (const auto& slot : slots) {
      out.keys.insert(out.keys.end(), slot.selected[q].begin(), slot.selected[q].end());
    }
    std::sort(out.keys.begin(), out.keys.end());
    const auto& lead = slots[result.leader];
    out.rounds = lead.rounds[q];
    out.attempts = lead.attempts[q];
    out.candidates = lead.candidates[q];
  }
  return result;
}

}  // namespace detail

SessionResult run_scalar_session(const std::vector<ScalarShard>& shards,
                                 std::span<const Value> queries, std::uint64_t ell,
                                 const EngineConfig& engine_config,
                                 const SessionConfig& session_config) {
  DKNN_REQUIRE(!shards.empty(), "need at least one shard");
  auto scorer = [&shards, queries](MachineId machine, std::size_t qi) {
    return score_scalar_shard(shards[machine], queries[qi]);
  };
  SessionResult result =
      detail::run_session(static_cast<std::uint32_t>(shards.size()), scorer, queries.size(),
                          ell, engine_config, session_config);
  for (std::size_t q = 0; q < queries.size(); ++q) result.queries[q].query = queries[q];
  return result;
}

SessionResult run_vector_session(const std::vector<VectorIndex>& indexes,
                                 std::span<const PointD> queries, std::uint64_t ell,
                                 const EngineConfig& engine_config,
                                 const SessionConfig& session_config) {
  DKNN_REQUIRE(!indexes.empty(), "need at least one index");
  auto scorer = [&indexes, queries, ell](MachineId machine, std::size_t qi) {
    return indexes[machine].top_ell(queries[qi], ell);
  };
  return detail::run_session(static_cast<std::uint32_t>(indexes.size()), scorer, queries.size(),
                             ell, engine_config, session_config);
}

}  // namespace dknn

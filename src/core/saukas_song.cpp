#include "core/saukas_song.hpp"

#include <algorithm>

#include "seq/weighted_median.hpp"
#include "sim/collectives.hpp"
#include "support/panic.hpp"

namespace dknn {
namespace {

/// Per-iteration machine summary: lower median of the active window, the
/// window size, and the window maximum (for the ℓ >= n early exit).
struct Summary {
  std::uint64_t count = 0;
  Key median{};
  Key max_key{};
};

void encode(Writer& w, const Summary& v) {
  w.put_varint(v.count);
  encode(w, v.median);
  encode(w, v.max_key);
}
Summary decode_impl(Reader& r, std::type_identity<Summary>) {
  Summary v;
  v.count = r.get_varint();
  v.median = decode<Key>(r);
  v.max_key = decode<Key>(r);
  return v;
}

/// (less-than, less-or-equal) counts against the broadcast median.
using LessLeq = std::pair<std::uint64_t, std::uint64_t>;

enum class Action : std::uint8_t {
  DropHigh = 0,  ///< keep active keys < M
  DropLow = 1,   ///< accept active keys <= M into the answer; keep > M
  Finished = 2,
};

struct SsDecision {
  Action action = Action::Finished;
  bool any = false;  ///< Finished only: whether anything is selected
  Key key{};         ///< M for drops, the final bound for Finished
};

void encode(Writer& w, const SsDecision& v) {
  w.put_u8(static_cast<std::uint8_t>(v.action));
  w.put_bool(v.any);
  encode(w, v.key);
}
SsDecision decode_impl(Reader& r, std::type_identity<SsDecision>) {
  SsDecision v;
  v.action = static_cast<Action>(r.get_u8());
  v.any = r.get_bool();
  v.key = decode<Key>(r);
  return v;
}

/// Active window [lo, hi) into the machine's sorted keys.
struct Window {
  std::size_t lo = 0;
  std::size_t hi = 0;
  [[nodiscard]] std::size_t size() const { return hi - lo; }
};

Summary summarize(const std::vector<Key>& sorted, const Window& win) {
  Summary s;
  s.count = win.size();
  if (s.count > 0) {
    s.median = sorted[win.lo + (win.size() - 1) / 2];  // lower median
    s.max_key = sorted[win.hi - 1];
  }
  return s;
}

LessLeq count_against(const std::vector<Key>& sorted, const Window& win, const Key& m) {
  const auto begin = sorted.begin() + static_cast<std::ptrdiff_t>(win.lo);
  const auto end = sorted.begin() + static_cast<std::ptrdiff_t>(win.hi);
  const auto less = static_cast<std::uint64_t>(std::lower_bound(begin, end, m) - begin);
  const auto leq = static_cast<std::uint64_t>(std::upper_bound(begin, end, m) - begin);
  return {less, leq};
}

void apply_drop(const std::vector<Key>& sorted, Window& win, Action action, const Key& m) {
  const auto begin = sorted.begin() + static_cast<std::ptrdiff_t>(win.lo);
  const auto end = sorted.begin() + static_cast<std::ptrdiff_t>(win.hi);
  if (action == Action::DropHigh) {
    win.hi = win.lo + static_cast<std::size_t>(std::lower_bound(begin, end, m) - begin);
  } else {
    win.lo = win.lo + static_cast<std::size_t>(std::upper_bound(begin, end, m) - begin);
  }
}

SaukasSongLocal make_result(const std::vector<Key>& sorted, const SsDecision& fin,
                            std::uint32_t iterations) {
  SaukasSongLocal out;
  out.iterations = iterations;
  out.any = fin.any;
  out.bound = fin.key;
  if (fin.any) {
    const auto end = std::upper_bound(sorted.begin(), sorted.end(), fin.key);
    out.selected.assign(sorted.begin(), end);
  }
  return out;
}

}  // namespace

Task<SaukasSongLocal> saukas_song_select(Ctx& ctx, std::vector<Key> local_keys, std::uint64_t ell,
                                         SaukasSongConfig config) {
  DKNN_REQUIRE(config.leader < ctx.world(), "leader id out of range");
  const std::uint32_t k = ctx.world();
  const bool is_leader = ctx.id() == config.leader;
  std::sort(local_keys.begin(), local_keys.end());
  DKNN_REQUIRE(std::adjacent_find(local_keys.begin(), local_keys.end()) == local_keys.end(),
               "local keys must be distinct (use unique point ids)");
  Window win{0, local_keys.size()};

  std::uint32_t iterations = 0;
  bool first_iteration = true;
  std::uint64_t remaining = 0;  // leader: ℓ minus accepted prefix keys

  while (true) {
    // --- summaries --------------------------------------------------------
    const Summary mine = summarize(local_keys, win);
    if (!is_leader) {
      ctx.send_value(config.leader, tags::kSsSummary, mine);
      // The leader either finishes straight away (ℓ == 0 or the active set
      // shrank to exactly ℓ) or broadcasts a median probe first.
      std::vector<Tag> watched{tags::kSsMedian, tags::kSsDecision};
      Envelope env = co_await recv_any(ctx, std::move(watched));
      if (env.tag == tags::kSsDecision) {
        const auto decision = from_bytes<SsDecision>(env.payload);
        DKNN_ASSERT(decision.action == Action::Finished,
                    "drop decision without a median probe");
        co_return make_result(local_keys, decision, iterations);
      }
      ++iterations;
      const auto m = from_bytes<Key>(env.payload);
      ctx.send_value(config.leader, tags::kSsCounts, count_against(local_keys, win, m));
      const auto decision =
          co_await recv_value_from<SsDecision>(ctx, config.leader, tags::kSsDecision);
      if (decision.action == Action::Finished) {
        co_return make_result(local_keys, decision, iterations);
      }
      apply_drop(local_keys, win, decision.action, decision.key);
      continue;
    }

    // --- leader -------------------------------------------------------------
    std::vector<WeightedKey> medians;
    medians.reserve(k);
    std::uint64_t active_total = mine.count;
    Key active_max = mine.count > 0 ? mine.max_key : Key::min_key();
    bool any_active = mine.count > 0;
    if (mine.count > 0) medians.push_back(WeightedKey{mine.median, mine.count});
    if (k > 1) {
      auto summaries = co_await recv_n(ctx, tags::kSsSummary, k - 1);
      for (const auto& env : summaries) {
        const auto s = from_bytes<Summary>(env.payload);
        active_total += s.count;
        if (s.count > 0) {
          medians.push_back(WeightedKey{s.median, s.count});
          active_max = any_active ? std::max(active_max, s.max_key) : s.max_key;
          any_active = true;
        }
      }
    }
    if (first_iteration) {
      remaining = std::min<std::uint64_t>(ell, active_total);
      first_iteration = false;
    }

    auto finish = [&](SsDecision fin) {
      for (MachineId m = 0; m < k; ++m) {
        if (m != config.leader) ctx.send_value(m, tags::kSsDecision, fin);
      }
      return make_result(local_keys, fin, iterations);
    };

    if (remaining == 0) {
      co_return finish(SsDecision{Action::Finished, false, Key{}});
    }
    if (remaining == active_total) {
      co_return finish(SsDecision{Action::Finished, true, active_max});
    }
    DKNN_ASSERT(remaining < active_total, "selection target exceeds active keys");

    // --- weighted median + counts ------------------------------------------
    ++iterations;
    const Key m = weighted_median(medians);
    for (MachineId peer = 0; peer < k; ++peer) {
      if (peer != config.leader) ctx.send_value(peer, tags::kSsMedian, m);
    }
    auto [less, leq] = count_against(local_keys, win, m);
    if (k > 1) {
      auto counts = co_await recv_n(ctx, tags::kSsCounts, k - 1);
      for (const auto& env : counts) {
        const auto c = from_bytes<LessLeq>(env.payload);
        less += c.first;
        leq += c.second;
      }
    }

    SsDecision decision;
    if (remaining <= less) {
      decision = SsDecision{Action::DropHigh, false, m};
      apply_drop(local_keys, win, Action::DropHigh, m);
    } else if (remaining <= leq) {
      // Exact boundary: with distinct keys, leq == less + 1 == remaining.
      co_return finish(SsDecision{Action::Finished, true, m});
    } else {
      decision = SsDecision{Action::DropLow, false, m};
      remaining -= leq;
      apply_drop(local_keys, win, Action::DropLow, m);
    }
    for (MachineId peer = 0; peer < k; ++peer) {
      if (peer != config.leader) ctx.send_value(peer, tags::kSsDecision, decision);
    }
  }
}

}  // namespace dknn

#pragma once
/// \file saukas_song.hpp
/// \brief Deterministic distributed selection via weighted medians —
///        Saukas & Song (SC'98), the related work the paper calls "closest
///        to the spirit of our work" (§1.4).
///
/// Per iteration every machine reports (its local median of the active set,
/// active count); the leader broadcasts the *weighted median* M of those
/// medians; machines report how many active keys are < M and ≤ M; the
/// leader either finishes (the ℓ-th smallest is M exactly — with distinct
/// keys this is an exact boundary) or discards one side.  The weighted
/// median guarantees ≥ 1/4 of the active keys drop each iteration, so the
/// loop runs O(log n) times deterministically (the paper cites the bound as
/// O(log(kℓ)) rounds and O(k log(kℓ) log ℓ) messages for the capped ℓ-NN
/// instance).
///
/// Unlike Algorithm 1's stateless followers, machines here carry their
/// active window across iterations (two indices into their sorted keys).

#include <cstdint>
#include <vector>

#include "core/protocol.hpp"
#include "data/key.hpp"
#include "sim/context.hpp"
#include "sim/task.hpp"

namespace dknn {

struct SaukasSongConfig {
  MachineId leader = 0;
};

struct SaukasSongLocal {
  /// This machine's keys among the global ℓ smallest (ascending).
  std::vector<Key> selected;
  /// Weighted-median iterations (same value on every machine).
  std::uint32_t iterations = 0;
  /// Final answer bound (selected == local keys <= bound), valid when any.
  Key bound{};
  bool any = false;
};

/// Runs Saukas–Song selection; every machine calls with the same `ell` and
/// `config`.  Selects min(ell, Σ|local_keys|) keys globally.  Deterministic:
/// identical inputs give identical iteration counts and results.
[[nodiscard]] Task<SaukasSongLocal> saukas_song_select(Ctx& ctx, std::vector<Key> local_keys,
                                                       std::uint64_t ell,
                                                       SaukasSongConfig config = {});

}  // namespace dknn

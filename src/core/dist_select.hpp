#pragma once
/// \file dist_select.hpp
/// \brief Algorithm 1 — "Finding-ℓ-Smallest-Points" (paper §2.1).
///
/// Distributed randomized selection in the k-machine model.  A leader
/// maintains a half-open search range (lo, hi] over the global key set and
/// repeatedly:
///
///   1. picks a machine with probability proportional to its in-range count
///      (Lemma 2.1: together with step 2 this makes the pivot uniform over
///      all in-range keys),
///   2. asks it for a uniformly random in-range local key p (the pivot),
///   3. asks every machine for its count of keys in (lo, p],
///   4. compares the global count s with the remaining target ℓ:
///        s == ℓ  →  done, answer bound = p;
///        s <  ℓ  →  accept (lo, p] into the answer: ℓ -= s, lo = p;
///        s >  ℓ  →  discard above p: hi = p.
///
/// Rounds: O(log n) w.h.p. (Theorem 2.2); messages O(k log n).
///
/// Implementation notes (all verified by tests):
///  * The pseudocode's inclusive [min, max] with `min ← p` would recount
///    the pivot; the half-open (lo, hi] range realizes the evident intent.
///    Keys are globally distinct ((distance, id) pairs), so exact-ℓ
///    termination is well-defined.
///  * Machines keep their keys locally sorted, so per-query work is
///    O(log n_i) after an O(n_i log n_i) one-off sort — a pure local-compute
///    optimization; the message/round pattern is exactly the paper's.
///  * The leader tracks per-machine in-range counts incrementally (init
///    counts, then each count reply updates them), so the weighted machine
///    choice needs no extra communication.

#include <cstdint>
#include <span>
#include <vector>

#include "core/protocol.hpp"
#include "data/key.hpp"
#include "sim/context.hpp"
#include "sim/task.hpp"

namespace dknn {

struct SelectConfig {
  MachineId leader = 0;
};

/// Per-machine outcome of one selection run.
struct SelectLocal {
  /// This machine's keys that belong to the global ℓ smallest (ascending).
  std::vector<Key> selected;
  /// Pivot iterations the leader needed (same value on every machine).
  std::uint32_t iterations = 0;
  /// The final answer bound: selected == { local keys <= bound }.
  Key bound{};
  /// False only when ℓ == 0 (nothing selected anywhere).
  bool any = false;
};

/// Runs Algorithm 1 over this machine's `local_keys` (need not be sorted;
/// globally distinct).  Every machine must call this with the same `ell`
/// and `config`.  Selects min(ell, Σ|local_keys|) keys globally.
[[nodiscard]] Task<SelectLocal> dist_select(Ctx& ctx, std::vector<Key> local_keys,
                                            std::uint64_t ell, SelectConfig config = {});

namespace detail {
/// Count of keys in (range.lo, range.hi] within an ascending-sorted vector.
[[nodiscard]] std::uint64_t count_in_range(const std::vector<Key>& sorted, const KeyRange& range);
/// Index window [first, last) of in-range keys within a sorted vector.
[[nodiscard]] std::pair<std::size_t, std::size_t> range_window(const std::vector<Key>& sorted,
                                                               const KeyRange& range);
}  // namespace detail

}  // namespace dknn

#pragma once
/// \file mlapi.hpp
/// \brief The machine-learning face of ℓ-NN: distributed classification
///        (majority vote) and regression (mean of targets) — the use cases
///        the paper's introduction motivates (§1: "In the classification
///        problem, one can use the majority of the labels of the K-nearest
///        neighbors... In the regression problem, one can assign the
///        average of the labels").
///
/// Flow per query: score locally → Algorithm 2 picks the global ℓ-NN →
/// each machine ships (key, label/target) for its winners to the leader
/// (≤ ℓ messages total across machines — the winners are exactly ℓ) → the
/// leader votes/averages and broadcasts the prediction.
///
/// Privacy note for the hospitals example: only distances, ids, and the
/// winners' labels ever cross the network — never the feature vectors.

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/dist_knn.hpp"
#include "core/driver.hpp"
#include "data/point.hpp"
#include "sim/engine.hpp"

namespace dknn {

/// One machine's labeled input: scored keys plus id → label.
struct LabeledKeyShard {
  std::vector<Key> scored;
  std::unordered_map<PointId, std::uint32_t> labels;
};

/// One machine's regression input: scored keys plus id → target.
struct TargetKeyShard {
  std::vector<Key> scored;
  std::unordered_map<PointId, double> targets;
};

/// How the leader combines the ℓ winners' labels.
enum class VoteRule : std::uint8_t {
  Majority,         ///< one neighbor, one vote (the paper's §1 description)
  InverseDistance,  ///< weight 1/(distance + ε) — the classic refinement;
                    ///< requires encode_distance-encoded ranks (i.e. shards
                    ///< built by make_labeled_key_shards)
};

struct ClassifyResult {
  std::uint32_t label = 0;       ///< winning label (ties → smallest label)
  std::vector<std::pair<Key, std::uint32_t>> votes;  ///< the ℓ (key, label) pairs
  GlobalRunResult run;           ///< cost report + selected keys
};

struct RegressResult {
  double prediction = 0.0;       ///< mean target of the ℓ-NN
  std::vector<std::pair<Key, double>> contributions;
  GlobalRunResult run;
};

/// Distributed ℓ-NN classification over pre-scored labeled shards.
[[nodiscard]] ClassifyResult classify_distributed(const std::vector<LabeledKeyShard>& shards,
                                                  std::uint64_t ell,
                                                  const EngineConfig& engine_config,
                                                  const KnnConfig& knn_config = {},
                                                  VoteRule rule = VoteRule::Majority);

/// Distributed ℓ-NN regression over pre-scored target shards.
[[nodiscard]] RegressResult regress_distributed(const std::vector<TargetKeyShard>& shards,
                                                std::uint64_t ell,
                                                const EngineConfig& engine_config,
                                                const KnnConfig& knn_config = {});

/// Pre-scored batched classification — the layer every batched classify
/// entry bottoms out in.  `scored_batch[q][m]` is machine m's keys for
/// query q (from any scoring path: resident ShardIndexes, serve snapshots,
/// or the KnnService facade) and `labels[m]` maps point id → label on
/// machine m (entries for dead or never-selected ids are fine; only
/// winners need one).  One engine run drives every query; the whole-batch
/// report rides on result 0's `run.report` as in classify_batch.
[[nodiscard]] std::vector<ClassifyResult> classify_scored_batch(
    const std::vector<std::vector<std::vector<Key>>>& scored_batch,
    const std::vector<std::unordered_map<PointId, std::uint32_t>>& labels, std::uint64_t ell,
    const EngineConfig& engine_config, const KnnConfig& knn_config = {},
    VoteRule rule = VoteRule::Majority);

/// Pre-scored batched regression; `targets[m]` maps point id → target.
[[nodiscard]] std::vector<RegressResult> regress_scored_batch(
    const std::vector<std::vector<std::vector<Key>>>& scored_batch,
    const std::vector<std::unordered_map<PointId, double>>& targets, std::uint64_t ell,
    const EngineConfig& engine_config, const KnnConfig& knn_config = {});

/// Shared-ownership payload-table overloads, for snapshot-reading callers
/// (the lock-free KnnService read path keeps copy-on-write per-machine
/// maps alive via shared_ptr and must classify against the *snapshot's*
/// tables, not the live ones a concurrent insert may be replacing).
/// Byte-identical to the by-value-table overloads over equal tables; every
/// `labels[m]` / `targets[m]` must be non-null.
[[nodiscard]] std::vector<ClassifyResult> classify_scored_batch(
    const std::vector<std::vector<std::vector<Key>>>& scored_batch,
    const std::vector<std::shared_ptr<const std::unordered_map<PointId, std::uint32_t>>>& labels,
    std::uint64_t ell, const EngineConfig& engine_config, const KnnConfig& knn_config = {},
    VoteRule rule = VoteRule::Majority);
[[nodiscard]] std::vector<RegressResult> regress_scored_batch(
    const std::vector<std::vector<std::vector<Key>>>& scored_batch,
    const std::vector<std::shared_ptr<const std::unordered_map<PointId, double>>>& targets,
    std::uint64_t ell, const EngineConfig& engine_config, const KnnConfig& knn_config = {});

/// Batched classification: scores the whole query block against SoA
/// mirrors of the shards with the fused kernels (data/kernels.hpp) and
/// drives every query through one engine run, so shard conversion, label
/// tables and engine setup all amortize across the batch.  Since the
/// KnnService facade (core/knn_service.hpp) this is a thin composition
/// of the same stages the facade runs (index build → batched scoring →
/// classify_scored_batch; byte equality against
/// KnnService::classify_batch is asserted in tests/test_service.cpp) —
/// hold a KnnService yourself to keep the dataset resident and amortize
/// the index build across batches.
/// Result q equals classify_distributed on shards scored for
/// queries[q] under `kind`; the whole-batch engine report rides on result
/// 0's `run.report` (later results carry empty reports — the engine ran
/// once, not B times).
/// Note: with the SquaredEuclidean default, VoteRule::InverseDistance
/// weights by 1/(‖·‖₂² + ε) — still monotone in distance.
/// `policy` selects each shard's local-scoring structure (brute scan /
/// kd-tree hybrid / auto heuristic) and `scoring` the thread count and
/// tiling of the scoring step — neither changes any result byte
/// (cross-path parity is fuzzed in tests/test_parity.cpp).
[[nodiscard]] std::vector<ClassifyResult> classify_batch(
    const std::vector<VectorShard>& shards, const std::vector<std::vector<std::uint32_t>>& labels,
    std::span<const PointD> queries, std::uint64_t ell, const EngineConfig& engine_config,
    const KnnConfig& knn_config = {}, VoteRule rule = VoteRule::Majority,
    MetricKind kind = MetricKind::SquaredEuclidean,
    ScoringPolicy policy = ScoringPolicy::Brute, const BatchScoringConfig& scoring = {});

/// Batched regression; result q equals regress_distributed on shards
/// scored for queries[q] under `kind`.  `policy` / `scoring` as in
/// classify_batch.
[[nodiscard]] std::vector<RegressResult> regress_batch(
    const std::vector<VectorShard>& shards, const std::vector<std::vector<double>>& targets,
    std::span<const PointD> queries, std::uint64_t ell, const EngineConfig& engine_config,
    const KnnConfig& knn_config = {}, MetricKind kind = MetricKind::SquaredEuclidean,
    ScoringPolicy policy = ScoringPolicy::Brute, const BatchScoringConfig& scoring = {});

/// Serve-aware batched classification: machine m's labeled training data
/// is the *live* set behind `snapshots[m]` (a SegmentStore frozen view),
/// with `labels[m]` mapping point id → label — the id-keyed shape because
/// a live store's membership churns while positional label arrays cannot.
/// Labels may cover dead ids; only winners need an entry.  Result q equals
/// classify_distributed over shards holding exactly each machine's live
/// points (tested in tests/test_serve.cpp).
[[nodiscard]] std::vector<ClassifyResult> classify_serve_batch(
    std::span<const SnapshotPtr> snapshots,
    const std::vector<std::unordered_map<PointId, std::uint32_t>>& labels,
    std::span<const PointD> queries, std::uint64_t ell, const EngineConfig& engine_config,
    const KnnConfig& knn_config = {}, VoteRule rule = VoteRule::Majority,
    MetricKind kind = MetricKind::SquaredEuclidean, const BatchScoringConfig& scoring = {});

/// Serve-aware batched regression; `targets[m]` maps point id → target.
[[nodiscard]] std::vector<RegressResult> regress_serve_batch(
    std::span<const SnapshotPtr> snapshots,
    const std::vector<std::unordered_map<PointId, double>>& targets,
    std::span<const PointD> queries, std::uint64_t ell, const EngineConfig& engine_config,
    const KnnConfig& knn_config = {}, MetricKind kind = MetricKind::SquaredEuclidean,
    const BatchScoringConfig& scoring = {});

/// Convenience: score labeled vector shards against a query under a metric.
template <MetricFor M>
[[nodiscard]] std::vector<LabeledKeyShard> make_labeled_key_shards(
    const std::vector<VectorShard>& shards, const std::vector<std::vector<std::uint32_t>>& labels,
    const PointD& query, const M& metric) {
  DKNN_REQUIRE(shards.size() == labels.size(), "shards/labels must align");
  std::vector<LabeledKeyShard> out(shards.size());
  for (std::size_t m = 0; m < shards.size(); ++m) {
    DKNN_REQUIRE(shards[m].points.size() == labels[m].size(), "points/labels must align");
    out[m].scored = score_vector_shard(shards[m], query, metric);
    for (std::size_t i = 0; i < shards[m].ids.size(); ++i) {
      out[m].labels.emplace(shards[m].ids[i], labels[m][i]);
    }
  }
  return out;
}

/// Convenience: score target vector shards against a query under a metric.
template <MetricFor M>
[[nodiscard]] std::vector<TargetKeyShard> make_target_key_shards(
    const std::vector<VectorShard>& shards, const std::vector<std::vector<double>>& targets,
    const PointD& query, const M& metric) {
  DKNN_REQUIRE(shards.size() == targets.size(), "shards/targets must align");
  std::vector<TargetKeyShard> out(shards.size());
  for (std::size_t m = 0; m < shards.size(); ++m) {
    DKNN_REQUIRE(shards[m].points.size() == targets[m].size(), "points/targets must align");
    out[m].scored = score_vector_shard(shards[m], query, metric);
    for (std::size_t i = 0; i < shards[m].ids.size(); ++i) {
      out[m].targets.emplace(shards[m].ids[i], targets[m][i]);
    }
  }
  return out;
}

/// Default scoring: SquaredEuclidean — same selected neighbors as
/// Euclidean (ordering-equivalent), no sqrt per point.
[[nodiscard]] inline std::vector<LabeledKeyShard> make_labeled_key_shards(
    const std::vector<VectorShard>& shards, const std::vector<std::vector<std::uint32_t>>& labels,
    const PointD& query) {
  return make_labeled_key_shards(shards, labels, query, SquaredEuclidean{});
}
[[nodiscard]] inline std::vector<TargetKeyShard> make_target_key_shards(
    const std::vector<VectorShard>& shards, const std::vector<std::vector<double>>& targets,
    const PointD& query) {
  return make_target_key_shards(shards, targets, query, SquaredEuclidean{});
}

}  // namespace dknn

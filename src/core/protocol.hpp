#pragma once
/// \file protocol.hpp
/// \brief Shared message tags and wire structs for the core algorithms.
///
/// Tag blocks (collision-free with election's 0x10xx block):
///   0x20xx  Algorithm 1 (distributed selection)
///   0x21xx  Algorithm 2 (distributed ℓ-NN)
///   0x22xx  simple gather baseline
///   0x23xx  Saukas–Song deterministic selection
///   0x24xx  binary-search-on-distance kNN
///   0x25xx  ML facade (label/target collection)

#include <cstdint>

#include "data/key.hpp"
#include "net/types.hpp"
#include "serial/codec.hpp"

namespace dknn {
namespace tags {

// Algorithm 1 — Finding-ℓ-Smallest-Points
inline constexpr Tag kSelInit = 0x2001;        ///< leader asks (n_i, m_i, M_i)
inline constexpr Tag kSelInitReply = 0x2002;
inline constexpr Tag kSelPivotReq = 0x2003;    ///< leader asks machine i for a pivot
inline constexpr Tag kSelPivotReply = 0x2004;
inline constexpr Tag kSelCountReq = 0x2005;    ///< leader asks |{x : x ∈ (lo, p]}|
inline constexpr Tag kSelCountReply = 0x2006;
inline constexpr Tag kSelFinished = 0x2007;    ///< leader broadcasts the final bound

// Algorithm 2 — Distributed ℓ-NN
inline constexpr Tag kKnnSampleHeader = 0x2100;  ///< per-machine sample count + |S_i|
inline constexpr Tag kKnnSample = 0x2101;      ///< machines send sampled keys
inline constexpr Tag kKnnRadius = 0x2102;      ///< leader broadcasts pruning key r
inline constexpr Tag kKnnCount = 0x2103;       ///< machines report surviving counts
inline constexpr Tag kKnnDecision = 0x2104;    ///< proceed / retry / all-input

// Simple baseline
inline constexpr Tag kSimpleShip = 0x2201;     ///< machines ship their local ℓ-NN
inline constexpr Tag kSimpleDone = 0x2202;     ///< leader broadcasts the threshold

// Saukas–Song
inline constexpr Tag kSsSummary = 0x2301;      ///< (local median, active count)
inline constexpr Tag kSsMedian = 0x2302;       ///< weighted median broadcast
inline constexpr Tag kSsCounts = 0x2303;       ///< (less, less-or-equal) counts
inline constexpr Tag kSsDecision = 0x2304;     ///< drop-high / drop-low / finished

// Binary search
inline constexpr Tag kBsInit = 0x2401;         ///< (count, min, max) gather
inline constexpr Tag kBsProbe = 0x2402;        ///< threshold broadcast
inline constexpr Tag kBsCount = 0x2403;        ///< count reply
inline constexpr Tag kBsFinished = 0x2404;

// ML facade
inline constexpr Tag kMlPayload = 0x2501;      ///< (key, label/target) of winners
inline constexpr Tag kMlAnswer = 0x2502;       ///< leader broadcasts prediction

}  // namespace tags

/// Init reply of Algorithm 1: this machine's in-play count and extrema.
/// Machines holding zero points send counted = 0 with ignored extrema.
struct SelInit {
  std::uint64_t count = 0;
  Key min_key{};
  Key max_key{};
};

inline void encode(Writer& w, const SelInit& v) {
  w.put_varint(v.count);
  encode(w, v.min_key);
  encode(w, v.max_key);
}
inline SelInit decode_impl(Reader& r, std::type_identity<SelInit>) {
  SelInit v;
  v.count = r.get_varint();
  v.min_key = decode<Key>(r);
  v.max_key = decode<Key>(r);
  return v;
}

/// Final broadcast of Algorithm 1.
struct SelFinished {
  bool any = false;        ///< false: select nothing (ℓ == 0)
  Key bound{};             ///< answer = all keys <= bound (when any)
  std::uint32_t iterations = 0;  ///< pivot iterations the leader used
};

inline void encode(Writer& w, const SelFinished& v) {
  w.put_bool(v.any);
  encode(w, v.bound);
  w.put_u32(v.iterations);
}
inline SelFinished decode_impl(Reader& r, std::type_identity<SelFinished>) {
  SelFinished v;
  v.any = r.get_bool();
  v.bound = decode<Key>(r);
  v.iterations = r.get_u32();
  return v;
}

}  // namespace dknn

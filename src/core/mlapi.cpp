#include "core/mlapi.hpp"

#include <algorithm>
#include <map>

#include "core/protocol.hpp"
#include "data/validate.hpp"
#include "sim/collectives.hpp"
#include "support/panic.hpp"

namespace dknn {
namespace {

/// Generic payload collector: after dist_knn, each machine annotates its
/// winning keys with a 64-bit payload word (label or bit-cast target) and
/// ships them to the leader; the leader ends up with exactly the global
/// winners' payloads.
struct MlSlot {
  std::vector<Key> selected;
  std::uint32_t iterations = 0;
  std::uint32_t attempts = 1;
  std::uint64_t candidates = 0;
  bool prune_ok = true;
  std::vector<std::pair<Key, std::uint64_t>> winners;  ///< leader only
};

using KeyedPayload = std::pair<Key, std::uint64_t>;

/// One query's select-and-gather — shared by the single-query and batched
/// programs.
template <typename Lookup>
Task<void> ml_step(Ctx& ctx, const std::vector<std::vector<Key>>& scored, std::uint64_t ell,
                   KnnConfig knn_config, Lookup& lookup, std::vector<MlSlot>& slots) {
  MlSlot& slot = slots[ctx.id()];
  KnnLocal local = co_await dist_knn(ctx, scored[ctx.id()], ell, knn_config);
  slot.selected = local.selected;
  slot.iterations = local.select_iterations;
  slot.attempts = local.attempts;
  slot.candidates = local.candidates;
  slot.prune_ok = local.prune_ok;

  std::vector<KeyedPayload> mine;
  mine.reserve(local.selected.size());
  for (const Key& key : local.selected) mine.emplace_back(key, lookup(ctx.id(), key.id));

  // Gather winners at the leader (one message per non-leader machine; the
  // winners number ℓ in total so the volume is O(ℓ log n) bits).
  auto gathered = co_await gather<std::vector<KeyedPayload>>(ctx, knn_config.leader,
                                                             tags::kMlPayload, mine);
  if (ctx.id() == knn_config.leader) {
    std::vector<KeyedPayload> winners;
    for (auto& part : gathered) winners.insert(winners.end(), part.begin(), part.end());
    std::sort(winners.begin(), winners.end());
    slot.winners = std::move(winners);
  }
}

template <typename Lookup>
Task<void> ml_program(Ctx& ctx, const std::vector<std::vector<Key>>* scored, std::uint64_t ell,
                      KnnConfig knn_config, Lookup lookup, std::vector<MlSlot>* slots) {
  co_await ml_step(ctx, *scored, ell, knn_config, lookup, *slots);
}

/// Batched program: every query of the block runs back to back inside one
/// engine (see session.hpp's pipelining note for why instances don't mix).
template <typename Lookup>
Task<void> ml_batch_program(Ctx& ctx, const std::vector<std::vector<std::vector<Key>>>* batch,
                            std::uint64_t ell, KnnConfig knn_config, Lookup lookup,
                            std::vector<std::vector<MlSlot>>* slots) {
  for (std::size_t q = 0; q < batch->size(); ++q) {
    co_await ml_step(ctx, (*batch)[q], ell, knn_config, lookup, (*slots)[q]);
  }
}

/// Leader-side vote: fills result.votes and result.label from the winners.
void finish_classify(ClassifyResult& result, const std::vector<KeyedPayload>& winners,
                     VoteRule rule) {
  // Weighted vote; ties resolved toward the smallest label (deterministic).
  std::map<std::uint32_t, double> tally;
  for (const auto& [key, payload] : winners) {
    const auto label = static_cast<std::uint32_t>(payload);
    result.votes.emplace_back(key, label);
    double weight = 1.0;
    if (rule == VoteRule::InverseDistance) {
      // Ranks from make_labeled_key_shards are encode_distance-encoded.
      weight = 1.0 / (decode_distance(key.rank) + 1e-9);
    }
    tally[label] += weight;
  }
  DKNN_REQUIRE(!result.votes.empty(), "classification needs at least one neighbor (ell >= 1)");
  double best_weight = -1.0;
  for (const auto& [label, weight] : tally) {
    if (weight > best_weight) {  // map iterates ascending: first max wins ties
      best_weight = weight;
      result.label = label;
    }
  }
}

/// Leader-side average: fills result.contributions and result.prediction.
void finish_regress(RegressResult& result, const std::vector<KeyedPayload>& winners) {
  DKNN_REQUIRE(!winners.empty(), "regression needs at least one neighbor (ell >= 1)");
  double sum = 0.0;
  for (const auto& [key, payload] : winners) {
    const double y = std::bit_cast<double>(payload);
    result.contributions.emplace_back(key, y);
    sum += y;
  }
  result.prediction = sum / static_cast<double>(result.contributions.size());
}

GlobalRunResult make_run_result(std::vector<MlSlot>& slots, RunReport report, MachineId leader) {
  GlobalRunResult run;
  run.report = std::move(report);
  for (auto& slot : slots) run.keys.insert(run.keys.end(), slot.selected.begin(), slot.selected.end());
  std::sort(run.keys.begin(), run.keys.end());
  run.iterations = slots[leader].iterations;
  run.attempts = slots[leader].attempts;
  run.candidates = slots[leader].candidates;
  run.prune_ok = slots[leader].prune_ok;
  return run;
}

}  // namespace

ClassifyResult classify_distributed(const std::vector<LabeledKeyShard>& shards, std::uint64_t ell,
                                    const EngineConfig& engine_config,
                                    const KnnConfig& knn_config, VoteRule rule) {
  DKNN_REQUIRE(!shards.empty(), "need at least one shard");
  std::vector<std::vector<Key>> scored;
  scored.reserve(shards.size());
  for (const auto& shard : shards) scored.push_back(shard.scored);

  EngineConfig config = engine_config;
  config.world_size = static_cast<std::uint32_t>(shards.size());
  Engine engine(config);
  std::vector<MlSlot> slots(shards.size());
  auto lookup = [&shards](MachineId machine, PointId id) -> std::uint64_t {
    const auto& labels = shards[machine].labels;
    const auto it = labels.find(id);
    DKNN_REQUIRE(it != labels.end(), "winner id has no label on its machine");
    return it->second;
  };
  RunReport report = engine.run(
      [&](Ctx& ctx) { return ml_program(ctx, &scored, ell, knn_config, lookup, &slots); });

  ClassifyResult result;
  result.run = make_run_result(slots, std::move(report), knn_config.leader);
  finish_classify(result, slots[knn_config.leader].winners, rule);
  return result;
}

RegressResult regress_distributed(const std::vector<TargetKeyShard>& shards, std::uint64_t ell,
                                  const EngineConfig& engine_config, const KnnConfig& knn_config) {
  DKNN_REQUIRE(!shards.empty(), "need at least one shard");
  std::vector<std::vector<Key>> scored;
  scored.reserve(shards.size());
  for (const auto& shard : shards) scored.push_back(shard.scored);

  EngineConfig config = engine_config;
  config.world_size = static_cast<std::uint32_t>(shards.size());
  Engine engine(config);
  std::vector<MlSlot> slots(shards.size());
  auto lookup = [&shards](MachineId machine, PointId id) -> std::uint64_t {
    const auto& targets = shards[machine].targets;
    const auto it = targets.find(id);
    DKNN_REQUIRE(it != targets.end(), "winner id has no target on its machine");
    return std::bit_cast<std::uint64_t>(it->second);
  };
  RunReport report = engine.run(
      [&](Ctx& ctx) { return ml_program(ctx, &scored, ell, knn_config, lookup, &slots); });

  RegressResult result;
  result.run = make_run_result(slots, std::move(report), knn_config.leader);
  finish_regress(result, slots[knn_config.leader].winners);
  return result;
}

namespace {

/// Innermost batched scaffolding: pre-scored [query][machine] keys plus a
/// (machine, id) → 64-bit payload lookup, one engine run over all queries.
/// Taking the lookup instead of materialized tables lets callers (the
/// facade in particular) serve payloads straight from their resident
/// typed maps — no O(total points) widened copy per batch.
template <typename Lookup>
std::vector<std::vector<MlSlot>> run_ml_batch_scored(
    const std::vector<std::vector<std::vector<Key>>>& scored, std::size_t world,
    std::uint64_t ell, const EngineConfig& engine_config, const KnnConfig& knn_config,
    const Lookup& lookup, RunReport* report_out) {
  EngineConfig config = engine_config;
  config.world_size = static_cast<std::uint32_t>(world);
  Engine engine(config);
  std::vector<std::vector<MlSlot>> slots(scored.size(), std::vector<MlSlot>(world));
  *report_out = engine.run(
      [&](Ctx& ctx) { return ml_batch_program(ctx, &scored, ell, knn_config, lookup, &slots); });
  return slots;
}

}  // namespace

std::vector<ClassifyResult> classify_scored_batch(
    const std::vector<std::vector<std::vector<Key>>>& scored_batch,
    const std::vector<std::unordered_map<PointId, std::uint32_t>>& labels, std::uint64_t ell,
    const EngineConfig& engine_config, const KnnConfig& knn_config, VoteRule rule) {
  DKNN_REQUIRE(!scored_batch.empty(), "need at least one query");
  const std::size_t world = scored_batch.front().size();
  DKNN_REQUIRE(world > 0, "need at least one machine");
  DKNN_REQUIRE(labels.size() == world, "scored/labels must align");

  // A winner without a label is a caller-input failure (an unlabeled
  // point won the vote), so it carries a typed error like every other
  // precondition — the engine rethrows it intact.
  auto lookup = [&labels](MachineId machine, PointId id) -> std::uint64_t {
    const auto& table = labels[machine];
    const auto it = table.find(id);
    if (it == table.end()) {
      throw PreconditionError("dknn: winner id " + std::to_string(id) +
                              " has no label on its machine");
    }
    return it->second;
  };
  RunReport report;
  auto slots = run_ml_batch_scored(scored_batch, world, ell, engine_config, knn_config, lookup,
                                   &report);

  std::vector<ClassifyResult> results(scored_batch.size());
  for (std::size_t q = 0; q < scored_batch.size(); ++q) {
    results[q].run = make_run_result(slots[q], q == 0 ? std::move(report) : RunReport{},
                                     knn_config.leader);
    finish_classify(results[q], slots[q][knn_config.leader].winners, rule);
  }
  return results;
}

std::vector<RegressResult> regress_scored_batch(
    const std::vector<std::vector<std::vector<Key>>>& scored_batch,
    const std::vector<std::unordered_map<PointId, double>>& targets, std::uint64_t ell,
    const EngineConfig& engine_config, const KnnConfig& knn_config) {
  DKNN_REQUIRE(!scored_batch.empty(), "need at least one query");
  const std::size_t world = scored_batch.front().size();
  DKNN_REQUIRE(world > 0, "need at least one machine");
  DKNN_REQUIRE(targets.size() == world, "scored/targets must align");

  auto lookup = [&targets](MachineId machine, PointId id) -> std::uint64_t {
    const auto& table = targets[machine];
    const auto it = table.find(id);
    if (it == table.end()) {
      throw PreconditionError("dknn: winner id " + std::to_string(id) +
                              " has no target on its machine");
    }
    return std::bit_cast<std::uint64_t>(it->second);
  };
  RunReport report;
  auto slots = run_ml_batch_scored(scored_batch, world, ell, engine_config, knn_config, lookup,
                                   &report);

  std::vector<RegressResult> results(scored_batch.size());
  for (std::size_t q = 0; q < scored_batch.size(); ++q) {
    results[q].run = make_run_result(slots[q], q == 0 ? std::move(report) : RunReport{},
                                     knn_config.leader);
    finish_regress(results[q], slots[q][knn_config.leader].winners);
  }
  return results;
}

std::vector<ClassifyResult> classify_scored_batch(
    const std::vector<std::vector<std::vector<Key>>>& scored_batch,
    const std::vector<std::shared_ptr<const std::unordered_map<PointId, std::uint32_t>>>& labels,
    std::uint64_t ell, const EngineConfig& engine_config, const KnnConfig& knn_config,
    VoteRule rule) {
  DKNN_REQUIRE(!scored_batch.empty(), "need at least one query");
  const std::size_t world = scored_batch.front().size();
  DKNN_REQUIRE(world > 0, "need at least one machine");
  DKNN_REQUIRE(labels.size() == world, "scored/labels must align");
  for (const auto& table : labels) DKNN_REQUIRE(table != nullptr, "null label table");

  auto lookup = [&labels](MachineId machine, PointId id) -> std::uint64_t {
    const auto& table = *labels[machine];
    const auto it = table.find(id);
    if (it == table.end()) {
      throw PreconditionError("dknn: winner id " + std::to_string(id) +
                              " has no label on its machine");
    }
    return it->second;
  };
  RunReport report;
  auto slots = run_ml_batch_scored(scored_batch, world, ell, engine_config, knn_config, lookup,
                                   &report);

  std::vector<ClassifyResult> results(scored_batch.size());
  for (std::size_t q = 0; q < scored_batch.size(); ++q) {
    results[q].run = make_run_result(slots[q], q == 0 ? std::move(report) : RunReport{},
                                     knn_config.leader);
    finish_classify(results[q], slots[q][knn_config.leader].winners, rule);
  }
  return results;
}

std::vector<RegressResult> regress_scored_batch(
    const std::vector<std::vector<std::vector<Key>>>& scored_batch,
    const std::vector<std::shared_ptr<const std::unordered_map<PointId, double>>>& targets,
    std::uint64_t ell, const EngineConfig& engine_config, const KnnConfig& knn_config) {
  DKNN_REQUIRE(!scored_batch.empty(), "need at least one query");
  const std::size_t world = scored_batch.front().size();
  DKNN_REQUIRE(world > 0, "need at least one machine");
  DKNN_REQUIRE(targets.size() == world, "scored/targets must align");
  for (const auto& table : targets) DKNN_REQUIRE(table != nullptr, "null target table");

  auto lookup = [&targets](MachineId machine, PointId id) -> std::uint64_t {
    const auto& table = *targets[machine];
    const auto it = table.find(id);
    if (it == table.end()) {
      throw PreconditionError("dknn: winner id " + std::to_string(id) +
                              " has no target on its machine");
    }
    return std::bit_cast<std::uint64_t>(it->second);
  };
  RunReport report;
  auto slots = run_ml_batch_scored(scored_batch, world, ell, engine_config, knn_config, lookup,
                                   &report);

  std::vector<RegressResult> results(scored_batch.size());
  for (std::size_t q = 0; q < scored_batch.size(); ++q) {
    results[q].run = make_run_result(slots[q], q == 0 ? std::move(report) : RunReport{},
                                     knn_config.leader);
    finish_regress(results[q], slots[q][knn_config.leader].winners);
  }
  return results;
}

// The batched dataset-level entries are thin wrappers over the facade's
// decomposed stages: exactly the make_shard_indexes →
// score_vector_shards_batch → classify/regress_scored_batch pipeline
// KnnService::classify_batch/regress_batch runs (byte equality against
// the facade is asserted in tests/test_service.cpp), composed here
// directly so a one-shot call borrows the caller's shards instead of
// copying them into a throwaway service.  Resident callers should hold a
// KnnService and amortize the index build across batches.

std::vector<ClassifyResult> classify_batch(const std::vector<VectorShard>& shards,
                                           const std::vector<std::vector<std::uint32_t>>& labels,
                                           std::span<const PointD> queries, std::uint64_t ell,
                                           const EngineConfig& engine_config,
                                           const KnnConfig& knn_config, VoteRule rule,
                                           MetricKind kind, ScoringPolicy policy,
                                           const BatchScoringConfig& scoring) {
  DKNN_REQUIRE(!shards.empty(), "need at least one shard");
  DKNN_REQUIRE(!queries.empty(), "need at least one query");
  DKNN_REQUIRE(shards.size() == labels.size(), "shards/labels must align");
  for (std::size_t m = 0; m < shards.size(); ++m) {
    DKNN_REQUIRE(shards[m].points.size() == labels[m].size(), "points/labels must align");
  }
  const std::vector<ShardIndex> indexes = make_shard_indexes(shards, policy);
  const auto scored = score_vector_shards_batch(indexes, queries, ell, kind, scoring);
  std::vector<std::unordered_map<PointId, std::uint32_t>> labels_by_id(shards.size());
  for (std::size_t m = 0; m < shards.size(); ++m) {
    labels_by_id[m].reserve(shards[m].ids.size());
    for (std::size_t i = 0; i < shards[m].ids.size(); ++i) {
      labels_by_id[m].emplace(shards[m].ids[i], labels[m][i]);
    }
  }
  return classify_scored_batch(scored, labels_by_id, ell, engine_config, knn_config, rule);
}

std::vector<RegressResult> regress_batch(const std::vector<VectorShard>& shards,
                                         const std::vector<std::vector<double>>& targets,
                                         std::span<const PointD> queries, std::uint64_t ell,
                                         const EngineConfig& engine_config,
                                         const KnnConfig& knn_config, MetricKind kind,
                                         ScoringPolicy policy,
                                         const BatchScoringConfig& scoring) {
  DKNN_REQUIRE(!shards.empty(), "need at least one shard");
  DKNN_REQUIRE(!queries.empty(), "need at least one query");
  DKNN_REQUIRE(shards.size() == targets.size(), "shards/targets must align");
  for (std::size_t m = 0; m < shards.size(); ++m) {
    DKNN_REQUIRE(shards[m].points.size() == targets[m].size(), "points/targets must align");
  }
  const std::vector<ShardIndex> indexes = make_shard_indexes(shards, policy);
  const auto scored = score_vector_shards_batch(indexes, queries, ell, kind, scoring);
  std::vector<std::unordered_map<PointId, double>> targets_by_id(shards.size());
  for (std::size_t m = 0; m < shards.size(); ++m) {
    targets_by_id[m].reserve(shards[m].ids.size());
    for (std::size_t i = 0; i < shards[m].ids.size(); ++i) {
      targets_by_id[m].emplace(shards[m].ids[i], targets[m][i]);
    }
  }
  return regress_scored_batch(scored, targets_by_id, ell, engine_config, knn_config);
}

// The snapshot-level serve entries stay as the escape hatch for callers
// who manage their own SegmentStores (a live KnnService owns its stores):
// thin compositions of the public scoring + scored-batch stages.

std::vector<ClassifyResult> classify_serve_batch(
    std::span<const SnapshotPtr> snapshots,
    const std::vector<std::unordered_map<PointId, std::uint32_t>>& labels,
    std::span<const PointD> queries, std::uint64_t ell, const EngineConfig& engine_config,
    const KnnConfig& knn_config, VoteRule rule, MetricKind kind,
    const BatchScoringConfig& scoring) {
  DKNN_REQUIRE(!snapshots.empty(), "need at least one machine");
  DKNN_REQUIRE(snapshots.size() == labels.size(), "snapshots/payloads must align");
  DKNN_REQUIRE(!queries.empty(), "need at least one query");
  const auto scored = score_serve_snapshots_batch(snapshots, queries, ell, kind, scoring);
  return classify_scored_batch(scored, labels, ell, engine_config, knn_config, rule);
}

std::vector<RegressResult> regress_serve_batch(
    std::span<const SnapshotPtr> snapshots,
    const std::vector<std::unordered_map<PointId, double>>& targets,
    std::span<const PointD> queries, std::uint64_t ell, const EngineConfig& engine_config,
    const KnnConfig& knn_config, MetricKind kind, const BatchScoringConfig& scoring) {
  DKNN_REQUIRE(!snapshots.empty(), "need at least one machine");
  DKNN_REQUIRE(snapshots.size() == targets.size(), "snapshots/payloads must align");
  DKNN_REQUIRE(!queries.empty(), "need at least one query");
  const auto scored = score_serve_snapshots_batch(snapshots, queries, ell, kind, scoring);
  return regress_scored_batch(scored, targets, ell, engine_config, knn_config);
}

}  // namespace dknn

#include "core/mlapi.hpp"

#include <algorithm>
#include <map>

#include "core/protocol.hpp"
#include "sim/collectives.hpp"
#include "support/panic.hpp"

namespace dknn {
namespace {

/// Generic payload collector: after dist_knn, each machine annotates its
/// winning keys with a 64-bit payload word (label or bit-cast target) and
/// ships them to the leader; the leader ends up with exactly the global
/// winners' payloads.
struct MlSlot {
  std::vector<Key> selected;
  std::uint32_t iterations = 0;
  std::uint32_t attempts = 1;
  std::uint64_t candidates = 0;
  bool prune_ok = true;
  std::vector<std::pair<Key, std::uint64_t>> winners;  ///< leader only
};

using KeyedPayload = std::pair<Key, std::uint64_t>;

template <typename Lookup>
Task<void> ml_program(Ctx& ctx, const std::vector<std::vector<Key>>* scored, std::uint64_t ell,
                      KnnConfig knn_config, Lookup lookup, std::vector<MlSlot>* slots) {
  MlSlot& slot = (*slots)[ctx.id()];
  KnnLocal local = co_await dist_knn(ctx, (*scored)[ctx.id()], ell, knn_config);
  slot.selected = local.selected;
  slot.iterations = local.select_iterations;
  slot.attempts = local.attempts;
  slot.candidates = local.candidates;
  slot.prune_ok = local.prune_ok;

  std::vector<KeyedPayload> mine;
  mine.reserve(local.selected.size());
  for (const Key& key : local.selected) mine.emplace_back(key, lookup(ctx.id(), key.id));

  // Gather winners at the leader (one message per non-leader machine; the
  // winners number ℓ in total so the volume is O(ℓ log n) bits).
  auto gathered = co_await gather<std::vector<KeyedPayload>>(ctx, knn_config.leader,
                                                             tags::kMlPayload, mine);
  if (ctx.id() == knn_config.leader) {
    std::vector<KeyedPayload> winners;
    for (auto& part : gathered) winners.insert(winners.end(), part.begin(), part.end());
    std::sort(winners.begin(), winners.end());
    slot.winners = std::move(winners);
  }
}

GlobalRunResult make_run_result(std::vector<MlSlot>& slots, RunReport report, MachineId leader) {
  GlobalRunResult run;
  run.report = std::move(report);
  for (auto& slot : slots) run.keys.insert(run.keys.end(), slot.selected.begin(), slot.selected.end());
  std::sort(run.keys.begin(), run.keys.end());
  run.iterations = slots[leader].iterations;
  run.attempts = slots[leader].attempts;
  run.candidates = slots[leader].candidates;
  run.prune_ok = slots[leader].prune_ok;
  return run;
}

}  // namespace

ClassifyResult classify_distributed(const std::vector<LabeledKeyShard>& shards, std::uint64_t ell,
                                    const EngineConfig& engine_config,
                                    const KnnConfig& knn_config, VoteRule rule) {
  DKNN_REQUIRE(!shards.empty(), "need at least one shard");
  std::vector<std::vector<Key>> scored;
  scored.reserve(shards.size());
  for (const auto& shard : shards) scored.push_back(shard.scored);

  EngineConfig config = engine_config;
  config.world_size = static_cast<std::uint32_t>(shards.size());
  Engine engine(config);
  std::vector<MlSlot> slots(shards.size());
  auto lookup = [&shards](MachineId machine, PointId id) -> std::uint64_t {
    const auto& labels = shards[machine].labels;
    const auto it = labels.find(id);
    DKNN_REQUIRE(it != labels.end(), "winner id has no label on its machine");
    return it->second;
  };
  RunReport report = engine.run(
      [&](Ctx& ctx) { return ml_program(ctx, &scored, ell, knn_config, lookup, &slots); });

  ClassifyResult result;
  result.run = make_run_result(slots, std::move(report), knn_config.leader);
  // Weighted vote; ties resolved toward the smallest label (deterministic).
  std::map<std::uint32_t, double> tally;
  for (const auto& [key, payload] : slots[knn_config.leader].winners) {
    const auto label = static_cast<std::uint32_t>(payload);
    result.votes.emplace_back(key, label);
    double weight = 1.0;
    if (rule == VoteRule::InverseDistance) {
      // Ranks from make_labeled_key_shards are encode_distance-encoded.
      weight = 1.0 / (decode_distance(key.rank) + 1e-9);
    }
    tally[label] += weight;
  }
  DKNN_REQUIRE(!result.votes.empty(), "classification needs at least one neighbor (ell >= 1)");
  double best_weight = -1.0;
  for (const auto& [label, weight] : tally) {
    if (weight > best_weight) {  // map iterates ascending: first max wins ties
      best_weight = weight;
      result.label = label;
    }
  }
  return result;
}

RegressResult regress_distributed(const std::vector<TargetKeyShard>& shards, std::uint64_t ell,
                                  const EngineConfig& engine_config, const KnnConfig& knn_config) {
  DKNN_REQUIRE(!shards.empty(), "need at least one shard");
  std::vector<std::vector<Key>> scored;
  scored.reserve(shards.size());
  for (const auto& shard : shards) scored.push_back(shard.scored);

  EngineConfig config = engine_config;
  config.world_size = static_cast<std::uint32_t>(shards.size());
  Engine engine(config);
  std::vector<MlSlot> slots(shards.size());
  auto lookup = [&shards](MachineId machine, PointId id) -> std::uint64_t {
    const auto& targets = shards[machine].targets;
    const auto it = targets.find(id);
    DKNN_REQUIRE(it != targets.end(), "winner id has no target on its machine");
    return std::bit_cast<std::uint64_t>(it->second);
  };
  RunReport report = engine.run(
      [&](Ctx& ctx) { return ml_program(ctx, &scored, ell, knn_config, lookup, &slots); });

  RegressResult result;
  result.run = make_run_result(slots, std::move(report), knn_config.leader);
  DKNN_REQUIRE(!slots[knn_config.leader].winners.empty(),
               "regression needs at least one neighbor (ell >= 1)");
  double sum = 0.0;
  for (const auto& [key, payload] : slots[knn_config.leader].winners) {
    const double y = std::bit_cast<double>(payload);
    result.contributions.emplace_back(key, y);
    sum += y;
  }
  result.prediction = sum / static_cast<double>(result.contributions.size());
  return result;
}

}  // namespace dknn

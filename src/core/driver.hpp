#pragma once
/// \file driver.hpp
/// \brief One-call runners: wire a sharded dataset into an Engine, execute a
///        distributed algorithm on every machine, and assemble the global
///        answer plus the run's cost report.
///
/// These free functions are the *decomposed stages* beneath the KnnService
/// facade (core/knn_service.hpp) — application code should usually hold a
/// KnnService and let it own the shards, indexes, pool and cache; reach
/// for a stage directly when you need exactly one step.  The facade is
/// byte-identical to composing these yourself (fuzzed in
/// tests/test_service.cpp), so the two surfaces never fork:
///
///   auto ds = make_scalar_shards(values, k, PartitionScheme::RoundRobin, rng);
///   auto scored = score_scalar_shards(ds, query);
///   auto result = run_knn(scored, ell, KnnAlgo::DistKnn, engine_config, {});
///
/// Batched serving path (many queries against one resident dataset) —
/// build each shard's scoring structures once (SoA FlatStore, plus a
/// kd-tree when the ScoringPolicy picks the hybrid), score the whole query
/// block with the fused kernels (per query and shard only the local top-ℓ
/// keys are ever materialized), and run every query through one engine so
/// setup cost amortizes:
///
///   auto shards  = make_vector_shards(points, k, PartitionScheme::RoundRobin, rng);
///   auto indexes = make_shard_indexes(shards, ScoringPolicy::Auto);   // once
///   auto scored  = score_vector_shards_batch(indexes, queries, ell,
///                      MetricKind::SquaredEuclidean, {.threads = 0});  // pool
///   auto batch   = run_knn_batch(scored, ell, KnnAlgo::DistKnn, engine_config);
///   // batch.per_query[q].keys == run_knn(...) on query q's scores
///
/// Scoring parallelism (BatchScoringConfig::threads) and protocol-side
/// parallelism (EngineConfig::parallel for run_knn / run_knn_batch) both
/// ride the work-stealing pool in sim/thread_pool.hpp; neither changes a
/// single output byte (tests/test_parity.cpp fuzzes this).
///
/// Everything below is deterministic given (dataset, seeds, config).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/dist_knn.hpp"
#include "core/dist_select.hpp"
#include "data/flat_store.hpp"
#include "data/generators.hpp"
#include "data/ids.hpp"
#include "data/kernels.hpp"
#include "data/key.hpp"
#include "data/metric.hpp"
#include "data/partition.hpp"
#include "data/point.hpp"
#include "fault/health.hpp"
#include "seq/kdtree.hpp"
#include "seq/scoring_policy.hpp"  // IWYU pragma: export — ScoringPolicy lived here
#include "serve/segment_store.hpp"
#include "sim/engine.hpp"
#include "sim/thread_pool.hpp"

namespace dknn {

/// One machine's share of a scalar dataset (paper §3 setting).
struct ScalarShard {
  std::vector<Value> values;
  std::vector<PointId> ids;  ///< unique tie-breaking ids, aligned with values
};

/// One machine's share of a d-dimensional dataset.
struct VectorShard {
  std::vector<PointD> points;
  std::vector<PointId> ids;
};

/// Shards `values` over k machines and assigns globally unique random ids.
[[nodiscard]] std::vector<ScalarShard> make_scalar_shards(std::vector<Value> values,
                                                          std::uint32_t k,
                                                          PartitionScheme scheme, Rng& rng);

/// Shards `points` over k machines and assigns globally unique random ids.
[[nodiscard]] std::vector<VectorShard> make_vector_shards(std::vector<PointD> points,
                                                          std::uint32_t k,
                                                          PartitionScheme scheme, Rng& rng);

/// Where each input point landed after sharding: placement[i] = (machine,
/// row) of points[i].
using ShardPlacement = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// As above, additionally reporting each point's destination.  This is the
/// hook that lets positional metadata (labels, targets) follow points
/// through a randomized partition without coordinate-matching hacks — the
/// KnnServiceBuilder uses it to route flat label/target arrays to the
/// right machine.  Consumes the same rng stream as the plain overload, so
/// both produce byte-identical shards for equal seeds.
[[nodiscard]] std::vector<VectorShard> make_vector_shards(std::vector<PointD> points,
                                                          std::uint32_t k,
                                                          PartitionScheme scheme, Rng& rng,
                                                          ShardPlacement& placement);

/// Scores one scalar shard against a query: keys are (|v − q|, id).
[[nodiscard]] std::vector<Key> score_scalar_shard(const ScalarShard& shard, Value query);

/// Scores all shards (the per-machine local computation before any
/// distributed algorithm runs).
[[nodiscard]] std::vector<std::vector<Key>> score_scalar_shards(
    const std::vector<ScalarShard>& shards, Value query);

/// Hamming-space scoring (paper §1: "commonly used metrics include
/// Euclidean distance or Hamming distance"): shard values are 64-bit
/// patterns, distance = popcount(v XOR query).  Distances lie in [0, 64],
/// so ties are everywhere — the unique-id tie-breaking does all the work.
[[nodiscard]] std::vector<Key> score_hamming_shard(const ScalarShard& shard, Value query);
[[nodiscard]] std::vector<std::vector<Key>> score_hamming_shards(
    const std::vector<ScalarShard>& shards, Value query);

/// Applies the paper's footnote-4 distance scaling to pre-scored shards:
/// clears the low `drop_bits` of every rank (ids untouched).  See
/// quantize_rank in data/key.hpp for the approximation guarantee.
[[nodiscard]] std::vector<std::vector<Key>> quantize_scored_shards(
    std::vector<std::vector<Key>> shards, unsigned drop_bits);

/// Scores a vector shard under any metric.
template <MetricFor M>
[[nodiscard]] std::vector<Key> score_vector_shard(const VectorShard& shard, const PointD& query,
                                                  const M& metric) {
  std::vector<Key> keys;
  keys.reserve(shard.points.size());
  for (std::size_t i = 0; i < shard.points.size(); ++i) {
    keys.push_back(Key{encode_distance(metric(shard.points[i], query)), shard.ids[i]});
  }
  return keys;
}

template <MetricFor M>
[[nodiscard]] std::vector<std::vector<Key>> score_vector_shards(
    const std::vector<VectorShard>& shards, const PointD& query, const M& metric) {
  std::vector<std::vector<Key>> out;
  out.reserve(shards.size());
  for (const auto& shard : shards) out.push_back(score_vector_shard(shard, query, metric));
  return out;
}

/// Default scoring: SquaredEuclidean.  The algorithms only compare
/// distances, and ‖·‖₂² induces the same ℓ-NN order as ‖·‖₂ while dropping
/// the per-point sqrt from the hot loop (identical selected ids,
/// test-asserted in tests/test_kernels.cpp).
[[nodiscard]] inline std::vector<Key> score_vector_shard(const VectorShard& shard,
                                                         const PointD& query) {
  return score_vector_shard(shard, query, SquaredEuclidean{});
}
[[nodiscard]] inline std::vector<std::vector<Key>> score_vector_shards(
    const std::vector<VectorShard>& shards, const PointD& query) {
  return score_vector_shards(shards, query, SquaredEuclidean{});
}

/// Converts each AoS shard to its contiguous SoA mirror (one-off O(n·d)
/// per shard; after that, batched scoring never touches PointD).
[[nodiscard]] std::vector<FlatStore> make_flat_stores(const std::vector<VectorShard>& shards);

/// Batched local computation: scores every query against every SoA shard
/// with the fused kernels.  Returns [query][shard] → that shard's local
/// top-ℓ keys ascending.  Feeding a machine its local top-ℓ instead of all
/// n keys leaves every algorithm's answer unchanged (Algorithm 2's first
/// step is exactly this local cap) — property-tested for all metrics.
[[nodiscard]] std::vector<std::vector<std::vector<Key>>> score_vector_shards_batch(
    const std::vector<FlatStore>& stores, std::span<const PointD> queries, std::uint64_t ell,
    MetricKind kind = MetricKind::SquaredEuclidean);

/// One shard's resident scoring structures: always an SoA store, plus the
/// kd-tree when the policy selected the hybrid path for this shard, plus a
/// lazily-built k-NN graph slot when the policy is Approx and the shard is
/// large enough (see src/ann/README.md).
struct ShardIndex {
  FlatStore flat;                      ///< engaged iff tree == nullptr
  std::unique_ptr<KdRangeIndex> tree;  ///< engaged iff the tree path won
  std::shared_ptr<ann::GraphSlot> ann; ///< engaged iff ScoringPolicy::Approx applies

  [[nodiscard]] bool has_tree() const { return tree != nullptr; }
  /// The store brute scans: the tree's reordered mirror when present.
  [[nodiscard]] const FlatStore& store() const { return tree ? tree->store() : flat; }
};

/// Builds each shard's scoring structures once per resident dataset
/// (replaces make_flat_stores when a policy other than Brute may run).
/// `ann` supplies the graph knobs for ScoringPolicy::Approx (ignored
/// otherwise).
[[nodiscard]] std::vector<ShardIndex> make_shard_indexes(
    const std::vector<VectorShard>& shards, ScoringPolicy policy,
    std::size_t leaf_size = KdRangeIndex::kDefaultLeafSize, const ann::AnnConfig& ann = {});

/// Cumulative kd-hybrid traversal counters summed over every tree-indexed
/// shard (brute shards contribute nothing).  Counters accumulate across
/// score_vector_shards_batch calls; pair with reset_tree_stats for
/// per-stanza deltas in the benches.
[[nodiscard]] TreeStats tree_stats(const std::vector<ShardIndex>& indexes);
void reset_tree_stats(const std::vector<ShardIndex>& indexes);

/// Execution knobs for the policy-aware batched scoring step.
struct BatchScoringConfig {
  /// Worker threads: 1 = serial in the calling thread (no pool), 0 =
  /// hardware concurrency, else exactly that many.  Ignored when `pool`
  /// is set.
  std::size_t threads = 1;
  /// Queries per task tile; 0 = auto (targets ~4 tasks per worker so
  /// work stealing can rebalance uneven shards).
  std::size_t query_block = 0;
  /// Seed for the pool's victim-selection streams (reproducibility only —
  /// results are schedule-independent by construction).  Ignored when
  /// `pool` is set.
  std::uint64_t seed = ThreadPool::kDefaultSeed;
  /// Externally-owned pool to score on, amortizing thread spawn across
  /// batches in a serving loop.  The call barriers on it via wait_idle(),
  /// so don't share a pool that other threads submit to concurrently.
  ThreadPool* pool = nullptr;
  /// Point-range subtile threshold for the parallel grid.  A brute-scanned
  /// shard with more rows than this is scored as ⌈rows/threshold⌉
  /// independent row ranges whose per-range top-ℓ lists merge into the
  /// shard's slot — so one giant shard no longer serializes its column
  /// scans on a single worker.  0 = auto (64 Ki rows).  Merging changes no
  /// output byte (keys are globally distinct and each range's top-ℓ
  /// contains every global winner inside it — fuzzed against the unsplit
  /// grid in tests/test_parity.cpp); only the serial path and tree-indexed
  /// shards stay whole (column streaming / hierarchical traversal).
  std::size_t shard_split_rows = 0;
  /// Approximate routing (the ANN tier).  UNLIKE every other knob in this
  /// struct, this one changes answer bytes: shards / serve segments that
  /// carry a k-NN graph (ScoringPolicy::Approx builds) are beam-searched
  /// and exact-reranked instead of exactly scanned — recall@ℓ semantics,
  /// see src/ann/README.md.  Graph-less shards (including every delta
  /// mirror and anything below AnnConfig::min_points) still score exactly,
  /// so with no Approx structures built this flag is a no-op.  Approx
  /// shards are never range-split (the graph walk is one unit of work).
  bool approx = false;
};

/// Policy-aware, optionally parallel batched scoring.  Tiles the
/// shard × query-block grid over a work-stealing pool; every task writes
/// its own pre-sized [query][shard] slots, so the output is byte-identical
/// to the serial brute path regardless of policy, thread count, or
/// schedule (fuzzed across paths in tests/test_parity.cpp).
[[nodiscard]] std::vector<std::vector<std::vector<Key>>> score_vector_shards_batch(
    const std::vector<ShardIndex>& indexes, std::span<const PointD> queries, std::uint64_t ell,
    MetricKind kind = MetricKind::SquaredEuclidean, const BatchScoringConfig& config = {});

/// Serve-aware batched local scoring: machine m's resident dataset is the
/// live set behind `snapshots[m]` (a SegmentStore frozen view — see
/// src/serve/segment_store.hpp).  Same [query][machine] → local top-ℓ
/// shape, tiling and pool semantics as the ShardIndex overload, so the
/// result feeds run_knn_batch / run_knn unchanged; per machine the keys
/// are byte-identical to scoring a FlatStore rebuilt from that machine's
/// live set (fuzzed in tests/test_serve.cpp).  All snapshots with live
/// points must share the query dimension.
[[nodiscard]] std::vector<std::vector<std::vector<Key>>> score_serve_snapshots_batch(
    std::span<const SnapshotPtr> snapshots, std::span<const PointD> queries,
    std::uint64_t ell, MetricKind kind = MetricKind::SquaredEuclidean,
    const BatchScoringConfig& config = {});

/// A guarded scoring step's output: the scored grid plus which machines
/// actually answered.
struct GuardedScoreBatch {
  /// [query][machine] → local top-ℓ keys; a skipped (dead / timed-out)
  /// machine's slot is empty for every query, which every selection
  /// protocol already treats as a legal empty shard.
  std::vector<std::vector<std::vector<Key>>> scored;
  Coverage coverage;
};

/// Deadline-guarded variant of the ShardIndex overload: before scoring
/// machine m, `health.check_call(m)` runs the bounded retry-with-backoff
/// probe; a machine that is Dead or exhausts its deadline is skipped (its
/// slots stay empty) and lands in `coverage.missing`, so the step degrades
/// instead of hanging.  With every machine healthy the scored grid is
/// byte-identical to the unguarded overload (asserted in
/// tests/test_fault.cpp).
[[nodiscard]] GuardedScoreBatch score_vector_shards_batch_guarded(
    const std::vector<ShardIndex>& indexes, std::span<const PointD> queries, std::uint64_t ell,
    MetricKind kind, MachineHealth& health, const BatchScoringConfig& config = {});

/// Deadline-guarded variant of the snapshot overload.  A null
/// `snapshots[m]` marks machine m unreachable in the *caller's* view (it
/// could not snapshot the store — e.g. the machine was dead when the
/// caller's service snapshot was published): the machine is skipped and
/// reported missing without a probe even if the health gate would now
/// answer Ok for it (revived since), and silently when Retired (its data
/// lives on survivors).  Non-null slots go through the usual
/// `check_call(m)` gate.
[[nodiscard]] GuardedScoreBatch score_serve_snapshots_batch_guarded(
    std::span<const SnapshotPtr> snapshots, std::span<const PointD> queries, std::uint64_t ell,
    MetricKind kind, MachineHealth& health, const BatchScoringConfig& config = {});

/// Which distributed ℓ-NN / selection algorithm to run.
enum class KnnAlgo : std::uint8_t {
  DistKnn,      ///< the paper's Algorithm 2 (sampling + Algorithm 1)
  CappedSelect, ///< the paper's §2.2 intermediate: Algorithm 1 directly on
                ///< the kℓ locally-capped points, no sampling — O(log ℓ +
                ///< log k) rounds (the log k the sampling step removes)
  Simple,       ///< the paper's experimental baseline (gather everything)
  SaukasSong,   ///< deterministic weighted-median selection [16]
  BinSearch,    ///< binary search over the distance domain [3, 18]
};

[[nodiscard]] const char* knn_algo_name(KnnAlgo algo);

/// Global result of one distributed run.
struct GlobalRunResult {
  /// The selected keys, globally merged and ascending; size = min(ℓ, n).
  std::vector<Key> keys;
  /// Engine cost report (rounds, messages, bits, compute).
  RunReport report;
  /// Pivot / median / probe iterations of the algorithm's driver loop.
  std::uint32_t iterations = 0;
  /// Algorithm 2 only: sampling attempts, post-prune candidate total,
  /// whether pruning preserved the answer.
  std::uint32_t attempts = 1;
  std::uint64_t candidates = 0;
  bool prune_ok = true;
};

/// Runs `algo` over pre-scored shards (shards.size() machines; shard i is
/// machine i's local input).  `ell` is the paper's ℓ.
[[nodiscard]] GlobalRunResult run_knn(const std::vector<std::vector<Key>>& scored_shards,
                                      std::uint64_t ell, KnnAlgo algo,
                                      const EngineConfig& engine_config,
                                      const KnnConfig& knn_config = {});

/// Outcome of a batched multi-query run.
struct BatchRunResult {
  /// Per-query results in query order.  Each element's `keys`,
  /// `iterations`, `attempts`, `candidates`, `prune_ok` are as run_knn
  /// would return for that query alone; its `report` carries only that
  /// query's round count (traffic/compute are whole-batch, below).
  std::vector<GlobalRunResult> per_query;
  /// Whole-batch engine report: one engine, B queries — setup, scheduling
  /// and warm-up amortize across the batch.
  RunReport report;
};

/// Runs `algo` over a pre-scored query batch (`scored_batch[q][m]` =
/// machine m's keys for query q, e.g. from score_vector_shards_batch) in a
/// single engine run.  All queries must agree on the shard count.
[[nodiscard]] BatchRunResult run_knn_batch(
    const std::vector<std::vector<std::vector<Key>>>& scored_batch, std::uint64_t ell,
    KnnAlgo algo, const EngineConfig& engine_config, const KnnConfig& knn_config = {});

/// Runs plain distributed selection (Algorithm 1) over raw key shards —
/// the ℓ-smallest-points problem of §2.1.
[[nodiscard]] GlobalRunResult run_selection(const std::vector<std::vector<Key>>& key_shards,
                                            std::uint64_t ell,
                                            const EngineConfig& engine_config,
                                            const SelectConfig& select_config = {});

/// Reference answer: the min(ℓ, n) smallest keys across all shards.
[[nodiscard]] std::vector<Key> expected_smallest(const std::vector<std::vector<Key>>& shards,
                                                 std::uint64_t ell);

/// Distributed quantiles — the paper's §1.2 framing ("the ℓ-nearest
/// neighbors problem really boils down to the selection problem") as a
/// first-class API: the φ-quantile of n distributed keys is the
/// ⌈φ·n⌉-th smallest, found by Algorithm 1 in O(log n) rounds.
struct QuantileResult {
  Key value{};                ///< the φ-quantile key
  std::uint64_t rank = 0;     ///< its 1-based rank (= ⌈φ·n⌉)
  std::uint64_t total = 0;    ///< n
  GlobalRunResult run;        ///< cost report (run.keys holds the ℓ prefix)
};

/// φ ∈ (0, 1]; requires at least one key across the shards.
[[nodiscard]] QuantileResult run_quantile(const std::vector<std::vector<Key>>& key_shards,
                                          double phi, const EngineConfig& engine_config,
                                          const SelectConfig& select_config = {});

/// Median = 0.5-quantile (lower median).
[[nodiscard]] inline QuantileResult run_median(const std::vector<std::vector<Key>>& key_shards,
                                               const EngineConfig& engine_config,
                                               const SelectConfig& select_config = {}) {
  return run_quantile(key_shards, 0.5, engine_config, select_config);
}

}  // namespace dknn

#pragma once
/// \file session.hpp
/// \brief Multi-query sessions: the paper's serving scenario.
///
/// The model statement (§1.1) is about answering *queries* arriving at the
/// cluster: "the goal is to quickly compute answer given a query point to a
/// machine".  A session elects a leader once (with the sublinear protocol
/// of [9] the paper cites, or min-ID) and then streams any number of
/// queries through Algorithm 2 within a single engine run — machines keep
/// their shard resident, score each query locally (free in the model), and
/// pay only the O(log ℓ) protocol rounds per query.
///
/// Two concrete frontends share one generic core:
///   * run_scalar_session  — uint64 values, |v − q| distance (paper §3);
///   * run_vector_session  — d-dimensional points under any metric, with
///     each machine's local top-ℓ step accelerated by its k-d tree
///     (VectorIndex) instead of a full scan.
///
/// Pipelining note: consecutive Algorithm 2 instances are crosstalk-free
/// because every follower has at most one protocol message outstanding
/// toward the leader (it cannot advance to query q+1 before receiving the
/// leader's Finished for q), so per-sender FIFO delivery keeps instances
/// separated; an integration test certifies this under chunked bandwidth.

#include <cstdint>
#include <span>
#include <vector>

#include "core/dist_knn.hpp"
#include "core/driver.hpp"
#include "core/vector_index.hpp"
#include "election/min_id.hpp"
#include "election/sublinear.hpp"
#include "sim/engine.hpp"

namespace dknn {

enum class ElectionProtocol : std::uint8_t {
  None,       ///< use KnnConfig::leader as given (machine 0 by default)
  MinId,      ///< 1 round, k² messages
  Sublinear,  ///< O(1) rounds, O(√k log^{3/2} k) messages (paper's choice)
};

struct SessionConfig {
  ElectionProtocol election = ElectionProtocol::Sublinear;
  KnnConfig knn;  ///< leader field is overwritten when an election runs
};

/// One query's outcome within a session.
struct SessionQueryResult {
  std::size_t index = 0;          ///< position in the query stream
  Value query = 0;                ///< scalar sessions only; 0 otherwise
  std::vector<Key> keys;          ///< the ℓ winners, ascending
  std::uint64_t rounds = 0;       ///< protocol rounds this query consumed
  std::uint32_t attempts = 1;     ///< Algorithm 2 sampling attempts
  std::uint64_t candidates = 0;   ///< post-prune survivors
};

struct SessionResult {
  MachineId leader = kNoMachine;
  std::uint64_t election_rounds = 0;
  std::vector<SessionQueryResult> queries;
  RunReport report;  ///< whole-session engine report
};

namespace detail {

/// Per-machine output slot for a whole session.
struct SessionSlot {
  MachineId leader = kNoMachine;
  std::uint64_t election_rounds = 0;
  std::vector<std::vector<Key>> selected;  ///< per query, this machine's winners
  std::vector<std::uint64_t> rounds;       ///< per query (as seen locally)
  std::vector<std::uint32_t> attempts;
  std::vector<std::uint64_t> candidates;
};

/// The generic session machine program.  `Scorer` maps (machine id, query
/// index) to that machine's scored keys — any shard representation plugs in.
template <typename Scorer>
Task<void> session_program(Ctx& ctx, Scorer scorer, std::size_t num_queries, std::uint64_t ell,
                           SessionConfig config, std::vector<SessionSlot>* slots) {
  SessionSlot& slot = (*slots)[ctx.id()];

  // --- once per session: leader election -------------------------------------
  KnnConfig knn = config.knn;
  const std::uint64_t round0 = ctx.current_round();
  switch (config.election) {
    case ElectionProtocol::None:
      break;
    case ElectionProtocol::MinId: {
      const ElectionOutcome outcome = co_await elect_min_id(ctx);
      knn.leader = outcome.leader;
      break;
    }
    case ElectionProtocol::Sublinear: {
      const ElectionOutcome outcome = co_await elect_sublinear(ctx);
      knn.leader = outcome.leader;
      break;
    }
  }
  slot.leader = knn.leader;
  slot.election_rounds = ctx.current_round() - round0;

  // --- per query: local scoring (free in the model) + Algorithm 2 -------------
  slot.selected.reserve(num_queries);
  for (std::size_t qi = 0; qi < num_queries; ++qi) {
    const std::uint64_t before = ctx.current_round();
    std::vector<Key> scored = scorer(ctx.id(), qi);
    KnnLocal local = co_await dist_knn(ctx, std::move(scored), ell, knn);
    slot.selected.push_back(std::move(local.selected));
    slot.rounds.push_back(ctx.current_round() - before);
    slot.attempts.push_back(local.attempts);
    slot.candidates.push_back(local.candidates);
  }
}

/// Merges per-machine slots into the caller-facing result.
[[nodiscard]] SessionResult assemble_session(std::vector<SessionSlot> slots, RunReport report,
                                             std::size_t num_queries);

/// Runs the generic program over `world` machines.
template <typename Scorer>
[[nodiscard]] SessionResult run_session(std::uint32_t world, Scorer scorer,
                                        std::size_t num_queries, std::uint64_t ell,
                                        const EngineConfig& engine_config,
                                        const SessionConfig& session_config) {
  EngineConfig config = engine_config;
  config.world_size = world;
  Engine engine(config);
  std::vector<SessionSlot> slots(world);
  RunReport report = engine.run([&](Ctx& ctx) {
    return session_program(ctx, scorer, num_queries, ell, session_config, &slots);
  });
  return assemble_session(std::move(slots), std::move(report), num_queries);
}

}  // namespace detail

/// Runs `queries` against a sharded scalar dataset in one engine run.
[[nodiscard]] SessionResult run_scalar_session(const std::vector<ScalarShard>& shards,
                                               std::span<const Value> queries, std::uint64_t ell,
                                               const EngineConfig& engine_config,
                                               const SessionConfig& session_config = {});

/// Runs d-dimensional `queries` against vector shards.  Each machine's
/// local top-ℓ step uses its k-d tree (`indexes[m]`, built once with
/// make_vector_indexes) — O(ℓ log n_i)-ish instead of an O(n_i·d) scan —
/// while the distributed protocol and its costs are unchanged.
[[nodiscard]] SessionResult run_vector_session(const std::vector<VectorIndex>& indexes,
                                               std::span<const PointD> queries,
                                               std::uint64_t ell,
                                               const EngineConfig& engine_config,
                                               const SessionConfig& session_config = {});

}  // namespace dknn

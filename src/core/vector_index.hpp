#pragma once
/// \file vector_index.hpp
/// \brief Per-machine k-d tree acceleration of the local scoring step.
///
/// The paper's related-work discussion (§1.4, citing Patwary et al.'s PANDA
/// [14]) is clear-eyed about k-d trees in the k-machine model: a *global*
/// distributed tree pays heavy construction communication, but a *local*
/// tree is pure local computation — free in the model, and a large
/// constant-factor win in real wall-clock.  `VectorIndex` is exactly that:
/// each machine builds a k-d tree over its own shard once, and each query's
/// local-top-ℓ step becomes an O(ℓ log n_i)-ish tree search instead of an
/// O(n_i · d) scan.  The distributed protocol (and its round/message costs)
/// is completely unchanged: dist_knn receives each machine's top-ℓ keys
/// either way (top-ℓ of a top-ℓ set is the same set).

#include <cstdint>
#include <vector>

#include "core/driver.hpp"
#include "data/key.hpp"
#include "seq/kdtree.hpp"

namespace dknn {

/// One machine's immutable spatial index over its shard (Euclidean metric).
class VectorIndex {
public:
  explicit VectorIndex(const VectorShard& shard) : tree_(shard.points, shard.ids) {}

  /// The machine's ℓ best (distance, id) keys for `query`, ascending — a
  /// drop-in replacement for scoring + local capping.
  [[nodiscard]] std::vector<Key> top_ell(const PointD& query, std::uint64_t ell) const {
    std::vector<Key> keys;
    auto hits = tree_.knn(query, static_cast<std::size_t>(std::min<std::uint64_t>(
                                     ell, tree_.size())));
    keys.reserve(hits.size());
    for (const auto& [key, index] : hits) keys.push_back(key);
    return keys;
  }

  [[nodiscard]] std::size_t size() const { return tree_.size(); }
  [[nodiscard]] const KdTree& tree() const { return tree_; }

private:
  KdTree tree_;
};

/// Builds one index per shard (one-off O(n_i log n_i) local work each).
[[nodiscard]] inline std::vector<VectorIndex> make_vector_indexes(
    const std::vector<VectorShard>& shards) {
  std::vector<VectorIndex> indexes;
  indexes.reserve(shards.size());
  for (const auto& shard : shards) indexes.emplace_back(shard);
  return indexes;
}

/// Index-accelerated scoring: per machine, only the local top-ℓ keys.
/// Feeding these to run_knn gives results identical to the brute-scored
/// path (property-tested) at a fraction of the local compute.
[[nodiscard]] inline std::vector<std::vector<Key>> score_indexed_shards(
    const std::vector<VectorIndex>& indexes, const PointD& query, std::uint64_t ell) {
  std::vector<std::vector<Key>> out;
  out.reserve(indexes.size());
  for (const auto& index : indexes) out.push_back(index.top_ell(query, ell));
  return out;
}

}  // namespace dknn

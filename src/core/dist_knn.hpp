#pragma once
/// \file dist_knn.hpp
/// \brief Algorithm 2 — Distributed ℓ-NN computation (paper §2.2).
///
/// Input: each machine's points already scored against the query as
/// (distance, id) keys.  The protocol:
///
///   1. each machine keeps only its local ℓ best (a single machine can hold
///      at most the whole answer, so anything beyond rank ℓ locally is
///      provably irrelevant);
///   2. each machine samples ~12·ln ℓ of those survivors uniformly without
///      replacement and ships them to the leader — one O(log n)-bit message
///      per sample, matching the paper's message accounting;
///   3. the leader sorts the ~12k·ln ℓ samples and broadcasts the sample at
///      rank ~21·ln ℓ as the pruning radius r;
///   4. machines discard keys beyond r — w.h.p. at most 11ℓ candidates
///      survive globally and all true ℓ-NN survive (Lemma 2.3);
///   5. Algorithm 1 selects the exact ℓ smallest among the survivors.
///
/// Rounds: O(log ℓ), independent of k (Theorem 2.4); messages O(k log ℓ).
///
/// Failure handling: with probability O(1/ℓ²) the radius lands below the
/// true ℓ-th neighbor and step 4 prunes too far.  The leader detects this
/// (surviving count < target) before running Algorithm 1 and — in the
/// default Las Vegas mode — restarts from step 2 with fresh samples; in
/// paper-faithful Monte Carlo mode it proceeds and the result records
/// `prune_ok = false`.

#include <cstdint>
#include <span>
#include <vector>

#include "core/dist_select.hpp"
#include "data/key.hpp"
#include "sim/context.hpp"
#include "sim/task.hpp"

namespace dknn {

struct KnnConfig {
  MachineId leader = 0;
  /// Per-machine sample count coefficient (paper: 12 · log ℓ).
  double sample_coeff = 12.0;
  /// Pruning-radius rank coefficient (paper: 21 · log ℓ).
  double rank_coeff = 21.0;
  /// Retry with fresh samples when pruning provably lost part of the answer
  /// (Las Vegas).  False = paper-faithful Monte Carlo.
  bool las_vegas = true;
  /// Retry budget in Las Vegas mode; exhausting it falls back to no pruning
  /// (radius = +∞), which is always correct.
  std::uint32_t max_retries = 8;
};

/// Per-machine outcome of one ℓ-NN run.
struct KnnLocal {
  /// This machine's keys among the global ℓ nearest (ascending).
  std::vector<Key> selected;
  /// Sampling attempts used (1 = first try succeeded).
  std::uint32_t attempts = 1;
  /// Candidates that survived pruning, summed over machines (Lemma 2.3:
  /// <= 11ℓ w.h.p.).  Same value on every machine.
  std::uint64_t candidates = 0;
  /// Pivot iterations of the inner Algorithm 1 run.
  std::uint32_t select_iterations = 0;
  /// False only in Monte Carlo mode when pruning lost true neighbors.
  bool prune_ok = true;
};

/// Runs Algorithm 2 over this machine's scored keys.  Every machine calls
/// with the same `ell` and `config`; `local_scored` need not be sorted.
[[nodiscard]] Task<KnnLocal> dist_knn(Ctx& ctx, std::vector<Key> local_scored, std::uint64_t ell,
                                      KnnConfig config = {});

/// Per-machine sample count for a given ℓ (exposed for tests/benches).
[[nodiscard]] std::uint64_t knn_sample_count(std::uint64_t ell, const KnnConfig& config);
/// 1-indexed radius rank for a given ℓ (exposed for tests/benches).
[[nodiscard]] std::uint64_t knn_radius_rank(std::uint64_t ell, const KnnConfig& config);

}  // namespace dknn

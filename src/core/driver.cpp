#include "core/driver.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "ann/graph_search.hpp"
#include "core/binsearch.hpp"
#include "core/saukas_song.hpp"
#include "core/simple_knn.hpp"
#include "seq/select.hpp"
#include "support/panic.hpp"

namespace dknn {
namespace {

/// Per-machine slot the programs write into; merged after the run.
struct Slot {
  std::vector<Key> selected;
  std::uint32_t iterations = 0;
  std::uint32_t attempts = 1;
  std::uint64_t candidates = 0;
  bool prune_ok = true;
};

/// One algorithm invocation for one query — shared by the single-query and
/// batched programs.
Task<void> knn_step(Ctx& ctx, std::vector<Key> mine, std::uint64_t ell, KnnAlgo algo,
                    KnnConfig knn_config, Slot& slot) {
  switch (algo) {
    case KnnAlgo::DistKnn: {
      KnnLocal local = co_await dist_knn(ctx, std::move(mine), ell, knn_config);
      slot.selected = std::move(local.selected);
      slot.iterations = local.select_iterations;
      slot.attempts = local.attempts;
      slot.candidates = local.candidates;
      slot.prune_ok = local.prune_ok;
      break;
    }
    case KnnAlgo::CappedSelect: {
      // §2.2's direct variant: zero pruning attempts drop straight into
      // Algorithm 1 over the kℓ capped points.
      KnnConfig direct = knn_config;
      direct.max_retries = 0;
      KnnLocal local = co_await dist_knn(ctx, std::move(mine), ell, direct);
      slot.selected = std::move(local.selected);
      slot.iterations = local.select_iterations;
      slot.candidates = local.candidates;
      break;
    }
    case KnnAlgo::Simple: {
      SimpleKnnLocal local =
          co_await simple_knn(ctx, std::move(mine), ell, SimpleKnnConfig{knn_config.leader, true});
      slot.selected = std::move(local.selected);
      break;
    }
    case KnnAlgo::SaukasSong: {
      SaukasSongLocal local =
          co_await saukas_song_select(ctx, std::move(mine), ell, SaukasSongConfig{knn_config.leader});
      slot.selected = std::move(local.selected);
      slot.iterations = local.iterations;
      break;
    }
    case KnnAlgo::BinSearch: {
      BinSearchLocal local =
          co_await binsearch_select(ctx, std::move(mine), ell, BinSearchConfig{knn_config.leader});
      slot.selected = std::move(local.selected);
      slot.iterations = local.probes;
      break;
    }
  }
}

Task<void> knn_program(Ctx& ctx, const std::vector<std::vector<Key>>* shards, std::uint64_t ell,
                       KnnAlgo algo, KnnConfig knn_config, std::vector<Slot>* slots) {
  co_await knn_step(ctx, (*shards)[ctx.id()], ell, algo, knn_config, (*slots)[ctx.id()]);
}

/// Batched program: one engine run drives every query through the
/// algorithm back to back; per-sender FIFO delivery keeps consecutive
/// instances separated (see session.hpp's pipelining note).
Task<void> knn_batch_program(Ctx& ctx, const std::vector<std::vector<std::vector<Key>>>* batch,
                             std::uint64_t ell, KnnAlgo algo, KnnConfig knn_config,
                             std::vector<std::vector<Slot>>* slots,
                             std::vector<std::vector<std::uint64_t>>* rounds) {
  for (std::size_t q = 0; q < batch->size(); ++q) {
    const std::uint64_t before = ctx.current_round();
    co_await knn_step(ctx, (*batch)[q][ctx.id()], ell, algo, knn_config,
                      (*slots)[q][ctx.id()]);
    (*rounds)[q][ctx.id()] = ctx.current_round() - before;
  }
}

Task<void> select_program(Ctx& ctx, const std::vector<std::vector<Key>>* shards,
                          std::uint64_t ell, SelectConfig select_config,
                          std::vector<Slot>* slots) {
  SelectLocal local = co_await dist_select(ctx, (*shards)[ctx.id()], ell, select_config);
  (*slots)[ctx.id()].selected = std::move(local.selected);
  (*slots)[ctx.id()].iterations = local.iterations;
}

GlobalRunResult merge_slots(std::vector<Slot> slots, RunReport report, MachineId leader) {
  GlobalRunResult out;
  out.report = std::move(report);
  for (auto& slot : slots) {
    out.keys.insert(out.keys.end(), slot.selected.begin(), slot.selected.end());
  }
  std::sort(out.keys.begin(), out.keys.end());
  const Slot& lead = slots[leader];
  out.iterations = lead.iterations;
  out.attempts = lead.attempts;
  out.candidates = lead.candidates;
  out.prune_ok = lead.prune_ok;
  return out;
}

}  // namespace

std::vector<ScalarShard> make_scalar_shards(std::vector<Value> values, std::uint32_t k,
                                            PartitionScheme scheme, Rng& rng) {
  std::vector<PointId> ids = assign_random_ids(values.size(), rng);
  std::vector<std::pair<Value, PointId>> tagged;
  tagged.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) tagged.emplace_back(values[i], ids[i]);
  auto parts = partition(std::move(tagged), k, scheme, rng);
  std::vector<ScalarShard> shards(k);
  for (std::uint32_t m = 0; m < k; ++m) {
    shards[m].values.reserve(parts[m].size());
    shards[m].ids.reserve(parts[m].size());
    for (const auto& [v, id] : parts[m]) {
      shards[m].values.push_back(v);
      shards[m].ids.push_back(id);
    }
  }
  return shards;
}

std::vector<VectorShard> make_vector_shards(std::vector<PointD> points, std::uint32_t k,
                                            PartitionScheme scheme, Rng& rng,
                                            ShardPlacement& placement) {
  std::vector<PointId> ids = assign_random_ids(points.size(), rng);
  std::vector<std::pair<std::size_t, PointId>> tagged;  // index + id (points not ordered)
  tagged.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) tagged.emplace_back(i, ids[i]);
  auto parts = partition(std::move(tagged), k, scheme, rng);
  placement.assign(points.size(), {0, 0});
  std::vector<VectorShard> shards(k);
  for (std::uint32_t m = 0; m < k; ++m) {
    shards[m].points.reserve(parts[m].size());
    shards[m].ids.reserve(parts[m].size());
    for (const auto& [index, id] : parts[m]) {
      placement[index] = {m, static_cast<std::uint32_t>(shards[m].points.size())};
      shards[m].points.push_back(std::move(points[index]));
      shards[m].ids.push_back(id);
    }
  }
  return shards;
}

std::vector<VectorShard> make_vector_shards(std::vector<PointD> points, std::uint32_t k,
                                            PartitionScheme scheme, Rng& rng) {
  ShardPlacement placement;
  return make_vector_shards(std::move(points), k, scheme, rng, placement);
}

std::vector<Key> score_scalar_shard(const ScalarShard& shard, Value query) {
  DKNN_REQUIRE(shard.values.size() == shard.ids.size(), "shard values/ids must align");
  std::vector<Key> keys;
  keys.reserve(shard.values.size());
  for (std::size_t i = 0; i < shard.values.size(); ++i) {
    keys.push_back(Key{scalar_distance(shard.values[i], query), shard.ids[i]});
  }
  return keys;
}

std::vector<std::vector<Key>> score_scalar_shards(const std::vector<ScalarShard>& shards,
                                                  Value query) {
  std::vector<std::vector<Key>> out;
  out.reserve(shards.size());
  for (const auto& shard : shards) out.push_back(score_scalar_shard(shard, query));
  return out;
}

std::vector<Key> score_hamming_shard(const ScalarShard& shard, Value query) {
  DKNN_REQUIRE(shard.values.size() == shard.ids.size(), "shard values/ids must align");
  std::vector<Key> keys;
  keys.reserve(shard.values.size());
  for (std::size_t i = 0; i < shard.values.size(); ++i) {
    keys.push_back(Key{hamming_distance(shard.values[i], query), shard.ids[i]});
  }
  return keys;
}

std::vector<std::vector<Key>> score_hamming_shards(const std::vector<ScalarShard>& shards,
                                                   Value query) {
  std::vector<std::vector<Key>> out;
  out.reserve(shards.size());
  for (const auto& shard : shards) out.push_back(score_hamming_shard(shard, query));
  return out;
}

std::vector<std::vector<Key>> quantize_scored_shards(std::vector<std::vector<Key>> shards,
                                                     unsigned drop_bits) {
  for (auto& shard : shards) {
    for (auto& key : shard) key.rank = quantize_rank(key.rank, drop_bits);
  }
  return shards;
}

std::vector<FlatStore> make_flat_stores(const std::vector<VectorShard>& shards) {
  std::vector<FlatStore> stores;
  stores.reserve(shards.size());
  for (const auto& shard : shards) {
    DKNN_REQUIRE(shard.points.size() == shard.ids.size(), "shard points/ids must align");
    stores.emplace_back(std::span<const PointD>(shard.points),
                        std::span<const PointId>(shard.ids));
  }
  return stores;
}

std::vector<std::vector<std::vector<Key>>> score_vector_shards_batch(
    const std::vector<FlatStore>& stores, std::span<const PointD> queries, std::uint64_t ell,
    MetricKind kind) {
  std::vector<std::vector<std::vector<Key>>> out(queries.size());
  for (auto& per_shard : out) per_shard.resize(stores.size());
  KernelScratch scratch;
  std::vector<std::vector<Key>> shard_keys;
  for (std::size_t m = 0; m < stores.size(); ++m) {
    // Shard-outer order: each SoA store streams through cache once for the
    // whole query block.
    fused_top_ell_batch(stores[m], queries, static_cast<std::size_t>(ell), kind, shard_keys,
                        scratch);
    for (std::size_t q = 0; q < queries.size(); ++q) out[q][m] = std::move(shard_keys[q]);
  }
  return out;
}

std::vector<ShardIndex> make_shard_indexes(const std::vector<VectorShard>& shards,
                                           ScoringPolicy policy, std::size_t leaf_size,
                                           const ann::AnnConfig& ann) {
  std::vector<ShardIndex> indexes(shards.size());
  for (std::size_t m = 0; m < shards.size(); ++m) {
    const auto& shard = shards[m];
    DKNN_REQUIRE(shard.points.size() == shard.ids.size(), "shard points/ids must align");
    const bool eligible = !shard.points.empty() && shard.points[0].dim() >= 1;
    const bool tree =
        eligible && (policy == ScoringPolicy::Tree ||
                     (policy == ScoringPolicy::Auto &&
                      tree_pays_off(shard.points.size(), shard.points[0].dim())));
    if (tree) {
      indexes[m].tree = std::make_unique<KdRangeIndex>(
          std::span<const PointD>(shard.points), std::span<const PointId>(shard.ids), leaf_size);
    } else {
      indexes[m].flat =
          FlatStore(std::span<const PointD>(shard.points), std::span<const PointId>(shard.ids));
      // Approx shards keep the flat store (the graph's rerank and the
      // exact fallback both need it) and lazily attach a k-NN graph.
      // Shards below min_points stay graph-less and score exactly.
      if (policy == ScoringPolicy::Approx &&
          shard.points.size() >= std::max<std::size_t>(ann.min_points, 2)) {
        indexes[m].ann = std::make_shared<ann::GraphSlot>(ann);
      }
    }
  }
  return indexes;
}

TreeStats tree_stats(const std::vector<ShardIndex>& indexes) {
  TreeStats out;
  for (const ShardIndex& index : indexes) {
    if (index.has_tree()) out += index.tree->stats();
  }
  return out;
}

void reset_tree_stats(const std::vector<ShardIndex>& indexes) {
  for (const ShardIndex& index : indexes) {
    if (index.has_tree()) index.tree->reset_stats();
  }
}

namespace {

/// One (shard, query block) tile through the shard's policy path.  With
/// `approx` set and a graph slot attached, the beam search replaces the
/// brute scan (recall semantics — see src/ann/README.md); graph-less
/// shards ignore the flag and score exactly.
void score_tile(const ShardIndex& index, std::span<const PointD> queries, std::uint64_t ell,
                MetricKind kind, bool approx, std::vector<std::vector<Key>>& keys,
                KernelScratch& scratch) {
  if (index.has_tree()) {
    hybrid_top_ell_batch(*index.tree, queries, static_cast<std::size_t>(ell), kind, keys,
                         scratch);
    return;
  }
  if (approx && index.ann != nullptr) {
    const ann::KnnGraph& graph = index.ann->get_or_build(index.store());
    const std::size_t ef = std::max<std::size_t>(index.ann->config().ef, ell);
    ann::AnnSearchScratch ann_scratch;
    keys.resize(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ann::ann_top_ell(graph, queries[i], static_cast<std::size_t>(ell), ef, kind, nullptr,
                       keys[i], ann_scratch, scratch);
    }
    return;
  }
  fused_top_ell_batch(index.store(), queries, static_cast<std::size_t>(ell), kind, keys,
                      scratch);
}

/// Default BatchScoringConfig::shard_split_rows: big enough that the merge
/// overhead is noise, small enough that a few-hundred-thousand-point shard
/// splits into several rebalanceable pieces.
constexpr std::size_t kDefaultShardSplitRows = 1u << 16;

/// Shared tiling engine of the batched scoring overloads: runs
/// `score(m, query_subspan, keys, scratch)` over every (machine,
/// query-block) tile — serial shard-outer below the parallel threshold,
/// otherwise tiled over the work-stealing pool.  Each task owns disjoint
/// pre-sized slots, so the assembled result is independent of the steal
/// schedule.
///
/// Point-range subtiles (the "one huge shard serializes its column scans"
/// fix): on the pool path, a machine whose `splittable_rows(m)` exceeds
/// the split threshold is scored as several independent row ranges via
/// `score_range(m, lo, hi, query_subspan, keys, scratch)`; each range's
/// local top-ℓ lists land in their own pre-sized slots and merge into the
/// machine's final [query][machine] slot after the barrier.  Merging is
/// byte-exact: keys are globally distinct, and any global top-ℓ key inside
/// a range is by definition inside that range's top-ℓ, so the ℓ smallest
/// of the concatenated range winners equal the unsplit scan's answer
/// (fuzzed against the unsplit grid in tests/test_parity.cpp).
/// `splittable_rows(m) == 0` marks a machine opaque (tree-indexed shards,
/// serve snapshots) — it is always scored whole.
template <typename ScoreTile, typename SplittableRows, typename ScoreRange>
std::vector<std::vector<std::vector<Key>>> score_tiled_grid(
    std::size_t machines, std::span<const PointD> queries, std::uint64_t ell,
    const BatchScoringConfig& config, const ScoreTile& score,
    const SplittableRows& splittable_rows, const ScoreRange& score_range) {
  std::vector<std::vector<std::vector<Key>>> out(queries.size());
  for (auto& per_shard : out) per_shard.resize(machines);
  if (queries.empty() || machines == 0) return out;

  ThreadPool* pool = config.pool;
  const std::size_t threads =
      pool != nullptr ? pool->thread_count()
      : config.threads != 0
          ? config.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (pool == nullptr && threads <= 1) {
    // Serial: shard-outer, whole query block per shard (maximal cache
    // reuse); splitting would only add merge work on one thread.
    KernelScratch scratch;
    std::vector<std::vector<Key>> keys;
    for (std::size_t m = 0; m < machines; ++m) {
      score(m, queries, keys, scratch);
      for (std::size_t q = 0; q < queries.size(); ++q) out[q][m] = std::move(keys[q]);
    }
    return out;
  }

  std::unique_ptr<ThreadPool> owned;
  if (pool == nullptr) {
    owned = std::make_unique<ThreadPool>(threads, config.seed);
    pool = owned.get();
  }

  // ~4 tasks per worker leaves the pool room to rebalance shards of
  // uneven size.
  const std::size_t block =
      config.query_block != 0
          ? config.query_block
          : std::max<std::size_t>(1, (queries.size() + threads * 4 - 1) / (threads * 4));
  const std::size_t split_rows =
      config.shard_split_rows != 0 ? config.shard_split_rows : kDefaultShardSplitRows;

  // partials[m][piece][q] = piece's local top-ℓ for query q (split machines
  // only; whole machines write out[q][m] directly).  All slots are sized
  // before any task runs.
  std::vector<std::vector<std::vector<std::vector<Key>>>> partials(machines);
  std::vector<std::size_t> pieces_of(machines, 1);
  for (std::size_t m = 0; m < machines; ++m) {
    const std::size_t rows = splittable_rows(m);
    if (rows > split_rows) {
      pieces_of[m] = (rows + split_rows - 1) / split_rows;
      partials[m].assign(pieces_of[m], std::vector<std::vector<Key>>(queries.size()));
    }
  }

  // A TaskGroup, not wait_idle(): several scoring batches (and background
  // compactions) may share this pool concurrently — the lock-free
  // KnnService read path does exactly that — and global quiescence would
  // make each batch wait on every other submitter's jobs (or starve under
  // sustained load).  The group waits for exactly this call's tiles.
  ThreadPool::TaskGroup tiles(*pool);
  for (std::size_t m = 0; m < machines; ++m) {
    const std::size_t pieces = pieces_of[m];
    for (std::size_t q0 = 0; q0 < queries.size(); q0 += block) {
      const std::size_t len = std::min(block, queries.size() - q0);
      if (pieces == 1) {
        tiles.submit([&out, &score, queries, m, q0, len] {
          KernelScratch scratch;
          std::vector<std::vector<Key>> keys;
          score(m, queries.subspan(q0, len), keys, scratch);
          for (std::size_t i = 0; i < len; ++i) out[q0 + i][m] = std::move(keys[i]);
        });
        continue;
      }
      const std::size_t rows = splittable_rows(m);
      for (std::size_t piece = 0; piece < pieces; ++piece) {
        // Balanced ranges: piece p covers [p·rows/pieces, (p+1)·rows/pieces).
        const std::size_t lo = piece * rows / pieces;
        const std::size_t hi = (piece + 1) * rows / pieces;
        tiles.submit([&partials, &score_range, queries, m, piece, lo, hi, q0, len] {
          KernelScratch scratch;
          std::vector<std::vector<Key>> keys;
          score_range(m, lo, hi, queries.subspan(q0, len), keys, scratch);
          for (std::size_t i = 0; i < len; ++i) {
            partials[m][piece][q0 + i] = std::move(keys[i]);
          }
        });
      }
    }
  }
  tiles.wait();

  // Merge pass for split machines: ℓ smallest of the concatenated range
  // winners, per query.
  std::vector<Key> pooled;
  for (std::size_t m = 0; m < machines; ++m) {
    if (pieces_of[m] == 1) continue;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      pooled.clear();
      for (std::size_t piece = 0; piece < pieces_of[m]; ++piece) {
        const auto& part = partials[m][piece][q];
        pooled.insert(pooled.end(), part.begin(), part.end());
      }
      out[q][m] =
          top_ell_smallest(std::span<const Key>(pooled), static_cast<std::size_t>(ell));
    }
  }
  return out;
}

}  // namespace

std::vector<std::vector<std::vector<Key>>> score_vector_shards_batch(
    const std::vector<ShardIndex>& indexes, std::span<const PointD> queries, std::uint64_t ell,
    MetricKind kind, const BatchScoringConfig& config) {
  return score_tiled_grid(
      indexes.size(), queries, ell, config,
      [&indexes, ell, kind, &config](std::size_t m, std::span<const PointD> block,
                                     std::vector<std::vector<Key>>& keys,
                                     KernelScratch& scratch) {
        score_tile(indexes[m], block, ell, kind, config.approx, keys, scratch);
      },
      // Only brute-scanned shards split: a kd-tree shard's traversal is
      // hierarchical, not a row scan, and an approx shard's beam search
      // walks the whole graph from fixed seeds.
      [&indexes, &config](std::size_t m) -> std::size_t {
        if (indexes[m].has_tree()) return 0;
        if (config.approx && indexes[m].ann != nullptr) return 0;
        return indexes[m].store().size();
      },
      [&indexes, ell, kind](std::size_t m, std::size_t lo, std::size_t hi,
                            std::span<const PointD> block, std::vector<std::vector<Key>>& keys,
                            KernelScratch& scratch) {
        // Row-range subtile: the same bounded-heap kernels the kd-hybrid
        // and the serve live-run path use, over [lo, hi) of the SoA store.
        const FlatStore& store = indexes[m].store();
        keys.resize(block.size());
        for (std::size_t i = 0; i < block.size(); ++i) {
          RangeTopEll scorer(store, block[i], static_cast<std::size_t>(ell), kind, scratch);
          scorer.score_range(lo, hi);
          scorer.finish(keys[i]);
        }
      });
}

std::vector<std::vector<std::vector<Key>>> score_serve_snapshots_batch(
    std::span<const SnapshotPtr> snapshots, std::span<const PointD> queries, std::uint64_t ell,
    MetricKind kind, const BatchScoringConfig& config) {
  for (const SnapshotPtr& snapshot : snapshots) {
    DKNN_REQUIRE(snapshot != nullptr, "score_serve_snapshots_batch: null snapshot");
  }
  return score_tiled_grid(
      snapshots.size(), queries, ell, config,
      [&snapshots, ell, kind, &config](std::size_t m, std::span<const PointD> block,
                                       std::vector<std::vector<Key>>& keys,
                                       KernelScratch& scratch) {
        if (config.approx) {
          snapshot_approx_top_ell_batch(*snapshots[m], block, static_cast<std::size_t>(ell),
                                        kind, keys, scratch);
        } else {
          snapshot_top_ell_batch(*snapshots[m], block, static_cast<std::size_t>(ell), kind,
                                 keys, scratch);
        }
      },
      // Snapshots are opaque to the splitter: segmentation already bounds
      // scan length per segment, and compaction governs segment size.
      [](std::size_t) -> std::size_t { return 0; },
      [](std::size_t, std::size_t, std::size_t, std::span<const PointD>,
         std::vector<std::vector<Key>>&, KernelScratch&) {
        panic("score_serve_snapshots_batch: snapshots never split");
      });
}

namespace {

/// Shared health gate of the guarded overloads: one deadline-guarded
/// check_call per machine, skip mask + coverage out.  Retired machines are
/// skipped silently (their data lives on survivors); Dead / timed-out
/// machines are skipped *and reported missing*.
std::vector<char> guard_machines(MachineHealth& health, std::size_t machines,
                                 Coverage& coverage) {
  DKNN_REQUIRE(health.machines() == machines,
               "guarded scoring: health registry and machine count must align");
  std::vector<char> skip(machines, 0);
  for (std::size_t m = 0; m < machines; ++m) {
    const CallReport report = health.check_call(m);
    switch (report.status) {
      case CallStatus::Ok:
        ++coverage.total;
        break;
      case CallStatus::Dead:
      case CallStatus::TimedOut:
        skip[m] = 1;
        ++coverage.total;
        coverage.missing.push_back(static_cast<std::uint32_t>(m));
        break;
      case CallStatus::Retired:
        skip[m] = 1;
        break;
    }
  }
  return skip;
}

}  // namespace

GuardedScoreBatch score_vector_shards_batch_guarded(
    const std::vector<ShardIndex>& indexes, std::span<const PointD> queries, std::uint64_t ell,
    MetricKind kind, MachineHealth& health, const BatchScoringConfig& config) {
  GuardedScoreBatch out;
  const std::vector<char> skip = guard_machines(health, indexes.size(), out.coverage);
  out.scored = score_tiled_grid(
      indexes.size(), queries, ell, config,
      [&indexes, &skip, ell, kind, &config](std::size_t m, std::span<const PointD> block,
                                            std::vector<std::vector<Key>>& keys,
                                            KernelScratch& scratch) {
        if (skip[m]) {
          keys.assign(block.size(), {});
          return;
        }
        score_tile(indexes[m], block, ell, kind, config.approx, keys, scratch);
      },
      [&indexes, &skip, &config](std::size_t m) -> std::size_t {
        if (skip[m]) return 0;  // skipped machines never split
        if (indexes[m].has_tree()) return 0;
        if (config.approx && indexes[m].ann != nullptr) return 0;
        return indexes[m].store().size();
      },
      [&indexes, ell, kind](std::size_t m, std::size_t lo, std::size_t hi,
                            std::span<const PointD> block, std::vector<std::vector<Key>>& keys,
                            KernelScratch& scratch) {
        const FlatStore& store = indexes[m].store();
        keys.resize(block.size());
        for (std::size_t i = 0; i < block.size(); ++i) {
          RangeTopEll scorer(store, block[i], static_cast<std::size_t>(ell), kind, scratch);
          scorer.score_range(lo, hi);
          scorer.finish(keys[i]);
        }
      });
  return out;
}

GuardedScoreBatch score_serve_snapshots_batch_guarded(
    std::span<const SnapshotPtr> snapshots, std::span<const PointD> queries, std::uint64_t ell,
    MetricKind kind, MachineHealth& health, const BatchScoringConfig& config) {
  GuardedScoreBatch out;
  std::vector<char> skip = guard_machines(health, snapshots.size(), out.coverage);
  // A null slot marks a machine that was unreachable in the *caller's*
  // view (e.g. dead when a service snapshot was published) even if its
  // probe just answered Ok (revived since).  The caller has no data to
  // score, so the machine is skipped and reported missing — no second
  // probe, and silently when Retired (its data lives on survivors).
  bool missing_merged = false;
  for (std::size_t m = 0; m < snapshots.size(); ++m) {
    if (snapshots[m] == nullptr && !skip[m]) {
      skip[m] = 1;
      out.coverage.missing.push_back(static_cast<std::uint32_t>(m));
      missing_merged = true;
    }
  }
  if (missing_merged) std::sort(out.coverage.missing.begin(), out.coverage.missing.end());
  out.scored = score_tiled_grid(
      snapshots.size(), queries, ell, config,
      [&snapshots, &skip, ell, kind, &config](std::size_t m, std::span<const PointD> block,
                                              std::vector<std::vector<Key>>& keys,
                                              KernelScratch& scratch) {
        if (skip[m]) {
          keys.assign(block.size(), {});
          return;
        }
        if (config.approx) {
          snapshot_approx_top_ell_batch(*snapshots[m], block, static_cast<std::size_t>(ell),
                                        kind, keys, scratch);
        } else {
          snapshot_top_ell_batch(*snapshots[m], block, static_cast<std::size_t>(ell), kind,
                                 keys, scratch);
        }
      },
      [](std::size_t) -> std::size_t { return 0; },
      [](std::size_t, std::size_t, std::size_t, std::span<const PointD>,
         std::vector<std::vector<Key>>&, KernelScratch&) {
        panic("score_serve_snapshots_batch_guarded: snapshots never split");
      });
  return out;
}

BatchRunResult run_knn_batch(const std::vector<std::vector<std::vector<Key>>>& scored_batch,
                             std::uint64_t ell, KnnAlgo algo, const EngineConfig& engine_config,
                             const KnnConfig& knn_config) {
  DKNN_REQUIRE(!scored_batch.empty(), "need at least one query");
  const std::size_t world = scored_batch.front().size();
  DKNN_REQUIRE(world > 0, "need at least one shard");
  for (const auto& per_shard : scored_batch) {
    DKNN_REQUIRE(per_shard.size() == world, "all queries must cover the same shards");
  }

  EngineConfig config = engine_config;
  config.world_size = static_cast<std::uint32_t>(world);
  Engine engine(config);
  std::vector<std::vector<Slot>> slots(scored_batch.size(), std::vector<Slot>(world));
  std::vector<std::vector<std::uint64_t>> rounds(scored_batch.size(),
                                                 std::vector<std::uint64_t>(world, 0));
  RunReport report = engine.run([&](Ctx& ctx) {
    return knn_batch_program(ctx, &scored_batch, ell, algo, knn_config, &slots, &rounds);
  });

  BatchRunResult result;
  result.per_query.reserve(scored_batch.size());
  for (std::size_t q = 0; q < scored_batch.size(); ++q) {
    GlobalRunResult one = merge_slots(std::move(slots[q]), RunReport{}, knn_config.leader);
    one.report.rounds = rounds[q][knn_config.leader];
    result.per_query.push_back(std::move(one));
  }
  result.report = std::move(report);
  return result;
}

const char* knn_algo_name(KnnAlgo algo) {
  switch (algo) {
    case KnnAlgo::DistKnn: return "algorithm-2";
    case KnnAlgo::CappedSelect: return "capped-select";
    case KnnAlgo::Simple: return "simple";
    case KnnAlgo::SaukasSong: return "saukas-song";
    case KnnAlgo::BinSearch: return "binary-search";
  }
  return "unknown";
}

GlobalRunResult run_knn(const std::vector<std::vector<Key>>& scored_shards, std::uint64_t ell,
                        KnnAlgo algo, const EngineConfig& engine_config,
                        const KnnConfig& knn_config) {
  DKNN_REQUIRE(!scored_shards.empty(), "need at least one shard");
  EngineConfig config = engine_config;
  config.world_size = static_cast<std::uint32_t>(scored_shards.size());
  Engine engine(config);
  std::vector<Slot> slots(scored_shards.size());
  RunReport report = engine.run([&](Ctx& ctx) {
    return knn_program(ctx, &scored_shards, ell, algo, knn_config, &slots);
  });
  return merge_slots(std::move(slots), std::move(report), knn_config.leader);
}

GlobalRunResult run_selection(const std::vector<std::vector<Key>>& key_shards, std::uint64_t ell,
                              const EngineConfig& engine_config,
                              const SelectConfig& select_config) {
  DKNN_REQUIRE(!key_shards.empty(), "need at least one shard");
  EngineConfig config = engine_config;
  config.world_size = static_cast<std::uint32_t>(key_shards.size());
  Engine engine(config);
  std::vector<Slot> slots(key_shards.size());
  RunReport report = engine.run([&](Ctx& ctx) {
    return select_program(ctx, &key_shards, ell, select_config, &slots);
  });
  return merge_slots(std::move(slots), std::move(report), select_config.leader);
}

QuantileResult run_quantile(const std::vector<std::vector<Key>>& key_shards, double phi,
                            const EngineConfig& engine_config,
                            const SelectConfig& select_config) {
  DKNN_REQUIRE(phi > 0.0 && phi <= 1.0, "quantile phi must be in (0, 1]");
  std::uint64_t total = 0;
  for (const auto& shard : key_shards) total += shard.size();
  DKNN_REQUIRE(total > 0, "quantile of an empty dataset");
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(phi * static_cast<double>(total))));

  QuantileResult result;
  result.rank = std::min(rank, total);
  result.total = total;
  result.run = run_selection(key_shards, result.rank, engine_config, select_config);
  DKNN_ASSERT(result.run.keys.size() == result.rank, "selection returned wrong count");
  result.value = result.run.keys.back();
  return result;
}

std::vector<Key> expected_smallest(const std::vector<std::vector<Key>>& shards,
                                   std::uint64_t ell) {
  std::vector<Key> all;
  for (const auto& shard : shards) all.insert(all.end(), shard.begin(), shard.end());
  return top_ell_smallest(std::span<const Key>(all), static_cast<std::size_t>(ell));
}

}  // namespace dknn

#pragma once
/// \file knn_service.hpp
/// \brief One front door: the `KnnService` facade over the static, batched
///        and live-serving query paths.
///
/// Four PRs grew four parallel entry styles — per-query free functions
/// (`score_vector_shards` → `run_knn`), the resident batch path
/// (`make_shard_indexes` → `score_vector_shards_batch` → `run_knn_batch`),
/// the serve path (`SegmentStore` → `score_serve_snapshots_batch`), and
/// mlapi overloads for each — so every new capability had to be threaded
/// through all of them by hand.  `KnnService` is the single handle
/// production-scale distributed KNN systems expose over these concerns
/// (PANDA, arXiv:1607.08220; Debatty et al.'s online-index argument,
/// arXiv:1602.06819): one object owns the shards, the per-machine scoring
/// structures (ShardIndexes or SegmentStores), the scoring thread pool and
/// the epoch-keyed result cache, and `query` / `query_batch` / `classify`
/// / `regress` are the *same call* whether the dataset is frozen or
/// churning.
///
///   KnnService svc = KnnServiceBuilder()
///                        .machines(16).ell(8)
///                        .metric(MetricKind::SquaredEuclidean)
///                        .policy(ScoringPolicy::Auto)
///                        .dataset(std::move(points))
///                        .build();
///   QueryResult r = svc.query(q);           // keys + epoch + cost report
///
///   KnnService live = KnnServiceBuilder().machines(4).ell(8)
///                        .live().dataset(std::move(points)).build();
///   live.insert(p, id);  live.erase(other);  live.compact_now();
///   QueryResult r2 = live.query(q);         // same call, same result type
///
/// Parity contract (fuzzed in tests/test_service.cpp, ≥500 trials across
/// 4 metrics × brute/tree/auto × static/live): `query_batch` is
/// byte-identical to composing the free functions yourself —
/// `score_vector_shards_batch` + `run_knn_batch` in static mode,
/// `score_serve_snapshots_batch` + `run_knn_batch` in live mode.  The free
/// functions remain public as the decomposed stages (and the batched mlapi
/// entries are now thin wrappers over this facade); new capabilities land
/// here once instead of once per path.
///
/// Preconditions are validated centrally (data/validate.hpp) with typed
/// errors and stable texts instead of per-path panics:
///   * dimension mismatch        → DimensionMismatchError
///   * ℓ = 0                     → InvalidEllError (at build())
///   * query before build, live-only calls on a static service, classify
///     without labels            → ServiceStateError
/// ℓ > n stays permissive — every path returns min(ℓ, n) keys, exactly
/// like the free functions.
///
/// Thread-safety — the epoch-snapshot read discipline (same as
/// SegmentStore's): `query` / `query_batch` / `classify` / `regress` grab
/// one immutable, atomically-published ServiceSnapshot (the stores'
/// snapshots + indexes + payload tables + health generation) and never
/// touch the service mutex; only mutations (insert / erase / compact /
/// kill / revive / recover) serialize on it, republishing the snapshot
/// before returning.  Readers therefore never block mutators and vice
/// versa — a query that began before an insert finishes against the
/// membership it started with, stamped with that epoch.  The bookkeeping
/// readers (total_points / contains / live_ids / segment_count /
/// compaction_debt / live_ids_on) still take the service mutex — they read
/// the mutable mirror, not the snapshot.  `query()` additionally coalesces
/// concurrently-submitted singles through one leader/follower seat per
/// service (the QueryFrontEnd discipline, facade-wide), so under load
/// singles approach the batch path's kernel amortization; query_batch
/// bypasses the seat.

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/driver.hpp"
#include "core/mlapi.hpp"
#include "data/validate.hpp"
#include "fault/health.hpp"
#include "fault/recovery.hpp"
#include "obs/trace.hpp"
#include "serve/result_cache.hpp"
#include "serve/segment_store.hpp"
#include "sim/engine.hpp"
#include "sim/thread_pool.hpp"

namespace dknn {

/// A facade call that the service's current lifecycle state cannot honor
/// (query before build, insert on a static service, classify without
/// labels, ...).
class ServiceStateError final : public PreconditionError {
 public:
  using PreconditionError::PreconditionError;
};

/// Fault-tolerance knobs of a fault_tolerant service.
struct FaultConfig {
  /// Detection budgets of the per-machine health registry.
  HealthConfig health{};
  /// Which election the survivors run to pick a recovery coordinator.
  ElectionKind election = ElectionKind::MinId;
  /// Base seed of the survivor elections; mixed with the health generation
  /// so successive recoveries draw distinct, reproducible streams.
  std::uint64_t election_seed = 1;
};

/// Everything a KnnService is built from.  The builder below fills one of
/// these fluently; passing a hand-rolled config to
/// KnnServiceBuilder::config is equivalent.
struct ServiceConfig {
  /// k — simulated machines the dataset shards over (ignored when the
  /// dataset arrives pre-sharded; then k = shards.size()).
  std::uint32_t machines = 8;
  /// ℓ of every answer; must be ≥ 1 (answers still cap at min(ℓ, n)).
  std::uint64_t ell = 8;
  MetricKind metric = MetricKind::SquaredEuclidean;
  /// Distributed selection algorithm for query/classify/regress (per-call
  /// override available on query/query_batch).
  KnnAlgo algo = KnnAlgo::DistKnn;
  /// Local scoring structure per machine (static mode) or per sealed
  /// segment (live mode, via `serve.policy` which build() syncs to this).
  /// ScoringPolicy::Approx attaches a lazily-built k-NN graph (src/ann/)
  /// to every large-enough shard/segment and answers queries by beam
  /// search + exact rerank — recall semantics, NOT byte parity with the
  /// exact paths (see src/ann/README.md).
  ScoringPolicy policy = ScoringPolicy::Auto;
  std::size_t leaf_size = KdRangeIndex::kDefaultLeafSize;
  /// Graph knobs of the Approx policy (degree / ef / build seed...).
  /// build() syncs `ann.metric` to `metric` so graph geometry matches the
  /// service's canonical distance, and copies the result into
  /// `serve.ann` unless live(ServeConfig) supplied explicit knobs.
  ann::AnnConfig ann{};
  /// How a flat dataset() shards over the machines.
  PartitionScheme partition = PartitionScheme::RoundRobin;
  /// Seed for id assignment + partitioning of a flat dataset().
  std::uint64_t seed = 1;
  /// Scoring-step execution knobs.  `scoring.pool` may point at an
  /// external pool; otherwise the service owns one when threads != 1.
  BatchScoringConfig scoring{};
  EngineConfig engine{};
  KnnConfig knn{};
  /// Live-serving mode: machines are SegmentStores (insert/erase/
  /// compact_now/snapshot_epoch available) instead of frozen ShardIndexes.
  bool live = false;
  ServeConfig serve{};
  /// compact_now()'s victim-selection policy.
  CompactionConfig compaction{};
  /// Epoch-keyed result-cache entries for query/query_batch; 0 disables.
  /// Sound in both modes: answers are deterministic per epoch, and any
  /// mutation advances the service epoch.  The key is (coord bits, ℓ,
  /// metric, effective epoch) — per-call ℓ/metric overrides can never
  /// collide with canonical answers.  A fault-tolerant service
  /// additionally mixes the health generation into the effective epoch, so
  /// a degraded answer is never served after a liveness change (and vice
  /// versa).
  std::size_t cache_capacity = 0;
  /// query()'s facade-wide coalescing seat (the QueryFrontEnd
  /// leader/follower discipline): concurrently submitted singles ride one
  /// scored batch of up to `coalesce_max_batch`; the leader waits up to
  /// `coalesce_max_delay` for companions (0 = coalesce only queries
  /// already queued — no added latency, the default).  Coalescing changes
  /// no answer bytes: each answer is a pure function of (snapshot, query,
  /// effective ℓ/metric), and batch-mates with different overrides score
  /// in separate groups.
  std::size_t coalesce_max_batch = 32;
  std::chrono::microseconds coalesce_max_delay{0};
  /// Machine-failure handling: a MachineHealth registry gates every
  /// scoring step (deadline + bounded retry), dead machines degrade the
  /// answer (QueryResult::coverage) instead of failing it, and
  /// recover_machine() re-shards a dead machine's points onto survivors.
  /// Off by default — a non-fault-tolerant service behaves byte-identically
  /// to before this layer existed.
  bool fault_tolerant = false;
  FaultConfig fault{};
  /// Per-query tracing (see obs/trace.hpp): sample every Nth query() into
  /// the trace ring (0 = off — only QueryOptions::trace forces a trace).
  /// Tracing never changes answer bytes; an untraced call pays one branch.
  std::uint64_t trace_sample_every = 0;
  /// Recent-trace ring capacity (KnnService::recent_traces()).
  std::size_t trace_capacity = 256;
};

/// Per-call overrides for query / query_batch.  Implicitly constructible
/// from a KnnAlgo so existing `svc.query(p, KnnAlgo::Simple)` call sites
/// read unchanged.  Overridden ℓ/metric answers are cached under their own
/// key — the cache key carries (ℓ, metric) alongside the coordinate bits,
/// so they can never collide with canonical answers.
struct QueryOptions {
  /// Selection protocol for this call (affects cost, never keys).
  std::optional<KnnAlgo> algo;
  /// Answer size for this call; must be ≥ 1 (InvalidEllError otherwise).
  std::optional<std::uint64_t> ell;
  /// Distance metric for this call.
  std::optional<MetricKind> metric;
  /// Per-call routing between the exact and the approximate tier:
  /// `approx = true` scores graph-carrying shards with the ann beam
  /// search even under an exact policy (a no-op when no graph was built —
  /// graphs only exist under ScoringPolicy::Approx); `approx = false`
  /// forces the exact scan on an Approx-policy service.  Unlike algo,
  /// this CAN change answer bytes (recall semantics); approximate answers
  /// are cached under their own key, so they never collide with exact
  /// ones.
  std::optional<bool> approx;
  /// Force a trace of this query() call into the recent-trace ring
  /// regardless of ServiceConfig::trace_sample_every.  Never changes the
  /// answer bytes.  Ignored by query_batch's whole-batch trace gate (the
  /// batch traces as one unit when any caller sets it).
  bool trace = false;

  QueryOptions() = default;
  QueryOptions(KnnAlgo algo) : algo(algo) {}  // NOLINT(google-explicit-constructor)
  QueryOptions(std::optional<KnnAlgo> algo) : algo(algo) {}  // NOLINT
};

/// One query's answer through the facade — the same shape for the static
/// and the live path.
struct QueryResult {
  /// The global ℓ-NN as (distance-rank, id) keys, ascending; size =
  /// min(ℓ, live points).
  std::vector<Key> keys;
  /// Service epoch the answer is exact for (0 in static mode — the
  /// dataset never moves).
  std::uint64_t epoch = 0;
  /// Engine cost report.  For query(): the whole run.  For query_batch():
  /// this query's round count (whole-batch traffic lives on
  /// BatchQueryResult::report).  Empty on a cache hit — no protocol ran.
  RunReport report;
  /// Driver-loop iterations / Algorithm 2 sampling telemetry (see
  /// GlobalRunResult).
  std::uint32_t iterations = 0;
  std::uint32_t attempts = 1;
  std::uint64_t candidates = 0;
  bool prune_ok = true;
  /// True iff the answer came out of the service's result cache.
  bool cache_hit = false;
  /// Queries scored together in the call this answer rode in.
  std::uint32_t batch_size = 0;
  /// Which machines answered.  Complete (missing empty, total = machines)
  /// outside fault-tolerant mode and whenever everything is healthy; a
  /// degraded answer lists the dead machines whose shards it could not
  /// see — it is still byte-exact over the surviving shards.
  Coverage coverage;
};

/// A batched run's answers plus the whole-batch engine report.
struct BatchQueryResult {
  std::vector<QueryResult> per_query;  ///< in query order
  /// One engine, B queries: setup and warm-up amortize across the batch.
  /// Covers the cache-missing queries only (hits run no protocol).
  RunReport report;
  std::uint64_t epoch = 0;  ///< service epoch all answers are exact for
};

/// Facade health counters.  For query/query_batch-only workloads,
/// cache_hits + cache_misses == queries at *every* cache configuration —
/// a disabled cache (capacity 0) counts every scored answer as a miss
/// (see result_cache.hpp's stats convention).  classify/regress answers
/// count in `queries` but never touch the cache.
struct ServiceStats {
  std::uint64_t queries = 0;        ///< answers produced (all entry points)
  std::uint64_t batches = 0;        ///< scoring+protocol runs executed
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_flushes = 0;
  /// Kd-hybrid traversal counters summed over every tree-carrying shard
  /// (static mode) or tree segment (live mode) — the measured pruning
  /// behavior behind the Auto routing policy.  All-zero when no
  /// shard/segment carries a tree.  Live mode: a monotone lifetime total —
  /// compaction banks retired segments' counters into a store-level base
  /// before unpublishing them (SegmentStore::tree_stats), so installs
  /// never shrink these numbers.  Traversals recorded against a snapshot
  /// held across the install may still land after the banking read and be
  /// missed — diagnostics, racy by design.
  TreeStats tree;
};

class KnnServiceBuilder;

class KnnService {
 public:
  /// An unbuilt service; every call except built() throws
  /// ServiceStateError until a builder assigns into it.
  KnnService();

  KnnService(KnnService&&) noexcept;
  KnnService& operator=(KnnService&&) noexcept;
  KnnService(const KnnService&) = delete;
  KnnService& operator=(const KnnService&) = delete;
  ~KnnService();

  [[nodiscard]] bool built() const { return state_ != nullptr; }
  /// True iff built in live-serving mode.
  [[nodiscard]] bool live() const;
  [[nodiscard]] const ServiceConfig& config() const;
  /// Dataset dimensionality (0 = not yet known: empty static dataset).
  [[nodiscard]] std::size_t dim() const;
  [[nodiscard]] std::size_t machines() const;
  /// Live points across all machines (static mode: total resident points).
  [[nodiscard]] std::size_t total_points() const;

  // --- queries (static and live mode; lock-free snapshot reads, any thread) -

  /// Full distributed answer for one query: local scoring on every
  /// machine, the configured selection protocol (default Algorithm 2), the
  /// globally merged ℓ-NN.  `options` overrides algo / ℓ / metric for this
  /// call only.  Concurrent query() calls coalesce through the service's
  /// leader/follower seat (see ServiceConfig::coalesce_max_batch); a
  /// coalesced member's `report` carries its per-query round counts — the
  /// whole-group engine report belongs to no single caller and is dropped
  /// (a lone, uncoalesced query still owns the full report, as before).
  [[nodiscard]] QueryResult query(const PointD& point, const QueryOptions& options = {});

  /// Batched entry: the whole block is scored with the fused kernels and
  /// driven through one engine run (cache hits excluded).  Byte-identical
  /// to score_vector_shards_batch/score_serve_snapshots_batch +
  /// run_knn_batch over the same machines.  Bypasses the coalescing seat.
  [[nodiscard]] BatchQueryResult query_batch(std::span<const PointD> queries,
                                             const QueryOptions& options = {});

  /// Distributed ℓ-NN classification (majority / inverse-distance vote of
  /// the global winners' labels).  Requires labels at build time (or via
  /// insert_labeled); equals mlapi's classify_batch over the same shards.
  [[nodiscard]] ClassifyResult classify(const PointD& point,
                                        VoteRule rule = VoteRule::Majority);
  [[nodiscard]] std::vector<ClassifyResult> classify_batch(std::span<const PointD> queries,
                                                           VoteRule rule = VoteRule::Majority);

  /// Distributed ℓ-NN regression (mean target of the global winners).
  [[nodiscard]] RegressResult regress(const PointD& point);
  [[nodiscard]] std::vector<RegressResult> regress_batch(std::span<const PointD> queries);

  [[nodiscard]] ServiceStats stats() const;

  // --- observability (obs/ layer; any thread) -------------------------------

  /// Prometheus text exposition of the process-wide metrics registry
  /// (every dknn_* counter / gauge / histogram, all services and layers).
  [[nodiscard]] std::string metrics_text() const;
  /// The same registry snapshot as JSON (counters, gauges, histograms with
  /// p50/p95/p99 and non-empty buckets).
  [[nodiscard]] std::string metrics_json() const;
  /// The most recent sampled / forced query traces, oldest first (ring of
  /// ServiceConfig::trace_capacity).  Serialize with obs::Tracer::to_json
  /// or to_chrome.
  [[nodiscard]] std::vector<obs::QueryTrace> recent_traces() const;
  /// Adjusts trace sampling at runtime (0 = off; overrides the built
  /// ServiceConfig::trace_sample_every).
  void set_trace_sampling(std::uint64_t sample_every);

  // --- live-serving surface (ServiceStateError in static mode) --------------

  /// Appends a live point on the next machine in round-robin order.  `id`
  /// must be distinct from every live id across all machines.  Returns the
  /// new service epoch.
  std::uint64_t insert(const PointD& point, PointId id);
  /// insert() plus a label / target for classify() / regress().
  std::uint64_t insert_labeled(const PointD& point, PointId id, std::uint32_t label);
  std::uint64_t insert_target(const PointD& point, PointId id, double target);

  /// Deletes a live point wherever it lives.  Returns the new service
  /// epoch, or nullopt (and no epoch advance) when `id` is not live.
  std::optional<std::uint64_t> erase(PointId id);

  /// Synchronously pays off compaction debt on every machine (tombstone
  /// purges + small-segment merges under `config().compaction`).  Returns
  /// the new service epoch.  Held QueryResults are unaffected — they own
  /// their keys and stay exact for the epoch they are stamped with.
  /// Runs *without* the service mutex (merges read frozen views; installs
  /// are conditional on victim identity, so racing erases win and the
  /// round re-plans) — in-flight queries and concurrent mutations are
  /// never blocked behind the merge work.
  std::uint64_t compact_now();

  /// Background maintenance tick: schedules at most one compaction round
  /// per indebted machine on the service's owned pool (conditional install
  /// on tombstone identity, exactly the Compactor discipline) and returns
  /// immediately; the snapshot republishes from the worker as each round
  /// installs.  Returns the number of rounds scheduled.  Cheap enough to
  /// call every serving-loop tick.  Falls back to one inline round per
  /// machine when the service owns no pool (serial scoring config).
  std::size_t maybe_compact();

  /// The service epoch: strictly monotone over mutations (sum of the
  /// per-machine store epochs), 0 in static mode.  The epoch every
  /// QueryResult is stamped with and the result cache is keyed by.
  [[nodiscard]] std::uint64_t snapshot_epoch() const;

  /// True iff `id` is currently live (live mode; ServiceStateError in
  /// static mode — a static dataset has no mutable membership to probe).
  [[nodiscard]] bool contains(PointId id) const;

  /// Every live point id across all machines, ascending (live mode).
  /// O(live points) — the handle callers need to erase or relabel points
  /// the *builder* loaded (their random ids are assigned internally);
  /// also the safe way to mint fresh ids: pick anything contains() denies.
  [[nodiscard]] std::vector<PointId> live_ids() const;

  /// Maintenance telemetry (live mode; 0 / config-sized in static mode).
  [[nodiscard]] std::size_t segment_count() const;
  [[nodiscard]] std::uint64_t compaction_debt() const;

  // --- fault-tolerance surface (ServiceStateError unless fault_tolerant) ----

  /// True iff built with fault tolerance enabled.
  [[nodiscard]] bool fault_tolerant() const;
  /// The health registry (read-only; mutate liveness through the methods
  /// below so service bookkeeping — pending erases, mirrors — stays
  /// consistent).
  [[nodiscard]] const MachineHealth& health() const;

  /// Fail-stops an alive machine: its shard drops out of every answer
  /// (coverage reports it missing) until revive or recovery.
  void kill_machine(std::size_t machine);
  /// Brings a dead machine back with its store intact; erases issued while
  /// it was down are applied before it rejoins, so deleted points never
  /// resurrect.  Queries afterwards are byte-identical to a never-failed
  /// service at the same membership.
  void revive_machine(std::size_t machine);
  /// Scripts probe outcomes for chaos tests: an Unresponsive machine is
  /// *detected* dead by the next scoring step's deadline gate rather than
  /// declared dead up front.
  void set_failure_mode(std::size_t machine, FailureMode mode);

  /// Recovers one dead machine (live mode): survivors elect a coordinator
  /// (config().fault.election), the dead machine's mirrored points
  /// re-insert onto the survivors round-robin from the coordinator
  /// (ascending id — deterministic), and the machine retires out of
  /// coverage.  Afterwards answers are byte-identical to a never-failed
  /// service over the same membership.  Throws ServiceStateError unless
  /// the machine is dead; NoLiveMachinesError when no survivor remains.
  RecoveryReport recover_machine(std::size_t machine);
  /// Recovers every dead machine, ascending id.
  std::vector<RecoveryReport> recover_all();

  /// Member ids homed on one machine, ascending (live fault-tolerant mode;
  /// a dead machine still owns its membership until recovered).
  [[nodiscard]] std::vector<PointId> live_ids_on(std::size_t machine) const;

 private:
  friend class KnnServiceBuilder;
  struct State;
  /// The immutable read-path view (stores' snapshots + indexes + payload
  /// tables + liveness at publish); defined in the .cpp.
  struct Snapshot;
  /// One waiting query() call's slot in the coalescing seat.
  struct SeatSlot;
  explicit KnnService(std::unique_ptr<State> state);

  /// Throws ServiceStateError unless built.
  [[nodiscard]] State& ensure_built() const;
  /// Throws ServiceStateError unless built live.
  [[nodiscard]] State& ensure_live() const;
  /// Throws ServiceStateError unless built fault-tolerant.
  [[nodiscard]] State& ensure_fault_tolerant() const;
  /// Body of recover_machine, mutex already held.
  static RecoveryReport recover_locked(State& state, std::size_t machine);
  /// Shared body of the insert family: validate, route round-robin,
  /// insert.  Returns the machine the point landed on.
  static std::size_t insert_point(State& state, const PointD& point, PointId id);
  /// Rebuilds and atomically publishes the read-path snapshot; called at
  /// the end of every mutation, with the service mutex held.
  static void publish_locked(State& state);
  /// Shared scored-batch core of every read path: cache pass + (guarded)
  /// scoring + selection + cache publish against one snapshot, no service
  /// mutex.  `sink` fans stage spans (cache_lookup / shard_scoring /
  /// selection / merge) to the traced members of the batch — pass an empty
  /// sink when nothing is traced.
  static BatchQueryResult run_batch_core(State& state,
                                         const std::shared_ptr<const Snapshot>& snap,
                                         std::span<const PointD> queries, KnnAlgo algo,
                                         std::uint64_t ell, MetricKind metric, bool approx,
                                         const obs::TraceSink& sink);
  /// Leader body of the coalescing seat: groups `batch` by effective
  /// (algo, ℓ, metric) and runs each group through run_batch_core against
  /// one snapshot.
  static void execute_seat(State& state, std::span<SeatSlot*> batch);

  std::unique_ptr<State> state_;
};

/// Fluent assembly of a KnnService.  Setters return *this so construction
/// reads as one expression; build() consumes the staged dataset (a builder
/// is one-shot).
class KnnServiceBuilder {
 public:
  KnnServiceBuilder() = default;

  KnnServiceBuilder& machines(std::uint32_t k);
  KnnServiceBuilder& ell(std::uint64_t ell);
  KnnServiceBuilder& metric(MetricKind kind);
  KnnServiceBuilder& algo(KnnAlgo algo);
  KnnServiceBuilder& policy(ScoringPolicy policy);
  KnnServiceBuilder& leaf_size(std::size_t leaf_size);
  /// Graph knobs of ScoringPolicy::Approx (see ServiceConfig::ann).
  KnnServiceBuilder& ann(const ann::AnnConfig& ann);
  KnnServiceBuilder& partition(PartitionScheme scheme);
  KnnServiceBuilder& seed(std::uint64_t seed);
  KnnServiceBuilder& scoring(const BatchScoringConfig& scoring);
  KnnServiceBuilder& engine(const EngineConfig& engine);
  KnnServiceBuilder& knn(const KnnConfig& knn);
  /// Switches to live-serving mode.  The plain overload derives the
  /// stores' scoring policy and leaf size from policy()/leaf_size(); the
  /// ServeConfig overload takes the caller's knobs verbatim.
  KnnServiceBuilder& live();
  KnnServiceBuilder& live(const ServeConfig& serve);
  KnnServiceBuilder& compaction(const CompactionConfig& compaction);
  KnnServiceBuilder& cache_capacity(std::size_t entries);
  /// query()'s coalescing-seat knobs (see ServiceConfig).
  KnnServiceBuilder& coalesce(std::size_t max_batch,
                              std::chrono::microseconds max_delay = std::chrono::microseconds{0});
  /// Enables machine-failure handling (see ServiceConfig::fault_tolerant).
  KnnServiceBuilder& fault_tolerant();
  KnnServiceBuilder& fault_tolerant(const FaultConfig& fault);
  /// Per-query trace sampling knobs (see ServiceConfig::trace_sample_every).
  KnnServiceBuilder& trace(std::uint64_t sample_every, std::size_t capacity = 256);
  /// Wholesale config (fields staged so far are overwritten).
  KnnServiceBuilder& config(const ServiceConfig& config);
  /// Explicit dimensionality — required only for a live service built
  /// without points.
  KnnServiceBuilder& dim(std::size_t dim);

  /// A flat dataset: the builder shards it over `machines()` with
  /// `partition()` and assigns the paper's random unique ids (seeded —
  /// byte-identical to calling make_vector_shards yourself with the same
  /// seed).
  KnnServiceBuilder& dataset(std::vector<PointD> points);
  /// A pre-sharded dataset (the migration path from make_vector_shards /
  /// make_shard_indexes call sites): machine count and ids come from the
  /// shards.
  KnnServiceBuilder& dataset_sharded(std::vector<VectorShard> shards);

  /// Labels / targets aligned with a flat dataset() (labels[i] belongs to
  /// points[i]) — the builder routes them through the partition.
  KnnServiceBuilder& labels(std::vector<std::uint32_t> labels);
  KnnServiceBuilder& targets(std::vector<double> targets);
  /// Labels / targets aligned with dataset_sharded() (labels[m][i]
  /// belongs to shards[m].points[i]).
  KnnServiceBuilder& labels_sharded(std::vector<std::vector<std::uint32_t>> labels);
  KnnServiceBuilder& targets_sharded(std::vector<std::vector<double>> targets);

  /// Validates (typed errors, see the file comment), shards, builds the
  /// per-machine scoring structures (ShardIndexes or sealed SegmentStores)
  /// and the service's pool + cache, and hands the assembled service over.
  [[nodiscard]] KnnService build();

 private:
  ServiceConfig config_{};
  std::size_t dim_ = 0;
  bool have_flat_ = false;
  std::vector<PointD> flat_points_;
  std::vector<std::uint32_t> flat_labels_;
  std::vector<double> flat_targets_;
  bool have_sharded_ = false;
  std::vector<VectorShard> shards_;
  std::vector<std::vector<std::uint32_t>> sharded_labels_;
  std::vector<std::vector<double>> sharded_targets_;
  bool have_labels_ = false;
  bool have_targets_ = false;
  /// True once live(ServeConfig) or config() supplied explicit store
  /// knobs — build() then leaves serve.policy/leaf_size alone instead of
  /// deriving them from policy()/leaf_size().
  bool serve_explicit_ = false;
};

}  // namespace dknn

#include "core/dist_select.hpp"

#include <algorithm>

#include "sim/collectives.hpp"
#include "support/panic.hpp"

namespace dknn {

namespace detail {

std::pair<std::size_t, std::size_t> range_window(const std::vector<Key>& sorted,
                                                 const KeyRange& range) {
  const auto begin = sorted.begin();
  const auto first = range.has_lo ? std::upper_bound(begin, sorted.end(), range.lo) : begin;
  const auto last = std::upper_bound(first, sorted.end(), range.hi);
  return {static_cast<std::size_t>(first - begin), static_cast<std::size_t>(last - begin)};
}

std::uint64_t count_in_range(const std::vector<Key>& sorted, const KeyRange& range) {
  const auto [first, last] = range_window(sorted, range);
  return last - first;
}

}  // namespace detail

namespace {

/// The leader's view of the search: range, per-machine in-range counts, and
/// the remaining selection target.
struct LeaderState {
  KeyRange range;                      // current (lo, hi]
  std::vector<std::uint64_t> counts;   // per-machine in-range counts
  std::uint64_t in_range = 0;          // Σ counts
  std::uint64_t remaining = 0;         // ℓ adjusted for accepted prefixes
};

SelInit local_init(const std::vector<Key>& sorted) {
  SelInit init;
  init.count = sorted.size();
  if (!sorted.empty()) {
    init.min_key = sorted.front();
    init.max_key = sorted.back();
  }
  return init;
}

Key pick_local_pivot(const std::vector<Key>& sorted, const KeyRange& range, Rng& rng) {
  const auto [first, last] = detail::range_window(sorted, range);
  DKNN_ASSERT(first < last, "pivot requested from a machine with no in-range keys");
  const std::size_t index = first + static_cast<std::size_t>(rng.below(last - first));
  return sorted[index];
}

Task<SelectLocal> run_leader(Ctx& ctx, const std::vector<Key>& sorted, std::uint64_t ell,
                             SelectConfig config) {
  const std::uint32_t k = ctx.world();

  // Step 2-3 of the pseudocode: collect (n_i, m_i, M_i) from everyone.
  for (MachineId m = 0; m < k; ++m) {
    if (m != config.leader) ctx.send(m, tags::kSelInit, Bytes{});
  }
  LeaderState state;
  state.counts.assign(k, 0);
  SelInit own = local_init(sorted);
  state.counts[config.leader] = own.count;
  state.in_range = own.count;
  Key global_max = own.count > 0 ? own.max_key : Key::min_key();
  bool any_points = own.count > 0;
  if (k > 1) {
    auto replies = co_await recv_n(ctx, tags::kSelInitReply, k - 1);
    for (const auto& env : replies) {
      const auto init = from_bytes<SelInit>(env.payload);
      state.counts[env.src] = init.count;
      state.in_range += init.count;
      if (init.count > 0) {
        global_max = any_points ? std::max(global_max, init.max_key) : init.max_key;
        any_points = true;
      }
    }
  }

  SelFinished fin;
  state.remaining = std::min<std::uint64_t>(ell, state.in_range);
  state.range = KeyRange{/*has_lo=*/false, Key{}, global_max};

  if (state.remaining == 0) {
    fin.any = false;  // ℓ == 0 or no points at all
  } else {
    // Invariant: the answer is {keys <= lo-prefix} ∪ (`remaining` more keys
    // from (lo, hi]), and state.in_range == |(lo, hi]| > 0.
    while (state.in_range > state.remaining) {
      ++fin.iterations;

      // Pivot: machine weighted by in-range count, then uniform local key.
      const auto pivot_machine = static_cast<MachineId>(ctx.rng().weighted_index(state.counts));
      Key pivot;
      if (pivot_machine == config.leader) {
        pivot = pick_local_pivot(sorted, state.range, ctx.rng());
      } else {
        ctx.send_value(pivot_machine, tags::kSelPivotReq, state.range);
        pivot = co_await recv_value_from<Key>(ctx, pivot_machine, tags::kSelPivotReply);
      }

      // Count keys in (lo, pivot] on every machine.
      const KeyRange probe{state.range.has_lo, state.range.lo, pivot};
      for (MachineId m = 0; m < k; ++m) {
        if (m != config.leader) ctx.send_value(m, tags::kSelCountReq, probe);
      }
      std::vector<std::uint64_t> below(k, 0);
      below[config.leader] = detail::count_in_range(sorted, probe);
      std::uint64_t s = below[config.leader];
      if (k > 1) {
        auto replies = co_await recv_n(ctx, tags::kSelCountReply, k - 1);
        for (const auto& env : replies) {
          below[env.src] = from_bytes<std::uint64_t>(env.payload);
          s += below[env.src];
        }
      }

      if (s == state.remaining) {
        state.range.hi = pivot;  // exact hit: bound is the pivot
        state.in_range = s;
        for (MachineId m = 0; m < k; ++m) state.counts[m] = below[m];
        break;
      }
      if (s < state.remaining) {
        // Accept (lo, pivot] into the answer and keep searching above it.
        state.remaining -= s;
        state.range.has_lo = true;
        state.range.lo = pivot;
        for (MachineId m = 0; m < k; ++m) state.counts[m] -= below[m];
        state.in_range -= s;
      } else {
        // Discard everything above the pivot.
        state.range.hi = pivot;
        for (MachineId m = 0; m < k; ++m) state.counts[m] = below[m];
        state.in_range = s;
      }
      DKNN_ASSERT(state.in_range >= state.remaining, "selection range lost the answer");
      DKNN_ASSERT(state.in_range > 0, "selection range emptied");
    }
    fin.any = true;
    fin.bound = state.range.hi;
  }

  for (MachineId m = 0; m < k; ++m) {
    if (m != config.leader) ctx.send_value(m, tags::kSelFinished, fin);
  }

  SelectLocal out;
  out.iterations = fin.iterations;
  out.any = fin.any;
  out.bound = fin.bound;
  if (fin.any) {
    const auto end = std::upper_bound(sorted.begin(), sorted.end(), fin.bound);
    out.selected.assign(sorted.begin(), end);
  }
  co_return out;
}

Task<SelectLocal> run_follower(Ctx& ctx, const std::vector<Key>& sorted, SelectConfig config) {
  // Hoisted out of the co_await expression (GCC 12 miscompiles brace-init
  // lists whose backing array must live across a suspension point).
  std::vector<Tag> watched{tags::kSelInit, tags::kSelPivotReq, tags::kSelCountReq,
                           tags::kSelFinished};
  while (true) {
    Envelope env = co_await recv_any(ctx, watched);
    DKNN_ASSERT(env.src == config.leader, "selection control message from non-leader");
    if (env.tag == tags::kSelInit) {
      ctx.send_value(config.leader, tags::kSelInitReply, local_init(sorted));
    } else if (env.tag == tags::kSelPivotReq) {
      const auto range = from_bytes<KeyRange>(env.payload);
      ctx.send_value(config.leader, tags::kSelPivotReply,
                     pick_local_pivot(sorted, range, ctx.rng()));
    } else if (env.tag == tags::kSelCountReq) {
      const auto range = from_bytes<KeyRange>(env.payload);
      ctx.send_value(config.leader, tags::kSelCountReply, detail::count_in_range(sorted, range));
    } else {
      const auto fin = from_bytes<SelFinished>(env.payload);
      SelectLocal out;
      out.iterations = fin.iterations;
      out.any = fin.any;
      out.bound = fin.bound;
      if (fin.any) {
        const auto end = std::upper_bound(sorted.begin(), sorted.end(), fin.bound);
        out.selected.assign(sorted.begin(), end);
      }
      co_return out;
    }
  }
}

}  // namespace

Task<SelectLocal> dist_select(Ctx& ctx, std::vector<Key> local_keys, std::uint64_t ell,
                              SelectConfig config) {
  DKNN_REQUIRE(config.leader < ctx.world(), "leader id out of range");
  if (!std::is_sorted(local_keys.begin(), local_keys.end())) {
    std::sort(local_keys.begin(), local_keys.end());
  }
  DKNN_REQUIRE(std::adjacent_find(local_keys.begin(), local_keys.end()) == local_keys.end(),
               "local keys must be distinct (use unique point ids)");
  if (ctx.id() == config.leader) {
    co_return co_await run_leader(ctx, local_keys, ell, config);
  }
  co_return co_await run_follower(ctx, local_keys, config);
}

}  // namespace dknn

#include "core/knn_service.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <string>
#include <thread>
#include <tuple>
#include <utility>

#include "obs/metrics.hpp"
#include "serve/compactor.hpp"
#include "support/panic.hpp"

namespace dknn {

// --- the published read-path view --------------------------------------------

/// Everything a query needs, frozen at one publish: the per-machine scoring
/// structures (store snapshots in live mode, the immutable index set in
/// static mode), the payload tables (COW — mutators install fresh maps, so a
/// published table never changes under a reader), and the liveness state
/// (generation + coverage + which stores were reachable) the view was taken
/// at.  Readers hold one of these by shared_ptr for the whole call; nothing
/// in it is ever mutated after publish.
struct KnnService::Snapshot {
  /// Service epoch (sum of per-store epochs) at publish; 0 in static mode.
  std::uint64_t epoch = 0;
  /// Health generation at publish (0 without fault tolerance).  Readers
  /// compare against the live generation: equal means the cached-answer key
  /// (epoch + generation) is still current.
  std::uint64_t generation = 0;
  /// Detected coverage at publish — what cache hits are stamped with.
  Coverage coverage;
  std::size_t machine_count = 0;
  /// Live mode: one coherent snapshot per machine; a slot is null iff its
  /// machine was not Alive at publish (its store is unreachable — the
  /// guarded scoring step reports it missing without probing).
  std::vector<SnapshotPtr> stores;
  /// Static mode: the frozen per-machine indexes (shared, never rebuilt).
  std::shared_ptr<const std::vector<ShardIndex>> indexes;
  /// COW payload tables for classify/regress, aligned with the stores.
  std::vector<std::shared_ptr<const std::unordered_map<PointId, std::uint32_t>>> labels;
  std::vector<std::shared_ptr<const std::unordered_map<PointId, double>>> targets;
  bool has_labels = false;
  bool has_targets = false;
};

/// One waiting query() call in the coalescing seat (the QueryFrontEnd
/// leader/follower discipline, facade-wide).  Owned by the caller's stack;
/// `done`/`result`/`error` are written by the leader and read by the owner,
/// both under seat_mutex.
struct KnnService::SeatSlot {
  const PointD* query = nullptr;
  KnnAlgo algo{};
  std::uint64_t ell = 0;
  MetricKind metric{};
  bool approx = false;
  QueryResult result;
  std::exception_ptr error;
  bool done = false;
  /// This query's trace (null = untraced).  The leader writes batch-stage
  /// spans through it strictly before marking `done` under seat_mutex, so
  /// the owner's reads are ordered by the publish that hands the answer
  /// back (see obs/trace.hpp's ownership rule).
  obs::TraceBuilder* trace = nullptr;
  /// Seat enqueue time (0 = untimed) — execute_seat turns it into the
  /// seat-wait histogram sample and the traced seat_wait span.
  std::uint64_t enqueue_ns = 0;
};

// --- State -------------------------------------------------------------------

struct KnnService::State {
  ServiceConfig config;
  std::size_t dim = 0;  ///< 0 = unknown (empty static dataset)

  // Static mode: each machine's frozen scoring structures (shared with
  // every published Snapshot; immutable after build).
  std::shared_ptr<const std::vector<ShardIndex>> indexes;
  // Live mode: each machine's mutable store.
  std::vector<std::unique_ptr<SegmentStore>> stores;
  std::uint64_t next_machine = 0;  ///< round-robin insert routing

  // id → payload per machine, shared by both modes (a live store's
  // membership churns, so positional arrays cannot label it).  Copy-on-
  // write: a published Snapshot shares these maps, so mutators never edit
  // one in place — they clone, edit the clone, and swap the pointer.
  bool has_labels = false;
  bool has_targets = false;
  std::vector<std::shared_ptr<const std::unordered_map<PointId, std::uint32_t>>> labels;
  std::vector<std::shared_ptr<const std::unordered_map<PointId, double>>> targets;

  // Fault-tolerant mode only: the liveness registry gating every scoring
  // step, the recovery mirror (live mode — what re-shards a dead machine's
  // points; doubles point memory, the price of single-copy ownership in
  // the k-machine model), and erases issued while their owner was dead
  // (applied if the machine revives; recovery consults the mirror, which
  // already excludes them — deletes never resurrect either way).
  std::unique_ptr<MachineHealth> health;
  std::unique_ptr<ReplicaMirror> mirror;
  std::vector<std::vector<PointId>> pending_erases;

  EpochResultCache cache;
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> batches{0};

  /// Per-query trace sampling gate + recent-trace ring (obs/trace.hpp).
  obs::Tracer tracer;

  // The *mutation* mutex: insert / erase / compact installs / kill /
  // revive / recover (and the bookkeeping readers over the mutable mirror)
  // serialize here.  The query paths never touch it — they read the
  // published snapshot below.
  std::mutex mutex;

  // The read-path snapshot, swapped under a leaf mutex (not
  // std::atomic<shared_ptr>: TSan can't see through libstdc++'s _Sp_atomic,
  // and a leaf mutex held for one pointer copy costs the same — the exact
  // convention SegmentStore::snapshot() uses).
  mutable std::mutex snapshot_mutex;
  std::shared_ptr<const Snapshot> snapshot;

  // query()'s coalescing seat (one per service).
  std::mutex seat_mutex;
  std::condition_variable seat_cv;   ///< arrivals, completions, leader hand-off
  std::vector<SeatSlot*> seat_queue; ///< guarded by seat_mutex
  bool seat_leader_active = false;   ///< guarded by seat_mutex

  // Service-owned scoring pool (null when scoring is serial or the caller
  // supplied an external pool); `scoring` is config.scoring with the pool
  // wired in.
  std::unique_ptr<ThreadPool> pool;
  BatchScoringConfig scoring;

  // Background compactors (live mode with an owned pool), one per store.
  // Declared after `pool` so they destroy first: each drains its in-flight
  // round (whose completion hook takes `mutex` and republishes) before the
  // pool — or anything the hook touches — goes away.
  std::vector<std::unique_ptr<Compactor>> compactors;

  State(std::size_t cache_capacity, std::uint64_t trace_sample_every, std::size_t trace_capacity)
      : cache(cache_capacity), tracer(trace_sample_every, trace_capacity) {}

  [[nodiscard]] std::size_t machine_count() const {
    if (config.live) return stores.size();
    return indexes != nullptr ? indexes->size() : 0;
  }

  /// The strictly monotone service epoch (sum of per-store epochs; each
  /// store's epoch never decreases and every mutation bumps one, so equal
  /// sums imply an identical store state).
  [[nodiscard]] std::uint64_t epoch() const {
    std::uint64_t sum = 0;
    for (const auto& store : stores) sum += store->epoch();
    return sum;
  }
};

namespace {

/// One locked pointer copy of the published snapshot (templated so the
/// helper needn't name the private Snapshot type).
template <typename SnapPtr>
[[nodiscard]] SnapPtr load_published(std::mutex& mutex, const SnapPtr& slot) {
  const std::lock_guard<std::mutex> lock(mutex);
  return slot;
}

/// COW-erase `id` from one machine's payload table (no-op when absent).
template <typename Value>
void erase_payload(std::vector<std::shared_ptr<const std::unordered_map<PointId, Value>>>& tables,
                   std::size_t machine, PointId id) {
  if (tables[machine]->count(id) == 0) return;
  auto next = std::make_shared<std::unordered_map<PointId, Value>>(*tables[machine]);
  next->erase(id);
  tables[machine] = std::move(next);
}

/// Facade metrics (obs/metrics.hpp), process-wide across services.  The
/// query/hit/miss counters move together at the end of run_batch_core, so
/// hits + misses == queries holds by construction at every quiescent read
/// (the invariant bench/check_metrics_schema.py asserts).
struct ServiceMetrics {
  obs::Counter& queries = obs::registry().counter(
      "dknn_service_queries_total", "query/query_batch answers produced by any KnnService");
  obs::Counter& batches = obs::registry().counter(
      "dknn_service_batches_total", "scoring+protocol runs executed by the facade");
  obs::Counter& cache_hits = obs::registry().counter(
      "dknn_service_cache_hits_total", "facade answers served from the epoch result cache");
  obs::Counter& cache_misses = obs::registry().counter(
      "dknn_service_cache_misses_total", "facade answers that ran scoring + selection");
  obs::Counter& epoch_publishes = obs::registry().counter(
      "dknn_service_epoch_publishes_total", "read-path snapshot publishes (mutations, installs)");
  obs::Histogram& query_latency = obs::registry().histogram(
      "dknn_service_query_latency_ns", "query() entry to answer, seat wait included");
  obs::Histogram& query_seat_wait = obs::registry().histogram(
      "dknn_service_seat_wait_ns", "seat enqueue -> batch execution start, per coalesced query");
  obs::Histogram& coalesce_batch_size = obs::registry().histogram(
      "dknn_service_coalesce_batch_size", "queries per coalescing-seat execute");
};

ServiceMetrics& service_metrics() {
  static ServiceMetrics m;
  return m;
}

}  // namespace

void KnnService::publish_locked(State& state) {
  auto snap = std::make_shared<Snapshot>();
  snap->machine_count = state.machine_count();
  snap->indexes = state.indexes;
  snap->has_labels = state.has_labels;
  snap->has_targets = state.has_targets;
  snap->labels = state.labels;
  snap->targets = state.targets;
  snap->epoch = state.epoch();
  std::vector<char> alive;
  if (state.health != nullptr) {
    // One view() read keeps generation / coverage / alive-mask coherent —
    // a concurrent probe detection between separate reads could publish a
    // generation that disagrees with the store set.
    LivenessView view = state.health->view();
    snap->generation = view.generation;
    snap->coverage = std::move(view.coverage);
    alive = std::move(view.alive);
  } else {
    snap->coverage.total = static_cast<std::uint32_t>(snap->machine_count);
  }
  if (state.config.live) {
    snap->stores.reserve(state.stores.size());
    for (std::size_t m = 0; m < state.stores.size(); ++m) {
      const bool reachable = state.health == nullptr || (m < alive.size() && alive[m] != 0);
      snap->stores.push_back(reachable ? state.stores[m]->snapshot() : nullptr);
    }
  }
  {
    const std::lock_guard<std::mutex> lock(state.snapshot_mutex);
    state.snapshot = std::move(snap);
  }
  service_metrics().epoch_publishes.add();
}

// --- lifecycle ---------------------------------------------------------------

KnnService::KnnService() = default;
KnnService::KnnService(std::unique_ptr<State> state) : state_(std::move(state)) {}
KnnService::KnnService(KnnService&&) noexcept = default;
KnnService& KnnService::operator=(KnnService&&) noexcept = default;
KnnService::~KnnService() = default;

KnnService::State& KnnService::ensure_built() const {
  if (state_ == nullptr) throw ServiceStateError("dknn: KnnService used before build()");
  return *state_;
}

KnnService::State& KnnService::ensure_live() const {
  State& state = ensure_built();
  if (!state.config.live) {
    throw ServiceStateError(
        "dknn: live-serving call on a static-mode KnnService (build with "
        "KnnServiceBuilder::live)");
  }
  return state;
}

bool KnnService::live() const { return ensure_built().config.live; }
const ServiceConfig& KnnService::config() const { return ensure_built().config; }
std::size_t KnnService::dim() const { return ensure_built().dim; }
std::size_t KnnService::machines() const { return ensure_built().machine_count(); }

std::size_t KnnService::total_points() const {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::size_t total = 0;
  if (state.config.live) {
    // The mirror is authoritative in fault-tolerant mode: a dead machine's
    // store still holds its points (and pending erases), so summing stores
    // would double-count after recovery re-homes them.
    if (state.mirror != nullptr) return state.mirror->total_points();
    for (const auto& store : state.stores) total += store->live_points();
  } else {
    if (state.indexes != nullptr) {
      for (const ShardIndex& index : *state.indexes) total += index.store().size();
    }
  }
  return total;
}

// --- queries -----------------------------------------------------------------

namespace {

void validate_query_dims(std::size_t dim, std::span<const PointD> queries) {
  // dim == 0 means the dataset is empty and dimension-free; every scoring
  // path then returns empty keys for any query (mirrors the kernels).
  if (dim == 0) return;
  for (const PointD& query : queries) require_query_dim(dim, query.dim());
}

/// The mode-appropriate routing policy: live stores score by
/// serve.policy (build() syncs it to policy unless live(ServeConfig)
/// overrode it), static indexes by policy.  Approx defaults on exactly
/// when the built structures carry graphs.
[[nodiscard]] ScoringPolicy effective_policy(const ServiceConfig& config) {
  return config.live ? config.serve.policy : config.policy;
}

}  // namespace

BatchQueryResult KnnService::run_batch_core(State& state,
                                            const std::shared_ptr<const Snapshot>& snap,
                                            std::span<const PointD> queries, KnnAlgo algo,
                                            std::uint64_t ell, MetricKind metric, bool approx,
                                            const obs::TraceSink& sink) {
  BatchQueryResult out;
  out.epoch = snap->epoch;
  out.per_query.resize(queries.size());
  const auto batch_size = static_cast<std::uint32_t>(queries.size());
  const bool fault_tolerant = state.health != nullptr;

  // Caching gate.  The key is (coord bits, ℓ, metric, epoch + generation);
  // both epoch and generation are monotone, so equal sums imply an
  // identical (data, liveness) state — a hit is byte-exact.  The snapshot
  // pins the data epoch; the generation can still move under us (a probe
  // detection needs no mutation), so caching is active only while the live
  // generation equals the snapshot's.  A stale window (detection not yet
  // republished) bypasses the cache entirely — scored answers still come
  // out right (the guard skips the dead machine), they just aren't cached,
  // and note_bypass keeps the miss counter reconciled.
  const std::uint64_t live_generation =
      fault_tolerant ? state.health->generation() : 0;
  const bool generation_stable = live_generation == snap->generation;
  const bool caching = state.cache.capacity() > 0 && generation_stable;
  const std::uint64_t cache_epoch = snap->epoch + live_generation;
  // What cache hits are stamped with: the publish-time detected coverage —
  // the generation key guarantees it equals the entry's compute-time state.
  const Coverage& hit_coverage = snap->coverage;

  std::vector<std::size_t> miss_index;
  std::vector<PointD> miss_queries;
  std::vector<std::vector<std::uint64_t>> miss_bits;
  {
    obs::SinkScope span(sink, "cache_lookup");
    if (!caching) {
      miss_index.reserve(queries.size());
      miss_queries.reserve(queries.size());
      for (std::size_t q = 0; q < queries.size(); ++q) {
        miss_index.push_back(q);
        miss_queries.push_back(queries[q]);
      }
      state.cache.note_bypass(queries.size());
    } else {
      for (std::size_t q = 0; q < queries.size(); ++q) {
        auto bits = query_coord_bits(queries[q]);
        // Per-call ℓ/metric/approx ride in the key as extra words, so an
        // overridden (or approximate) answer can never collide with a
        // canonical one.
        bits.push_back(ell);
        bits.push_back(static_cast<std::uint64_t>(metric));
        bits.push_back(approx ? 1 : 0);
        if (auto cached = state.cache.lookup(bits, cache_epoch); cached.has_value()) {
          QueryResult& dst = out.per_query[q];
          dst.keys = std::move(*cached);
          dst.epoch = snap->epoch;
          dst.cache_hit = true;
          dst.coverage = hit_coverage;
        } else {
          miss_index.push_back(q);
          miss_queries.push_back(queries[q]);
          miss_bits.push_back(std::move(bits));
        }
      }
    }
    span.set_detail(queries.size() - miss_index.size());  // cache hits
  }

  if (!miss_queries.empty()) {
    // Local computation: the fused batch kernels over every machine's
    // snapshotted structures — exactly the free-function paths.  Fault-
    // tolerant mode routes through the deadline-guarded variants: dead /
    // unresponsive machines are skipped (their slots stay empty, a legal
    // empty shard for every protocol) and reported in the coverage; a
    // machine whose snapshot slot is null (dead at publish) is reported
    // missing without a probe.
    std::vector<std::vector<std::vector<Key>>> scored;
    Coverage miss_coverage = hit_coverage;
    {
      obs::SinkScope span(sink, "shard_scoring");
      span.set_detail(snap->machine_count);
      // Approx routing rides the scoring config: graph-carrying shards
      // switch to the ann beam search, everything else (delta mirrors,
      // small shards, exact-policy services) scores exactly.  Traced
      // approximate batches get an extra ann_search span so the tier
      // shows up in the timeline.
      BatchScoringConfig scoring = state.scoring;
      scoring.approx = approx;
      const obs::TraceSink no_sink;
      obs::SinkScope ann_span(approx ? sink : no_sink, "ann_search");
      if (approx) ann_span.set_detail(miss_queries.size());
      if (fault_tolerant) {
        GuardedScoreBatch guarded =
            state.config.live
                ? score_serve_snapshots_batch_guarded(snap->stores, miss_queries, ell, metric,
                                                      *state.health, scoring)
                : score_vector_shards_batch_guarded(*snap->indexes, miss_queries, ell, metric,
                                                    *state.health, scoring);
        scored = std::move(guarded.scored);
        miss_coverage = std::move(guarded.coverage);
      } else {
        scored = state.config.live
                     ? score_serve_snapshots_batch(snap->stores, miss_queries, ell, metric,
                                                   scoring)
                     : score_vector_shards_batch(*snap->indexes, miss_queries, ell, metric,
                                                 scoring);
      }
    }
    // Global selection: every miss through one engine run.
    BatchRunResult batch = [&] {
      obs::SinkScope span(sink, "selection");
      span.set_detail(miss_queries.size());
      return run_knn_batch(scored, ell, algo, state.config.engine, state.config.knn);
    }();

    // Publish to the cache only if the generation held through scoring —
    // answers computed while a detection landed belong to neither liveness
    // state's key.  After any detection, opportunistically republish the
    // snapshot (try_lock: a mutator holding the mutex will republish
    // itself) so later reads see the new liveness and caching resumes.
    bool publish = caching;
    if (fault_tolerant) {
      const std::uint64_t post_generation = state.health->generation();
      publish = caching && post_generation == live_generation;
      if (post_generation != snap->generation && state.mutex.try_lock()) {
        publish_locked(state);
        state.mutex.unlock();
      }
    }
    obs::SinkScope span(sink, "merge");
    if (publish) state.cache.make_room(miss_index.size(), cache_epoch);
    for (std::size_t i = 0; i < miss_index.size(); ++i) {
      QueryResult& dst = out.per_query[miss_index[i]];
      GlobalRunResult& src = batch.per_query[i];
      dst.keys = std::move(src.keys);
      dst.report = std::move(src.report);
      dst.iterations = src.iterations;
      dst.attempts = src.attempts;
      dst.candidates = src.candidates;
      dst.prune_ok = src.prune_ok;
      dst.epoch = snap->epoch;
      dst.cache_hit = false;
      dst.coverage = miss_coverage;
      if (publish) state.cache.insert(std::move(miss_bits[i]), cache_epoch, dst.keys);
    }
    out.report = std::move(batch.report);
    state.batches.fetch_add(1, std::memory_order_relaxed);
    service_metrics().batches.add();
  }

  for (QueryResult& result : out.per_query) result.batch_size = batch_size;
  state.queries.fetch_add(queries.size(), std::memory_order_relaxed);
  // hits + misses == queries by construction: the three counters move
  // together here, once per scored/cached batch.
  ServiceMetrics& metrics = service_metrics();
  metrics.queries.add(queries.size());
  metrics.cache_misses.add(miss_index.size());
  metrics.cache_hits.add(queries.size() - miss_index.size());
  return out;
}

BatchQueryResult KnnService::query_batch(std::span<const PointD> queries,
                                         const QueryOptions& options) {
  State& state = ensure_built();
  const std::uint64_t ell = options.ell.value_or(state.config.ell);
  require_positive_ell(ell);
  const KnnAlgo algo = options.algo.value_or(state.config.algo);
  const MetricKind metric = options.metric.value_or(state.config.metric);
  const bool approx =
      options.approx.value_or(effective_policy(state.config) == ScoringPolicy::Approx);
  validate_query_dims(state.dim, queries);
  // The whole batch traces as one unit when forced or sampled (it is one
  // snapshot + one scored run; per-member spans would all be identical).
  auto trace = state.tracer.begin(options.trace);
  obs::TraceSink sink;
  sink.attach(trace.get());
  const auto snap = load_published(state.snapshot_mutex, state.snapshot);
  if (queries.empty()) {
    BatchQueryResult out;
    out.epoch = snap->epoch;
    return out;
  }
  BatchQueryResult out = run_batch_core(state, snap, queries, algo, ell, metric, approx, sink);
  if (trace != nullptr) state.tracer.finish(std::move(trace));
  return out;
}

void KnnService::execute_seat(State& state, std::span<SeatSlot*> batch) {
  // Seat-batch observability: the effective coalesced size, each timed
  // member's queue wait, and (for traced members) the batch-wide stage
  // spans fanned through a TraceSink.
  if (obs::registry().enabled()) {
    service_metrics().coalesce_batch_size.record(batch.size());
    const std::uint64_t start_ns = obs::now_ns();
    for (const SeatSlot* slot : batch) {
      if (slot->enqueue_ns != 0) {
        service_metrics().query_seat_wait.record(start_ns - slot->enqueue_ns);
      }
    }
  }
  obs::TraceSink batch_sink;
  for (SeatSlot* slot : batch) batch_sink.attach(slot->trace);
  if (!batch_sink.empty()) {
    const std::uint64_t now = obs::now_ns();
    for (SeatSlot* slot : batch) {
      if (slot->trace != nullptr && slot->enqueue_ns != 0) {
        slot->trace->add_span("seat_wait", slot->enqueue_ns, now - slot->enqueue_ns,
                              batch.size());
      }
    }
  }

  // One snapshot for the whole seat batch; group batch-mates by effective
  // (algo, ℓ, metric) — per-call overrides may differ across coalesced
  // callers, and each group is one scored batch.
  const auto snap = [&] {
    obs::SinkScope span(batch_sink, "snapshot_acquire");
    return load_published(state.snapshot_mutex, state.snapshot);
  }();
  std::vector<std::size_t> order(batch.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto key_of = [&](std::size_t i) {
    return std::make_tuple(static_cast<int>(batch[i]->algo), batch[i]->ell,
                           static_cast<int>(batch[i]->metric), batch[i]->approx);
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return key_of(a) < key_of(b); });
  std::size_t start = 0;
  while (start < order.size()) {
    std::size_t stop = start + 1;
    while (stop < order.size() && key_of(order[stop]) == key_of(order[start])) ++stop;
    std::vector<PointD> queries;
    queries.reserve(stop - start);
    for (std::size_t i = start; i < stop; ++i) queries.push_back(*batch[order[i]]->query);
    SeatSlot& lead = *batch[order[start]];
    // Stage spans fan to this group's traced members only — batch-mates in
    // other (algo, ℓ, metric) groups ran their stages separately.
    obs::TraceSink group_sink;
    for (std::size_t i = start; i < stop; ++i) group_sink.attach(batch[order[i]]->trace);
    try {
      BatchQueryResult result = run_batch_core(state, snap, queries, lead.algo, lead.ell,
                                               lead.metric, lead.approx, group_sink);
      for (std::size_t i = start; i < stop; ++i) {
        batch[order[i]]->result = std::move(result.per_query[i - start]);
      }
      if (stop - start == 1 && !lead.result.cache_hit) {
        // A lone, uncoalesced query owns its whole run: give it the
        // complete engine report (traffic included).  A coalesced group's
        // whole-batch report belongs to no single caller and is dropped.
        lead.result.report = std::move(result.report);
      }
    } catch (...) {
      // A group that fails (bad_alloc mid-kernel, ...) fails only its own
      // members; other groups still answer.
      for (std::size_t i = start; i < stop; ++i) {
        batch[order[i]]->error = std::current_exception();
      }
    }
    start = stop;
  }
}

QueryResult KnnService::query(const PointD& point, const QueryOptions& options) {
  State& state = ensure_built();
  const std::uint64_t ell = options.ell.value_or(state.config.ell);
  require_positive_ell(ell);
  // Validate before taking a seat: precondition errors stay the caller's
  // own (a throw from inside the scored batch would have to fan out to
  // every batch-mate).
  validate_query_dims(state.dim, std::span<const PointD>(&point, 1));

  SeatSlot slot;
  slot.query = &point;
  slot.algo = options.algo.value_or(state.config.algo);
  slot.ell = ell;
  slot.metric = options.metric.value_or(state.config.metric);
  slot.approx =
      options.approx.value_or(effective_policy(state.config) == ScoringPolicy::Approx);
  // Observability: one branch each when disabled/unsampled.  The trace
  // builder rides the slot so the seat leader can fan batch-stage spans
  // into it; neither changes any answer byte.
  auto trace = state.tracer.begin(options.trace);
  slot.trace = trace.get();
  const bool timed = obs::registry().enabled();
  if (timed || trace != nullptr) slot.enqueue_ns = obs::now_ns();

  std::unique_lock<std::mutex> lock(state.seat_mutex);
  state.seat_queue.push_back(&slot);
  state.seat_cv.notify_all();  // a collecting leader may be waiting for company
  for (;;) {
    if (slot.done) break;
    if (!state.seat_leader_active) break;  // seat is free and our slot is still queued
    state.seat_cv.wait(lock);
  }
  if (!slot.done) {
    // Leader: collect companions up to coalesce_max_batch or the deadline,
    // then score the whole batch outside the lock (the QueryFrontEnd
    // discipline — see serve/front_end.cpp).
    state.seat_leader_active = true;
    if (state.config.coalesce_max_delay.count() > 0) {
      const auto deadline = std::chrono::steady_clock::now() + state.config.coalesce_max_delay;
      while (state.seat_queue.size() < state.config.coalesce_max_batch &&
             state.seat_cv.wait_until(lock, deadline) != std::cv_status::timeout) {
      }
    }
    // Take at most coalesce_max_batch slots: an arrival storm while the
    // seat was occupied can queue more.  The leader's own slot always
    // rides in its batch (it returns after this one execute), joined by
    // the oldest queued companions; the remainder stays queued — one of
    // its owners is elected leader by the post-publish notify_all below.
    state.seat_queue.erase(std::find(state.seat_queue.begin(), state.seat_queue.end(), &slot));
    const std::size_t take =
        std::min(state.seat_queue.size(), state.config.coalesce_max_batch - 1);
    std::vector<SeatSlot*> batch(
        state.seat_queue.begin(),
        state.seat_queue.begin() + static_cast<std::ptrdiff_t>(take));
    state.seat_queue.erase(state.seat_queue.begin(),
                           state.seat_queue.begin() + static_cast<std::ptrdiff_t>(take));
    batch.push_back(&slot);
    lock.unlock();
    execute_seat(state, batch);
    lock.lock();
    // Publish results under the lock (followers read `done` + `result`
    // under it), retire the seat, wake everyone: batch members return,
    // queries that arrived mid-execute elect the next leader.
    for (SeatSlot* member : batch) member->done = true;
    state.seat_leader_active = false;
    state.seat_cv.notify_all();
  }
  lock.unlock();
  if (timed && slot.enqueue_ns != 0) {
    service_metrics().query_latency.record(obs::now_ns() - slot.enqueue_ns);
  }
  if (trace != nullptr) state.tracer.finish(std::move(trace));
  if (slot.error != nullptr) std::rethrow_exception(slot.error);
  return std::move(slot.result);
}

std::vector<ClassifyResult> KnnService::classify_batch(std::span<const PointD> queries,
                                                       VoteRule rule) {
  State& state = ensure_built();
  const auto snap = load_published(state.snapshot_mutex, state.snapshot);
  if (!snap->has_labels) {
    throw ServiceStateError(
        "dknn: KnnService::classify requires labels (KnnServiceBuilder::labels or "
        "insert_labeled)");
  }
  if (queries.empty()) return {};  // consistent with query_batch
  validate_query_dims(state.dim, queries);

  // One snapshot end to end: the winners come out of the snapshotted
  // stores and the labels are the tables published with them, so a
  // concurrent erase can never strand a winner without its label.
  const auto scored = [&] {
    if (state.health != nullptr) {
      // Degraded classify: dead machines' shards drop out of the vote.
      return state.config.live
                 ? score_serve_snapshots_batch_guarded(snap->stores, queries, state.config.ell,
                                                       state.config.metric, *state.health,
                                                       state.scoring)
                       .scored
                 : score_vector_shards_batch_guarded(*snap->indexes, queries, state.config.ell,
                                                     state.config.metric, *state.health,
                                                     state.scoring)
                       .scored;
    }
    return state.config.live
               ? score_serve_snapshots_batch(snap->stores, queries, state.config.ell,
                                             state.config.metric, state.scoring)
               : score_vector_shards_batch(*snap->indexes, queries, state.config.ell,
                                           state.config.metric, state.scoring);
  }();
  auto results = classify_scored_batch(scored, snap->labels, state.config.ell,
                                       state.config.engine, state.config.knn, rule);
  state.queries.fetch_add(queries.size(), std::memory_order_relaxed);
  state.batches.fetch_add(1, std::memory_order_relaxed);
  return results;
}

ClassifyResult KnnService::classify(const PointD& point, VoteRule rule) {
  return std::move(classify_batch(std::span<const PointD>(&point, 1), rule).front());
}

std::vector<RegressResult> KnnService::regress_batch(std::span<const PointD> queries) {
  State& state = ensure_built();
  const auto snap = load_published(state.snapshot_mutex, state.snapshot);
  if (!snap->has_targets) {
    throw ServiceStateError(
        "dknn: KnnService::regress requires targets (KnnServiceBuilder::targets or "
        "insert_target)");
  }
  if (queries.empty()) return {};  // consistent with query_batch
  validate_query_dims(state.dim, queries);

  const auto scored = [&] {
    if (state.health != nullptr) {
      // Degraded regress: dead machines' shards drop out of the mean.
      return state.config.live
                 ? score_serve_snapshots_batch_guarded(snap->stores, queries, state.config.ell,
                                                       state.config.metric, *state.health,
                                                       state.scoring)
                       .scored
                 : score_vector_shards_batch_guarded(*snap->indexes, queries, state.config.ell,
                                                     state.config.metric, *state.health,
                                                     state.scoring)
                       .scored;
    }
    return state.config.live
               ? score_serve_snapshots_batch(snap->stores, queries, state.config.ell,
                                             state.config.metric, state.scoring)
               : score_vector_shards_batch(*snap->indexes, queries, state.config.ell,
                                           state.config.metric, state.scoring);
  }();
  auto results = regress_scored_batch(scored, snap->targets, state.config.ell,
                                      state.config.engine, state.config.knn);
  state.queries.fetch_add(queries.size(), std::memory_order_relaxed);
  state.batches.fetch_add(1, std::memory_order_relaxed);
  return results;
}

RegressResult KnnService::regress(const PointD& point) {
  return std::move(regress_batch(std::span<const PointD>(&point, 1)).front());
}

ServiceStats KnnService::stats() const {
  State& state = ensure_built();
  // Lock-free counters: the query counters are atomics and the cache keeps
  // its own leaf-locked counters.  A quiescent service reconciles exactly
  // (hits + misses == query/query_batch answers at every cache
  // configuration — see the stats convention in result_cache.hpp); a read
  // taken while batches are in flight can lag by the in-flight answers.
  const ResultCacheStats cache = state.cache.stats();
  ServiceStats stats;
  stats.queries = state.queries.load(std::memory_order_relaxed);
  stats.batches = state.batches.load(std::memory_order_relaxed);
  stats.cache_hits = cache.hits;
  stats.cache_misses = cache.misses;
  stats.cache_flushes = cache.flushes;
  // Tree traversal counters are owned by the per-shard KdRangeIndexes /
  // per-segment trees themselves (relaxed atomics), so no service lock is
  // needed to read them either.
  if (state.config.live) {
    for (const auto& store : state.stores) stats.tree += store->tree_stats();
  } else if (state.indexes != nullptr) {
    stats.tree += tree_stats(*state.indexes);
  }
  return stats;
}

// --- observability -----------------------------------------------------------

std::string KnnService::metrics_text() const {
  ensure_built();
  return obs::registry().prometheus_text();
}

std::string KnnService::metrics_json() const {
  ensure_built();
  return obs::registry().json_text();
}

std::vector<obs::QueryTrace> KnnService::recent_traces() const {
  return ensure_built().tracer.recent();
}

void KnnService::set_trace_sampling(std::uint64_t sample_every) {
  ensure_built().tracer.set_sample_every(sample_every);
}

// --- live-serving surface ----------------------------------------------------

std::size_t KnnService::insert_point(State& state, const PointD& point, PointId id) {
  require_query_dim(state.dim, point.dim());
  if (state.mirror != nullptr) {
    // Fault-tolerant routing: the mirror answers membership in O(1) (a
    // dead machine's store cannot be probed), and dead machines are
    // skipped — the next alive machine in round-robin order takes the
    // point.  All machines down = typed failure, not a hang.
    if (state.mirror->contains(id)) {
      throw PreconditionError("dknn: insert: id " + std::to_string(id) + " is already live");
    }
    const std::size_t k = state.stores.size();
    for (std::size_t tries = 0; tries < k; ++tries) {
      const std::size_t machine = state.next_machine++ % k;
      if (!state.health->alive(machine)) continue;
      state.stores[machine]->insert(point, id);
      state.mirror->record(machine, ReplicaRecord{point, id, std::nullopt, std::nullopt});
      return machine;
    }
    throw NoLiveMachinesError("dknn: insert: every machine is dead");
  }
  for (const auto& store : state.stores) {
    if (store->contains(id)) {
      throw PreconditionError("dknn: insert: id " + std::to_string(id) + " is already live");
    }
  }
  const std::size_t machine = state.next_machine++ % state.stores.size();
  state.stores[machine]->insert(point, id);
  return machine;
}

std::uint64_t KnnService::insert(const PointD& point, PointId id) {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  insert_point(state, point, id);
  publish_locked(state);
  return state.epoch();
}

std::uint64_t KnnService::insert_labeled(const PointD& point, PointId id, std::uint32_t label) {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  const std::size_t machine = insert_point(state, point, id);
  // COW: published snapshots share the old table; clone, edit, swap.
  auto next =
      std::make_shared<std::unordered_map<PointId, std::uint32_t>>(*state.labels[machine]);
  (*next)[id] = label;
  state.labels[machine] = std::move(next);
  state.has_labels = true;
  if (state.mirror != nullptr) {
    state.mirror->record(machine, ReplicaRecord{point, id, label, std::nullopt});
  }
  publish_locked(state);
  return state.epoch();
}

std::uint64_t KnnService::insert_target(const PointD& point, PointId id, double target) {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  const std::size_t machine = insert_point(state, point, id);
  auto next = std::make_shared<std::unordered_map<PointId, double>>(*state.targets[machine]);
  (*next)[id] = target;
  state.targets[machine] = std::move(next);
  state.has_targets = true;
  if (state.mirror != nullptr) {
    state.mirror->record(machine, ReplicaRecord{point, id, std::nullopt, target});
  }
  publish_locked(state);
  return state.epoch();
}

std::optional<std::uint64_t> KnnService::erase(PointId id) {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  if (state.mirror != nullptr) {
    const std::optional<std::size_t> owner = state.mirror->machine_of(id);
    if (!owner.has_value()) return std::nullopt;
    const std::size_t m = *owner;
    state.mirror->erase(id);
    erase_payload(state.labels, m, id);
    erase_payload(state.targets, m, id);
    if (state.health->alive(m)) {
      const bool erased = state.stores[m]->erase(id).has_value();
      DKNN_ASSERT(erased, "fault-tolerant erase: mirror and store disagree");
    } else {
      // The owner is down: the membership change takes effect now (the
      // mirror is authoritative), the store applies it on revive; recovery
      // reads the mirror, so either way the delete never resurrects.  The
      // data epoch does not advance — a dead machine's points are already
      // absent from every answer.
      state.pending_erases[m].push_back(id);
    }
    publish_locked(state);
    return state.epoch();
  }
  for (std::size_t m = 0; m < state.stores.size(); ++m) {
    if (state.stores[m]->erase(id).has_value()) {
      erase_payload(state.labels, m, id);
      erase_payload(state.targets, m, id);
      publish_locked(state);
      return state.epoch();
    }
  }
  return std::nullopt;
}

std::uint64_t KnnService::compact_now() {
  State& state = ensure_live();
  // No service mutex while planning or merging: merges read only frozen
  // views, and installs are conditional on victim identity.  A racing
  // erase that tombstones a victim between plan and install aborts the
  // round (deletes always win) and we simply re-plan; the abort cap bounds
  // the pathological case of a saturating erase storm — the leftover debt
  // just waits for the next call.
  for (const auto& store : state.stores) {
    std::size_t consecutive_aborts = 0;
    while (consecutive_aborts < 8) {
      const SegmentStore::CompactionPlan plan = store->plan_compaction(state.config.compaction);
      if (plan.empty()) break;
      auto merged = SegmentStore::merge_segments(plan.victims, state.config.serve);
      if (store->install_compaction(plan, std::move(merged))) {
        consecutive_aborts = 0;
      } else {
        ++consecutive_aborts;
      }
    }
  }
  const std::lock_guard<std::mutex> lock(state.mutex);
  publish_locked(state);
  return state.epoch();
}

std::size_t KnnService::maybe_compact() {
  State& state = ensure_live();
  if (!state.compactors.empty()) {
    std::size_t scheduled = 0;
    for (const auto& compactor : state.compactors) {
      if (compactor->maybe_schedule()) ++scheduled;
    }
    return scheduled;
  }
  // No owned pool (serial scoring config): one inline round per indebted
  // store — the same conditional-install discipline, synchronously.
  std::size_t rounds = 0;
  for (const auto& store : state.stores) {
    const SegmentStore::CompactionPlan plan = store->plan_compaction(state.config.compaction);
    if (plan.empty()) continue;
    auto merged = SegmentStore::merge_segments(plan.victims, state.config.serve);
    store->install_compaction(plan, std::move(merged));
    ++rounds;
  }
  if (rounds > 0) {
    const std::lock_guard<std::mutex> lock(state.mutex);
    publish_locked(state);
  }
  return rounds;
}

std::uint64_t KnnService::snapshot_epoch() const {
  State& state = ensure_built();
  return load_published(state.snapshot_mutex, state.snapshot)->epoch;
}

bool KnnService::contains(PointId id) const {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  if (state.mirror != nullptr) return state.mirror->contains(id);
  for (const auto& store : state.stores) {
    if (store->contains(id)) return true;
  }
  return false;
}

std::vector<PointId> KnnService::live_ids() const {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  if (state.mirror != nullptr) return state.mirror->ids();
  std::vector<PointId> ids;
  for (const auto& store : state.stores) {
    const SnapshotPtr snapshot = store->snapshot();
    for (const SegmentView& segment : snapshot->segments) {
      const std::span<const PointId> rows = segment.data->store().ids();
      for (const auto& [lo, hi] : *segment.live_runs) {
        ids.insert(ids.end(), rows.begin() + lo, rows.begin() + hi);
      }
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t KnnService::segment_count() const {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::size_t count = 0;
  for (const auto& store : state.stores) count += store->segment_count();
  return count;
}

std::uint64_t KnnService::compaction_debt() const {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::uint64_t debt = 0;
  for (const auto& store : state.stores) debt += store->compaction_debt(state.config.compaction);
  return debt;
}

// --- fault tolerance ---------------------------------------------------------

KnnService::State& KnnService::ensure_fault_tolerant() const {
  State& state = ensure_built();
  if (state.health == nullptr) {
    throw ServiceStateError(
        "dknn: fault-tolerance call on a service built without it (build with "
        "KnnServiceBuilder::fault_tolerant)");
  }
  return state;
}

bool KnnService::fault_tolerant() const { return ensure_built().health != nullptr; }

const MachineHealth& KnnService::health() const { return *ensure_fault_tolerant().health; }

void KnnService::kill_machine(std::size_t machine) {
  State& state = ensure_fault_tolerant();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.health->kill(machine);
  publish_locked(state);
}

void KnnService::revive_machine(std::size_t machine) {
  State& state = ensure_fault_tolerant();
  const std::lock_guard<std::mutex> lock(state.mutex);
  // Deletes issued while the machine was down take effect in its store
  // before it rejoins — a revived machine never resurrects an erased point.
  if (state.config.live && machine < state.pending_erases.size()) {
    for (const PointId id : state.pending_erases[machine]) state.stores[machine]->erase(id);
    state.pending_erases[machine].clear();
  }
  state.health->revive(machine);
  publish_locked(state);
}

void KnnService::set_failure_mode(std::size_t machine, FailureMode mode) {
  State& state = ensure_fault_tolerant();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.health->set_failure_mode(machine, mode);
  // No republish: scripting a probe outcome changes no detected state (the
  // generation moves when a scoring step actually detects the failure —
  // readers then bypass the cache and republish opportunistically).
}

RecoveryReport KnnService::recover_locked(State& state, std::size_t machine) {
  if (state.health->state(machine) != MachineState::Dead) {
    throw ServiceStateError("dknn: recover_machine(" + std::to_string(machine) +
                            "): machine is not dead");
  }
  const std::vector<std::uint32_t> alive = state.health->alive_set();
  if (alive.empty()) throw NoLiveMachinesError("dknn: recovery: every machine is dead");

  // Survivors elect the recovery coordinator; the generation salt makes
  // successive recoveries reproducible yet distinct.
  const std::uint64_t seed = state.config.fault.election_seed + state.health->generation();
  ElectionRun election = elect_coordinator(alive, state.config.fault.election, seed);

  // Re-shard the dead machine's mirrored points round-robin over the
  // survivors, starting at the coordinator.  Records arrive ascending by
  // id, so placement is deterministic.  Payload tables are COW (published
  // snapshots keep reading the old ones): clone each touched survivor's
  // table once, batch the edits, swap at the end.
  std::vector<ReplicaRecord> records = state.mirror->recover(machine);
  state.pending_erases[machine].clear();
  std::size_t start = 0;
  for (std::size_t i = 0; i < alive.size(); ++i) {
    if (alive[i] == election.coordinator) start = i;
  }
  std::vector<std::shared_ptr<std::unordered_map<PointId, std::uint32_t>>> fresh_labels(
      state.labels.size());
  std::vector<std::shared_ptr<std::unordered_map<PointId, double>>> fresh_targets(
      state.targets.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    ReplicaRecord& rec = records[i];
    const std::size_t target = alive[(start + i) % alive.size()];
    state.stores[target]->insert(rec.point, rec.id);
    if (rec.label.has_value()) {
      if (fresh_labels[target] == nullptr) {
        fresh_labels[target] = std::make_shared<std::unordered_map<PointId, std::uint32_t>>(
            *state.labels[target]);
      }
      (*fresh_labels[target])[rec.id] = *rec.label;
    }
    if (rec.target.has_value()) {
      if (fresh_targets[target] == nullptr) {
        fresh_targets[target] =
            std::make_shared<std::unordered_map<PointId, double>>(*state.targets[target]);
      }
      (*fresh_targets[target])[rec.id] = *rec.target;
    }
    state.mirror->record(target, std::move(rec));
  }
  for (std::size_t m = 0; m < fresh_labels.size(); ++m) {
    if (fresh_labels[m] != nullptr) state.labels[m] = std::move(fresh_labels[m]);
    if (fresh_targets[m] != nullptr) state.targets[m] = std::move(fresh_targets[m]);
  }
  state.labels[machine] = std::make_shared<std::unordered_map<PointId, std::uint32_t>>();
  state.targets[machine] = std::make_shared<std::unordered_map<PointId, double>>();
  state.health->retire(machine);
  publish_locked(state);

  RecoveryReport report;
  report.machine = machine;
  report.election = election;
  report.points_recovered = records.size();
  return report;
}

RecoveryReport KnnService::recover_machine(std::size_t machine) {
  State& state = ensure_fault_tolerant();
  ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return recover_locked(state, machine);
}

std::vector<RecoveryReport> KnnService::recover_all() {
  State& state = ensure_fault_tolerant();
  ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<RecoveryReport> reports;
  for (const std::size_t machine : state.health->dead_set()) {
    reports.push_back(recover_locked(state, machine));
  }
  return reports;
}

std::vector<PointId> KnnService::live_ids_on(std::size_t machine) const {
  State& state = ensure_fault_tolerant();
  ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return state.mirror->ids_on(machine);
}

// --- builder -----------------------------------------------------------------

KnnServiceBuilder& KnnServiceBuilder::machines(std::uint32_t k) {
  config_.machines = k;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::ell(std::uint64_t ell) {
  config_.ell = ell;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::metric(MetricKind kind) {
  config_.metric = kind;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::algo(KnnAlgo algo) {
  config_.algo = algo;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::policy(ScoringPolicy policy) {
  config_.policy = policy;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::leaf_size(std::size_t leaf_size) {
  config_.leaf_size = leaf_size;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::ann(const ann::AnnConfig& ann) {
  config_.ann = ann;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::partition(PartitionScheme scheme) {
  config_.partition = scheme;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::seed(std::uint64_t seed) {
  config_.seed = seed;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::scoring(const BatchScoringConfig& scoring) {
  config_.scoring = scoring;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::engine(const EngineConfig& engine) {
  config_.engine = engine;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::knn(const KnnConfig& knn) {
  config_.knn = knn;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::live() {
  config_.live = true;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::live(const ServeConfig& serve) {
  config_.live = true;
  config_.serve = serve;
  serve_explicit_ = true;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::compaction(const CompactionConfig& compaction) {
  config_.compaction = compaction;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::cache_capacity(std::size_t entries) {
  config_.cache_capacity = entries;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::coalesce(std::size_t max_batch,
                                               std::chrono::microseconds max_delay) {
  config_.coalesce_max_batch = max_batch;
  config_.coalesce_max_delay = max_delay;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::fault_tolerant() {
  config_.fault_tolerant = true;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::fault_tolerant(const FaultConfig& fault) {
  config_.fault_tolerant = true;
  config_.fault = fault;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::trace(std::uint64_t sample_every, std::size_t capacity) {
  config_.trace_sample_every = sample_every;
  config_.trace_capacity = capacity;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::config(const ServiceConfig& config) {
  config_ = config;
  serve_explicit_ = true;  // a hand-rolled config's serve knobs are verbatim
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::dim(std::size_t dim) {
  dim_ = dim;
  return *this;
}

KnnServiceBuilder& KnnServiceBuilder::dataset(std::vector<PointD> points) {
  have_flat_ = true;
  flat_points_ = std::move(points);
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::dataset_sharded(std::vector<VectorShard> shards) {
  have_sharded_ = true;
  shards_ = std::move(shards);
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::labels(std::vector<std::uint32_t> labels) {
  have_labels_ = true;
  flat_labels_ = std::move(labels);
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::targets(std::vector<double> targets) {
  have_targets_ = true;
  flat_targets_ = std::move(targets);
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::labels_sharded(
    std::vector<std::vector<std::uint32_t>> labels) {
  have_labels_ = true;
  sharded_labels_ = std::move(labels);
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::targets_sharded(std::vector<std::vector<double>> targets) {
  have_targets_ = true;
  sharded_targets_ = std::move(targets);
  return *this;
}

KnnService KnnServiceBuilder::build() {
  require_positive_ell(config_.ell);
  if (config_.coalesce_max_batch == 0) {
    throw ServiceStateError(
        "dknn: coalesce_max_batch must be positive (1 disables coalescing)");
  }
  if (have_flat_ && have_sharded_) {
    throw ServiceStateError("dknn: give the builder dataset() or dataset_sharded(), not both");
  }

  auto state = std::make_unique<KnnService::State>(config_.cache_capacity,
                                                   config_.trace_sample_every,
                                                   config_.trace_capacity);
  state->config = config_;
  // One policy/leaf-size knob drives both modes — sealed segments build
  // the same scoring structures the static ShardIndexes would — unless
  // the caller handed over explicit store knobs (live(ServeConfig) /
  // config()), which win verbatim.
  // Graph geometry always matches the service's canonical metric — a
  // per-call metric override still searches the built graph (recall
  // degrades gracefully on mismatch, see src/ann/README.md).
  state->config.ann.metric = config_.metric;
  if (!serve_explicit_) {
    state->config.serve.policy = config_.policy;
    state->config.serve.leaf_size = config_.leaf_size;
    state->config.serve.ann = state->config.ann;
  }

  // Assemble shards + payload tables.
  std::vector<VectorShard> shards;
  const std::size_t flat_count = flat_points_.size();
  ShardPlacement placement;
  if (have_sharded_) {
    if (!flat_labels_.empty() || !flat_targets_.empty()) {
      throw ServiceStateError(
          "dknn: flat labels()/targets() require a flat dataset(); use labels_sharded()/"
          "targets_sharded() with dataset_sharded()");
    }
    shards = std::move(shards_);
    if (shards.empty()) {
      throw ServiceStateError("dknn: dataset_sharded() needs at least one shard");
    }
    state->config.machines = static_cast<std::uint32_t>(shards.size());
  } else {
    if (!sharded_labels_.empty() || !sharded_targets_.empty()) {
      throw ServiceStateError(
          "dknn: labels_sharded()/targets_sharded() require dataset_sharded()");
    }
    if (config_.machines == 0) {
      throw ServiceStateError("dknn: KnnService needs at least one machine");
    }
    if (have_labels_ && flat_labels_.size() != flat_count) {
      throw ServiceStateError("dknn: labels() must align with dataset()");
    }
    if (have_targets_ && flat_targets_.size() != flat_count) {
      throw ServiceStateError("dknn: targets() must align with dataset()");
    }
    Rng rng(config_.seed);
    shards = make_vector_shards(std::move(flat_points_), config_.machines, config_.partition,
                                rng, placement);
  }

  const std::size_t k = shards.size();
  std::vector<std::unordered_map<PointId, std::uint32_t>> labels(k);
  std::vector<std::unordered_map<PointId, double>> targets(k);
  state->has_labels = have_labels_;
  state->has_targets = have_targets_;
  if (have_labels_ || have_targets_) {
    if (have_sharded_) {
      if (have_labels_ && sharded_labels_.size() != k) {
        throw ServiceStateError("dknn: labels_sharded() must align with dataset_sharded()");
      }
      if (have_targets_ && sharded_targets_.size() != k) {
        throw ServiceStateError("dknn: targets_sharded() must align with dataset_sharded()");
      }
      for (std::size_t m = 0; m < k; ++m) {
        if (have_labels_ && sharded_labels_[m].size() != shards[m].points.size()) {
          throw ServiceStateError("dknn: labels_sharded() must align with dataset_sharded()");
        }
        if (have_targets_ && sharded_targets_[m].size() != shards[m].points.size()) {
          throw ServiceStateError("dknn: targets_sharded() must align with dataset_sharded()");
        }
        for (std::size_t i = 0; i < shards[m].ids.size(); ++i) {
          if (have_labels_) labels[m].emplace(shards[m].ids[i], sharded_labels_[m][i]);
          if (have_targets_) targets[m].emplace(shards[m].ids[i], sharded_targets_[m][i]);
        }
      }
    } else {
      // Flat payloads follow their point through the partition.
      for (std::size_t i = 0; i < flat_count; ++i) {
        const auto [machine, row] = placement[i];
        const PointId id = shards[machine].ids[row];
        if (have_labels_) labels[machine].emplace(id, flat_labels_[i]);
        if (have_targets_) targets[machine].emplace(id, flat_targets_[i]);
      }
    }
  }
  // Seed the COW tables (mutators clone-and-swap from here on).
  state->labels.reserve(k);
  state->targets.reserve(k);
  for (std::size_t m = 0; m < k; ++m) {
    state->labels.push_back(
        std::make_shared<std::unordered_map<PointId, std::uint32_t>>(std::move(labels[m])));
    state->targets.push_back(
        std::make_shared<std::unordered_map<PointId, double>>(std::move(targets[m])));
  }

  // Dimensionality: from the data, else the explicit builder override.
  std::size_t dim = 0;
  for (const VectorShard& shard : shards) {
    if (!shard.points.empty()) {
      dim = shard.points.front().dim();
      break;
    }
  }
  if (dim == 0) dim = dim_;
  state->dim = dim;

  // Per-machine scoring structures.
  if (config_.live) {
    if (dim == 0) {
      throw ServiceStateError(
          "dknn: a live KnnService needs a known dimension (provide points or "
          "KnnServiceBuilder::dim)");
    }
    state->indexes = std::make_shared<const std::vector<ShardIndex>>();
    state->stores.reserve(k);
    for (VectorShard& shard : shards) {
      auto store = std::make_unique<SegmentStore>(dim, state->config.serve);
      if (!shard.points.empty()) {
        store->insert_batch(shard.points, shard.ids);
        store->seal();
      }
      state->stores.push_back(std::move(store));
    }
  } else {
    state->indexes = std::make_shared<const std::vector<ShardIndex>>(
        make_shard_indexes(shards, config_.policy, config_.leaf_size, state->config.ann));
  }

  // Fault tolerance: the health registry gates scoring in both modes; the
  // replica mirror (the recovery source) exists only where mutation does —
  // live mode.  insert_batch copied the shard spans, so reading them here
  // is safe.
  if (state->config.fault_tolerant) {
    state->health = std::make_unique<MachineHealth>(static_cast<std::uint32_t>(k),
                                                    state->config.fault.health);
    if (state->config.live) {
      state->mirror = std::make_unique<ReplicaMirror>(k);
      state->pending_erases.resize(k);
      for (std::size_t m = 0; m < k; ++m) {
        for (std::size_t i = 0; i < shards[m].ids.size(); ++i) {
          const PointId id = shards[m].ids[i];
          ReplicaRecord rec{shards[m].points[i], id, std::nullopt, std::nullopt};
          if (const auto it = state->labels[m]->find(id); it != state->labels[m]->end()) {
            rec.label = it->second;
          }
          if (const auto it = state->targets[m]->find(id); it != state->targets[m]->end()) {
            rec.target = it->second;
          }
          state->mirror->record(m, std::move(rec));
        }
      }
    }
  }

  // Service-owned scoring pool: spawn once, reuse across every batch
  // (BatchScoringConfig{threads} would otherwise respawn per call).
  state->scoring = config_.scoring;
  if (state->scoring.pool == nullptr) {
    const std::size_t threads =
        state->scoring.threads != 0
            ? state->scoring.threads
            : std::max<std::size_t>(1, std::thread::hardware_concurrency());
    if (threads > 1) {
      state->pool = std::make_unique<ThreadPool>(threads, state->scoring.seed);
      state->scoring.pool = state->pool.get();
    }
  }

  // Background compactors: one per store on the owned pool; each installed
  // round republishes the snapshot from the worker so lock-free readers
  // see the compacted segments without waiting for the next mutation.
  if (state->config.live && state->pool != nullptr) {
    KnnService::State* raw = state.get();
    state->compactors.reserve(state->stores.size());
    for (const auto& store : state->stores) {
      auto compactor =
          std::make_unique<Compactor>(*store, *state->pool, state->config.compaction);
      compactor->set_on_complete([raw](bool installed) {
        if (!installed) return;
        // Safe against the mutation mutex: no code path waits on the pool
        // while holding it, so this lock always clears.
        const std::lock_guard<std::mutex> lock(raw->mutex);
        KnnService::publish_locked(*raw);
      });
      state->compactors.push_back(std::move(compactor));
    }
  }

  // The initial publish — queries are lock-free from the first call.
  KnnService::publish_locked(*state);

  return KnnService(std::move(state));
}

}  // namespace dknn

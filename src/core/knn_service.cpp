#include "core/knn_service.hpp"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "support/panic.hpp"

namespace dknn {

// --- State -------------------------------------------------------------------

struct KnnService::State {
  ServiceConfig config;
  std::size_t dim = 0;  ///< 0 = unknown (empty static dataset)

  // Static mode: each machine's frozen scoring structures.
  std::vector<ShardIndex> indexes;
  // Live mode: each machine's mutable store.
  std::vector<std::unique_ptr<SegmentStore>> stores;
  std::uint64_t next_machine = 0;  ///< round-robin insert routing

  // id → payload per machine, shared by both modes (a live store's
  // membership churns, so positional arrays cannot label it).
  bool has_labels = false;
  bool has_targets = false;
  std::vector<std::unordered_map<PointId, std::uint32_t>> labels;
  std::vector<std::unordered_map<PointId, double>> targets;

  // Fault-tolerant mode only: the liveness registry gating every scoring
  // step, the recovery mirror (live mode — what re-shards a dead machine's
  // points; doubles point memory, the price of single-copy ownership in
  // the k-machine model), and erases issued while their owner was dead
  // (applied if the machine revives; recovery consults the mirror, which
  // already excludes them — deletes never resurrect either way).
  std::unique_ptr<MachineHealth> health;
  std::unique_ptr<ReplicaMirror> mirror;
  std::vector<std::vector<PointId>> pending_erases;

  // Service-owned scoring pool (null when scoring is serial or the caller
  // supplied an external pool); `scoring` is config.scoring with the pool
  // wired in.
  std::unique_ptr<ThreadPool> pool;
  BatchScoringConfig scoring;

  EpochResultCache cache;
  std::uint64_t queries = 0;
  std::uint64_t batches = 0;

  // One coarse service mutex: every public call serializes on it, which
  // makes any cross-thread interleaving safe (the scoring *inside* a call
  // still fans out over the pool).
  std::mutex mutex;

  explicit State(std::size_t cache_capacity) : cache(cache_capacity) {}

  [[nodiscard]] std::size_t machine_count() const {
    return config.live ? stores.size() : indexes.size();
  }

  /// The strictly monotone service epoch (sum of per-store epochs; each
  /// store's epoch never decreases and every mutation bumps one).
  [[nodiscard]] std::uint64_t epoch() const {
    std::uint64_t sum = 0;
    for (const auto& store : stores) sum += store->epoch();
    return sum;
  }

  /// Cache key epoch: the data epoch plus (fault-tolerant mode) the health
  /// generation.  Both terms are monotone over the service's timeline, so
  /// two distinct (data, liveness) states can never share a sum — equal
  /// keys imply nothing changed in between, which is exactly what makes a
  /// hit sound.  This is how a degraded answer is never served after
  /// recovery (and vice versa): any liveness flip bumps the generation and
  /// re-tags the cache.
  [[nodiscard]] std::uint64_t effective_epoch() const {
    return epoch() + (health ? health->generation() : 0);
  }

  /// Coverage all answers carry outside fault-tolerant mode (and cache
  /// hits inside it — the generation key guarantees the detected state
  /// matches the entry's compute-time state).
  [[nodiscard]] Coverage coverage_now() const {
    if (health) return health->coverage_now();
    Coverage coverage;
    coverage.total = static_cast<std::uint32_t>(machine_count());
    return coverage;
  }
};

// --- lifecycle ---------------------------------------------------------------

KnnService::KnnService() = default;
KnnService::KnnService(std::unique_ptr<State> state) : state_(std::move(state)) {}
KnnService::KnnService(KnnService&&) noexcept = default;
KnnService& KnnService::operator=(KnnService&&) noexcept = default;
KnnService::~KnnService() = default;

KnnService::State& KnnService::ensure_built() const {
  if (state_ == nullptr) throw ServiceStateError("dknn: KnnService used before build()");
  return *state_;
}

KnnService::State& KnnService::ensure_live() const {
  State& state = ensure_built();
  if (!state.config.live) {
    throw ServiceStateError(
        "dknn: live-serving call on a static-mode KnnService (build with "
        "KnnServiceBuilder::live)");
  }
  return state;
}

bool KnnService::live() const { return ensure_built().config.live; }
const ServiceConfig& KnnService::config() const { return ensure_built().config; }
std::size_t KnnService::dim() const { return ensure_built().dim; }
std::size_t KnnService::machines() const { return ensure_built().machine_count(); }

std::size_t KnnService::total_points() const {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::size_t total = 0;
  if (state.config.live) {
    // The mirror is authoritative in fault-tolerant mode: a dead machine's
    // store still holds its points (and pending erases), so summing stores
    // would double-count after recovery re-homes them.
    if (state.mirror != nullptr) return state.mirror->total_points();
    for (const auto& store : state.stores) total += store->live_points();
  } else {
    for (const auto& index : state.indexes) total += index.store().size();
  }
  return total;
}

// --- queries -----------------------------------------------------------------

namespace {

void validate_query_dims(std::size_t dim, std::span<const PointD> queries) {
  // dim == 0 means the dataset is empty and dimension-free; every scoring
  // path then returns empty keys for any query (mirrors the kernels).
  if (dim == 0) return;
  for (const PointD& query : queries) require_query_dim(dim, query.dim());
}

}  // namespace

namespace {

/// One coherent snapshot set for a whole batch (live mode).  In
/// fault-tolerant mode a non-Alive machine's slot stays null — its store
/// is unreachable; the guarded scoring step skips it (and would reject a
/// null snapshot for any machine the health gate lets through).
std::vector<SnapshotPtr> snapshot_stores(const std::vector<std::unique_ptr<SegmentStore>>& stores,
                                         const MachineHealth* health) {
  std::vector<SnapshotPtr> snapshots;
  snapshots.reserve(stores.size());
  for (std::size_t m = 0; m < stores.size(); ++m) {
    const bool reachable = health == nullptr || health->state(m) == MachineState::Alive;
    snapshots.push_back(reachable ? stores[m]->snapshot() : nullptr);
  }
  return snapshots;
}

}  // namespace

BatchQueryResult KnnService::query_batch(std::span<const PointD> queries,
                                         std::optional<KnnAlgo> algo) {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  BatchQueryResult out;
  out.epoch = state.epoch();
  if (queries.empty()) return out;
  validate_query_dims(state.dim, queries);

  const bool fault_tolerant = state.health != nullptr;
  std::vector<SnapshotPtr> snapshots;
  if (state.config.live) snapshots = snapshot_stores(state.stores, state.health.get());

  out.per_query.resize(queries.size());
  const auto batch_size = static_cast<std::uint32_t>(queries.size());

  // Cache pass: fill hits, collect misses.  Sound because every answer is
  // a deterministic function of (effective epoch, query); see the header.
  // A disabled cache (the default) skips the coord-bits materialization
  // and cache locking entirely.  Hits carry the currently *detected*
  // coverage — the generation component of the key guarantees it equals
  // the coverage the entry was computed under.
  const Coverage hit_coverage = state.coverage_now();
  std::vector<std::size_t> miss_index;
  std::vector<PointD> miss_queries;
  std::vector<std::vector<std::uint64_t>> miss_bits;
  const bool caching = state.cache.capacity() > 0;
  if (!caching) {
    miss_index.reserve(queries.size());
    miss_queries.reserve(queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      miss_index.push_back(q);
      miss_queries.push_back(queries[q]);
    }
  } else {
    const std::uint64_t lookup_epoch = state.effective_epoch();
    for (std::size_t q = 0; q < queries.size(); ++q) {
      auto bits = query_coord_bits(queries[q]);
      if (auto cached = state.cache.lookup(bits, lookup_epoch); cached.has_value()) {
        out.per_query[q].keys = std::move(*cached);
        out.per_query[q].epoch = out.epoch;
        out.per_query[q].cache_hit = true;
        out.per_query[q].coverage = hit_coverage;
      } else {
        miss_index.push_back(q);
        miss_queries.push_back(queries[q]);
        miss_bits.push_back(std::move(bits));
      }
    }
  }

  if (!miss_queries.empty()) {
    // Local computation: the fused batch kernels over every machine's
    // resident structures — exactly the free-function paths.  Fault-
    // tolerant mode routes through the deadline-guarded variants: dead /
    // unresponsive machines are skipped (their slots stay empty, a legal
    // empty shard for every protocol) and reported in the coverage.
    std::vector<std::vector<std::vector<Key>>> scored;
    Coverage miss_coverage = hit_coverage;
    if (fault_tolerant) {
      GuardedScoreBatch guarded =
          state.config.live
              ? score_serve_snapshots_batch_guarded(snapshots, miss_queries, state.config.ell,
                                                    state.config.metric, *state.health,
                                                    state.scoring)
              : score_vector_shards_batch_guarded(state.indexes, miss_queries,
                                                  state.config.ell, state.config.metric,
                                                  *state.health, state.scoring);
      scored = std::move(guarded.scored);
      miss_coverage = std::move(guarded.coverage);
    } else {
      scored = state.config.live
                   ? score_serve_snapshots_batch(snapshots, miss_queries, state.config.ell,
                                                 state.config.metric, state.scoring)
                   : score_vector_shards_batch(state.indexes, miss_queries, state.config.ell,
                                               state.config.metric, state.scoring);
    }
    // Global selection: every miss through one engine run.
    BatchRunResult batch = run_knn_batch(scored, state.config.ell,
                                         algo.value_or(state.config.algo),
                                         state.config.engine, state.config.knn);
    // Publish under the *post-scoring* effective epoch: if the guarded
    // pass just detected a death, the generation moved and these answers
    // belong to the new liveness state.  (The cache tag then lags one
    // batch; the next lookup re-tags it — entries never cross states.)
    const std::uint64_t publish_epoch = state.effective_epoch();
    if (caching) state.cache.make_room(miss_index.size(), publish_epoch);
    for (std::size_t i = 0; i < miss_index.size(); ++i) {
      QueryResult& dst = out.per_query[miss_index[i]];
      GlobalRunResult& src = batch.per_query[i];
      dst.keys = std::move(src.keys);
      dst.report = std::move(src.report);
      dst.iterations = src.iterations;
      dst.attempts = src.attempts;
      dst.candidates = src.candidates;
      dst.prune_ok = src.prune_ok;
      dst.epoch = out.epoch;
      dst.cache_hit = false;
      dst.coverage = miss_coverage;
      if (caching) state.cache.insert(std::move(miss_bits[i]), publish_epoch, dst.keys);
    }
    out.report = std::move(batch.report);
    ++state.batches;
  }

  for (QueryResult& result : out.per_query) result.batch_size = batch_size;
  state.queries += queries.size();
  return out;
}

QueryResult KnnService::query(const PointD& point, std::optional<KnnAlgo> algo) {
  BatchQueryResult batch = query_batch(std::span<const PointD>(&point, 1), algo);
  QueryResult result = std::move(batch.per_query.front());
  // A lone query owns its whole run: give it the complete engine report
  // (traffic included), not just the per-query round count.
  if (!result.cache_hit) result.report = std::move(batch.report);
  return result;
}

std::vector<ClassifyResult> KnnService::classify_batch(std::span<const PointD> queries,
                                                       VoteRule rule) {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.has_labels) {
    throw ServiceStateError(
        "dknn: KnnService::classify requires labels (KnnServiceBuilder::labels or "
        "insert_labeled)");
  }
  if (queries.empty()) return {};  // consistent with query_batch
  validate_query_dims(state.dim, queries);

  std::vector<SnapshotPtr> snapshots;
  if (state.config.live) snapshots = snapshot_stores(state.stores, state.health.get());
  const auto scored = [&] {
    if (state.health != nullptr) {
      // Degraded classify: dead machines' shards drop out of the vote.
      return state.config.live
                 ? score_serve_snapshots_batch_guarded(snapshots, queries, state.config.ell,
                                                       state.config.metric, *state.health,
                                                       state.scoring)
                       .scored
                 : score_vector_shards_batch_guarded(state.indexes, queries, state.config.ell,
                                                     state.config.metric, *state.health,
                                                     state.scoring)
                       .scored;
    }
    return state.config.live
               ? score_serve_snapshots_batch(snapshots, queries, state.config.ell,
                                             state.config.metric, state.scoring)
               : score_vector_shards_batch(state.indexes, queries, state.config.ell,
                                           state.config.metric, state.scoring);
  }();
  auto results = classify_scored_batch(scored, state.labels, state.config.ell,
                                       state.config.engine, state.config.knn, rule);
  state.queries += queries.size();
  ++state.batches;
  return results;
}

ClassifyResult KnnService::classify(const PointD& point, VoteRule rule) {
  return std::move(classify_batch(std::span<const PointD>(&point, 1), rule).front());
}

std::vector<RegressResult> KnnService::regress_batch(std::span<const PointD> queries) {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.has_targets) {
    throw ServiceStateError(
        "dknn: KnnService::regress requires targets (KnnServiceBuilder::targets or "
        "insert_target)");
  }
  if (queries.empty()) return {};  // consistent with query_batch
  validate_query_dims(state.dim, queries);

  std::vector<SnapshotPtr> snapshots;
  if (state.config.live) snapshots = snapshot_stores(state.stores, state.health.get());
  const auto scored = [&] {
    if (state.health != nullptr) {
      // Degraded regress: dead machines' shards drop out of the mean.
      return state.config.live
                 ? score_serve_snapshots_batch_guarded(snapshots, queries, state.config.ell,
                                                       state.config.metric, *state.health,
                                                       state.scoring)
                       .scored
                 : score_vector_shards_batch_guarded(state.indexes, queries, state.config.ell,
                                                     state.config.metric, *state.health,
                                                     state.scoring)
                       .scored;
    }
    return state.config.live
               ? score_serve_snapshots_batch(snapshots, queries, state.config.ell,
                                             state.config.metric, state.scoring)
               : score_vector_shards_batch(state.indexes, queries, state.config.ell,
                                           state.config.metric, state.scoring);
  }();
  auto results = regress_scored_batch(scored, state.targets, state.config.ell,
                                      state.config.engine, state.config.knn);
  state.queries += queries.size();
  ++state.batches;
  return results;
}

RegressResult KnnService::regress(const PointD& point) {
  return std::move(regress_batch(std::span<const PointD>(&point, 1)).front());
}

ServiceStats KnnService::stats() const {
  State& state = ensure_built();
  // Cache counters are read under the service mutex: every facade cache
  // mutation happens inside it, so the snapshot is exact (hits + misses
  // always reconcile with the query count).
  const std::lock_guard<std::mutex> lock(state.mutex);
  const ResultCacheStats cache = state.cache.stats();
  ServiceStats stats;
  stats.queries = state.queries;
  stats.batches = state.batches;
  stats.cache_hits = cache.hits;
  stats.cache_misses = cache.misses;
  stats.cache_flushes = cache.flushes;
  return stats;
}

// --- live-serving surface ----------------------------------------------------

std::size_t KnnService::insert_point(State& state, const PointD& point, PointId id) {
  require_query_dim(state.dim, point.dim());
  if (state.mirror != nullptr) {
    // Fault-tolerant routing: the mirror answers membership in O(1) (a
    // dead machine's store cannot be probed), and dead machines are
    // skipped — the next alive machine in round-robin order takes the
    // point.  All machines down = typed failure, not a hang.
    if (state.mirror->contains(id)) {
      throw PreconditionError("dknn: insert: id " + std::to_string(id) + " is already live");
    }
    const std::size_t k = state.stores.size();
    for (std::size_t tries = 0; tries < k; ++tries) {
      const std::size_t machine = state.next_machine++ % k;
      if (!state.health->alive(machine)) continue;
      state.stores[machine]->insert(point, id);
      state.mirror->record(machine, ReplicaRecord{point, id, std::nullopt, std::nullopt});
      return machine;
    }
    throw NoLiveMachinesError("dknn: insert: every machine is dead");
  }
  for (const auto& store : state.stores) {
    if (store->contains(id)) {
      throw PreconditionError("dknn: insert: id " + std::to_string(id) + " is already live");
    }
  }
  const std::size_t machine = state.next_machine++ % state.stores.size();
  state.stores[machine]->insert(point, id);
  return machine;
}

std::uint64_t KnnService::insert(const PointD& point, PointId id) {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  insert_point(state, point, id);
  return state.epoch();
}

std::uint64_t KnnService::insert_labeled(const PointD& point, PointId id, std::uint32_t label) {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  const std::size_t machine = insert_point(state, point, id);
  state.labels[machine][id] = label;
  state.has_labels = true;
  if (state.mirror != nullptr) {
    state.mirror->record(machine, ReplicaRecord{point, id, label, std::nullopt});
  }
  return state.epoch();
}

std::uint64_t KnnService::insert_target(const PointD& point, PointId id, double target) {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  const std::size_t machine = insert_point(state, point, id);
  state.targets[machine][id] = target;
  state.has_targets = true;
  if (state.mirror != nullptr) {
    state.mirror->record(machine, ReplicaRecord{point, id, std::nullopt, target});
  }
  return state.epoch();
}

std::optional<std::uint64_t> KnnService::erase(PointId id) {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  if (state.mirror != nullptr) {
    const std::optional<std::size_t> owner = state.mirror->machine_of(id);
    if (!owner.has_value()) return std::nullopt;
    const std::size_t m = *owner;
    state.mirror->erase(id);
    state.labels[m].erase(id);
    state.targets[m].erase(id);
    if (state.health->alive(m)) {
      const bool erased = state.stores[m]->erase(id).has_value();
      DKNN_ASSERT(erased, "fault-tolerant erase: mirror and store disagree");
    } else {
      // The owner is down: the membership change takes effect now (the
      // mirror is authoritative), the store applies it on revive; recovery
      // reads the mirror, so either way the delete never resurrects.  The
      // data epoch does not advance — a dead machine's points are already
      // absent from every answer.
      state.pending_erases[m].push_back(id);
    }
    return state.epoch();
  }
  for (std::size_t m = 0; m < state.stores.size(); ++m) {
    if (state.stores[m]->erase(id).has_value()) {
      state.labels[m].erase(id);
      state.targets[m].erase(id);
      return state.epoch();
    }
  }
  return std::nullopt;
}

std::uint64_t KnnService::compact_now() {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  for (const auto& store : state.stores) {
    // plan → build → install, synchronously, until this store is clean.
    // Each install strictly shrinks the backlog, so this terminates; under
    // the service mutex no victim can change, so installs cannot abort
    // (the break is a safety net, not a path).
    for (;;) {
      const SegmentStore::CompactionPlan plan =
          store->plan_compaction(state.config.compaction);
      if (plan.empty()) break;
      auto merged = SegmentStore::merge_segments(plan.victims, state.config.serve);
      if (!store->install_compaction(plan, std::move(merged))) break;
    }
  }
  return state.epoch();
}

std::uint64_t KnnService::snapshot_epoch() const {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return state.epoch();
}

bool KnnService::contains(PointId id) const {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  if (state.mirror != nullptr) return state.mirror->contains(id);
  for (const auto& store : state.stores) {
    if (store->contains(id)) return true;
  }
  return false;
}

std::vector<PointId> KnnService::live_ids() const {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  if (state.mirror != nullptr) return state.mirror->ids();
  std::vector<PointId> ids;
  for (const auto& store : state.stores) {
    const SnapshotPtr snapshot = store->snapshot();
    for (const SegmentView& segment : snapshot->segments) {
      const std::span<const PointId> rows = segment.data->store().ids();
      for (const auto& [lo, hi] : *segment.live_runs) {
        ids.insert(ids.end(), rows.begin() + lo, rows.begin() + hi);
      }
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t KnnService::segment_count() const {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::size_t count = 0;
  for (const auto& store : state.stores) count += store->segment_count();
  return count;
}

std::uint64_t KnnService::compaction_debt() const {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::uint64_t debt = 0;
  for (const auto& store : state.stores) debt += store->compaction_debt(state.config.compaction);
  return debt;
}

// --- fault tolerance ---------------------------------------------------------

KnnService::State& KnnService::ensure_fault_tolerant() const {
  State& state = ensure_built();
  if (state.health == nullptr) {
    throw ServiceStateError(
        "dknn: fault-tolerance call on a service built without it (build with "
        "KnnServiceBuilder::fault_tolerant)");
  }
  return state;
}

bool KnnService::fault_tolerant() const { return ensure_built().health != nullptr; }

const MachineHealth& KnnService::health() const { return *ensure_fault_tolerant().health; }

void KnnService::kill_machine(std::size_t machine) {
  State& state = ensure_fault_tolerant();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.health->kill(machine);
}

void KnnService::revive_machine(std::size_t machine) {
  State& state = ensure_fault_tolerant();
  const std::lock_guard<std::mutex> lock(state.mutex);
  // Deletes issued while the machine was down take effect in its store
  // before it rejoins — a revived machine never resurrects an erased point.
  if (state.config.live && machine < state.pending_erases.size()) {
    for (const PointId id : state.pending_erases[machine]) state.stores[machine]->erase(id);
    state.pending_erases[machine].clear();
  }
  state.health->revive(machine);
}

void KnnService::set_failure_mode(std::size_t machine, FailureMode mode) {
  State& state = ensure_fault_tolerant();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.health->set_failure_mode(machine, mode);
}

RecoveryReport KnnService::recover_locked(State& state, std::size_t machine) {
  if (state.health->state(machine) != MachineState::Dead) {
    throw ServiceStateError("dknn: recover_machine(" + std::to_string(machine) +
                            "): machine is not dead");
  }
  const std::vector<std::uint32_t> alive = state.health->alive_set();
  if (alive.empty()) throw NoLiveMachinesError("dknn: recovery: every machine is dead");

  // Survivors elect the recovery coordinator; the generation salt makes
  // successive recoveries reproducible yet distinct.
  const std::uint64_t seed = state.config.fault.election_seed + state.health->generation();
  ElectionRun election = elect_coordinator(alive, state.config.fault.election, seed);

  // Re-shard the dead machine's mirrored points round-robin over the
  // survivors, starting at the coordinator.  Records arrive ascending by
  // id, so placement is deterministic.
  std::vector<ReplicaRecord> records = state.mirror->recover(machine);
  state.pending_erases[machine].clear();
  std::size_t start = 0;
  for (std::size_t i = 0; i < alive.size(); ++i) {
    if (alive[i] == election.coordinator) start = i;
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    ReplicaRecord& rec = records[i];
    const std::size_t target = alive[(start + i) % alive.size()];
    state.stores[target]->insert(rec.point, rec.id);
    if (rec.label.has_value()) state.labels[target][rec.id] = *rec.label;
    if (rec.target.has_value()) state.targets[target][rec.id] = *rec.target;
    state.mirror->record(target, std::move(rec));
  }
  state.labels[machine].clear();
  state.targets[machine].clear();
  state.health->retire(machine);

  RecoveryReport report;
  report.machine = machine;
  report.election = election;
  report.points_recovered = records.size();
  return report;
}

RecoveryReport KnnService::recover_machine(std::size_t machine) {
  State& state = ensure_fault_tolerant();
  ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return recover_locked(state, machine);
}

std::vector<RecoveryReport> KnnService::recover_all() {
  State& state = ensure_fault_tolerant();
  ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<RecoveryReport> reports;
  for (const std::size_t machine : state.health->dead_set()) {
    reports.push_back(recover_locked(state, machine));
  }
  return reports;
}

std::vector<PointId> KnnService::live_ids_on(std::size_t machine) const {
  State& state = ensure_fault_tolerant();
  ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return state.mirror->ids_on(machine);
}

// --- builder -----------------------------------------------------------------

KnnServiceBuilder& KnnServiceBuilder::machines(std::uint32_t k) {
  config_.machines = k;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::ell(std::uint64_t ell) {
  config_.ell = ell;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::metric(MetricKind kind) {
  config_.metric = kind;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::algo(KnnAlgo algo) {
  config_.algo = algo;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::policy(ScoringPolicy policy) {
  config_.policy = policy;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::leaf_size(std::size_t leaf_size) {
  config_.leaf_size = leaf_size;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::partition(PartitionScheme scheme) {
  config_.partition = scheme;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::seed(std::uint64_t seed) {
  config_.seed = seed;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::scoring(const BatchScoringConfig& scoring) {
  config_.scoring = scoring;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::engine(const EngineConfig& engine) {
  config_.engine = engine;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::knn(const KnnConfig& knn) {
  config_.knn = knn;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::live() {
  config_.live = true;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::live(const ServeConfig& serve) {
  config_.live = true;
  config_.serve = serve;
  serve_explicit_ = true;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::compaction(const CompactionConfig& compaction) {
  config_.compaction = compaction;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::cache_capacity(std::size_t entries) {
  config_.cache_capacity = entries;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::fault_tolerant() {
  config_.fault_tolerant = true;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::fault_tolerant(const FaultConfig& fault) {
  config_.fault_tolerant = true;
  config_.fault = fault;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::config(const ServiceConfig& config) {
  config_ = config;
  serve_explicit_ = true;  // a hand-rolled config's serve knobs are verbatim
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::dim(std::size_t dim) {
  dim_ = dim;
  return *this;
}

KnnServiceBuilder& KnnServiceBuilder::dataset(std::vector<PointD> points) {
  have_flat_ = true;
  flat_points_ = std::move(points);
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::dataset_sharded(std::vector<VectorShard> shards) {
  have_sharded_ = true;
  shards_ = std::move(shards);
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::labels(std::vector<std::uint32_t> labels) {
  have_labels_ = true;
  flat_labels_ = std::move(labels);
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::targets(std::vector<double> targets) {
  have_targets_ = true;
  flat_targets_ = std::move(targets);
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::labels_sharded(
    std::vector<std::vector<std::uint32_t>> labels) {
  have_labels_ = true;
  sharded_labels_ = std::move(labels);
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::targets_sharded(std::vector<std::vector<double>> targets) {
  have_targets_ = true;
  sharded_targets_ = std::move(targets);
  return *this;
}

KnnService KnnServiceBuilder::build() {
  require_positive_ell(config_.ell);
  if (have_flat_ && have_sharded_) {
    throw ServiceStateError("dknn: give the builder dataset() or dataset_sharded(), not both");
  }

  auto state = std::make_unique<KnnService::State>(config_.cache_capacity);
  state->config = config_;
  // One policy/leaf-size knob drives both modes — sealed segments build
  // the same scoring structures the static ShardIndexes would — unless
  // the caller handed over explicit store knobs (live(ServeConfig) /
  // config()), which win verbatim.
  if (!serve_explicit_) {
    state->config.serve.policy = config_.policy;
    state->config.serve.leaf_size = config_.leaf_size;
  }

  // Assemble shards + payload tables.
  std::vector<VectorShard> shards;
  const std::size_t flat_count = flat_points_.size();
  ShardPlacement placement;
  if (have_sharded_) {
    if (!flat_labels_.empty() || !flat_targets_.empty()) {
      throw ServiceStateError(
          "dknn: flat labels()/targets() require a flat dataset(); use labels_sharded()/"
          "targets_sharded() with dataset_sharded()");
    }
    shards = std::move(shards_);
    if (shards.empty()) {
      throw ServiceStateError("dknn: dataset_sharded() needs at least one shard");
    }
    state->config.machines = static_cast<std::uint32_t>(shards.size());
  } else {
    if (!sharded_labels_.empty() || !sharded_targets_.empty()) {
      throw ServiceStateError(
          "dknn: labels_sharded()/targets_sharded() require dataset_sharded()");
    }
    if (config_.machines == 0) {
      throw ServiceStateError("dknn: KnnService needs at least one machine");
    }
    if (have_labels_ && flat_labels_.size() != flat_count) {
      throw ServiceStateError("dknn: labels() must align with dataset()");
    }
    if (have_targets_ && flat_targets_.size() != flat_count) {
      throw ServiceStateError("dknn: targets() must align with dataset()");
    }
    Rng rng(config_.seed);
    shards = make_vector_shards(std::move(flat_points_), config_.machines, config_.partition,
                                rng, placement);
  }

  const std::size_t k = shards.size();
  state->labels.resize(k);
  state->targets.resize(k);
  state->has_labels = have_labels_;
  state->has_targets = have_targets_;
  if (have_labels_ || have_targets_) {
    if (have_sharded_) {
      if (have_labels_ && sharded_labels_.size() != k) {
        throw ServiceStateError("dknn: labels_sharded() must align with dataset_sharded()");
      }
      if (have_targets_ && sharded_targets_.size() != k) {
        throw ServiceStateError("dknn: targets_sharded() must align with dataset_sharded()");
      }
      for (std::size_t m = 0; m < k; ++m) {
        if (have_labels_ && sharded_labels_[m].size() != shards[m].points.size()) {
          throw ServiceStateError("dknn: labels_sharded() must align with dataset_sharded()");
        }
        if (have_targets_ && sharded_targets_[m].size() != shards[m].points.size()) {
          throw ServiceStateError("dknn: targets_sharded() must align with dataset_sharded()");
        }
        for (std::size_t i = 0; i < shards[m].ids.size(); ++i) {
          if (have_labels_) state->labels[m].emplace(shards[m].ids[i], sharded_labels_[m][i]);
          if (have_targets_) state->targets[m].emplace(shards[m].ids[i], sharded_targets_[m][i]);
        }
      }
    } else {
      // Flat payloads follow their point through the partition.
      for (std::size_t i = 0; i < flat_count; ++i) {
        const auto [machine, row] = placement[i];
        const PointId id = shards[machine].ids[row];
        if (have_labels_) state->labels[machine].emplace(id, flat_labels_[i]);
        if (have_targets_) state->targets[machine].emplace(id, flat_targets_[i]);
      }
    }
  }

  // Dimensionality: from the data, else the explicit builder override.
  std::size_t dim = 0;
  for (const VectorShard& shard : shards) {
    if (!shard.points.empty()) {
      dim = shard.points.front().dim();
      break;
    }
  }
  if (dim == 0) dim = dim_;
  state->dim = dim;

  // Per-machine scoring structures.
  if (config_.live) {
    if (dim == 0) {
      throw ServiceStateError(
          "dknn: a live KnnService needs a known dimension (provide points or "
          "KnnServiceBuilder::dim)");
    }
    state->stores.reserve(k);
    for (VectorShard& shard : shards) {
      auto store = std::make_unique<SegmentStore>(dim, state->config.serve);
      if (!shard.points.empty()) {
        store->insert_batch(shard.points, shard.ids);
        store->seal();
      }
      state->stores.push_back(std::move(store));
    }
  } else {
    state->indexes = make_shard_indexes(shards, config_.policy, config_.leaf_size);
  }

  // Fault tolerance: the health registry gates scoring in both modes; the
  // replica mirror (the recovery source) exists only where mutation does —
  // live mode.  insert_batch copied the shard spans, so reading them here
  // is safe.
  if (state->config.fault_tolerant) {
    state->health = std::make_unique<MachineHealth>(static_cast<std::uint32_t>(k),
                                                    state->config.fault.health);
    if (state->config.live) {
      state->mirror = std::make_unique<ReplicaMirror>(k);
      state->pending_erases.resize(k);
      for (std::size_t m = 0; m < k; ++m) {
        for (std::size_t i = 0; i < shards[m].ids.size(); ++i) {
          const PointId id = shards[m].ids[i];
          ReplicaRecord rec{shards[m].points[i], id, std::nullopt, std::nullopt};
          if (const auto it = state->labels[m].find(id); it != state->labels[m].end()) {
            rec.label = it->second;
          }
          if (const auto it = state->targets[m].find(id); it != state->targets[m].end()) {
            rec.target = it->second;
          }
          state->mirror->record(m, std::move(rec));
        }
      }
    }
  }

  // Service-owned scoring pool: spawn once, reuse across every batch
  // (BatchScoringConfig{threads} would otherwise respawn per call).
  state->scoring = config_.scoring;
  if (state->scoring.pool == nullptr) {
    const std::size_t threads =
        state->scoring.threads != 0
            ? state->scoring.threads
            : std::max<std::size_t>(1, std::thread::hardware_concurrency());
    if (threads > 1) {
      state->pool = std::make_unique<ThreadPool>(threads, state->scoring.seed);
      state->scoring.pool = state->pool.get();
    }
  }

  return KnnService(std::move(state));
}

}  // namespace dknn

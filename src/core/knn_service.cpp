#include "core/knn_service.hpp"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "support/panic.hpp"

namespace dknn {

// --- State -------------------------------------------------------------------

struct KnnService::State {
  ServiceConfig config;
  std::size_t dim = 0;  ///< 0 = unknown (empty static dataset)

  // Static mode: each machine's frozen scoring structures.
  std::vector<ShardIndex> indexes;
  // Live mode: each machine's mutable store.
  std::vector<std::unique_ptr<SegmentStore>> stores;
  std::uint64_t next_machine = 0;  ///< round-robin insert routing

  // id → payload per machine, shared by both modes (a live store's
  // membership churns, so positional arrays cannot label it).
  bool has_labels = false;
  bool has_targets = false;
  std::vector<std::unordered_map<PointId, std::uint32_t>> labels;
  std::vector<std::unordered_map<PointId, double>> targets;

  // Service-owned scoring pool (null when scoring is serial or the caller
  // supplied an external pool); `scoring` is config.scoring with the pool
  // wired in.
  std::unique_ptr<ThreadPool> pool;
  BatchScoringConfig scoring;

  EpochResultCache cache;
  std::uint64_t queries = 0;
  std::uint64_t batches = 0;

  // One coarse service mutex: every public call serializes on it, which
  // makes any cross-thread interleaving safe (the scoring *inside* a call
  // still fans out over the pool).
  std::mutex mutex;

  explicit State(std::size_t cache_capacity) : cache(cache_capacity) {}

  [[nodiscard]] std::size_t machine_count() const {
    return config.live ? stores.size() : indexes.size();
  }

  /// The strictly monotone service epoch (sum of per-store epochs; each
  /// store's epoch never decreases and every mutation bumps one).
  [[nodiscard]] std::uint64_t epoch() const {
    std::uint64_t sum = 0;
    for (const auto& store : stores) sum += store->epoch();
    return sum;
  }
};

// --- lifecycle ---------------------------------------------------------------

KnnService::KnnService() = default;
KnnService::KnnService(std::unique_ptr<State> state) : state_(std::move(state)) {}
KnnService::KnnService(KnnService&&) noexcept = default;
KnnService& KnnService::operator=(KnnService&&) noexcept = default;
KnnService::~KnnService() = default;

KnnService::State& KnnService::ensure_built() const {
  if (state_ == nullptr) throw ServiceStateError("dknn: KnnService used before build()");
  return *state_;
}

KnnService::State& KnnService::ensure_live() const {
  State& state = ensure_built();
  if (!state.config.live) {
    throw ServiceStateError(
        "dknn: live-serving call on a static-mode KnnService (build with "
        "KnnServiceBuilder::live)");
  }
  return state;
}

bool KnnService::live() const { return ensure_built().config.live; }
const ServiceConfig& KnnService::config() const { return ensure_built().config; }
std::size_t KnnService::dim() const { return ensure_built().dim; }
std::size_t KnnService::machines() const { return ensure_built().machine_count(); }

std::size_t KnnService::total_points() const {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::size_t total = 0;
  if (state.config.live) {
    for (const auto& store : state.stores) total += store->live_points();
  } else {
    for (const auto& index : state.indexes) total += index.store().size();
  }
  return total;
}

// --- queries -----------------------------------------------------------------

namespace {

void validate_query_dims(std::size_t dim, std::span<const PointD> queries) {
  // dim == 0 means the dataset is empty and dimension-free; every scoring
  // path then returns empty keys for any query (mirrors the kernels).
  if (dim == 0) return;
  for (const PointD& query : queries) require_query_dim(dim, query.dim());
}

}  // namespace

BatchQueryResult KnnService::query_batch(std::span<const PointD> queries,
                                         std::optional<KnnAlgo> algo) {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  BatchQueryResult out;
  out.epoch = state.epoch();
  if (queries.empty()) return out;
  validate_query_dims(state.dim, queries);

  // One coherent snapshot set for the whole batch (live mode).
  std::vector<SnapshotPtr> snapshots;
  if (state.config.live) {
    snapshots.reserve(state.stores.size());
    for (const auto& store : state.stores) snapshots.push_back(store->snapshot());
  }

  out.per_query.resize(queries.size());
  const auto batch_size = static_cast<std::uint32_t>(queries.size());

  // Cache pass: fill hits, collect misses.  Sound because every answer is
  // a deterministic function of (snapshot epoch, query); see the header.
  // A disabled cache (the default) skips the coord-bits materialization
  // and cache locking entirely.
  std::vector<std::size_t> miss_index;
  std::vector<PointD> miss_queries;
  std::vector<std::vector<std::uint64_t>> miss_bits;
  const bool caching = state.cache.capacity() > 0;
  if (!caching) {
    miss_index.reserve(queries.size());
    miss_queries.reserve(queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      miss_index.push_back(q);
      miss_queries.push_back(queries[q]);
    }
  } else {
    for (std::size_t q = 0; q < queries.size(); ++q) {
      auto bits = query_coord_bits(queries[q]);
      if (auto cached = state.cache.lookup(bits, out.epoch); cached.has_value()) {
        out.per_query[q].keys = std::move(*cached);
        out.per_query[q].epoch = out.epoch;
        out.per_query[q].cache_hit = true;
      } else {
        miss_index.push_back(q);
        miss_queries.push_back(queries[q]);
        miss_bits.push_back(std::move(bits));
      }
    }
  }

  if (!miss_queries.empty()) {
    // Local computation: the fused batch kernels over every machine's
    // resident structures — exactly the free-function paths.
    const auto scored =
        state.config.live
            ? score_serve_snapshots_batch(snapshots, miss_queries, state.config.ell,
                                          state.config.metric, state.scoring)
            : score_vector_shards_batch(state.indexes, miss_queries, state.config.ell,
                                        state.config.metric, state.scoring);
    // Global selection: every miss through one engine run.
    BatchRunResult batch = run_knn_batch(scored, state.config.ell,
                                         algo.value_or(state.config.algo),
                                         state.config.engine, state.config.knn);
    if (caching) state.cache.make_room(miss_index.size(), out.epoch);
    for (std::size_t i = 0; i < miss_index.size(); ++i) {
      QueryResult& dst = out.per_query[miss_index[i]];
      GlobalRunResult& src = batch.per_query[i];
      dst.keys = std::move(src.keys);
      dst.report = std::move(src.report);
      dst.iterations = src.iterations;
      dst.attempts = src.attempts;
      dst.candidates = src.candidates;
      dst.prune_ok = src.prune_ok;
      dst.epoch = out.epoch;
      dst.cache_hit = false;
      if (caching) state.cache.insert(std::move(miss_bits[i]), out.epoch, dst.keys);
    }
    out.report = std::move(batch.report);
    ++state.batches;
  }

  for (QueryResult& result : out.per_query) result.batch_size = batch_size;
  state.queries += queries.size();
  return out;
}

QueryResult KnnService::query(const PointD& point, std::optional<KnnAlgo> algo) {
  BatchQueryResult batch = query_batch(std::span<const PointD>(&point, 1), algo);
  QueryResult result = std::move(batch.per_query.front());
  // A lone query owns its whole run: give it the complete engine report
  // (traffic included), not just the per-query round count.
  if (!result.cache_hit) result.report = std::move(batch.report);
  return result;
}

std::vector<ClassifyResult> KnnService::classify_batch(std::span<const PointD> queries,
                                                       VoteRule rule) {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.has_labels) {
    throw ServiceStateError(
        "dknn: KnnService::classify requires labels (KnnServiceBuilder::labels or "
        "insert_labeled)");
  }
  if (queries.empty()) return {};  // consistent with query_batch
  validate_query_dims(state.dim, queries);

  std::vector<SnapshotPtr> snapshots;
  if (state.config.live) {
    snapshots.reserve(state.stores.size());
    for (const auto& store : state.stores) snapshots.push_back(store->snapshot());
  }
  const auto scored =
      state.config.live
          ? score_serve_snapshots_batch(snapshots, queries, state.config.ell,
                                        state.config.metric, state.scoring)
          : score_vector_shards_batch(state.indexes, queries, state.config.ell,
                                      state.config.metric, state.scoring);
  auto results = classify_scored_batch(scored, state.labels, state.config.ell,
                                       state.config.engine, state.config.knn, rule);
  state.queries += queries.size();
  ++state.batches;
  return results;
}

ClassifyResult KnnService::classify(const PointD& point, VoteRule rule) {
  return std::move(classify_batch(std::span<const PointD>(&point, 1), rule).front());
}

std::vector<RegressResult> KnnService::regress_batch(std::span<const PointD> queries) {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.has_targets) {
    throw ServiceStateError(
        "dknn: KnnService::regress requires targets (KnnServiceBuilder::targets or "
        "insert_target)");
  }
  if (queries.empty()) return {};  // consistent with query_batch
  validate_query_dims(state.dim, queries);

  std::vector<SnapshotPtr> snapshots;
  if (state.config.live) {
    snapshots.reserve(state.stores.size());
    for (const auto& store : state.stores) snapshots.push_back(store->snapshot());
  }
  const auto scored =
      state.config.live
          ? score_serve_snapshots_batch(snapshots, queries, state.config.ell,
                                        state.config.metric, state.scoring)
          : score_vector_shards_batch(state.indexes, queries, state.config.ell,
                                      state.config.metric, state.scoring);
  auto results = regress_scored_batch(scored, state.targets, state.config.ell,
                                      state.config.engine, state.config.knn);
  state.queries += queries.size();
  ++state.batches;
  return results;
}

RegressResult KnnService::regress(const PointD& point) {
  return std::move(regress_batch(std::span<const PointD>(&point, 1)).front());
}

ServiceStats KnnService::stats() const {
  State& state = ensure_built();
  // Cache counters are read under the service mutex: every facade cache
  // mutation happens inside it, so the snapshot is exact (hits + misses
  // always reconcile with the query count).
  const std::lock_guard<std::mutex> lock(state.mutex);
  const ResultCacheStats cache = state.cache.stats();
  ServiceStats stats;
  stats.queries = state.queries;
  stats.batches = state.batches;
  stats.cache_hits = cache.hits;
  stats.cache_misses = cache.misses;
  stats.cache_flushes = cache.flushes;
  return stats;
}

// --- live-serving surface ----------------------------------------------------

std::size_t KnnService::insert_point(State& state, const PointD& point, PointId id) {
  require_query_dim(state.dim, point.dim());
  for (const auto& store : state.stores) {
    if (store->contains(id)) {
      throw PreconditionError("dknn: insert: id " + std::to_string(id) + " is already live");
    }
  }
  const std::size_t machine = state.next_machine++ % state.stores.size();
  state.stores[machine]->insert(point, id);
  return machine;
}

std::uint64_t KnnService::insert(const PointD& point, PointId id) {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  insert_point(state, point, id);
  return state.epoch();
}

std::uint64_t KnnService::insert_labeled(const PointD& point, PointId id, std::uint32_t label) {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  const std::size_t machine = insert_point(state, point, id);
  state.labels[machine][id] = label;
  state.has_labels = true;
  return state.epoch();
}

std::uint64_t KnnService::insert_target(const PointD& point, PointId id, double target) {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  const std::size_t machine = insert_point(state, point, id);
  state.targets[machine][id] = target;
  state.has_targets = true;
  return state.epoch();
}

std::optional<std::uint64_t> KnnService::erase(PointId id) {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  for (std::size_t m = 0; m < state.stores.size(); ++m) {
    if (state.stores[m]->erase(id).has_value()) {
      state.labels[m].erase(id);
      state.targets[m].erase(id);
      return state.epoch();
    }
  }
  return std::nullopt;
}

std::uint64_t KnnService::compact_now() {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  for (const auto& store : state.stores) {
    // plan → build → install, synchronously, until this store is clean.
    // Each install strictly shrinks the backlog, so this terminates; under
    // the service mutex no victim can change, so installs cannot abort
    // (the break is a safety net, not a path).
    for (;;) {
      const SegmentStore::CompactionPlan plan =
          store->plan_compaction(state.config.compaction);
      if (plan.empty()) break;
      auto merged = SegmentStore::merge_segments(plan.victims, state.config.serve);
      if (!store->install_compaction(plan, std::move(merged))) break;
    }
  }
  return state.epoch();
}

std::uint64_t KnnService::snapshot_epoch() const {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return state.epoch();
}

bool KnnService::contains(PointId id) const {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  for (const auto& store : state.stores) {
    if (store->contains(id)) return true;
  }
  return false;
}

std::vector<PointId> KnnService::live_ids() const {
  State& state = ensure_live();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<PointId> ids;
  for (const auto& store : state.stores) {
    const SnapshotPtr snapshot = store->snapshot();
    for (const SegmentView& segment : snapshot->segments) {
      const std::span<const PointId> rows = segment.data->store().ids();
      for (const auto& [lo, hi] : *segment.live_runs) {
        ids.insert(ids.end(), rows.begin() + lo, rows.begin() + hi);
      }
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t KnnService::segment_count() const {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::size_t count = 0;
  for (const auto& store : state.stores) count += store->segment_count();
  return count;
}

std::uint64_t KnnService::compaction_debt() const {
  State& state = ensure_built();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::uint64_t debt = 0;
  for (const auto& store : state.stores) debt += store->compaction_debt(state.config.compaction);
  return debt;
}

// --- builder -----------------------------------------------------------------

KnnServiceBuilder& KnnServiceBuilder::machines(std::uint32_t k) {
  config_.machines = k;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::ell(std::uint64_t ell) {
  config_.ell = ell;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::metric(MetricKind kind) {
  config_.metric = kind;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::algo(KnnAlgo algo) {
  config_.algo = algo;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::policy(ScoringPolicy policy) {
  config_.policy = policy;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::leaf_size(std::size_t leaf_size) {
  config_.leaf_size = leaf_size;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::partition(PartitionScheme scheme) {
  config_.partition = scheme;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::seed(std::uint64_t seed) {
  config_.seed = seed;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::scoring(const BatchScoringConfig& scoring) {
  config_.scoring = scoring;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::engine(const EngineConfig& engine) {
  config_.engine = engine;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::knn(const KnnConfig& knn) {
  config_.knn = knn;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::live() {
  config_.live = true;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::live(const ServeConfig& serve) {
  config_.live = true;
  config_.serve = serve;
  serve_explicit_ = true;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::compaction(const CompactionConfig& compaction) {
  config_.compaction = compaction;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::cache_capacity(std::size_t entries) {
  config_.cache_capacity = entries;
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::config(const ServiceConfig& config) {
  config_ = config;
  serve_explicit_ = true;  // a hand-rolled config's serve knobs are verbatim
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::dim(std::size_t dim) {
  dim_ = dim;
  return *this;
}

KnnServiceBuilder& KnnServiceBuilder::dataset(std::vector<PointD> points) {
  have_flat_ = true;
  flat_points_ = std::move(points);
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::dataset_sharded(std::vector<VectorShard> shards) {
  have_sharded_ = true;
  shards_ = std::move(shards);
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::labels(std::vector<std::uint32_t> labels) {
  have_labels_ = true;
  flat_labels_ = std::move(labels);
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::targets(std::vector<double> targets) {
  have_targets_ = true;
  flat_targets_ = std::move(targets);
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::labels_sharded(
    std::vector<std::vector<std::uint32_t>> labels) {
  have_labels_ = true;
  sharded_labels_ = std::move(labels);
  return *this;
}
KnnServiceBuilder& KnnServiceBuilder::targets_sharded(std::vector<std::vector<double>> targets) {
  have_targets_ = true;
  sharded_targets_ = std::move(targets);
  return *this;
}

KnnService KnnServiceBuilder::build() {
  require_positive_ell(config_.ell);
  if (have_flat_ && have_sharded_) {
    throw ServiceStateError("dknn: give the builder dataset() or dataset_sharded(), not both");
  }

  auto state = std::make_unique<KnnService::State>(config_.cache_capacity);
  state->config = config_;
  // One policy/leaf-size knob drives both modes — sealed segments build
  // the same scoring structures the static ShardIndexes would — unless
  // the caller handed over explicit store knobs (live(ServeConfig) /
  // config()), which win verbatim.
  if (!serve_explicit_) {
    state->config.serve.policy = config_.policy;
    state->config.serve.leaf_size = config_.leaf_size;
  }

  // Assemble shards + payload tables.
  std::vector<VectorShard> shards;
  const std::size_t flat_count = flat_points_.size();
  ShardPlacement placement;
  if (have_sharded_) {
    if (!flat_labels_.empty() || !flat_targets_.empty()) {
      throw ServiceStateError(
          "dknn: flat labels()/targets() require a flat dataset(); use labels_sharded()/"
          "targets_sharded() with dataset_sharded()");
    }
    shards = std::move(shards_);
    if (shards.empty()) {
      throw ServiceStateError("dknn: dataset_sharded() needs at least one shard");
    }
    state->config.machines = static_cast<std::uint32_t>(shards.size());
  } else {
    if (!sharded_labels_.empty() || !sharded_targets_.empty()) {
      throw ServiceStateError(
          "dknn: labels_sharded()/targets_sharded() require dataset_sharded()");
    }
    if (config_.machines == 0) {
      throw ServiceStateError("dknn: KnnService needs at least one machine");
    }
    if (have_labels_ && flat_labels_.size() != flat_count) {
      throw ServiceStateError("dknn: labels() must align with dataset()");
    }
    if (have_targets_ && flat_targets_.size() != flat_count) {
      throw ServiceStateError("dknn: targets() must align with dataset()");
    }
    Rng rng(config_.seed);
    shards = make_vector_shards(std::move(flat_points_), config_.machines, config_.partition,
                                rng, placement);
  }

  const std::size_t k = shards.size();
  state->labels.resize(k);
  state->targets.resize(k);
  state->has_labels = have_labels_;
  state->has_targets = have_targets_;
  if (have_labels_ || have_targets_) {
    if (have_sharded_) {
      if (have_labels_ && sharded_labels_.size() != k) {
        throw ServiceStateError("dknn: labels_sharded() must align with dataset_sharded()");
      }
      if (have_targets_ && sharded_targets_.size() != k) {
        throw ServiceStateError("dknn: targets_sharded() must align with dataset_sharded()");
      }
      for (std::size_t m = 0; m < k; ++m) {
        if (have_labels_ && sharded_labels_[m].size() != shards[m].points.size()) {
          throw ServiceStateError("dknn: labels_sharded() must align with dataset_sharded()");
        }
        if (have_targets_ && sharded_targets_[m].size() != shards[m].points.size()) {
          throw ServiceStateError("dknn: targets_sharded() must align with dataset_sharded()");
        }
        for (std::size_t i = 0; i < shards[m].ids.size(); ++i) {
          if (have_labels_) state->labels[m].emplace(shards[m].ids[i], sharded_labels_[m][i]);
          if (have_targets_) state->targets[m].emplace(shards[m].ids[i], sharded_targets_[m][i]);
        }
      }
    } else {
      // Flat payloads follow their point through the partition.
      for (std::size_t i = 0; i < flat_count; ++i) {
        const auto [machine, row] = placement[i];
        const PointId id = shards[machine].ids[row];
        if (have_labels_) state->labels[machine].emplace(id, flat_labels_[i]);
        if (have_targets_) state->targets[machine].emplace(id, flat_targets_[i]);
      }
    }
  }

  // Dimensionality: from the data, else the explicit builder override.
  std::size_t dim = 0;
  for (const VectorShard& shard : shards) {
    if (!shard.points.empty()) {
      dim = shard.points.front().dim();
      break;
    }
  }
  if (dim == 0) dim = dim_;
  state->dim = dim;

  // Per-machine scoring structures.
  if (config_.live) {
    if (dim == 0) {
      throw ServiceStateError(
          "dknn: a live KnnService needs a known dimension (provide points or "
          "KnnServiceBuilder::dim)");
    }
    state->stores.reserve(k);
    for (VectorShard& shard : shards) {
      auto store = std::make_unique<SegmentStore>(dim, state->config.serve);
      if (!shard.points.empty()) {
        store->insert_batch(shard.points, shard.ids);
        store->seal();
      }
      state->stores.push_back(std::move(store));
    }
  } else {
    state->indexes = make_shard_indexes(shards, config_.policy, config_.leaf_size);
  }

  // Service-owned scoring pool: spawn once, reuse across every batch
  // (BatchScoringConfig{threads} would otherwise respawn per call).
  state->scoring = config_.scoring;
  if (state->scoring.pool == nullptr) {
    const std::size_t threads =
        state->scoring.threads != 0
            ? state->scoring.threads
            : std::max<std::size_t>(1, std::thread::hardware_concurrency());
    if (threads > 1) {
      state->pool = std::make_unique<ThreadPool>(threads, state->scoring.seed);
      state->scoring.pool = state->pool.get();
    }
  }

  return KnnService(std::move(state));
}

}  // namespace dknn

#pragma once
/// \file simple_knn.hpp
/// \brief The paper's experimental baseline (§3): "each machine finds its
///        local ℓ-NN. Then it transfers all of them to a leader machine
///        that finds the final ℓ-NN among those points."
///
/// Under the model's B-bits-per-round links, shipping ℓ keys from each
/// machine costs Θ(ℓ·|key| / B) rounds — the O(ℓ) round complexity the
/// paper contrasts with Algorithm 2's O(log ℓ) (the links drain in
/// parallel, so the gather is Θ(ℓ) regardless of k, while the leader's
/// merge work grows as Θ(kℓ)).  Run it under BandwidthPolicy::Chunked to
/// see those rounds emerge; under Unlimited it degenerates to a 1-round
/// gather (useful for message counting only).

#include <cstdint>
#include <vector>

#include "core/protocol.hpp"
#include "data/key.hpp"
#include "sim/context.hpp"
#include "sim/task.hpp"

namespace dknn {

struct SimpleKnnConfig {
  MachineId leader = 0;
  /// When true the leader broadcasts the answer threshold so every machine
  /// can emit its own winners (symmetric with dist_knn's output); costs one
  /// more round and k−1 messages.
  bool announce_threshold = true;
};

struct SimpleKnnLocal {
  /// This machine's keys among the global ℓ nearest (ascending); filled on
  /// every machine when announce_threshold, otherwise only the leader's
  /// perspective below is filled.
  std::vector<Key> selected;
  /// Leader only: the merged global answer (ascending), empty elsewhere.
  std::vector<Key> merged;
};

/// Runs the simple gather baseline; every machine calls with the same
/// `ell`/`config`.  Selects min(ell, Σ|local_scored|) keys globally.
[[nodiscard]] Task<SimpleKnnLocal> simple_knn(Ctx& ctx, std::vector<Key> local_scored,
                                              std::uint64_t ell, SimpleKnnConfig config = {});

}  // namespace dknn

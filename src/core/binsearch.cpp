#include "core/binsearch.hpp"

#include <algorithm>

#include "sim/collectives.hpp"
#include "support/panic.hpp"

namespace dknn {
namespace {

/// Keys as 128-bit integers so the midpoint is one shift (the __uint128_t
/// builtin spelling avoids -Wpedantic, unlike `unsigned __int128`).
using U128 = __uint128_t;

U128 key_to_u128(const Key& k) {
  return (static_cast<U128>(k.rank) << 64) | static_cast<U128>(k.id);
}

Key u128_to_key(U128 v) {
  return Key{static_cast<std::uint64_t>(v >> 64), static_cast<std::uint64_t>(v)};
}

std::uint64_t count_leq(const std::vector<Key>& sorted, const Key& bound) {
  return static_cast<std::uint64_t>(
      std::upper_bound(sorted.begin(), sorted.end(), bound) - sorted.begin());
}

}  // namespace

Task<BinSearchLocal> binsearch_select(Ctx& ctx, std::vector<Key> local_keys, std::uint64_t ell,
                                      BinSearchConfig config) {
  DKNN_REQUIRE(config.leader < ctx.world(), "leader id out of range");
  const std::uint32_t k = ctx.world();
  const bool is_leader = ctx.id() == config.leader;
  std::sort(local_keys.begin(), local_keys.end());
  DKNN_REQUIRE(std::adjacent_find(local_keys.begin(), local_keys.end()) == local_keys.end(),
               "local keys must be distinct (use unique point ids)");

  auto finalize = [&](const SelFinished& fin, std::uint32_t probes) {
    BinSearchLocal out;
    out.probes = probes;
    out.any = fin.any;
    out.bound = fin.bound;
    if (fin.any) {
      const auto end = std::upper_bound(local_keys.begin(), local_keys.end(), fin.bound);
      out.selected.assign(local_keys.begin(), end);
    }
    return out;
  };

  if (!is_leader) {
    ctx.send_value(config.leader, tags::kBsInit,
                   SelInit{local_keys.size(),
                           local_keys.empty() ? Key{} : local_keys.front(),
                           local_keys.empty() ? Key{} : local_keys.back()});
    std::uint32_t probes = 0;
    std::vector<Tag> watched{tags::kBsProbe, tags::kBsFinished};
    while (true) {
      Envelope env = co_await recv_any(ctx, watched);
      if (env.tag == tags::kBsFinished) {
        co_return finalize(from_bytes<SelFinished>(env.payload), probes);
      }
      ++probes;
      const auto probe = from_bytes<Key>(env.payload);
      ctx.send_value(config.leader, tags::kBsCount, count_leq(local_keys, probe));
    }
  }

  // --- leader ---------------------------------------------------------------
  std::uint64_t total = local_keys.size();
  Key global_min = local_keys.empty() ? Key::max_key() : local_keys.front();
  Key global_max = local_keys.empty() ? Key::min_key() : local_keys.back();
  bool any_points = !local_keys.empty();
  if (k > 1) {
    auto inits = co_await recv_n(ctx, tags::kBsInit, k - 1);
    for (const auto& env : inits) {
      const auto init = from_bytes<SelInit>(env.payload);
      total += init.count;
      if (init.count > 0) {
        global_min = any_points ? std::min(global_min, init.min_key) : init.min_key;
        global_max = any_points ? std::max(global_max, init.max_key) : init.max_key;
        any_points = true;
      }
    }
  }

  const std::uint64_t target = std::min<std::uint64_t>(ell, total);
  std::uint32_t probes = 0;
  SelFinished fin;
  if (target == 0) {
    fin.any = false;
  } else if (target == total) {
    fin.any = true;
    fin.bound = global_max;
  } else {
    // Find the smallest T in [min, max] with count(<= T) >= target; with
    // distinct keys the count at that T is exactly `target`.
    U128 lo = key_to_u128(global_min);  // invariant: count(< lo) < target
    U128 hi = key_to_u128(global_max);  // invariant: count(<= hi) >= target
    while (lo < hi) {
      ++probes;
      const U128 mid = lo + (hi - lo) / 2;
      const Key probe = u128_to_key(mid);
      for (MachineId m = 0; m < k; ++m) {
        if (m != config.leader) ctx.send_value(m, tags::kBsProbe, probe);
      }
      std::uint64_t count = count_leq(local_keys, probe);
      if (k > 1) {
        auto replies = co_await recv_n(ctx, tags::kBsCount, k - 1);
        for (const auto& env : replies) count += from_bytes<std::uint64_t>(env.payload);
      }
      if (count >= target) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    fin.any = true;
    fin.bound = u128_to_key(lo);
  }
  fin.iterations = probes;
  for (MachineId m = 0; m < k; ++m) {
    if (m != config.leader) ctx.send_value(m, tags::kBsFinished, fin);
  }
  co_return finalize(fin, probes);
}

}  // namespace dknn

#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "support/panic.hpp"

namespace dknn::obs {

std::size_t thread_shard_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

// --- Counter / Gauge ---------------------------------------------------------

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

std::int64_t Gauge::value() const {
  std::int64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Gauge::reset() {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {
  for (Shard& s : shards_) s.buckets = std::vector<std::atomic<std::uint64_t>>(kHistogramBuckets);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.count.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::sum() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::pair<std::size_t, std::uint64_t>> Histogram::nonzero_buckets() const {
  std::vector<std::pair<std::size_t, std::uint64_t>> out;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    std::uint64_t n = 0;
    for (const Shard& s : shards_) n += s.buckets[i].load(std::memory_order_relaxed);
    if (n != 0) out.emplace_back(i, n);
  }
  return out;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

// --- snapshots ---------------------------------------------------------------

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Ceil nearest-rank, same convention as bench/latency.hpp.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (const auto& [index, n] : buckets) {
    seen += n;
    if (seen >= rank) return bucket_representative(index);
  }
  return buckets.empty() ? 0 : bucket_representative(buckets.back().first);
}

const CounterSnapshot* MetricsSnapshot::find_counter(std::string_view name) const {
  for (const auto& c : counters)
    if (c.name == name) return &c;
  return nullptr;
}

const GaugeSnapshot* MetricsSnapshot::find_gauge(std::string_view name) const {
  for (const auto& g : gauges)
    if (g.name == name) return &g;
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(std::string_view name) const {
  for (const auto& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

namespace {

void append_help_type(std::string& out, const std::string& name, const std::string& help,
                      const char* type) {
  if (!help.empty()) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += '\n';
  }
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

/// Minimal JSON string escape — metric names/help are ASCII identifiers
/// and prose, so quotes and backslashes are all that can realistically
/// appear.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::prometheus_text() const {
  std::string out;
  for (const CounterSnapshot& c : counters) {
    append_help_type(out, c.name, c.help, "counter");
    out += c.name;
    out += ' ';
    append_u64(out, c.value);
    out += '\n';
  }
  for (const GaugeSnapshot& g : gauges) {
    append_help_type(out, g.name, g.help, "gauge");
    out += g.name;
    out += ' ';
    append_i64(out, g.value);
    out += '\n';
  }
  for (const HistogramSnapshot& h : histograms) {
    append_help_type(out, h.name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (const auto& [index, n] : h.buckets) {
      cumulative += n;
      out += h.name;
      out += "_bucket{le=\"";
      // le is inclusive; the bucket covers [lo, lo + width), all integers.
      append_u64(out, bucket_lo(index) + bucket_width(index) - 1);
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += h.name;
    out += "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.count);
    out += '\n';
    out += h.name;
    out += "_sum ";
    append_u64(out, h.sum);
    out += '\n';
    out += h.name;
    out += "_count ";
    append_u64(out, h.count);
    out += '\n';
  }
  return out;
}

std::string MetricsSnapshot::json_text() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const CounterSnapshot& c : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(c.name) + "\": ";
    append_u64(out, c.value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const GaugeSnapshot& g : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(g.name) + "\": ";
    append_i64(out, g.value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& h : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(h.name) + "\": {\"count\": ";
    append_u64(out, h.count);
    out += ", \"sum\": ";
    append_u64(out, h.sum);
    out += ", \"p50\": ";
    append_u64(out, h.quantile(0.50));
    out += ", \"p95\": ";
    append_u64(out, h.quantile(0.95));
    out += ", \"p99\": ";
    append_u64(out, h.quantile(0.99));
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [index, n] : h.buckets) {
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += '[';
      append_u64(out, bucket_lo(index));
      out += ", ";
      append_u64(out, n);
      out += ']';
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

// --- registry ----------------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help) {
  const std::scoped_lock lock(mutex_);
  DKNN_REQUIRE(gauges_.find(name) == gauges_.end() && histograms_.find(name) == histograms_.end(),
               "obs: metric name already registered as a different kind");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      Named<Counter>{std::string(help), std::make_unique<Counter>(&enabled_)})
             .first;
  }
  return *it->second.instrument;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  const std::scoped_lock lock(mutex_);
  DKNN_REQUIRE(counters_.find(name) == counters_.end() &&
                   histograms_.find(name) == histograms_.end(),
               "obs: metric name already registered as a different kind");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      Named<Gauge>{std::string(help), std::make_unique<Gauge>(&enabled_)})
             .first;
  }
  return *it->second.instrument;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::string_view help) {
  const std::scoped_lock lock(mutex_);
  DKNN_REQUIRE(counters_.find(name) == counters_.end() && gauges_.find(name) == gauges_.end(),
               "obs: metric name already registered as a different kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      Named<Histogram>{std::string(help), std::make_unique<Histogram>(&enabled_)})
             .first;
  }
  return *it->second.instrument;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, named] : counters_)
    snap.counters.push_back({name, named.help, named.instrument->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, named] : gauges_)
    snap.gauges.push_back({name, named.help, named.instrument->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, named] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.help = named.help;
    // Buckets first: a racing record() that lands between the reads can
    // only make count/sum >= the bucket total, never lose a bucket.
    h.buckets = named.instrument->nonzero_buckets();
    h.count = named.instrument->count();
    h.sum = named.instrument->sum();
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, named] : counters_) named.instrument->reset();
  for (auto& [name, named] : gauges_) named.instrument->reset();
  for (auto& [name, named] : histograms_) named.instrument->reset();
}

MetricsRegistry& registry() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never destroyed
  return *instance;
}

}  // namespace dknn::obs

#pragma once
/// \file metrics.hpp
/// \brief Process-wide metrics registry: named counters, gauges, and
///        log-linear latency histograms with per-thread sharded cells.
///
/// Every layer of the serving stack records into one `MetricsRegistry`
/// (the process-wide `obs::registry()`), replacing the per-layer ad-hoc
/// counter structs as the *aggregation* surface — `ServiceStats`,
/// `FrontEndStats` etc. stay as per-instance views, but cross-layer
/// totals, latency distributions, and anything an operator scrapes live
/// here.  Design constraints, in order:
///
/// 1. **Hot-path increments must never fight over a cache line.**  Each
///    counter/gauge owns `kCounterShards` cache-line-aligned atomic
///    cells; a thread picks its cell by a thread-local slot id, so an
///    increment is one relaxed `fetch_add` on a line that (up to slot
///    collisions) only that thread touches.  Histograms shard the whole
///    bucket array the same way.  Reads (`snapshot()`) merge the shards;
///    they are racy-by-design running sums, exact once writers quiesce.
/// 2. **Disabled must cost one branch.**  Every instrument holds a
///    pointer to its registry's `enabled` flag and returns after a single
///    relaxed load when it is false — the `set_enabled(false)`
///    configuration is the "no observability" baseline the
///    `obs_overhead` bench stanza compares against.
/// 3. **Histogram error is bounded, not sampled.**  Buckets are
///    HDR-style log-linear: values below 64 map exactly; above that each
///    power-of-two octave splits into 64 linear sub-buckets, so a
///    bucket's midpoint is within 1/128 (< 1%) of any value it absorbs.
///    Bucket math is `constexpr` free functions (`bucket_index`,
///    `bucket_lo`, `bucket_width`) — golden-tested in tests/test_obs.cpp.
///
/// Instruments are registered by name on first use and live for the
/// registry's lifetime; references returned by `counter()` / `gauge()` /
/// `histogram()` are stable, so callers cache them (typically in a
/// function-local static) and skip the name lookup on the hot path.
///
/// Naming convention: `dknn_<layer>_<thing>_total` for counters,
/// `dknn_<layer>_<thing>` for gauges, `dknn_<layer>_<thing>_ns` for
/// latency histograms (all durations in nanoseconds).

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dknn::obs {

// --- log-linear bucket math --------------------------------------------------

inline constexpr std::uint32_t kSubBits = 6;
inline constexpr std::uint64_t kSubBuckets = 1u << kSubBits;  // 64
/// Values with bit-width above this clamp into the last bucket: 2^40 ns
/// is ~18 minutes, far past any latency this stack can produce.
inline constexpr std::uint32_t kMaxOctave = 40;
inline constexpr std::size_t kHistogramBuckets =
    kSubBuckets + (kMaxOctave - kSubBits) * kSubBuckets;  // 64 + 34*64 = 2240

/// Bucket a value lands in.  v < 64 maps exactly to bucket v; otherwise
/// the top 6 bits below the leading bit pick a linear sub-bucket inside
/// the value's octave.
[[nodiscard]] constexpr std::size_t bucket_index(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const std::uint32_t octave = static_cast<std::uint32_t>(std::bit_width(v)) - 1;
  if (octave >= kMaxOctave) return kHistogramBuckets - 1;
  const std::uint64_t sub = (v >> (octave - kSubBits)) & (kSubBuckets - 1);
  return kSubBuckets + (octave - kSubBits) * kSubBuckets + static_cast<std::size_t>(sub);
}

/// Smallest value bucket `i` absorbs.
[[nodiscard]] constexpr std::uint64_t bucket_lo(std::size_t i) {
  if (i < kSubBuckets) return i;
  const std::size_t rel = i - kSubBuckets;
  const std::uint32_t octave = kSubBits + static_cast<std::uint32_t>(rel / kSubBuckets);
  const std::uint64_t sub = rel % kSubBuckets;
  return (kSubBuckets + sub) << (octave - kSubBits);
}

/// Width of bucket `i`: [bucket_lo(i), bucket_lo(i) + bucket_width(i)).
[[nodiscard]] constexpr std::uint64_t bucket_width(std::size_t i) {
  if (i < kSubBuckets) return 1;
  const std::uint32_t octave = kSubBits + static_cast<std::uint32_t>((i - kSubBuckets) / kSubBuckets);
  return std::uint64_t{1} << (octave - kSubBits);
}

/// The value a bucket reports for everything it absorbed (its midpoint);
/// |representative − v| / v ≤ 1/128 for any v the bucket covers.
[[nodiscard]] constexpr std::uint64_t bucket_representative(std::size_t i) {
  return bucket_lo(i) + bucket_width(i) / 2;
}

// --- sharding ----------------------------------------------------------------

inline constexpr std::size_t kCounterShards = 16;   // power of two
inline constexpr std::size_t kHistogramShards = 4;  // power of two

/// This thread's stable shard slot (assigned once, round-robin).
[[nodiscard]] std::size_t thread_shard_slot();

// --- instruments -------------------------------------------------------------

/// Monotone event counter.  add() is wait-free: one relaxed fetch_add on
/// a (mostly) thread-private cache line.
class Counter {
 public:
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void add(std::uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    cells_[thread_shard_slot() & (kCounterShards - 1)].v.fetch_add(n,
                                                                   std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const;
  void reset();

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kCounterShards> cells_{};
  const std::atomic<bool>* enabled_;
};

/// Signed level tracked by deltas: concurrent owners add()/sub() what
/// they contribute and the merged value is the current level (queue
/// depth, live points, compaction debt).  There is deliberately no
/// set() — absolute stores do not merge across shards or instances.
class Gauge {
 public:
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void add(std::int64_t n) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    cells_[thread_shard_slot() & (kCounterShards - 1)].v.fetch_add(n,
                                                                   std::memory_order_relaxed);
  }
  void sub(std::int64_t n) { add(-n); }

  [[nodiscard]] std::int64_t value() const;
  void reset();

 private:
  struct alignas(64) Cell {
    std::atomic<std::int64_t> v{0};
  };
  std::array<Cell, kCounterShards> cells_{};
  const std::atomic<bool>* enabled_;
};

/// Log-linear histogram of non-negative integer samples (by convention,
/// nanoseconds).  record() touches one bucket plus the count/sum pair of
/// this thread's shard.
class Histogram {
 public:
  explicit Histogram(const std::atomic<bool>* enabled);

  void record(std::uint64_t v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    Shard& s = shards_[thread_shard_slot() & (kHistogramShards - 1)];
    s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::uint64_t sum() const;
  /// Merged (bucket index, count) pairs for every non-empty bucket,
  /// ascending by index.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::uint64_t>> nonzero_buckets() const;
  void reset();

 private:
  struct Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;  // kHistogramBuckets
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kHistogramShards> shards_;
  const std::atomic<bool>* enabled_;
};

// --- snapshots ---------------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  std::string help;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::string help;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::string help;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  /// Non-empty buckets only, ascending by bucket index.
  std::vector<std::pair<std::size_t, std::uint64_t>> buckets;

  /// Ceil-nearest-rank quantile over the bucketed samples, reported as
  /// the owning bucket's representative value (≤ 1/128 relative error).
  /// q in [0, 1]; 0 samples → 0.
  [[nodiscard]] std::uint64_t quantile(double q) const;
};

/// One merged, point-in-time view of every registered instrument, sorted
/// by name within each kind.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] const CounterSnapshot* find_counter(std::string_view name) const;
  [[nodiscard]] const GaugeSnapshot* find_gauge(std::string_view name) const;
  [[nodiscard]] const HistogramSnapshot* find_histogram(std::string_view name) const;

  /// Prometheus text exposition (HELP/TYPE lines, cumulative `_bucket`
  /// ladder over non-empty buckets plus `+Inf`, `_sum`, `_count`).
  [[nodiscard]] std::string prometheus_text() const;
  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, p50, p95, p99, buckets: [[lo, n]...]}}}.
  [[nodiscard]] std::string json_text() const;
};

// --- registry ----------------------------------------------------------------

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name.  The returned reference is stable for the
  /// registry's lifetime — cache it, don't re-look-up per event.
  /// Registering the same name as two different kinds panics.
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  Histogram& histogram(std::string_view name, std::string_view help = "");

  /// Runtime kill switch: false short-circuits every instrument to a
  /// single relaxed load + branch.  Instruments keep their accumulated
  /// values across toggles.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::string prometheus_text() const { return snapshot().prometheus_text(); }
  [[nodiscard]] std::string json_text() const { return snapshot().json_text(); }

  /// Zero every instrument (the instruments stay registered).  Test and
  /// bench hook — not meant for production use.
  void reset();

 private:
  template <typename T>
  struct Named {
    std::string help;
    std::unique_ptr<T> instrument;
  };

  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;  ///< guards the maps, never the hot path
  std::map<std::string, Named<Counter>, std::less<>> counters_;
  std::map<std::string, Named<Gauge>, std::less<>> gauges_;
  std::map<std::string, Named<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry every layer records into.
[[nodiscard]] MetricsRegistry& registry();

}  // namespace dknn::obs

#include "obs/trace.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace dknn::obs {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Tracer::finish(std::unique_ptr<TraceBuilder> builder) {
  if (builder == nullptr) return;
  QueryTrace trace = builder->take();
  const std::scoped_lock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
  } else {
    ring_[ring_next_] = std::move(trace);
  }
  ring_next_ = (ring_next_ + 1) % capacity_;
}

std::vector<QueryTrace> Tracer::recent() const {
  const std::scoped_lock lock(mutex_);
  if (ring_.size() < capacity_) return ring_;
  // Full ring: ring_next_ is the oldest entry.
  std::vector<QueryTrace> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  return out;
}

namespace {

void append_span_json(std::string& out, const TraceSpan& span) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"name\": \"%s\", \"start_ns\": %" PRIu64 ", \"dur_ns\": %" PRIu64
                ", \"detail\": %" PRIu64 "}",
                span.name, span.start_ns, span.dur_ns, span.detail);
  out += buf;
}

}  // namespace

std::string Tracer::to_json(std::span<const QueryTrace> traces) {
  std::string out = "{\"traces\": [";
  for (std::size_t t = 0; t < traces.size(); ++t) {
    const QueryTrace& trace = traces[t];
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "%s\n  {\"id\": %" PRIu64 ", \"start_ns\": %" PRIu64 ", \"total_ns\": %" PRIu64
                  ", \"spans\": [",
                  t == 0 ? "" : ",", trace.id, trace.start_ns, trace.total_ns);
    out += buf;
    for (std::size_t s = 0; s < trace.spans.size(); ++s) {
      if (s != 0) out += ", ";
      append_span_json(out, trace.spans[s]);
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::to_chrome(std::span<const QueryTrace> traces) {
  // One complete event per span plus one per whole query; "tid" is the
  // query id so each query gets its own row in the viewer.
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  char buf[256];
  for (const QueryTrace& trace : traces) {
    std::snprintf(buf, sizeof buf,
                  "%s\n  {\"name\": \"query\", \"ph\": \"X\", \"pid\": 1, \"tid\": %" PRIu64
                  ", \"ts\": %.3f, \"dur\": %.3f}",
                  first ? "" : ",", trace.id, static_cast<double>(trace.start_ns) / 1000.0,
                  static_cast<double>(trace.total_ns) / 1000.0);
    out += buf;
    first = false;
    for (const TraceSpan& span : trace.spans) {
      std::snprintf(buf, sizeof buf,
                    ",\n  {\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, \"tid\": %" PRIu64
                    ", \"ts\": %.3f, \"dur\": %.3f, \"args\": {\"detail\": %" PRIu64 "}}",
                    span.name, trace.id, static_cast<double>(span.start_ns) / 1000.0,
                    static_cast<double>(span.dur_ns) / 1000.0, span.detail);
      out += buf;
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace dknn::obs

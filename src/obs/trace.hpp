#pragma once
/// \file trace.hpp
/// \brief Per-query trace spans: the stage ladder of one query, sampled.
///
/// A trace answers the question metrics cannot: *why was this one query
/// slow* — did it wait for a coalescing seat, acquire a snapshot behind a
/// publish, spend its time in shard scoring, or in the selection
/// protocol?  Each sampled query owns a `TraceBuilder`; the stages append
/// `TraceSpan`s ({name, start, duration, detail}) via `TraceScope` RAII
/// over the monotonic clock, and the finished `QueryTrace` lands in the
/// owning `Tracer`'s fixed-capacity ring of recent traces, exportable as
/// JSON or chrome://tracing format (load the latter in a Chromium
/// `about:tracing` tab or https://ui.perfetto.dev).
///
/// Cost discipline mirrors the metrics layer: the *untraced* path is one
/// relaxed load + branch (`Tracer::begin` returns null unless the query
/// was picked by the sampling rate or forced via
/// `QueryOptions::trace`), and nothing downstream of a null builder
/// touches the clock.
///
/// Concurrency: a `TraceBuilder` belongs to one query and is written by
/// whichever thread currently executes that query's stages.  Under seat
/// coalescing the *leader* writes batch-stage spans for every traced
/// batch member (fanned out through `TraceSink`) strictly before it
/// marks the seat done under the seat mutex, so the owner's later reads
/// are ordered by the same release/acquire that publishes the answer.
/// The ring itself is guarded by a leaf mutex — traced queries pay it
/// once, untraced queries never.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace dknn::obs {

/// Monotonic nanoseconds (steady clock) — the one clock every span uses.
[[nodiscard]] std::uint64_t now_ns();

/// One stage of one query.  `name` must be a string literal (stored
/// unowned).  `detail` is stage-defined: batch size for seat stages,
/// cache hits for the lookup stage, machines scored for shard scoring.
struct TraceSpan {
  const char* name = "";
  std::uint64_t start_ns = 0;  ///< absolute steady-clock ns
  std::uint64_t dur_ns = 0;
  std::uint64_t detail = 0;
};

/// The finished stage ladder of one sampled query.
struct QueryTrace {
  std::uint64_t id = 0;        ///< per-tracer monotone sequence number
  std::uint64_t start_ns = 0;  ///< query entry (steady clock)
  std::uint64_t total_ns = 0;  ///< entry → answer, all stages included
  std::vector<TraceSpan> spans;
};

/// Accumulates spans for one in-flight sampled query.  Not self
/// synchronizing — see the header comment for the ownership rule.
class TraceBuilder {
 public:
  explicit TraceBuilder(std::uint64_t id) {
    trace_.id = id;
    trace_.start_ns = now_ns();
    trace_.spans.reserve(8);
  }

  void add_span(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
                std::uint64_t detail = 0) {
    trace_.spans.push_back({name, start_ns, dur_ns, detail});
  }

  /// Stamps total_ns and surrenders the trace.
  [[nodiscard]] QueryTrace take() {
    trace_.total_ns = now_ns() - trace_.start_ns;
    return std::move(trace_);
  }

 private:
  QueryTrace trace_;
};

/// RAII span: times construction → destruction into `builder` (no-op on
/// null, without reading the clock).
class TraceScope {
 public:
  TraceScope(TraceBuilder* builder, const char* name) : builder_(builder), name_(name) {
    if (builder_ != nullptr) start_ns_ = now_ns();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() {
    if (builder_ != nullptr) builder_->add_span(name_, start_ns_, now_ns() - start_ns_, detail_);
  }

  void set_detail(std::uint64_t detail) { detail_ = detail; }

 private:
  TraceBuilder* builder_;
  const char* name_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t detail_ = 0;
};

/// Fans one batch-stage span out to every traced member of a coalesced
/// batch (usually zero members — the empty sink is two pointer reads).
class TraceSink {
 public:
  TraceSink() = default;

  void attach(TraceBuilder* builder) {
    if (builder != nullptr) builders_.push_back(builder);
  }
  [[nodiscard]] bool empty() const { return builders_.empty(); }

  void add_span(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
                std::uint64_t detail = 0) const {
    for (TraceBuilder* b : builders_) b->add_span(name, start_ns, dur_ns, detail);
  }

 private:
  std::vector<TraceBuilder*> builders_;
};

/// RAII batch-stage span over a TraceSink; skips the clock when no batch
/// member is traced.
class SinkScope {
 public:
  SinkScope(const TraceSink& sink, const char* name) : sink_(sink), name_(name) {
    if (!sink_.empty()) start_ns_ = now_ns();
  }
  SinkScope(const SinkScope&) = delete;
  SinkScope& operator=(const SinkScope&) = delete;
  ~SinkScope() {
    if (!sink_.empty()) sink_.add_span(name_, start_ns_, now_ns() - start_ns_, detail_);
  }

  void set_detail(std::uint64_t detail) { detail_ = detail; }

 private:
  const TraceSink& sink_;
  const char* name_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t detail_ = 0;
};

/// Sampling gate + ring buffer of recent traces.  One per service.
class Tracer {
 public:
  explicit Tracer(std::uint64_t sample_every = 0, std::size_t capacity = 256)
      : sample_every_(sample_every), capacity_(capacity == 0 ? 1 : capacity) {}

  /// 0 disables rate sampling (per-call force still works); N samples
  /// every Nth query.
  void set_sample_every(std::uint64_t n) { sample_every_.store(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Null unless this query is sampled (or `force`d).  The common
  /// untraced path is one relaxed load + branch.
  [[nodiscard]] std::unique_ptr<TraceBuilder> begin(bool force = false) {
    const std::uint64_t every = sample_every_.load(std::memory_order_relaxed);
    if (!force && every == 0) return nullptr;
    const std::uint64_t seq = next_id_.fetch_add(1, std::memory_order_relaxed);
    if (!force && seq % every != 0) return nullptr;
    return std::make_unique<TraceBuilder>(seq);
  }

  /// Lands a finished query's trace in the ring (oldest evicted first).
  void finish(std::unique_ptr<TraceBuilder> builder);

  /// The ring's contents, oldest first.
  [[nodiscard]] std::vector<QueryTrace> recent() const;

  /// {"traces": [{id, start_ns, total_ns, spans: [{name, start_ns,
  /// dur_ns, detail}...]}...]}
  [[nodiscard]] static std::string to_json(std::span<const QueryTrace> traces);
  /// chrome://tracing "traceEvents" format: one complete ("ph":"X")
  /// event per span, microsecond timestamps, one tid per query.
  [[nodiscard]] static std::string to_chrome(std::span<const QueryTrace> traces);

 private:
  std::atomic<std::uint64_t> sample_every_;
  std::atomic<std::uint64_t> next_id_{0};
  std::size_t capacity_;
  mutable std::mutex mutex_;  ///< guards the ring; traced queries only
  std::vector<QueryTrace> ring_;
  std::size_t ring_next_ = 0;
};

}  // namespace dknn::obs

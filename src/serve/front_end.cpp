#include "serve/front_end.hpp"

#include <algorithm>
#include <utility>

#include "data/validate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/panic.hpp"

namespace dknn {
namespace {

struct FrontEndMetrics {
  obs::Counter& queries = obs::registry().counter(
      "dknn_frontend_queries_total", "queries answered by any QueryFrontEnd");
  obs::Counter& batches = obs::registry().counter(
      "dknn_frontend_batches_total", "micro-batches executed");
  obs::Counter& cache_hits = obs::registry().counter(
      "dknn_frontend_cache_hits_total", "answers served from the epoch result cache");
  obs::Counter& cache_misses = obs::registry().counter(
      "dknn_frontend_cache_misses_total", "answers that ran the kernels");
  obs::Counter& degraded_queries = obs::registry().counter(
      "dknn_frontend_degraded_queries_total", "queries answered degraded by the health gate");
  obs::Counter& missing_machines = obs::registry().counter(
      "dknn_frontend_missing_machines_total",
      "machines absent from answer coverage, summed per query");
  obs::Histogram& seat_wait = obs::registry().histogram(
      "dknn_frontend_seat_wait_ns", "enqueue -> batch execution start, per coalesced query");
  obs::Histogram& batch_size = obs::registry().histogram(
      "dknn_frontend_batch_size", "effective micro-batch sizes (queries per execute)");
};

FrontEndMetrics& front_end_metrics() {
  static FrontEndMetrics m;
  return m;
}

}  // namespace

QueryFrontEnd::QueryFrontEnd(const SegmentStore& store, FrontEndConfig config)
    : store_(store), config_(config), cache_(config.cache_capacity) {
  require_positive_ell(config_.ell);
  DKNN_REQUIRE(config_.max_batch >= 1, "QueryFrontEnd: max_batch must be positive");
}

ServeQueryResult QueryFrontEnd::query(const PointD& query) {
  Pending slot;
  slot.query = &query;
  if (obs::registry().enabled()) slot.enqueue_ns = obs::now_ns();
  std::unique_lock<std::mutex> lock(batch_mutex_);
  queue_.push_back(&slot);
  batch_cv_.notify_all();  // a collecting leader may be waiting for company
  for (;;) {
    if (slot.done) return std::move(slot.result);
    if (!leader_active_) break;  // a leader seat is free and our slot is still queued
    batch_cv_.wait(lock);
  }

  // Leader: collect companions up to max_batch or the coalescing deadline,
  // then score the whole batch outside the lock.
  leader_active_ = true;
  if (config_.max_delay.count() > 0) {
    const auto deadline = std::chrono::steady_clock::now() + config_.max_delay;
    while (queue_.size() < config_.max_batch &&
           batch_cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
    }
  }
  // Take at most max_batch slots: an arrival storm while the seat was
  // occupied can queue more than max_batch, and the leader must not score
  // an unbounded batch.  The leader's own slot always rides in its batch
  // (it returns its result after this one execute), joined by the oldest
  // queued companions; the remainder stays queued — one of its owners is
  // elected leader by the post-publish notify_all below.
  queue_.erase(std::find(queue_.begin(), queue_.end(), &slot));
  const std::size_t take = std::min(queue_.size(), config_.max_batch - 1);
  std::vector<Pending*> batch(queue_.begin(),
                              queue_.begin() + static_cast<std::ptrdiff_t>(take));
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(take));
  batch.push_back(&slot);
  lock.unlock();
  execute(batch);
  lock.lock();
  // Publish results under the lock (followers read `done` + `result` under
  // it), retire the leader seat, and wake everyone: batch members return,
  // queries that arrived mid-execute elect the next leader.
  for (Pending* pending : batch) pending->done = true;
  leader_active_ = false;
  batch_cv_.notify_all();
  return std::move(slot.result);
}

std::vector<ServeQueryResult> QueryFrontEnd::query_batch(std::span<const PointD> queries) {
  std::vector<Pending> slots(queries.size());
  std::vector<Pending*> batch(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    slots[q].query = &queries[q];
    batch[q] = &slots[q];
  }
  if (!batch.empty()) execute(batch);
  std::vector<ServeQueryResult> results;
  results.reserve(slots.size());
  for (Pending& slot : slots) results.push_back(std::move(slot.result));
  return results;
}

void QueryFrontEnd::execute(std::span<Pending*> batch) {
  const auto batch_size = static_cast<std::uint32_t>(batch.size());
  FrontEndMetrics& metrics = front_end_metrics();
  metrics.batch_size.record(batch_size);
  if (obs::registry().enabled()) {
    const std::uint64_t start_ns = obs::now_ns();
    for (const Pending* pending : batch) {
      if (pending->enqueue_ns != 0) metrics.seat_wait.record(start_ns - pending->enqueue_ns);
    }
  }

  // Health gate first: the probe may flip the machine Dead (bumping the
  // generation), and the cache epoch below must see the settled value —
  // probing after computing the key could serve a healthy-keyed answer
  // for a batch that already observed the failure.
  if (config_.health != nullptr && !config_.health->check_call(config_.machine).ok()) {
    Coverage degraded;
    degraded.total = 1;
    degraded.missing = {config_.machine};
    // Stamp the real snapshot epoch, not a 0 sentinel: 0 is a legitimate
    // epoch (a fresh store), so it cannot double as "degraded" — the
    // degradation signal is coverage (missing non-empty), and the epoch
    // keeps meaning "the store state this answer is exact for" (an empty
    // answer over zero reachable shards is exact for any epoch, so the
    // current one is the honest stamp).
    const std::uint64_t store_epoch = store_.epoch();
    for (Pending* pending : batch) {
      pending->result.keys.clear();
      pending->result.epoch = store_epoch;
      pending->result.cache_hit = false;
      pending->result.batch_size = batch_size;
      pending->result.coverage = degraded;
    }
    metrics.queries.add(batch_size);
    metrics.batches.add();
    metrics.degraded_queries.add(batch_size);
    metrics.missing_machines.add(batch_size);  // one store per front end
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    queries_ += batch_size;
    batches_ += 1;
    degraded_ += 1;
    degraded_queries_ += batch_size;
    return;
  }

  const SnapshotPtr snapshot = store_.snapshot();
  Coverage full;
  full.total = 1;
  // Cache entries are keyed on snapshot epoch *plus* health generation:
  // both only grow, so equal sums imply the same (data, liveness) state —
  // an answer cached while degraded-then-recovered can never collide with
  // a healthy one.
  const std::uint64_t epoch =
      snapshot->epoch + (config_.health != nullptr ? config_.health->generation() : 0);

  // Cache pass: fill hits, collect misses.  A disabled cache skips the
  // coord-bits materialization and cache locking entirely — the
  // latency-critical cache_capacity = 0 configuration pays nothing here.
  std::vector<Pending*> misses;
  std::vector<std::vector<std::uint64_t>> miss_keys;
  const bool caching = cache_.capacity() > 0;
  if (!caching) {
    misses.assign(batch.begin(), batch.end());
    // Stats convention (see result_cache.hpp): every answer that runs the
    // kernels is a cache miss even with the cache disabled, so the cache's
    // own counters reconcile with FrontEndStats on every configuration.
    cache_.note_bypass(misses.size());
  } else {
    for (Pending* pending : batch) {
      auto bits = query_coord_bits(*pending->query);
      if (auto cached = cache_.lookup(bits, epoch); cached.has_value()) {
        pending->result.keys = std::move(*cached);
        pending->result.epoch = snapshot->epoch;
        pending->result.cache_hit = true;
        pending->result.batch_size = batch_size;
        pending->result.coverage = full;
      } else {
        misses.push_back(pending);
        miss_keys.push_back(std::move(bits));
      }
    }
  }

  if (!misses.empty()) {
    std::vector<PointD> queries;
    queries.reserve(misses.size());
    for (const Pending* pending : misses) queries.push_back(*pending->query);
    KernelScratch scratch;
    std::vector<std::vector<Key>> out;
    snapshot_top_ell_batch(*snapshot, queries, config_.ell, config_.kind, out, scratch);
    if (caching) cache_.make_room(misses.size(), epoch);
    for (std::size_t i = 0; i < misses.size(); ++i) {
      misses[i]->result.keys = std::move(out[i]);
      misses[i]->result.epoch = snapshot->epoch;
      misses[i]->result.cache_hit = false;
      misses[i]->result.batch_size = batch_size;
      misses[i]->result.coverage = full;
      if (caching) {
        cache_.insert(std::move(miss_keys[i]), epoch, misses[i]->result.keys);
      }
    }
  }

  metrics.queries.add(batch_size);
  metrics.batches.add();
  metrics.cache_hits.add(batch_size - misses.size());
  metrics.cache_misses.add(misses.size());
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  queries_ += batch_size;
  batches_ += 1;
  kernel_misses_ += misses.size();
}

FrontEndStats QueryFrontEnd::stats() const {
  const ResultCacheStats cache = cache_.stats();
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  FrontEndStats stats;
  stats.queries = queries_;
  stats.batches = batches_;
  // hits/misses both derive from counters updated under stats_mutex_ at
  // batch completion, so they are mutually consistent even while another
  // batch is mid-flight (the cache's own counters move earlier, inside
  // lookup, and would tear against queries_).
  stats.cache_hits = queries_ - kernel_misses_ - degraded_queries_;
  stats.cache_misses = kernel_misses_;
  stats.cache_flushes = cache.flushes;
  stats.degraded_batches = degraded_;
  return stats;
}

}  // namespace dknn

#include "serve/front_end.hpp"

#include <bit>
#include <utility>

#include "support/panic.hpp"

namespace dknn {
namespace {

/// The query's coordinate bit patterns — the cache key.
std::vector<std::uint64_t> coord_bits(const PointD& query) {
  std::vector<std::uint64_t> bits;
  bits.reserve(query.dim());
  for (const double c : query.coords) bits.push_back(std::bit_cast<std::uint64_t>(c));
  return bits;
}

}  // namespace

std::size_t QueryFrontEnd::CoordsHash::operator()(
    const std::vector<std::uint64_t>& bits) const {
  // splitmix64-style avalanche fold — cheap and well-mixed for IEEE bits.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL + bits.size();
  for (std::uint64_t w : bits) {
    w += h;
    w = (w ^ (w >> 30)) * 0xbf58476d1ce4e5b9ULL;
    w = (w ^ (w >> 27)) * 0x94d049bb133111ebULL;
    h = w ^ (w >> 31);
  }
  return static_cast<std::size_t>(h);
}

QueryFrontEnd::QueryFrontEnd(const SegmentStore& store, FrontEndConfig config)
    : store_(store), config_(config) {
  DKNN_REQUIRE(config_.ell >= 1, "QueryFrontEnd: ell must be positive");
  DKNN_REQUIRE(config_.max_batch >= 1, "QueryFrontEnd: max_batch must be positive");
}

ServeQueryResult QueryFrontEnd::query(const PointD& query) {
  Pending slot;
  slot.query = &query;
  std::unique_lock<std::mutex> lock(batch_mutex_);
  queue_.push_back(&slot);
  batch_cv_.notify_all();  // a collecting leader may be waiting for company
  for (;;) {
    if (slot.done) return std::move(slot.result);
    if (!leader_active_) break;  // a leader seat is free and our slot is still queued
    batch_cv_.wait(lock);
  }

  // Leader: collect companions up to max_batch or the coalescing deadline,
  // then score the whole batch outside the lock.
  leader_active_ = true;
  if (config_.max_delay.count() > 0) {
    const auto deadline = std::chrono::steady_clock::now() + config_.max_delay;
    while (queue_.size() < config_.max_batch &&
           batch_cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
    }
  }
  std::vector<Pending*> batch = std::move(queue_);
  queue_.clear();
  lock.unlock();
  execute(batch);
  lock.lock();
  // Publish results under the lock (followers read `done` + `result` under
  // it), retire the leader seat, and wake everyone: batch members return,
  // queries that arrived mid-execute elect the next leader.
  for (Pending* pending : batch) pending->done = true;
  leader_active_ = false;
  batch_cv_.notify_all();
  return std::move(slot.result);
}

std::vector<ServeQueryResult> QueryFrontEnd::query_batch(std::span<const PointD> queries) {
  std::vector<Pending> slots(queries.size());
  std::vector<Pending*> batch(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    slots[q].query = &queries[q];
    batch[q] = &slots[q];
  }
  if (!batch.empty()) execute(batch);
  std::vector<ServeQueryResult> results;
  results.reserve(slots.size());
  for (Pending& slot : slots) results.push_back(std::move(slot.result));
  return results;
}

void QueryFrontEnd::execute(std::span<Pending*> batch) {
  const SnapshotPtr snapshot = store_.snapshot();
  const auto batch_size = static_cast<std::uint32_t>(batch.size());
  std::uint64_t hits = 0;
  std::uint64_t flushes = 0;

  // Cache pass: fill hits, collect misses.
  std::vector<Pending*> misses;
  std::vector<std::vector<std::uint64_t>> miss_keys;
  if (config_.cache_capacity == 0) {
    misses.assign(batch.begin(), batch.end());
  } else {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    if (cache_epoch_ != snapshot->epoch) {
      // Any snapshot advance invalidates every entry: the live set (or at
      // least the epoch the answer is stamped with) changed.
      if (!cache_.empty()) ++flushes;
      cache_.clear();
      cache_epoch_ = snapshot->epoch;
    }
    for (Pending* pending : batch) {
      auto bits = coord_bits(*pending->query);
      if (const auto it = cache_.find(bits); it != cache_.end()) {
        pending->result.keys = it->second;
        pending->result.epoch = snapshot->epoch;
        pending->result.cache_hit = true;
        pending->result.batch_size = batch_size;
        ++hits;
      } else {
        misses.push_back(pending);
        miss_keys.push_back(std::move(bits));
      }
    }
  }

  if (!misses.empty()) {
    std::vector<PointD> queries;
    queries.reserve(misses.size());
    for (const Pending* pending : misses) queries.push_back(*pending->query);
    KernelScratch scratch;
    std::vector<std::vector<Key>> out;
    snapshot_top_ell_batch(*snapshot, queries, config_.ell, config_.kind, out, scratch);
    for (std::size_t i = 0; i < misses.size(); ++i) {
      misses[i]->result.keys = std::move(out[i]);
      misses[i]->result.epoch = snapshot->epoch;
      misses[i]->result.cache_hit = false;
      misses[i]->result.batch_size = batch_size;
    }
    if (config_.cache_capacity > 0) {
      const std::lock_guard<std::mutex> lock(cache_mutex_);
      // Only publish answers that are still current: a concurrent execute
      // against a newer snapshot may have re-tagged the cache.
      if (cache_epoch_ == snapshot->epoch) {
        if (cache_.size() + misses.size() > config_.cache_capacity) {
          ++flushes;  // generation reset; see FrontEndConfig::cache_capacity
          cache_.clear();
        }
        for (std::size_t i = 0; i < misses.size(); ++i) {
          if (cache_.size() >= config_.cache_capacity) break;
          cache_.emplace(std::move(miss_keys[i]), misses[i]->result.keys);
        }
      }
    }
  }

  const std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.queries += batch_size;
  stats_.batches += 1;
  stats_.cache_hits += hits;
  stats_.cache_misses += misses.size();
  stats_.cache_flushes += flushes;
}

FrontEndStats QueryFrontEnd::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace dknn

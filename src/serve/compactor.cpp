#include "serve/compactor.hpp"

#include <utility>

namespace dknn {

Compactor::Compactor(SegmentStore& store, ThreadPool& pool, CompactionConfig config)
    : store_(store), pool_(pool), config_(config), group_(pool) {}

Compactor::~Compactor() {
  // wait_idle rethrows job exceptions; a throwing destructor would
  // terminate, so swallow here — callers who care drain() explicitly.
  try {
    drain();
  } catch (...) {
  }
}

bool Compactor::maybe_schedule() {
  bool expected = false;
  if (!in_flight_.compare_exchange_strong(expected, true)) return false;
  SegmentStore::CompactionPlan plan = store_.plan_compaction(config_);
  if (plan.empty()) {
    in_flight_.store(false);
    return false;
  }
  scheduled_.fetch_add(1);
  group_.submit([this, plan = std::move(plan)] {
    // Reset in-flight even if the merge throws (e.g. bad_alloc on a large
    // victim set) — the exception surfaces at the next drain(), but a
    // stuck flag would silently disable compaction forever.
    struct ResetInFlight {
      std::atomic<bool>& flag;
      ~ResetInFlight() { flag.store(false); }
    } reset{in_flight_};
    // Pure merge over frozen views — the only lock-touching steps are the
    // plan (already taken) and the install below.
    auto merged = SegmentStore::merge_segments(plan.victims, store_.config());
    const bool installed = store_.install_compaction(plan, std::move(merged));
    if (installed) {
      installed_.fetch_add(1);
    } else {
      aborted_.fetch_add(1);
    }
    if (on_complete_) on_complete_(installed);
  });
  return true;
}

void Compactor::drain() { group_.wait(); }

void Compactor::set_on_complete(std::function<void(bool)> hook) {
  on_complete_ = std::move(hook);
}

Compactor::Stats Compactor::stats() const {
  return Stats{scheduled_.load(), installed_.load(), aborted_.load()};
}

}  // namespace dknn

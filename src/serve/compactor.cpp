#include "serve/compactor.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace dknn {
namespace {

struct CompactorMetrics {
  obs::Counter& scheduled = obs::registry().counter(
      "dknn_compaction_scheduled_total", "background compaction rounds scheduled");
  obs::Counter& installed = obs::registry().counter(
      "dknn_compaction_installs_scheduled_total",
      "background rounds whose install landed (racing erases abort the rest)");
  obs::Counter& aborted = obs::registry().counter(
      "dknn_compaction_aborts_total", "background rounds aborted by a racing mutation");
  obs::Gauge& debt = obs::registry().gauge(
      "dknn_compaction_debt", "rows a full compaction would rewrite or drop, summed over "
                              "stores with a Compactor (refreshed per scheduling decision)");
};

CompactorMetrics& compactor_metrics() {
  static CompactorMetrics m;
  return m;
}

}  // namespace

Compactor::Compactor(SegmentStore& store, ThreadPool& pool, CompactionConfig config)
    : store_(store), pool_(pool), config_(config), group_(pool) {}

Compactor::~Compactor() {
  // wait_idle rethrows job exceptions; a throwing destructor would
  // terminate, so swallow here — callers who care drain() explicitly.
  try {
    drain();
  } catch (...) {
  }
  refresh_debt_gauge(0);
}

/// Moves this compactor's slice of the process-wide debt gauge to
/// `debt_now` (delta-tracked so several compactors sum correctly).
void Compactor::refresh_debt_gauge(std::uint64_t debt_now) {
  if (!obs::registry().enabled()) return;
  const auto now = static_cast<std::int64_t>(debt_now);
  const std::int64_t before = obs_debt_published_.exchange(now, std::memory_order_relaxed);
  compactor_metrics().debt.add(now - before);
}

bool Compactor::maybe_schedule() {
  bool expected = false;
  if (!in_flight_.compare_exchange_strong(expected, true)) return false;
  SegmentStore::CompactionPlan plan = store_.plan_compaction(config_);
  refresh_debt_gauge(store_.compaction_debt(config_));
  if (plan.empty()) {
    in_flight_.store(false);
    return false;
  }
  scheduled_.fetch_add(1);
  compactor_metrics().scheduled.add();
  group_.submit([this, plan = std::move(plan)] {
    // Reset in-flight even if the merge throws (e.g. bad_alloc on a large
    // victim set) — the exception surfaces at the next drain(), but a
    // stuck flag would silently disable compaction forever.
    struct ResetInFlight {
      std::atomic<bool>& flag;
      ~ResetInFlight() { flag.store(false); }
    } reset{in_flight_};
    // Pure merge over frozen views — the only lock-touching steps are the
    // plan (already taken) and the install below.
    auto merged = SegmentStore::merge_segments(plan.victims, store_.config());
    const bool installed = store_.install_compaction(plan, std::move(merged));
    if (installed) {
      installed_.fetch_add(1);
      compactor_metrics().installed.add();
    } else {
      aborted_.fetch_add(1);
      compactor_metrics().aborted.add();
    }
    refresh_debt_gauge(store_.compaction_debt(config_));
    if (on_complete_) on_complete_(installed);
  });
  return true;
}

void Compactor::drain() { group_.wait(); }

void Compactor::set_on_complete(std::function<void(bool)> hook) {
  on_complete_ = std::move(hook);
}

Compactor::Stats Compactor::stats() const {
  return Stats{scheduled_.load(), installed_.load(), aborted_.load()};
}

}  // namespace dknn

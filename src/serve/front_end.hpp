#pragma once
/// \file front_end.hpp
/// \brief Dynamic-batching query front end over a SegmentStore.
///
/// The fused batch kernels amortize column streaming across a whole query
/// block (PR 1's headline win), but live traffic arrives one query at a
/// time on many threads.  `QueryFrontEnd` closes that gap with
/// leader-follower micro-batching: concurrently submitted queries coalesce
/// into one batch — the first arrival becomes the batch *leader*, waits up
/// to `max_delay` for `max_batch` companions, snapshots the store once,
/// and scores everyone through `snapshot_top_ell_batch`; followers just
/// block until their slot is filled.  Under load, batches fill instantly
/// and the per-query kernel cost approaches the batch path's; when idle, a
/// lone query pays at most `max_delay` extra latency (set it to zero for
/// latency-critical, batch-averse deployments).
///
/// An epoch-keyed result cache (serve/result_cache.hpp — shared with the
/// KnnService facade) sits in front of the kernels: entries are keyed by
/// the query's coordinate bits and tagged with the snapshot epoch they
/// were computed at; any snapshot advance (insert / delete / seal /
/// compact — each publishes a new epoch) invalidates the whole cache, so a
/// hit is always byte-identical to recomputing against the current
/// snapshot.  Caching is sound *because* results are deterministic — the
/// same frozen snapshot yields the same bytes every time.
///
/// Determinism note: batching changes neither bytes nor ordering semantics
/// (each result is a pure function of snapshot + query), only which
/// snapshot a query happens to see — exactly as if it had arrived a hair
/// earlier or later.  Thread-safety: all public methods may be called
/// concurrently; the referenced SegmentStore must outlive the front end.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "data/kernels.hpp"
#include "data/key.hpp"
#include "data/metric_kind.hpp"
#include "data/point.hpp"
#include "fault/health.hpp"
#include "serve/result_cache.hpp"
#include "serve/segment_store.hpp"

namespace dknn {

struct FrontEndConfig {
  /// ℓ of every answer (min(ℓ, live) keys ascending).
  std::size_t ell = 8;
  MetricKind kind = MetricKind::SquaredEuclidean;
  /// Queries per micro-batch; a full batch flushes immediately.
  std::size_t max_batch = 32;
  /// How long a batch leader waits for companions.  0 = no coalescing
  /// delay (batches only form from queries already queued).
  std::chrono::microseconds max_delay{200};
  /// Result-cache entries; 0 disables the cache.  The cache is flushed
  /// wholesale on epoch advance and when full (generation reset — the
  /// entries are cheap to recompute and an LRU chain is not worth the
  /// locked-path cost).
  std::size_t cache_capacity = 4096;
  /// Optional machine-health gate: when set, every batch first runs the
  /// deadline/retry probe for `machine`; a dead or timed-out machine
  /// degrades the whole batch (empty keys, coverage reports the miss)
  /// instead of touching the store.  The cache keys on snapshot epoch plus
  /// health generation, so a degraded answer is never served after the
  /// machine recovers and vice versa.  Borrowed; must outlive the front
  /// end.  nullptr = no gate (byte-identical to the pre-fault front end).
  MachineHealth* health = nullptr;
  /// This front end's machine id in `health`'s registry.
  std::uint32_t machine = 0;
};

/// One query's answer plus its provenance.
struct ServeQueryResult {
  std::vector<Key> keys;        ///< min(ℓ, live) best keys, ascending
  /// Snapshot epoch the answer is exact for — on the degraded path too
  /// (the health gate's empty answer is stamped with the store's current
  /// epoch; degradation is signalled by `coverage`, never by the epoch, so
  /// a degraded answer and a legitimate fresh-store epoch-0 answer stay
  /// distinguishable).
  std::uint64_t epoch = 0;
  bool cache_hit = false;
  std::uint32_t batch_size = 0; ///< micro-batch this query rode in
  /// Which machines answered (total=1 here — one store per front end);
  /// complete() unless the health gate declared this machine unreachable.
  Coverage coverage;
};

struct FrontEndStats {
  std::uint64_t queries = 0;       ///< total submitted
  std::uint64_t batches = 0;       ///< micro-batches executed
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;  ///< answers that ran the kernels
  std::uint64_t cache_flushes = 0; ///< epoch-advance + capacity resets
  std::uint64_t degraded_batches = 0;  ///< batches the health gate refused
};

class QueryFrontEnd {
 public:
  /// Borrows `store` for its lifetime.
  QueryFrontEnd(const SegmentStore& store, FrontEndConfig config);

  /// Blocking single-query entry: coalesces with concurrent callers into
  /// a micro-batch, returns this query's slice of the batch answer.
  [[nodiscard]] ServeQueryResult query(const PointD& query);

  /// Explicit batch entry (a caller that already has a block skips the
  /// coalescing wait): one snapshot, one kernel pass, same cache.
  [[nodiscard]] std::vector<ServeQueryResult> query_batch(std::span<const PointD> queries);

  [[nodiscard]] FrontEndStats stats() const;
  [[nodiscard]] const FrontEndConfig& config() const { return config_; }

 private:
  struct Pending {
    const PointD* query = nullptr;
    ServeQueryResult result;
    bool done = false;
    /// Coalescing-seat enqueue time (0 = untimed, e.g. the explicit batch
    /// entry) — execute() turns it into the seat-wait histogram sample.
    std::uint64_t enqueue_ns = 0;
  };

  /// Scores `batch` against one fresh snapshot, consulting/filling the
  /// cache.  Called without batch_mutex_ held.
  void execute(std::span<Pending*> batch);

  const SegmentStore& store_;
  FrontEndConfig config_;

  // --- micro-batching ---------------------------------------------------
  std::mutex batch_mutex_;
  std::condition_variable batch_cv_;  ///< arrivals, completions, leader hand-off
  std::vector<Pending*> queue_;       ///< guarded by batch_mutex_
  bool leader_active_ = false;        ///< guarded by batch_mutex_

  // --- epoch-keyed result cache (shared type with KnnService) -----------
  // ℓ and metric are fixed per front end, so the coordinate bits alone key
  // an entry.
  mutable EpochResultCache cache_;

  // --- stats ------------------------------------------------------------
  mutable std::mutex stats_mutex_;
  std::uint64_t queries_ = 0;        ///< total submitted
  std::uint64_t batches_ = 0;        ///< micro-batches executed
  std::uint64_t kernel_misses_ = 0;  ///< answers that ran the kernels
  std::uint64_t degraded_ = 0;         ///< batches the health gate refused
  std::uint64_t degraded_queries_ = 0; ///< queries inside those batches
};

}  // namespace dknn

#pragma once
/// \file result_cache.hpp
/// \brief Epoch-keyed query-result cache shared by the serve front end and
///        the KnnService facade.
///
/// Caching exact-ℓ-NN answers is sound *because* every scoring path in
/// this repo is deterministic: the same frozen snapshot yields the same
/// bytes every time, so an entry tagged with the epoch it was computed at
/// is byte-identical to recomputing for as long as that epoch is current.
/// Any epoch advance (insert / delete / seal / compact — each publishes a
/// new epoch) invalidates the whole cache; a hit therefore never serves a
/// stale answer.
///
/// Entries are keyed by the query's coordinate *bit patterns*:
/// bit-identical queries share an entry; distinct-but-equal encodings
/// (-0.0 vs 0.0) simply don't, which is always sound.  ℓ and metric are
/// fixed per QueryFrontEnd, so the front end keys on the bits alone; the
/// KnnService facade supports per-call ℓ/metric overrides and appends both
/// as two extra words to every key, so an overridden call can never
/// collide with a canonical one (key lengths are uniform per owner — the
/// two conventions never share a cache).
///
/// Stats convention (asserted across all owners in tests): every answer
/// that had to run the kernels counts as a cache miss, *including* when
/// the cache is disabled (capacity 0).  lookup() already counts the miss
/// on the disabled path; owners that skip lookup entirely for speed must
/// call note_bypass() instead, so ResultCacheStats always reconciles with
/// the owner's own counters (hits + misses = answers produced).
///
/// Eviction is a wholesale generation reset when full — the entries are
/// cheap to recompute and an LRU chain is not worth the locked-path cost.
/// Thread-safe: all methods may be called concurrently (one internal leaf
/// mutex, held only for map operations, never while anything scores).

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "data/key.hpp"
#include "data/point.hpp"

namespace dknn {

/// The query's coordinate bit patterns — the cache key.
[[nodiscard]] std::vector<std::uint64_t> query_coord_bits(const PointD& query);

struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;    ///< lookups that must run the kernels
  std::uint64_t flushes = 0;   ///< epoch-advance + capacity resets
};

class EpochResultCache {
 public:
  /// `capacity` = 0 disables the cache (every lookup is a miss, inserts
  /// are dropped).
  explicit EpochResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached keys for `bits` iff present and computed at
  /// `epoch`.  A lookup at a newer epoch flushes every stale entry first,
  /// so a hit is always exact for `epoch`.  Counts a hit or a miss.
  [[nodiscard]] std::optional<std::vector<Key>> lookup(const std::vector<std::uint64_t>& bits,
                                                       std::uint64_t epoch);

  /// Capacity pass before publishing a round of `incoming` answers: a
  /// round that would overflow takes ONE generation reset up front (the
  /// entries are cheap to recompute; repeated mid-round flushes would
  /// evict everything hot and keep almost nothing).  No-op when disabled
  /// or already re-tagged past `epoch`.
  void make_room(std::size_t incoming, std::uint64_t epoch);

  /// Publishes an answer computed at `epoch`.  Dropped without effect when
  /// the cache is full (call make_room once per round first), has moved to
  /// a newer epoch (a concurrent lookup re-tagged it), or is disabled.
  void insert(std::vector<std::uint64_t> bits, std::uint64_t epoch, const std::vector<Key>& keys);

  /// Counts `n` misses without probing the map — for owners that bypass
  /// lookup() wholesale (disabled cache, or a transitional liveness state
  /// where caching is unsound) yet still score `n` answers.  Keeps the
  /// miss counter meaning "answers that ran the kernels" on every path.
  void note_bypass(std::size_t n);

  [[nodiscard]] ResultCacheStats stats() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct CoordsHash {
    std::size_t operator()(const std::vector<std::uint64_t>& bits) const;
  };

  std::size_t capacity_ = 0;
  mutable std::mutex mutex_;
  std::unordered_map<std::vector<std::uint64_t>, std::vector<Key>, CoordsHash> entries_;
  std::uint64_t epoch_ = 0;  ///< epoch entries_ are valid for
  ResultCacheStats stats_;
};

}  // namespace dknn

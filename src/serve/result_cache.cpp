#include "serve/result_cache.hpp"

#include <bit>
#include <utility>

#include "obs/metrics.hpp"

namespace dknn {
namespace {

/// Flushes across every EpochResultCache instance (facade caches and
/// front-end caches share this type — and this counter).
obs::Counter& flush_counter() {
  static obs::Counter& c = obs::registry().counter(
      "dknn_cache_flushes_total", "epoch-advance + capacity resets, all result caches");
  return c;
}

}  // namespace

std::vector<std::uint64_t> query_coord_bits(const PointD& query) {
  std::vector<std::uint64_t> bits;
  bits.reserve(query.dim());
  for (const double c : query.coords) bits.push_back(std::bit_cast<std::uint64_t>(c));
  return bits;
}

std::size_t EpochResultCache::CoordsHash::operator()(
    const std::vector<std::uint64_t>& bits) const {
  // splitmix64-style avalanche fold — cheap and well-mixed for IEEE bits.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL + bits.size();
  for (std::uint64_t w : bits) {
    w += h;
    w = (w ^ (w >> 30)) * 0xbf58476d1ce4e5b9ULL;
    w = (w ^ (w >> 27)) * 0x94d049bb133111ebULL;
    h = w ^ (w >> 31);
  }
  return static_cast<std::size_t>(h);
}

std::optional<std::vector<Key>> EpochResultCache::lookup(
    const std::vector<std::uint64_t>& bits, std::uint64_t epoch) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (epoch_ != epoch) {
    // Any snapshot advance invalidates every entry: the live set (or at
    // least the epoch the answer is stamped with) changed.
    if (!entries_.empty()) {
      ++stats_.flushes;
      flush_counter().add();
    }
    entries_.clear();
    epoch_ = epoch;
  }
  if (const auto it = entries_.find(bits); it != entries_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  return std::nullopt;
}

void EpochResultCache::make_room(std::size_t incoming, std::uint64_t epoch) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0 || epoch_ != epoch) return;
  if (entries_.size() + incoming > capacity_ && !entries_.empty()) {
    ++stats_.flushes;  // generation reset; see the header's eviction note
    flush_counter().add();
    entries_.clear();
  }
}

void EpochResultCache::insert(std::vector<std::uint64_t> bits, std::uint64_t epoch,
                              const std::vector<Key>& keys) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Only publish answers that are still current: a concurrent lookup
  // against a newer snapshot may have re-tagged the cache.  A full cache
  // drops the entry — make_room already took this round's one reset.
  if (capacity_ == 0 || epoch_ != epoch || entries_.size() >= capacity_) return;
  entries_.emplace(std::move(bits), keys);
}

void EpochResultCache::note_bypass(std::size_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_.misses += n;
}

ResultCacheStats EpochResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace dknn

#include "serve/segment_store.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <unordered_set>
#include <utility>

#include "ann/graph_search.hpp"
#include "data/validate.hpp"
#include "obs/metrics.hpp"
#include "seq/select.hpp"
#include "support/panic.hpp"

namespace dknn {
namespace {

/// Store-layer instruments, registered once and cached (the registry
/// lookup takes a mutex; the instruments themselves are sharded atomics).
struct StoreMetrics {
  obs::Counter& inserts = obs::registry().counter(
      "dknn_store_inserts_total", "points appended into any SegmentStore delta");
  obs::Counter& erases = obs::registry().counter(
      "dknn_store_erases_total", "successful erases (delta removals + tombstones)");
  obs::Counter& seals = obs::registry().counter(
      "dknn_store_seals_total", "delta seals into immutable segments");
  obs::Counter& publishes = obs::registry().counter(
      "dknn_store_epoch_publishes_total", "snapshot publishes (epoch advances)");
  obs::Counter& compaction_installs = obs::registry().counter(
      "dknn_store_compaction_installs_total", "compaction installs that replaced victims");
  obs::Gauge& live_points = obs::registry().gauge(
      "dknn_store_live_points", "live points across all stores (delta + sealed, minus dead)");
  obs::Gauge& dead_rows = obs::registry().gauge(
      "dknn_store_dead_rows", "tombstoned rows across all stores' sealed segments");
};

StoreMetrics& store_metrics() {
  static StoreMetrics m;
  return m;
}

/// Seals an AoS point set into an immutable segment under `policy`
/// (Approx segments stay flat and carry a lazily-built graph slot when
/// large enough; config.ann supplies the graph knobs).
std::shared_ptr<const SealedSegment> build_segment(std::span<const PointD> points,
                                                   std::span<const PointId> ids,
                                                   ScoringPolicy policy,
                                                   const ServeConfig& config) {
  auto segment = std::make_shared<SealedSegment>();
  const std::size_t n = points.size();
  const std::size_t dim = n == 0 ? 0 : points[0].dim();
  const bool tree = n > 0 && dim >= 1 &&
                    (policy == ScoringPolicy::Tree ||
                     (policy == ScoringPolicy::Auto && tree_pays_off(n, dim)));
  if (tree) {
    segment->tree = std::make_unique<KdRangeIndex>(points, ids, config.leaf_size);
  } else {
    segment->flat = FlatStore(points, ids);
  }
  if (policy == ScoringPolicy::Approx && n >= std::max<std::size_t>(config.ann.min_points, 2)) {
    segment->ann = std::make_shared<ann::GraphSlot>(config.ann);
  }
  const FlatStore& store = segment->store();
  segment->row_of.reserve(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    segment->row_of.emplace(store.id(i), static_cast<std::uint32_t>(i));
  }
  return segment;
}

/// Maximal live-row runs of a tombstone bitmap.
std::shared_ptr<const LiveRuns> compute_live_runs(const std::vector<std::uint8_t>& dead) {
  auto runs = std::make_shared<LiveRuns>();
  std::size_t i = 0;
  while (i < dead.size()) {
    if (dead[i] != 0) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < dead.size() && dead[j] == 0) ++j;
    runs->emplace_back(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j));
    i = j;
  }
  return runs;
}

/// A fresh all-live view around a sealed payload.
SegmentView make_clean_view(std::shared_ptr<const SealedSegment> data,
                            std::uint64_t segment_id) {
  SegmentView view;
  const std::size_t n = data->store().size();
  view.data = std::move(data);
  view.dead = std::make_shared<const std::vector<std::uint8_t>>(n, std::uint8_t{0});
  view.dead_count = 0;
  auto runs = std::make_shared<LiveRuns>();
  if (n > 0) runs->emplace_back(0, static_cast<std::uint32_t>(n));
  view.live_runs = std::move(runs);
  view.segment_id = segment_id;
  return view;
}

}  // namespace

bool ServeSnapshot::contains(PointId id) const {
  for (const SegmentView& seg : segments) {
    const SealedSegment& data = *seg.data;
    if (data.row_of.empty() && !data.store().empty()) {
      // Delta mirror: no id map (an O(delta) rebuild per publish would
      // defeat the O(d) incremental mirror), so scan — the delta is
      // bounded by seal_threshold and tombstone-free.
      const FlatStore& store = data.store();
      for (std::size_t i = 0; i < store.size(); ++i) {
        if (store.id(i) == id) return true;
      }
      continue;
    }
    const auto it = data.row_of.find(id);
    if (it != data.row_of.end() && (*seg.dead)[it->second] == 0) return true;
  }
  return false;
}

SegmentStore::SegmentStore(std::size_t dim, ServeConfig config)
    : dim_(dim), config_(config) {
  DKNN_REQUIRE(dim_ >= 1, "SegmentStore: needs dimension >= 1");
  DKNN_REQUIRE(config_.seal_threshold >= 1, "SegmentStore: seal_threshold must be positive");
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  publish_locked();  // epoch 1: the empty store
}

SegmentStore::~SegmentStore() {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  store_metrics().live_points.sub(obs_live_published_);
  store_metrics().dead_rows.sub(obs_dead_published_);
}

bool SegmentStore::live_in_writer_state(PointId id) const {
  if (delta_rows_.contains(id)) return true;
  for (const SegmentView& seg : segments_) {
    const auto it = seg.data->row_of.find(id);
    if (it != seg.data->row_of.end() && (*seg.dead)[it->second] == 0) return true;
  }
  return false;
}

std::uint64_t SegmentStore::insert(const PointD& point, PointId id) {
  return insert_batch(std::span<const PointD>(&point, 1), std::span<const PointId>(&id, 1));
}

std::uint64_t SegmentStore::insert_batch(std::span<const PointD> points,
                                         std::span<const PointId> ids) {
  DKNN_REQUIRE(points.size() == ids.size(), "SegmentStore: points/ids must align");
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  if (points.empty()) return epoch_;
  std::unordered_set<PointId> batch_ids;
  batch_ids.reserve(ids.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    DKNN_REQUIRE(points[i].dim() == dim_, "SegmentStore: point dimension mismatch");
    // Unique live ids (paper §2): duplicates would break the total Key
    // order every selection algorithm relies on.  Validation runs before
    // any append so a rejected batch leaves the store untouched.
    DKNN_REQUIRE(!live_in_writer_state(ids[i]), "SegmentStore: id already live");
    DKNN_REQUIRE(batch_ids.insert(ids[i]).second, "SegmentStore: duplicate id in batch");
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    delta_rows_.emplace(ids[i], delta_points_.size());
    delta_points_.push_back(points[i]);
    delta_ids_.push_back(ids[i]);
  }
  store_metrics().inserts.add(points.size());
  delta_dirty_ = true;
  if (delta_points_.size() >= config_.seal_threshold) seal_locked();
  return publish_locked();
}

std::optional<std::uint64_t> SegmentStore::erase(PointId id) {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  // Delta hit: physically remove (swap with the last delta row).
  if (const auto it = delta_rows_.find(id); it != delta_rows_.end()) {
    const std::size_t row = it->second;
    const std::size_t last = delta_points_.size() - 1;
    if (row != last) {
      delta_points_[row] = std::move(delta_points_[last]);
      delta_ids_[row] = delta_ids_[last];
      delta_rows_[delta_ids_[row]] = row;
    }
    delta_points_.pop_back();
    delta_ids_.pop_back();
    delta_rows_.erase(it);
    delta_dirty_ = true;
    // The swap-remove rewrote a published mirror row in place, so the
    // current mirror generation's frozen-prefix contract is void: the next
    // publish starts a fresh generation (the rare O(delta·d) path).
    mirror_fresh_needed_ = true;
    store_metrics().erases.add();
    return publish_locked();
  }
  // Sealed hit: copy-on-write tombstone.  An id may appear dead in an old
  // segment and live in a newer one (delete + re-insert), so keep looking
  // past dead occurrences.
  for (SegmentView& seg : segments_) {
    const auto it = seg.data->row_of.find(id);
    if (it == seg.data->row_of.end() || (*seg.dead)[it->second] != 0) continue;
    auto dead = std::make_shared<std::vector<std::uint8_t>>(*seg.dead);
    (*dead)[it->second] = 1;
    seg.live_runs = compute_live_runs(*dead);
    seg.dead = std::move(dead);
    ++seg.dead_count;
    store_metrics().erases.add();
    return publish_locked();
  }
  return std::nullopt;
}

std::uint64_t SegmentStore::seal() {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  if (delta_points_.empty()) return epoch_;
  seal_locked();
  return publish_locked();
}

void SegmentStore::seal_locked() {
  if (delta_points_.empty()) return;
  auto data = build_segment(delta_points_, delta_ids_, config_.policy, config_);
  segments_.push_back(make_clean_view(std::move(data), next_segment_id_++));
  delta_points_.clear();
  delta_ids_.clear();
  delta_rows_.clear();
  delta_dirty_ = true;
  store_metrics().seals.add();
}

std::uint64_t SegmentStore::publish_locked() {
  if (delta_dirty_) {
    // The mirror is a plain FlatStore over writer-owned capacity-strided
    // column buffers (never a tree — the delta is far too short-lived to
    // amortize one).  Inserts only *append* delta rows, so the rows a
    // previous publish exposed are already in the buffers and frozen;
    // syncing the tail costs O(d) per new row instead of the historical
    // O(delta·d) rebuild.  A delta erase rewrites a published row
    // (swap-remove), which voids the generation: a fresh buffer is
    // allocated and fully recopied, while snapshots holding the old
    // generation keep it alive untouched.
    const std::size_t n = delta_points_.size();
    if (n == 0) {
      delta_mirror_ = nullptr;
      mirror_coords_ = nullptr;
      mirror_ids_ = nullptr;
      mirror_zero_dead_ = nullptr;
      mirror_cap_ = 0;
      mirror_synced_ = 0;
      mirror_fresh_needed_ = false;
    } else {
      if (mirror_fresh_needed_ || mirror_coords_ == nullptr || n > mirror_cap_) {
        mirror_cap_ = std::max<std::size_t>(config_.seal_threshold, std::bit_ceil(n));
        mirror_coords_ = std::make_shared<std::vector<double>>(dim_ * mirror_cap_);
        mirror_ids_ = std::make_shared<std::vector<PointId>>(mirror_cap_);
        mirror_zero_dead_ =
            std::make_shared<const std::vector<std::uint8_t>>(mirror_cap_, std::uint8_t{0});
        mirror_synced_ = 0;
        mirror_fresh_needed_ = false;
      }
      for (std::size_t i = mirror_synced_; i < n; ++i) {
        const PointD& p = delta_points_[i];
        for (std::size_t j = 0; j < dim_; ++j) {
          (*mirror_coords_)[j * mirror_cap_ + i] = p[j];
        }
        (*mirror_ids_)[i] = delta_ids_[i];
      }
      mirror_copied_bytes_ +=
          static_cast<std::uint64_t>(n - mirror_synced_) * dim_ * sizeof(double);
      mirror_synced_ = n;
      auto mirror = std::make_shared<SealedSegment>();
      mirror->flat = FlatStore(mirror_coords_, mirror_ids_, n, dim_, mirror_cap_);
      // row_of deliberately left empty — ServeSnapshot::contains scans the
      // mirror instead (see the fallback there).
      delta_mirror_ = std::move(mirror);
    }
    delta_dirty_ = false;
  }
  auto next = std::make_shared<ServeSnapshot>();
  next->epoch = ++epoch_;
  next->dim = dim_;
  next->segments = segments_;
  if (delta_mirror_ != nullptr) {
    // Present the delta as one more (tombstone-free) segment so queries
    // treat every point source uniformly.  Id 0 is reserved for it —
    // sealed segments start at 1 — so compaction can never mistake the
    // mirror for a victim.  The view is hand-built (not make_clean_view)
    // so the all-zero dead bitmap is shared per generation instead of
    // allocated O(n) per publish.
    SegmentView view;
    view.data = delta_mirror_;
    view.dead = mirror_zero_dead_;
    view.dead_count = 0;
    auto runs = std::make_shared<LiveRuns>();
    runs->emplace_back(0, static_cast<std::uint32_t>(delta_mirror_->store().size()));
    view.live_runs = std::move(runs);
    view.segment_id = 0;
    next->segments.push_back(std::move(view));
  }
  for (const SegmentView& seg : next->segments) next->live_points += seg.live();
  {
    StoreMetrics& m = store_metrics();
    m.publishes.add();
    // Delta-tracked gauges: contribute the change since this store's last
    // publish, so the merged gauge is the sum over all live stores.  Only
    // advance the book-kept baseline while enabled — gauge adds are
    // dropped when disabled, and a silently advanced baseline would make
    // the gauge drift on re-enable.
    if (obs::registry().enabled()) {
      std::int64_t dead = 0;
      for (const SegmentView& seg : segments_) dead += static_cast<std::int64_t>(seg.dead_count);
      const auto live = static_cast<std::int64_t>(next->live_points);
      m.live_points.add(live - obs_live_published_);
      m.dead_rows.add(dead - obs_dead_published_);
      obs_live_published_ = live;
      obs_dead_published_ = dead;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    published_ = std::move(next);
  }
  return epoch_;
}

std::size_t SegmentStore::segment_count() const {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  return segments_.size();
}

std::uint64_t SegmentStore::dead_rows() const {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  std::uint64_t dead = 0;
  for (const SegmentView& seg : segments_) dead += seg.dead_count;
  return dead;
}

TreeStats SegmentStore::tree_stats() const {
  TreeStats out;
  {
    // The base holds every compaction-retired segment's counters, so the
    // total stays monotone across installs instead of silently shrinking.
    const std::lock_guard<std::mutex> lock(writer_mutex_);
    out += retired_tree_base_;
  }
  // Snapshot, not writer state: counters belong to the segments queries
  // actually traverse, and snapshot() is wait-free w.r.t. writers.
  const SnapshotPtr snap = snapshot();
  for (const SegmentView& seg : snap->segments) {
    if (seg.data->tree != nullptr) out += seg.data->tree->stats();
  }
  return out;
}

void SegmentStore::reset_tree_stats() const {
  {
    const std::lock_guard<std::mutex> lock(writer_mutex_);
    retired_tree_base_ = TreeStats{};
  }
  const SnapshotPtr snap = snapshot();
  for (const SegmentView& seg : snap->segments) {
    if (seg.data->tree != nullptr) seg.data->tree->reset_stats();
  }
}

namespace {

/// Shared victim predicate of plan_compaction / compaction_debt.
bool is_victim(const SegmentView& seg, const CompactionConfig& cfg) {
  if (seg.rows() == 0) return true;
  const double dead_fraction =
      static_cast<double>(seg.dead_count) / static_cast<double>(seg.rows());
  return dead_fraction > cfg.max_dead_fraction || seg.rows() < cfg.min_segment_points;
}

/// Worst-first victim order: most tombstone-heavy, then smallest.
bool victim_before(const SegmentView& a, const SegmentView& b) {
  const double fa = a.rows() == 0 ? 1.0
                                  : static_cast<double>(a.dead_count) /
                                        static_cast<double>(a.rows());
  const double fb = b.rows() == 0 ? 1.0
                                  : static_cast<double>(b.dead_count) /
                                        static_cast<double>(b.rows());
  if (fa != fb) return fa > fb;
  if (a.rows() != b.rows()) return a.rows() < b.rows();
  return a.segment_id < b.segment_id;
}

}  // namespace

SegmentStore::CompactionPlan SegmentStore::plan_compaction(const CompactionConfig& cfg) const {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  CompactionPlan plan;
  for (const SegmentView& seg : segments_) {
    if (is_victim(seg, cfg)) plan.victims.push_back(seg);
  }
  std::sort(plan.victims.begin(), plan.victims.end(), victim_before);
  if (plan.victims.size() > cfg.max_victims) plan.victims.resize(cfg.max_victims);
  // A lone tombstone-free victim is just a small segment with nothing to
  // merge into: rewriting it would produce an identical segment — and
  // because each install publishes an epoch (flushing result caches), a
  // no-progress round would repeat forever.  Checked AFTER the cap: a
  // max_victims=1 config truncating a multi-victim plan down to one clean
  // segment must also land here, not livelock.
  if (plan.victims.size() == 1 && plan.victims[0].dead_count == 0) plan.victims.clear();
  return plan;
}

std::uint64_t SegmentStore::compaction_debt(const CompactionConfig& cfg) const {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  std::uint64_t live = 0;
  std::uint64_t dead = 0;
  std::size_t victims = 0;
  bool tombstoned = false;
  for (const SegmentView& seg : segments_) {
    if (!is_victim(seg, cfg)) continue;
    ++victims;
    live += seg.live();
    dead += seg.dead_count;
    tombstoned = tombstoned || seg.dead_count > 0;
  }
  if (victims == 1 && !tombstoned) return 0;  // mirror plan_compaction's lone-victim rule
  return live + dead;
}

std::shared_ptr<const SealedSegment> SegmentStore::merge_segments(
    std::span<const SegmentView> victims, const ServeConfig& config) {
  std::vector<PointD> points;
  std::vector<PointId> ids;
  std::size_t total = 0;
  for (const SegmentView& seg : victims) total += seg.live();
  points.reserve(total);
  ids.reserve(total);
  for (const SegmentView& seg : victims) {
    const FlatStore& store = seg.data->store();
    for (const auto& [lo, hi] : *seg.live_runs) {
      for (std::uint32_t i = lo; i < hi; ++i) {
        points.push_back(store.point(i));
        ids.push_back(store.id(i));
      }
    }
  }
  if (points.empty()) return nullptr;
  return build_segment(points, ids, config.policy, config);
}

std::uint64_t SegmentStore::mirror_copied_bytes() const {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  return mirror_copied_bytes_;
}

bool SegmentStore::install_compaction(const CompactionPlan& plan,
                                      std::shared_ptr<const SealedSegment> merged) {
  if (plan.empty()) return false;
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  // Every victim must still be published exactly as planned: same segment
  // and same tombstone bitmap *instance* (erase always swaps in a fresh
  // bitmap, so pointer identity is a complete change detector).  A single
  // mismatch aborts — installing anyway would resurrect points deleted
  // mid-build or double-install a segment.
  std::vector<std::size_t> victim_at;
  victim_at.reserve(plan.victims.size());
  for (const SegmentView& victim : plan.victims) {
    const auto it =
        std::find_if(segments_.begin(), segments_.end(), [&](const SegmentView& seg) {
          return seg.segment_id == victim.segment_id;
        });
    if (it == segments_.end() || it->dead != victim.dead) return false;
    victim_at.push_back(static_cast<std::size_t>(it - segments_.begin()));
  }
  // Bank the victims' traversal counters before they leave the store:
  // tree_stats() folds this base back in, so compaction never shrinks the
  // store's lifetime totals.  (A traversal still running against a held
  // snapshot of a victim can increment after this read and be missed —
  // acceptable for diagnostics.)
  for (const std::size_t i : victim_at) {
    if (segments_[i].data->tree != nullptr) retired_tree_base_ += segments_[i].data->tree->stats();
  }
  std::vector<SegmentView> survivors;
  survivors.reserve(segments_.size());
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (std::find(victim_at.begin(), victim_at.end(), i) == victim_at.end()) {
      survivors.push_back(std::move(segments_[i]));
    }
  }
  if (merged != nullptr) {
    survivors.push_back(make_clean_view(std::move(merged), next_segment_id_++));
  }
  segments_ = std::move(survivors);
  store_metrics().compaction_installs.add();
  publish_locked();
  return true;
}

// --- snapshot scoring --------------------------------------------------------

namespace {

/// Shared engine of the exact and approx snapshot scorers: accumulates
/// every live segment's local top-ℓ into per-query candidate pools and
/// merges.  With `approx`, graph-carrying segments are beam-searched and
/// exact-reranked instead of scanned (the only place the two paths
/// diverge); min(ℓ, live) of the pooled candidates is the global answer —
/// exactly for the exact path, with per-segment recall semantics for the
/// approx one.
void snapshot_top_ell_impl(const ServeSnapshot& snapshot, std::span<const PointD> queries,
                           std::size_t ell, MetricKind kind, bool approx,
                           std::vector<std::vector<Key>>& out, KernelScratch& scratch) {
  out.resize(queries.size());
  if (snapshot.live_points > 0) {
    for (const PointD& query : queries) require_query_dim(snapshot.dim, query.dim());
  }
  if (ell == 0 || snapshot.live_points == 0) {
    for (auto& keys : out) keys.clear();
    return;
  }

  std::vector<std::vector<Key>> candidates(queries.size());
  std::vector<std::vector<Key>> segment_keys;
  ann::AnnSearchScratch ann_scratch;
  for (const SegmentView& seg : snapshot.segments) {
    if (seg.live() == 0) continue;
    if (approx && seg.data->ann != nullptr) {
      // Graph segment: seeded beam search for candidates, exact rerank for
      // Keys.  The view's tombstones filter the results (the graph is
      // shared across snapshots, so per-snapshot deadness lives here).
      const ann::KnnGraph& graph = seg.data->ann->get_or_build(seg.data->store());
      const std::size_t ef = std::max(seg.data->ann->config().ef, ell);
      const std::uint8_t* dead = seg.dead_count == 0 ? nullptr : seg.dead->data();
      segment_keys.resize(1);
      for (std::size_t q = 0; q < queries.size(); ++q) {
        ann::ann_top_ell(graph, queries[q], ell, ef, kind, dead, segment_keys[0], ann_scratch,
                         scratch);
        candidates[q].insert(candidates[q].end(), segment_keys[0].begin(),
                             segment_keys[0].end());
      }
    } else if (seg.dead_count == 0) {
      // Clean segment: full-speed batch kernels (kd-hybrid when present).
      if (seg.data->tree != nullptr) {
        hybrid_top_ell_batch(*seg.data->tree, queries, ell, kind, segment_keys, scratch);
      } else {
        fused_top_ell_batch(seg.data->store(), queries, ell, kind, segment_keys, scratch);
      }
      for (std::size_t q = 0; q < queries.size(); ++q) {
        candidates[q].insert(candidates[q].end(), segment_keys[q].begin(),
                             segment_keys[q].end());
      }
    } else {
      // Tombstoned segment: the same fused machinery over the live row
      // runs — skipping dead rows is just a range decomposition, which
      // RangeTopEll guarantees is byte-identical.  Compaction restores
      // this segment to the batch path above.
      segment_keys.resize(1);
      for (std::size_t q = 0; q < queries.size(); ++q) {
        RangeTopEll scorer(seg.data->store(), queries[q], ell, kind, scratch);
        for (const auto& [lo, hi] : *seg.live_runs) scorer.score_range(lo, hi);
        scorer.finish(segment_keys[0]);
        candidates[q].insert(candidates[q].end(), segment_keys[0].begin(),
                             segment_keys[0].end());
      }
    }
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    out[q] = top_ell_smallest(std::span<const Key>(candidates[q]), ell);
  }
}

}  // namespace

void snapshot_top_ell_batch(const ServeSnapshot& snapshot, std::span<const PointD> queries,
                            std::size_t ell, MetricKind kind,
                            std::vector<std::vector<Key>>& out, KernelScratch& scratch) {
  snapshot_top_ell_impl(snapshot, queries, ell, kind, /*approx=*/false, out, scratch);
}

void snapshot_approx_top_ell_batch(const ServeSnapshot& snapshot,
                                   std::span<const PointD> queries, std::size_t ell,
                                   MetricKind kind, std::vector<std::vector<Key>>& out,
                                   KernelScratch& scratch) {
  snapshot_top_ell_impl(snapshot, queries, ell, kind, /*approx=*/true, out, scratch);
}

std::vector<Key> snapshot_top_ell(const ServeSnapshot& snapshot, const PointD& query,
                                  std::size_t ell, MetricKind kind) {
  KernelScratch scratch;
  std::vector<std::vector<Key>> out;
  snapshot_top_ell_batch(snapshot, std::span<const PointD>(&query, 1), ell, kind, out,
                         scratch);
  return std::move(out[0]);
}

}  // namespace dknn

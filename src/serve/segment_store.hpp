#pragma once
/// \file segment_store.hpp
/// \brief Live mutable point store behind epoch-numbered immutable
///        snapshots — the serving-side answer to "every store in this repo
///        is built once and frozen".
///
/// The paper's serving scenario (§1.1) is a cluster answering a query
/// stream against resident shards.  Real resident shards churn: points
/// arrive and expire while queries keep coming, and the index must absorb
/// both without ever returning an approximate answer or blocking readers.
/// `SegmentStore` is the LSM-shaped solution (PANDA's prune-then-partition
/// segments meet Debatty et al.'s online-index concern, see PAPERS.md):
///
///   * writes land in a small append-friendly **delta** buffer;
///   * when the delta reaches `ServeConfig::seal_threshold` it is
///     **sealed** into an immutable segment — a `FlatStore` (plus a
///     `KdRangeIndex` when the `ScoringPolicy` says trees pay off) that
///     the fused/SIMD/kd-hybrid batch kernels score at full speed;
///   * deletes **tombstone** rows of sealed segments via copy-on-write
///     bitmaps (the heavy coordinate arrays are never copied);
///   * every mutation publishes a new immutable `ServeSnapshot` under a
///     monotonically increasing **epoch** number.
///
/// Snapshot discipline (the invariant everything rests on, see README.md):
/// a published `ServeSnapshot` and everything reachable from it is frozen
/// forever.  Writers build fresh wrapper objects and swap one shared_ptr
/// under a leaf mutex held for the pointer copy alone; readers copy that
/// pointer the same way and then score entirely lock-free — a query can
/// take arbitrarily long and never blocks (or is blocked by) inserts,
/// deletes, or compaction.
///
/// Query parity contract (fuzzed in tests/test_serve.cpp): for any
/// interleaving of insert / erase / seal / compact, `snapshot_top_ell_*`
/// over the published snapshot returns **byte-identical** keys to
/// `fused_top_ell` over a single FlatStore rebuilt from the live set at
/// that epoch, for every metric, scoring policy, and kernel ISA.  This
/// holds because every scoring path accumulates distances in the same
/// dimension-ascending order and selection is order-blind over globally
/// distinct (distance, id) keys — segmentation, tombstone skipping and
/// per-segment top-ℓ merging never change a byte.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "ann/knn_graph.hpp"
#include "data/flat_store.hpp"
#include "data/kernels.hpp"
#include "data/key.hpp"
#include "data/metric_kind.hpp"
#include "data/point.hpp"
#include "seq/kdtree.hpp"
#include "seq/scoring_policy.hpp"

namespace dknn {

/// Knobs for the live store.
struct ServeConfig {
  /// Delta points before an automatic seal into an immutable segment.
  std::size_t seal_threshold = 1024;
  /// Scoring structure built per sealed segment (the delta mirror is
  /// always a plain FlatStore — it is rebuilt too often to amortize a
  /// tree).  Auto applies tree_pays_off per segment; Approx attaches a
  /// lazily-built k-NN graph to segments of ≥ ann.min_points rows.
  ScoringPolicy policy = ScoringPolicy::Auto;
  /// Leaf size of per-segment KdRangeIndexes.
  std::size_t leaf_size = KdRangeIndex::kDefaultLeafSize;
  /// Graph knobs for ScoringPolicy::Approx segments (ignored otherwise).
  ann::AnnConfig ann{};
};

/// One sealed segment's heavy immutable payload.  Built once (at seal or
/// compaction time, possibly on a background thread) and shared by every
/// snapshot that references it.
struct SealedSegment {
  FlatStore flat;                      ///< engaged iff tree == nullptr
  std::unique_ptr<KdRangeIndex> tree;  ///< engaged iff the tree path won
  /// id → row of store() — erase/contains lookups without scans.  Left
  /// empty on the delta mirror (ServeSnapshot::contains scans it instead;
  /// filling it would cost O(delta) per publish, defeating the O(d)
  /// incremental mirror).
  std::unordered_map<PointId, std::uint32_t> row_of;
  /// Lazily-built k-NN graph (ScoringPolicy::Approx segments of ≥
  /// AnnConfig::min_points rows only; see src/ann/README.md).  The graph
  /// is a pure function of (store bytes, slot config), so sharing the
  /// built instance across every snapshot referencing this segment is
  /// sound; compaction's merged segment gets a fresh slot, which is the
  /// rebuild-on-compaction hook.
  std::shared_ptr<ann::GraphSlot> ann;

  /// The store queries scan (the tree's reordered mirror when present).
  [[nodiscard]] const FlatStore& store() const { return tree ? tree->store() : flat; }
};

/// Maximal [lo, hi) row ranges of live (non-tombstoned) points.
using LiveRuns = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// One epoch's view of a segment: shared heavy payload plus copy-on-write
/// tombstone state.  Value-copyable (three shared_ptrs and two integers),
/// immutable once published.
struct SegmentView {
  std::shared_ptr<const SealedSegment> data;
  /// Row-aligned tombstone flags (1 = deleted); never null.
  std::shared_ptr<const std::vector<std::uint8_t>> dead;
  std::uint32_t dead_count = 0;
  /// Live row runs, precomputed at publish so queries pay O(runs) not O(n);
  /// never null.  Empty when the segment is 100 % tombstones.
  std::shared_ptr<const LiveRuns> live_runs;
  /// Stable identity for compaction install checks (unique per seal).
  std::uint64_t segment_id = 0;

  [[nodiscard]] std::size_t rows() const { return data->store().size(); }
  [[nodiscard]] std::size_t live() const { return rows() - dead_count; }
};

/// Immutable frozen view of the whole store at one epoch.  The delta
/// buffer appears as a final tombstone-free SegmentView, so queries treat
/// it uniformly.
struct ServeSnapshot {
  std::uint64_t epoch = 0;
  std::size_t dim = 0;
  std::size_t live_points = 0;
  std::vector<SegmentView> segments;

  /// True iff `id` is live at this epoch.
  [[nodiscard]] bool contains(PointId id) const;
};

using SnapshotPtr = std::shared_ptr<const ServeSnapshot>;

/// What a compaction pass considers worth rewriting.
struct CompactionConfig {
  /// Segments whose dead/rows ratio exceeds this are rewritten to drop
  /// their tombstones.
  double max_dead_fraction = 0.25;
  /// Segments smaller than this merge together (small segments multiply
  /// per-segment kernel setup and per-query merge work).
  std::size_t min_segment_points = 512;
  /// Victims per compaction round (worst offenders first).  Values below
  /// 2 can only rewrite tombstoned segments — a lone clean victim is
  /// never planned (rewriting it would change nothing).
  std::size_t max_victims = 4;
};

/// The live store.  All mutators are internally serialized (one writer
/// mutex); `snapshot()` is wait-free with respect to writers.
class SegmentStore {
 public:
  explicit SegmentStore(std::size_t dim, ServeConfig config = {});
  /// Withdraws this store's contribution from the process-wide obs
  /// live/dead gauges so a torn-down store stops counting.
  ~SegmentStore();

  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] const ServeConfig& config() const { return config_; }

  /// Appends a live point.  `id` must be distinct from every live id
  /// (the paper's §2 unique-id invariant; DKNN_REQUIREd).  Seals the
  /// delta automatically at the threshold.  Returns the published epoch.
  std::uint64_t insert(const PointD& point, PointId id);

  /// Bulk insert (one snapshot publish for the whole span).
  std::uint64_t insert_batch(std::span<const PointD> points, std::span<const PointId> ids);

  /// Deletes a live point: removed from the delta, or tombstoned in its
  /// sealed segment (copy-on-write bitmap — the snapshot a concurrent
  /// reader holds still sees the point).  Returns the published epoch, or
  /// nullopt (and no epoch advance) when `id` is not live.
  std::optional<std::uint64_t> erase(PointId id);

  /// Seals the delta into an immutable segment now (no-op on an empty
  /// delta).  Returns the current epoch either way.
  std::uint64_t seal();

  /// The current frozen view.  Acquisition copies one shared_ptr under a
  /// leaf mutex held for nanoseconds (a refcount bump — never while
  /// anything scores, builds, or compacts; std::atomic<shared_ptr> would
  /// be lock-free but TSan cannot see through libstdc++'s lock-bit
  /// protocol and the sanitizer legs must stay clean).  Everything the
  /// returned pointer reaches is immutable, so *scoring* holds no locks.
  [[nodiscard]] SnapshotPtr snapshot() const {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    return published_;
  }

  [[nodiscard]] std::uint64_t epoch() const { return snapshot()->epoch; }
  [[nodiscard]] std::size_t live_points() const { return snapshot()->live_points; }
  [[nodiscard]] bool contains(PointId id) const { return snapshot()->contains(id); }
  /// Sealed segments currently published (excludes the delta mirror).
  [[nodiscard]] std::size_t segment_count() const;
  /// Tombstoned rows across all sealed segments.
  [[nodiscard]] std::uint64_t dead_rows() const;

  /// Coordinate bytes copied into delta-mirror storage over this store's
  /// lifetime — the cost the incremental mirror bounds.  Inserts append
  /// exactly d·sizeof(double) each; only an erase (or capacity growth)
  /// triggers an O(delta·d) regeneration.  Pinned by tests/test_serve.cpp.
  [[nodiscard]] std::uint64_t mirror_copied_bytes() const;

  /// Cumulative kd-hybrid traversal counters: the sum over the *currently
  /// published* tree-carrying segments (brute segments and the delta
  /// mirror contribute nothing) plus a store-level base holding the
  /// counters of every segment compaction has retired.  Counters live on
  /// each segment's KdRangeIndex; install_compaction banks a victim's
  /// totals into the base before dropping it, so this reads as a
  /// monotone lifetime total across compactions (pinned by
  /// tests/test_serve.cpp's compact-under-load case).  Traversals still
  /// in flight on a *held* snapshot of a retired segment can land after
  /// the banking and be missed — the counters are diagnostics, racy by
  /// design, never answers.
  [[nodiscard]] TreeStats tree_stats() const;
  void reset_tree_stats() const;

  // --- compaction (used by serve/compactor.hpp; callable directly) ----------
  //
  // Split into plan / build / install so the expensive build can run on a
  // background thread against frozen views while writers keep mutating:
  //   plan    — under the writer lock, pick victim segments (frozen copies);
  //   build   — pure function of the frozen views, no locks (merge_segments);
  //   install — under the writer lock, swap victims for the merged segment
  //             *iff* every victim is still published unchanged; a victim
  //             that gained a tombstone mid-build aborts the install (the
  //             merged segment would resurrect the deleted point).

  struct CompactionPlan {
    std::vector<SegmentView> victims;  ///< frozen at plan time
    [[nodiscard]] bool empty() const { return victims.empty(); }
  };

  /// Victim selection: tombstone-heavy or undersized segments, worst
  /// first, capped at cfg.max_victims.  A single undersized segment with
  /// no tombstones is left alone (rewriting it gains nothing).
  [[nodiscard]] CompactionPlan plan_compaction(const CompactionConfig& cfg) const;

  /// Rows a compaction under `cfg` would rewrite (live rows of all
  /// would-be victims) plus the dead rows it would drop — the store's
  /// backlog of deferred maintenance.  0 = nothing to do.
  [[nodiscard]] std::uint64_t compaction_debt(const CompactionConfig& cfg) const;

  /// Gathers the victims' live rows and seals them into one fresh
  /// segment.  Pure: frozen inputs, no locks — safe on any thread.
  /// Returns nullptr when the victims hold no live rows.
  [[nodiscard]] static std::shared_ptr<const SealedSegment> merge_segments(
      std::span<const SegmentView> victims, const ServeConfig& config);

  /// Swaps the plan's victims for `merged` (nullptr = just drop the
  /// victims) and publishes a new epoch.  Returns false — and changes
  /// nothing — if any victim is no longer published byte-for-byte (its
  /// tombstones advanced, or an earlier install already consumed it).
  bool install_compaction(const CompactionPlan& plan,
                          std::shared_ptr<const SealedSegment> merged);

 private:
  /// Builds + publishes the next snapshot from writer state.  Caller
  /// holds writer_mutex_.  Returns the new epoch.
  std::uint64_t publish_locked();
  /// Seals the delta into segments_ (caller holds writer_mutex_; no
  /// publish).  No-op on an empty delta.
  void seal_locked();
  /// True iff `id` is live in writer state (caller holds writer_mutex_).
  [[nodiscard]] bool live_in_writer_state(PointId id) const;

  std::size_t dim_ = 0;
  ServeConfig config_;

  mutable std::mutex writer_mutex_;
  // Writer-side state (guarded by writer_mutex_):
  std::vector<PointD> delta_points_;
  std::vector<PointId> delta_ids_;
  std::unordered_map<PointId, std::size_t> delta_rows_;  ///< id → delta index
  std::vector<SegmentView> segments_;                    ///< sealed segments
  std::shared_ptr<const SealedSegment> delta_mirror_;    ///< cached sealed view of the delta
  bool delta_dirty_ = false;                             ///< mirror stale?
  // Incremental delta mirror: capacity-strided column buffers the writer
  // appends into; each publish wraps rows [0, n) in a shared-view
  // FlatStore (see flat_store.hpp).  Published rows are frozen by
  // contract, so an insert costs O(d) — only an erase (which rewrites a
  // published row via swap-remove) forces a fresh generation and a full
  // O(delta·d) recopy; old generations stay alive inside the snapshots
  // that reference them.
  std::shared_ptr<std::vector<double>> mirror_coords_;   ///< dim × mirror_cap_
  std::shared_ptr<std::vector<PointId>> mirror_ids_;     ///< mirror_cap_
  /// All-zero tombstone bitmap shared by every publish of one generation
  /// (the mirror is tombstone-free; sharing avoids an O(n) alloc/publish).
  std::shared_ptr<const std::vector<std::uint8_t>> mirror_zero_dead_;
  std::size_t mirror_cap_ = 0;
  std::size_t mirror_synced_ = 0;          ///< delta rows present in the buffers
  bool mirror_fresh_needed_ = false;       ///< prefix invalidated (delta erase)
  std::uint64_t mirror_copied_bytes_ = 0;  ///< lifetime copy cost (test hook)
  std::uint64_t epoch_ = 0;
  std::uint64_t next_segment_id_ = 1;
  /// Traversal counters of segments retired by compaction (guarded by
  /// writer_mutex_; mutable so reset_tree_stats() can zero it).
  mutable TreeStats retired_tree_base_;
  /// Last values this store contributed to the obs live/dead gauges
  /// (guarded by writer_mutex_; deltas keep multi-store sums correct).
  std::int64_t obs_live_published_ = 0;
  std::int64_t obs_dead_published_ = 0;

  /// The published snapshot.  Guarded by snapshot_mutex_ — a leaf lock
  /// covering only the pointer copy/swap, never any scoring or building.
  mutable std::mutex snapshot_mutex_;
  SnapshotPtr published_;
};

/// Scores `queries` against the snapshot's live set, fused with bounded
/// top-ℓ selection: clean segments run the fused batch kernel (or the
/// kd-hybrid when the segment carries a tree), tombstoned segments run
/// the same kernels over their live row runs via RangeTopEll, and the
/// per-segment winners merge into each query's global top-ℓ.  `out` is
/// resized to queries.size(); out[q] holds min(ℓ, live) keys ascending.
/// Byte-identical to fused_top_ell_batch over a FlatStore rebuilt from
/// the live set (fuzzed in tests/test_serve.cpp).
void snapshot_top_ell_batch(const ServeSnapshot& snapshot, std::span<const PointD> queries,
                            std::size_t ell, MetricKind kind,
                            std::vector<std::vector<Key>>& out, KernelScratch& scratch);

/// Single-query convenience over snapshot_top_ell_batch.
[[nodiscard]] std::vector<Key> snapshot_top_ell(const ServeSnapshot& snapshot,
                                                const PointD& query, std::size_t ell,
                                                MetricKind kind);

/// Approximate variant: graph-carrying segments (ScoringPolicy::Approx
/// seals of ≥ AnnConfig::min_points rows) are beam-searched and
/// exact-reranked (src/ann/graph_search.hpp); every other segment —
/// including the delta mirror, so fresh inserts are never invisible —
/// scores exactly as snapshot_top_ell_batch.  Tombstoned rows are filtered
/// through the view's bitmap and can never be returned.  Every returned
/// Key is the point's exact (rank, id); only *which* points surface is
/// approximate (recall@ℓ — see src/ann/README.md; NOT byte-parity with the
/// exact path).  On a snapshot with no graph-carrying segments this is the
/// exact answer.
void snapshot_approx_top_ell_batch(const ServeSnapshot& snapshot,
                                   std::span<const PointD> queries, std::size_t ell,
                                   MetricKind kind, std::vector<std::vector<Key>>& out,
                                   KernelScratch& scratch);

}  // namespace dknn

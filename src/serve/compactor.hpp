#pragma once
/// \file compactor.hpp
/// \brief Background maintenance for a SegmentStore: merge small and
///        tombstone-heavy segments into fresh sealed FlatStores on the
///        work-stealing ThreadPool.
///
/// The store itself never blocks on maintenance: seal() leaves a trail of
/// threshold-sized segments and erase() leaves tombstones, both of which
/// tax queries (more per-segment kernel setup + merge work; tombstoned
/// segments fall off the batch kernels onto the range path).  The
/// compactor pays that debt off-thread:
///
///   plan (store lock, O(segments))
///     → merge_segments on a pool worker (O(live·d) gather + seal; no
///        locks — it reads only frozen SegmentViews)
///     → install (store lock, pointer swaps)
///
/// Writers keep mutating throughout.  If a victim segment changes between
/// plan and install (a delete tombstoned one of its rows), the install
/// aborts and the round counts as `aborted` — deletes always win over
/// compaction, so no deleted point is ever resurrected.  At most one
/// compaction is in flight per Compactor; callers re-poll maybe_schedule()
/// from their serving loop.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "serve/segment_store.hpp"
#include "sim/thread_pool.hpp"

namespace dknn {

class Compactor {
 public:
  /// Borrows `store` and `pool` for its lifetime.  `pool` may be shared
  /// with other work (jobs are coarse: one whole merge each).
  Compactor(SegmentStore& store, ThreadPool& pool, CompactionConfig config = {});

  /// Drain the in-flight job before dying (its lambda captures `this`).
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// Plans a compaction and submits the merge to the pool if the store
  /// has debt and no round is already in flight.  Returns true iff a
  /// round was scheduled.  Cheap enough to call every serving-loop tick.
  bool maybe_schedule();

  /// Blocks until the in-flight round (if any) has installed or aborted,
  /// then rethrows the round's exception if it raised one.  Waits on this
  /// compactor's own completion group — safe while other submitters
  /// (scoring batches, sibling compactors) keep the shared pool busy.
  void drain();

  /// Hook run on the pool worker after each round completes (install or
  /// abort), with `installed` telling which.  Owners use it to republish
  /// derived state (the KnnService facade re-snapshots the store set so
  /// lock-free readers see the compacted segments).  Must not call back
  /// into this compactor and must not block on the pool.  Set before the
  /// first maybe_schedule(); not thread-safe against in-flight rounds.
  void set_on_complete(std::function<void(bool installed)> hook);

  /// Current backlog under this compactor's config (rows a full
  /// compaction would rewrite or drop).
  [[nodiscard]] std::uint64_t debt() const { return store_.compaction_debt(config_); }

  struct Stats {
    std::uint64_t scheduled = 0;  ///< rounds submitted to the pool
    std::uint64_t installed = 0;  ///< rounds whose merged segment published
    std::uint64_t aborted = 0;    ///< rounds dropped because a victim changed
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const CompactionConfig& config() const { return config_; }

 private:
  void refresh_debt_gauge(std::uint64_t debt_now);

  SegmentStore& store_;
  ThreadPool& pool_;
  CompactionConfig config_;
  /// This compactor's jobs only — drain() must not wait on (or steal
  /// exceptions from) unrelated work sharing the pool.
  ThreadPool::TaskGroup group_;
  std::function<void(bool)> on_complete_;

  std::atomic<bool> in_flight_{false};
  std::atomic<std::uint64_t> scheduled_{0};
  std::atomic<std::uint64_t> installed_{0};
  std::atomic<std::uint64_t> aborted_{0};
  /// This compactor's last contribution to the process-wide debt gauge.
  std::atomic<std::int64_t> obs_debt_published_{0};
};

}  // namespace dknn

#pragma once
/// \file engine.hpp
/// \brief The synchronous-round execution engine for the k-machine model.
///
/// One `Engine::run` executes a machine program on every machine in
/// lockstep supersteps:
///
///   round r:  deliver mailboxes  ->  resume every alive machine until it
///             parks at a round barrier (or finishes)  ->  move outboxes to
///             the network  ->  advance the link model.
///
/// Local computation is timed per machine per superstep; the BSP cost model
/// (cost_model.hpp) charges the *maximum* over machines per round, which is
/// what wall-clock time would show on a real cluster where machines compute
/// in parallel.  Executors:
///   * sequential — one thread, bit-for-bit deterministic, the default;
///   * thread pool — machines of one superstep run concurrently; results
///     are identical to sequential because machines share no state and all
///     message exchange happens at the barrier (property-tested).

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "net/network.hpp"
#include "sim/context.hpp"
#include "sim/task.hpp"

namespace dknn {

/// Raised when a run exceeds its round budget (e.g. lost-message deadlock)
/// or otherwise cannot proceed; distinct from InvariantError so tests can
/// target it.
class SimError : public std::runtime_error {
public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

struct EngineConfig {
  std::uint32_t world_size = 1;
  /// Root seed; machine i's private stream is split(seed, i).
  std::uint64_t seed = 1;
  BandwidthPolicy bandwidth = BandwidthPolicy::Unlimited;
  /// B — bits per directed link per round (paper: Θ(log n)).
  std::uint64_t bits_per_round = 64;
  /// Optional per-destination aggregate receive cap (0 = pure k-machine
  /// model; ~B models a real cluster's single NIC — see NetworkConfig).
  std::uint64_t ingress_bits_per_round = 0;
  /// Hard stop: a correct run of our algorithms uses orders of magnitude
  /// fewer rounds; hitting this indicates deadlock (and throws SimError).
  std::uint64_t max_rounds = 1u << 20;
  /// Use the thread-pool executor.
  bool parallel = false;
  /// Worker threads for the parallel executor (0 = hardware concurrency).
  std::uint32_t threads = 0;
  /// Record per-superstep per-machine wall time (costs one clock read per
  /// machine-step; disable for pure counting runs).
  bool measure_compute = true;
  /// Scheduling fault hook: when set, consulted per (machine, round) before
  /// resuming a runnable machine; returning true *stalls* the machine for
  /// this superstep (it neither runs nor loses its resume point).  A
  /// transiently stalled machine counts as schedulable, so the deadlock
  /// detector does not fire on it; a machine stalled forever runs the
  /// round budget out into a typed SimError — never a hang.  Used by fault
  /// tests to model straggling / frozen machines inside the scheduler.
  std::function<bool(MachineId, std::uint64_t)> stall_hook;
};

/// Everything a run produces besides the machines' own outputs.
struct RunReport {
  std::uint64_t rounds = 0;                       ///< supersteps executed
  TrafficStats traffic;                           ///< messages / bits
  std::uint64_t critical_path_comp_ns = 0;        ///< Σ_r max_i step_time
  std::uint64_t total_comp_ns = 0;                ///< Σ_r Σ_i step_time (work)
  std::vector<std::uint64_t> round_max_comp_ns;   ///< per-round maxima
};

/// Factory invoked once per machine to create its program.
using MachineProgram = std::function<Task<void>(Ctx&)>;

class Engine {
public:
  explicit Engine(EngineConfig config);

  /// Runs `program` on all machines to completion; throws SimError on round
  /// exhaustion and rethrows the first machine exception (by machine id).
  RunReport run(const MachineProgram& program);

  [[nodiscard]] Network& network() { return *network_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }

private:
  EngineConfig config_;
  std::unique_ptr<Network> network_;
};

}  // namespace dknn

#pragma once
/// \file context.hpp
/// \brief Per-machine execution context: the API a machine program sees.
///
/// A `Ctx` is the machine's window onto the k-machine model: its identity,
/// its private random stream (paper §1.1: each machine has a private source
/// of random bits), a mailbox of delivered messages, and the round barrier.
/// Machine programs must not share state except through messages — the
/// thread-pool executor relies on this (and the sequential executor makes
/// violations reproducible).

#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "net/types.hpp"
#include "rng/rng.hpp"
#include "serial/codec.hpp"

namespace dknn {

class Engine;

/// Awaiter for `co_await ctx.round()`: parks the (innermost) coroutine and
/// returns control to the engine until the next superstep.
struct RoundBarrier;

/// Awaiter for `co_await ctx.mail_round()`: like RoundBarrier, but the
/// engine skips resuming the machine until a round in which at least one
/// new message was delivered to it.  Observationally equivalent for code
/// that only inspects the mailbox (all receive helpers), and turns long
/// bandwidth-limited waits from O(rounds) resumes into O(deliveries).
struct MailBarrier;

class Ctx {
public:
  Ctx(MachineId id, std::uint32_t world, Rng rng)
      : id_(id), world_(world), rng_(std::move(rng)) {}

  Ctx(const Ctx&) = delete;
  Ctx& operator=(const Ctx&) = delete;
  Ctx(Ctx&&) = default;
  Ctx& operator=(Ctx&&) = default;

  [[nodiscard]] MachineId id() const { return id_; }
  [[nodiscard]] std::uint32_t world() const { return world_; }
  [[nodiscard]] std::uint64_t current_round() const { return round_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Queues a message for the end-of-round exchange.
  void send(MachineId dst, Tag tag, Bytes payload);

  /// Typed convenience: encodes `value` with the serial codec.
  template <typename T>
  void send_value(MachineId dst, Tag tag, const T& value) {
    send(dst, tag, to_bytes(value));
  }

  /// Removes and returns the first mailbox message with `tag`, if any.
  [[nodiscard]] std::optional<Envelope> try_take(Tag tag);

  /// Removes and returns the first mailbox message with `tag` from `src`.
  [[nodiscard]] std::optional<Envelope> try_take_from(MachineId src, Tag tag);

  /// Removes and returns the first mailbox message whose tag is in `tags`
  /// (arrival order decides among multiple matches).
  [[nodiscard]] std::optional<Envelope> try_take_any(std::span<const Tag> tags);

  /// Number of undelivered mailbox messages (diagnostics/tests).
  [[nodiscard]] std::size_t mailbox_size() const { return mailbox_.size(); }

  /// Round barrier; `co_await ctx.round()` resumes at the next superstep.
  [[nodiscard]] RoundBarrier round();

  /// Mail barrier; `co_await ctx.mail_round()` resumes at the next
  /// superstep in which new mail was delivered to this machine.
  [[nodiscard]] MailBarrier mail_round();

  // --- engine-side interface (not for machine programs) ---------------------
  void engine_deliver(std::vector<Envelope> delivered);
  [[nodiscard]] std::vector<Envelope> engine_take_outbox();
  void engine_set_round(std::uint64_t round) { round_ = round; }
  void engine_set_resume(std::coroutine_handle<> h, bool wait_for_mail = false) {
    resume_point_ = h;
    mail_wait_ = wait_for_mail;
  }
  [[nodiscard]] std::coroutine_handle<> engine_take_resume() {
    auto h = resume_point_;
    resume_point_ = nullptr;
    mail_wait_ = false;
    mail_arrived_ = false;
    return h;
  }
  [[nodiscard]] bool engine_has_resume() const { return resume_point_ != nullptr; }
  /// True when the machine should run this superstep (not parked on mail,
  /// or mail has arrived since it parked).
  [[nodiscard]] bool engine_runnable() const {
    return resume_point_ != nullptr && (!mail_wait_ || mail_arrived_);
  }
  [[nodiscard]] bool engine_mail_parked() const { return mail_wait_; }

private:
  MachineId id_;
  std::uint32_t world_;
  Rng rng_;
  std::uint64_t round_ = 0;
  std::deque<Envelope> mailbox_;
  /// At-most-once delivery: sequence numbers already seen, per source.
  /// Senders stamp a monotone per-link seq, so a network-level duplicate
  /// (fault injection) is suppressed here — it still burned link bandwidth
  /// in transit, but machine programs never observe a spurious repeat.
  /// A set (not a high-water mark) because delayed messages may legally
  /// arrive out of seq order.
  std::vector<std::unordered_set<std::uint64_t>> seen_seq_;
  std::vector<Envelope> outbox_;
  std::coroutine_handle<> resume_point_ = nullptr;
  bool mail_wait_ = false;     ///< parked on a MailBarrier
  bool mail_arrived_ = false;  ///< delivery happened since parking
};

struct RoundBarrier {
  Ctx* ctx;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const noexcept { ctx->engine_set_resume(h); }
  void await_resume() const noexcept {}
};

struct MailBarrier {
  Ctx* ctx;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const noexcept {
    ctx->engine_set_resume(h, /*wait_for_mail=*/true);
  }
  void await_resume() const noexcept {}
};

inline RoundBarrier Ctx::round() { return RoundBarrier{this}; }
inline MailBarrier Ctx::mail_round() { return MailBarrier{this}; }

}  // namespace dknn

#pragma once
/// \file collectives.hpp
/// \brief Message-exchange building blocks for machine programs.
///
/// The paper's protocols are leader-driven star exchanges: the leader
/// broadcasts a query (k−1 messages, one round) and gathers replies (k−1
/// messages, one round).  These helpers implement exactly those patterns on
/// top of the round barrier, as ordinary coroutines — they compose with any
/// machine program via `co_await`.
///
/// All receive helpers *consume* matching mailbox messages and tolerate
/// multi-round delivery (under chunked bandwidth a large message arrives
/// whole, but late), so the same algorithm code runs under every bandwidth
/// policy.

#include <cstdint>
#include <vector>

#include "sim/context.hpp"
#include "sim/task.hpp"
#include "support/panic.hpp"

namespace dknn {

/// Waits (advancing rounds) until a message with `tag` arrives; consumes it.
inline Task<Envelope> recv(Ctx& ctx, Tag tag) {
  while (true) {
    if (auto env = ctx.try_take(tag)) co_return std::move(*env);
    co_await ctx.mail_round();
  }
}

/// Waits until a message with any of `tags` arrives; consumes and returns it.
inline Task<Envelope> recv_any(Ctx& ctx, std::vector<Tag> tags) {
  while (true) {
    if (auto env = ctx.try_take_any(tags)) co_return std::move(*env);
    co_await ctx.mail_round();
  }
}

/// Waits for a message with `tag` from a specific sender; consumes it.
inline Task<Envelope> recv_from(Ctx& ctx, MachineId src, Tag tag) {
  while (true) {
    if (auto env = ctx.try_take_from(src, tag)) co_return std::move(*env);
    co_await ctx.mail_round();
  }
}

/// Collects exactly `count` messages with `tag` (any senders), consuming
/// them; resumes over as many rounds as delivery needs.
inline Task<std::vector<Envelope>> recv_n(Ctx& ctx, Tag tag, std::size_t count) {
  std::vector<Envelope> out;
  out.reserve(count);
  while (out.size() < count) {
    while (out.size() < count) {
      auto env = ctx.try_take(tag);
      if (!env) break;
      out.push_back(std::move(*env));
    }
    if (out.size() < count) co_await ctx.mail_round();
  }
  co_return out;
}

/// Typed receive: decodes the payload of the next `tag` message.
template <typename T>
Task<T> recv_value(Ctx& ctx, Tag tag) {
  Envelope env = co_await recv(ctx, tag);
  co_return from_bytes<T>(env.payload);
}

/// Typed receive from a specific sender.
template <typename T>
Task<T> recv_value_from(Ctx& ctx, MachineId src, Tag tag) {
  Envelope env = co_await recv_from(ctx, src, tag);
  co_return from_bytes<T>(env.payload);
}

/// Root sends `value` to every other machine; everyone (root included)
/// returns the value. Non-roots block until it arrives. One round of
/// k−1 messages (more rounds under chunked bandwidth for large payloads).
template <typename T>
Task<T> broadcast(Ctx& ctx, MachineId root, Tag tag, T value) {
  if (ctx.id() == root) {
    for (MachineId m = 0; m < ctx.world(); ++m) {
      if (m != root) ctx.send_value(m, tag, value);
    }
    co_return value;
  }
  co_return co_await recv_value_from<T>(ctx, root, tag);
}

/// Everyone sends `local` to root; root returns the k values indexed by
/// machine id (its own slot included), non-roots return an empty vector
/// immediately after sending (they do not block).
template <typename T>
Task<std::vector<T>> gather(Ctx& ctx, MachineId root, Tag tag, const T& local) {
  if (ctx.id() != root) {
    ctx.send_value(root, tag, local);
    co_return std::vector<T>{};
  }
  std::vector<T> values(ctx.world());
  std::vector<bool> seen(ctx.world(), false);
  values[root] = local;
  seen[root] = true;
  std::size_t missing = ctx.world() - 1;
  while (missing > 0) {
    auto envs = co_await recv_n(ctx, tag, missing);
    for (const auto& env : envs) {
      DKNN_ASSERT(!seen[env.src], "gather: duplicate contribution");
      values[env.src] = from_bytes<T>(env.payload);
      seen[env.src] = true;
    }
    missing = 0;  // recv_n returned exactly the number we asked for
  }
  co_return values;
}

/// gather at root + reduction; non-roots get a default-constructed T.
template <typename T, typename Op>
Task<T> reduce(Ctx& ctx, MachineId root, Tag tag, const T& local, Op op) {
  std::vector<T> values = co_await gather<T>(ctx, root, tag, local);
  if (ctx.id() != root) co_return T{};
  T acc = values[0];
  for (std::size_t i = 1; i < values.size(); ++i) acc = op(std::move(acc), values[i]);
  co_return acc;
}

/// gather to root then broadcast: all machines end with all k values.
/// Two rounds, 2(k−1) messages.
template <typename T>
Task<std::vector<T>> all_gather(Ctx& ctx, MachineId root, Tag tag, const T& local) {
  std::vector<T> values = co_await gather<T>(ctx, root, tag, local);
  co_return co_await broadcast(ctx, root, static_cast<Tag>(tag + 1), std::move(values));
}

/// Parks the machine for `rounds` supersteps (protocol pacing in tests).
inline Task<void> skip_rounds(Ctx& ctx, std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) co_await ctx.round();
}

}  // namespace dknn

#pragma once
/// \file task.hpp
/// \brief Coroutine task type for machine programs.
///
/// A machine program in the simulator is an eagerly-suspended coroutine
/// (`Task<T>`).  Composition uses symmetric transfer: `co_await child()`
/// starts the child immediately; when the child finishes it resumes the
/// parent without growing the native stack.  When *any* coroutine in the
/// chain suspends at a round barrier (`co_await ctx.round()`), control
/// returns to the engine, which records the innermost handle and resumes it
/// at the next superstep — so helpers like `gather` can be ordinary
/// coroutines and still interleave correctly with the round structure.
///
/// Exceptions thrown inside a child propagate to the parent at
/// `await_resume`; exceptions escaping the top-level program are captured in
/// its promise and rethrown by the engine.

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "support/panic.hpp"

namespace dknn {

template <typename T>
class Task;

namespace detail {

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;  ///< parent to resume when we finish
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    template <typename Promise>
    [[nodiscard]] std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) const noexcept {
      auto continuation = h.promise().continuation;
      return continuation ? continuation : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct TaskPromise : TaskPromiseBase {
  std::optional<T> value;
  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct TaskPromise<void> : TaskPromiseBase {
  Task<void> get_return_object();
  void return_void() noexcept {}
};

}  // namespace detail

/// Owning handle to a coroutine; awaitable from another Task.
template <typename T>
class [[nodiscard]] Task {
public:
  using promise_type = detail::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle handle) : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return handle_ != nullptr; }
  [[nodiscard]] bool done() const { return handle_ == nullptr || handle_.done(); }
  [[nodiscard]] Handle handle() const { return handle_; }

  /// Rethrows an exception captured by the top-level program, if any.
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().exception) std::rethrow_exception(handle_.promise().exception);
  }

  // --- awaitable interface (co_await task from a parent coroutine) ---------
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  [[nodiscard]] std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    handle_.promise().continuation = parent;
    return handle_;  // symmetric transfer: start the child now
  }
  T await_resume() {
    auto& promise = handle_.promise();
    if (promise.exception) std::rethrow_exception(promise.exception);
    if constexpr (!std::is_void_v<T>) {
      DKNN_ASSERT(promise.value.has_value(), "task finished without a value");
      return std::move(*promise.value);
    }
  }

private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_ = nullptr;
};

namespace detail {
template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}
inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}
}  // namespace detail

}  // namespace dknn

#include "sim/engine.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "sim/thread_pool.hpp"
#include "support/panic.hpp"
#include "support/timer.hpp"

namespace dknn {

Engine::Engine(EngineConfig config) : config_(config) {
  DKNN_REQUIRE(config_.world_size >= 1, "engine needs at least one machine");
  NetworkConfig net;
  net.world_size = config_.world_size;
  net.policy = config_.bandwidth;
  net.bits_per_round = config_.bits_per_round;
  net.ingress_bits_per_round = config_.ingress_bits_per_round;
  network_ = std::make_unique<Network>(net);
}

RunReport Engine::run(const MachineProgram& program) {
  const std::uint32_t k = config_.world_size;
  const Rng root(config_.seed);

  std::vector<std::unique_ptr<Ctx>> ctxs;
  ctxs.reserve(k);
  std::vector<Task<void>> tasks;
  tasks.reserve(k);
  for (MachineId i = 0; i < k; ++i) {
    ctxs.push_back(std::make_unique<Ctx>(i, k, root.split(i)));
    tasks.push_back(program(*ctxs[i]));
    DKNN_REQUIRE(tasks.back().valid(), "machine program must return a live Task");
    ctxs[i]->engine_set_resume(tasks[i].handle());
  }

  std::unique_ptr<ThreadPool> pool;
  // Pool victim-selection streams derive from the run seed, so a parallel
  // run's scheduling randomness is reproducible run-to-run like every other
  // random choice in the simulation.
  if (config_.parallel && k > 1) pool = std::make_unique<ThreadPool>(config_.threads, config_.seed);

  RunReport report;
  std::vector<std::uint64_t> step_ns(k, 0);
  std::vector<bool> alive(k, true);
  std::size_t alive_count = k;
  std::uint64_t round = 0;

  while (alive_count > 0) {
    if (round >= config_.max_rounds) {
      throw SimError("round budget exhausted after " + std::to_string(round) +
                     " rounds — deadlock or runaway protocol (max_rounds=" +
                     std::to_string(config_.max_rounds) + ")");
    }

    // (1) Deliver everything that completed transmission last round.
    network_->set_current_round(round);
    for (MachineId i = 0; i < k; ++i) {
      ctxs[i]->engine_set_round(round);
      ctxs[i]->engine_deliver(network_->collect_delivered(i));
    }

    // (2) Superstep: resume every runnable machine until it parks or
    // finishes.  Machines parked on a mail barrier with no new deliveries
    // are skipped — observationally equivalent and O(deliveries) instead of
    // O(rounds) during long bandwidth-limited transfers.
    auto step = [&](MachineId i) {
      auto handle = ctxs[i]->engine_take_resume();
      if (!handle) {
        step_ns[i] = 0;
        return;
      }
      if (config_.measure_compute) {
        WallTimer timer;
        handle.resume();
        step_ns[i] = timer.elapsed_ns();
      } else {
        handle.resume();
        step_ns[i] = 0;
      }
    };
    std::size_t stepped = 0;
    std::size_t stalled = 0;
    // The stall hook runs on the engine thread in machine order (also under
    // the pool executor), so hook state needs no synchronization.
    auto stalls = [&](MachineId i) {
      if (!config_.stall_hook || !config_.stall_hook(i, round)) return false;
      ++stalled;
      return true;
    };
    if (pool) {
      for (MachineId i = 0; i < k; ++i) {
        step_ns[i] = 0;
        if (alive[i] && ctxs[i]->engine_runnable() && !stalls(i)) {
          ++stepped;
          pool->submit([&step, i] { step(i); });
        }
      }
      pool->wait_idle();
    } else {
      for (MachineId i = 0; i < k; ++i) {
        step_ns[i] = 0;
        if (alive[i] && ctxs[i]->engine_runnable() && !stalls(i)) {
          ++stepped;
          step(i);
        }
      }
    }

    // Fast deadlock detection: nobody ran, nobody can be woken by traffic,
    // and nobody is merely stalled (a stalled machine may run next round —
    // a *permanent* stall ends in the round-budget SimError instead).
    if (stepped == 0 && stalled == 0 && !network_->in_flight() && alive_count > 0) {
      throw SimError("deadlock: all machines are waiting for messages and none are in flight");
    }

    // (3) Completions and failures (in machine order for determinism).
    for (MachineId i = 0; i < k; ++i) {
      if (!alive[i]) continue;
      if (tasks[i].done()) {
        tasks[i].rethrow_if_failed();
        alive[i] = false;
        --alive_count;
      } else {
        DKNN_ASSERT(ctxs[i]->engine_has_resume(),
                    "machine suspended outside a round barrier");
      }
    }

    // (4) Outboxes into the link model, ascending machine id (determinism).
    for (MachineId i = 0; i < k; ++i) {
      for (auto& env : ctxs[i]->engine_take_outbox()) network_->send(std::move(env));
    }

    // (5) Transmit B bits per directed link.
    network_->end_round(round);

    // (6) Cost accounting.
    std::uint64_t round_max = 0;
    std::uint64_t round_sum = 0;
    for (MachineId i = 0; i < k; ++i) {
      round_max = std::max(round_max, step_ns[i]);
      round_sum += step_ns[i];
    }
    if (config_.measure_compute) report.round_max_comp_ns.push_back(round_max);
    report.critical_path_comp_ns += round_max;
    report.total_comp_ns += round_sum;

    ++round;
  }

  report.rounds = round;
  report.traffic = network_->stats();
  return report;
}

}  // namespace dknn

#pragma once
/// \file thread_pool.hpp
/// \brief Work-stealing worker pool.
///
/// Used by two embarrassingly-parallel layers:
///   * the engine's parallel executor (one closure per alive machine per
///     superstep, then a barrier), and
///   * the batched local-scoring step in core/driver.cpp (one task per
///     shard × query-block tile).
///
/// Design: each worker owns a deque.  The owner pushes and pops at the back
/// (LIFO — nested submissions run hot), thieves steal *half* the victim's
/// queue from the front (FIFO — oldest, coarsest tasks migrate), so a single
/// producer's burst spreads across the pool in O(log tasks) steals.  All
/// deque access is mutex-guarded — the pool targets coarse tasks (≥ tens of
/// microseconds), where lock cost is noise and the simple protocol stays
/// TSan-clean.
///
/// Guarantees (unit-tested in tests/test_pool.cpp):
///   * every submitted job runs exactly once, even across shutdown;
///   * jobs may submit further jobs from inside the pool (they land on the
///     submitting worker's own deque; no deadlock at any nesting depth);
///   * exceptions escaping a job are captured and the *first* one is
///     rethrown from the next wait_idle() on the submitting thread;
///   * victim selection uses per-worker RNG streams that are a pure
///     function of (master seed, worker index) — Rng::split, the same
///     derivation the engine uses for machine streams — so scheduling
///     randomness is reproducible run-to-run for a fixed seed.
///
/// Output determinism is the *caller's* contract: tasks must write to
/// disjoint pre-sized slots (as the engine's per-machine contexts and the
/// driver's per-(query, shard) result slots do); the pool only promises
/// exactly-once execution, not ordering.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rng/rng.hpp"

namespace dknn {

class ThreadPool {
public:
  /// Seed for victim-selection streams when the caller has no run seed.
  static constexpr std::uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ULL;

  /// `threads == 0` uses std::thread::hardware_concurrency() (min 1).
  /// Worker i's steal RNG is Rng(seed).split(i).
  explicit ThreadPool(std::size_t threads = 0, std::uint64_t seed = kDefaultSeed);

  /// Drains every job already submitted (each runs exactly once), then
  /// joins.  Does not rethrow captured exceptions — call wait_idle() first
  /// if you need them.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job.  From a worker thread of *this* pool the job lands on
  /// that worker's own deque (nested submission); from any other thread the
  /// jobs round-robin across workers.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job (including nested ones) has finished,
  /// then rethrows the first exception any job raised since the last
  /// wait_idle(), if any.  Must not be called from inside a pool job.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Jobs submitted but not yet finished (queued + running) — a load
  /// observer for serving loops reporting background-maintenance pressure
  /// (e.g. in-flight compactions).  Racy by nature; never synchronize on it.
  [[nodiscard]] std::size_t pending_jobs() const { return unfinished_.load(); }

  /// A completion scope over a subset of this pool's jobs.  wait_idle()
  /// waits for *global* quiescence, which several independent submitters
  /// sharing one pool can starve indefinitely (each new batch of tiles
  /// keeps `unfinished_` above zero); a TaskGroup waits for exactly the
  /// jobs it submitted and rethrows only their first exception, so
  /// concurrent scoring batches and background compactions on a shared
  /// pool never wait on (or steal errors from) each other.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    /// wait()s; a throwing destructor would terminate, so the error (if
    /// any) is swallowed here — call wait() explicitly if you need it.
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Enqueues a job on the pool, tracked by this group.
    void submit(std::function<void()> job);

    /// Blocks until every job submitted through *this group* has finished,
    /// then rethrows the first exception any of them raised (clearing it).
    /// Unlike wait_idle(), safe while other threads keep the pool busy.
    void wait();

   private:
    ThreadPool& pool_;
    std::atomic<std::size_t> pending_{0};
    std::mutex mutex_;
    std::condition_variable done_;
    std::exception_ptr error_;  ///< guarded by mutex_
  };

private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> jobs;  ///< owner: back; thieves: front
    Rng rng;                                 ///< victim selection stream

    explicit Worker(Rng stream) : rng(std::move(stream)) {}
  };

  void worker_loop(std::size_t index);
  bool try_pop_local(std::size_t index, std::function<void()>& job);
  bool try_steal(std::size_t index, std::function<void()>& job);
  void run_job(std::function<void()>& job);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  /// Jobs sitting in some deque (not yet popped).  Guarded by sleep_mutex_
  /// for the sleep/wake protocol; also touched under the owning deque's
  /// mutex at push/pop sites.
  std::atomic<std::size_t> queued_{0};
  /// Jobs submitted but not yet finished executing.
  std::atomic<std::size_t> unfinished_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> next_external_{0};

  std::mutex sleep_mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::exception_ptr first_error_;  ///< guarded by sleep_mutex_
};

}  // namespace dknn

#pragma once
/// \file thread_pool.hpp
/// \brief Fixed-size worker pool used by the parallel executor.
///
/// The engine submits one closure per alive machine per superstep and waits
/// for all of them (a barrier).  Machines share no mutable state during a
/// step, so no synchronization beyond the queue itself is needed.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dknn {

class ThreadPool {
public:
  /// `threads == 0` uses std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; jobs must not throw (wrap and capture exceptions).
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished executing.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dknn

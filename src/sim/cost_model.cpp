#include "sim/cost_model.hpp"

namespace dknn {

SimCost bsp_cost(const RunReport& report, const CostModelConfig& config) {
  SimCost cost;
  cost.latency_sec = static_cast<double>(report.rounds) * config.alpha_us * 1e-6;
  cost.compute_sec =
      static_cast<double>(report.critical_path_comp_ns) * 1e-9 * config.compute_scale;
  cost.total_sec = cost.latency_sec + cost.compute_sec;
  return cost;
}

}  // namespace dknn

#pragma once
/// \file cost_model.hpp
/// \brief BSP wall-clock model over a RunReport.
///
/// This is the substitution for the paper's Crill-cluster wall-clock
/// measurements (see DESIGN.md §2): on a real cluster, the time of one
/// synchronous round is (slowest machine's local compute) + (network round
/// latency), and bandwidth-limited transfers already occupy multiple rounds
/// in the link model.  Summing over rounds gives the simulated wall-clock:
///
///   T = Σ_r ( max_i comp_ns(i, r) · compute_scale + α )
///
/// α models per-round synchronization/latency (MPI barrier + small-message
/// RTT, ~tens of microseconds on the paper's InfiniBand cluster).

#include <cstdint>

#include "sim/engine.hpp"

namespace dknn {

struct CostModelConfig {
  /// Per-round latency in microseconds (barrier + one small-message RTT).
  double alpha_us = 25.0;
  /// Multiplier on measured local compute (1.0 = charge as measured).
  double compute_scale = 1.0;
};

/// Decomposed simulated wall-clock for one run.
struct SimCost {
  double total_sec = 0.0;
  double latency_sec = 0.0;  ///< rounds × α
  double compute_sec = 0.0;  ///< Σ_r max_i comp
};

[[nodiscard]] SimCost bsp_cost(const RunReport& report, const CostModelConfig& config);

}  // namespace dknn

#include "sim/thread_pool.hpp"

#include <algorithm>

namespace dknn {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dknn

#include "sim/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dknn {
namespace {

/// Worker identity for nested submission: set for the lifetime of
/// worker_loop, so submit() can route a job to the submitting worker's own
/// deque instead of bouncing it through another worker.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker = 0;

struct PoolMetrics {
  obs::Counter& tasks = obs::registry().counter(
      "dknn_pool_tasks_total", "jobs submitted to any ThreadPool");
  obs::Counter& steals = obs::registry().counter(
      "dknn_pool_steals_total", "successful steal-half plunders");
  obs::Gauge& queue_depth = obs::registry().gauge(
      "dknn_pool_queue_depth", "jobs queued but not yet started, across all pools");
  obs::Histogram& task_latency = obs::registry().histogram(
      "dknn_pool_task_latency_ns", "job run time on a worker (excludes queueing)");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads, std::uint64_t seed) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const Rng root(seed);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    // Same (root seed, index) stream derivation the engine uses for machine
    // RNGs: worker streams are reproducible run-to-run for a fixed seed.
    workers_.push_back(std::make_unique<Worker>(root.split(i)));
  }
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(sleep_mutex_);
    stopping_.store(true, std::memory_order_relaxed);
  }
  work_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::submit(std::function<void()> job) {
  std::size_t target;
  if (tl_pool == this) {
    target = tl_worker;  // nested submission: stay on the submitting worker
  } else {
    target = next_external_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  }
  // Publish the counters *before* the job becomes stealable, so neither can
  // be observed at zero while the job is live.
  unfinished_.fetch_add(1, std::memory_order_relaxed);
  queued_.fetch_add(1, std::memory_order_relaxed);
  pool_metrics().tasks.add();
  pool_metrics().queue_depth.add(1);
  {
    std::lock_guard lock(workers_[target]->mutex);
    workers_[target]->jobs.push_back(std::move(job));
  }
  {
    std::lock_guard lock(sleep_mutex_);
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(sleep_mutex_);
  all_done_.wait(lock, [this] { return unfinished_.load(std::memory_order_acquire) == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

bool ThreadPool::try_pop_local(std::size_t index, std::function<void()>& job) {
  Worker& self = *workers_[index];
  std::lock_guard lock(self.mutex);
  if (self.jobs.empty()) return false;
  job = std::move(self.jobs.back());  // LIFO: nested submissions run cache-hot
  self.jobs.pop_back();
  queued_.fetch_sub(1, std::memory_order_relaxed);
  pool_metrics().queue_depth.sub(1);
  return true;
}

bool ThreadPool::try_steal(std::size_t index, std::function<void()>& job) {
  const std::size_t count = workers_.size();
  if (count <= 1) return false;
  Worker& self = *workers_[index];

  auto plunder = [&](std::size_t v) -> bool {
    Worker& victim = *workers_[v];
    std::vector<std::function<void()>> loot;
    {
      std::lock_guard lock(victim.mutex);
      const std::size_t avail = victim.jobs.size();
      if (avail == 0) return false;
      // Steal half, oldest first: the front of the deque holds the coarsest
      // not-yet-started work, so one steal rebalances a whole burst.
      const std::size_t take = (avail + 1) / 2;
      loot.reserve(take);
      for (std::size_t t = 0; t < take; ++t) {
        loot.push_back(std::move(victim.jobs.front()));
        victim.jobs.pop_front();
      }
    }
    job = std::move(loot.front());
    queued_.fetch_sub(1, std::memory_order_relaxed);
    pool_metrics().queue_depth.sub(1);
    pool_metrics().steals.add();
    if (loot.size() > 1) {
      std::lock_guard lock(self.mutex);
      for (std::size_t t = 1; t < loot.size(); ++t) self.jobs.push_back(std::move(loot[t]));
    }
    return true;
  };

  // A few random probes (per-worker deterministic stream), then one full
  // sweep so an empty-handed return really means "nothing was visible".
  for (int probe = 0; probe < 4; ++probe) {
    const auto v = static_cast<std::size_t>(self.rng.below(count));
    if (v != index && plunder(v)) return true;
  }
  for (std::size_t v = 0; v < count; ++v) {
    if (v != index && plunder(v)) return true;
  }
  return false;
}

void ThreadPool::run_job(std::function<void()>& job) {
  // Clock reads only when metrics are live — disabled observability must
  // cost this hot loop nothing but the branch.
  const bool timed = obs::registry().enabled();
  const std::uint64_t start_ns = timed ? obs::now_ns() : 0;
  try {
    job();
  } catch (...) {
    std::lock_guard lock(sleep_mutex_);
    if (first_error_ == nullptr) first_error_ = std::current_exception();
  }
  if (timed) pool_metrics().task_latency.record(obs::now_ns() - start_ns);
  job = nullptr;  // drop closure state before declaring the job finished
  if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lock(sleep_mutex_);
    all_done_.notify_all();
  }
}

ThreadPool::TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
  }
}

void ThreadPool::TaskGroup::submit(std::function<void()> job) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  // The wrapper owns error capture: a group job's exception lands in the
  // group (rethrown from its wait()), never in the pool's first_error_ —
  // so an unrelated wait_idle() caller cannot steal it.
  pool_.submit([this, job = std::move(job)] {
    try {
      job();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (error_ == nullptr) error_ = std::current_exception();
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(mutex_);
      done_.notify_all();
    }
  });
}

void ThreadPool::TaskGroup::wait() {
  std::unique_lock lock(mutex_);
  done_.wait(lock, [this] { return pending_.load(std::memory_order_acquire) == 0; });
  if (error_ != nullptr) {
    std::exception_ptr error = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_worker = index;
  std::function<void()> job;
  while (true) {
    if (try_pop_local(index, job) || try_steal(index, job)) {
      run_job(job);
      continue;
    }
    std::unique_lock lock(sleep_mutex_);
    work_available_.wait(lock, [this] {
      return stopping_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_relaxed) > 0;
    });
    // Drain-on-shutdown: exit only once no job is visible anywhere.  A job
    // still *running* elsewhere may spawn nested work, but that lands on
    // its own worker's deque, which that worker drains before exiting.
    if (stopping_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

}  // namespace dknn

#include "sim/context.hpp"

#include <algorithm>

namespace dknn {

void Ctx::send(MachineId dst, Tag tag, Bytes payload) {
  Envelope env;
  env.src = id_;
  env.dst = dst;
  env.tag = tag;
  env.payload = std::move(payload);
  outbox_.push_back(std::move(env));
}

std::optional<Envelope> Ctx::try_take(Tag tag) {
  for (auto it = mailbox_.begin(); it != mailbox_.end(); ++it) {
    if (it->tag == tag) {
      Envelope env = std::move(*it);
      mailbox_.erase(it);
      return env;
    }
  }
  return std::nullopt;
}

std::optional<Envelope> Ctx::try_take_any(std::span<const Tag> tags) {
  for (auto it = mailbox_.begin(); it != mailbox_.end(); ++it) {
    for (Tag tag : tags) {
      if (it->tag == tag) {
        Envelope env = std::move(*it);
        mailbox_.erase(it);
        return env;
      }
    }
  }
  return std::nullopt;
}

std::optional<Envelope> Ctx::try_take_from(MachineId src, Tag tag) {
  for (auto it = mailbox_.begin(); it != mailbox_.end(); ++it) {
    if (it->tag == tag && it->src == src) {
      Envelope env = std::move(*it);
      mailbox_.erase(it);
      return env;
    }
  }
  return std::nullopt;
}

void Ctx::engine_deliver(std::vector<Envelope> delivered) {
  if (seen_seq_.empty() && !delivered.empty()) seen_seq_.resize(world_);
  for (auto& env : delivered) {
    // At-most-once: drop network-level duplicates (same src + seq) so a
    // mail-parked machine is only woken by genuinely new messages.
    if (env.src < seen_seq_.size() && !seen_seq_[env.src].insert(env.seq).second) continue;
    mail_arrived_ = true;
    mailbox_.push_back(std::move(env));
  }
}

std::vector<Envelope> Ctx::engine_take_outbox() {
  std::vector<Envelope> out;
  out.swap(outbox_);
  return out;
}

}  // namespace dknn

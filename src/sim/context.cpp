#include "sim/context.hpp"

#include <algorithm>

namespace dknn {

void Ctx::send(MachineId dst, Tag tag, Bytes payload) {
  Envelope env;
  env.src = id_;
  env.dst = dst;
  env.tag = tag;
  env.payload = std::move(payload);
  outbox_.push_back(std::move(env));
}

std::optional<Envelope> Ctx::try_take(Tag tag) {
  for (auto it = mailbox_.begin(); it != mailbox_.end(); ++it) {
    if (it->tag == tag) {
      Envelope env = std::move(*it);
      mailbox_.erase(it);
      return env;
    }
  }
  return std::nullopt;
}

std::optional<Envelope> Ctx::try_take_any(std::span<const Tag> tags) {
  for (auto it = mailbox_.begin(); it != mailbox_.end(); ++it) {
    for (Tag tag : tags) {
      if (it->tag == tag) {
        Envelope env = std::move(*it);
        mailbox_.erase(it);
        return env;
      }
    }
  }
  return std::nullopt;
}

std::optional<Envelope> Ctx::try_take_from(MachineId src, Tag tag) {
  for (auto it = mailbox_.begin(); it != mailbox_.end(); ++it) {
    if (it->tag == tag && it->src == src) {
      Envelope env = std::move(*it);
      mailbox_.erase(it);
      return env;
    }
  }
  return std::nullopt;
}

void Ctx::engine_deliver(std::vector<Envelope> delivered) {
  if (!delivered.empty()) mail_arrived_ = true;
  for (auto& env : delivered) mailbox_.push_back(std::move(env));
}

std::vector<Envelope> Ctx::engine_take_outbox() {
  std::vector<Envelope> out;
  out.swap(outbox_);
  return out;
}

}  // namespace dknn

#include "serial/writer.hpp"

#include <bit>
#include <cstring>

namespace dknn {

void Writer::put_u8(std::uint8_t v) { buffer_.push_back(static_cast<std::byte>(v)); }

void Writer::put_u16(std::uint16_t v) {
  put_u8(static_cast<std::uint8_t>(v & 0xFF));
  put_u8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::put_u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    put_u8(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void Writer::put_u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    put_u8(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void Writer::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(static_cast<std::uint8_t>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  put_u8(static_cast<std::uint8_t>(v));
}

void Writer::put_varint_signed(std::int64_t v) {
  // Zig-zag: maps small-magnitude signed values to small unsigned values.
  const auto u = static_cast<std::uint64_t>(v);
  put_varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void Writer::put_bytes(const Bytes& data) {
  put_varint(data.size());
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void Writer::put_string(std::string_view s) {
  put_varint(s.size());
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  buffer_.insert(buffer_.end(), p, p + s.size());
}

}  // namespace dknn

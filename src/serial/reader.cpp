#include "serial/reader.hpp"

#include <bit>

#include "support/panic.hpp"

namespace dknn {

void Reader::need(std::size_t n) const {
  DKNN_REQUIRE(remaining() >= n, "serial::Reader: truncated message");
}

std::uint8_t Reader::get_u8() {
  need(1);
  return static_cast<std::uint8_t>((*data_)[pos_++]);
}

std::uint16_t Reader::get_u16() {
  const auto lo = static_cast<std::uint16_t>(get_u8());
  const auto hi = static_cast<std::uint16_t>(get_u8());
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t Reader::get_u32() {
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(get_u8()) << shift;
  }
  return v;
}

std::uint64_t Reader::get_u64() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(get_u8()) << shift;
  }
  return v;
}

double Reader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::uint64_t Reader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    DKNN_REQUIRE(shift < 64, "serial::Reader: varint too long");
    const std::uint8_t byte = get_u8();
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

std::int64_t Reader::get_varint_signed() {
  const std::uint64_t u = get_varint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

Bytes Reader::get_bytes() {
  const std::uint64_t len = get_varint();
  need(static_cast<std::size_t>(len));
  Bytes out(data_->begin() + static_cast<std::ptrdiff_t>(pos_),
            data_->begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += static_cast<std::size_t>(len);
  return out;
}

std::string Reader::get_string() {
  const std::uint64_t len = get_varint();
  need(static_cast<std::size_t>(len));
  std::string out(reinterpret_cast<const char*>(data_->data()) + pos_,
                  static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return out;
}

}  // namespace dknn

#pragma once
/// \file reader.hpp
/// \brief Bounds-checked byte reader matching serial/writer.hpp.
///
/// Every read validates remaining length and throws InvariantError on
/// truncation — a truncated message in the simulator is always a bug in the
/// sender or the link model, never something to silently tolerate.

#include <cstdint>
#include <string>

#include "serial/bytes.hpp"

namespace dknn {

class Reader {
public:
  explicit Reader(const Bytes& data) : data_(&data) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint16_t get_u16();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  [[nodiscard]] double get_f64();
  [[nodiscard]] std::uint64_t get_varint();
  [[nodiscard]] std::int64_t get_varint_signed();
  [[nodiscard]] Bytes get_bytes();
  [[nodiscard]] std::string get_string();
  [[nodiscard]] bool get_bool() { return get_u8() != 0; }

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return data_->size() - pos_; }
  /// True when the whole buffer has been consumed (decoders assert this).
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

private:
  void need(std::size_t n) const;

  const Bytes* data_;
  std::size_t pos_ = 0;
};

}  // namespace dknn

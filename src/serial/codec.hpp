#pragma once
/// \file codec.hpp
/// \brief Generic typed encode/decode on top of Writer/Reader.
///
/// A type participates by providing free functions
///   void encode(Writer&, const T&);
///   T decode_impl(Reader&, std::type_identity<T>);
/// Containers, pairs, and arithmetic primitives are provided here.  The
/// algorithm layer defines encode/decode for its message structs next to
/// their declarations (see core/messages.hpp).

#include <concepts>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "serial/reader.hpp"
#include "serial/writer.hpp"
#include "support/panic.hpp"

namespace dknn {

// --- primitives ------------------------------------------------------------

inline void encode(Writer& w, std::uint8_t v) { w.put_u8(v); }
inline void encode(Writer& w, std::uint16_t v) { w.put_u16(v); }
inline void encode(Writer& w, std::uint32_t v) { w.put_u32(v); }
inline void encode(Writer& w, std::uint64_t v) { w.put_u64(v); }
inline void encode(Writer& w, std::int64_t v) { w.put_i64(v); }
inline void encode(Writer& w, std::int32_t v) { w.put_i64(v); }
inline void encode(Writer& w, double v) { w.put_f64(v); }
inline void encode(Writer& w, bool v) { w.put_bool(v); }
inline void encode(Writer& w, const std::string& v) { w.put_string(v); }

inline std::uint8_t decode_impl(Reader& r, std::type_identity<std::uint8_t>) { return r.get_u8(); }
inline std::uint16_t decode_impl(Reader& r, std::type_identity<std::uint16_t>) { return r.get_u16(); }
inline std::uint32_t decode_impl(Reader& r, std::type_identity<std::uint32_t>) { return r.get_u32(); }
inline std::uint64_t decode_impl(Reader& r, std::type_identity<std::uint64_t>) { return r.get_u64(); }
inline std::int64_t decode_impl(Reader& r, std::type_identity<std::int64_t>) { return r.get_i64(); }
inline std::int32_t decode_impl(Reader& r, std::type_identity<std::int32_t>) {
  return static_cast<std::int32_t>(r.get_i64());
}
inline double decode_impl(Reader& r, std::type_identity<double>) { return r.get_f64(); }
inline bool decode_impl(Reader& r, std::type_identity<bool>) { return r.get_bool(); }
inline std::string decode_impl(Reader& r, std::type_identity<std::string>) { return r.get_string(); }

// --- composites -------------------------------------------------------------

template <typename A, typename B>
void encode(Writer& w, const std::pair<A, B>& p) {
  encode(w, p.first);
  encode(w, p.second);
}

template <typename T>
void encode(Writer& w, const std::vector<T>& items) {
  w.put_varint(items.size());
  for (const T& item : items) encode(w, item);
}

template <typename A, typename B>
std::pair<A, B> decode_impl(Reader& r, std::type_identity<std::pair<A, B>>) {
  A a = decode_impl(r, std::type_identity<A>{});
  B b = decode_impl(r, std::type_identity<B>{});
  return {std::move(a), std::move(b)};
}

template <typename T>
std::vector<T> decode_impl(Reader& r, std::type_identity<std::vector<T>>) {
  const std::uint64_t count = r.get_varint();
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(decode_impl(r, std::type_identity<T>{}));
  return out;
}

// --- entry points ------------------------------------------------------------

/// Serializes a value to a fresh byte buffer.
template <typename T>
[[nodiscard]] Bytes to_bytes(const T& value) {
  Writer w;
  encode(w, value);
  return std::move(w).take();
}

/// Decodes a value and requires the buffer to be fully consumed.
template <typename T>
[[nodiscard]] T from_bytes(const Bytes& data) {
  Reader r(data);
  T value = decode_impl(r, std::type_identity<T>{});
  DKNN_REQUIRE(r.exhausted(), "decode left trailing bytes (schema mismatch?)");
  return value;
}

/// Decodes a value from a reader (for nested use).
template <typename T>
[[nodiscard]] T decode(Reader& r) {
  return decode_impl(r, std::type_identity<T>{});
}

}  // namespace dknn

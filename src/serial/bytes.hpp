#pragma once
/// \file bytes.hpp
/// \brief Byte-buffer alias shared by serialization and the network layer.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dknn {

using Bytes = std::vector<std::byte>;

/// Exact size in bits of a payload; the network layer charges links in bits
/// because the k-machine model's bandwidth B is specified in bits per round.
[[nodiscard]] inline std::uint64_t bit_size(const Bytes& payload) {
  return static_cast<std::uint64_t>(payload.size()) * 8u;
}

}  // namespace dknn

#pragma once
/// \file writer.hpp
/// \brief Append-only byte writer (little-endian fixed width + LEB128).
///
/// All message payloads in the simulator are produced through this writer so
/// that the network layer's bit accounting reflects exactly what an
/// implementation would put on the wire.

#include <cstdint>
#include <string_view>
#include <type_traits>

#include "serial/bytes.hpp"

namespace dknn {

class Writer {
public:
  Writer() = default;

  /// Fixed-width little-endian unsigned integer.
  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);

  /// Two's-complement signed (zig-zag is reserved for varints).
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

  /// IEEE-754 doubles, bit-cast little-endian.
  void put_f64(double v);

  /// LEB128 varint: 1 byte for values < 128; used for counts and sizes.
  void put_varint(std::uint64_t v);

  /// Zig-zag-encoded signed varint.
  void put_varint_signed(std::int64_t v);

  /// Length-prefixed (varint) raw bytes / string.
  void put_bytes(const Bytes& data);
  void put_string(std::string_view s);

  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  [[nodiscard]] const Bytes& buffer() const { return buffer_; }
  [[nodiscard]] Bytes take() && { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

private:
  Bytes buffer_;
};

}  // namespace dknn

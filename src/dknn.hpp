#pragma once
/// \file dknn.hpp
/// \brief Umbrella header: the whole public API in one include.
///
///   #include "dknn.hpp"
///
/// Layering, bottom to top (see src/README.md for the full map and the
/// facade migration table):
///
///   support/ serial/ rng/      utilities, codecs, seeded randomness
///   net/ sim/                  the k-machine model: links, BSP engine,
///                              cost accounting, work-stealing pool
///   data/ seq/                 points, metrics, SoA stores, fused/SIMD
///                              kernels, kd-trees, centralized validators
///   election/ core/ (alg.)     the paper's protocols: selection, ℓ-NN,
///                              elections, sessions
///   fault/                     machine health, deadlines, replica mirror,
///                              survivor elections for recovery
///   serve/                     live single-store serving: SegmentStore,
///                              Compactor, QueryFrontEnd, result cache
///   core/knn_service.hpp       ★ the front door: KnnService unifies the
///                              static, batched and live query paths —
///                              start here; everything below is its
///                              decomposed stages
///
/// New capabilities land in the facade once instead of once per path; the
/// free functions stay public for callers who need a single stage.

// substrate: utilities, randomness, serialization
#include "rng/rng.hpp"            // IWYU pragma: export
#include "rng/sampling.hpp"       // IWYU pragma: export
#include "serial/codec.hpp"       // IWYU pragma: export
#include "support/cli.hpp"        // IWYU pragma: export
#include "support/stats.hpp"      // IWYU pragma: export
#include "support/table.hpp"      // IWYU pragma: export

// substrate: the k-machine model
#include "net/fault.hpp"          // IWYU pragma: export
#include "net/network.hpp"        // IWYU pragma: export
#include "sim/collectives.hpp"    // IWYU pragma: export
#include "sim/cost_model.hpp"     // IWYU pragma: export
#include "sim/engine.hpp"         // IWYU pragma: export

// data and sequential algorithms
#include "data/flat_store.hpp"    // IWYU pragma: export
#include "data/generators.hpp"    // IWYU pragma: export
#include "data/kernels.hpp"       // IWYU pragma: export
#include "data/key.hpp"           // IWYU pragma: export
#include "data/metric.hpp"        // IWYU pragma: export
#include "data/partition.hpp"     // IWYU pragma: export
#include "data/simd/dispatch.hpp" // IWYU pragma: export
#include "data/validate.hpp"      // IWYU pragma: export
#include "seq/brute.hpp"          // IWYU pragma: export
#include "seq/kdtree.hpp"         // IWYU pragma: export
#include "seq/scoring_policy.hpp" // IWYU pragma: export
#include "seq/select.hpp"         // IWYU pragma: export

// leader election
#include "election/min_id.hpp"    // IWYU pragma: export
#include "election/sublinear.hpp" // IWYU pragma: export

// fault tolerance: health registry, replica mirror, recovery elections
#include "fault/health.hpp"       // IWYU pragma: export
#include "fault/recovery.hpp"     // IWYU pragma: export

// the paper's algorithms and their decomposed driver stages
#include "core/binsearch.hpp"     // IWYU pragma: export
#include "core/dist_knn.hpp"      // IWYU pragma: export
#include "core/dist_select.hpp"   // IWYU pragma: export
#include "core/driver.hpp"        // IWYU pragma: export
#include "core/mlapi.hpp"         // IWYU pragma: export
#include "core/saukas_song.hpp"   // IWYU pragma: export
#include "core/session.hpp"       // IWYU pragma: export
#include "core/simple_knn.hpp"    // IWYU pragma: export
#include "core/vector_index.hpp"  // IWYU pragma: export

// live serving (epoch-snapshotted segment store + compaction + batching)
#include "serve/compactor.hpp"      // IWYU pragma: export
#include "serve/front_end.hpp"      // IWYU pragma: export
#include "serve/result_cache.hpp"   // IWYU pragma: export
#include "serve/segment_store.hpp"  // IWYU pragma: export

// the front door
#include "core/knn_service.hpp"   // IWYU pragma: export

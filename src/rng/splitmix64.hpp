#pragma once
/// \file splitmix64.hpp
/// \brief SplitMix64 generator (Steele, Lea & Flood 2014).
///
/// Used for seeding xoshiro256** and for deriving independent per-machine
/// streams: the k-machine model gives every machine "a private source of
/// true random bits" (paper §1.1); we model that as statistically
/// independent deterministic streams derived from one experiment seed.

#include <cstdint>

namespace dknn {

/// The reference SplitMix64 step: advances the state and returns 64 bits.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// One-shot mix: hashes a 64-bit value through the SplitMix64 finalizer.
/// Good avalanche; used to combine (seed, stream-id) into sub-seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64_next(s);
}

}  // namespace dknn

#include "rng/sampling.hpp"

#include <algorithm>
#include <cmath>

namespace dknn {

std::vector<std::size_t> sample_indices_without_replacement(std::size_t population,
                                                            std::size_t count, Rng& rng) {
  DKNN_REQUIRE(count <= population, "sample larger than population");
  // Sparse Fisher–Yates: conceptually shuffle [0, population) but only track
  // displaced entries in a hash map, so cost is O(count) not O(population).
  std::unordered_map<std::size_t, std::size_t> displaced;
  displaced.reserve(count * 2);
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.below(population - i));
    auto value_of = [&](std::size_t idx) {
      auto it = displaced.find(idx);
      return it == displaced.end() ? idx : it->second;
    };
    const std::size_t chosen = value_of(j);
    displaced[j] = value_of(i);
    out.push_back(chosen);
  }
  return out;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  DKNN_REQUIRE(n >= 1, "ZipfSampler needs at least one rank");
  DKNN_REQUIRE(s >= 0.0, "Zipf exponent must be non-negative");
  cdf_.reserve(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_.push_back(acc);
  }
  for (double& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // pin the top against accumulated rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace dknn

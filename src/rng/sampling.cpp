#include "rng/sampling.hpp"

namespace dknn {

std::vector<std::size_t> sample_indices_without_replacement(std::size_t population,
                                                            std::size_t count, Rng& rng) {
  DKNN_REQUIRE(count <= population, "sample larger than population");
  // Sparse Fisher–Yates: conceptually shuffle [0, population) but only track
  // displaced entries in a hash map, so cost is O(count) not O(population).
  std::unordered_map<std::size_t, std::size_t> displaced;
  displaced.reserve(count * 2);
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.below(population - i));
    auto value_of = [&](std::size_t idx) {
      auto it = displaced.find(idx);
      return it == displaced.end() ? idx : it->second;
    };
    const std::size_t chosen = value_of(j);
    displaced[j] = value_of(i);
    out.push_back(chosen);
  }
  return out;
}

}  // namespace dknn

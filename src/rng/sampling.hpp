#pragma once
/// \file sampling.hpp
/// \brief Shuffles and sampling-without-replacement.
///
/// Algorithm 2's Step 3 ("each machine samples 12·log ℓ points randomly and
/// independently") is implemented as sampling without replacement via a
/// partial Fisher–Yates shuffle (O(sample) time, O(1) extra memory beyond
/// the index map for small samples).

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "rng/rng.hpp"
#include "support/panic.hpp"

namespace dknn {

/// In-place Fisher–Yates shuffle.
template <typename T>
void shuffle(std::span<T> items, Rng& rng) {
  if (items.size() < 2) return;
  for (std::size_t i = items.size() - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i + 1));
    using std::swap;
    swap(items[i], items[j]);
  }
}

/// `count` distinct indices drawn uniformly from [0, population); order is
/// the selection order (itself uniform). Requires count <= population.
/// Sparse partial Fisher–Yates: O(count) time and space regardless of
/// population size.
[[nodiscard]] std::vector<std::size_t> sample_indices_without_replacement(std::size_t population,
                                                                          std::size_t count,
                                                                          Rng& rng);

/// Uniform sample without replacement of `count` elements of `items`.
template <typename T>
[[nodiscard]] std::vector<T> sample_without_replacement(std::span<const T> items, std::size_t count,
                                                        Rng& rng) {
  DKNN_REQUIRE(count <= items.size(), "sample larger than population");
  std::vector<T> out;
  out.reserve(count);
  for (std::size_t idx : sample_indices_without_replacement(items.size(), count, rng)) {
    out.push_back(items[idx]);
  }
  return out;
}

/// Zipf-distributed rank sampler over {0, …, n−1}: P(rank = r) ∝ 1/(r+1)^s.
/// The skewed-popularity generator behind bench_scenarios' zipf stanzas
/// (Debatty et al.'s online-graph evaluation is driven by exactly this
/// shape: a few hot items take most of the traffic).  Sampling is
/// inverse-CDF by binary search over a precomputed prefix table — O(n)
/// build, O(log n) per draw, deterministic given the Rng stream.
class ZipfSampler {
public:
  /// `n` ranks, exponent `s` ≥ 0 (s = 0 degenerates to uniform; s ≈ 1 is
  /// the classic web-traffic skew).
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  [[nodiscard]] double exponent() const { return s_; }

private:
  std::vector<double> cdf_;  ///< cdf_[r] = P(rank ≤ r), cdf_.back() == 1
  double s_ = 1.0;
};

/// Classic reservoir sampling (Vitter's Algorithm R) for streaming input;
/// used where the population size is unknown upfront.
template <typename T>
class Reservoir {
public:
  Reservoir(std::size_t capacity, Rng& rng) : capacity_(capacity), rng_(&rng) {
    DKNN_REQUIRE(capacity > 0, "reservoir capacity must be positive");
  }

  void offer(const T& item) {
    ++seen_;
    if (items_.size() < capacity_) {
      items_.push_back(item);
    } else {
      const std::uint64_t j = rng_->below(seen_);
      if (j < capacity_) items_[static_cast<std::size_t>(j)] = item;
    }
  }

  [[nodiscard]] std::span<const T> items() const { return items_; }
  [[nodiscard]] std::uint64_t seen() const { return seen_; }

private:
  std::size_t capacity_;
  Rng* rng_;
  std::uint64_t seen_ = 0;
  std::vector<T> items_;
};

}  // namespace dknn

#pragma once
/// \file rng.hpp
/// \brief Deterministic, splittable random number generation.
///
/// `Rng` wraps xoshiro256** (Blackman & Vigna 2018) behind a facade with:
///   * unbiased bounded integers (Lemire's multiply-shift with rejection),
///   * doubles in [0, 1),
///   * Bernoulli trials,
///   * weighted index selection (the leader's pivot-machine choice in
///     Algorithm 1 picks machine i with probability n_i / s),
///   * stream splitting (`split(tag)`) so every simulated machine gets an
///     independent stream that is a pure function of (root seed, tag).
///
/// Determinism contract: for a fixed seed and call sequence the outputs are
/// identical on every platform — tests pin known-answer vectors.

#include <array>
#include <cstdint>
#include <limits>
#include <span>

#include "support/panic.hpp"

namespace dknn {

/// xoshiro256** engine; satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 (never all-zero).
  explicit Xoshiro256(std::uint64_t seed);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Jump function: advances 2^128 steps; used to derive parallel streams.
  void jump();

  [[nodiscard]] std::array<std::uint64_t, 4> state() const { return state_; }

private:
  std::array<std::uint64_t, 4> state_;
};

/// Facade used by all simulator and algorithm code.
class Rng {
public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Independent child stream; pure function of (this stream's seed, tag).
  /// Splitting does not perturb this stream's own sequence.
  [[nodiscard]] Rng split(std::uint64_t tag) const;

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

  /// Unbiased integer in [0, bound) — bound must be positive.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound);

  /// Unbiased integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform01();

  /// Gaussian sample (Box–Muller; one fresh sample per call).
  [[nodiscard]] double gaussian(double mean = 0.0, double stddev = 1.0);

  /// True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p);

  /// Index i with probability weights[i] / sum(weights); weights need not be
  /// normalized. Zero-weight entries are never selected; the total must be
  /// positive.  This is exactly the leader's machine-selection step in
  /// Algorithm 1 (probability n_i / s).
  [[nodiscard]] std::size_t weighted_index(std::span<const std::uint64_t> weights);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] Xoshiro256& engine() { return engine_; }

private:
  Xoshiro256 engine_;
  std::uint64_t seed_;
};

}  // namespace dknn

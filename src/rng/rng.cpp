#include "rng/rng.hpp"

#include <bit>
#include <cmath>

#include "rng/splitmix64.hpp"

namespace dknn {

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64_next(s);
  // xoshiro requires a nonzero state; splitmix64 outputs are never all zero
  // for distinct inputs, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 0x9E3779B97f4A7C15ULL;
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

Rng Rng::split(std::uint64_t tag) const {
  // Child seed = mix(mix(seed) ^ golden-ratio-scrambled tag): distinct tags
  // give decorrelated streams, identical tags give identical streams.
  const std::uint64_t child =
      splitmix64_mix(splitmix64_mix(seed_) ^ (tag * 0x9E3779B97f4A7C15ULL + 0x7F4A7C15ULL));
  return Rng(child);
}

std::uint64_t Rng::below(std::uint64_t bound) {
  DKNN_REQUIRE(bound > 0, "Rng::below bound must be positive");
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) {
  DKNN_REQUIRE(lo <= hi, "Rng::between requires lo <= hi");
  const std::uint64_t span = hi - lo;
  if (span == std::numeric_limits<std::uint64_t>::max()) return next_u64();
  return lo + below(span + 1);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::gaussian(double mean, double stddev) {
  // Box–Muller; draw until u1 > 0 to avoid log(0).
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::weighted_index(std::span<const std::uint64_t> weights) {
  DKNN_REQUIRE(!weights.empty(), "weighted_index needs at least one weight");
  std::uint64_t total = 0;
  for (std::uint64_t w : weights) {
    DKNN_REQUIRE(total + w >= total, "weighted_index: weight sum overflow");
    total += w;
  }
  DKNN_REQUIRE(total > 0, "weighted_index: total weight must be positive");
  std::uint64_t ticket = below(total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (ticket < weights[i]) return i;
    ticket -= weights[i];
  }
  panic("weighted_index: ticket exceeded total weight");
}

}  // namespace dknn

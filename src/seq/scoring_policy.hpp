#pragma once
/// \file scoring_policy.hpp
/// \brief How a resident shard's local scoring structures are chosen.
///
/// Historically declared in core/driver.hpp next to ShardIndex; split out
/// so layers below the driver (notably the live-serving SegmentStore in
/// src/serve/, which decides per sealed segment whether to build a
/// KdRangeIndex) can name the policy without dragging in the whole engine
/// stack.  core/driver.hpp re-exports this header, so existing call sites
/// are unchanged.

#include <cstddef>
#include <cstdint>

namespace dknn {

/// How each shard's local scoring runs (the kd-tree role the paper's §1.4
/// assigns to trees: accelerate local computation, not rounds).
enum class ScoringPolicy : std::uint8_t {
  Brute,  ///< fused SoA scan of the whole shard
  Tree,   ///< KdRangeIndex prune, fused kernel on surviving leaves
  Auto,   ///< per-shard n·d heuristic (see tree_pays_off)
};

[[nodiscard]] const char* scoring_policy_name(ScoringPolicy policy);

/// Auto's per-shard heuristic: kd-tree pruning beats the dense scan only
/// when the shard is big enough to amortize the build and the
/// dimensionality low enough that boxes still prune (curse of
/// dimensionality: a tree needs n ≫ 2^d to discard anything).
[[nodiscard]] bool tree_pays_off(std::size_t n, std::size_t dim);

}  // namespace dknn

#pragma once
/// \file scoring_policy.hpp
/// \brief How a resident shard's local scoring structures are chosen.
///
/// Historically declared in core/driver.hpp next to ShardIndex; split out
/// so layers below the driver (notably the live-serving SegmentStore in
/// src/serve/, which decides per sealed segment whether to build a
/// KdRangeIndex) can name the policy without dragging in the whole engine
/// stack.  core/driver.hpp re-exports this header, so existing call sites
/// are unchanged.

#include <cstddef>
#include <cstdint>

namespace dknn {

/// How each shard's local scoring runs (the kd-tree role the paper's §1.4
/// assigns to trees: accelerate local computation, not rounds).
enum class ScoringPolicy : std::uint8_t {
  Brute,   ///< fused SoA scan of the whole shard
  Tree,    ///< KdRangeIndex prune, fused kernel on surviving leaves
  Auto,    ///< per-shard n·d heuristic (see tree_pays_off)
  Approx,  ///< k-NN graph beam search + exact rerank (src/ann/); recall
           ///< semantics, NOT byte parity — see src/ann/README.md.  Shards
           ///< below AnnConfig::min_points and delta-buffer rows still
           ///< score exactly.
};

[[nodiscard]] const char* scoring_policy_name(ScoringPolicy policy);

/// Auto's per-shard routing decision: true iff the kd-hybrid beat the
/// fused dense scan for shards of this (n, dim) on bench_scenarios'
/// calibration grid (measured brute-vs-tree timings and leaf-visit rates
/// over uniform and clustered data — see the table and its derivation in
/// scoring_policy.cpp, and the checked-in rows in BENCH_scenarios.json).
/// Low dimensions win from n = 2048 up; mid dimensions (≤ 24) only in a
/// moderate-n band where bound tests stay cheap relative to the scan they
/// skip; above d = 24 pruning never recovers its overhead.  Routing
/// changes cost only, never answers — both paths produce byte-identical
/// keys.
[[nodiscard]] bool tree_pays_off(std::size_t n, std::size_t dim);

}  // namespace dknn

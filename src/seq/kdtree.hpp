#pragma once
/// \file kdtree.hpp
/// \brief k-d tree for sequential ℓ-NN queries (Bentley [2]; Friedman,
///        Bentley & Finkel [6]).
///
/// The paper's related work discusses k-d trees at length: they accelerate
/// *local computation* but cannot reduce round complexity in the k-machine
/// model (§1.4).  We use them exactly in that role — each machine may build
/// a k-d tree over its local shard to speed up its local-ℓ-NN step — and as
/// the sequential baseline the micro-benchmarks compare against.
///
/// Queries return (distance, id) keys under the *Euclidean* metric, with the
/// same random-unique-id tie-breaking as every other component, so results
/// are comparable to brute force element-for-element.

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "data/flat_store.hpp"
#include "data/kernels.hpp"
#include "data/key.hpp"
#include "data/point.hpp"

namespace dknn {

/// Cumulative kd-hybrid traversal counters — the measured pruning behavior
/// behind every `tree` scoring path.  Accumulated per KdRangeIndex across
/// hybrid_top_ell_batch calls (relaxed atomics: concurrent query tiles
/// over one shard add without tearing), surfaced per shard set via
/// `tree_stats(indexes)`, per live store via `SegmentStore::tree_stats()`,
/// and per service via `ServiceStats::tree`.  This is the signal the
/// `tree_pays_off` calibration table is derived from (bench_scenarios'
/// `calibration` stanza, see bench/README.md): a routing choice is good
/// exactly when points_scored / (queries · n) is small.
struct TreeStats {
  std::uint64_t queries = 0;         ///< traversals run
  std::uint64_t nodes_visited = 0;   ///< nodes whose box bound was tested
  std::uint64_t subtrees_pruned = 0; ///< bound tests that cut a whole subtree
  std::uint64_t leaves_scored = 0;   ///< leaves handed to the fused kernel
  std::uint64_t points_scored = 0;   ///< rows those leaves contained

  TreeStats& operator+=(const TreeStats& other) {
    queries += other.queries;
    nodes_visited += other.nodes_visited;
    subtrees_pruned += other.subtrees_pruned;
    leaves_scored += other.leaves_scored;
    points_scored += other.points_scored;
    return *this;
  }

  /// Fraction of the resident rows the kernels actually scanned:
  /// points_scored / (queries · n).  1.0 when nothing pruned, 0 when no
  /// traversal ran.
  [[nodiscard]] double scan_fraction(std::size_t n) const {
    if (queries == 0 || n == 0) return 0.0;
    return static_cast<double>(points_scored) /
           (static_cast<double>(queries) * static_cast<double>(n));
  }
};

class KdTree {
public:
  /// Builds a balanced tree by recursive median split (axis = depth mod d).
  /// O(n log n).  `ids[i]` labels `points[i]`.
  KdTree(std::vector<PointD> points, std::vector<PointId> ids);

  /// The ℓ nearest neighbors of `query` in ascending (distance, id) order;
  /// indices refer to the constructor's `points` vector.
  [[nodiscard]] std::vector<std::pair<Key, std::size_t>> knn(const PointD& query,
                                                             std::size_t ell) const;

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::size_t dim() const { return dim_; }

  /// Number of nodes visited by the last knn() call (pruning diagnostics;
  /// not thread-safe across concurrent queries).
  [[nodiscard]] std::size_t last_visited() const { return last_visited_; }

private:
  struct Node {
    std::size_t point = 0;              ///< index into points_
    std::uint32_t axis = 0;
    std::int32_t left = -1, right = -1; ///< node indices, -1 = leaf edge
  };

  std::int32_t build(std::span<std::size_t> order, std::uint32_t depth);

  struct HeapEntry {
    Key key;
    std::size_t index;
    friend bool operator<(const HeapEntry& a, const HeapEntry& b) { return a.key < b.key; }
  };
  void search(std::int32_t node, const PointD& query, std::size_t ell,
              std::vector<HeapEntry>& heap) const;

  std::vector<PointD> points_;
  std::vector<PointId> ids_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::size_t dim_ = 0;
  mutable std::size_t last_visited_ = 0;
};

/// Range-leaf kd-tree over a FlatStore — the tree half of the hybrid local
/// scoring mode (PANDA's prune-then-partition structure, see PAPERS.md).
///
/// Construction reorders the shard so every tree node covers a *contiguous
/// index range* of the rebuilt SoA store; internal nodes carry bounding
/// boxes and a median split (axis = widest extent, deterministic id
/// tie-break), leaves hold up to `leaf_size` points.  A query traversal
/// prunes whole subtrees against the running top-ℓ bound and hands each
/// surviving leaf range to the fused SoA kernel (data/kernels.hpp's
/// RangeTopEll), so the scan cost drops toward the tree-pruned point count
/// while the per-point arithmetic stays the vectorized column kernel.
class KdRangeIndex {
 public:
  /// Points per leaf.  A quarter of the kernels' 1024-point tile: small
  /// enough to prune meaningfully, large enough that the column kernel
  /// still amortizes its setup over each surviving leaf.
  static constexpr std::size_t kDefaultLeafSize = 256;

  /// Builds the reordered store + tree; O(n·d·log(n/leaf_size)).
  /// `ids[i]` labels `points[i]`; all points must share one dimension ≥ 1
  /// (an empty input builds an empty index).
  KdRangeIndex(std::span<const PointD> points, std::span<const PointId> ids,
               std::size_t leaf_size = kDefaultLeafSize);

  /// The tree-ordered SoA mirror of the construction input.  Node ranges
  /// index into this store; brute-force scans of it select the same keys as
  /// scans of the original order (selection is order-blind).
  [[nodiscard]] const FlatStore& store() const { return store_; }

  [[nodiscard]] std::size_t size() const { return store_.size(); }
  [[nodiscard]] std::size_t dim() const { return store_.dim(); }
  [[nodiscard]] bool empty() const { return store_.empty(); }
  [[nodiscard]] std::size_t leaf_size() const { return leaf_size_; }

  struct Node {
    std::size_t lo = 0, hi = 0;           ///< store index range [lo, hi)
    std::int32_t left = -1, right = -1;   ///< node indices; leaf iff left < 0
    std::uint32_t axis = 0;               ///< split axis (internal nodes)
    double split = 0.0;                   ///< near-side routing value
  };

  /// Preorder nodes; index 0 is the root when non-empty.
  [[nodiscard]] std::span<const Node> nodes() const { return nodes_; }

  /// Bounding box of node `i`: dim() lower / upper coordinates.
  [[nodiscard]] std::span<const double> box_lo(std::size_t i) const {
    return {box_lo_.data() + i * store_.dim(), store_.dim()};
  }
  [[nodiscard]] std::span<const double> box_hi(std::size_t i) const {
    return {box_hi_.data() + i * store_.dim(), store_.dim()};
  }

  /// Snapshot of the cumulative traversal counters (see TreeStats).
  [[nodiscard]] TreeStats stats() const {
    TreeStats out;
    out.queries = stat_queries_.load(std::memory_order_relaxed);
    out.nodes_visited = stat_nodes_.load(std::memory_order_relaxed);
    out.subtrees_pruned = stat_pruned_.load(std::memory_order_relaxed);
    out.leaves_scored = stat_leaves_.load(std::memory_order_relaxed);
    out.points_scored = stat_points_.load(std::memory_order_relaxed);
    return out;
  }

  /// Zeroes the counters (per-stanza deltas in the benches).
  void reset_stats() const {
    stat_queries_.store(0, std::memory_order_relaxed);
    stat_nodes_.store(0, std::memory_order_relaxed);
    stat_pruned_.store(0, std::memory_order_relaxed);
    stat_leaves_.store(0, std::memory_order_relaxed);
    stat_points_.store(0, std::memory_order_relaxed);
  }

  /// One batch's worth of counters, added with relaxed atomics (called by
  /// hybrid_top_ell_batch once per call, not per node).
  void add_stats(const TreeStats& delta) const {
    stat_queries_.fetch_add(delta.queries, std::memory_order_relaxed);
    stat_nodes_.fetch_add(delta.nodes_visited, std::memory_order_relaxed);
    stat_pruned_.fetch_add(delta.subtrees_pruned, std::memory_order_relaxed);
    stat_leaves_.fetch_add(delta.leaves_scored, std::memory_order_relaxed);
    stat_points_.fetch_add(delta.points_scored, std::memory_order_relaxed);
  }

 private:
  std::int32_t build(std::span<const PointD> points, std::span<const PointId> ids,
                     std::vector<std::size_t>& order, std::size_t lo, std::size_t hi);

  FlatStore store_;
  std::vector<Node> nodes_;
  std::vector<double> box_lo_, box_hi_;  ///< nodes × dim, aligned with nodes_
  std::size_t leaf_size_ = kDefaultLeafSize;
  // Traversal counters (mutable: queries are const; atomic: concurrent
  // query tiles share one index).  Counting never changes an answer byte.
  mutable std::atomic<std::uint64_t> stat_queries_{0};
  mutable std::atomic<std::uint64_t> stat_nodes_{0};
  mutable std::atomic<std::uint64_t> stat_pruned_{0};
  mutable std::atomic<std::uint64_t> stat_leaves_{0};
  mutable std::atomic<std::uint64_t> stat_points_{0};
};

/// Tree-pruned batched scoring: per query, descend `index`, skip subtrees
/// whose conservative raw-domain box bound exceeds the current rejection
/// threshold, and run the fused kernel on surviving leaf ranges.  The box
/// bound folds per-dimension gaps in the exact accumulation order of the
/// kernels, so (by monotonicity of rounding) it never exceeds any covered
/// point's raw score — pruning is lossless and the output is byte-identical
/// to fused_top_ell_batch over index.store() (fuzzed in tests/test_parity.cpp).
void hybrid_top_ell_batch(const KdRangeIndex& index, std::span<const PointD> queries,
                          std::size_t ell, MetricKind kind,
                          std::vector<std::vector<Key>>& out, KernelScratch& scratch);

}  // namespace dknn

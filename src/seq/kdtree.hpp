#pragma once
/// \file kdtree.hpp
/// \brief k-d tree for sequential ℓ-NN queries (Bentley [2]; Friedman,
///        Bentley & Finkel [6]).
///
/// The paper's related work discusses k-d trees at length: they accelerate
/// *local computation* but cannot reduce round complexity in the k-machine
/// model (§1.4).  We use them exactly in that role — each machine may build
/// a k-d tree over its local shard to speed up its local-ℓ-NN step — and as
/// the sequential baseline the micro-benchmarks compare against.
///
/// Queries return (distance, id) keys under the *Euclidean* metric, with the
/// same random-unique-id tie-breaking as every other component, so results
/// are comparable to brute force element-for-element.

#include <cstdint>
#include <span>
#include <vector>

#include "data/key.hpp"
#include "data/point.hpp"

namespace dknn {

class KdTree {
public:
  /// Builds a balanced tree by recursive median split (axis = depth mod d).
  /// O(n log n).  `ids[i]` labels `points[i]`.
  KdTree(std::vector<PointD> points, std::vector<PointId> ids);

  /// The ℓ nearest neighbors of `query` in ascending (distance, id) order;
  /// indices refer to the constructor's `points` vector.
  [[nodiscard]] std::vector<std::pair<Key, std::size_t>> knn(const PointD& query,
                                                             std::size_t ell) const;

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::size_t dim() const { return dim_; }

  /// Number of nodes visited by the last knn() call (pruning diagnostics;
  /// not thread-safe across concurrent queries).
  [[nodiscard]] std::size_t last_visited() const { return last_visited_; }

private:
  struct Node {
    std::size_t point = 0;              ///< index into points_
    std::uint32_t axis = 0;
    std::int32_t left = -1, right = -1; ///< node indices, -1 = leaf edge
  };

  std::int32_t build(std::span<std::size_t> order, std::uint32_t depth);

  struct HeapEntry {
    Key key;
    std::size_t index;
    friend bool operator<(const HeapEntry& a, const HeapEntry& b) { return a.key < b.key; }
  };
  void search(std::int32_t node, const PointD& query, std::size_t ell,
              std::vector<HeapEntry>& heap) const;

  std::vector<PointD> points_;
  std::vector<PointId> ids_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::size_t dim_ = 0;
  mutable std::size_t last_visited_ = 0;
};

}  // namespace dknn

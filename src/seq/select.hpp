#pragma once
/// \file select.hpp
/// \brief Sequential selection algorithms (CLRS [5], cited by the paper).
///
/// `quickselect` is the randomized selection algorithm whose distributed
/// analogue is the paper's Algorithm 1; `mom_select` is the deterministic
/// worst-case-linear median-of-medians algorithm.  Both are ground truth
/// for the distributed implementations and baselines in their own right.

#include <algorithm>
#include <span>
#include <vector>

#include "rng/rng.hpp"
#include "support/panic.hpp"

namespace dknn {

namespace detail {

/// Three-way partition of [lo, hi) around the value at pivot_index.
/// Returns [eq_begin, eq_end): the final positions of elements == pivot.
template <typename T>
std::pair<std::size_t, std::size_t> partition3(std::vector<T>& a, std::size_t lo, std::size_t hi,
                                               std::size_t pivot_index) {
  const T pivot = a[pivot_index];
  std::size_t lt = lo, i = lo, gt = hi;
  while (i < gt) {
    if (a[i] < pivot) {
      std::swap(a[i], a[lt]);
      ++lt;
      ++i;
    } else if (pivot < a[i]) {
      --gt;
      std::swap(a[i], a[gt]);
    } else {
      ++i;
    }
  }
  return {lt, gt};
}

template <typename T>
T mom_select_impl(std::vector<T>& a, std::size_t lo, std::size_t hi, std::size_t rank);

/// Median-of-medians pivot: median of the ⌈n/5⌉ group medians.
template <typename T>
std::size_t mom_pivot_index(std::vector<T>& a, std::size_t lo, std::size_t hi) {
  const std::size_t n = hi - lo;
  if (n <= 5) {
    std::sort(a.begin() + static_cast<std::ptrdiff_t>(lo),
              a.begin() + static_cast<std::ptrdiff_t>(hi));
    return lo + n / 2;
  }
  // Move group medians to the front of the range.
  std::size_t write = lo;
  for (std::size_t group = lo; group < hi; group += 5) {
    const std::size_t group_end = std::min(group + 5, hi);
    std::sort(a.begin() + static_cast<std::ptrdiff_t>(group),
              a.begin() + static_cast<std::ptrdiff_t>(group_end));
    const std::size_t median = group + (group_end - group) / 2;
    std::swap(a[write], a[median]);
    ++write;
  }
  // Recursively select the median of the medians; find its index.
  std::vector<T> medians(a.begin() + static_cast<std::ptrdiff_t>(lo),
                         a.begin() + static_cast<std::ptrdiff_t>(write));
  const std::size_t m = medians.size();
  const T pivot_value = mom_select_impl(medians, 0, m, m / 2);
  for (std::size_t i = lo; i < write; ++i) {
    if (!(a[i] < pivot_value) && !(pivot_value < a[i])) return i;
  }
  panic("median-of-medians pivot not found");
}

template <typename T>
T mom_select_impl(std::vector<T>& a, std::size_t lo, std::size_t hi, std::size_t rank) {
  while (true) {
    DKNN_ASSERT(lo < hi && rank < hi - lo, "mom_select: rank out of range");
    if (hi - lo == 1) return a[lo];
    const std::size_t pivot_index = mom_pivot_index(a, lo, hi);
    const auto [eq_begin, eq_end] = partition3(a, lo, hi, pivot_index);
    const std::size_t below = eq_begin - lo;
    const std::size_t equal = eq_end - eq_begin;
    if (rank < below) {
      hi = eq_begin;
    } else if (rank < below + equal) {
      return a[eq_begin];
    } else {
      rank -= below + equal;
      lo = eq_end;
    }
  }
}

}  // namespace detail

/// The `rank`-th smallest element (0-based) by randomized quickselect.
/// Expected O(n); the vector is consumed as scratch.
template <typename T>
[[nodiscard]] T quickselect(std::vector<T> a, std::size_t rank, Rng& rng) {
  DKNN_REQUIRE(rank < a.size(), "quickselect: rank out of range");
  std::size_t lo = 0, hi = a.size();
  while (true) {
    if (hi - lo == 1) return a[lo];
    const std::size_t pivot_index = lo + static_cast<std::size_t>(rng.below(hi - lo));
    const auto [eq_begin, eq_end] = detail::partition3(a, lo, hi, pivot_index);
    const std::size_t below = eq_begin - lo;
    const std::size_t equal = eq_end - eq_begin;
    if (rank < below) {
      hi = eq_begin;
    } else if (rank < below + equal) {
      return a[eq_begin];
    } else {
      rank -= below + equal;
      lo = eq_end;
    }
  }
}

/// The `rank`-th smallest element (0-based) by deterministic
/// median-of-medians; worst-case O(n). The vector is consumed as scratch.
template <typename T>
[[nodiscard]] T mom_select(std::vector<T> a, std::size_t rank) {
  DKNN_REQUIRE(rank < a.size(), "mom_select: rank out of range");
  return detail::mom_select_impl(a, 0, a.size(), rank);
}

/// The `ell` smallest elements in ascending order (ell == 0 gives empty).
/// Bounded max-heap: O(n log ell) time, O(ell) space — this is each
/// machine's local pruning step in Algorithm 2 and the simple baseline.
template <typename T>
[[nodiscard]] std::vector<T> top_ell_smallest(std::span<const T> items, std::size_t ell) {
  if (ell == 0) return {};
  std::vector<T> heap;  // max-heap of the current ell smallest
  heap.reserve(std::min(ell, items.size()));
  for (const T& item : items) {
    if (heap.size() < ell) {
      heap.push_back(item);
      std::push_heap(heap.begin(), heap.end());
    } else if (item < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = item;
      std::push_heap(heap.begin(), heap.end());
    }
  }
  std::sort_heap(heap.begin(), heap.end());
  return heap;
}

}  // namespace dknn

#include "seq/weighted_median.hpp"

#include <algorithm>

#include "support/bits.hpp"
#include "support/panic.hpp"

namespace dknn {

Key weighted_median(std::span<const WeightedKey> items) {
  std::vector<WeightedKey> sorted;
  sorted.reserve(items.size());
  std::uint64_t total = 0;
  for (const auto& item : items) {
    if (item.weight == 0) continue;
    DKNN_REQUIRE(total + item.weight >= total, "weighted_median: weight overflow");
    total += item.weight;
    sorted.push_back(item);
  }
  DKNN_REQUIRE(total > 0, "weighted_median: total weight must be positive");
  std::sort(sorted.begin(), sorted.end(),
            [](const WeightedKey& a, const WeightedKey& b) { return a.key < b.key; });
  const std::uint64_t half = ceil_div<std::uint64_t>(total, 2);
  std::uint64_t cumulative = 0;
  for (const auto& item : sorted) {
    cumulative += item.weight;
    if (cumulative >= half) return item.key;
  }
  panic("weighted_median: cumulative weight never reached half");
}

}  // namespace dknn

#include "seq/kdtree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "data/metric.hpp"
#include "data/validate.hpp"
#include "support/panic.hpp"

namespace dknn {

KdTree::KdTree(std::vector<PointD> points, std::vector<PointId> ids)
    : points_(std::move(points)), ids_(std::move(ids)) {
  DKNN_REQUIRE(points_.size() == ids_.size(), "points and ids must align");
  if (points_.empty()) return;
  dim_ = points_[0].dim();
  DKNN_REQUIRE(dim_ >= 1, "kd-tree needs dimension >= 1");
  for (const auto& p : points_) {
    DKNN_REQUIRE(p.dim() == dim_, "kd-tree: inconsistent dimensions");
  }
  std::vector<std::size_t> order(points_.size());
  std::iota(order.begin(), order.end(), 0);
  nodes_.reserve(points_.size());
  root_ = build(order, 0);
}

std::int32_t KdTree::build(std::span<std::size_t> order, std::uint32_t depth) {
  if (order.empty()) return -1;
  const auto axis = static_cast<std::uint32_t>(depth % dim_);
  const std::size_t mid = order.size() / 2;
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(mid), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     // Tie-break on id so the build is fully deterministic.
                     const double xa = points_[a][axis], xb = points_[b][axis];
                     return xa != xb ? xa < xb : ids_[a] < ids_[b];
                   });
  const auto node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{order[mid], axis, -1, -1});
  const std::int32_t left = build(order.subspan(0, mid), depth + 1);
  const std::int32_t right = build(order.subspan(mid + 1), depth + 1);
  nodes_[static_cast<std::size_t>(node_index)].left = left;
  nodes_[static_cast<std::size_t>(node_index)].right = right;
  return node_index;
}

std::vector<std::pair<Key, std::size_t>> KdTree::knn(const PointD& query, std::size_t ell) const {
  last_visited_ = 0;
  if (points_.empty() || ell == 0) return {};
  require_query_dim(dim_, query.dim());
  std::vector<HeapEntry> heap;  // max-heap of current best ell
  heap.reserve(std::min(ell, points_.size()));
  search(root_, query, ell, heap);
  std::sort_heap(heap.begin(), heap.end());
  std::vector<std::pair<Key, std::size_t>> out;
  out.reserve(heap.size());
  for (const auto& entry : heap) out.emplace_back(entry.key, entry.index);
  return out;
}

void KdTree::search(std::int32_t node_index, const PointD& query, std::size_t ell,
                    std::vector<HeapEntry>& heap) const {
  if (node_index < 0) return;
  ++last_visited_;
  const Node& node = nodes_[static_cast<std::size_t>(node_index)];
  const PointD& p = points_[node.point];

  const EuclideanMetric metric;
  const Key key{encode_distance(metric(p, query)), ids_[node.point]};
  if (heap.size() < ell) {
    heap.push_back(HeapEntry{key, node.point});
    std::push_heap(heap.begin(), heap.end());
  } else if (key < heap.front().key) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = HeapEntry{key, node.point};
    std::push_heap(heap.begin(), heap.end());
  }

  const double diff = query[node.axis] - p[node.axis];
  const std::int32_t near = diff < 0 ? node.left : node.right;
  const std::int32_t far = diff < 0 ? node.right : node.left;
  search(near, query, ell, heap);

  // Visit the far side only if the splitting plane could host a better
  // neighbor than the current ell-th best (or the heap is not full yet).
  const bool heap_full = heap.size() >= ell;
  const double worst = heap_full ? decode_distance(heap.front().key.rank)
                                 : std::numeric_limits<double>::infinity();
  if (!heap_full || std::fabs(diff) <= worst) {
    search(far, query, ell, heap);
  }
}

// --- KdRangeIndex -----------------------------------------------------------

KdRangeIndex::KdRangeIndex(std::span<const PointD> points, std::span<const PointId> ids,
                           std::size_t leaf_size)
    : leaf_size_(leaf_size) {
  DKNN_REQUIRE(points.size() == ids.size(), "KdRangeIndex: points and ids must align");
  DKNN_REQUIRE(leaf_size_ >= 1, "KdRangeIndex: leaf_size must be positive");
  if (points.empty()) return;
  const std::size_t d = points[0].dim();
  DKNN_REQUIRE(d >= 1, "KdRangeIndex: needs dimension >= 1");
  for (const auto& p : points) {
    DKNN_REQUIRE(p.dim() == d, "KdRangeIndex: inconsistent dimensions");
  }

  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  // Preorder node count is bounded by 2 * ceil(n / leaf) - 1.
  nodes_.reserve(2 * (points.size() / leaf_size_ + 1));
  box_lo_.reserve(nodes_.capacity() * d);
  box_hi_.reserve(nodes_.capacity() * d);
  build(points, ids, order, 0, points.size());

  std::vector<PointD> reordered;
  std::vector<PointId> reordered_ids;
  reordered.reserve(points.size());
  reordered_ids.reserve(points.size());
  for (const std::size_t i : order) {
    reordered.push_back(points[i]);
    reordered_ids.push_back(ids[i]);
  }
  store_ = FlatStore(reordered, reordered_ids);
}

std::int32_t KdRangeIndex::build(std::span<const PointD> points, std::span<const PointId> ids,
                                 std::vector<std::size_t>& order, std::size_t lo,
                                 std::size_t hi) {
  const std::size_t d = points[0].dim();
  const auto node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{lo, hi, -1, -1, 0, 0.0});

  // Bounding box over [lo, hi); also find the widest axis for the split.
  const std::size_t box_at = box_lo_.size();
  box_lo_.resize(box_at + d, std::numeric_limits<double>::infinity());
  box_hi_.resize(box_at + d, -std::numeric_limits<double>::infinity());
  for (std::size_t i = lo; i < hi; ++i) {
    const PointD& p = points[order[i]];
    for (std::size_t j = 0; j < d; ++j) {
      box_lo_[box_at + j] = std::min(box_lo_[box_at + j], p[j]);
      box_hi_[box_at + j] = std::max(box_hi_[box_at + j], p[j]);
    }
  }
  if (hi - lo <= leaf_size_) return node_index;

  std::uint32_t axis = 0;
  double widest = -1.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double extent = box_hi_[box_at + j] - box_lo_[box_at + j];
    if (extent > widest) {
      widest = extent;
      axis = static_cast<std::uint32_t>(j);
    }
  }

  const std::size_t mid = lo + (hi - lo) / 2;
  std::nth_element(order.begin() + static_cast<std::ptrdiff_t>(lo),
                   order.begin() + static_cast<std::ptrdiff_t>(mid),
                   order.begin() + static_cast<std::ptrdiff_t>(hi),
                   [&](std::size_t a, std::size_t b) {
                     // Tie-break on id so the build is fully deterministic.
                     const double xa = points[a][axis], xb = points[b][axis];
                     return xa != xb ? xa < xb : ids[a] < ids[b];
                   });
  nodes_[static_cast<std::size_t>(node_index)].axis = axis;
  nodes_[static_cast<std::size_t>(node_index)].split = points[order[mid]][axis];
  const std::int32_t left = build(points, ids, order, lo, mid);
  const std::int32_t right = build(points, ids, order, mid, hi);
  nodes_[static_cast<std::size_t>(node_index)].left = left;
  nodes_[static_cast<std::size_t>(node_index)].right = right;
  return node_index;
}

namespace {

/// Smallest possible raw kernel score of any point inside the box, folded
/// per dimension in ascending order — the *same* operation sequence as the
/// scoring kernels, so by monotonicity of IEEE rounding the returned value
/// never exceeds any covered point's computed raw score.  (Per dimension:
/// every in-box coordinate difference dominates the gap to the nearer box
/// face in exact arithmetic, and rounding preserves ≤; squares, sums and
/// max are likewise monotone operation by operation.)
double box_raw_bound(MetricKind kind, std::span<const double> box_lo,
                     std::span<const double> box_hi, const PointD& query) {
  double acc = 0.0;
  for (std::size_t j = 0; j < box_lo.size(); ++j) {
    const double lo_gap = box_lo[j] - query[j];
    const double hi_gap = query[j] - box_hi[j];
    double gap = lo_gap > hi_gap ? lo_gap : hi_gap;
    if (gap < 0.0) gap = 0.0;
    switch (kind) {
      case MetricKind::Euclidean:
      case MetricKind::SquaredEuclidean: acc += gap * gap; break;
      case MetricKind::Manhattan: acc += gap; break;
      case MetricKind::Chebyshev: acc = std::max(acc, gap); break;
    }
  }
  return acc;
}

void hybrid_query(const KdRangeIndex& index, const PointD& query, MetricKind kind,
                  std::int32_t node_index, RangeTopEll& scorer, TreeStats& stats) {
  const auto at = static_cast<std::size_t>(node_index);
  const KdRangeIndex::Node& node = index.nodes()[at];
  ++stats.nodes_visited;
  // Lossless prune: bound ≤ every covered raw score, so bound > threshold
  // means the heap prefilter would reject the whole subtree point by point.
  if (box_raw_bound(kind, index.box_lo(at), index.box_hi(at), query) > scorer.threshold()) {
    ++stats.subtrees_pruned;
    return;
  }
  if (node.left < 0) {
    ++stats.leaves_scored;
    stats.points_scored += node.hi - node.lo;
    scorer.score_range(node.lo, node.hi);
    return;
  }
  // Near side first tightens the threshold before the far side's bound test.
  const bool left_near = query[node.axis] < node.split;
  hybrid_query(index, query, kind, left_near ? node.left : node.right, scorer, stats);
  hybrid_query(index, query, kind, left_near ? node.right : node.left, scorer, stats);
}

}  // namespace

void hybrid_top_ell_batch(const KdRangeIndex& index, std::span<const PointD> queries,
                          std::size_t ell, MetricKind kind,
                          std::vector<std::vector<Key>>& out, KernelScratch& scratch) {
  const FlatStore& store = index.store();
  out.resize(queries.size());
  if (!store.empty()) {
    for (const PointD& query : queries) require_query_dim(store.dim(), query.dim());
  }
  if (ell == 0 || store.empty()) {
    for (auto& keys : out) keys.clear();
    return;
  }
  TreeStats stats;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    RangeTopEll scorer(store, queries[q], ell, kind, scratch);
    ++stats.queries;
    hybrid_query(index, queries[q], kind, 0, scorer, stats);
    scorer.finish(out[q]);
  }
  // One relaxed-atomic add per batch (not per node): concurrent tiles over
  // the same index accumulate without contention on the hot path.
  index.add_stats(stats);
}

}  // namespace dknn

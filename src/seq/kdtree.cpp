#include "seq/kdtree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/metric.hpp"
#include "support/panic.hpp"

namespace dknn {

KdTree::KdTree(std::vector<PointD> points, std::vector<PointId> ids)
    : points_(std::move(points)), ids_(std::move(ids)) {
  DKNN_REQUIRE(points_.size() == ids_.size(), "points and ids must align");
  if (points_.empty()) return;
  dim_ = points_[0].dim();
  DKNN_REQUIRE(dim_ >= 1, "kd-tree needs dimension >= 1");
  for (const auto& p : points_) {
    DKNN_REQUIRE(p.dim() == dim_, "kd-tree: inconsistent dimensions");
  }
  std::vector<std::size_t> order(points_.size());
  std::iota(order.begin(), order.end(), 0);
  nodes_.reserve(points_.size());
  root_ = build(order, 0);
}

std::int32_t KdTree::build(std::span<std::size_t> order, std::uint32_t depth) {
  if (order.empty()) return -1;
  const auto axis = static_cast<std::uint32_t>(depth % dim_);
  const std::size_t mid = order.size() / 2;
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(mid), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     // Tie-break on id so the build is fully deterministic.
                     const double xa = points_[a][axis], xb = points_[b][axis];
                     return xa != xb ? xa < xb : ids_[a] < ids_[b];
                   });
  const auto node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{order[mid], axis, -1, -1});
  const std::int32_t left = build(order.subspan(0, mid), depth + 1);
  const std::int32_t right = build(order.subspan(mid + 1), depth + 1);
  nodes_[static_cast<std::size_t>(node_index)].left = left;
  nodes_[static_cast<std::size_t>(node_index)].right = right;
  return node_index;
}

std::vector<std::pair<Key, std::size_t>> KdTree::knn(const PointD& query, std::size_t ell) const {
  last_visited_ = 0;
  if (points_.empty() || ell == 0) return {};
  DKNN_REQUIRE(query.dim() == dim_, "kd-tree: query dimension mismatch");
  std::vector<HeapEntry> heap;  // max-heap of current best ell
  heap.reserve(std::min(ell, points_.size()));
  search(root_, query, ell, heap);
  std::sort_heap(heap.begin(), heap.end());
  std::vector<std::pair<Key, std::size_t>> out;
  out.reserve(heap.size());
  for (const auto& entry : heap) out.emplace_back(entry.key, entry.index);
  return out;
}

void KdTree::search(std::int32_t node_index, const PointD& query, std::size_t ell,
                    std::vector<HeapEntry>& heap) const {
  if (node_index < 0) return;
  ++last_visited_;
  const Node& node = nodes_[static_cast<std::size_t>(node_index)];
  const PointD& p = points_[node.point];

  const EuclideanMetric metric;
  const Key key{encode_distance(metric(p, query)), ids_[node.point]};
  if (heap.size() < ell) {
    heap.push_back(HeapEntry{key, node.point});
    std::push_heap(heap.begin(), heap.end());
  } else if (key < heap.front().key) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = HeapEntry{key, node.point};
    std::push_heap(heap.begin(), heap.end());
  }

  const double diff = query[node.axis] - p[node.axis];
  const std::int32_t near = diff < 0 ? node.left : node.right;
  const std::int32_t far = diff < 0 ? node.right : node.left;
  search(near, query, ell, heap);

  // Visit the far side only if the splitting plane could host a better
  // neighbor than the current ell-th best (or the heap is not full yet).
  const bool heap_full = heap.size() >= ell;
  const double worst = heap_full ? decode_distance(heap.front().key.rank)
                                 : std::numeric_limits<double>::infinity();
  if (!heap_full || std::fabs(diff) <= worst) {
    search(far, query, ell, heap);
  }
}

}  // namespace dknn

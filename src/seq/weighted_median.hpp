#pragma once
/// \file weighted_median.hpp
/// \brief Weighted (lower) median — the pivot rule of the Saukas–Song
///        deterministic distributed selection baseline [16].

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "data/key.hpp"

namespace dknn {

/// An element with a non-negative weight.
struct WeightedKey {
  Key key;
  std::uint64_t weight = 0;
};

/// The lower weighted median: the smallest key m such that
///   Σ{ weight(x) : x.key <= m }  >=  ceil(total_weight / 2).
/// Zero-weight entries are ignored; total weight must be positive.
/// O(n log n) (sorting); n here is at most k machine summaries, so this is
/// leader-local "free" computation in the model.
[[nodiscard]] Key weighted_median(std::span<const WeightedKey> items);

}  // namespace dknn

#include "seq/scoring_policy.hpp"

namespace dknn {

const char* scoring_policy_name(ScoringPolicy policy) {
  switch (policy) {
    case ScoringPolicy::Brute: return "brute";
    case ScoringPolicy::Tree: return "tree";
    case ScoringPolicy::Auto: return "auto";
    case ScoringPolicy::Approx: return "approx";
  }
  return "unknown";
}

namespace {

/// One row of the measured routing table: for shards of dimension ≤
/// max_dim, the kd-hybrid beat the fused dense scan on the calibration
/// grid exactly when the shard size fell in [min_n, max_n].
struct CalibrationBand {
  std::size_t max_dim;
  std::size_t min_n;
  std::size_t max_n;
};

/// Derived from bench_scenarios' `calibration` stanza (brute vs hybrid
/// timings + measured leaf-visit rates over an (n, dim, distribution)
/// grid; rows checked in with BENCH_scenarios.json):
///
///   * dim ≤ 8 — measured scan_fraction falls with n (0.46 at 16k, 0.16
///     at 40k, d = 8 uniform) and the tree won every cell from n = 2048
///     up, both data shapes; no upper bound.
///   * dim 9–16 — the tree won both shapes at n = 5k/8k/16k (clustered
///     scan_fraction stays ≈ 0.3; uniform saturates but the bound tests
///     are cheap), and lost on uniform data by ≥ 2× at n = 40k where
///     per-leaf kernel dispatch over ~n/256 surviving leaves costs more
///     than one fused scan — hence the upper bound.
///   * dim 17–24 — same shape, narrower band: won both shapes at 8k,
///     mixed at 16k, clearly lost above.
///   * dim > 24 — never recovered the traversal overhead on uniform data
///     and only broke even on clustered; brute.
///
/// The old heuristic (`dim ≤ 16 && n ≥ max(2048, 2^dim)`) erred both
/// ways: it hard-rejected every dim > 16 shard (clustered d = 24 wins by
/// 2× at n = 8192) and routed huge uniform d = 16 shards (n ≥ 65536,
/// measured scan_fraction 1.0) into the tree.  Routing is the only thing
/// that changes — both paths return byte-identical keys (fuzzed in
/// tests/test_parity.cpp), and the old-vs-new decision table is pinned in
/// tests/test_seq.cpp.
constexpr CalibrationBand kCalibration[] = {
    {8, 2048, SIZE_MAX},
    {16, 4096, 16384},
    {24, 4096, 8192},
};

}  // namespace

bool tree_pays_off(std::size_t n, std::size_t dim) {
  if (dim == 0) return false;
  for (const CalibrationBand& band : kCalibration) {
    if (dim <= band.max_dim) return n >= band.min_n && n <= band.max_n;
  }
  return false;
}

}  // namespace dknn

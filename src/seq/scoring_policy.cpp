#include "seq/scoring_policy.hpp"

namespace dknn {

const char* scoring_policy_name(ScoringPolicy policy) {
  switch (policy) {
    case ScoringPolicy::Brute: return "brute";
    case ScoringPolicy::Tree: return "tree";
    case ScoringPolicy::Auto: return "auto";
  }
  return "unknown";
}

bool tree_pays_off(std::size_t n, std::size_t dim) {
  // Boxes stop pruning once n ≲ 2^d (every leaf straddles the query's
  // bound), and small shards never amortize the O(n·d·log n) build.
  if (dim == 0 || dim > 16) return false;
  return n >= 2048 && n >= (std::size_t{1} << dim);
}

}  // namespace dknn

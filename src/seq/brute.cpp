#include "seq/brute.hpp"

namespace dknn {

std::vector<Scored> brute_force_knn_scalar(std::span<const Value> values,
                                           std::span<const PointId> ids, Value query,
                                           std::size_t ell) {
  DKNN_REQUIRE(values.size() == ids.size(), "values and ids must align");
  std::vector<Scored> scored;
  scored.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    scored.push_back(Scored{Key{scalar_distance(values[i], query), ids[i]}, i});
  }
  return top_ell_smallest(std::span<const Scored>(scored), ell);
}

}  // namespace dknn

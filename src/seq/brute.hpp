#pragma once
/// \file brute.hpp
/// \brief Brute-force ℓ-NN — the O(n·d) reference every other
///        implementation is tested against.

#include <cstdint>
#include <span>
#include <vector>

#include "data/key.hpp"
#include "data/metric.hpp"
#include "data/point.hpp"
#include "seq/select.hpp"
#include "support/panic.hpp"

namespace dknn {

/// One scored candidate: the (distance, id) key plus the index of the point
/// in its source container.
struct Scored {
  Key key;
  std::size_t index = 0;

  friend bool operator<(const Scored& a, const Scored& b) { return a.key < b.key; }
  friend bool operator==(const Scored& a, const Scored& b) = default;
};

/// Scores every point against the query and returns the ℓ best in ascending
/// (distance, id) order.  `ids[i]` is the unique tie-breaking id of
/// `points[i]`.  ℓ larger than n returns all n.
template <MetricFor M>
[[nodiscard]] std::vector<Scored> brute_force_knn(std::span<const PointD> points,
                                                  std::span<const PointId> ids,
                                                  const PointD& query, const M& metric,
                                                  std::size_t ell) {
  DKNN_REQUIRE(points.size() == ids.size(), "points and ids must align");
  std::vector<Scored> scored;
  scored.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    scored.push_back(Scored{Key{encode_distance(metric(points[i], query)), ids[i]}, i});
  }
  return top_ell_smallest(std::span<const Scored>(scored), ell);
}

/// Scalar overload: the paper's experimental setting (uint64 values,
/// distance |p − q|).
[[nodiscard]] std::vector<Scored> brute_force_knn_scalar(std::span<const Value> values,
                                                         std::span<const PointId> ids,
                                                         Value query, std::size_t ell);

}  // namespace dknn

#pragma once
/// \file cli.hpp
/// \brief Tiny command-line flag parser for benches and examples.
///
/// Supports `--name=value`, `--name value`, and boolean `--name`.  Unknown
/// flags are an error (catches typos in experiment sweeps).  Every bench
/// documents its flags via describe(), printed on --help.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dknn {

/// Parsed command line: flag/value pairs plus positional arguments.
class Cli {
public:
  /// Registers a flag before parse(); `doc` is shown by --help.
  void add_flag(std::string name, std::string doc, std::string default_value);

  /// Parses argv; throws InvariantError on unknown flags or missing values.
  /// Returns false if --help was requested (help text already printed).
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(std::string_view name) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] std::uint64_t get_uint(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] bool get_bool(std::string_view name) const;
  /// Comma-separated integer list flag ("2,4,8").
  [[nodiscard]] std::vector<std::uint64_t> get_uint_list(std::string_view name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Help text listing flags, docs, and defaults.
  [[nodiscard]] std::string describe(std::string_view program) const;

private:
  struct Flag {
    std::string name;
    std::string doc;
    std::string value;
  };
  [[nodiscard]] const Flag* find(std::string_view name) const;
  [[nodiscard]] Flag* find(std::string_view name);

  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dknn

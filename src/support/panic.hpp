#pragma once
/// \file panic.hpp
/// \brief Always-on invariant checking.
///
/// The simulator is a correctness tool: a violated invariant means the
/// simulation (or an algorithm running on it) is meaningless, so checks are
/// active in every build type.  `DKNN_REQUIRE` throws `dknn::InvariantError`
/// so that tests can assert on failures; `dknn::panic` is for unrecoverable
/// programmer errors.

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dknn {

/// Thrown when a checked invariant does not hold.
class InvariantError : public std::logic_error {
public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Builds the standard "file:line: message" diagnostic string.
[[nodiscard]] std::string diagnostic_message(std::string_view expr, std::string_view note,
                                             const std::source_location& loc);

/// Throws InvariantError with a formatted diagnostic.
[[noreturn]] void raise_invariant(std::string_view expr, std::string_view note,
                                  const std::source_location& loc);

/// Aborts the process after printing a diagnostic; for truly unrecoverable states.
[[noreturn]] void panic(std::string_view message,
                        std::source_location loc = std::source_location::current());

namespace detail {
// constexpr so DKNN_REQUIRE is usable inside constexpr functions; the
// throwing branch is only reachable at runtime (a failed check during
// constant evaluation is a compile error, which is exactly right).
constexpr void require(bool ok, std::string_view expr, std::string_view note,
                       const std::source_location& loc) {
  if (!ok) raise_invariant(expr, note, loc);
}
}  // namespace detail

}  // namespace dknn

/// Checked precondition / invariant; throws dknn::InvariantError on failure.
#define DKNN_REQUIRE(cond, note) \
  ::dknn::detail::require(static_cast<bool>(cond), #cond, note, std::source_location::current())

/// Internal consistency check (same behaviour as DKNN_REQUIRE; separate macro
/// so call sites document *whose* bug a failure would be).
#define DKNN_ASSERT(cond, note) \
  ::dknn::detail::require(static_cast<bool>(cond), #cond, note, std::source_location::current())

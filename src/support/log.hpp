#pragma once
/// \file log.hpp
/// \brief Minimal leveled logger.
///
/// The simulator and benches log to stderr.  The level is a process-wide
/// runtime setting (default: Warn, override with set_log_level or the
/// DKNN_LOG environment variable: "trace", "debug", "info", "warn", "error",
/// "off").  Logging is intentionally not thread-buffered: messages are
/// assembled into one string and written with a single fputs, which is
/// atomic enough for diagnostics from the thread-pool executor.

#include <sstream>
#include <string>
#include <string_view>

namespace dknn {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Current process-wide level (reads DKNN_LOG on first use).
[[nodiscard]] LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "trace".."off" (case-insensitive); returns Warn for unknown input.
[[nodiscard]] LogLevel parse_log_level(std::string_view text);

/// True when messages at `level` would be emitted.
[[nodiscard]] bool log_enabled(LogLevel level);

/// Writes one formatted line ("[level] message\n") to stderr.
void log_line(LogLevel level, std::string_view message);

namespace detail {
/// Stream-style log statement builder used by the DKNN_LOG_* macros.
class LogStatement {
public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;
  ~LogStatement() { log_line(level_, stream_.str()); }

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace dknn

#define DKNN_LOG(level)                        \
  if (!::dknn::log_enabled(level)) {           \
  } else                                       \
    ::dknn::detail::LogStatement { level }

#define DKNN_LOG_TRACE DKNN_LOG(::dknn::LogLevel::Trace)
#define DKNN_LOG_DEBUG DKNN_LOG(::dknn::LogLevel::Debug)
#define DKNN_LOG_INFO DKNN_LOG(::dknn::LogLevel::Info)
#define DKNN_LOG_WARN DKNN_LOG(::dknn::LogLevel::Warn)
#define DKNN_LOG_ERROR DKNN_LOG(::dknn::LogLevel::Error)

#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "support/panic.hpp"
#include "support/stats.hpp"

namespace dknn {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c == '.' || c == 'x' || c == '%' || c == 'e' || c == '+' ||
               (c == '-' && (i == 0 || s[i - 1] == 'e'))) {
      // allowed punctuation in numeric-ish cells like "1.2e-3", "80.1x", "3%"
    } else {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DKNN_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  DKNN_REQUIRE(rows_.empty() || rows_.back().size() == headers_.size(),
               "previous row is incomplete");
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(std::string text) {
  DKNN_REQUIRE(!rows_.empty(), "call row() before cell()");
  DKNN_REQUIRE(rows_.back().size() < headers_.size(), "row has too many cells");
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(const char* text) { return cell(std::string(text)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }
Table& Table::cell(double value, int digits) { return cell(format_fixed(value, digits)); }

std::string Table::render() const {
  DKNN_REQUIRE(rows_.empty() || rows_.back().size() == headers_.size(),
               "last row is incomplete");
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells, bool align_numeric) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out += " | ";
      const std::string& text = cells[c];
      const std::size_t pad = widths[c] - text.size();
      const bool right = align_numeric && looks_numeric(text);
      if (right) out.append(pad, ' ');
      out += text;
      if (!right) out.append(pad, ' ');
    }
    // trim trailing spaces
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  emit_row(headers_, /*align_numeric=*/false);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) out += "-+-";
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, /*align_numeric=*/true);
  return out;
}

void Table::print(const std::string& title) const {
  std::string text;
  text += "\n== ";
  text += title;
  text += " ==\n";
  text += render();
  std::fputs(text.c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace dknn

#pragma once
/// \file bits.hpp
/// \brief Small integer helpers used across the simulator.

#include <bit>
#include <cstdint>
#include <limits>

#include "support/panic.hpp"

namespace dknn {

/// ceil(a / b) for non-negative integers; b must be positive.
template <typename T>
[[nodiscard]] constexpr T ceil_div(T a, T b) {
  DKNN_REQUIRE(b > 0, "ceil_div divisor must be positive");
  return static_cast<T>((a + b - 1) / b);
}

/// True when x is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) { return x != 0 && std::has_single_bit(x); }

/// ceil(log2(x)) for x >= 1; ceil_log2(1) == 0.
[[nodiscard]] constexpr unsigned ceil_log2(std::uint64_t x) {
  DKNN_REQUIRE(x >= 1, "ceil_log2 requires x >= 1");
  return static_cast<unsigned>(std::bit_width(x - 1));
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr unsigned floor_log2(std::uint64_t x) {
  DKNN_REQUIRE(x >= 1, "floor_log2 requires x >= 1");
  return static_cast<unsigned>(std::bit_width(x) - 1);
}

/// Saturating cast between integer types: clamps instead of wrapping.
template <typename To, typename From>
[[nodiscard]] constexpr To saturate_cast(From value) {
  if constexpr (std::numeric_limits<From>::is_signed && !std::numeric_limits<To>::is_signed) {
    if (value < 0) return To{0};
  }
  using Wide = std::uint64_t;
  const Wide v = static_cast<Wide>(value);
  const Wide hi = static_cast<Wide>(std::numeric_limits<To>::max());
  return v > hi ? std::numeric_limits<To>::max() : static_cast<To>(v);
}

}  // namespace dknn

#pragma once
/// \file timer.hpp
/// \brief Monotonic wall-clock stopwatch.
///
/// Used by the engine to measure per-machine local computation inside a
/// superstep (the BSP cost model charges the max over machines, which is
/// what real wall-clock would show for genuinely parallel machines).

#include <chrono>
#include <cstdint>

namespace dknn {

/// Monotonic stopwatch with nanosecond reads.
class WallTimer {
public:
  using Clock = std::chrono::steady_clock;

  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Nanoseconds since construction or the last reset().
  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count());
  }

  /// Seconds since construction or the last reset().
  [[nodiscard]] double elapsed_sec() const { return static_cast<double>(elapsed_ns()) * 1e-9; }

private:
  Clock::time_point start_;
};

/// Formats a nanosecond duration with an adaptive unit ("1.23 ms").
[[nodiscard]] inline double ns_to_ms(std::uint64_t ns) { return static_cast<double>(ns) * 1e-6; }

}  // namespace dknn

#include "support/panic.hpp"

#include <cstdio>
#include <cstdlib>

namespace dknn {

std::string diagnostic_message(std::string_view expr, std::string_view note,
                               const std::source_location& loc) {
  std::string out;
  out.reserve(128);
  out += loc.file_name();
  out += ':';
  out += std::to_string(loc.line());
  out += ": requirement failed: ";
  out += expr;
  if (!note.empty()) {
    out += " (";
    out += note;
    out += ')';
  }
  return out;
}

void raise_invariant(std::string_view expr, std::string_view note,
                     const std::source_location& loc) {
  throw InvariantError(diagnostic_message(expr, note, loc));
}

void panic(std::string_view message, std::source_location loc) {
  std::fprintf(stderr, "dknn panic at %s:%u: %.*s\n", loc.file_name(), loc.line(),
               static_cast<int>(message.size()), message.data());
  std::abort();
}

}  // namespace dknn

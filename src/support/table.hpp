#pragma once
/// \file table.hpp
/// \brief ASCII table renderer for the benchmark harness.
///
/// Every bench binary prints its results as a table whose rows mirror the
/// paper's figure series / table rows, so EXPERIMENTS.md can quote the
/// output verbatim.

#include <cstdint>
#include <string>
#include <vector>

namespace dknn {

/// Column-aligned ASCII table.  Cells are strings; numeric helpers format
/// with fixed precision.  Rendering right-aligns cells that parse as
/// numbers and left-aligns everything else.
class Table {
public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(std::string text);
  Table& cell(const char* text);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(int value);
  /// Fixed-point double with `digits` decimals (default 2).
  Table& cell(double value, int digits = 2);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header rule:  `name | name` over `-----+-----`.
  [[nodiscard]] std::string render() const;

  /// Renders and writes to stdout with a title line.
  void print(const std::string& title) const;

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dknn

#include "support/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dknn {
namespace {

std::atomic<int>& level_storage() {
  static std::atomic<int> level{[] {
    if (const char* env = std::getenv("DKNN_LOG"); env != nullptr) {
      return static_cast<int>(parse_log_level(env));
    }
    return static_cast<int>(LogLevel::Warn);
  }()};
  return level;
}

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info ";
    case LogLevel::Warn: return "warn ";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off  ";
  }
  return "?????";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return LogLevel::Warn;
}

bool log_enabled(LogLevel level) { return static_cast<int>(level) >= static_cast<int>(log_level()); }

void log_line(LogLevel level, std::string_view message) {
  if (!log_enabled(level)) return;
  std::string line;
  line.reserve(message.size() + 16);
  line += "[dknn ";
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fputs(line.c_str(), stderr);
}

}  // namespace dknn

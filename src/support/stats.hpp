#pragma once
/// \file stats.hpp
/// \brief Running statistics and percentile summaries for bench reporting.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dknn {

/// Numerically stable running mean/variance (Welford) with min/max tracking.
///
/// Used by every bench binary to accumulate per-trial measurements without
/// storing them when only moments are needed.
class RunningStats {
public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction of stats).
  void merge(const RunningStats& other);

private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores every sample; supports exact percentiles.  Use for round counts
/// and other small-cardinality measurements where p95/max matter.
class SampleSet {
public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Exact percentile by nearest-rank (q in [0, 100]).
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] std::span<const double> samples() const { return samples_; }

private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;   // lazily sorted copy
  mutable bool sorted_valid_ = false;
  void ensure_sorted() const;
};

/// Least-squares slope of y against x; used to fit "rounds vs log n" lines.
[[nodiscard]] double linear_slope(std::span<const double> x, std::span<const double> y);

/// Formats a double with `digits` significant decimals ("12.34").
[[nodiscard]] std::string format_fixed(double value, int digits);

}  // namespace dknn

#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/panic.hpp"

namespace dknn {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleSet::mean() const {
  RunningStats s;
  for (double x : samples_) s.add(x);
  return s.mean();
}

double SampleSet::stddev() const {
  RunningStats s;
  for (double x : samples_) s.add(x);
  return s.stddev();
}

double SampleSet::min() const {
  DKNN_REQUIRE(!samples_.empty(), "SampleSet::min on empty set");
  ensure_sorted();
  return sorted_.front();
}

double SampleSet::max() const {
  DKNN_REQUIRE(!samples_.empty(), "SampleSet::max on empty set");
  ensure_sorted();
  return sorted_.back();
}

double SampleSet::percentile(double q) const {
  DKNN_REQUIRE(!samples_.empty(), "SampleSet::percentile on empty set");
  DKNN_REQUIRE(q >= 0.0 && q <= 100.0, "percentile must be in [0, 100]");
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  // Nearest-rank with linear interpolation between adjacent order statistics.
  const double rank = q / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double linear_slope(std::span<const double> x, std::span<const double> y) {
  DKNN_REQUIRE(x.size() == y.size(), "linear_slope needs equal-length series");
  DKNN_REQUIRE(x.size() >= 2, "linear_slope needs at least two points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  DKNN_REQUIRE(denom != 0.0, "linear_slope: degenerate x series");
  return (n * sxy - sx * sy) / denom;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace dknn

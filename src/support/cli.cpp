#include "support/cli.hpp"

#include <charconv>
#include <cstdio>

#include "support/panic.hpp"

namespace dknn {
namespace {

template <typename T>
T parse_number(std::string_view name, const std::string& text) {
  T value{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  DKNN_REQUIRE(ec == std::errc{} && ptr == end,
               std::string("flag --") + std::string(name) + " expects a number, got '" + text + "'");
  return value;
}

}  // namespace

void Cli::add_flag(std::string name, std::string doc, std::string default_value) {
  DKNN_REQUIRE(find(name) == nullptr, "duplicate flag registration");
  flags_.push_back(Flag{std::move(name), std::move(doc), std::move(default_value)});
}

const Cli::Flag* Cli::find(std::string_view name) const {
  for (const auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Cli::Flag* Cli::find(std::string_view name) {
  return const_cast<Flag*>(static_cast<const Cli*>(this)->find(name));
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(describe(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::optional<std::string> value;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }
    Flag* flag = find(name);
    DKNN_REQUIRE(flag != nullptr, std::string("unknown flag --") + name);
    if (!value) {
      // `--flag value` unless the flag is boolean-style and the next token is
      // another flag (or absent), in which case it means "true".
      const bool next_is_value = (i + 1 < argc) && std::string_view(argv[i + 1]).rfind("--", 0) != 0;
      if (next_is_value) {
        value = std::string(argv[++i]);
      } else {
        value = "true";
      }
    }
    flag->value = *value;
  }
  return true;
}

std::string Cli::get(std::string_view name) const {
  const Flag* flag = find(name);
  DKNN_REQUIRE(flag != nullptr, std::string("flag --") + std::string(name) + " was never registered");
  return flag->value;
}

std::int64_t Cli::get_int(std::string_view name) const {
  return parse_number<std::int64_t>(name, get(name));
}

std::uint64_t Cli::get_uint(std::string_view name) const {
  return parse_number<std::uint64_t>(name, get(name));
}

double Cli::get_double(std::string_view name) const {
  const std::string text = get(name);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  DKNN_REQUIRE(end == text.c_str() + text.size(),
               std::string("flag --") + std::string(name) + " expects a number, got '" + text + "'");
  return value;
}

bool Cli::get_bool(std::string_view name) const {
  const std::string text = get(name);
  if (text == "true" || text == "1" || text == "yes" || text == "on") return true;
  if (text == "false" || text == "0" || text == "no" || text == "off") return false;
  raise_invariant("boolean flag", std::string("flag --") + std::string(name) + " got '" + text + "'",
                  std::source_location::current());
}

std::vector<std::uint64_t> Cli::get_uint_list(std::string_view name) const {
  const std::string text = get(name);
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    if (!item.empty()) out.push_back(parse_number<std::uint64_t>(name, item));
    pos = comma + 1;
  }
  return out;
}

std::string Cli::describe(std::string_view program) const {
  std::string out;
  out += "usage: ";
  out += program;
  out += " [--flag=value ...]\n";
  for (const auto& f : flags_) {
    out += "  --";
    out += f.name;
    out += "  (default: ";
    out += f.value.empty() ? "<empty>" : f.value;
    out += ")\n      ";
    out += f.doc;
    out += '\n';
  }
  return out;
}

}  // namespace dknn

#pragma once
/// \file sublinear.hpp
/// \brief Sublinear-message randomized leader election in the style of
///        Kutten, Pandurangan, Peleg, Robinson & Trehan (TCS 2015) — the
///        algorithm the paper cites for its O(1)-round,
///        O(√k · log^{3/2} k)-message leader election step.
///
/// Per attempt (3 rounds):
///   1. every machine stands as a *candidate* with probability
///      p = min(1, (2 ln k + 1)/k)   (Θ(log k) candidates in expectation)
///      and sends its ID to r = Θ(√(k log k)) distinct random *referees*;
///   2. each referee replies to every candidate that contacted it with the
///      minimum candidate ID it heard;
///   3. a candidate whose replies (plus its own ID) show itself as the
///      minimum *claims* leadership to all machines; every machine accepts
///      the minimum claimed ID.
///
/// Because every pair of candidates shares a referee w.h.p., only the true
/// minimum candidate claims, and the claim step is the only Θ(k) part —
/// which the calling algorithms would pay anyway to learn the leader (the
/// original paper's bound is for *implicit* election).  If an attempt
/// produces zero candidates (probability ≤ 1/(e·k²)), the protocol retries
/// with doubled candidacy probability, reaching p = 1 in O(log k) attempts
/// worst case — termination is certain, correctness is deterministic
/// (the elected leader is always the minimum candidate of the successful
/// attempt).
///
/// Message sizes: candidate/reply/claim messages carry a 32-bit ID plus an
/// 8-bit attempt number (40 bits).  All fit in B = 64-bit links, so the
/// protocol runs under Strict bandwidth.  Every phase checks the attempt
/// number and throws a typed ElectionDesyncError on a cross-attempt
/// message (a fault plan delaying traffic across a phase boundary) — under
/// faults the protocol either agrees or fails diagnosably, never silently
/// elects two leaders.

#include <cstdint>

#include "election/election.hpp"
#include "sim/context.hpp"
#include "sim/task.hpp"

namespace dknn {

struct SublinearElectionConfig {
  /// Scales the candidacy probability ((cand_coeff · ln k + 1)/k).
  double cand_coeff = 2.0;
  /// Scales the referee count (ref_coeff · √(k ln k)).
  double ref_coeff = 2.0;
};

/// Runs the election; every machine returns the same leader.
[[nodiscard]] Task<ElectionOutcome> elect_sublinear(Ctx& ctx,
                                                    SublinearElectionConfig config = {});

/// Expected referee count for world size k under `config` (exposed so tests
/// can assert the message bound).
[[nodiscard]] std::uint32_t sublinear_referee_count(std::uint32_t k,
                                                    const SublinearElectionConfig& config);

}  // namespace dknn

#include "election/sublinear.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "rng/sampling.hpp"
#include "sim/collectives.hpp"
#include "support/panic.hpp"

namespace dknn {
namespace {

/// Candidate and reply payloads: (machine id, attempt) packed to 40 bits —
/// within a B = 64-bit link budget per round.
struct ElectMsg {
  std::uint32_t id = 0;
  std::uint8_t attempt = 0;
};

void encode(Writer& w, const ElectMsg& m) {
  w.put_u32(m.id);
  w.put_u8(m.attempt);
}
ElectMsg decode_impl(Reader& r, std::type_identity<ElectMsg>) {
  ElectMsg m;
  m.id = r.get_u32();
  m.attempt = r.get_u8();
  return m;
}

double candidacy_probability(std::uint32_t k, double coeff, std::uint32_t attempt) {
  const double base = (coeff * std::log(static_cast<double>(k)) + 1.0) / static_cast<double>(k);
  // Each retry doubles the probability, so p reaches 1 after O(log k)
  // zero-candidate attempts and termination is certain.
  const double scaled = base * std::pow(2.0, static_cast<double>(attempt));
  return std::min(1.0, scaled);
}

}  // namespace

std::uint32_t sublinear_referee_count(std::uint32_t k, const SublinearElectionConfig& config) {
  if (k <= 1) return 0;
  const double lk = std::max(1.0, std::log(static_cast<double>(k)));
  const double r = config.ref_coeff * std::sqrt(static_cast<double>(k) * lk);
  const auto count = static_cast<std::uint32_t>(std::ceil(r));
  return std::min(count, k - 1);  // referees are drawn from the other machines
}

Task<ElectionOutcome> elect_sublinear(Ctx& ctx, SublinearElectionConfig config) {
  ElectionOutcome outcome;
  const std::uint32_t k = ctx.world();
  if (k == 1) {
    outcome.leader = 0;
    outcome.was_candidate = true;
    co_return outcome;
  }
  const std::uint32_t referees = sublinear_referee_count(k, config);

  for (std::uint32_t attempt = 0;; ++attempt) {
    // p doubles per attempt and hits 1 within 64 doublings even for k = 2^32;
    // exceeding that means the protocol logic is broken, not unlucky.
    DKNN_ASSERT(attempt < 200, "sublinear election failed to converge");
    const auto attempt_tag = static_cast<std::uint8_t>(attempt & 0xFF);

    // --- round 1: candidacy + contacting referees ---------------------------
    const bool candidate =
        ctx.rng().bernoulli(candidacy_probability(k, config.cand_coeff, attempt));
    std::uint32_t contacted = 0;
    if (candidate) {
      // Distinct referees among the other k−1 machines: pool index j maps to
      // machine j (j < id) or j+1 (j >= id), skipping self.
      auto picks = sample_indices_without_replacement(k - 1, referees, ctx.rng());
      for (std::size_t j : picks) {
        const auto m = static_cast<MachineId>(j < ctx.id() ? j : j + 1);
        ctx.send_value(m, tags::kElectCandidate, ElectMsg{ctx.id(), attempt_tag});
        ++contacted;
      }
    }
    co_await ctx.round();

    // --- round 2: referees answer with the minimum candidate they heard -----
    std::vector<MachineId> contacted_by;
    std::uint32_t min_heard = kNoMachine;
    while (auto env = ctx.try_take(tags::kElectCandidate)) {
      const auto msg = from_bytes<ElectMsg>(env->payload);
      if (msg.attempt != attempt_tag) {
        throw ElectionDesyncError("sublinear election: candidate message from attempt " +
                                  std::to_string(msg.attempt) + " arrived in attempt " +
                                  std::to_string(attempt_tag));
      }
      min_heard = std::min(min_heard, msg.id);
      contacted_by.push_back(env->src);
    }
    for (MachineId src : contacted_by) {
      ctx.send_value(src, tags::kElectReply, ElectMsg{min_heard, attempt_tag});
    }
    co_await ctx.round();

    // --- round 3: candidates evaluate replies; the minimum claims -----------
    bool claimed = false;
    if (candidate) {
      std::uint32_t best = ctx.id();
      auto replies = co_await recv_n(ctx, tags::kElectReply, contacted);
      for (const auto& env : replies) {
        const auto msg = from_bytes<ElectMsg>(env.payload);
        if (msg.attempt != attempt_tag) {
          throw ElectionDesyncError("sublinear election: reply from attempt " +
                                    std::to_string(msg.attempt) + " arrived in attempt " +
                                    std::to_string(attempt_tag));
        }
        best = std::min(best, msg.id);
      }
      // The global minimum candidate can never hear a smaller id, so it
      // always claims; any other candidate sharing a referee with it
      // withdraws here (w.h.p. all of them do).
      claimed = (best == ctx.id());
      if (claimed) {
        for (MachineId m = 0; m < k; ++m) {
          if (m != ctx.id()) {
            ctx.send_value(m, tags::kElectAnnounce, ElectMsg{ctx.id(), attempt_tag});
          }
        }
      }
    }
    co_await ctx.round();

    // --- resolution: everyone accepts the minimum claimant ------------------
    // Every claimant announced to *all* machines, so all machines see the
    // same claimant set (plus themselves if they claimed) and agree.  The
    // minimum claimant is always the minimum candidate, so the result is
    // deterministic-correct even when several candidates claim.
    MachineId accepted = claimed ? ctx.id() : kNoMachine;
    while (auto env = ctx.try_take(tags::kElectAnnounce)) {
      const auto msg = from_bytes<ElectMsg>(env->payload);
      if (msg.attempt != attempt_tag) {
        throw ElectionDesyncError("sublinear election: claim from attempt " +
                                  std::to_string(msg.attempt) + " arrived in attempt " +
                                  std::to_string(attempt_tag));
      }
      accepted = std::min(accepted, env->src);
    }
    if (accepted != kNoMachine) {
      outcome.leader = accepted;
      outcome.attempts = attempt + 1;
      outcome.was_candidate = candidate;
      co_return outcome;
    }
    // Zero candidates this attempt (probability ≤ 1/(e·k²)): try again.
  }
}

}  // namespace dknn

#pragma once
/// \file min_id.hpp
/// \brief Trivial minimum-ID leader election.
///
/// The paper (§2.1): "Since the machines have unique IDs, the leader (say,
/// the minimum ID machine) can be elected in a constant number of rounds".
/// This all-to-all exchange costs one round and k(k−1) messages — the
/// simple, message-heavy contrast to the sublinear algorithm of [9]
/// (see sublinear.hpp).

#include "election/election.hpp"
#include "sim/context.hpp"
#include "sim/task.hpp"

namespace dknn {

/// Every machine announces its ID to everyone; all pick the minimum.
/// 1 round; k(k−1) messages; deterministic.
[[nodiscard]] Task<ElectionOutcome> elect_min_id(Ctx& ctx);

}  // namespace dknn

#pragma once
/// \file election.hpp
/// \brief Common types for leader election (paper §2.1 and [9]).

#include <cstdint>
#include <stdexcept>
#include <string>

#include "net/types.hpp"

namespace dknn {

/// A multi-phase election observed a message from a different attempt than
/// the one it is executing — the synchronous-lockstep assumption was
/// violated (e.g. a fault plan delayed the message across a phase
/// boundary).  Typed so callers running elections under faults get a
/// diagnosable failure instead of a silent wrong leader or a hang.
class ElectionDesyncError final : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Outcome of a leader-election protocol at one machine. Every machine in a
/// run must end with the same `leader`.
struct ElectionOutcome {
  MachineId leader = kNoMachine;
  /// Attempts used (sublinear election retries on the rare zero-candidate
  /// event; min-id always uses 1).
  std::uint32_t attempts = 1;
  /// Whether this machine stood as a candidate in the winning attempt.
  bool was_candidate = false;
};

/// Message-tag blocks per module (collision-free by construction).
namespace tags {
inline constexpr Tag kElectMinId = 0x1001;
inline constexpr Tag kElectCandidate = 0x1010;
inline constexpr Tag kElectReply = 0x1011;
inline constexpr Tag kElectAnnounce = 0x1012;
}  // namespace tags

}  // namespace dknn

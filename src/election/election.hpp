#pragma once
/// \file election.hpp
/// \brief Common types for leader election (paper §2.1 and [9]).

#include <cstdint>

#include "net/types.hpp"

namespace dknn {

/// Outcome of a leader-election protocol at one machine. Every machine in a
/// run must end with the same `leader`.
struct ElectionOutcome {
  MachineId leader = kNoMachine;
  /// Attempts used (sublinear election retries on the rare zero-candidate
  /// event; min-id always uses 1).
  std::uint32_t attempts = 1;
  /// Whether this machine stood as a candidate in the winning attempt.
  bool was_candidate = false;
};

/// Message-tag blocks per module (collision-free by construction).
namespace tags {
inline constexpr Tag kElectMinId = 0x1001;
inline constexpr Tag kElectCandidate = 0x1010;
inline constexpr Tag kElectReply = 0x1011;
inline constexpr Tag kElectAnnounce = 0x1012;
}  // namespace tags

}  // namespace dknn

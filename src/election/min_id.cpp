#include "election/min_id.hpp"

#include <algorithm>

#include "sim/collectives.hpp"

namespace dknn {

Task<ElectionOutcome> elect_min_id(Ctx& ctx) {
  ElectionOutcome outcome;
  outcome.was_candidate = true;  // everyone competes
  if (ctx.world() == 1) {
    outcome.leader = ctx.id();
    co_return outcome;
  }
  for (MachineId m = 0; m < ctx.world(); ++m) {
    if (m != ctx.id()) ctx.send_value<std::uint32_t>(m, tags::kElectMinId, ctx.id());
  }
  MachineId best = ctx.id();
  auto announcements = co_await recv_n(ctx, tags::kElectMinId, ctx.world() - 1);
  for (const auto& env : announcements) {
    best = std::min(best, from_bytes<std::uint32_t>(env.payload));
  }
  outcome.leader = best;
  co_return outcome;
}

}  // namespace dknn

#pragma once
/// \file types.hpp
/// \brief Common identifiers for the simulated k-machine network.

#include <cstdint>
#include <limits>

#include "serial/bytes.hpp"

namespace dknn {

/// Machine index in [0, k).  The paper's machines are {M1..Mk}; we index
/// from zero.  Machine IDs double as the unique IDs used for min-ID leader
/// election.
using MachineId = std::uint32_t;

inline constexpr MachineId kNoMachine = std::numeric_limits<MachineId>::max();

/// Message tag: distinguishes protocol steps.  Each algorithm defines an
/// `enum class ... : Tag` in its messages header.
using Tag = std::uint16_t;

/// A message in flight.  `seq` is a per-sender sequence number assigned by
/// the network; combined with (round, src) it gives a deterministic total
/// order on deliveries regardless of executor.
struct Envelope {
  MachineId src = kNoMachine;
  MachineId dst = kNoMachine;
  Tag tag = 0;
  Bytes payload;
  std::uint64_t sent_round = 0;   ///< round in which send() was issued
  std::uint64_t seq = 0;          ///< per-sender send counter

  [[nodiscard]] std::uint64_t payload_bits() const { return bit_size(payload); }
};

}  // namespace dknn

#include "net/network.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace dknn {

Network::Network(NetworkConfig config) : config_(config) {
  DKNN_REQUIRE(config_.world_size >= 1, "network needs at least one machine");
  DKNN_REQUIRE(config_.policy == BandwidthPolicy::Unlimited || config_.bits_per_round > 0,
               "bandwidth-limited policies need positive bits_per_round");
  const std::size_t k = config_.world_size;
  links_.resize(k * k);
  mailboxes_.resize(k);
  busy_sources_.resize(k);
  send_seq_.assign(k, 0);
}

std::size_t Network::link_index(MachineId src, MachineId dst) const {
  return static_cast<std::size_t>(src) * config_.world_size + dst;
}

void Network::set_send_filter(SendFilter filter) {
  if (!filter) {
    filter_ = nullptr;
    return;
  }
  filter_ = [f = std::move(filter)](const Envelope& env) {
    return FaultDecision{f(env) ? FaultAction::Deliver : FaultAction::Drop, 0};
  };
}

void Network::send(Envelope env) {
  DKNN_REQUIRE(env.src < config_.world_size, "send: bad source machine");
  DKNN_REQUIRE(env.dst < config_.world_size, "send: bad destination machine");
  DKNN_REQUIRE(env.src != env.dst, "send: the k-machine model has no self-links");

  env.sent_round = current_round_;
  env.seq = send_seq_[env.src]++;

  FaultDecision decision;
  if (filter_) decision = filter_(env);
  if (decision.action == FaultAction::Drop) return;  // dropped by fault injection

  if (decision.action == FaultAction::Delay && decision.delay_rounds > 0) {
    // Held back: the message enters its link at the end of round
    // sent_round + delay_rounds, exactly as if sent that much later (its
    // stamped sent_round is untouched — receivers can observe the lag).
    // It still counts as sent now, and in_flight() sees it (deadlock
    // detection must not fire while a wake-up is merely late).
    stats_.on_send(env);
    delayed_.push_back(Delayed{std::move(env), current_round_ + decision.delay_rounds});
    return;
  }

  stats_.on_send(env);
  if (decision.action == FaultAction::Duplicate) {
    // A spurious network-level duplicate: same seq, queued right behind
    // the original on the same FIFO (both copies count as traffic).
    Envelope copy = env;
    stats_.on_send(copy);
    enqueue(std::move(env));
    enqueue(std::move(copy));
    return;
  }
  enqueue(std::move(env));
}

void Network::enqueue(Envelope env) {
  if (config_.policy == BandwidthPolicy::Strict) {
    DKNN_REQUIRE(env.payload_bits() <= config_.bits_per_round,
                 "Strict bandwidth: message exceeds B bits");
    auto& link = links_[link_index(env.src, env.dst)];
    DKNN_REQUIRE(link.bits_this_round + env.payload_bits() <= config_.bits_per_round,
                 "Strict bandwidth: link already saturated this round");
    link.bits_this_round += env.payload_bits();
  }

  ++in_flight_;
  auto& link = links_[link_index(env.src, env.dst)];
  if (link.queue.empty()) busy_sources_[env.dst].push_back(env.src);
  const std::uint64_t bits = std::max<std::uint64_t>(env.payload_bits(), 1);  // empty msg = 1 bit
  link.queue.push_back(InTransit{std::move(env), bits});
}

void Network::end_round(std::uint64_t round) {
  // Release the delay stage first: a message delayed to this round joins
  // its link before transmission, so it behaves exactly like a fresh send
  // from this round onward (FIFO order behind anything already queued).
  if (!delayed_.empty()) {
    std::vector<Delayed> still_held;
    still_held.reserve(delayed_.size());
    for (Delayed& held : delayed_) {
      if (held.release_round <= round) {
        enqueue(std::move(held.env));
      } else {
        still_held.push_back(std::move(held));
      }
    }
    delayed_ = std::move(still_held);
  }
  const bool unlimited = config_.policy == BandwidthPolicy::Unlimited;
  constexpr std::uint64_t kInfinite = ~std::uint64_t{0};
  for (MachineId dst = 0; dst < config_.world_size; ++dst) {
    auto& busy = busy_sources_[dst];
    if (busy.empty()) continue;
    std::sort(busy.begin(), busy.end());  // sends may arrive in any order

    // Aggregate receive capacity of this destination for the round (the
    // "one NIC" model); kInfinite = the pure k-machine model.
    std::uint64_t ingress = (unlimited || config_.ingress_bits_per_round == 0)
                                ? kInfinite
                                : config_.ingress_bits_per_round;

    // Rotate the drain order each round (deterministically) so a saturated
    // NIC serves every sender fairly instead of letting low ids starve the
    // rest.  Only links with queued traffic are visited: O(active links).
    std::vector<MachineId> still_busy;
    still_busy.reserve(busy.size());
    const std::size_t offset = static_cast<std::size_t>(round) % busy.size();
    for (std::size_t step = 0; step < busy.size(); ++step) {
      const MachineId src = busy[(step + offset) % busy.size()];
      auto& link = links_[link_index(src, dst)];
      link.bits_this_round = 0;
      std::uint64_t budget = unlimited ? kInfinite : std::min(config_.bits_per_round, ingress);
      while (!link.queue.empty() && budget > 0) {
        InTransit& head = link.queue.front();
        const std::uint64_t sent = std::min(budget, head.bits_remaining);
        head.bits_remaining -= sent;
        if (budget != kInfinite) budget -= sent;
        if (ingress != kInfinite) ingress -= sent;
        if (head.bits_remaining == 0) {
          stats_.on_deliver(head.env, round + 1);
          mailboxes_[dst].push_back(std::move(head.env));
          link.queue.pop_front();
          --in_flight_;
        } else {
          break;  // link budget exhausted mid-message
        }
      }
      if (!link.queue.empty()) still_busy.push_back(src);
    }
    busy = std::move(still_busy);
  }
}

std::vector<Envelope> Network::collect_delivered(MachineId dst) {
  DKNN_REQUIRE(dst < config_.world_size, "collect_delivered: bad machine");
  std::vector<Envelope> out;
  out.swap(mailboxes_[dst]);
  return out;
}

}  // namespace dknn

#pragma once
/// \file network.hpp
/// \brief The k-machine model's communication substrate.
///
/// A complete graph of bidirectional point-to-point links; each *direction*
/// of each link carries `bits_per_round` bits per synchronous round
/// (paper §1.1: "Each link is assumed to have a bandwidth of B bits per
/// round", default B = Θ(log n)).
///
/// Semantics per round r:
///   1. machines call send() while executing round r;
///   2. end_round(r): every directed link transmits up to B bits from its
///      FIFO of pending messages; a message is *delivered* (appears in the
///      destination mailbox) at the start of the first round after the one
///      in which its last bit was transmitted.
///
/// Under `Unlimited` every message arrives in the next round no matter its
/// size (classic synchronous message passing, useful for counting abstract
/// messages).  Under `Chunked` large messages take ceil(bits / B) rounds —
/// this is what makes the paper's simple baseline cost Θ(ℓ) rounds emerge
/// from its Θ(ℓ log n)-bit transfer instead of being hard-coded.  `Strict`
/// additionally *requires* algorithms to respect B within a single round
/// and throws otherwise (used by tests to certify Algorithm 1/2 messages
/// fit in O(log n)-bit links).

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/traffic.hpp"
#include "net/types.hpp"

namespace dknn {

enum class BandwidthPolicy : std::uint8_t {
  Unlimited,  ///< deliver everything next round; count traffic only
  Chunked,    ///< B bits per directed link per round; big messages straggle
  Strict,     ///< like Chunked but sending > B bits in one round throws
};

struct NetworkConfig {
  std::uint32_t world_size = 0;
  BandwidthPolicy policy = BandwidthPolicy::Unlimited;
  /// Link capacity in bits per round per direction (B in the paper).
  std::uint64_t bits_per_round = 64;
  /// Optional per-destination *aggregate* receive capacity per round
  /// (0 = unlimited).  The k-machine model gives every node k−1 independent
  /// B-bit links; a real cluster funnels them through one NIC.  Setting
  /// this to ~B reproduces the leader-ingress bottleneck that dominates the
  /// paper's measured Figure 2 (see DESIGN.md §2).  Only meaningful under
  /// Chunked policy.
  std::uint64_t ingress_bits_per_round = 0;
};

/// Optional interception hook (fault injection, tracing). Returning false
/// drops the message silently.
using SendFilter = std::function<bool(const Envelope&)>;

/// What a fault filter decided for one message.
enum class FaultAction : std::uint8_t {
  Deliver,    ///< normal transmission
  Drop,       ///< vanish silently (not counted as sent)
  Delay,      ///< enter the link `delay_rounds` rounds late
  Duplicate,  ///< transmit twice back to back (same seq — a true duplicate)
};

struct FaultDecision {
  FaultAction action = FaultAction::Deliver;
  std::uint64_t delay_rounds = 0;  ///< Delay only; 0 behaves like Deliver
};

/// Generalized interception hook: per message, deliver / drop / delay /
/// duplicate.  `set_send_filter` wraps the boolean form into this one, so
/// a plain drop filter behaves exactly as before.  The network owns the
/// installed std::function (shared ownership of any state it captures) —
/// installers may be destroyed before or during the run.
using FaultFilter = std::function<FaultDecision(const Envelope&)>;

class Network {
public:
  explicit Network(NetworkConfig config);

  /// Enqueues a message during the current round. Self-sends are forbidden
  /// (the model has no self-links; local state needs no messages).
  void send(Envelope env);

  /// Advances the link model at the end of round `round`; messages whose
  /// last bit was transmitted become deliverable at round + 1.
  void end_round(std::uint64_t round);

  /// Drains messages deliverable to `dst` (called by the engine when
  /// starting the next round).  Order is deterministic: by completion
  /// round, then by the round's rotated sender order, then per-sender FIFO.
  [[nodiscard]] std::vector<Envelope> collect_delivered(MachineId dst);

  /// True when any message is still queued, held by the delay stage, or in
  /// transit (delayed messages count: they will wake a receiver later, so
  /// the engine's deadlock detector must not fire while they are held).
  [[nodiscard]] bool in_flight() const { return in_flight_ != 0 || !delayed_.empty(); }

  [[nodiscard]] const TrafficStats& stats() const { return stats_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  /// Boolean drop filter (false = drop), byte-compatible with the original
  /// hook: wrapped into a FaultFilter that never delays or duplicates.
  void set_send_filter(SendFilter filter);
  void set_fault_filter(FaultFilter filter) { filter_ = std::move(filter); }

  /// Round at which the current send() calls are stamped; set by the engine.
  void set_current_round(std::uint64_t round) { current_round_ = round; }

private:
  struct InTransit {
    Envelope env;
    std::uint64_t bits_remaining = 0;
  };
  struct DirectedLink {
    std::deque<InTransit> queue;        ///< FIFO awaiting transmission
    std::uint64_t bits_this_round = 0;  ///< Strict-mode accounting
  };

  [[nodiscard]] std::size_t link_index(MachineId src, MachineId dst) const;

  /// Places a filtered-in message onto its directed link (Strict
  /// accounting, in-flight count, busy-source tracking).
  void enqueue(Envelope env);

  /// A message held by the delay stage until `release_round` ends.
  struct Delayed {
    Envelope env;
    std::uint64_t release_round = 0;
  };

  NetworkConfig config_;
  std::vector<DirectedLink> links_;                 // k*k directed (diagonal unused)
  std::vector<std::vector<Envelope>> mailboxes_;    // per destination, ready to deliver
  /// Sources with queued traffic, per destination (kept sorted by end_round)
  /// so a round costs O(active links), not O(k²).
  std::vector<std::vector<MachineId>> busy_sources_;
  std::vector<Delayed> delayed_;                    // fault-injected late messages
  TrafficStats stats_;
  FaultFilter filter_;
  std::uint64_t current_round_ = 0;
  std::uint64_t in_flight_ = 0;
  std::vector<std::uint64_t> send_seq_;             // per-sender sequence numbers
};

}  // namespace dknn

#pragma once
/// \file traffic.hpp
/// \brief Traffic accounting: the paper's two cost measures plus bit-exact
///        volume, collected per run and queried by benches and tests.

#include <cstdint>
#include <vector>

#include "net/types.hpp"

namespace dknn {

/// Counters accumulated by the Network across a run.
class TrafficStats {
public:
  void on_send(const Envelope& env);
  void on_deliver(const Envelope& env, std::uint64_t round);

  /// Total point-to-point messages sent (the paper's message complexity).
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return messages_delivered_; }
  /// Total payload volume in bits.
  [[nodiscard]] std::uint64_t bits_sent() const { return bits_sent_; }
  /// Highest delivery latency observed (rounds from send to delivery);
  /// > 1 only under chunked bandwidth.
  [[nodiscard]] std::uint64_t max_delivery_latency() const { return max_latency_; }
  /// Largest single message payload, in bits.
  [[nodiscard]] std::uint64_t max_message_bits() const { return max_message_bits_; }

  void reset();

private:
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t bits_sent_ = 0;
  std::uint64_t max_latency_ = 0;
  std::uint64_t max_message_bits_ = 0;
};

}  // namespace dknn

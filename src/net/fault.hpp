#pragma once
/// \file fault.hpp
/// \brief Fault injection for robustness tests.
///
/// The paper assumes a fault-free synchronous network; the simulator's fault
/// adapter exists so tests can demonstrate (a) that the engine's round cap
/// converts lost-message deadlocks into diagnosable errors rather than
/// hangs, and (b) which protocol steps are actually loss-sensitive.
///
/// Three fault modes, applied per message in a fixed precedence (drop, then
/// delay, then duplicate — at most one fires):
///   * drop      — the message vanishes;
///   * delay     — the message enters its link `delay_rounds` rounds late
///                 (late wake-up, not loss: protocols must still converge);
///   * duplicate — the message transmits twice back to back with the same
///                 sequence number.  The network delivers both copies (and
///                 both consume link bandwidth under bounded policies); the
///                 engine's Ctx suppresses the repeat by (src, seq) — at-
///                 most-once delivery — so protocols stay correct while
///                 their traffic timing is still perturbed.
///
/// Determinism contract: the drop decision consumes exactly one bernoulli
/// draw per eligible message regardless of which other modes are enabled,
/// and the delay / duplicate draws happen only when their probabilities are
/// positive — so a drop-only plan's rng stream, drop decisions, and
/// delivered bytes are identical to what they were before the delay /
/// duplicate modes existed (pinned in tests/test_fault.cpp).
///
/// Lifetime: the injector shares its counter state with the filter it
/// installs on the network (the network's std::function co-owns it), so
/// destroying the injector before — or during — the run is safe; the plan
/// keeps acting, only the counters become unobservable.

#include <cstdint>
#include <memory>
#include <optional>

#include "net/network.hpp"
#include "rng/rng.hpp"

namespace dknn {

/// Declarative fault plan compiled into a Network fault filter.
struct FaultPlan {
  /// Probability of dropping any given message.
  double drop_probability = 0.0;
  /// Probability of delaying a message that survived the drop stage.
  double delay_probability = 0.0;
  /// How late a delayed message enters its link (rounds; ≥ 1 to matter).
  std::uint64_t delay_rounds = 1;
  /// Probability of duplicating a message that survived drop and delay.
  double duplicate_probability = 0.0;
  /// If set, only messages with this tag are eligible for faults.
  std::optional<Tag> only_tag;
  /// If set, only messages from this machine are eligible.
  std::optional<MachineId> only_src;
  /// Fault eligibility starts at this round (inclusive).
  std::uint64_t from_round = 0;
  /// Maximum number of messages to drop (0 = unlimited; delays and
  /// duplicates are not capped by this).
  std::uint64_t max_drops = 0;
};

/// Installs the plan on the network; returns a counter handle that reports
/// how many messages were dropped / delayed / duplicated.  The network
/// co-owns the filter state, so the injector may be destroyed before the
/// run without dangling (regression-tested).
class FaultInjector {
 public:
  FaultInjector(Network& network, FaultPlan plan, std::uint64_t seed);

  [[nodiscard]] std::uint64_t drops() const { return shared_->drops; }
  [[nodiscard]] std::uint64_t delays() const { return shared_->delays; }
  [[nodiscard]] std::uint64_t duplicates() const { return shared_->duplicates; }

 private:
  /// Filter state, co-owned by the network's installed std::function.
  struct Shared {
    FaultPlan plan;
    Rng rng;
    std::uint64_t drops = 0;
    std::uint64_t delays = 0;
    std::uint64_t duplicates = 0;

    Shared(FaultPlan p, std::uint64_t seed) : plan(p), rng(seed) {}
  };

  std::shared_ptr<Shared> shared_;
};

}  // namespace dknn

#pragma once
/// \file fault.hpp
/// \brief Fault injection for robustness tests.
///
/// The paper assumes a fault-free synchronous network; the simulator's fault
/// adapter exists so tests can demonstrate (a) that the engine's round cap
/// converts lost-message deadlocks into diagnosable errors rather than
/// hangs, and (b) which protocol steps are actually loss-sensitive.

#include <cstdint>
#include <optional>

#include "net/network.hpp"
#include "rng/rng.hpp"

namespace dknn {

/// Declarative fault plan compiled into a Network send filter.
struct FaultPlan {
  /// Probability of dropping any given message.
  double drop_probability = 0.0;
  /// If set, only messages with this tag are eligible for dropping.
  std::optional<Tag> only_tag;
  /// If set, only messages from this machine are eligible.
  std::optional<MachineId> only_src;
  /// Drop eligibility starts at this round (inclusive).
  std::uint64_t from_round = 0;
  /// Maximum number of messages to drop (0 = unlimited).
  std::uint64_t max_drops = 0;
};

/// Installs the plan on the network; returns a counter handle that reports
/// how many messages were dropped. The injector must outlive the network run.
class FaultInjector {
public:
  FaultInjector(Network& network, FaultPlan plan, std::uint64_t seed);

  [[nodiscard]] std::uint64_t drops() const { return drops_; }

private:
  FaultPlan plan_;
  Rng rng_;
  std::uint64_t drops_ = 0;
};

}  // namespace dknn

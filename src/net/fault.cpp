#include "net/fault.hpp"

namespace dknn {

FaultInjector::FaultInjector(Network& network, FaultPlan plan, std::uint64_t seed)
    : shared_(std::make_shared<Shared>(plan, seed)) {
  network.set_fault_filter([state = shared_](const Envelope& env) {
    FaultDecision pass;  // Deliver
    Shared& s = *state;
    if (env.sent_round < s.plan.from_round) return pass;
    if (s.plan.only_tag && env.tag != *s.plan.only_tag) return pass;
    if (s.plan.only_src && env.src != *s.plan.only_src) return pass;

    // Drop stage: one bernoulli draw per eligible message, unconditionally
    // — the exact rng stream the drop-only injector always consumed, so
    // plans with the new probabilities at 0 drop identically to before.
    const bool drop_capped = s.plan.max_drops != 0 && s.drops >= s.plan.max_drops;
    if (!drop_capped && s.rng.bernoulli(s.plan.drop_probability)) {
      ++s.drops;
      return FaultDecision{FaultAction::Drop, 0};
    }
    // Delay / duplicate stages draw only when enabled, preserving the
    // drop-only stream byte for byte.
    if (s.plan.delay_probability > 0.0 && s.plan.delay_rounds > 0 &&
        s.rng.bernoulli(s.plan.delay_probability)) {
      ++s.delays;
      return FaultDecision{FaultAction::Delay, s.plan.delay_rounds};
    }
    if (s.plan.duplicate_probability > 0.0 && s.rng.bernoulli(s.plan.duplicate_probability)) {
      ++s.duplicates;
      return FaultDecision{FaultAction::Duplicate, 0};
    }
    return pass;
  });
}

}  // namespace dknn

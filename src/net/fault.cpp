#include "net/fault.hpp"

namespace dknn {

FaultInjector::FaultInjector(Network& network, FaultPlan plan, std::uint64_t seed)
    : plan_(plan), rng_(seed) {
  network.set_send_filter([this](const Envelope& env) {
    if (env.sent_round < plan_.from_round) return true;
    if (plan_.only_tag && env.tag != *plan_.only_tag) return true;
    if (plan_.only_src && env.src != *plan_.only_src) return true;
    if (plan_.max_drops != 0 && drops_ >= plan_.max_drops) return true;
    if (!rng_.bernoulli(plan_.drop_probability)) return true;
    ++drops_;
    return false;  // drop
  });
}

}  // namespace dknn

#include "net/traffic.hpp"

#include <algorithm>

namespace dknn {

void TrafficStats::on_send(const Envelope& env) {
  ++messages_sent_;
  bits_sent_ += env.payload_bits();
  max_message_bits_ = std::max(max_message_bits_, env.payload_bits());
}

void TrafficStats::on_deliver(const Envelope& env, std::uint64_t round) {
  ++messages_delivered_;
  max_latency_ = std::max(max_latency_, round - env.sent_round);
}

void TrafficStats::reset() { *this = TrafficStats{}; }

}  // namespace dknn

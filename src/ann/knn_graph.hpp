#pragma once
/// \file knn_graph.hpp
/// \brief Per-machine directed k-NN graph over FlatStore rows (the
///        approximate search tier's index structure).
///
/// A `KnnGraph` is a fixed out-degree (G) directed graph whose vertices are
/// the rows of one immutable FlatStore and whose adjacency approximates
/// "the G nearest other rows".  It is the structure behind
/// `ScoringPolicy::Approx`: graph_search.hpp walks it greedily to collect a
/// candidate set that is then *exact*-reranked through the fused top-ℓ
/// kernels, so the answer Keys are bit-stable given the candidate set (see
/// src/ann/README.md for the recall — not byte-parity — contract).
///
/// Construction is NN-descent (Dong et al.; the friend-of-a-friend
/// refinement of Baron & Darling): start from random neighbor lists and
/// repeatedly score each node against its neighbors-of-neighbors (forward
/// and reverse), keeping the best G, until the per-iteration update rate
/// drops below δ.  Online growth follows Debatty et al. ("Fast Online k-nn
/// Graph Building"): a new row is beam-searched against the current graph
/// and connected to the best G hits, which also gain reverse edges.
/// Deletion is tombstone-based: a dead row is never *returned* but stays
/// traversable so it cannot disconnect the graph.
///
/// Determinism contract: the graph built over a given (store, config) is a
/// pure function of the store bytes and the config (all randomness flows
/// from config.seed through the repo Rng; every loop visits rows in
/// ascending order; distance ties break by row id), and frontier scoring
/// goes through the SIMD dispatch table whose ISAs are byte-identical by
/// contract — so graphs and searches reproduce across runs and ISA levels.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "data/flat_store.hpp"
#include "data/metric_kind.hpp"
#include "data/point.hpp"

namespace dknn {

namespace simd {
struct KernelOps;  // data/simd/kernel_ops.hpp — resolved once per RowScorer bind
}  // namespace simd

namespace ann {

/// Tuning knobs for graph construction and search.  Defaults are the
/// bench_ann operating point (see BENCH_ann.json).
struct AnnConfig {
  std::size_t degree = 16;     ///< out-degree G of every graph row
  std::size_t ef = 96;         ///< beam width: candidates kept during search
  std::size_t seeds = 8;       ///< deterministic entry points per search
  double delta = 0.02;         ///< NN-descent stop: update rate < δ
  std::size_t max_iters = 12;  ///< NN-descent iteration cap
  std::size_t min_points = 2048;  ///< smaller segments score exactly (no graph)
  /// Metric the graph geometry is built under.  KnnServiceBuilder syncs it
  /// to the service metric; searches may score frontiers under any query
  /// metric (recall degrades gracefully on a mismatch).
  MetricKind metric = MetricKind::SquaredEuclidean;
  std::uint64_t seed = 0x5eed1e55u;  ///< root of all construction randomness
};

/// Batch raw-domain scorer: gathers arbitrary store rows into a padded
/// column tile and scores them against one query through the SIMD dispatch
/// table (kTilePad contract honored internally).  Raw domain means squared
/// sums for the Euclidean family and direct values for L1/L∞ — a strictly
/// monotone image of the metric, which is all graph construction and beam
/// ordering need.  Buffers grow to the high-water mark; keep one per
/// thread / call site.
class RowScorer {
 public:
  RowScorer() = default;

  /// Binds to a store and metric (resolves the ISA table once).  Rebinding
  /// reuses the buffers.
  void bind(const FlatStore& store, MetricKind kind);

  /// Sets the query to an explicit point (dim must match the bound store).
  void set_query(const PointD& query);
  /// Sets the query to a gathered store row.
  void set_query_row(std::uint32_t row);

  /// Raw scores for rows[0..m) against the current query, written to
  /// dist[0..m) (caller-sized; no padding required).
  void score(std::span<const std::uint32_t> rows, double* dist);

 private:
  const FlatStore* store_ = nullptr;
  MetricKind kind_ = MetricKind::SquaredEuclidean;
  const simd::KernelOps* ops_ = nullptr;
  std::vector<double> query_;
  std::vector<double> tile_;      ///< d × chunk columns, gathered
  std::vector<double> dist_pad_;  ///< kTilePad-padded tile output
  std::vector<const double*> cols_;
};

class KnnGraph {
 public:
  /// Absent-edge sentinel: rows inserted while the graph held fewer than G
  /// other rows carry these in their adjacency tail (sorted last).
  static constexpr std::uint32_t kNoNeighbor = 0xFFFFFFFFu;

  /// Bulk build: NN-descent over every row of `store`.  Borrows the store
  /// (non-owning) for the graph's lifetime.
  KnnGraph(const FlatStore& store, const AnnConfig& config);

  /// Online build: an empty graph over `store` to be grown row by row with
  /// insert() — the Debatty incremental mode, exercised by the churn tests.
  enum class OnlineTag : std::uint8_t { Online };
  KnnGraph(const FlatStore& store, const AnnConfig& config, OnlineTag);

  /// Search-then-connect insert of the next uncovered row (rows must be
  /// inserted in ascending order: row == covered()).  The new row links to
  /// its best G search hits and they gain reverse edges back.
  void insert(std::uint32_t row);

  /// Tombstones a covered row: never returned by searches again, but still
  /// traversable so the graph cannot disconnect.  Idempotent.
  void erase(std::uint32_t row);

  [[nodiscard]] const FlatStore& store() const { return *store_; }
  [[nodiscard]] const AnnConfig& config() const { return config_; }
  /// Rows [0, covered()) are in the graph (== store().size() after a bulk
  /// build).
  [[nodiscard]] std::size_t covered() const { return covered_; }
  [[nodiscard]] std::size_t degree() const { return degree_; }
  [[nodiscard]] bool is_dead(std::uint32_t row) const { return dead_[row] != 0; }
  [[nodiscard]] std::size_t dead_count() const { return dead_count_; }
  /// Out-edges of `row`, best-first; tail entries may be kNoNeighbor.
  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::uint32_t row) const {
    return {adj_.data() + static_cast<std::size_t>(row) * degree_, degree_};
  }
  /// NN-descent iterations the bulk build ran (0 for online builds).
  [[nodiscard]] std::size_t build_iterations() const { return build_iters_; }

 private:
  void bulk_build();
  /// Inserts (cand, raw) into row u's sorted-best-G list; true iff it
  /// displaced a worse entry.  Ties break by row id.
  bool try_edge(std::uint32_t u, std::uint32_t cand, double raw);

  const FlatStore* store_;
  AnnConfig config_;
  std::size_t degree_ = 0;   ///< effective G = min(config.degree, n − 1)
  std::size_t covered_ = 0;  ///< rows [0, covered_) are in the graph
  std::vector<std::uint32_t> adj_;  ///< covered_ × degree_, best-first
  std::vector<double> raw_;         ///< raw distance per edge (sorted)
  std::vector<std::uint8_t> dead_;  ///< tombstones, store().size() entries
  std::size_t dead_count_ = 0;
  std::size_t build_iters_ = 0;
  RowScorer scorer_;  ///< build/insert-time scorer (writer-side only)
};

/// Lazily-built graph attached to a sealed segment or static shard.  The
/// slot is created eagerly (cheap) wherever the policy asks for approx; the
/// graph itself is built on first use under std::call_once, so sealing
/// stays O(sort) and only queried segments ever pay the NN-descent cost.
/// Compaction installs fresh slots on merged segments, which is exactly the
/// "rebuild on compaction" hook.  The built graph is logically part of the
/// immutable segment: it is a pure function of (store bytes, config), so
/// sharing it across published snapshots is sound.
class GraphSlot {
 public:
  explicit GraphSlot(const AnnConfig& config) : config_(config) {}

  /// Returns the graph, building it on the first call (thread-safe; racing
  /// readers block on the one builder).  Records dknn_ann_graph_* metrics.
  const KnnGraph& get_or_build(const FlatStore& store);

  /// The graph if already built, nullptr otherwise (never builds).
  [[nodiscard]] const KnnGraph* peek() const {
    return published_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const AnnConfig& config() const { return config_; }

 private:
  AnnConfig config_;
  std::once_flag once_;
  std::unique_ptr<const KnnGraph> graph_;
  std::atomic<const KnnGraph*> published_{nullptr};
};

}  // namespace ann
}  // namespace dknn

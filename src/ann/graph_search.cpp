#include "ann/graph_search.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "support/panic.hpp"

namespace dknn::ann {

namespace {

struct SearchMetrics {
  obs::Counter& searches;
  obs::Histogram& hops;
  obs::Histogram& frontier;
  obs::Histogram& rerank;

  static const SearchMetrics& get() {
    static SearchMetrics m{
        obs::registry().counter("dknn_ann_searches_total", "graph beam searches run"),
        obs::registry().histogram("dknn_ann_search_hops", "frontier expansions per search"),
        obs::registry().histogram("dknn_ann_frontier_scored_points",
                                  "rows batch-scored per search"),
        obs::registry().histogram("dknn_ann_rerank_candidates",
                                  "candidates exact-reranked per search"),
    };
    return m;
  }
};

/// Candidate total order: (raw, row) lexicographic — ties broken by row id
/// so heap contents (and therefore answers) are deterministic.
inline bool cand_less(const AnnCandidate& a, const AnnCandidate& b) {
  if (a.raw != b.raw) return a.raw < b.raw;
  return a.row < b.row;
}
inline bool cand_greater(const AnnCandidate& a, const AnnCandidate& b) { return cand_less(b, a); }

inline bool visited_test_set(std::vector<std::uint64_t>& bits, std::uint32_t row) {
  const std::uint64_t mask = std::uint64_t{1} << (row & 63u);
  std::uint64_t& word = bits[row >> 6u];
  if ((word & mask) != 0) return true;
  word |= mask;
  return false;
}

}  // namespace

void ann_search_candidates(const KnnGraph& graph, const PointD& query, std::size_t ef,
                           MetricKind kind, const std::uint8_t* external_dead,
                           std::vector<AnnCandidate>& out, AnnSearchScratch& scratch,
                           AnnSearchStats* stats) {
  out.clear();
  const std::size_t n = graph.covered();
  if (n == 0 || ef == 0) return;

  scratch.visited.assign((n + 63) / 64, 0);
  scratch.cand.clear();
  scratch.results.clear();
  scratch.scorer.bind(graph.store(), kind);
  scratch.scorer.set_query(query);

  const auto alive = [&](std::uint32_t row) {
    return !graph.is_dead(row) && (external_dead == nullptr || external_dead[row] == 0);
  };

  // `results` is a bounded max-heap (worst on top) of the best live rows
  // seen; `cand` is a min-heap of rows whose neighborhoods are still
  // unexpanded.  Both are (raw, row)-ordered for determinism.
  const auto offer = [&](std::uint32_t row, double raw) {
    const AnnCandidate c{raw, row};
    const bool full = scratch.results.size() >= ef;
    if (full && !cand_less(c, scratch.results.front())) return;  // can't improve
    scratch.cand.push_back(c);
    std::push_heap(scratch.cand.begin(), scratch.cand.end(), cand_greater);
    if (!alive(row)) return;
    scratch.results.push_back(c);
    std::push_heap(scratch.results.begin(), scratch.results.end(), cand_less);
    if (scratch.results.size() > ef) {
      std::pop_heap(scratch.results.begin(), scratch.results.end(), cand_less);
      scratch.results.pop_back();
    }
  };

  // Deterministic seed spread across the row space.
  const std::size_t seed_count = std::max<std::size_t>(1, std::min(graph.config().seeds, n));
  scratch.frontier.clear();
  for (std::size_t s = 0; s < seed_count; ++s) {
    const auto row = static_cast<std::uint32_t>((s * n) / seed_count);
    if (!visited_test_set(scratch.visited, row)) scratch.frontier.push_back(row);
  }
  std::uint64_t hops = 0;
  std::uint64_t scored = 0;
  scratch.dist.resize(scratch.frontier.size());
  scratch.scorer.score(scratch.frontier, scratch.dist.data());
  scored += scratch.frontier.size();
  for (std::size_t i = 0; i < scratch.frontier.size(); ++i) {
    offer(scratch.frontier[i], scratch.dist[i]);
  }

  while (!scratch.cand.empty()) {
    std::pop_heap(scratch.cand.begin(), scratch.cand.end(), cand_greater);
    const AnnCandidate cur = scratch.cand.back();
    scratch.cand.pop_back();
    if (scratch.results.size() >= ef && cand_less(scratch.results.front(), cur)) break;
    ++hops;
    scratch.frontier.clear();
    for (const std::uint32_t w : graph.neighbors(cur.row)) {
      if (w == KnnGraph::kNoNeighbor) break;  // sentinel tail is sorted last
      if (!visited_test_set(scratch.visited, w)) scratch.frontier.push_back(w);
    }
    if (scratch.frontier.empty()) continue;
    scratch.dist.resize(scratch.frontier.size());
    scratch.scorer.score(scratch.frontier, scratch.dist.data());
    scored += scratch.frontier.size();
    for (std::size_t i = 0; i < scratch.frontier.size(); ++i) {
      offer(scratch.frontier[i], scratch.dist[i]);
    }
  }

  out.assign(scratch.results.begin(), scratch.results.end());
  if (stats != nullptr) {
    stats->hops += hops;
    stats->frontier_points += scored;
    stats->rerank_size += out.size();
  }
}

void ann_top_ell(const KnnGraph& graph, const PointD& query, std::size_t ell, std::size_t ef,
                 MetricKind kind, const std::uint8_t* external_dead, std::vector<Key>& out,
                 AnnSearchScratch& scratch, KernelScratch& kernel_scratch) {
  out.clear();
  AnnSearchStats stats;
  std::vector<AnnCandidate>& cands = scratch.hits;
  ann_search_candidates(graph, query, std::max(ef, ell), kind, external_dead, cands, scratch,
                        &stats);
  const SearchMetrics& m = SearchMetrics::get();
  m.searches.add(1);
  m.hops.record(stats.hops);
  m.frontier.record(stats.frontier_points);
  m.rerank.record(stats.rerank_size);
  if (cands.empty()) return;

  // Exact rerank: one single-row range per candidate, ascending, through
  // the fused RangeTopEll kernel — Keys bit-stable given the candidate set.
  scratch.rows.clear();
  for (const AnnCandidate& c : cands) scratch.rows.push_back(c.row);
  std::sort(scratch.rows.begin(), scratch.rows.end());
  RangeTopEll rerank(graph.store(), query, ell, kind, kernel_scratch);
  for (const std::uint32_t row : scratch.rows) {
    rerank.score_range(row, static_cast<std::size_t>(row) + 1);
  }
  rerank.finish(out);
}

}  // namespace dknn::ann

#include "ann/knn_graph.hpp"

#include <algorithm>
#include <limits>

#include "ann/graph_search.hpp"
#include "data/simd/dispatch.hpp"
#include "data/simd/kernel_ops.hpp"
#include "obs/metrics.hpp"
#include "rng/rng.hpp"
#include "support/bits.hpp"
#include "support/panic.hpp"
#include "support/timer.hpp"

namespace dknn::ann {

namespace {

/// Rows gathered/scored per tile: bounds RowScorer's buffers and keeps the
/// gather cache-resident.  A multiple of kTilePad so the padded tile/dist
/// buffers satisfy the full-width-store contract with no extra rounding.
constexpr std::size_t kScoreChunk = 512;
static_assert(kScoreChunk % simd::kTilePad == 0);

struct BuildMetrics {
  obs::Counter& builds;
  obs::Histogram& build_ns;
  obs::Histogram& build_iters;

  static const BuildMetrics& get() {
    static BuildMetrics m{
        obs::registry().counter("dknn_ann_graph_builds_total",
                                "k-NN graphs constructed (bulk NN-descent builds)"),
        obs::registry().histogram("dknn_ann_graph_build_ns",
                                  "wall time per bulk graph build"),
        obs::registry().histogram("dknn_ann_graph_build_iters",
                                  "NN-descent iterations per bulk build"),
    };
    return m;
  }
};

/// (raw, id) edge order: distance first, row id breaking ties — the total
/// order every adjacency list and candidate comparison uses, so builds are
/// deterministic even with duplicate points.
inline bool edge_less(double ra, std::uint32_t a, double rb, std::uint32_t b) {
  if (ra != rb) return ra < rb;
  return a < b;
}

}  // namespace

// --- RowScorer ---------------------------------------------------------------

void RowScorer::bind(const FlatStore& store, MetricKind kind) {
  store_ = &store;
  kind_ = kind;
  ops_ = &simd::kernel_ops();
  query_.assign(store.dim(), 0.0);
  tile_.assign(store.dim() * kScoreChunk, 0.0);
  dist_pad_.assign(kScoreChunk, 0.0);
  cols_.resize(store.dim());
  for (std::size_t j = 0; j < store.dim(); ++j) cols_[j] = tile_.data() + j * kScoreChunk;
}

void RowScorer::set_query(const PointD& query) {
  DKNN_REQUIRE(store_ != nullptr && query.dim() == store_->dim(),
               "RowScorer: query dimension mismatch");
  for (std::size_t j = 0; j < query_.size(); ++j) query_[j] = query[j];
}

void RowScorer::set_query_row(std::uint32_t row) {
  DKNN_REQUIRE(store_ != nullptr && row < store_->size(), "RowScorer: query row out of range");
  for (std::size_t j = 0; j < query_.size(); ++j) query_[j] = store_->coord(row, j);
}

void RowScorer::score(std::span<const std::uint32_t> rows, double* dist) {
  const std::size_t d = store_->dim();
  for (std::size_t base = 0; base < rows.size(); base += kScoreChunk) {
    const std::size_t m = std::min(kScoreChunk, rows.size() - base);
    for (std::size_t j = 0; j < d; ++j) {
      double* col = tile_.data() + j * kScoreChunk;
      std::span<const double> src = store_->dim_coords(j);
      for (std::size_t i = 0; i < m; ++i) col[i] = src[rows[base + i]];
    }
    ops_->tile_scores(kind_, cols_.data(), query_.data(), d, 0, m, dist_pad_.data());
    std::copy_n(dist_pad_.data(), m, dist + base);
  }
}

// --- KnnGraph ----------------------------------------------------------------

KnnGraph::KnnGraph(const FlatStore& store, const AnnConfig& config)
    : store_(&store), config_(config) {
  const std::size_t n = store.size();
  degree_ = n <= 1 ? 0 : std::min(config.degree, n - 1);
  dead_.assign(n, 0);
  scorer_.bind(store, config.metric);
  WallTimer timer;
  bulk_build();
  covered_ = n;
  const BuildMetrics& m = BuildMetrics::get();
  m.builds.add(1);
  m.build_ns.record(timer.elapsed_ns());
  m.build_iters.record(build_iters_);
}

KnnGraph::KnnGraph(const FlatStore& store, const AnnConfig& config, OnlineTag)
    : store_(&store), config_(config) {
  const std::size_t n = store.size();
  degree_ = n <= 1 ? 0 : std::min(config.degree, n - 1);
  dead_.assign(n, 0);
  adj_.reserve(n * degree_);
  raw_.reserve(n * degree_);
  scorer_.bind(store, config.metric);
}

bool KnnGraph::try_edge(std::uint32_t u, std::uint32_t cand, double raw) {
  if (cand == u) return false;
  std::uint32_t* nbr = adj_.data() + static_cast<std::size_t>(u) * degree_;
  double* dst = raw_.data() + static_cast<std::size_t>(u) * degree_;
  // Reject if already present or worse than the current tail.
  for (std::size_t k = 0; k < degree_; ++k) {
    if (nbr[k] == cand) return false;
  }
  std::size_t pos = degree_;
  while (pos > 0 && edge_less(raw, cand, dst[pos - 1], nbr[pos - 1])) --pos;
  if (pos == degree_) return false;
  for (std::size_t k = degree_ - 1; k > pos; --k) {
    nbr[k] = nbr[k - 1];
    dst[k] = dst[k - 1];
  }
  nbr[pos] = cand;
  dst[pos] = raw;
  return true;
}

void KnnGraph::bulk_build() {
  const std::size_t n = store_->size();
  const std::size_t g = degree_;
  adj_.assign(n * g, kNoNeighbor);
  raw_.assign(n * g, std::numeric_limits<double>::infinity());
  if (n <= 1 || g == 0) return;

  Rng rng(config_.seed);
  std::vector<std::uint32_t> cand;
  std::vector<double> dist;

  // Random init: G distinct neighbors per row, scored and sorted.
  for (std::size_t u = 0; u < n; ++u) {
    cand.clear();
    while (cand.size() < g) {
      const auto v = static_cast<std::uint32_t>(rng.below(n));
      if (v == static_cast<std::uint32_t>(u)) continue;
      if (std::find(cand.begin(), cand.end(), v) != cand.end()) continue;
      cand.push_back(v);
    }
    dist.resize(cand.size());
    scorer_.set_query_row(static_cast<std::uint32_t>(u));
    scorer_.score(cand, dist.data());
    std::vector<std::size_t> order(cand.size());
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return edge_less(dist[a], cand[a], dist[b], cand[b]);
    });
    for (std::size_t k = 0; k < g; ++k) {
      adj_[u * g + k] = cand[order[k]];
      raw_[u * g + k] = dist[order[k]];
    }
  }

  // NN-descent: candidates = neighbors-of-neighbors over the undirected
  // closure (forward adjacency ∪ a capped reverse sample), merged
  // symmetrically.  Stop when the update rate falls below δ.
  std::vector<std::uint32_t> rev(n * g, kNoNeighbor);
  std::vector<std::uint32_t> rev_len(n);
  std::vector<std::uint32_t> mark(n, 0);
  std::uint32_t epoch = 0;
  std::vector<std::uint32_t> ball;
  for (std::size_t it = 0; it < config_.max_iters; ++it) {
    std::fill(rev_len.begin(), rev_len.end(), 0u);
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t k = 0; k < g; ++k) {
        const std::uint32_t v = adj_[u * g + k];
        if (rev_len[v] < g) rev[static_cast<std::size_t>(v) * g + rev_len[v]++] = static_cast<std::uint32_t>(u);
      }
    }
    std::size_t updates = 0;
    for (std::size_t u = 0; u < n; ++u) {
      ++epoch;
      mark[u] = epoch;
      ball.clear();
      for (std::size_t k = 0; k < g; ++k) ball.push_back(adj_[u * g + k]);
      for (std::size_t k = 0; k < rev_len[u]; ++k) ball.push_back(rev[u * g + k]);
      cand.clear();
      for (const std::uint32_t v : ball) {
        if (mark[v] != epoch) {
          mark[v] = epoch;
          cand.push_back(v);
        }
        for (std::size_t k = 0; k < g; ++k) {
          const std::uint32_t w = adj_[static_cast<std::size_t>(v) * g + k];
          if (mark[w] == epoch) continue;
          mark[w] = epoch;
          cand.push_back(w);
        }
      }
      if (cand.empty()) continue;
      dist.resize(cand.size());
      scorer_.set_query_row(static_cast<std::uint32_t>(u));
      scorer_.score(cand, dist.data());
      for (std::size_t k = 0; k < cand.size(); ++k) {
        updates += try_edge(static_cast<std::uint32_t>(u), cand[k], dist[k]) ? 1 : 0;
        updates += try_edge(cand[k], static_cast<std::uint32_t>(u), dist[k]) ? 1 : 0;
      }
    }
    build_iters_ = it + 1;
    if (static_cast<double>(updates) < config_.delta * static_cast<double>(n) * static_cast<double>(g)) {
      break;
    }
  }
}

void KnnGraph::insert(std::uint32_t row) {
  DKNN_REQUIRE(row == covered_ && row < store_->size(),
               "KnnGraph::insert: rows must be inserted in order");
  const std::size_t g = degree_;
  adj_.resize(adj_.size() + g, kNoNeighbor);
  raw_.resize(raw_.size() + g, std::numeric_limits<double>::infinity());
  if (g == 0) {
    ++covered_;
    return;
  }
  scorer_.set_query_row(row);
  std::vector<AnnCandidate> hits;
  if (covered_ <= g) {
    // Fewer existing rows than G: connect to all of them.
    std::vector<std::uint32_t> all(covered_);
    for (std::uint32_t v = 0; v < covered_; ++v) all[v] = v;
    std::vector<double> dist(all.size());
    scorer_.score(all, dist.data());
    for (std::size_t k = 0; k < all.size(); ++k) hits.push_back({dist[k], all[k]});
  } else {
    // Debatty search-then-connect: beam-search the current graph for the
    // new row's neighborhood.  Tombstoned rows still make fine edges, so
    // no external dead mask and the graph's own tombstones are ignored by
    // scoring here (search only *returns* live rows; re-score everything
    // it visited including the beam results).
    AnnSearchScratch scratch;
    const PointD q = store_->point(row);
    ann_search_candidates(*this, q, std::max(config_.ef, g + 1), config_.metric,
                          /*external_dead=*/nullptr, hits, scratch, nullptr);
  }
  std::sort(hits.begin(), hits.end(), [](const AnnCandidate& a, const AnnCandidate& b) {
    return edge_less(a.raw, a.row, b.raw, b.row);
  });
  ++covered_;  // try_edge on `row` itself is legal from here on
  const std::size_t take = std::min(hits.size(), g);
  for (std::size_t k = 0; k < take; ++k) {
    adj_[static_cast<std::size_t>(row) * g + k] = hits[k].row;
    raw_[static_cast<std::size_t>(row) * g + k] = hits[k].raw;
  }
  for (std::size_t k = 0; k < take; ++k) {
    try_edge(hits[k].row, row, hits[k].raw);  // reverse edge, displacing a worse one
  }
}

void KnnGraph::erase(std::uint32_t row) {
  DKNN_REQUIRE(row < store_->size(), "KnnGraph::erase: row out of range");
  if (row >= covered_ || dead_[row] != 0) return;
  dead_[row] = 1;
  ++dead_count_;
}

// --- GraphSlot ---------------------------------------------------------------

const KnnGraph& GraphSlot::get_or_build(const FlatStore& store) {
  std::call_once(once_, [&] {
    graph_ = std::make_unique<const KnnGraph>(store, config_);
    published_.store(graph_.get(), std::memory_order_release);
  });
  return *graph_;
}

}  // namespace dknn::ann

#pragma once
/// \file graph_search.hpp
/// \brief Seeded greedy beam search over a KnnGraph + exact rerank.
///
/// `ann_search_candidates` walks the graph best-first from deterministic
/// seed rows, keeping an ef-bounded candidate list and batch-scoring each
/// frontier through the SIMD dispatch table (RowScorer).  It returns
/// *candidate rows* only — `ann_top_ell` then reranks them with the exact
/// RangeTopEll kernel (one single-row range per candidate, ascending), so
/// the final Keys are bit-identical to what the exact path would produce
/// for those rows, on every ISA.  Approximation lives entirely in *which*
/// rows the walk surfaces (recall@ℓ, measured by bench_ann), never in the
/// returned ranks.
///
/// Tombstones: rows dead in the graph (KnnGraph::erase) or in the caller's
/// external bitmap (a SegmentView's copy-on-write tombstones — the graph is
/// shared across snapshots, so per-snapshot deadness must come from
/// outside) are traversed but never returned.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ann/knn_graph.hpp"
#include "data/kernels.hpp"
#include "data/key.hpp"
#include "data/metric_kind.hpp"
#include "data/point.hpp"

namespace dknn::ann {

/// One surviving candidate: raw-domain score (squared for the Euclidean
/// family) and its store row.
struct AnnCandidate {
  double raw;
  std::uint32_t row;
};

struct AnnSearchStats {
  std::uint64_t hops = 0;             ///< frontier expansions
  std::uint64_t frontier_points = 0;  ///< rows batch-scored during the walk
  std::uint64_t rerank_size = 0;      ///< candidates handed to the rerank
};

/// Reusable search scratch (visited bitset, heaps, gather buffers).  Keep
/// one per thread / call site; buffers grow to the high-water mark.
struct AnnSearchScratch {
  std::vector<std::uint64_t> visited;
  std::vector<AnnCandidate> cand;      ///< min-heap of unexpanded rows
  std::vector<AnnCandidate> results;   ///< max-heap of best ef live rows
  std::vector<std::uint32_t> frontier; ///< unvisited neighbors, gathered
  std::vector<double> dist;
  std::vector<std::uint32_t> rows;     ///< sorted rerank rows
  std::vector<AnnCandidate> hits;      ///< ann_top_ell's candidate set
  RowScorer scorer;
};

/// Greedy beam search: fills `out` with up to `ef` live candidates (rows
/// not tombstoned in the graph nor in `external_dead`, which may be null or
/// must cover graph.covered() bytes).  Frontier ordering uses `kind` in the
/// raw domain.  Deterministic given (graph, query, ef, kind, tombstones).
/// `out` is unordered (callers rerank); stats (optional) accumulate.
void ann_search_candidates(const KnnGraph& graph, const PointD& query, std::size_t ef,
                           MetricKind kind, const std::uint8_t* external_dead,
                           std::vector<AnnCandidate>& out, AnnSearchScratch& scratch,
                           AnnSearchStats* stats = nullptr);

/// Beam search + exact rerank: `out` gets the candidates' min(ℓ, |cand|)
/// best Keys ascending, ranks encode_distance-encoded by the exact
/// RangeTopEll kernel — bit-stable given the candidate set.  Records
/// dknn_ann_search_* metrics and, with ef ≥ max(ℓ, live rows reachable),
/// degrades to the exact answer.
void ann_top_ell(const KnnGraph& graph, const PointD& query, std::size_t ell, std::size_t ef,
                 MetricKind kind, const std::uint8_t* external_dead, std::vector<Key>& out,
                 AnnSearchScratch& scratch, KernelScratch& kernel_scratch);

}  // namespace dknn::ann

#include "fault/health.hpp"

#include <string>

#include "obs/metrics.hpp"
#include "support/panic.hpp"

namespace dknn {
namespace {

struct HealthMetrics {
  obs::Counter& probes = obs::registry().counter(
      "dknn_health_probes_total", "liveness probes issued by check_call");
  obs::Counter& timeouts = obs::registry().counter(
      "dknn_health_timeouts_total", "probes that exhausted their deadline");
  obs::Counter& deaths_detected = obs::registry().counter(
      "dknn_health_deaths_detected_total", "machines marked Dead by deadline detection");
  obs::Counter& kills = obs::registry().counter(
      "dknn_health_kills_total", "explicit kill() transitions");
  obs::Counter& revives = obs::registry().counter(
      "dknn_health_revives_total", "explicit revive() transitions");
  obs::Counter& retires = obs::registry().counter(
      "dknn_health_retires_total", "explicit retire() transitions");
  /// Accounted (never slept) probe cost per check_call: deadline misses ×
  /// per-call deadline + exponential backoff, the simulator's stand-in
  /// for wall-clock probe latency.
  obs::Histogram& probe_latency = obs::registry().histogram(
      "dknn_health_probe_latency_ns", "accounted deadline + backoff cost per check_call");
};

HealthMetrics& health_metrics() {
  static HealthMetrics m;
  return m;
}

}  // namespace

MachineHealth::MachineHealth(std::size_t machines, HealthConfig config)
    : config_(config), states_(machines, MachineState::Alive), modes_(machines) {
  DKNN_REQUIRE(machines >= 1, "MachineHealth needs at least one machine");
}

void MachineHealth::require_machine(std::size_t machine) const {
  DKNN_REQUIRE(machine < states_.size(), "MachineHealth: bad machine id");
}

MachineState MachineHealth::state(std::size_t machine) const {
  require_machine(machine);
  const std::lock_guard<std::mutex> lock(mutex_);
  return states_[machine];
}

bool MachineHealth::alive(std::size_t machine) const {
  return state(machine) == MachineState::Alive;
}

std::size_t MachineHealth::alive_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const MachineState s : states_) count += s == MachineState::Alive ? 1 : 0;
  return count;
}

std::vector<std::uint32_t> MachineHealth::alive_set() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint32_t> out;
  for (std::size_t m = 0; m < states_.size(); ++m) {
    if (states_[m] == MachineState::Alive) out.push_back(static_cast<std::uint32_t>(m));
  }
  return out;
}

std::vector<std::uint32_t> MachineHealth::dead_set() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint32_t> out;
  for (std::size_t m = 0; m < states_.size(); ++m) {
    if (states_[m] == MachineState::Dead) out.push_back(static_cast<std::uint32_t>(m));
  }
  return out;
}

std::uint32_t MachineHealth::expected_total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint32_t total = 0;
  for (const MachineState s : states_) total += s != MachineState::Retired ? 1 : 0;
  return total;
}

std::uint64_t MachineHealth::generation() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

void MachineHealth::kill(std::size_t machine) {
  require_machine(machine);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (states_[machine] != MachineState::Alive) {
    throw std::logic_error("MachineHealth::kill: machine " + std::to_string(machine) +
                           " is not alive");
  }
  states_[machine] = MachineState::Dead;
  ++generation_;
  ++stats_.kills;
  health_metrics().kills.add();
}

void MachineHealth::revive(std::size_t machine) {
  require_machine(machine);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (states_[machine] != MachineState::Dead) {
    throw std::logic_error("MachineHealth::revive: machine " + std::to_string(machine) +
                           " is not dead");
  }
  states_[machine] = MachineState::Alive;
  modes_[machine] = FailureMode{};  // a revived machine answers again
  ++generation_;
  ++stats_.revives;
  health_metrics().revives.add();
}

void MachineHealth::retire(std::size_t machine) {
  require_machine(machine);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (states_[machine] != MachineState::Dead) {
    throw std::logic_error("MachineHealth::retire: machine " + std::to_string(machine) +
                           " is not dead");
  }
  states_[machine] = MachineState::Retired;
  ++generation_;
  ++stats_.retires;
  health_metrics().retires.add();
}

void MachineHealth::set_failure_mode(std::size_t machine, FailureMode mode) {
  require_machine(machine);
  const std::lock_guard<std::mutex> lock(mutex_);
  modes_[machine] = mode;
}

CallReport MachineHealth::check_call(std::size_t machine) {
  require_machine(machine);
  const std::lock_guard<std::mutex> lock(mutex_);
  CallReport report;
  if (states_[machine] == MachineState::Dead) {
    report.status = CallStatus::Dead;
    return report;
  }
  if (states_[machine] == MachineState::Retired) {
    report.status = CallStatus::Retired;
    return report;
  }

  FailureMode& mode = modes_[machine];
  HealthMetrics& metrics = health_metrics();
  for (std::uint32_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
    ++report.attempts;
    ++stats_.probes;
    metrics.probes.add();
    bool answered = false;
    switch (mode.kind) {
      case FailureModeKind::Healthy:
        answered = true;
        break;
      case FailureModeKind::Slow:
        if (mode.timeouts > 0) {
          --mode.timeouts;
          if (mode.timeouts == 0) mode.kind = FailureModeKind::Healthy;
        } else {
          answered = true;
        }
        break;
      case FailureModeKind::Unresponsive:
        break;
    }
    if (answered) {
      report.status = CallStatus::Ok;
      stats_.backoff_ns += report.backoff_ns;
      // Accounted cost: each failed attempt burned its full deadline,
      // plus the recorded backoff between attempts.
      metrics.probe_latency.record(
          (report.attempts - 1) * config_.call_deadline_ns + report.backoff_ns);
      return report;
    }
    ++stats_.timeouts;
    metrics.timeouts.add();
    if (attempt < config_.max_retries) {
      report.backoff_ns += config_.backoff_ns << attempt;  // exponential
    }
  }

  // All probes exhausted their deadline: deadline-based detection.
  states_[machine] = MachineState::Dead;
  ++generation_;
  ++stats_.deaths_detected;
  metrics.deaths_detected.add();
  stats_.backoff_ns += report.backoff_ns;
  report.status = CallStatus::TimedOut;
  metrics.probe_latency.record(report.attempts * config_.call_deadline_ns + report.backoff_ns);
  return report;
}

Coverage MachineHealth::coverage_now() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Coverage coverage;
  for (std::size_t m = 0; m < states_.size(); ++m) {
    if (states_[m] == MachineState::Retired) continue;
    ++coverage.total;
    if (states_[m] == MachineState::Dead) {
      coverage.missing.push_back(static_cast<std::uint32_t>(m));
    }
  }
  return coverage;
}

LivenessView MachineHealth::view() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  LivenessView view;
  view.generation = generation_;
  view.alive.resize(states_.size(), 0);
  for (std::size_t m = 0; m < states_.size(); ++m) {
    if (states_[m] == MachineState::Retired) continue;
    ++view.coverage.total;
    if (states_[m] == MachineState::Dead) {
      view.coverage.missing.push_back(static_cast<std::uint32_t>(m));
    } else {
      view.alive[m] = 1;
    }
  }
  return view;
}

HealthStats MachineHealth::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace dknn

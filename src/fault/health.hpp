#pragma once
/// \file health.hpp
/// \brief Per-machine liveness registry with deadline-based failure
///        detection — the fault layer under the serving stack.
///
/// The paper's congested-clique protocol assumes a fault-free synchronous
/// network, and every layer above it inherited that assumption: a dead
/// SegmentStore machine would hang the scoring step forever.  `MachineHealth`
/// makes failure a first-class, *detected* state instead:
///
///   * every cross-machine scoring step consults `check_call(m)` before
///     touching machine m's data — one bounded probe sequence (per-probe
///     deadline, `max_retries` retries with exponential backoff) that either
///     succeeds or marks the machine Dead;
///   * callers that see a non-Ok report skip the machine and surface the
///     exactness loss through a `Coverage` field rather than a hang or a
///     silent wrong answer;
///   * every liveness transition (kill, detection, revive, retire) bumps a
///     monotone `generation()` counter — the component result caches mix
///     into their epoch key so a degraded answer is never served after
///     recovery, and vice versa.
///
/// Deadlines in-process: the simulator has no real transport, so probe
/// outcomes come from per-machine *failure modes* (`Healthy`, `Slow{n}`,
/// `Unresponsive`) installed by tests and chaos harnesses; the deadline and
/// backoff budgets are *recorded* against the configured nanosecond costs
/// instead of slept.  A real transport plugs wall clocks into the same
/// report shape — the retry/backoff/degrade semantics above it do not
/// change (this is the seam the ROADMAP's multi-process transport item
/// plugs into).
///
/// States:  Alive ──kill/detect──▶ Dead ──revive──▶ Alive
///                                   └──retire──▶ Retired  (terminal)
/// Retired machines re-homed their data onto survivors (recovery) and drop
/// out of `Coverage::total`; Dead machines are missing-but-expected.
///
/// Thread-safety: all methods serialize on an internal mutex; `check_call`
/// is safe from concurrent scoring threads.

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace dknn {

/// A fault-layer call that found no machine left to serve from.
class NoLiveMachinesError final : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class MachineState : std::uint8_t {
  Alive,    ///< serving; probes may still fail (failure mode)
  Dead,     ///< killed or detected; data unreachable but still owned
  Retired,  ///< recovered: data re-homed onto survivors, out of coverage
};

/// Scripted probe behaviour of one machine (how the simulator stands in
/// for a real transport's timeouts).
enum class FailureModeKind : std::uint8_t {
  Healthy,       ///< every probe succeeds
  Slow,          ///< the next `timeouts` probes miss their deadline, then ok
  Unresponsive,  ///< every probe misses its deadline (detected Dead on the
                 ///< first check_call that exhausts its retries)
};

struct FailureMode {
  FailureModeKind kind = FailureModeKind::Healthy;
  /// Slow only: probes that exceed the deadline before the machine answers.
  std::uint32_t timeouts = 0;
};

/// Detection budgets.  Nanosecond fields are accounting (recorded in the
/// CallReport / stats), not slept — see the file comment.
struct HealthConfig {
  /// Per-probe deadline.
  std::uint64_t call_deadline_ns = 2'000'000;
  /// Retries after the first probe; a call issues `max_retries + 1` probes
  /// before declaring the machine dead.
  std::uint32_t max_retries = 2;
  /// Base backoff between probes; doubles per retry (bounded: the series
  /// is finite by max_retries).
  std::uint64_t backoff_ns = 100'000;
};

enum class CallStatus : std::uint8_t {
  Ok,        ///< machine answered within its deadline (possibly after retries)
  TimedOut,  ///< every probe missed its deadline — machine marked Dead now
  Dead,      ///< machine was already Dead; no probes issued
  Retired,   ///< machine is Retired; no probes issued, not in coverage
};

/// Outcome of one deadline-guarded call.
struct CallReport {
  CallStatus status = CallStatus::Ok;
  std::uint32_t attempts = 0;     ///< probes issued
  std::uint64_t backoff_ns = 0;   ///< total backoff charged between probes

  [[nodiscard]] bool ok() const { return status == CallStatus::Ok; }
};

/// Which machines answered a cross-machine step.  `total` counts the
/// machines expected to answer (everything not Retired); `missing` lists
/// the Dead / timed-out machine ids, ascending.
struct Coverage {
  std::uint32_t total = 0;
  std::vector<std::uint32_t> missing;

  [[nodiscard]] std::uint32_t answered() const {
    return total - static_cast<std::uint32_t>(missing.size());
  }
  [[nodiscard]] bool complete() const { return missing.empty(); }
  [[nodiscard]] double fraction() const {
    return total == 0 ? 1.0 : static_cast<double>(answered()) / static_cast<double>(total);
  }
};

/// One atomically-read (generation, coverage, alive mask) triple — the
/// detected liveness state at a single instant.  Callers that read
/// generation() and coverage_now() separately can tear across a concurrent
/// transition; snapshot publishers (KnnService) and lock-free cache keys
/// need the three to describe the *same* state.
struct LivenessView {
  std::uint64_t generation = 0;
  Coverage coverage;
  /// alive[m] != 0 iff machine m is Alive (reachable for a snapshot).
  std::vector<char> alive;
};

struct HealthStats {
  std::uint64_t probes = 0;           ///< individual probes issued
  std::uint64_t timeouts = 0;         ///< probes that missed their deadline
  std::uint64_t backoff_ns = 0;       ///< total backoff charged
  std::uint64_t deaths_detected = 0;  ///< check_call declared a machine dead
  std::uint64_t kills = 0;            ///< explicit kill()s
  std::uint64_t revives = 0;
  std::uint64_t retires = 0;
};

class MachineHealth {
 public:
  explicit MachineHealth(std::size_t machines, HealthConfig config = {});

  [[nodiscard]] std::size_t machines() const { return states_.size(); }
  [[nodiscard]] const HealthConfig& config() const { return config_; }

  [[nodiscard]] MachineState state(std::size_t machine) const;
  [[nodiscard]] bool alive(std::size_t machine) const;
  [[nodiscard]] std::size_t alive_count() const;
  /// Alive machine ids, ascending.
  [[nodiscard]] std::vector<std::uint32_t> alive_set() const;
  /// Dead (not Retired) machine ids, ascending.
  [[nodiscard]] std::vector<std::uint32_t> dead_set() const;
  /// Machines expected to answer: everything not Retired.
  [[nodiscard]] std::uint32_t expected_total() const;

  /// Monotone liveness-state counter: bumped by every kill / detection /
  /// revive / retire.  Caches mix this into their epoch key so answers
  /// computed against different live sets can never collide.
  [[nodiscard]] std::uint64_t generation() const;

  /// Alive → Dead (explicit fail-stop, e.g. chaos harness or an operator).
  /// Throws std::logic_error unless the machine is Alive.
  void kill(std::size_t machine);
  /// Dead → Alive; clears the failure mode.  Throws unless Dead.
  void revive(std::size_t machine);
  /// Dead → Retired (after recovery re-homed its data).  Throws unless Dead.
  void retire(std::size_t machine);

  /// Scripts probe outcomes for an Alive machine (see FailureModeKind).
  void set_failure_mode(std::size_t machine, FailureMode mode);

  /// Deadline-guarded call gate: probes `machine` with bounded
  /// retry-with-backoff.  Ok when the machine answers within the budget;
  /// TimedOut marks it Dead (generation bump) and reports the exhausted
  /// attempt count; Dead / Retired short-circuit without probing.
  [[nodiscard]] CallReport check_call(std::size_t machine);

  /// Coverage of the current *detected* state — no probes issued (used for
  /// cache hits, where the generation key guarantees the state matches the
  /// entry's compute-time state).
  [[nodiscard]] Coverage coverage_now() const;

  /// The detected state as one consistent triple (generation + coverage +
  /// alive mask), read under a single lock acquisition — see LivenessView.
  [[nodiscard]] LivenessView view() const;

  [[nodiscard]] HealthStats stats() const;

 private:
  void require_machine(std::size_t machine) const;

  HealthConfig config_;
  mutable std::mutex mutex_;
  std::vector<MachineState> states_;
  std::vector<FailureMode> modes_;
  std::uint64_t generation_ = 0;
  HealthStats stats_;
};

}  // namespace dknn

#include "fault/recovery.hpp"

#include <algorithm>

#include "election/min_id.hpp"
#include "election/sublinear.hpp"
#include "fault/health.hpp"
#include "sim/engine.hpp"
#include "support/panic.hpp"

namespace dknn {

ReplicaMirror::ReplicaMirror(std::size_t machines) : shards_(machines) {
  DKNN_REQUIRE(machines >= 1, "ReplicaMirror needs at least one machine");
}

void ReplicaMirror::record(std::size_t machine, ReplicaRecord record) {
  DKNN_REQUIRE(machine < shards_.size(), "ReplicaMirror: bad machine id");
  const PointId id = record.id;
  if (auto it = owner_.find(id); it != owner_.end() && it->second != machine) {
    shards_[it->second].erase(id);
  }
  owner_[id] = machine;
  shards_[machine][id] = std::move(record);
}

bool ReplicaMirror::erase(PointId id) {
  auto it = owner_.find(id);
  if (it == owner_.end()) return false;
  shards_[it->second].erase(id);
  owner_.erase(it);
  return true;
}

std::optional<std::size_t> ReplicaMirror::machine_of(PointId id) const {
  auto it = owner_.find(id);
  if (it == owner_.end()) return std::nullopt;
  return it->second;
}

std::size_t ReplicaMirror::points_on(std::size_t machine) const {
  DKNN_REQUIRE(machine < shards_.size(), "ReplicaMirror: bad machine id");
  return shards_[machine].size();
}

std::vector<PointId> ReplicaMirror::ids_on(std::size_t machine) const {
  DKNN_REQUIRE(machine < shards_.size(), "ReplicaMirror: bad machine id");
  std::vector<PointId> out;
  out.reserve(shards_[machine].size());
  for (const auto& [id, record] : shards_[machine]) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PointId> ReplicaMirror::ids() const {
  std::vector<PointId> out;
  out.reserve(owner_.size());
  for (const auto& [id, machine] : owner_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ReplicaRecord> ReplicaMirror::recover(std::size_t machine) {
  DKNN_REQUIRE(machine < shards_.size(), "ReplicaMirror: bad machine id");
  std::vector<ReplicaRecord> out;
  out.reserve(shards_[machine].size());
  for (auto& [id, record] : shards_[machine]) out.push_back(std::move(record));
  for (const ReplicaRecord& record : out) owner_.erase(record.id);
  shards_[machine].clear();
  std::sort(out.begin(), out.end(),
            [](const ReplicaRecord& a, const ReplicaRecord& b) { return a.id < b.id; });
  return out;
}

namespace {

Task<void> election_program(Ctx& ctx, ElectionKind kind,
                            std::vector<ElectionOutcome>* outcomes) {
  (*outcomes)[ctx.id()] = kind == ElectionKind::MinId ? co_await elect_min_id(ctx)
                                                      : co_await elect_sublinear(ctx);
}

}  // namespace

ElectionRun elect_coordinator(const std::vector<std::uint32_t>& alive, ElectionKind kind,
                              std::uint64_t seed) {
  if (alive.empty()) {
    throw NoLiveMachinesError("dknn: elect_coordinator: no live machines left");
  }
  EngineConfig config;
  config.world_size = static_cast<std::uint32_t>(alive.size());
  config.seed = seed;
  config.measure_compute = false;
  Engine engine(config);

  std::vector<ElectionOutcome> outcomes(alive.size());
  const RunReport report = engine.run(
      [&outcomes, kind](Ctx& ctx) { return election_program(ctx, kind, &outcomes); });

  ElectionRun run;
  // Engine ids are positions in the ascending survivor list; translate the
  // agreed leader back to its service machine id.
  run.coordinator = alive[outcomes.front().leader];
  run.attempts = outcomes.front().attempts;
  run.rounds = report.rounds;
  run.messages = report.traffic.messages_sent();
  return run;
}

}  // namespace dknn

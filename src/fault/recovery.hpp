#pragma once
/// \file recovery.hpp
/// \brief Recovery after machine failure: the replica mirror a service
///        re-shards a dead machine's points from, and the survivor
///        election that picks the re-shard coordinator.
///
/// The k-machine model owns each point exactly once, so a dead machine's
/// shard is gone from the serving path the moment detection fires.  The
/// fault-tolerant KnnService therefore keeps a `ReplicaMirror` — a cheap
/// (point, id, payload) copy of every machine's membership, maintained on
/// build / insert / erase — standing in for what a production deployment
/// would read from a replica or a write-ahead log.  Recovery then is:
///
///   1. survivors run a leader election (`election/` — min-id or the
///      paper-adjacent sublinear protocol) to pick the coordinator;
///   2. the dead machine's mirror records re-insert onto the survivors
///      through the live SegmentStore path, round-robin starting at the
///      coordinator, ascending by id (deterministic);
///   3. the dead machine retires: its slot leaves `Coverage::total` and
///      its mirror slot clears.
///
/// After step 3 the service is byte-exact again: the global top-ℓ over
/// distinct (distance, id) keys does not depend on which machine holds
/// which point, so answers equal a never-failed service's (pinned by the
/// chaos fuzz in tests/test_chaos.cpp).  Erases issued while the owner
/// was dead apply to the mirror immediately — recovery re-inserts only
/// what is still a member, so deletes never resurrect.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "data/point.hpp"
#include "net/types.hpp"

namespace dknn {

/// One mirrored point: everything needed to re-insert it elsewhere.
struct ReplicaRecord {
  PointD point;
  PointId id = 0;
  std::optional<std::uint32_t> label;
  std::optional<double> target;
};

/// Abstract source recovery re-reads a dead machine's points from (a
/// replica, a WAL, ...).  `recover` is consuming: ownership of the
/// records moves to the caller.
class RecoverySource {
 public:
  virtual ~RecoverySource() = default;
  /// The machine's member points, ascending by id; empty when nothing is
  /// recoverable.
  [[nodiscard]] virtual std::vector<ReplicaRecord> recover(std::size_t machine) = 0;
};

/// In-process recovery source: an id-keyed mirror of every machine's
/// membership.  Not thread-safe on its own — the owning service guards it
/// with its service mutex.
class ReplicaMirror final : public RecoverySource {
 public:
  explicit ReplicaMirror(std::size_t machines);

  [[nodiscard]] std::size_t machines() const { return shards_.size(); }

  /// Upserts `record` as machine `machine`'s copy of its id.
  void record(std::size_t machine, ReplicaRecord record);

  /// Drops `id` from whichever machine mirrors it; false when unknown.
  bool erase(PointId id);

  [[nodiscard]] bool contains(PointId id) const { return owner_.count(id) != 0; }
  /// The machine mirroring `id`, if any.
  [[nodiscard]] std::optional<std::size_t> machine_of(PointId id) const;
  [[nodiscard]] std::size_t points_on(std::size_t machine) const;
  [[nodiscard]] std::size_t total_points() const { return owner_.size(); }

  /// Member ids of one machine, ascending.
  [[nodiscard]] std::vector<PointId> ids_on(std::size_t machine) const;
  /// All member ids across machines, ascending.
  [[nodiscard]] std::vector<PointId> ids() const;

  /// Consumes machine `machine`'s records (ascending by id) and clears its
  /// slot — the recovery read.
  [[nodiscard]] std::vector<ReplicaRecord> recover(std::size_t machine) override;

 private:
  std::vector<std::unordered_map<PointId, ReplicaRecord>> shards_;
  std::unordered_map<PointId, std::size_t> owner_;
};

/// Which election protocol survivors run to pick the re-shard coordinator.
enum class ElectionKind : std::uint8_t {
  MinId,      ///< 1 round, k(k−1) messages, deterministic winner
  Sublinear,  ///< the Õ(√k)-message randomized protocol
};

/// Outcome of one survivor election.
struct ElectionRun {
  MachineId coordinator = 0;         ///< *service* machine id of the winner
  std::uint32_t attempts = 1;        ///< protocol attempts (sublinear retries)
  std::uint64_t rounds = 0;          ///< engine rounds the election took
  std::uint64_t messages = 0;        ///< messages the election sent
};

/// Runs `kind` over the survivor set on a fresh engine (world size =
/// survivors; engine ids map to `alive` ascending) and translates the
/// winner back to a service machine id.  Deterministic per (alive, kind,
/// seed).  Throws NoLiveMachinesError when `alive` is empty.
[[nodiscard]] ElectionRun elect_coordinator(const std::vector<std::uint32_t>& alive,
                                            ElectionKind kind, std::uint64_t seed);

/// What one machine's recovery did.
struct RecoveryReport {
  std::size_t machine = 0;         ///< the machine that was recovered
  ElectionRun election;            ///< the survivor election that led it
  std::size_t points_recovered = 0;  ///< mirror records re-inserted
};

}  // namespace dknn

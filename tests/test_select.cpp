// Tests for core/dist_select (the paper's Algorithm 1): exact-answer
// equivalence with sequential selection across a (n, k, ℓ, distribution,
// placement) grid, round/message bounds (Theorem 2.2), edge cases, strict
// bandwidth certification, and determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "core/driver.hpp"
#include "data/generators.hpp"
#include "data/partition.hpp"
#include "rng/rng.hpp"
#include "sim/engine.hpp"
#include "support/panic.hpp"
#include "support/stats.hpp"

namespace dknn {
namespace {

EngineConfig engine_for(std::uint64_t seed) {
  EngineConfig c;
  c.seed = seed;
  c.measure_compute = false;
  return c;
}

/// Builds per-machine key shards from values under a placement scheme.
std::vector<std::vector<Key>> make_key_shards(std::vector<Value> values, std::uint32_t k,
                                              PartitionScheme scheme, std::uint64_t seed) {
  Rng rng(seed);
  auto shards = make_scalar_shards(std::move(values), k, scheme, rng);
  // Selection works on raw (value, id) keys — i.e. distance from query 0.
  return score_scalar_shards(shards, 0);
}

// --- correctness grid ------------------------------------------------------------

class SelectGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint32_t, PartitionScheme>> {};

TEST_P(SelectGrid, MatchesSequentialSelection) {
  const auto [n, k, scheme] = GetParam();
  Rng data_rng(1000 + n * 31 + k);
  auto values = uniform_u64(n, data_rng, 0, n * 4);  // some duplicate values
  auto shards = make_key_shards(values, k, scheme, 55);
  for (std::uint64_t ell :
       {std::uint64_t{0}, std::uint64_t{1}, static_cast<std::uint64_t>(n / 3),
        static_cast<std::uint64_t>(n - 1), static_cast<std::uint64_t>(n),
        static_cast<std::uint64_t>(n + 5)}) {
    const auto result = run_selection(shards, ell, engine_for(ell + 1));
    const auto expected = expected_smallest(shards, ell);
    EXPECT_EQ(result.keys, expected)
        << "n=" << n << " k=" << k << " scheme=" << partition_scheme_name(scheme)
        << " ell=" << ell;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SelectGrid,
    ::testing::Combine(::testing::Values(1u, 2u, 16u, 100u, 1000u),
                       ::testing::Values(1u, 2u, 3u, 8u, 32u),
                       ::testing::ValuesIn(all_partition_schemes())),
    [](const auto& param_info) {
      // NOTE: no structured bindings here — commas inside [] are not
      // protected from the INSTANTIATE macro's argument splitting.
      std::string name = "n" + std::to_string(std::get<0>(param_info.param)) + "_k" +
                         std::to_string(std::get<1>(param_info.param)) + "_" +
                         partition_scheme_name(std::get<2>(param_info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// --- duplicates (tie-breaking by id) ------------------------------------------------

TEST(Select, HeavyDuplicatesExactCount) {
  Rng rng(2);
  auto values = duplicate_heavy_u64(500, 3, rng);  // only 3 distinct values
  auto shards = make_key_shards(values, 8, PartitionScheme::Random, 77);
  for (std::uint64_t ell : {1u, 100u, 250u, 499u}) {
    const auto result = run_selection(shards, ell, engine_for(ell));
    ASSERT_EQ(result.keys.size(), ell);
    EXPECT_EQ(result.keys, expected_smallest(shards, ell));
  }
}

// --- Theorem 2.2 bounds ----------------------------------------------------------------

TEST(Select, RoundsScaleLogarithmically) {
  // Theorem 2.2: O(log n) rounds w.h.p.  Each pivot iteration is <= 4
  // rounds in this implementation, and iterations concentrate below
  // c·log2(n) with c ~ 3.5 (expected ~3·log_{3/2} n / log2... empirically
  // small).  We assert a generous but finite constant and, importantly,
  // *growth*: doubling n adds O(1) iterations.
  constexpr std::uint32_t k = 8;
  std::vector<double> log_ns, iters;
  for (std::size_t n : {1u << 8, 1u << 10, 1u << 12, 1u << 14}) {
    Rng rng(3000 + n);
    auto values = uniform_u64(n, rng);
    auto shards = make_key_shards(values, k, PartitionScheme::RoundRobin, 66);
    double worst = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const auto result = run_selection(shards, n / 2, engine_for(seed));
      worst = std::max(worst, static_cast<double>(result.iterations));
    }
    log_ns.push_back(std::log2(static_cast<double>(n)));
    iters.push_back(worst);
    EXPECT_LE(worst, 6.0 * std::log2(static_cast<double>(n)) + 10.0) << "n=" << n;
  }
  // Slope of worst-iterations vs log2(n) should be a small constant.
  EXPECT_LT(linear_slope(log_ns, iters), 8.0);
}

TEST(Select, MessageComplexityPerIteration) {
  // O(k) messages per iteration: init (2(k-1)) + per iteration at most
  // 2 (pivot) + 2(k-1) (count) + final broadcast (k-1).
  constexpr std::uint32_t k = 16;
  constexpr std::size_t n = 4096;
  Rng rng(4);
  auto values = uniform_u64(n, rng);
  auto shards = make_key_shards(values, k, PartitionScheme::RoundRobin, 88);
  const auto result = run_selection(shards, n / 2, engine_for(9));
  const std::uint64_t budget =
      2 * (k - 1)                                        // init round trip
      + static_cast<std::uint64_t>(result.iterations) * (2 * (k - 1) + 2)  // per iteration
      + (k - 1);                                         // finished broadcast
  EXPECT_LE(result.report.traffic.messages_sent(), budget);
  EXPECT_GE(result.report.traffic.messages_sent(), static_cast<std::uint64_t>(k - 1));
}

TEST(Select, RoundsIndependentOfK) {
  // The iteration count depends on n, not k (Theorem 2.2 holds regardless
  // of k) — check that iterations do not blow up as k grows.
  constexpr std::size_t n = 1 << 12;
  Rng rng(5);
  auto values = uniform_u64(n, rng);
  SampleSet iters_small, iters_large;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto shards2 = make_key_shards(values, 2, PartitionScheme::RoundRobin, 11);
    auto shards64 = make_key_shards(values, 64, PartitionScheme::RoundRobin, 11);
    iters_small.add(run_selection(shards2, n / 2, engine_for(seed)).iterations);
    iters_large.add(run_selection(shards64, n / 2, engine_for(seed)).iterations);
  }
  // Means within a factor of two of each other (both ~c log n).
  EXPECT_LT(iters_large.mean(), 2.0 * iters_small.mean() + 8.0);
  EXPECT_LT(iters_small.mean(), 2.0 * iters_large.mean() + 8.0);
}

// --- edge cases ----------------------------------------------------------------------

TEST(Select, AllPointsOnOneMachine) {
  Rng rng(6);
  auto values = uniform_u64(256, rng);
  auto shards = make_key_shards(values, 8, PartitionScheme::FirstHeavy, 99);
  const auto result = run_selection(shards, 32, engine_for(1));
  EXPECT_EQ(result.keys, expected_smallest(shards, 32));
}

TEST(Select, SomeMachinesEmpty) {
  std::vector<std::vector<Key>> shards(5);
  shards[2] = {Key{5, 1}, Key{3, 2}};
  shards[4] = {Key{1, 3}};
  const auto result = run_selection(shards, 2, engine_for(2));
  ASSERT_EQ(result.keys.size(), 2u);
  EXPECT_EQ(result.keys[0], (Key{1, 3}));
  EXPECT_EQ(result.keys[1], (Key{3, 2}));
}

TEST(Select, AllMachinesEmpty) {
  std::vector<std::vector<Key>> shards(4);
  const auto result = run_selection(shards, 5, engine_for(3));
  EXPECT_TRUE(result.keys.empty());
}

TEST(Select, SingleMachineNoMessages) {
  std::vector<std::vector<Key>> shards(1);
  for (std::uint64_t i = 0; i < 100; ++i) shards[0].push_back(Key{i * 7 % 100, i + 1});
  const auto result = run_selection(shards, 10, engine_for(4));
  EXPECT_EQ(result.keys, expected_smallest(shards, 10));
  EXPECT_EQ(result.report.traffic.messages_sent(), 0u);
}

TEST(Select, NonZeroLeader) {
  Rng rng(7);
  auto values = uniform_u64(200, rng);
  auto shards = make_key_shards(values, 4, PartitionScheme::RoundRobin, 12);
  SelectConfig config;
  config.leader = 3;
  const auto result = run_selection(shards, 50, engine_for(5), config);
  EXPECT_EQ(result.keys, expected_smallest(shards, 50));
}

TEST(Select, DuplicateKeysRejected) {
  std::vector<std::vector<Key>> shards(2);
  shards[0] = {Key{1, 1}, Key{1, 1}};  // same (rank, id) twice: invalid input
  EXPECT_THROW((void)run_selection(shards, 1, engine_for(6)), InvariantError);
}

// --- determinism & bandwidth ------------------------------------------------------------

TEST(Select, DeterministicForSeed) {
  Rng rng(8);
  auto values = uniform_u64(512, rng);
  auto shards = make_key_shards(values, 8, PartitionScheme::Random, 13);
  const auto a = run_selection(shards, 100, engine_for(42));
  const auto b = run_selection(shards, 100, engine_for(42));
  EXPECT_EQ(a.keys, b.keys);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.report.rounds, b.report.rounds);
  EXPECT_EQ(a.report.traffic.messages_sent(), b.report.traffic.messages_sent());
}

TEST(Select, RunsUnderStrictBandwidth) {
  // Every Algorithm 1 message is O(1) words; with B = 512 bits per round
  // the whole protocol must satisfy the Strict policy (this certifies that
  // no step ever needs more than one message per link per round).
  Rng rng(9);
  auto values = uniform_u64(512, rng);
  auto shards = make_key_shards(values, 8, PartitionScheme::RoundRobin, 14);
  auto config = engine_for(7);
  config.bandwidth = BandwidthPolicy::Strict;
  config.bits_per_round = 512;
  const auto result = run_selection(shards, 128, config);
  EXPECT_EQ(result.keys, expected_smallest(shards, 128));
  EXPECT_LE(result.report.traffic.max_message_bits(), 512u);
}

TEST(Select, ChunkedBandwidthStillCorrect) {
  Rng rng(10);
  auto values = uniform_u64(256, rng);
  auto shards = make_key_shards(values, 4, PartitionScheme::RoundRobin, 15);
  auto config = engine_for(8);
  config.bandwidth = BandwidthPolicy::Chunked;
  config.bits_per_round = 64;  // every control message now takes ~5 rounds
  const auto result = run_selection(shards, 64, config);
  EXPECT_EQ(result.keys, expected_smallest(shards, 64));
}

TEST(Select, SelectedKeysComeFromOwningMachines) {
  // Each machine only ever reports keys it actually holds.
  Rng rng(11);
  auto values = uniform_u64(300, rng);
  auto shards = make_key_shards(values, 6, PartitionScheme::Random, 16);
  const auto expected = expected_smallest(shards, 75);
  const auto result = run_selection(shards, 75, engine_for(9));
  EXPECT_EQ(result.keys, expected);
  // ... and collectively exactly once: merged size equals ell exactly.
  EXPECT_EQ(result.keys.size(), 75u);
}

}  // namespace
}  // namespace dknn

// Unit + property tests for src/rng: splitmix64, xoshiro256**, Rng facade,
// sampling without replacement.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "rng/rng.hpp"
#include "rng/sampling.hpp"
#include "rng/splitmix64.hpp"
#include "support/panic.hpp"

namespace dknn {
namespace {

// --- splitmix64 ----------------------------------------------------------------

TEST(SplitMix64, ReferenceVector) {
  // Known-answer outputs of the reference SplitMix64 with seed 1234567.
  std::uint64_t state = 1234567;
  const std::array<std::uint64_t, 5> expected = {
      6457827717110365317ULL, 3203168211198807973ULL, 9817491932198370423ULL,
      4593380528125082431ULL, 16408922859458223821ULL};
  for (std::uint64_t want : expected) EXPECT_EQ(splitmix64_next(state), want);
}

TEST(SplitMix64, MixIsDeterministicAndSpreads) {
  EXPECT_EQ(splitmix64_mix(0), splitmix64_mix(0));
  // Adjacent inputs yield very different outputs (avalanche smoke test).
  const std::uint64_t a = splitmix64_mix(1);
  const std::uint64_t b = splitmix64_mix(2);
  EXPECT_NE(a, b);
  EXPECT_GT(std::popcount(a ^ b), 10);
}

// --- xoshiro -------------------------------------------------------------------

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256, JumpChangesSequence) {
  Xoshiro256 a(7), b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LE(equal, 1);
}

// --- Rng facade ------------------------------------------------------------------

TEST(Rng, BelowStaysInBounds) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowRejectsZero) {
  Rng rng(9);
  EXPECT_THROW((void)rng.below(0), InvariantError);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(2024);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBound> histogram{};
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.below(kBound)];
  // Each bucket expects 10000; allow ±5% (way beyond 6 sigma).
  for (int count : histogram) {
    EXPECT_GT(count, 9500);
    EXPECT_LT(count, 10500);
  }
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.between(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= (v == 10);
    saw_hi |= (v == 13);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BetweenSinglePoint) {
  Rng rng(5);
  EXPECT_EQ(rng.between(7, 7), 7u);
}

TEST(Rng, BetweenFullRangeDoesNotOverflow) {
  Rng rng(5);
  (void)rng.between(0, ~0ULL);  // must not hang or throw
}

TEST(Rng, Uniform01Range) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01Mean) {
  Rng rng(7);
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(8);
  double sum = 0, sumsq = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.gaussian(3.0, 2.0);
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / kDraws;
  const double var = sumsq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(12);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  Rng root(99);
  Rng a1 = root.split(1);
  Rng a2 = root.split(1);
  Rng b = root.split(2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a1.next_u64(), a2.next_u64());
  // different tags diverge
  Rng a3 = root.split(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a3.next_u64() == b.next_u64());
  EXPECT_LE(equal, 1);
}

TEST(Rng, SplitStreamKnownAnswer) {
  // Rng(seed).split(i) is the stream derivation for BOTH the engine's
  // per-machine RNGs and the thread pool's per-worker victim-selection
  // RNGs (sim/thread_pool.cpp), so it is part of the parallel-run
  // reproducibility contract.  Pin actual output words: a platform or
  // refactor that shifts these streams silently changes every "parallel
  // run equals serial run" guarantee downstream.
  const Rng root(2026);
  const std::uint64_t expected[3][3] = {
      {12851956997773424818ULL, 3107675999915196463ULL, 12758612543946084076ULL},
      {3139358567881785589ULL, 10787654849195158847ULL, 11044682715369037546ULL},
      {16056279658431172356ULL, 12514546682306110315ULL, 10431118161487611348ULL},
  };
  for (std::uint64_t worker = 0; worker < 3; ++worker) {
    Rng stream = root.split(worker);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(stream.next_u64(), expected[worker][i])
          << "worker " << worker << " draw " << i;
    }
  }
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng r1(123), r2(123);
  (void)r1.split(7);
  (void)r1.split(8);
  EXPECT_EQ(r1.next_u64(), r2.next_u64());
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(13);
  const std::vector<std::uint64_t> weights = {1, 0, 3, 6};
  std::array<int, 4> histogram{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.weighted_index(weights)];
  EXPECT_EQ(histogram[1], 0);  // zero weight never chosen
  EXPECT_NEAR(histogram[0] / double(kDraws), 0.1, 0.01);
  EXPECT_NEAR(histogram[2] / double(kDraws), 0.3, 0.01);
  EXPECT_NEAR(histogram[3] / double(kDraws), 0.6, 0.01);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(14);
  const std::vector<std::uint64_t> weights = {0, 0};
  EXPECT_THROW((void)rng.weighted_index(weights), InvariantError);
}

TEST(Rng, WeightedIndexSingleBucket) {
  Rng rng(15);
  const std::vector<std::uint64_t> weights = {5};
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.weighted_index(weights), 0u);
}

// --- sampling ----------------------------------------------------------------------

TEST(Sampling, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  shuffle(std::span<int>(v), rng);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Sampling, WithoutReplacementDistinct) {
  Rng rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    auto idx = sample_indices_without_replacement(100, 30, rng);
    EXPECT_EQ(idx.size(), 30u);
    std::set<std::size_t> unique(idx.begin(), idx.end());
    EXPECT_EQ(unique.size(), 30u);
    for (std::size_t i : idx) EXPECT_LT(i, 100u);
  }
}

TEST(Sampling, WholePopulationIsPermutation) {
  Rng rng(23);
  auto idx = sample_indices_without_replacement(50, 50, rng);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(Sampling, CountZero) {
  Rng rng(24);
  EXPECT_TRUE(sample_indices_without_replacement(10, 0, rng).empty());
}

TEST(Sampling, OverdrawThrows) {
  Rng rng(25);
  EXPECT_THROW((void)sample_indices_without_replacement(5, 6, rng), InvariantError);
}

TEST(Sampling, MarginalsAreUniform) {
  // Each element of [0, 20) should appear in a 5-sample with prob 1/4.
  Rng rng(26);
  std::array<int, 20> hits{};
  constexpr int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) {
    for (std::size_t i : sample_indices_without_replacement(20, 5, rng)) ++hits[i];
  }
  for (int h : hits) EXPECT_NEAR(h / double(kTrials), 0.25, 0.02);
}

TEST(Sampling, SampleValuesWithoutReplacement) {
  Rng rng(27);
  const std::vector<int> pop = {10, 20, 30, 40, 50};
  auto got = sample_without_replacement(std::span<const int>(pop), 3, rng);
  EXPECT_EQ(got.size(), 3u);
  for (int v : got) EXPECT_TRUE(std::find(pop.begin(), pop.end(), v) != pop.end());
  std::set<int> unique(got.begin(), got.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(Sampling, ReservoirExactWhenSmall) {
  Rng rng(28);
  Reservoir<int> res(10, rng);
  for (int i = 0; i < 7; ++i) res.offer(i);
  EXPECT_EQ(res.items().size(), 7u);
  EXPECT_EQ(res.seen(), 7u);
}

TEST(Sampling, ZipfMatchesAnalyticMass) {
  // s = 1 over 4 ranks: weights 1, 1/2, 1/3, 1/4 → normalizer 25/12.
  Rng rng(30);
  ZipfSampler zipf(4, 1.0);
  std::array<int, 4> hits{};
  constexpr int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) ++hits[zipf.sample(rng)];
  const double z = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(hits[r] / double(kTrials), (1.0 / double(r + 1)) / z, 0.01) << "rank " << r;
  }
}

TEST(Sampling, ZipfZeroExponentIsUniform) {
  Rng rng(31);
  ZipfSampler zipf(8, 0.0);
  std::array<int, 8> hits{};
  constexpr int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) ++hits[zipf.sample(rng)];
  for (int h : hits) EXPECT_NEAR(h / double(kTrials), 0.125, 0.01);
}

TEST(Sampling, ZipfSingleRankAlwaysZero) {
  Rng rng(32);
  ZipfSampler zipf(1, 1.5);
  for (int t = 0; t < 100; ++t) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(Sampling, ZipfDeterministicGivenSeed) {
  ZipfSampler zipf(100, 1.2);
  Rng a(33), b(33);
  for (int t = 0; t < 256; ++t) EXPECT_EQ(zipf.sample(a), zipf.sample(b));
}

TEST(Sampling, ReservoirUniformMarginals) {
  Rng rng(29);
  std::array<int, 20> hits{};
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    Reservoir<int> res(5, rng);
    for (int i = 0; i < 20; ++i) res.offer(i);
    for (int v : res.items()) ++hits[static_cast<std::size_t>(v)];
  }
  for (int h : hits) EXPECT_NEAR(h / double(kTrials), 0.25, 0.025);
}

}  // namespace
}  // namespace dknn

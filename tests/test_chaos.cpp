// Chaos suite for the fault-tolerant KnnService: directed tests for the
// degradation/recovery state machine (coverage, caches across liveness
// flips, deletes never resurrecting, typed errors) and a seeded fuzz that
// kills up to k−1 machines mid-churn, checks every degraded answer
// byte-exact against an oracle over the surviving shards, then recovers and
// checks the service byte-identical to a never-failed reference.  Small
// workloads on purpose: the suite runs under TSan in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/knn_service.hpp"
#include "data/metric.hpp"
#include "data/validate.hpp"
#include "fault/health.hpp"
#include "parity_support.hpp"
#include "rng/rng.hpp"
#include "seq/select.hpp"
#include "serve/front_end.hpp"
#include "serve/segment_store.hpp"

namespace dknn {
namespace {

using testing_support::expect_same_keys;

constexpr MetricKind kChaosKind = MetricKind::SquaredEuclidean;

PointD random_point(std::size_t dim, Rng& rng) {
  std::vector<double> coords(dim);
  for (auto& c : coords) c = rng.uniform01() * 20.0 - 10.0;
  return PointD(std::move(coords));
}

/// Ground truth over an explicit membership set: brute-force keys through
/// the metric functors, capped to ℓ — the same oracle shape every parity
/// suite anchors on.
std::vector<Key> member_oracle(const std::unordered_map<PointId, PointD>& shadow,
                               const std::vector<PointId>& members, const PointD& query,
                               std::uint64_t ell) {
  std::vector<Key> pool;
  pool.reserve(members.size());
  for (const PointId id : members) {
    pool.push_back(Key{encode_distance(metric_distance(kChaosKind, shadow.at(id), query)), id});
  }
  return top_ell_smallest(std::span<const Key>(pool), ell);
}

/// A live service with a known dimension and no initial dataset; points are
/// inserted with caller-chosen ids so tests can keep an exact shadow copy.
KnnService make_live_service(std::uint32_t k, std::size_t dim, std::uint64_t ell,
                             bool fault_tolerant, std::size_t cache = 0) {
  KnnServiceBuilder builder;
  builder.machines(k).ell(ell).metric(kChaosKind).seed(5).dim(dim).live().cache_capacity(cache);
  if (fault_tolerant) builder.fault_tolerant();
  return builder.build();
}

// --- directed: coverage + degraded answers -----------------------------------

TEST(ChaosDirected, DegradedAnswerIsExactOverSurvivingShards) {
  const std::uint32_t k = 4;
  const std::uint64_t ell = 5;
  Rng rng(21);
  KnnService service = make_live_service(k, 2, ell, /*fault_tolerant=*/true);
  std::unordered_map<PointId, PointD> shadow;
  for (PointId id = 1; id <= 40; ++id) {
    const PointD p = random_point(2, rng);
    shadow.emplace(id, p);
    (void)service.insert(p, id);
  }

  service.kill_machine(1);
  std::vector<PointId> survivors;
  for (std::size_t m = 0; m < k; ++m) {
    if (m == 1) continue;
    const auto ids = service.live_ids_on(m);
    survivors.insert(survivors.end(), ids.begin(), ids.end());
  }

  for (int i = 0; i < 4; ++i) {
    const PointD query = random_point(2, rng);
    const QueryResult result = service.query(query);
    EXPECT_EQ(result.coverage.total, k);
    ASSERT_EQ(result.coverage.missing, (std::vector<std::uint32_t>{1}));
    expect_same_keys(member_oracle(shadow, survivors, query, ell), result.keys,
                     "degraded vs surviving-shard oracle");
  }
}

TEST(ChaosDirected, UnresponsiveMachineDetectedByQueryDeadline) {
  const std::uint32_t k = 3;
  Rng rng(22);
  KnnService service = make_live_service(k, 2, 4, /*fault_tolerant=*/true);
  for (PointId id = 1; id <= 21; ++id) (void)service.insert(random_point(2, rng), id);

  service.set_failure_mode(2, FailureMode{FailureModeKind::Unresponsive, 0});
  EXPECT_EQ(service.health().state(2), MachineState::Alive);  // not yet probed

  // The very first query's deadline/retry probes detect the failure: the
  // answer already reports the machine missing — no wrong-but-complete
  // answer is ever produced.
  const QueryResult degraded = service.query(random_point(2, rng));
  ASSERT_EQ(degraded.coverage.missing, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(service.health().state(2), MachineState::Dead);
  EXPECT_EQ(service.health().stats().deaths_detected, 1u);
}

TEST(ChaosDirected, AllMachinesDeadDegradesToEmptyNotHang) {
  Rng rng(23);
  KnnService service = make_live_service(2, 1, 3, /*fault_tolerant=*/true);
  for (PointId id = 1; id <= 8; ++id) (void)service.insert(random_point(1, rng), id);
  service.kill_machine(0);
  service.kill_machine(1);

  const QueryResult result = service.query(random_point(1, rng));
  EXPECT_TRUE(result.keys.empty());
  EXPECT_EQ(result.coverage.answered(), 0u);
  EXPECT_DOUBLE_EQ(result.coverage.fraction(), 0.0);

  // Inserting with no live machine is a typed failure, not a hang.
  EXPECT_THROW((void)service.insert(random_point(1, rng), 99), NoLiveMachinesError);
  // Recovery needs at least one survivor.
  EXPECT_THROW((void)service.recover_machine(0), NoLiveMachinesError);
}

// --- directed: caches never cross liveness flips (satellite 6) ---------------

TEST(ChaosDirected, ServiceCacheNeverCrossesLivenessFlips) {
  const std::uint64_t ell = 4;
  Rng rng(24);
  KnnService service = make_live_service(3, 2, ell, /*fault_tolerant=*/true, /*cache=*/64);
  std::unordered_map<PointId, PointD> shadow;
  for (PointId id = 1; id <= 30; ++id) {
    const PointD p = random_point(2, rng);
    shadow.emplace(id, p);
    (void)service.insert(p, id);
  }
  const PointD query = random_point(2, rng);

  const QueryResult full = service.query(query);
  EXPECT_FALSE(full.cache_hit);
  const QueryResult full_hit = service.query(query);
  EXPECT_TRUE(full_hit.cache_hit);
  expect_same_keys(full.keys, full_hit.keys, "healthy hit");

  // Down-flip: the degraded answer must be recomputed, not served from the
  // healthy-era cache.
  service.kill_machine(0);
  const QueryResult degraded = service.query(query);
  EXPECT_FALSE(degraded.cache_hit);
  ASSERT_EQ(degraded.coverage.missing, (std::vector<std::uint32_t>{0}));
  std::vector<PointId> survivors;
  for (const std::size_t m : {1, 2}) {
    const auto ids = service.live_ids_on(m);
    survivors.insert(survivors.end(), ids.begin(), ids.end());
  }
  expect_same_keys(member_oracle(shadow, survivors, query, ell), degraded.keys, "degraded");

  // Same liveness state: caching the degraded answer is sound.
  const QueryResult degraded_hit = service.query(query);
  EXPECT_TRUE(degraded_hit.cache_hit);
  expect_same_keys(degraded.keys, degraded_hit.keys, "degraded hit");
  ASSERT_EQ(degraded_hit.coverage.missing, (std::vector<std::uint32_t>{0}));

  // Up-flip: the degraded answer must never be served after recovery.
  service.revive_machine(0);
  const QueryResult recovered = service.query(query);
  EXPECT_FALSE(recovered.cache_hit);
  expect_same_keys(full.keys, recovered.keys, "recovered == original");
  EXPECT_TRUE(recovered.coverage.complete());
}

TEST(ChaosDirected, FrontEndCacheNeverCrossesLivenessFlips) {
  Rng rng(25);
  ServeConfig serve;
  SegmentStore store(2, serve);
  for (PointId id = 1; id <= 25; ++id) store.insert(random_point(2, rng), id);
  MachineHealth health(1);

  FrontEndConfig config;
  config.ell = 4;
  config.kind = kChaosKind;
  config.max_delay = std::chrono::microseconds{0};
  config.cache_capacity = 64;
  config.health = &health;
  config.machine = 0;
  QueryFrontEnd front(store, config);

  const PointD query = random_point(2, rng);
  const ServeQueryResult full = front.query(query);
  EXPECT_FALSE(full.cache_hit);
  EXPECT_TRUE(full.coverage.complete());
  ASSERT_FALSE(full.keys.empty());
  EXPECT_TRUE(front.query(query).cache_hit);

  health.kill(0);
  const ServeQueryResult degraded = front.query(query);
  EXPECT_FALSE(degraded.cache_hit);
  EXPECT_TRUE(degraded.keys.empty());
  ASSERT_EQ(degraded.coverage.missing, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(front.stats().degraded_batches, 1u);

  health.revive(0);
  const ServeQueryResult recovered = front.query(query);
  EXPECT_FALSE(recovered.cache_hit);  // generation moved: healthy-era entry is stale
  expect_same_keys(full.keys, recovered.keys, "front end recovered");
  EXPECT_TRUE(front.query(query).cache_hit);
}

TEST(ChaosDirected, DegradedAnswerCarriesRealEpochNotZeroSentinel) {
  // Regression: the degraded front-end path used to stamp epoch = 0, which
  // collides with a legitimate fresh-store answer (epoch 0 is a real epoch).
  // The contract now: epoch always means "store state this answer is exact
  // for" and *coverage* carries the degradation signal.
  Rng rng(27);
  ServeConfig serve;
  SegmentStore store(2, serve);
  for (PointId id = 1; id <= 12; ++id) store.insert(random_point(2, rng), id);
  const std::uint64_t store_epoch = store.epoch();
  ASSERT_GT(store_epoch, 0u);  // inserts advanced it — 0 would be ambiguous
  MachineHealth health(1);

  FrontEndConfig config;
  config.ell = 3;
  config.kind = kChaosKind;
  config.max_delay = std::chrono::microseconds{0};
  config.health = &health;
  config.machine = 0;
  QueryFrontEnd front(store, config);

  health.kill(0);
  const ServeQueryResult degraded = front.query(random_point(2, rng));
  EXPECT_TRUE(degraded.keys.empty());
  EXPECT_EQ(degraded.epoch, store_epoch);  // not the old 0 sentinel
  ASSERT_EQ(degraded.coverage.missing, (std::vector<std::uint32_t>{0}));

  // Contrast case: a genuinely fresh, empty store also answers with empty
  // keys — at its own low epoch, with *full* coverage.  The two situations
  // stay distinguishable by coverage alone, never by an epoch sentinel.
  SegmentStore fresh(2, serve);
  MachineHealth fresh_health(1);
  FrontEndConfig fresh_config = config;
  fresh_config.health = &fresh_health;
  QueryFrontEnd fresh_front(fresh, fresh_config);
  const ServeQueryResult empty_store = fresh_front.query(random_point(2, rng));
  EXPECT_TRUE(empty_store.keys.empty());
  EXPECT_EQ(empty_store.epoch, fresh.epoch());
  EXPECT_TRUE(empty_store.coverage.complete());
}

// --- directed: recovery invariants -------------------------------------------

TEST(ChaosDirected, DeletesNeverResurrectThroughRecovery) {
  Rng rng(26);
  KnnService service = make_live_service(3, 2, 4, /*fault_tolerant=*/true);
  for (PointId id = 1; id <= 18; ++id) (void)service.insert(random_point(2, rng), id);

  const std::vector<PointId> on_zero = service.live_ids_on(0);
  ASSERT_FALSE(on_zero.empty());
  const PointId victim_id = on_zero.front();

  service.kill_machine(0);
  // Erase while the owner is down: membership changes now.
  ASSERT_TRUE(service.erase(victim_id).has_value());
  EXPECT_FALSE(service.contains(victim_id));

  // Recovery re-homes machine 0's points — the erased id must not ride
  // along.
  const RecoveryReport report = service.recover_machine(0);
  EXPECT_EQ(report.machine, 0u);
  EXPECT_EQ(report.points_recovered, on_zero.size() - 1);
  EXPECT_FALSE(service.contains(victim_id));
  const auto all = service.live_ids();
  EXPECT_EQ(std::find(all.begin(), all.end(), victim_id), all.end());
  EXPECT_EQ(service.health().state(0), MachineState::Retired);
}

TEST(ChaosDirected, EraseOnDeadSurvivesRecoveryAtTheQueryLevel) {
  // The mirror-path ordering this pins: erase() applies to the replica
  // mirror *immediately* even when the owner is dead (the store-side erase
  // is deferred to pending_erases), and recover_machine() consumes the
  // mirror and clears the machine's pending_erases on a different path
  // than revive_machine() (which applies them to the store).  Those two
  // paths must agree that an id erased while its owner was down stays
  // dead: recovery re-homes the mirror's members, the pending entry is
  // dropped (the Retired machine can never revive and replay it), and a
  // query aimed exactly at the erased point — the worst case — answers
  // byte-exactly from the survivors without it.
  Rng rng(29);
  KnnService service = make_live_service(3, 2, 6, /*fault_tolerant=*/true);
  std::unordered_map<PointId, PointD> shadow;
  for (PointId id = 1; id <= 18; ++id) {
    const PointD p = random_point(2, rng);
    shadow.emplace(id, p);
    (void)service.insert(p, id);
  }
  const std::vector<PointId> on_zero = service.live_ids_on(0);
  ASSERT_FALSE(on_zero.empty());
  const PointId victim_id = on_zero.front();

  service.kill_machine(0);
  ASSERT_TRUE(service.erase(victim_id).has_value());
  const RecoveryReport report = service.recover_machine(0);
  EXPECT_EQ(report.points_recovered, on_zero.size() - 1);

  // Query at the erased point's own location: full coverage (Retired is
  // excluded silently — its data lives on survivors), and the answer is
  // byte-equal to the oracle over everyone *minus* the victim.
  const PointD query = shadow.at(victim_id);
  shadow.erase(victim_id);
  const QueryResult result = service.query(query);
  EXPECT_TRUE(result.coverage.complete());
  expect_same_keys(member_oracle(shadow, service.live_ids(), query, 6), result.keys,
                   "post-recovery");

  // Re-minting the erased id afterwards is a fresh point, not a replayed
  // tombstone: it must serve at its *new* location.
  const PointD fresh = random_point(2, rng);
  (void)service.insert(fresh, victim_id);
  shadow.emplace(victim_id, fresh);
  const QueryResult after = service.query(fresh);
  EXPECT_TRUE(after.coverage.complete());
  expect_same_keys(member_oracle(shadow, service.live_ids(), fresh, 6), after.keys,
                   "post-remint");
}

TEST(ChaosDirected, DeletesNeverResurrectThroughRevive) {
  Rng rng(27);
  KnnService service = make_live_service(3, 2, 6, /*fault_tolerant=*/true);
  std::unordered_map<PointId, PointD> shadow;
  for (PointId id = 1; id <= 18; ++id) {
    const PointD p = random_point(2, rng);
    shadow.emplace(id, p);
    (void)service.insert(p, id);
  }
  const std::vector<PointId> on_one = service.live_ids_on(1);
  ASSERT_FALSE(on_one.empty());
  const PointId victim_id = on_one.front();

  service.kill_machine(1);
  ASSERT_TRUE(service.erase(victim_id).has_value());
  service.revive_machine(1);  // applies the pending erase before rejoining
  EXPECT_FALSE(service.contains(victim_id));

  // The revived machine's shard serves again — and never the erased point.
  std::vector<PointId> members = service.live_ids();
  const PointD query = shadow.at(victim_id);  // its own location: worst case
  const QueryResult result = service.query(query);
  EXPECT_TRUE(result.coverage.complete());
  shadow.erase(victim_id);
  expect_same_keys(member_oracle(shadow, members, query, 6), result.keys, "post-revive");
}

TEST(ChaosDirected, RecoveryAndFaultSurfaceTypedErrors) {
  Rng rng(28);
  // Not fault-tolerant: the whole fault surface is a typed state error.
  KnnService plain = make_live_service(2, 1, 2, /*fault_tolerant=*/false);
  EXPECT_THROW(plain.kill_machine(0), ServiceStateError);
  EXPECT_THROW((void)plain.health(), ServiceStateError);
  EXPECT_THROW((void)plain.recover_all(), ServiceStateError);
  EXPECT_FALSE(plain.fault_tolerant());

  // Fault-tolerant: recovery of a machine that is not dead is refused.
  KnnService service = make_live_service(2, 1, 2, /*fault_tolerant=*/true);
  EXPECT_TRUE(service.fault_tolerant());
  EXPECT_THROW((void)service.recover_machine(0), ServiceStateError);
  service.kill_machine(0);
  (void)service.recover_machine(0);
  // Retired is terminal: not recoverable again.
  EXPECT_THROW((void)service.recover_machine(0), ServiceStateError);
}

// --- the chaos fuzz ----------------------------------------------------------

struct ChaosWorld {
  KnnService victim;     ///< fault-tolerant, gets killed and recovered
  KnnService reference;  ///< identical twin that never fails
  std::unordered_map<PointId, PointD> shadow;
  std::vector<PointId> live;  ///< ids currently member, insertion order
  PointId next_id = 1;
};

void chaos_insert(ChaosWorld& world, std::size_t dim, Rng& rng) {
  const PointId id = world.next_id++;
  const PointD p = random_point(dim, rng);
  (void)world.victim.insert(p, id);
  (void)world.reference.insert(p, id);
  world.shadow.emplace(id, p);
  world.live.push_back(id);
}

void chaos_erase(ChaosWorld& world, Rng& rng) {
  if (world.live.empty()) return;
  const std::size_t pick = static_cast<std::size_t>(rng.uniform01() * world.live.size()) %
                           world.live.size();
  const PointId id = world.live[pick];
  ASSERT_TRUE(world.victim.erase(id).has_value());
  ASSERT_TRUE(world.reference.erase(id).has_value());
  world.shadow.erase(id);
  world.live.erase(world.live.begin() + static_cast<std::ptrdiff_t>(pick));
}

void chaos_churn(ChaosWorld& world, std::size_t ops, std::size_t dim, Rng& rng) {
  for (std::size_t i = 0; i < ops; ++i) {
    if (rng.uniform01() < 0.65 || world.live.size() < 4) {
      chaos_insert(world, dim, rng);
    } else {
      chaos_erase(world, rng);
    }
  }
}

/// Queries both services, asserting the victim byte-exact: against the
/// reference when expected complete, against the surviving-shard oracle
/// when machines are down.
void chaos_check_queries(ChaosWorld& world, std::size_t queries, std::size_t dim,
                         std::uint64_t ell, const std::vector<std::uint32_t>& expect_missing,
                         std::uint32_t expect_total, Rng& rng, const char* label) {
  // Derive survivors from the *expected* dead set, not the health registry:
  // Unresponsive machines are still marked Alive until the first query's
  // deadline probes detect them.
  std::vector<PointId> survivors;
  if (!expect_missing.empty()) {
    for (std::size_t m = 0; m < world.victim.machines(); ++m) {
      if (std::find(expect_missing.begin(), expect_missing.end(),
                    static_cast<std::uint32_t>(m)) != expect_missing.end()) {
        continue;
      }
      const auto ids = world.victim.live_ids_on(m);
      survivors.insert(survivors.end(), ids.begin(), ids.end());
    }
  }
  for (std::size_t q = 0; q < queries; ++q) {
    const PointD query = random_point(dim, rng);
    const QueryResult got = world.victim.query(query);
    EXPECT_EQ(got.coverage.total, expect_total) << label;
    ASSERT_EQ(got.coverage.missing, expect_missing) << label;
    if (expect_missing.empty()) {
      const QueryResult want = world.reference.query(query);
      expect_same_keys(want.keys, got.keys, std::string(label) + " vs reference");
    } else {
      expect_same_keys(member_oracle(world.shadow, survivors, query, ell), got.keys,
                       std::string(label) + " vs surviving oracle");
    }
  }
}

TEST(ChaosFuzz, KillChurnRecoverStaysByteExact) {
  constexpr int kTrials = 160;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(4000 + static_cast<std::uint64_t>(trial));
    const std::uint32_t k = 2 + static_cast<std::uint32_t>(trial % 4);  // 2..5
    const std::size_t dim = 1 + static_cast<std::size_t>(trial % 3);
    const std::uint64_t ell = 1 + static_cast<std::uint64_t>(trial % 5);

    ChaosWorld world{make_live_service(k, dim, ell, true),
                     make_live_service(k, dim, ell, false),
                     {},
                     {},
                     1};
    chaos_churn(world, 20 + static_cast<std::size_t>(trial % 10), dim, rng);
    chaos_check_queries(world, 2, dim, ell, {}, k, rng, "healthy");

    // Kill 1..k−1 machines mid-churn, alternating explicit kills with
    // deadline-detected unresponsiveness.
    const std::uint32_t kills = 1 + static_cast<std::uint32_t>(trial) % (k - 1 == 0 ? 1 : k - 1);
    std::vector<std::uint32_t> dead;
    for (std::uint32_t j = 0; j < kills && j < k - 1; ++j) {
      const auto machine = static_cast<std::uint32_t>((trial + 7 * j) % k);
      if (std::find(dead.begin(), dead.end(), machine) != dead.end()) continue;
      if ((trial + static_cast<int>(j)) % 2 == 0) {
        world.victim.kill_machine(machine);
      } else {
        world.victim.set_failure_mode(machine,
                                      FailureMode{FailureModeKind::Unresponsive, 0});
      }
      dead.push_back(machine);
    }
    std::sort(dead.begin(), dead.end());
    if (dead.size() == k) dead.pop_back();  // paranoia; never all machines

    // Churn continues while degraded: inserts route to survivors, erases of
    // points on dead machines defer to the mirror + pending queue.
    chaos_churn(world, 10, dim, rng);

    // Every degraded answer reports exactly the dead set and is byte-exact
    // over the shards that answered.  (The first query also performs the
    // deadline detection for the Unresponsive machines.)
    chaos_check_queries(world, 3, dim, ell, dead, k, rng, "degraded");

    // Recover: survivors elect a coordinator, dead shards re-home.  The
    // service must be byte-identical to the never-failed twin again.
    const auto reports = world.victim.recover_all();
    EXPECT_EQ(reports.size(), dead.size());
    for (const auto& report : reports) {
      EXPECT_NE(std::find(dead.begin(), dead.end(),
                          static_cast<std::uint32_t>(report.machine)),
                dead.end());
    }
    const auto expect_total = static_cast<std::uint32_t>(k - dead.size());
    chaos_check_queries(world, 3, dim, ell, {}, expect_total, rng, "recovered");
    EXPECT_EQ(world.victim.total_points(), world.reference.total_points());

    auto victim_ids = world.victim.live_ids();
    auto reference_ids = world.reference.live_ids();
    std::sort(victim_ids.begin(), victim_ids.end());
    std::sort(reference_ids.begin(), reference_ids.end());
    EXPECT_EQ(victim_ids, reference_ids);
  }
}

TEST(ChaosFuzz, KillChurnReviveAppliesPendingErases) {
  constexpr int kTrials = 60;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(9000 + static_cast<std::uint64_t>(trial));
    const std::uint32_t k = 2 + static_cast<std::uint32_t>(trial % 3);  // 2..4
    const std::size_t dim = 1 + static_cast<std::size_t>(trial % 2);
    const std::uint64_t ell = 2 + static_cast<std::uint64_t>(trial % 4);

    ChaosWorld world{make_live_service(k, dim, ell, true),
                     make_live_service(k, dim, ell, false),
                     {},
                     {},
                     1};
    chaos_churn(world, 24, dim, rng);

    const auto machine = static_cast<std::uint32_t>(trial) % k;
    world.victim.kill_machine(machine);
    // Bias churn toward erases so pending deletes actually accumulate on
    // the dead machine.
    for (int i = 0; i < 8; ++i) chaos_erase(world, rng);
    chaos_churn(world, 6, dim, rng);

    world.victim.revive_machine(machine);
    chaos_check_queries(world, 3, dim, ell, {}, k, rng, "revived");
    EXPECT_EQ(world.victim.total_points(), world.reference.total_points());
    auto victim_ids = world.victim.live_ids();
    auto reference_ids = world.reference.live_ids();
    std::sort(victim_ids.begin(), victim_ids.end());
    std::sort(reference_ids.begin(), reference_ids.end());
    EXPECT_EQ(victim_ids, reference_ids);
  }
}

}  // namespace
}  // namespace dknn

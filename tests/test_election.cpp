// Tests for src/election: min-ID and sublinear leader election across
// world sizes — agreement, message bounds, round bounds, determinism.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "election/min_id.hpp"
#include "election/sublinear.hpp"
#include "sim/engine.hpp"

namespace dknn {
namespace {

EngineConfig config_for(std::uint32_t k, std::uint64_t seed) {
  EngineConfig c;
  c.world_size = k;
  c.seed = seed;
  c.measure_compute = false;
  return c;
}

Task<void> min_id_program(Ctx& ctx, std::vector<ElectionOutcome>* outcomes) {
  (*outcomes)[ctx.id()] = co_await elect_min_id(ctx);
}

Task<void> sublinear_program(Ctx& ctx, std::vector<ElectionOutcome>* outcomes) {
  (*outcomes)[ctx.id()] = co_await elect_sublinear(ctx);
}

class ElectionSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ElectionSweep, MinIdElectsMachineZero) {
  const std::uint32_t k = GetParam();
  std::vector<ElectionOutcome> outcomes(k);
  Engine engine(config_for(k, 1));
  const RunReport report =
      engine.run([&outcomes](Ctx& ctx) { return min_id_program(ctx, &outcomes); });
  for (const auto& outcome : outcomes) EXPECT_EQ(outcome.leader, 0u);
  // one round of all-to-all + the final resume
  EXPECT_LE(report.rounds, 3u);
  EXPECT_EQ(report.traffic.messages_sent(), static_cast<std::uint64_t>(k) * (k - 1));
}

TEST_P(ElectionSweep, SublinearAgreesOnOneLeader) {
  const std::uint32_t k = GetParam();
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 17ULL, 99ULL}) {
    std::vector<ElectionOutcome> outcomes(k);
    Engine engine(config_for(k, seed));
    (void)engine.run([&outcomes](Ctx& ctx) { return sublinear_program(ctx, &outcomes); });
    std::set<MachineId> leaders;
    for (const auto& outcome : outcomes) leaders.insert(outcome.leader);
    ASSERT_EQ(leaders.size(), 1u) << "k=" << k << " seed=" << seed;
    const MachineId leader = *leaders.begin();
    EXPECT_LT(leader, k);
    // The leader must have been a candidate in the winning attempt, and it
    // must be the *minimum* candidate (every candidate with a smaller id
    // would have claimed too and won the min-resolution).
    EXPECT_TRUE(outcomes[leader].was_candidate);
    for (MachineId m = 0; m < k; ++m) {
      if (outcomes[m].was_candidate) {
        EXPECT_GE(m, leader);
      }
    }
    // All machines agree on the attempt count.
    for (const auto& outcome : outcomes) EXPECT_EQ(outcome.attempts, outcomes[0].attempts);
  }
}

TEST_P(ElectionSweep, SublinearMessageBound) {
  const std::uint32_t k = GetParam();
  if (k < 2) GTEST_SKIP();
  // Per attempt: candidates × referees × 2 (contact + reply) + claimants ×
  // (k−1) announcements.  W.h.p. one attempt suffices and candidates are
  // O(log k); we budget generously: 8 · (2·(2 ln k + 1) + 1) · √(k ln k) +
  // 4·k per attempt used.
  std::vector<ElectionOutcome> outcomes(k);
  Engine engine(config_for(k, 12345));
  const RunReport report =
      engine.run([&outcomes](Ctx& ctx) { return sublinear_program(ctx, &outcomes); });
  const double lk = std::max(1.0, std::log(static_cast<double>(k)));
  const double per_attempt =
      8.0 * (2.0 * (2.0 * lk + 1.0) + 1.0) * std::sqrt(static_cast<double>(k) * lk) + 4.0 * k;
  const double budget = per_attempt * outcomes[0].attempts;
  EXPECT_LE(static_cast<double>(report.traffic.messages_sent()), budget) << "k=" << k;
}

TEST_P(ElectionSweep, SublinearConstantRounds) {
  const std::uint32_t k = GetParam();
  std::vector<ElectionOutcome> outcomes(k);
  Engine engine(config_for(k, 7));
  const RunReport report =
      engine.run([&outcomes](Ctx& ctx) { return sublinear_program(ctx, &outcomes); });
  // 3 rounds per attempt + final resume; attempts is almost always 1.
  EXPECT_LE(report.rounds, 3u * outcomes[0].attempts + 2u);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, ElectionSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u, 32u, 64u, 128u));

TEST(Election, SublinearDeterministicForSeed) {
  constexpr std::uint32_t k = 32;
  std::vector<MachineId> leaders;
  for (int run = 0; run < 2; ++run) {
    std::vector<ElectionOutcome> outcomes(k);
    Engine engine(config_for(k, 4242));
    (void)engine.run([&outcomes](Ctx& ctx) { return sublinear_program(ctx, &outcomes); });
    leaders.push_back(outcomes[0].leader);
  }
  EXPECT_EQ(leaders[0], leaders[1]);
}

TEST(Election, SublinearLeaderVariesAcrossSeeds) {
  // Unlike min-id, the sublinear leader is randomized — over many seeds we
  // should see more than one distinct winner for k large enough.
  constexpr std::uint32_t k = 64;
  std::set<MachineId> seen;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    std::vector<ElectionOutcome> outcomes(k);
    Engine engine(config_for(k, seed));
    (void)engine.run([&outcomes](Ctx& ctx) { return sublinear_program(ctx, &outcomes); });
    seen.insert(outcomes[0].leader);
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST(Election, RefereeCountFormula) {
  SublinearElectionConfig config;
  EXPECT_EQ(sublinear_referee_count(1, config), 0u);
  // k=2: min(ceil(2·sqrt(2·1)), 1) = 1
  EXPECT_EQ(sublinear_referee_count(2, config), 1u);
  const std::uint32_t k = 1024;
  const double lk = std::log(1024.0);
  const auto expected =
      static_cast<std::uint32_t>(std::ceil(2.0 * std::sqrt(1024.0 * lk)));
  EXPECT_EQ(sublinear_referee_count(k, config), expected);
}

TEST(Election, WorksUnderStrictBandwidth) {
  // Election messages are <= 40 bits and one per link per round, so the
  // protocol runs under Strict B = 64 links.
  constexpr std::uint32_t k = 16;
  auto config = config_for(k, 5);
  config.bandwidth = BandwidthPolicy::Strict;
  config.bits_per_round = 64;
  std::vector<ElectionOutcome> outcomes(k);
  Engine engine(config);
  EXPECT_NO_THROW(
      (void)engine.run([&outcomes](Ctx& ctx) { return sublinear_program(ctx, &outcomes); }));
}

}  // namespace
}  // namespace dknn

// Tests for core/dist_knn (the paper's Algorithm 2): equivalence with brute
// force across metrics/dims/placements, Theorem 2.4 round bounds and
// k-independence, Lemma 2.3 pruning behaviour, Las Vegas vs Monte Carlo
// failure handling, and the paper's exact experimental setting.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "core/driver.hpp"
#include "data/generators.hpp"
#include "data/metric.hpp"
#include "data/partition.hpp"
#include "rng/rng.hpp"
#include "sim/engine.hpp"
#include "support/stats.hpp"

namespace dknn {
namespace {

EngineConfig engine_for(std::uint64_t seed) {
  EngineConfig c;
  c.seed = seed;
  c.measure_compute = false;
  return c;
}

// --- scalar correctness grid (the paper's experimental setting) --------------------

class KnnGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint32_t, PartitionScheme>> {};

TEST_P(KnnGrid, MatchesBruteForceScalar) {
  const auto [n, k, scheme] = GetParam();
  Rng rng(2000 + n * 13 + k);
  auto values = uniform_u64(n, rng);
  auto shards = make_scalar_shards(std::move(values), k, scheme, rng);
  const Value query = rng.between(0, (1ULL << 32) - 1);
  auto scored = score_scalar_shards(shards, query);
  for (std::uint64_t ell : {std::uint64_t{1}, std::uint64_t{2}, static_cast<std::uint64_t>(n / 4),
                            static_cast<std::uint64_t>(n)}) {
    if (ell == 0) continue;
    const auto result = run_knn(scored, ell, KnnAlgo::DistKnn, engine_for(ell * 3 + 1));
    EXPECT_EQ(result.keys, expected_smallest(scored, ell))
        << "n=" << n << " k=" << k << " scheme=" << partition_scheme_name(scheme)
        << " ell=" << ell;
    EXPECT_TRUE(result.prune_ok);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KnnGrid,
    ::testing::Combine(::testing::Values(1u, 8u, 64u, 512u, 2048u),
                       ::testing::Values(1u, 2u, 4u, 16u, 64u),
                       ::testing::Values(PartitionScheme::RoundRobin, PartitionScheme::Random,
                                         PartitionScheme::SortedBlocks,
                                         PartitionScheme::FirstHeavy)),
    [](const auto& param_info) {
      // NOTE: no structured bindings here — commas inside [] are not
      // protected from the INSTANTIATE macro's argument splitting.
      std::string name = "n" + std::to_string(std::get<0>(param_info.param)) + "_k" +
                         std::to_string(std::get<1>(param_info.param)) + "_" +
                         partition_scheme_name(std::get<2>(param_info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// --- vector metrics -------------------------------------------------------------------

template <typename M>
void check_vector_knn(const M& metric, std::uint64_t seed) {
  Rng rng(seed);
  constexpr std::uint32_t k = 8;
  auto points = uniform_points(600, 4, 50.0, rng);
  auto shards = make_vector_shards(points, k, PartitionScheme::Random, rng);
  const PointD query = uniform_points(1, 4, 50.0, rng)[0];
  auto scored = score_vector_shards(shards, query, metric);
  for (std::uint64_t ell : {1u, 10u, 100u}) {
    const auto result = run_knn(scored, ell, KnnAlgo::DistKnn, engine_for(seed + ell));
    EXPECT_EQ(result.keys, expected_smallest(scored, ell)) << "ell=" << ell;
  }
}

TEST(KnnVector, Euclidean) { check_vector_knn(EuclideanMetric{}, 31); }
TEST(KnnVector, SquaredEuclidean) { check_vector_knn(SquaredEuclidean{}, 32); }
TEST(KnnVector, Manhattan) { check_vector_knn(ManhattanMetric{}, 33); }
TEST(KnnVector, Chebyshev) { check_vector_knn(ChebyshevMetric{}, 34); }
TEST(KnnVector, Minkowski) { check_vector_knn(MinkowskiMetric{3.0}, 35); }

// --- Theorem 2.4: rounds O(log ℓ), independent of k --------------------------------------

TEST(KnnBounds, SelectIterationsScaleWithEllNotN) {
  // Fix n per machine, sweep ℓ: the inner selection runs on <= 11ℓ
  // candidates, so iterations ~ c·log(ℓ), regardless of n = k·n_i >> ℓ.
  constexpr std::uint32_t k = 16;
  constexpr std::size_t n_per_machine = 2048;
  Rng rng(40);
  auto values = uniform_u64(n_per_machine * k, rng);
  auto shards = make_scalar_shards(std::move(values), k, PartitionScheme::RoundRobin, rng);
  auto scored = score_scalar_shards(shards, rng.between(0, ~0u));
  for (std::uint64_t ell : {4u, 16u, 64u, 256u, 1024u}) {
    double worst = 0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const auto result = run_knn(scored, ell, KnnAlgo::DistKnn, engine_for(seed));
      worst = std::max(worst, static_cast<double>(result.iterations));
    }
    EXPECT_LE(worst, 6.0 * std::log2(static_cast<double>(11 * ell)) + 12.0) << "ell=" << ell;
  }
}

TEST(KnnBounds, RoundsIndependentOfK) {
  // Theorem 2.4's headline: rounds depend on ℓ only.  Compare mean rounds
  // at k=4 and k=64 for fixed ℓ and fixed total n.
  constexpr std::size_t total_n = 1 << 14;
  constexpr std::uint64_t ell = 128;
  SampleSet rounds_small, rounds_large;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(50 + seed);
    auto values = uniform_u64(total_n, rng);
    const Value query = rng.between(0, (1ULL << 32) - 1);
    auto shards4 = make_scalar_shards(values, 4, PartitionScheme::RoundRobin, rng);
    auto shards64 = make_scalar_shards(values, 64, PartitionScheme::RoundRobin, rng);
    rounds_small.add(static_cast<double>(
        run_knn(score_scalar_shards(shards4, query), ell, KnnAlgo::DistKnn, engine_for(seed))
            .report.rounds));
    rounds_large.add(static_cast<double>(
        run_knn(score_scalar_shards(shards64, query), ell, KnnAlgo::DistKnn, engine_for(seed))
            .report.rounds));
  }
  // Means within a factor ~1.5 + slack of each other.
  EXPECT_LT(rounds_large.mean(), 1.5 * rounds_small.mean() + 10.0);
  EXPECT_LT(rounds_small.mean(), 1.5 * rounds_large.mean() + 10.0);
}

TEST(KnnBounds, MessageComplexity) {
  // O(k log ℓ) messages: samples (k · ~12 ln ℓ), headers/radius/counts/
  // decision (O(k) each), inner selection (O(k log ℓ)).
  constexpr std::uint32_t k = 32;
  constexpr std::uint64_t ell = 256;
  Rng rng(60);
  auto values = uniform_u64(1 << 14, rng);
  auto shards = make_scalar_shards(std::move(values), k, PartitionScheme::RoundRobin, rng);
  auto scored = score_scalar_shards(shards, rng.between(0, ~0u));
  const auto result = run_knn(scored, ell, KnnAlgo::DistKnn, engine_for(3));
  const double lnl = std::log(static_cast<double>(ell));
  const double budget = static_cast<double>(k) *
                        (12.0 * lnl + 4.0                // samples + header
                         + 2.0                           // radius + count
                         + 1.0                           // decision
                         + (2.0 + 6.0 * (std::log2(11.0 * static_cast<double>(ell)) + 4.0)));
  EXPECT_LE(static_cast<double>(result.report.traffic.messages_sent()), budget);
}

// --- Lemma 2.3: pruning ---------------------------------------------------------------------

TEST(KnnPruning, CandidatesBoundedBy11Ell) {
  // W.h.p. the survivor count is <= 11ℓ; we tolerate a small failure rate
  // across trials (the lemma's own failure probability is O(1/ℓ²)).
  constexpr std::uint32_t k = 32;
  constexpr std::uint64_t ell = 256;
  Rng rng(70);
  auto values = uniform_u64(1 << 14, rng);
  auto shards = make_scalar_shards(std::move(values), k, PartitionScheme::RoundRobin, rng);
  auto scored = score_scalar_shards(shards, rng.between(0, ~0u));
  int violations = 0;
  constexpr int kTrials = 20;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    const auto result = run_knn(scored, ell, KnnAlgo::DistKnn, engine_for(seed));
    EXPECT_GE(result.candidates, ell);  // never lost the answer (Las Vegas)
    if (result.candidates > 11 * ell) ++violations;
  }
  EXPECT_LE(violations, 2);
}

TEST(KnnPruning, NeverExceedsCappedTotal) {
  constexpr std::uint32_t k = 8;
  constexpr std::uint64_t ell = 64;
  Rng rng(71);
  auto values = uniform_u64(1024, rng);
  auto shards = make_scalar_shards(std::move(values), k, PartitionScheme::RoundRobin, rng);
  auto scored = score_scalar_shards(shards, 12345);
  const auto result = run_knn(scored, ell, KnnAlgo::DistKnn, engine_for(5));
  EXPECT_LE(result.candidates, static_cast<std::uint64_t>(k) * ell);
}

TEST(KnnPruning, MonteCarloNeverRetries) {
  Rng rng(72);
  auto values = uniform_u64(4096, rng);
  auto shards = make_scalar_shards(std::move(values), 16, PartitionScheme::RoundRobin, rng);
  auto scored = score_scalar_shards(shards, 999);
  KnnConfig config;
  config.las_vegas = false;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto result = run_knn(scored, 128, KnnAlgo::DistKnn, engine_for(seed), config);
    EXPECT_EQ(result.attempts, 1u);
    if (result.prune_ok) {
      EXPECT_EQ(result.keys, expected_smallest(scored, 128));
    } else {
      // The lossy answer is exactly the survivors (all of them).
      EXPECT_LT(result.keys.size(), 128u);
    }
  }
}

TEST(KnnPruning, AggressiveRankForcesRetryAndStaysCorrect) {
  // rank_coeff = 0 picks the smallest sample as radius — almost always a
  // failing prune, exercising the Las Vegas retry path hard.
  Rng rng(73);
  auto values = uniform_u64(2048, rng);
  auto shards = make_scalar_shards(std::move(values), 8, PartitionScheme::RoundRobin, rng);
  auto scored = score_scalar_shards(shards, 777);
  KnnConfig config;
  config.rank_coeff = 0.0;  // radius rank clamps to 1 (the minimum sample)
  config.max_retries = 3;
  const auto result = run_knn(scored, 256, KnnAlgo::DistKnn, engine_for(1), config);
  EXPECT_EQ(result.keys, expected_smallest(scored, 256));
  EXPECT_GT(result.attempts, 1u);  // it had to retry (or fall back)
}

TEST(KnnPruning, ZeroRetriesMeansNoPruning) {
  Rng rng(74);
  auto values = uniform_u64(512, rng);
  auto shards = make_scalar_shards(std::move(values), 4, PartitionScheme::RoundRobin, rng);
  auto scored = score_scalar_shards(shards, 42);
  KnnConfig config;
  config.max_retries = 0;  // straight to the no-prune fallback
  const auto result = run_knn(scored, 64, KnnAlgo::DistKnn, engine_for(2), config);
  EXPECT_EQ(result.keys, expected_smallest(scored, 64));
  EXPECT_EQ(result.candidates, std::min<std::uint64_t>(512, 4 * 64));
}

// --- sample-count formulas -----------------------------------------------------------------

TEST(KnnFormulas, SampleAndRankCounts) {
  KnnConfig config;  // coefficients 12 and 21
  EXPECT_EQ(knn_sample_count(1, config), knn_sample_count(2, config));  // clamped at ℓ=2
  EXPECT_EQ(knn_sample_count(2, config),
            static_cast<std::uint64_t>(std::ceil(12.0 * std::log(2.0))));
  EXPECT_EQ(knn_sample_count(1024, config),
            static_cast<std::uint64_t>(std::ceil(12.0 * std::log(1024.0))));
  EXPECT_EQ(knn_radius_rank(1024, config),
            static_cast<std::uint64_t>(std::ceil(21.0 * std::log(1024.0))));
  EXPECT_GE(knn_sample_count(1, config), 1u);
  EXPECT_GE(knn_radius_rank(1, config), 1u);
}

// --- edge cases ------------------------------------------------------------------------------

TEST(KnnEdge, EllZeroSelectsNothing) {
  Rng rng(80);
  auto values = uniform_u64(100, rng);
  auto shards = make_scalar_shards(std::move(values), 4, PartitionScheme::RoundRobin, rng);
  auto scored = score_scalar_shards(shards, 5);
  const auto result = run_knn(scored, 0, KnnAlgo::DistKnn, engine_for(1));
  EXPECT_TRUE(result.keys.empty());
}

TEST(KnnEdge, EmptyDataset) {
  std::vector<std::vector<Key>> scored(4);
  const auto result = run_knn(scored, 10, KnnAlgo::DistKnn, engine_for(2));
  EXPECT_TRUE(result.keys.empty());
}

TEST(KnnEdge, SingleMachine) {
  std::vector<std::vector<Key>> scored(1);
  for (std::uint64_t i = 0; i < 64; ++i) scored[0].push_back(Key{(i * 37) % 1000, i + 1});
  const auto result = run_knn(scored, 10, KnnAlgo::DistKnn, engine_for(3));
  EXPECT_EQ(result.keys, expected_smallest(scored, 10));
}

TEST(KnnEdge, QueryCollidesWithPoints) {
  // Query exactly equals many points: distance 0 ties broken by id.
  Rng rng(81);
  std::vector<Value> values(100, 500);  // all identical to the query
  auto shards = make_scalar_shards(std::move(values), 4, PartitionScheme::RoundRobin, rng);
  auto scored = score_scalar_shards(shards, 500);
  const auto result = run_knn(scored, 10, KnnAlgo::DistKnn, engine_for(4));
  ASSERT_EQ(result.keys.size(), 10u);
  for (const Key& key : result.keys) EXPECT_EQ(key.rank, 0u);
  EXPECT_EQ(result.keys, expected_smallest(scored, 10));
}

TEST(KnnEdge, DeterministicForSeed) {
  Rng rng(82);
  auto values = uniform_u64(1024, rng);
  auto shards = make_scalar_shards(std::move(values), 8, PartitionScheme::Random, rng);
  auto scored = score_scalar_shards(shards, 31337);
  const auto a = run_knn(scored, 100, KnnAlgo::DistKnn, engine_for(5));
  const auto b = run_knn(scored, 100, KnnAlgo::DistKnn, engine_for(5));
  EXPECT_EQ(a.keys, b.keys);
  EXPECT_EQ(a.report.rounds, b.report.rounds);
  EXPECT_EQ(a.candidates, b.candidates);
}

TEST(KnnEdge, PaperSettingSmallScale) {
  // The paper's §3 workload, scaled down: uniform values in [0, 2^32-1],
  // per-machine generation, random query, k = 16.
  constexpr std::uint32_t k = 16;
  constexpr std::size_t per_machine = 1 << 10;
  Rng rng(83);
  std::vector<std::vector<Key>> scored(k);
  std::vector<std::vector<Value>> raw(k);
  const Value query = rng.between(0, (1ULL << 32) - 1);
  // Per-machine independent generation exactly as in the paper.
  std::vector<Value> all;
  for (std::uint32_t m = 0; m < k; ++m) {
    Rng machine_rng = rng.split(m);
    raw[m] = uniform_u64(per_machine, machine_rng);
    all.insert(all.end(), raw[m].begin(), raw[m].end());
  }
  Rng id_rng(84);
  auto ids = assign_random_ids(all.size(), id_rng);
  std::size_t next = 0;
  for (std::uint32_t m = 0; m < k; ++m) {
    for (Value v : raw[m]) scored[m].push_back(Key{scalar_distance(v, query), ids[next++]});
  }
  for (std::uint64_t ell : {1u, 16u, 256u, 4096u}) {
    const auto result = run_knn(scored, ell, KnnAlgo::DistKnn, engine_for(ell));
    EXPECT_EQ(result.keys, expected_smallest(scored, ell)) << "ell=" << ell;
  }
}

TEST(KnnEdge, ChunkedBandwidthCertification) {
  // Algorithm 2's sampling phase queues ~12·ln ℓ one-key messages on each
  // machine→leader link; under B-bit links those drain over O(log ℓ)
  // rounds (which is exactly why Theorem 2.4 still holds).  Verify the
  // protocol is correct under that queuing, that no single message exceeds
  // O(log n) bits, and that delivery latency stayed bounded by the sample
  // count.
  Rng rng(85);
  auto values = uniform_u64(512, rng);
  auto shards = make_scalar_shards(std::move(values), 8, PartitionScheme::RoundRobin, rng);
  auto scored = score_scalar_shards(shards, 123);
  auto config = engine_for(6);
  config.bandwidth = BandwidthPolicy::Chunked;
  config.bits_per_round = 512;
  const auto result = run_knn(scored, 64, KnnAlgo::DistKnn, config);
  EXPECT_EQ(result.keys, expected_smallest(scored, 64));
  EXPECT_LE(result.report.traffic.max_message_bits(), 512u);
  const std::uint64_t samples = knn_sample_count(64, KnnConfig{});
  EXPECT_LE(result.report.traffic.max_delivery_latency(), samples + 4);
}

}  // namespace
}  // namespace dknn

// Tests for src/data: keys and their total order, distance encoding,
// metric axioms (property-swept), unique ids, generators, partitioners.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <unordered_set>
#include <vector>

#include "data/generators.hpp"
#include "data/ids.hpp"
#include "data/key.hpp"
#include "data/metric.hpp"
#include "data/partition.hpp"
#include "data/point.hpp"
#include "rng/rng.hpp"
#include "serial/codec.hpp"
#include "support/panic.hpp"

namespace dknn {
namespace {

// --- distance encoding ------------------------------------------------------

TEST(DistanceEncoding, PreservesOrder) {
  Rng rng(1);
  for (int trial = 0; trial < 1000; ++trial) {
    const double a = rng.uniform01() * 1e12;
    const double b = rng.uniform01() * 1e12;
    EXPECT_EQ(a < b, encode_distance(a) < encode_distance(b));
    EXPECT_EQ(a == b, encode_distance(a) == encode_distance(b));
  }
}

TEST(DistanceEncoding, RoundTrips) {
  for (double d : {0.0, 1.0, 0.5, 1e-300, 1e300, 3.14159}) {
    EXPECT_DOUBLE_EQ(decode_distance(encode_distance(d)), d);
  }
}

TEST(DistanceEncoding, ZeroIsMinimal) {
  EXPECT_EQ(encode_distance(0.0), 0u);
}

TEST(DistanceEncoding, RejectsNegativeAndNaN) {
  EXPECT_THROW((void)encode_distance(-1.0), InvariantError);
  EXPECT_THROW((void)encode_distance(std::nan("")), InvariantError);
}

// --- keys ----------------------------------------------------------------------

TEST(Key, LexicographicOrder) {
  EXPECT_LT((Key{1, 5}), (Key{2, 0}));
  EXPECT_LT((Key{1, 5}), (Key{1, 6}));
  EXPECT_EQ((Key{1, 5}), (Key{1, 5}));
  EXPECT_LT(Key::min_key(), Key::max_key());
}

TEST(Key, SerializationRoundTrip) {
  const Key k{0xDEADBEEFCAFEBABEULL, 42};
  EXPECT_EQ(from_bytes<Key>(to_bytes(k)), k);
  EXPECT_EQ(to_bytes(k).size(), 16u);  // two fixed u64 words on the wire
}

TEST(KeyRange, ContainsSemantics) {
  // (lo, hi] — lower exclusive, upper inclusive.
  KeyRange r{true, Key{10, 0}, Key{20, 0}};
  EXPECT_FALSE(r.contains(Key{10, 0}));  // lo itself excluded
  EXPECT_TRUE(r.contains(Key{10, 1}));   // just above lo
  EXPECT_TRUE(r.contains(Key{20, 0}));   // hi included
  EXPECT_FALSE(r.contains(Key{20, 1}));
  KeyRange unbounded{false, Key{}, Key{20, 0}};
  EXPECT_TRUE(unbounded.contains(Key::min_key()));
}

TEST(KeyRange, SerializationRoundTrip) {
  const KeyRange r{true, Key{7, 8}, Key{9, 10}};
  const auto back = from_bytes<KeyRange>(to_bytes(r));
  EXPECT_EQ(back.has_lo, r.has_lo);
  EXPECT_EQ(back.lo, r.lo);
  EXPECT_EQ(back.hi, r.hi);
}

// --- metric axioms (property sweep over random points) ---------------------------

template <typename M>
void check_metric_axioms(const M& metric, bool triangle, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t dim : {1u, 2u, 5u, 16u}) {
    auto points = uniform_points(30, dim, 100.0, rng);
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_DOUBLE_EQ(metric(points[i], points[i]), 0.0) << "identity, dim " << dim;
      for (std::size_t j = i + 1; j < points.size(); ++j) {
        const double dij = metric(points[i], points[j]);
        EXPECT_GT(dij, 0.0) << "positivity";
        EXPECT_DOUBLE_EQ(dij, metric(points[j], points[i])) << "symmetry";
        if (triangle) {
          for (std::size_t l = 0; l < points.size(); l += 7) {
            const double dil = metric(points[i], points[l]);
            const double dlj = metric(points[l], points[j]);
            EXPECT_LE(dij, dil + dlj + 1e-9) << "triangle inequality";
          }
        }
      }
    }
  }
}

TEST(Metric, EuclideanAxioms) { check_metric_axioms(EuclideanMetric{}, true, 11); }
TEST(Metric, ManhattanAxioms) { check_metric_axioms(ManhattanMetric{}, true, 12); }
TEST(Metric, ChebyshevAxioms) { check_metric_axioms(ChebyshevMetric{}, true, 13); }
TEST(Metric, Minkowski3Axioms) { check_metric_axioms(MinkowskiMetric{3.0}, true, 14); }
TEST(Metric, SquaredEuclideanNoTriangleButValidKey) {
  check_metric_axioms(SquaredEuclidean{}, false, 15);
}

TEST(Metric, SquaredEuclideanSameOrderAsEuclidean) {
  Rng rng(16);
  const auto points = uniform_points(50, 3, 10.0, rng);
  const PointD q = points[0];
  EuclideanMetric euc;
  SquaredEuclidean sq;
  for (std::size_t i = 1; i + 1 < points.size(); ++i) {
    const bool closer_euc = euc(points[i], q) < euc(points[i + 1], q);
    const bool closer_sq = sq(points[i], q) < sq(points[i + 1], q);
    EXPECT_EQ(closer_euc, closer_sq);
  }
}

TEST(Metric, KnownValues) {
  const PointD a({0.0, 0.0});
  const PointD b({3.0, 4.0});
  EXPECT_DOUBLE_EQ(EuclideanMetric{}(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredEuclidean{}(a, b), 25.0);
  EXPECT_DOUBLE_EQ(ManhattanMetric{}(a, b), 7.0);
  EXPECT_DOUBLE_EQ(ChebyshevMetric{}(a, b), 4.0);
}

TEST(Metric, DimensionMismatchThrows) {
  const PointD a({1.0});
  const PointD b({1.0, 2.0});
  EXPECT_THROW((void)EuclideanMetric{}(a, b), InvariantError);
}

TEST(Metric, MinkowskiRejectsPBelowOne) {
  EXPECT_THROW(MinkowskiMetric{0.5}, InvariantError);
}

TEST(Metric, MinkowskiGeneralizes) {
  Rng rng(17);
  const auto points = uniform_points(10, 4, 50.0, rng);
  MinkowskiMetric p1{1.0};
  MinkowskiMetric p2{2.0};
  ManhattanMetric man;
  EuclideanMetric euc;
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    EXPECT_NEAR(p1(points[i], points[i + 1]), man(points[i], points[i + 1]), 1e-9);
    EXPECT_NEAR(p2(points[i], points[i + 1]), euc(points[i], points[i + 1]), 1e-9);
  }
}

TEST(Metric, HammingDistance) {
  EXPECT_EQ(hamming_distance(0, 0), 0u);
  EXPECT_EQ(hamming_distance(0b1011, 0b0010), 2u);
  EXPECT_EQ(hamming_distance(~0ULL, 0), 64u);
}

TEST(Metric, ScalarDistanceSymmetricNoOverflow) {
  EXPECT_EQ(scalar_distance(5, 9), 4u);
  EXPECT_EQ(scalar_distance(9, 5), 4u);
  EXPECT_EQ(scalar_distance(0, ~0ULL), ~0ULL);
}

// --- ids ---------------------------------------------------------------------------

TEST(Ids, UniqueAndPositive) {
  Rng rng(20);
  for (std::size_t n : {0u, 1u, 2u, 100u, 5000u}) {
    auto ids = assign_random_ids(n, rng);
    EXPECT_EQ(ids.size(), n);
    std::unordered_set<PointId> seen(ids.begin(), ids.end());
    EXPECT_EQ(seen.size(), n);
    for (PointId id : ids) EXPECT_GE(id, 1u);
  }
}

TEST(Ids, WithinPaperDomainForSmallN) {
  Rng rng(21);
  constexpr std::size_t n = 1000;
  auto ids = assign_random_ids(n, rng);
  const std::uint64_t cube = static_cast<std::uint64_t>(n) * n * n;
  for (PointId id : ids) EXPECT_LE(id, cube);
}

TEST(Ids, DeterministicForSeed) {
  Rng a(22), b(22);
  EXPECT_EQ(assign_random_ids(100, a), assign_random_ids(100, b));
}

// --- generators ------------------------------------------------------------------

TEST(Generators, UniformU64InRange) {
  Rng rng(30);
  auto values = uniform_u64(10000, rng);
  for (Value v : values) EXPECT_LT(v, 1ULL << 32);  // paper's [0, 2^32 - 1]
}

TEST(Generators, UniformU64CustomRange) {
  Rng rng(31);
  auto values = uniform_u64(1000, rng, 10, 20);
  for (Value v : values) {
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Generators, DuplicateHeavyHasFewDistinct) {
  Rng rng(32);
  auto values = duplicate_heavy_u64(10000, 7, rng);
  std::set<Value> distinct(values.begin(), values.end());
  EXPECT_LE(distinct.size(), 7u);
  EXPECT_GE(distinct.size(), 2u);
}

TEST(Generators, GaussianClustersLabelsAndDims) {
  Rng rng(33);
  ClusterSpec spec;
  spec.dim = 3;
  spec.clusters = 4;
  auto data = gaussian_clusters(2000, spec, rng);
  EXPECT_EQ(data.size(), 2000u);
  std::set<std::uint32_t> labels;
  for (const auto& p : data) {
    EXPECT_EQ(p.x.dim(), 3u);
    EXPECT_LT(p.label, 4u);
    labels.insert(p.label);
  }
  EXPECT_EQ(labels.size(), 4u);  // all clusters represented
}

TEST(Generators, ClustersAreSeparatedWhenSpreadSmall) {
  // With tiny spread and big box, same-cluster points are far closer to
  // each other than cross-cluster pairs (sanity for the classifier tests).
  Rng rng(34);
  ClusterSpec spec;
  spec.dim = 2;
  spec.clusters = 3;
  spec.center_box = 1000.0;
  spec.spread = 0.1;
  auto data = gaussian_clusters(300, spec, rng);
  EuclideanMetric metric;
  double max_intra = 0.0, min_inter = 1e18;
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = i + 1; j < data.size(); ++j) {
      const double d = metric(data[i].x, data[j].x);
      if (data[i].label == data[j].label) {
        max_intra = std::max(max_intra, d);
      } else {
        min_inter = std::min(min_inter, d);
      }
    }
  }
  EXPECT_LT(max_intra, min_inter);
}

TEST(Generators, RegressionTargetsTrackTruth) {
  Rng rng(35);
  auto data = regression_dataset(500, 2, 3.0, 0.01, rng);
  for (const auto& p : data) {
    EXPECT_NEAR(p.y, regression_truth(p.x), 0.1);  // 10 sigma of the noise
  }
}

TEST(Generators, Deterministic) {
  Rng a(36), b(36);
  EXPECT_EQ(uniform_u64(100, a), uniform_u64(100, b));
}

// --- partition -----------------------------------------------------------------------

TEST(Partition, RoundRobinBalanced) {
  Rng rng(40);
  std::vector<int> items(103);
  std::iota(items.begin(), items.end(), 0);
  auto shards = partition(items, 10, PartitionScheme::RoundRobin, rng);
  ASSERT_EQ(shards.size(), 10u);
  for (const auto& shard : shards) {
    EXPECT_GE(shard.size(), 10u);
    EXPECT_LE(shard.size(), 11u);
  }
}

TEST(Partition, SortedBlocksAdversarial) {
  Rng rng(41);
  std::vector<int> items{5, 3, 9, 1, 7, 2, 8, 4, 6, 0};
  auto shards = partition(items, 2, PartitionScheme::SortedBlocks, rng);
  // machine 0 gets all the small values
  for (int v : shards[0]) EXPECT_LT(v, 5);
  for (int v : shards[1]) EXPECT_GE(v, 5);
}

TEST(Partition, FirstHeavyLeavesOthersEmpty) {
  Rng rng(42);
  std::vector<int> items(50, 1);
  auto shards = partition(items, 4, PartitionScheme::FirstHeavy, rng);
  EXPECT_EQ(shards[0].size(), 50u);
  for (std::size_t m = 1; m < 4; ++m) EXPECT_TRUE(shards[m].empty());
}

class PartitionSweep : public ::testing::TestWithParam<PartitionScheme> {};

TEST_P(PartitionSweep, PreservesMultiset) {
  Rng rng(43);
  auto values = uniform_u64(997, rng);
  std::vector<Value> sorted_input = values;
  std::sort(sorted_input.begin(), sorted_input.end());
  for (std::uint32_t k : {1u, 2u, 7u, 16u, 64u}) {
    Rng part_rng(44);
    auto shards = partition(values, k, GetParam(), part_rng);
    EXPECT_EQ(shards.size(), k);
    std::vector<Value> merged;
    for (const auto& shard : shards) merged.insert(merged.end(), shard.begin(), shard.end());
    std::sort(merged.begin(), merged.end());
    EXPECT_EQ(merged, sorted_input) << partition_scheme_name(GetParam()) << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PartitionSweep,
                         ::testing::ValuesIn(all_partition_schemes()),
                         [](const auto& param_info) {
                           std::string name = partition_scheme_name(param_info.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(Partition, RejectsZeroMachines) {
  Rng rng(45);
  std::vector<int> items{1};
  EXPECT_THROW((void)partition(items, 0, PartitionScheme::RoundRobin, rng), InvariantError);
}

// --- point serialization ---------------------------------------------------------------

TEST(Point, SerializationRoundTrip) {
  const PointD p({1.5, -2.25, 0.0});
  EXPECT_EQ(from_bytes<PointD>(to_bytes(p)), p);
}

}  // namespace
}  // namespace dknn

#pragma once
/// \file parity_support.hpp
/// \brief The shared ground-truth oracle for every scoring parity suite.
///
/// test_parity.cpp (cross-path), test_simd_parity.cpp (cross-ISA) and
/// test_kernels.cpp (kernel + golden fixtures) all anchor on the same
/// reference: a per-query AoS scan through the metric.hpp functors plus a
/// bounded top-ℓ.  One definition here keeps the oracle from drifting
/// between suites if Key encoding or metric semantics ever change.

#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "core/driver.hpp"
#include "data/kernels.hpp"
#include "seq/select.hpp"

namespace dknn::testing_support {

/// Ground truth no kernel TU touches: score everything via the functors,
/// cap to ℓ.
inline std::vector<Key> reference_top_ell(const VectorShard& shard, const PointD& query,
                                          MetricKind kind, std::size_t ell) {
  std::vector<Key> scored;
  scored.reserve(shard.points.size());
  for (std::size_t i = 0; i < shard.points.size(); ++i) {
    scored.push_back(
        Key{encode_distance(metric_distance(kind, shard.points[i], query)), shard.ids[i]});
  }
  return top_ell_smallest(std::span<const Key>(scored), ell);
}

/// Byte-level Key comparison; fatal on the first divergence (rank bits
/// count, not just ids — a single rank bit can flip a selection far
/// downstream).
inline void expect_same_keys(const std::vector<Key>& expected, const std::vector<Key>& actual,
                             const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].rank, actual[i].rank) << label << " rank at " << i;
    ASSERT_EQ(expected[i].id, actual[i].id) << label << " id at " << i;
  }
}

}  // namespace dknn::testing_support

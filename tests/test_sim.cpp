// Tests for src/sim: coroutine task composition, round-barrier semantics,
// engine lifecycle, collectives, executor equivalence, cost accounting, and
// failure handling.
//
// Machine programs are written as free coroutine functions taking (Ctx&,
// args...) — parameters are copied into the coroutine frame, so the factory
// lambda that creates them can stay a plain (non-coroutine) function.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "net/fault.hpp"
#include "sim/collectives.hpp"
#include "sim/context.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "support/panic.hpp"

namespace dknn {
namespace {

EngineConfig basic_config(std::uint32_t k) {
  EngineConfig c;
  c.world_size = k;
  c.seed = 7;
  c.measure_compute = false;  // deterministic round counts in assertions
  return c;
}

// --- trivial programs -------------------------------------------------------

Task<void> noop_program(Ctx&) { co_return; }

TEST(Engine, SingleMachineNoopFinishesInOneRound) {
  Engine engine(basic_config(1));
  const RunReport report = engine.run([](Ctx& ctx) { return noop_program(ctx); });
  EXPECT_EQ(report.rounds, 1u);
  EXPECT_EQ(report.traffic.messages_sent(), 0u);
}

Task<void> wait_rounds_program(Ctx& ctx, std::uint64_t rounds, std::vector<std::uint64_t>* seen) {
  for (std::uint64_t i = 0; i < rounds; ++i) {
    (*seen)[ctx.id()] = ctx.current_round();
    co_await ctx.round();
  }
}

TEST(Engine, RoundNumbersAdvanceByOne) {
  auto config = basic_config(3);
  std::vector<std::uint64_t> seen(3, 0);
  Engine engine(config);
  const RunReport report =
      engine.run([&seen](Ctx& ctx) { return wait_rounds_program(ctx, 5, &seen); });
  // 5 barriers -> machine last observed round 4; engine ran 6 supersteps
  // (the 6th resumes-to-completion).
  EXPECT_EQ(report.rounds, 6u);
  for (std::uint64_t r : seen) EXPECT_EQ(r, 4u);
}

// --- messaging ---------------------------------------------------------------

Task<void> ping_pong(Ctx& ctx, std::vector<std::uint64_t>* out) {
  if (ctx.id() == 0) {
    ctx.send_value<std::uint64_t>(1, 1, 41);
    const auto reply = co_await recv_value<std::uint64_t>(ctx, 2);
    (*out)[0] = reply;
  } else {
    const auto v = co_await recv_value<std::uint64_t>(ctx, 1);
    ctx.send_value<std::uint64_t>(0, 2, v + 1);
    (*out)[1] = v;
  }
}

TEST(Engine, PingPongValuesAndRounds) {
  std::vector<std::uint64_t> out(2, 0);
  Engine engine(basic_config(2));
  const RunReport report = engine.run([&out](Ctx& ctx) { return ping_pong(ctx, &out); });
  EXPECT_EQ(out[1], 41u);
  EXPECT_EQ(out[0], 42u);
  EXPECT_EQ(report.traffic.messages_sent(), 2u);
  // round 0: m0 sends; round 1: m1 receives, replies; round 2: m0 receives.
  EXPECT_EQ(report.rounds, 3u);
}

Task<void> two_same_tag(Ctx& ctx, std::vector<std::uint64_t>* out) {
  if (ctx.id() == 0) {
    ctx.send_value<std::uint64_t>(1, 5, 10);
    ctx.send_value<std::uint64_t>(1, 5, 20);
  } else {
    const auto a = co_await recv_value<std::uint64_t>(ctx, 5);
    const auto b = co_await recv_value<std::uint64_t>(ctx, 5);
    (*out)[0] = a;
    (*out)[1] = b;
  }
}

TEST(Engine, RecvConsumesInFifoOrder) {
  std::vector<std::uint64_t> out(2, 0);
  Engine engine(basic_config(2));
  (void)engine.run([&out](Ctx& ctx) { return two_same_tag(ctx, &out); });
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(out[1], 20u);
}

// --- nested task composition ---------------------------------------------------

Task<std::uint64_t> helper_waits(Ctx& ctx, std::uint64_t base) {
  co_await ctx.round();
  co_await ctx.round();
  co_return base + ctx.current_round();
}

Task<void> nested_program(Ctx& ctx, std::vector<std::uint64_t>* out) {
  const std::uint64_t first = co_await helper_waits(ctx, 100);
  const std::uint64_t second = co_await helper_waits(ctx, 1000);
  (*out)[ctx.id()] = first + second;
}

TEST(Engine, NestedTasksSuspendAcrossRounds) {
  std::vector<std::uint64_t> out(2, 0);
  Engine engine(basic_config(2));
  const RunReport report = engine.run([&out](Ctx& ctx) { return nested_program(ctx, &out); });
  // helper 1 finishes at round 2 (returns 102), helper 2 at round 4 (1004).
  EXPECT_EQ(out[0], 1106u);
  EXPECT_EQ(out[1], 1106u);
  EXPECT_EQ(report.rounds, 5u);
}

Task<std::uint64_t> deep_nest(Ctx& ctx, int depth) {
  if (depth == 0) {
    co_await ctx.round();
    co_return 1;
  }
  const std::uint64_t below = co_await deep_nest(ctx, depth - 1);
  co_return below + 1;
}

Task<void> deep_nest_program(Ctx& ctx, std::vector<std::uint64_t>* out) {
  (*out)[ctx.id()] = co_await deep_nest(ctx, 50);
}

TEST(Engine, DeeplyNestedTasksWork) {
  std::vector<std::uint64_t> out(1, 0);
  Engine engine(basic_config(1));
  (void)engine.run([&out](Ctx& ctx) { return deep_nest_program(ctx, &out); });
  EXPECT_EQ(out[0], 51u);
}

// --- exceptions ------------------------------------------------------------------

Task<void> throwing_program(Ctx& ctx) {
  if (ctx.id() == 1) {
    co_await ctx.round();
    throw std::runtime_error("machine 1 exploded");
  }
  co_await ctx.round();
  co_await ctx.round();
}

TEST(Engine, MachineExceptionPropagates) {
  Engine engine(basic_config(3));
  try {
    (void)engine.run([](Ctx& ctx) { return throwing_program(ctx); });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "machine 1 exploded");
  }
}

Task<std::uint64_t> throwing_helper(Ctx& ctx) {
  co_await ctx.round();
  throw std::runtime_error("helper failed");
}

Task<void> catching_program(Ctx& ctx, std::vector<std::uint64_t>* out) {
  try {
    (*out)[ctx.id()] = co_await throwing_helper(ctx);
  } catch (const std::runtime_error&) {
    (*out)[ctx.id()] = 77;  // exception crossed the task boundary correctly
  }
}

TEST(Engine, NestedExceptionCatchableInParent) {
  std::vector<std::uint64_t> out(2, 0);
  Engine engine(basic_config(2));
  (void)engine.run([&out](Ctx& ctx) { return catching_program(ctx, &out); });
  EXPECT_EQ(out[0], 77u);
  EXPECT_EQ(out[1], 77u);
}

// --- deadlock / round cap ---------------------------------------------------------

Task<void> waits_forever(Ctx& ctx) {
  if (ctx.id() == 0) {
    (void)co_await recv(ctx, 99);  // nobody ever sends tag 99
  }
  co_return;
}

TEST(Engine, RoundCapThrowsSimError) {
  auto config = basic_config(2);
  config.max_rounds = 100;
  Engine engine(config);
  EXPECT_THROW((void)engine.run([](Ctx& ctx) { return waits_forever(ctx); }), SimError);
}

TEST(Engine, DroppedMessageBecomesSimErrorNotHang) {
  auto config = basic_config(2);
  config.max_rounds = 50;
  Engine engine(config);
  FaultPlan plan;
  plan.drop_probability = 1.0;
  FaultInjector injector(engine.network(), plan, 3);
  std::vector<std::uint64_t> out(2, 0);
  EXPECT_THROW((void)engine.run([&out](Ctx& ctx) { return ping_pong(ctx, &out); }), SimError);
  EXPECT_GE(injector.drops(), 1u);
}

// --- collectives -------------------------------------------------------------------

Task<void> broadcast_program(Ctx& ctx, std::vector<std::uint64_t>* out) {
  const std::uint64_t v = co_await broadcast<std::uint64_t>(ctx, 0, 1, ctx.id() == 0 ? 123 : 0);
  (*out)[ctx.id()] = v;
}

class CollectivesSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CollectivesSweep, BroadcastReachesEveryone) {
  const std::uint32_t k = GetParam();
  std::vector<std::uint64_t> out(k, 0);
  Engine engine(basic_config(k));
  const RunReport report = engine.run([&out](Ctx& ctx) { return broadcast_program(ctx, &out); });
  for (std::uint64_t v : out) EXPECT_EQ(v, 123u);
  EXPECT_EQ(report.traffic.messages_sent(), k - 1);
}

Task<void> gather_program(Ctx& ctx, std::vector<std::uint64_t>* out) {
  const auto values = co_await gather<std::uint64_t>(ctx, 0, 1, ctx.id() * 10);
  if (ctx.id() == 0) {
    (*out)[0] = std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  }
}

TEST_P(CollectivesSweep, GatherCollectsAllContributions) {
  const std::uint32_t k = GetParam();
  std::vector<std::uint64_t> out(k, 0);
  Engine engine(basic_config(k));
  const RunReport report = engine.run([&out](Ctx& ctx) { return gather_program(ctx, &out); });
  EXPECT_EQ(out[0], 10ULL * k * (k - 1) / 2);
  EXPECT_EQ(report.traffic.messages_sent(), k - 1);
}

Task<void> reduce_program(Ctx& ctx, std::vector<std::uint64_t>* out) {
  const std::uint64_t m = co_await reduce<std::uint64_t>(
      ctx, 0, 1, ctx.id() + 1, [](std::uint64_t a, std::uint64_t b) { return a > b ? a : b; });
  (*out)[ctx.id()] = m;
}

TEST_P(CollectivesSweep, ReduceMaxAtRoot) {
  const std::uint32_t k = GetParam();
  std::vector<std::uint64_t> out(k, 0);
  Engine engine(basic_config(k));
  (void)engine.run([&out](Ctx& ctx) { return reduce_program(ctx, &out); });
  EXPECT_EQ(out[0], k);  // max of 1..k
}

Task<void> all_gather_program(Ctx& ctx, std::vector<std::uint64_t>* out) {
  const auto values = co_await all_gather<std::uint64_t>(ctx, 0, 10, ctx.id());
  std::uint64_t sum = 0;
  for (std::uint64_t v : values) sum += v;
  (*out)[ctx.id()] = sum;
}

TEST_P(CollectivesSweep, AllGatherGivesEveryoneEverything) {
  const std::uint32_t k = GetParam();
  std::vector<std::uint64_t> out(k, 0);
  Engine engine(basic_config(k));
  (void)engine.run([&out](Ctx& ctx) { return all_gather_program(ctx, &out); });
  for (std::uint64_t v : out) EXPECT_EQ(v, static_cast<std::uint64_t>(k) * (k - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectivesSweep, ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u, 33u));

// --- chunked bandwidth end-to-end ---------------------------------------------------

Task<void> big_transfer(Ctx& ctx, std::size_t words, std::vector<std::uint64_t>* out) {
  if (ctx.id() == 0) {
    std::vector<std::uint64_t> payload(words, 9);
    ctx.send_value(1, 1, payload);
  } else {
    const auto payload = co_await recv_value<std::vector<std::uint64_t>>(ctx, 1);
    (*out)[1] = payload.size();
  }
}

TEST(Engine, ChunkedTransferTakesProportionalRounds) {
  auto config = basic_config(2);
  config.bandwidth = BandwidthPolicy::Chunked;
  config.bits_per_round = 64;
  Engine engine(config);
  std::vector<std::uint64_t> out(2, 0);
  constexpr std::size_t kWords = 100;
  const RunReport report =
      engine.run([&out](Ctx& ctx) { return big_transfer(ctx, kWords, &out); });
  EXPECT_EQ(out[1], kWords);
  // payload = varint length (1-2 bytes) + 100*8 bytes = ~6400 bits -> ~100 rounds.
  EXPECT_GE(report.rounds, kWords);
  EXPECT_LE(report.rounds, kWords + 5);
}

// --- executor equivalence ------------------------------------------------------------

Task<void> mixed_workload(Ctx& ctx, std::vector<std::uint64_t>* out) {
  // Use randomness, messaging, and nesting; result must be identical under
  // both executors.
  std::uint64_t acc = ctx.rng().below(1000);
  const auto values = co_await all_gather<std::uint64_t>(ctx, 0, 1, acc);
  std::uint64_t sum = 0;
  for (std::uint64_t v : values) sum += v;
  co_await ctx.round();
  const std::uint64_t extra = co_await helper_waits(ctx, sum);
  (*out)[ctx.id()] = extra;
}

TEST(Engine, ParallelExecutorMatchesSequential) {
  constexpr std::uint32_t k = 8;
  std::vector<std::uint64_t> seq_out(k, 0), par_out(k, 0);

  auto config = basic_config(k);
  Engine seq_engine(config);
  const RunReport seq_report =
      seq_engine.run([&seq_out](Ctx& ctx) { return mixed_workload(ctx, &seq_out); });

  config.parallel = true;
  config.threads = 4;
  Engine par_engine(config);
  const RunReport par_report =
      par_engine.run([&par_out](Ctx& ctx) { return mixed_workload(ctx, &par_out); });

  EXPECT_EQ(seq_out, par_out);
  EXPECT_EQ(seq_report.rounds, par_report.rounds);
  EXPECT_EQ(seq_report.traffic.messages_sent(), par_report.traffic.messages_sent());
  EXPECT_EQ(seq_report.traffic.bits_sent(), par_report.traffic.bits_sent());
}

// --- cost model -----------------------------------------------------------------------

TEST(CostModel, LatencyDominatedRun) {
  RunReport report;
  report.rounds = 100;
  report.critical_path_comp_ns = 50'000;  // 50 µs
  CostModelConfig config;
  config.alpha_us = 25.0;
  const SimCost cost = bsp_cost(report, config);
  EXPECT_NEAR(cost.latency_sec, 100 * 25e-6, 1e-12);
  EXPECT_NEAR(cost.compute_sec, 50e-6, 1e-12);
  EXPECT_NEAR(cost.total_sec, cost.latency_sec + cost.compute_sec, 1e-15);
}

TEST(CostModel, ComputeScale) {
  RunReport report;
  report.rounds = 1;
  report.critical_path_comp_ns = 1'000'000'000;  // 1 s
  CostModelConfig config;
  config.alpha_us = 0.0;
  config.compute_scale = 0.5;
  EXPECT_NEAR(bsp_cost(report, config).total_sec, 0.5, 1e-12);
}

TEST(Engine, MeasuredComputeIsPositiveWhenEnabled) {
  auto config = basic_config(2);
  config.measure_compute = true;
  Engine engine(config);
  std::vector<std::uint64_t> out(2, 0);
  const RunReport report = engine.run([&out](Ctx& ctx) { return ping_pong(ctx, &out); });
  EXPECT_GT(report.critical_path_comp_ns, 0u);
  EXPECT_GE(report.total_comp_ns, report.critical_path_comp_ns);
  EXPECT_EQ(report.round_max_comp_ns.size(), report.rounds);
}

// --- misc engine invariants -------------------------------------------------------------

TEST(Engine, WorldSizeZeroRejected) {
  EngineConfig config;
  config.world_size = 0;
  EXPECT_THROW(Engine{config}, InvariantError);
}

Task<void> staggered_finish(Ctx& ctx) {
  for (std::uint32_t i = 0; i < ctx.id(); ++i) co_await ctx.round();
}

TEST(Engine, MachinesMayFinishAtDifferentRounds) {
  Engine engine(basic_config(5));
  const RunReport report = engine.run([](Ctx& ctx) { return staggered_finish(ctx); });
  // slowest machine (id 4) needs 4 barriers + final resume = 5 supersteps.
  EXPECT_EQ(report.rounds, 5u);
}

}  // namespace
}  // namespace dknn

// Tests for the observability layer (src/obs/): log-linear histogram
// bucket math (golden boundaries, relative-error bound, shard-merge
// equivalence), counter/gauge/histogram concurrency (the TSan leg hammers
// the sharded cells from many threads), registry snapshot/exposition
// invariants (monotone cumulative ladder, hits+misses==queries at the
// facade), tracer sampling/ring semantics — and the contract everything
// rests on: metrics and tracing change no answer byte.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/knn_service.hpp"
#include "data/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rng/rng.hpp"

namespace dknn::obs {
namespace {

/// Restores the registry's enabled flag (tests toggle it).
class EnabledGuard {
 public:
  EnabledGuard() : was_(registry().enabled()) {}
  ~EnabledGuard() { registry().set_enabled(was_); }

 private:
  bool was_;
};

// --- bucket math -------------------------------------------------------------

TEST(ObsBuckets, SmallValuesMapExactly) {
  for (std::uint64_t v = 0; v < kSubBuckets; ++v) {
    EXPECT_EQ(bucket_index(v), v);
    EXPECT_EQ(bucket_lo(v), v);
    EXPECT_EQ(bucket_width(v), 1u);
  }
}

TEST(ObsBuckets, GoldenBoundaries) {
  // First octave bucket: 64 lands in bucket 64 with lo=64, width=1.
  EXPECT_EQ(bucket_index(64), kSubBuckets);
  EXPECT_EQ(bucket_lo(kSubBuckets), 64u);
  EXPECT_EQ(bucket_width(kSubBuckets), 1u);
  // Last bucket of the [64,128) octave.
  EXPECT_EQ(bucket_index(127), kSubBuckets + 63);
  // 128 starts the next octave: width doubles to 2.
  EXPECT_EQ(bucket_index(128), kSubBuckets + 64);
  EXPECT_EQ(bucket_lo(kSubBuckets + 64), 128u);
  EXPECT_EQ(bucket_width(kSubBuckets + 64), 2u);
  EXPECT_EQ(bucket_index(129), kSubBuckets + 64);  // same 2-wide bucket
  EXPECT_EQ(bucket_index(130), kSubBuckets + 65);
  // One full octave above: 256 → width 4.
  EXPECT_EQ(bucket_lo(bucket_index(256)), 256u);
  EXPECT_EQ(bucket_width(bucket_index(256)), 4u);
  // A big power of two lands on its own bucket boundary.
  EXPECT_EQ(bucket_lo(bucket_index(std::uint64_t{1} << 30)), std::uint64_t{1} << 30);
  // Values at/above the clamp octave collapse into the last bucket.
  EXPECT_EQ(bucket_index(std::uint64_t{1} << kMaxOctave), kHistogramBuckets - 1);
  EXPECT_EQ(bucket_index(~std::uint64_t{0}), kHistogramBuckets - 1);
  // Bucket lows are strictly increasing across the whole ladder.
  for (std::size_t i = 1; i < kHistogramBuckets; ++i) {
    EXPECT_LT(bucket_lo(i - 1), bucket_lo(i)) << "at bucket " << i;
  }
}

TEST(ObsBuckets, RoundTripAndRelativeErrorBound) {
  // Property: every value maps into a bucket that covers it, and the
  // bucket's representative is within 1/128 relative error.
  Rng rng(7);
  std::vector<std::uint64_t> values;
  for (std::uint32_t shift = 0; shift < kMaxOctave; ++shift) {
    values.push_back(std::uint64_t{1} << shift);
    values.push_back((std::uint64_t{1} << shift) + rng.below((std::uint64_t{1} << shift) | 1));
  }
  for (int i = 0; i < 2000; ++i) values.push_back(rng.below(std::uint64_t{1} << 40));
  for (const std::uint64_t v : values) {
    const std::size_t b = bucket_index(v);
    ASSERT_LT(b, kHistogramBuckets);
    EXPECT_LE(bucket_lo(b), v);
    EXPECT_LT(v, bucket_lo(b) + bucket_width(b));
    const auto rep = static_cast<double>(bucket_representative(b));
    const auto exact = static_cast<double>(v);
    if (v > 0) {
      EXPECT_LE(std::abs(rep - exact) / exact, 1.0 / 128.0) << "v=" << v;
    }
  }
}

// --- instruments -------------------------------------------------------------

TEST(ObsInstruments, CounterGaugeBasics) {
  const EnabledGuard guard;
  registry().set_enabled(true);
  Counter& c = registry().counter("test_obs_counter_total", "test");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge& g = registry().gauge("test_obs_gauge", "test");
  g.reset();
  g.add(10);
  g.sub(3);
  EXPECT_EQ(g.value(), 7);
  g.sub(20);
  EXPECT_EQ(g.value(), -13);  // deltas may transiently dip below zero

  registry().set_enabled(false);
  c.add(100);
  g.add(100);
  EXPECT_EQ(c.value(), 42u);  // disabled = one branch, no mutation
  EXPECT_EQ(g.value(), -13);
}

TEST(ObsInstruments, HistogramMergeOfShardsEqualsSingleShard) {
  const EnabledGuard guard;
  registry().set_enabled(true);
  // The same sample set recorded single-threaded (one shard) and from many
  // threads (spread over shards) must merge to identical totals & buckets.
  Rng rng(11);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 4000; ++i) samples.push_back(rng.below(std::uint64_t{1} << 34));

  Histogram& single = registry().histogram("test_obs_hist_single_ns", "test");
  single.reset();
  for (const std::uint64_t v : samples) single.record(v);

  Histogram& sharded = registry().histogram("test_obs_hist_sharded_ns", "test");
  sharded.reset();
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = t; i < samples.size(); i += kThreads) sharded.record(samples[i]);
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(single.count(), samples.size());
  EXPECT_EQ(sharded.count(), single.count());
  EXPECT_EQ(sharded.sum(), single.sum());
  EXPECT_EQ(sharded.nonzero_buckets(), single.nonzero_buckets());
}

TEST(ObsInstruments, ConcurrentIncrementsAreExact) {
  // The TSan ctest leg runs this file: relaxed sharded cells must be
  // data-race-free and lose no increments.
  const EnabledGuard guard;
  registry().set_enabled(true);
  Counter& c = registry().counter("test_obs_concurrent_total", "test");
  Gauge& g = registry().gauge("test_obs_concurrent_gauge", "test");
  Histogram& h = registry().histogram("test_obs_concurrent_ns", "test");
  c.reset();
  g.reset();
  h.reset();
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add();
        g.add(1);
        g.sub(1);
        h.record(i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
}

TEST(ObsInstruments, QuantilesLandOnRepresentatives) {
  const EnabledGuard guard;
  registry().set_enabled(true);
  Histogram& h = registry().histogram("test_obs_quantile_ns", "test");
  h.reset();
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v * 1000);  // 1µs .. 1ms
  const MetricsSnapshot snap = registry().snapshot();
  const HistogramSnapshot* hs = snap.find_histogram("test_obs_quantile_ns");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 1000u);
  // Ceil-nearest-rank + ≤1/128 bucket error around the exact answers.
  EXPECT_NEAR(static_cast<double>(hs->quantile(0.5)), 500e3, 500e3 / 64.0);
  EXPECT_NEAR(static_cast<double>(hs->quantile(0.95)), 950e3, 950e3 / 64.0);
  EXPECT_NEAR(static_cast<double>(hs->quantile(1.0)), 1000e3, 1000e3 / 64.0);
  EXPECT_EQ(hs->quantile(0.0), hs->quantile(1.0 / 1000.0));  // rank clamps to 1
}

// --- exposition --------------------------------------------------------------

TEST(ObsExposition, PrometheusLadderIsCumulativeAndMonotone) {
  const EnabledGuard guard;
  registry().set_enabled(true);
  Histogram& h = registry().histogram("test_obs_prom_ns", "ladder test");
  h.reset();
  Rng rng(3);
  for (int i = 0; i < 500; ++i) h.record(rng.below(std::uint64_t{1} << 20));
  const std::string text = registry().prometheus_text();
  EXPECT_NE(text.find("# TYPE test_obs_prom_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_ns_bucket{le=\"+Inf\"} 500"), std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_ns_count 500"), std::string::npos);

  // The machine-checkable version of the same invariant (what
  // bench/check_metrics_schema.py asserts on real runs): cumulative
  // counts never decrease along the ladder and +Inf == count.
  const MetricsSnapshot snap = registry().snapshot();
  const HistogramSnapshot* hs = snap.find_histogram("test_obs_prom_ns");
  ASSERT_NE(hs, nullptr);
  std::uint64_t cumulative = 0;
  std::size_t last_index = 0;
  for (const auto& [index, count] : hs->buckets) {
    EXPECT_GE(index, last_index);
    EXPECT_GT(count, 0u);
    cumulative += count;
    last_index = index;
  }
  EXPECT_EQ(cumulative, hs->count);
}

TEST(ObsExposition, JsonMentionsEveryKind) {
  const EnabledGuard guard;
  registry().set_enabled(true);
  registry().counter("test_obs_json_total", "c").add();
  registry().gauge("test_obs_json_gauge", "g").add(5);
  registry().histogram("test_obs_json_ns", "h").record(1234);
  const std::string json = registry().json_text();
  EXPECT_NE(json.find("\"test_obs_json_total\""), std::string::npos);
  EXPECT_NE(json.find("\"test_obs_json_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test_obs_json_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
}

// --- tracer ------------------------------------------------------------------

TEST(ObsTracer, SamplingGateAndForce) {
  Tracer tracer(0, 8);
  EXPECT_EQ(tracer.begin(false), nullptr);  // off, unforced
  auto forced = tracer.begin(true);
  ASSERT_NE(forced, nullptr);
  tracer.finish(std::move(forced));
  EXPECT_EQ(tracer.recent().size(), 1u);

  Tracer sampled(2, 8);  // every 2nd
  int traced = 0;
  for (int i = 0; i < 10; ++i) {
    if (auto b = sampled.begin(false); b != nullptr) {
      ++traced;
      sampled.finish(std::move(b));
    }
  }
  EXPECT_EQ(traced, 5);
}

TEST(ObsTracer, RingKeepsNewestAndExportsBothFormats) {
  Tracer tracer(1, 4);
  for (int i = 0; i < 10; ++i) {
    auto b = tracer.begin(false);
    ASSERT_NE(b, nullptr);
    b->add_span("stage", now_ns(), 5, static_cast<std::uint64_t>(i));
    tracer.finish(std::move(b));
  }
  const std::vector<QueryTrace> recent = tracer.recent();
  ASSERT_EQ(recent.size(), 4u);  // capacity bound
  for (std::size_t i = 1; i < recent.size(); ++i) {
    EXPECT_LT(recent[i - 1].id, recent[i].id);  // oldest first
  }
  EXPECT_EQ(recent.back().id, 9u);  // newest retained
  const std::string json = Tracer::to_json(recent);
  EXPECT_NE(json.find("\"traces\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\""), std::string::npos);
  const std::string chrome = Tracer::to_chrome(recent);
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
}

// --- the contract: observability changes no answer byte ----------------------

TEST(ObsParity, TracedAndUntracedAnswersAreByteIdentical) {
  const EnabledGuard guard;
  Rng rng(23);
  const auto dataset = uniform_points(2000, 6, 100.0, rng);
  const auto queries = uniform_points(64, 6, 100.0, rng);

  const auto run = [&](bool obs_on, std::uint64_t sample_every,
                       bool force) -> std::vector<std::vector<Key>> {
    registry().set_enabled(obs_on);
    KnnServiceBuilder builder;
    builder.machines(4).ell(8).seed(5).live().trace(sample_every, 64).dataset(dataset);
    KnnService service = builder.build();
    std::vector<std::vector<Key>> out;
    QueryOptions options;
    options.trace = force;
    for (const PointD& q : queries) out.push_back(service.query(q, options).keys);
    const BatchQueryResult batch = service.query_batch(queries, options);
    for (const QueryResult& r : batch.per_query) out.push_back(r.keys);
    if (force) EXPECT_FALSE(service.recent_traces().empty());
    return out;
  };

  const auto baseline = run(false, 0, false);    // observability fully off
  const auto metrics_on = run(true, 0, false);   // metrics, no tracing
  const auto traced = run(true, 1, true);        // metrics + every query traced
  EXPECT_EQ(baseline, metrics_on);
  EXPECT_EQ(baseline, traced);
}

/// The facade counter invariant the schema checker enforces on benches:
/// after a quiescent query-only workload, hits + misses == queries.
TEST(ObsParity, FacadeCountersReconcile) {
  const EnabledGuard guard;
  registry().set_enabled(true);
  const MetricsSnapshot before = registry().snapshot();
  const auto value_of = [](const MetricsSnapshot& snap, std::string_view name) {
    const CounterSnapshot* c = snap.find_counter(name);
    return c != nullptr ? c->value : 0;
  };

  Rng rng(29);
  KnnServiceBuilder builder;
  builder.machines(2).ell(4).seed(9).cache_capacity(256).dataset(
      uniform_points(500, 4, 50.0, rng));
  KnnService service = builder.build();
  const auto queries = uniform_points(32, 4, 50.0, rng);
  for (int round = 0; round < 3; ++round) {  // later rounds hit the cache
    for (const PointD& q : queries) (void)service.query(q);
  }

  const MetricsSnapshot after = registry().snapshot();
  const std::uint64_t queries_delta =
      value_of(after, "dknn_service_queries_total") - value_of(before, "dknn_service_queries_total");
  const std::uint64_t hits_delta = value_of(after, "dknn_service_cache_hits_total") -
                                   value_of(before, "dknn_service_cache_hits_total");
  const std::uint64_t misses_delta = value_of(after, "dknn_service_cache_misses_total") -
                                     value_of(before, "dknn_service_cache_misses_total");
  EXPECT_EQ(queries_delta, 96u);
  EXPECT_EQ(hits_delta + misses_delta, queries_delta);
  EXPECT_GT(hits_delta, 0u);  // rounds 2-3 hit
}

}  // namespace
}  // namespace dknn::obs

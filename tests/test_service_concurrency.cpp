// Concurrency suite for the KnnService facade's lock-free read path: the
// coalescing seat under arrival storms (directed), and full-service fuzzes
// where readers race inserts, erases, background compaction and — in the
// fault-tolerant variant — machine kills/revives/recoveries.  Correctness
// stays exact: every recorded answer is verified post-join against a
// brute-force oracle over the membership at the answer's epoch (restricted
// to the machines its own coverage says answered).  Small workloads on
// purpose: the suite runs under TSan in CI.
//
// Oracle-mapping discipline (the part that makes "which state did this
// answer see?" well-posed under races): membership-changing mutators
// serialize on a test-side mutex and record (published epoch, live set)
// history entries; readers never take that mutex.  Compaction publishes
// epochs too but never changes membership, so the live set at epoch E is
// the entry with the greatest recorded epoch ≤ E.  In the fault-tolerant
// fuzz the eraser only targets points homed on ALIVE machines — erasing
// from a dead machine changes membership *without* advancing the data
// epoch (the tombstone is pended), which would make two history entries
// share an epoch and the mapping ambiguous; it is also what keeps revive
// membership-neutral (no pending erases to apply).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/knn_service.hpp"
#include "data/generators.hpp"
#include "data/metric.hpp"
#include "parity_support.hpp"
#include "rng/rng.hpp"
#include "seq/select.hpp"

namespace dknn {
namespace {

using testing_support::expect_same_keys;

constexpr MetricKind kKind = MetricKind::SquaredEuclidean;

/// Brute-force top-ℓ over an explicit membership set — the same oracle
/// shape every parity suite anchors on.
std::vector<Key> member_oracle(const std::unordered_map<PointId, PointD>& shadow,
                               const std::vector<PointId>& members, const PointD& query,
                               std::uint64_t ell) {
  std::vector<Key> pool;
  pool.reserve(members.size());
  for (const PointId id : members) {
    pool.push_back(Key{encode_distance(metric_distance(kKind, shadow.at(id), query)), id});
  }
  return top_ell_smallest(std::span<const Key>(pool), ell);
}

bool same_keys(const std::vector<Key>& want, const std::vector<Key>& got) {
  if (want.size() != got.size()) return false;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (want[i].rank != got[i].rank || want[i].id != got[i].id) return false;
  }
  return true;
}

// --- directed: the facade coalescing seat ------------------------------------

TEST(ServiceConcurrency, SeatStormRespectsCapAndStaysByteExact) {
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kPerThread = 40;
  constexpr std::size_t kCap = 4;
  Rng rng(61);
  KnnService service = KnnServiceBuilder()
                           .machines(3)
                           .ell(5)
                           .metric(kKind)
                           .seed(7)
                           .coalesce(kCap)  // max_delay 0: storms only
                           .dataset(uniform_points(80, 2, 50.0, rng))
                           .build();
  const auto query_pool = uniform_points(10, 2, 50.0, rng);
  std::vector<std::vector<Key>> want;
  for (const PointD& q : query_pool) want.push_back(service.query(q).keys);

  std::atomic<std::size_t> ready{0};
  std::atomic<std::size_t> cap_violations{0};
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }  // start the storm together
      Rng qrng(900 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t pick = qrng.below(query_pool.size());
        const QueryResult result = service.query(query_pool[pick]);
        if (result.batch_size < 1 || result.batch_size > kCap) cap_violations.fetch_add(1);
        if (!same_keys(want[pick], result.keys)) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cap_violations.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, query_pool.size() + kThreads * kPerThread);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
}

TEST(ServiceConcurrency, MixedPerCallOverridesCoalesceByteExact) {
  // Batch-mates with different per-call ℓ/metric ride the same seat but
  // score in separate groups: every answer must match the dedicated
  // service built with its effective knobs, byte for byte, and the
  // extended cache key must keep the variants from colliding mid-storm.
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kPerThread = 30;
  Rng rng(62);
  const auto points = uniform_points(90, 3, 50.0, rng);
  const auto build = [&](std::uint64_t ell, MetricKind kind) {
    return KnnServiceBuilder()
        .machines(3)
        .ell(ell)
        .metric(kind)
        .seed(9)
        .coalesce(8, std::chrono::microseconds{200})  // wait for mixed company
        .cache_capacity(64)
        .dataset(points)
        .build();
  };
  KnnService service = build(4, kKind);
  KnnService wider_ref = build(7, kKind);
  KnnService manhattan_ref = build(4, MetricKind::Manhattan);

  const auto query_pool = uniform_points(8, 3, 50.0, rng);
  // Three reference families, one per thread flavor.
  std::vector<std::vector<Key>> want_canonical;
  std::vector<std::vector<Key>> want_wider;
  std::vector<std::vector<Key>> want_manhattan;
  for (const PointD& q : query_pool) {
    want_canonical.push_back(service.query(q).keys);
    want_wider.push_back(wider_ref.query(q).keys);
    want_manhattan.push_back(manhattan_ref.query(q).keys);
  }

  std::atomic<std::size_t> ready{0};
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      QueryOptions options;
      const std::vector<std::vector<Key>>* want = &want_canonical;
      if (t % 3 == 1) {
        options.ell = 7;
        want = &want_wider;
      } else if (t % 3 == 2) {
        options.metric = MetricKind::Manhattan;
        want = &want_manhattan;
      }
      Rng qrng(950 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t pick = qrng.below(query_pool.size());
        const QueryResult result = service.query(query_pool[pick], options);
        if (!same_keys((*want)[pick], result.keys)) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
}

TEST(ServiceConcurrency, InterleavedQueryAndBatchPathsStayByteExact) {
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kRounds = 25;
  Rng rng(63);
  KnnService service = KnnServiceBuilder()
                           .machines(2)
                           .ell(4)
                           .metric(kKind)
                           .seed(11)
                           .coalesce(4, std::chrono::microseconds{50})
                           .cache_capacity(64)
                           .dataset(uniform_points(70, 2, 50.0, rng))
                           .build();
  const auto query_pool = uniform_points(9, 2, 50.0, rng);
  std::vector<std::vector<Key>> want;
  for (const PointD& q : query_pool) want.push_back(service.query(q).keys);

  std::atomic<std::size_t> ready{0};
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      Rng qrng(970 + t);
      for (std::size_t round = 0; round < kRounds; ++round) {
        if ((round + t) % 2 == 0) {
          const std::size_t pick = qrng.below(query_pool.size());
          if (!same_keys(want[pick], service.query(query_pool[pick]).keys)) {
            mismatches.fetch_add(1);
          }
        } else {
          std::vector<std::size_t> picks(3);
          std::vector<PointD> block;
          for (auto& pick : picks) {
            pick = qrng.below(query_pool.size());
            block.push_back(query_pool[pick]);
          }
          const BatchQueryResult results = service.query_batch(block);
          for (std::size_t i = 0; i < picks.size(); ++i) {
            if (!same_keys(want[picks[i]], results.per_query[i].keys)) mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
}

// --- fuzz: lock-free reads vs live mutation ----------------------------------

TEST(ServiceConcurrency, ReadersRaceWritersAndCompactionByteExact) {
  constexpr std::size_t kDim = 2;
  constexpr std::uint64_t kEll = 5;
  constexpr std::size_t kQueryThreads = 2;
  constexpr std::size_t kQueriesPerThread = 50;
  constexpr std::size_t kBatchRounds = 25;
  constexpr int kInserts = 160;
  constexpr int kErases = 100;

  Rng rng(71);
  BatchScoringConfig scoring;
  scoring.threads = 2;  // the service owns a pool → maybe_compact() goes background
  CompactionConfig compaction;
  compaction.max_dead_fraction = 0.15;
  compaction.min_segment_points = 24;
  KnnService service = KnnServiceBuilder()
                           .machines(3)
                           .ell(kEll)
                           .metric(kKind)
                           .seed(13)
                           .dim(kDim)
                           .live()
                           .scoring(scoring)
                           .compaction(compaction)
                           .coalesce(4)
                           .cache_capacity(128)
                           .build();

  std::unordered_map<PointId, PointD> shadow;
  std::vector<PointId> live;
  // (published epoch, live ids) after every membership change; strictly
  // increasing epochs (see the file comment for why that holds).
  std::vector<std::pair<std::uint64_t, std::vector<PointId>>> history;
  std::mutex test_mutex;  // mutators only — readers never touch it

  {
    const std::lock_guard<std::mutex> lock(test_mutex);
    Rng seed_rng(72);
    for (PointId id = 1; id <= 48; ++id) {
      const PointD p = uniform_points(1, kDim, 50.0, seed_rng)[0];
      shadow.emplace(id, p);
      const std::uint64_t epoch = service.insert(p, id);
      live.push_back(id);
      if (id == 48) history.emplace_back(epoch, live);
    }
  }
  const auto query_pool = uniform_points(16, kDim, 50.0, rng);

  std::thread inserter([&] {
    Rng irng(73);
    PointId next_id = 1000;
    for (int step = 0; step < kInserts; ++step) {
      const PointD p = uniform_points(1, kDim, 50.0, irng)[0];
      const std::lock_guard<std::mutex> lock(test_mutex);
      const PointId id = next_id++;
      shadow.emplace(id, p);
      const std::uint64_t epoch = service.insert(p, id);
      live.push_back(id);
      history.emplace_back(epoch, live);
    }
  });
  std::thread eraser([&] {
    Rng erng(74);
    for (int step = 0; step < kErases; ++step) {
      const std::lock_guard<std::mutex> lock(test_mutex);
      if (live.size() < 8) continue;  // keep the set interesting
      const std::size_t victim = erng.below(live.size());
      const std::optional<std::uint64_t> epoch = service.erase(live[victim]);
      ASSERT_TRUE(epoch.has_value());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      history.emplace_back(*epoch, live);
    }
  });
  std::atomic<bool> stop_compacting{false};
  std::thread compactor([&] {
    // No test mutex: installs land whenever they land — they advance
    // epochs but never membership, so the oracle mapping is unaffected.
    while (!stop_compacting.load()) {
      (void)service.maybe_compact();
      std::this_thread::yield();
    }
  });

  struct Recorded {
    std::size_t query_index = 0;
    QueryResult result;
  };
  std::vector<std::vector<Recorded>> recorded(kQueryThreads + 1);
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kQueryThreads; ++t) {
    readers.emplace_back([&, t] {
      Rng qrng(7500 + t);
      for (std::size_t i = 0; i < kQueriesPerThread; ++i) {
        const std::size_t pick = qrng.below(query_pool.size());
        recorded[t].push_back(Recorded{pick, service.query(query_pool[pick])});
      }
    });
  }
  readers.emplace_back([&] {
    Rng qrng(7600);
    for (std::size_t round = 0; round < kBatchRounds; ++round) {
      std::vector<std::size_t> picks(3);
      std::vector<PointD> block;
      for (auto& pick : picks) {
        pick = qrng.below(query_pool.size());
        block.push_back(query_pool[pick]);
      }
      BatchQueryResult results = service.query_batch(block);
      for (std::size_t i = 0; i < picks.size(); ++i) {
        recorded[kQueryThreads].push_back(
            Recorded{picks[i], std::move(results.per_query[i])});
      }
    }
  });

  inserter.join();
  eraser.join();
  for (auto& thread : readers) thread.join();
  stop_compacting.store(true);
  compactor.join();

  const auto live_at = [&](std::uint64_t epoch) -> const std::vector<PointId>& {
    std::size_t best = 0;
    for (std::size_t i = 0; i < history.size(); ++i) {
      if (history[i].first <= epoch) best = i;
    }
    return history[best].second;
  };
  std::size_t verified = 0;
  for (std::size_t t = 0; t < recorded.size(); ++t) {
    for (const Recorded& rec : recorded[t]) {
      ASSERT_NO_FATAL_FAILURE(expect_same_keys(
          member_oracle(shadow, live_at(rec.result.epoch), query_pool[rec.query_index], kEll),
          rec.result.keys,
          "reader " + std::to_string(t) + " epoch " + std::to_string(rec.result.epoch)));
      EXPECT_TRUE(rec.result.coverage.complete());
      ++verified;
    }
  }
  EXPECT_EQ(verified, kQueryThreads * kQueriesPerThread + kBatchRounds * 3);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, verified);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
}

TEST(ServiceConcurrency, FaultTolerantReadersSurviveKillRecoverChurn) {
  constexpr std::size_t kDim = 2;
  constexpr std::uint64_t kEll = 4;
  constexpr std::uint32_t kMachines = 3;
  constexpr std::size_t kQueryThreads = 2;
  constexpr std::size_t kQueriesPerThread = 40;
  constexpr std::size_t kBatchRounds = 20;
  constexpr int kInserts = 120;
  constexpr int kErases = 70;
  constexpr int kChaosCycles = 10;

  Rng rng(81);
  KnnService service = KnnServiceBuilder()
                           .machines(kMachines)
                           .ell(kEll)
                           .metric(kKind)
                           .seed(15)
                           .dim(kDim)
                           .live()
                           .fault_tolerant()
                           .coalesce(4)
                           .cache_capacity(64)
                           .build();

  std::unordered_map<PointId, PointD> shadow;
  // Per-machine membership after every membership change, keyed by the
  // published epoch.  Kill/revive change neither membership nor the data
  // epoch (the eraser's alive-only rule keeps revive erase-free), so they
  // record nothing; recovery re-shards, so it does.
  std::vector<std::pair<std::uint64_t, std::vector<std::vector<PointId>>>> history;
  std::vector<bool> alive(kMachines, true);
  std::vector<bool> retired(kMachines, false);
  std::mutex test_mutex;  // mutators + chaos only — readers never touch it

  const auto snapshot_membership = [&] {
    std::vector<std::vector<PointId>> members(kMachines);
    for (std::size_t m = 0; m < kMachines; ++m) {
      if (!retired[m]) members[m] = service.live_ids_on(m);
    }
    return members;
  };

  {
    const std::lock_guard<std::mutex> lock(test_mutex);
    Rng seed_rng(82);
    for (PointId id = 1; id <= 36; ++id) {
      const PointD p = uniform_points(1, kDim, 50.0, seed_rng)[0];
      shadow.emplace(id, p);
      const std::uint64_t epoch = service.insert(p, id);
      if (id == 36) history.emplace_back(epoch, snapshot_membership());
    }
  }
  const auto query_pool = uniform_points(12, kDim, 50.0, rng);

  std::thread inserter([&] {
    Rng irng(83);
    PointId next_id = 2000;
    for (int step = 0; step < kInserts; ++step) {
      const PointD p = uniform_points(1, kDim, 50.0, irng)[0];
      const std::lock_guard<std::mutex> lock(test_mutex);
      const PointId id = next_id++;
      shadow.emplace(id, p);
      const std::uint64_t epoch = service.insert(p, id);
      history.emplace_back(epoch, snapshot_membership());
    }
  });
  std::thread eraser([&] {
    Rng erng(84);
    for (int step = 0; step < kErases; ++step) {
      const std::lock_guard<std::mutex> lock(test_mutex);
      // Victims come from ALIVE machines only (see the file comment).
      std::vector<PointId> candidates;
      for (std::size_t m = 0; m < kMachines; ++m) {
        if (!alive[m] || retired[m]) continue;
        const auto ids = service.live_ids_on(m);
        candidates.insert(candidates.end(), ids.begin(), ids.end());
      }
      if (candidates.size() < 8) continue;
      const PointId victim = candidates[erng.below(candidates.size())];
      const std::optional<std::uint64_t> epoch = service.erase(victim);
      ASSERT_TRUE(epoch.has_value());
      history.emplace_back(*epoch, snapshot_membership());
    }
  });
  std::thread chaos([&] {
    Rng crng(85);
    int recoveries = 0;
    for (int cycle = 0; cycle < kChaosCycles; ++cycle) {
      std::size_t victim = kMachines;
      {
        const std::lock_guard<std::mutex> lock(test_mutex);
        std::vector<std::size_t> up;
        for (std::size_t m = 0; m < kMachines; ++m) {
          if (alive[m] && !retired[m]) up.push_back(m);
        }
        if (up.size() < 2) break;  // never strand the writers
        victim = up[crng.below(up.size())];
        service.kill_machine(victim);
        alive[victim] = false;
      }
      std::this_thread::yield();  // let readers see the degraded world
      {
        const std::lock_guard<std::mutex> lock(test_mutex);
        (void)service.compact_now();  // epoch churn between the flips
        if (recoveries < 1 && crng.below(100) < 30) {
          (void)service.recover_machine(victim);
          retired[victim] = true;
          alive[victim] = true;
          history.emplace_back(service.snapshot_epoch(), snapshot_membership());
          ++recoveries;
        } else {
          service.revive_machine(victim);
          alive[victim] = true;
        }
      }
    }
  });

  struct Recorded {
    std::size_t query_index = 0;
    QueryResult result;
  };
  std::vector<std::vector<Recorded>> recorded(kQueryThreads + 1);
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kQueryThreads; ++t) {
    readers.emplace_back([&, t] {
      Rng qrng(8500 + t);
      for (std::size_t i = 0; i < kQueriesPerThread; ++i) {
        const std::size_t pick = qrng.below(query_pool.size());
        recorded[t].push_back(Recorded{pick, service.query(query_pool[pick])});
      }
    });
  }
  readers.emplace_back([&] {
    Rng qrng(8600);
    for (std::size_t round = 0; round < kBatchRounds; ++round) {
      std::vector<std::size_t> picks(2);
      std::vector<PointD> block;
      for (auto& pick : picks) {
        pick = qrng.below(query_pool.size());
        block.push_back(query_pool[pick]);
      }
      BatchQueryResult results = service.query_batch(block);
      for (std::size_t i = 0; i < picks.size(); ++i) {
        recorded[kQueryThreads].push_back(
            Recorded{picks[i], std::move(results.per_query[i])});
      }
    }
  });

  inserter.join();
  eraser.join();
  chaos.join();
  for (auto& thread : readers) thread.join();

  const auto membership_at =
      [&](std::uint64_t epoch) -> const std::vector<std::vector<PointId>>& {
    std::size_t best = 0;
    for (std::size_t i = 0; i < history.size(); ++i) {
      if (history[i].first <= epoch) best = i;
    }
    return history[best].second;
  };
  std::size_t verified = 0;
  for (std::size_t t = 0; t < recorded.size(); ++t) {
    for (const Recorded& rec : recorded[t]) {
      // The answer is exact over exactly the machines its own coverage
      // says answered, at its own epoch.
      const auto& members = membership_at(rec.result.epoch);
      std::vector<PointId> covered;
      for (std::size_t m = 0; m < kMachines; ++m) {
        const auto& missing = rec.result.coverage.missing;
        if (std::find(missing.begin(), missing.end(), static_cast<std::uint32_t>(m)) !=
            missing.end()) {
          continue;
        }
        covered.insert(covered.end(), members[m].begin(), members[m].end());
      }
      ASSERT_NO_FATAL_FAILURE(expect_same_keys(
          member_oracle(shadow, covered, query_pool[rec.query_index], kEll), rec.result.keys,
          "reader " + std::to_string(t) + " epoch " + std::to_string(rec.result.epoch)));
      ++verified;
    }
  }
  EXPECT_EQ(verified, kQueryThreads * kQueriesPerThread + kBatchRounds * 2);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, verified);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
}

}  // namespace
}  // namespace dknn

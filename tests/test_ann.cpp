// Tests for the approximate search tier (src/ann/): NN-descent bulk
// builds and Debatty-style online inserts hit their recall targets
// against the brute-force oracle; erase tombstones are never returned;
// the exact rerank is bit-stable given the candidate set (and across
// ISAs); GraphSlot builds lazily exactly once; the serve integration
// (ScoringPolicy::Approx snapshots) survives an insert/erase/seal/compact
// churn fuzz with delta-buffer points always exact and deleted ids never
// resurfacing; and the KnnService facade routes QueryOptions::approx with
// cache-key separation from exact answers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

#include "ann/graph_search.hpp"
#include "ann/knn_graph.hpp"
#include "core/knn_service.hpp"
#include "data/generators.hpp"
#include "data/kernels.hpp"
#include "data/simd/dispatch.hpp"
#include "parity_support.hpp"
#include "rng/rng.hpp"
#include "serve/segment_store.hpp"

namespace dknn {
namespace {

using testing_support::expect_same_keys;

/// |answer ∩ oracle| / |oracle|, matched by id.
double recall_of(const std::vector<Key>& answer, const std::vector<Key>& oracle) {
  if (oracle.empty()) return 1.0;
  std::unordered_set<PointId> truth;
  for (const Key& k : oracle) truth.insert(k.id);
  std::size_t hit = 0;
  for (const Key& k : answer) hit += truth.count(k.id);
  return static_cast<double>(hit) / static_cast<double>(oracle.size());
}

FlatStore make_store(std::size_t n, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<PointD> points = uniform_points(n, dim, 100.0, rng);
  std::vector<PointId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<PointId>(i + 1);
  return FlatStore(points, ids);
}

TEST(AnnGraph, BulkBuildRecall) {
  const std::size_t n = 4000, dim = 8, ell = 16;
  const FlatStore store = make_store(n, dim, 7);
  ann::AnnConfig config;
  config.min_points = 0;
  const ann::KnnGraph graph(store, config);
  EXPECT_EQ(graph.covered(), n);
  EXPECT_EQ(graph.degree(), config.degree);
  EXPECT_GE(graph.build_iterations(), 1u);

  Rng rng(11);
  std::vector<PointD> queries = uniform_points(64, dim, 100.0, rng);
  ann::AnnSearchScratch scratch;
  KernelScratch kernel_scratch;
  double recall_sum = 0.0;
  for (const PointD& q : queries) {
    std::vector<Key> approx;
    ann::ann_top_ell(graph, q, ell, config.ef, config.metric, nullptr, approx, scratch,
                     kernel_scratch);
    const std::vector<Key> exact =
        fused_top_ell(store, q, ell, config.metric);
    recall_sum += recall_of(approx, exact);
    // Ranks are exact for whatever rows the walk surfaced: every returned
    // key must literally appear in the exact ranking of the whole store.
    std::vector<Key> full = fused_top_ell(store, q, n, config.metric);
    for (const Key& k : approx) {
      EXPECT_TRUE(std::find_if(full.begin(), full.end(), [&](const Key& f) {
                    return f.id == k.id && f.rank == k.rank;
                  }) != full.end());
    }
  }
  EXPECT_GE(recall_sum / static_cast<double>(queries.size()), 0.9);
}

TEST(AnnGraph, RerankIsExactGivenCandidates) {
  const std::size_t n = 2000, dim = 6, ell = 12;
  const FlatStore store = make_store(n, dim, 21);
  ann::AnnConfig config;
  const ann::KnnGraph graph(store, config);

  Rng rng(22);
  const std::vector<PointD> queries = uniform_points(16, dim, 100.0, rng);
  ann::AnnSearchScratch scratch;
  KernelScratch kernel_scratch;
  for (const PointD& q : queries) {
    // The candidate set the search will rerank, captured independently.
    std::vector<ann::AnnCandidate> cands;
    ann::ann_search_candidates(graph, q, std::max<std::size_t>(config.ef, ell), config.metric,
                               nullptr, cands, scratch);
    std::vector<Key> expected;
    {
      RangeTopEll scorer(store, q, ell, config.metric, kernel_scratch);
      std::vector<std::uint32_t> rows;
      for (const ann::AnnCandidate& c : cands) rows.push_back(c.row);
      std::sort(rows.begin(), rows.end());
      for (const std::uint32_t row : rows) scorer.score_range(row, row + 1);
      scorer.finish(expected);
    }
    std::vector<Key> actual;
    ann::ann_top_ell(graph, q, ell, config.ef, config.metric, nullptr, actual, scratch,
                     kernel_scratch);
    expect_same_keys(expected, actual, "rerank vs manual RangeTopEll over candidates");
  }
}

TEST(AnnGraph, FullBeamDegradesToExact) {
  // With ef ≥ n the walk can keep every live row it ever scores, so on a
  // connected graph the answer equals the brute scan, byte for byte.
  const std::size_t n = 500, dim = 4, ell = 10;
  const FlatStore store = make_store(n, dim, 33);
  ann::AnnConfig config;
  const ann::KnnGraph graph(store, config);
  Rng rng(34);
  ann::AnnSearchScratch scratch;
  KernelScratch kernel_scratch;
  for (const PointD& q : uniform_points(8, dim, 100.0, rng)) {
    std::vector<Key> approx;
    ann::ann_top_ell(graph, q, ell, n, config.metric, nullptr, approx, scratch,
                     kernel_scratch);
    const std::vector<Key> exact = fused_top_ell(store, q, ell, config.metric);
    expect_same_keys(exact, approx, "ef = n beam");
  }
}

TEST(AnnGraph, OnlineInsertRecall) {
  const std::size_t n = 2000, dim = 8, ell = 16;
  const FlatStore store = make_store(n, dim, 55);
  ann::AnnConfig config;
  ann::KnnGraph graph(store, config, ann::KnnGraph::OnlineTag::Online);
  EXPECT_EQ(graph.covered(), 0u);
  for (std::uint32_t row = 0; row < n; ++row) graph.insert(row);
  EXPECT_EQ(graph.covered(), n);

  Rng rng(56);
  ann::AnnSearchScratch scratch;
  KernelScratch kernel_scratch;
  double recall_sum = 0.0;
  const std::vector<PointD> queries = uniform_points(48, dim, 100.0, rng);
  for (const PointD& q : queries) {
    std::vector<Key> approx;
    ann::ann_top_ell(graph, q, ell, config.ef, config.metric, nullptr, approx, scratch,
                     kernel_scratch);
    recall_sum +=
        recall_of(approx, fused_top_ell(store, q, ell, config.metric));
  }
  EXPECT_GE(recall_sum / static_cast<double>(queries.size()), 0.85);
}

TEST(AnnGraph, EraseTombstonesNeverReturned) {
  const std::size_t n = 1500, dim = 8, ell = 16;
  const FlatStore store = make_store(n, dim, 77);
  ann::AnnConfig config;
  ann::KnnGraph graph(store, config);

  Rng rng(78);
  std::unordered_set<std::uint32_t> dead_rows;
  while (dead_rows.size() < n / 4) {
    const auto row = static_cast<std::uint32_t>(rng.below(n));
    graph.erase(row);
    graph.erase(row);  // idempotent
    dead_rows.insert(row);
  }
  EXPECT_EQ(graph.dead_count(), dead_rows.size());

  // Oracle over the survivors only.
  std::vector<PointD> live_points;
  std::vector<PointId> live_ids;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (dead_rows.count(i) != 0) continue;
    live_points.push_back(store.point(i));
    live_ids.push_back(store.id(i));
  }
  const FlatStore live_store(live_points, live_ids);

  ann::AnnSearchScratch scratch;
  KernelScratch kernel_scratch;
  double recall_sum = 0.0;
  const std::vector<PointD> queries = uniform_points(32, dim, 100.0, rng);
  for (const PointD& q : queries) {
    std::vector<Key> approx;
    ann::ann_top_ell(graph, q, ell, config.ef, config.metric, nullptr, approx, scratch,
                     kernel_scratch);
    for (const Key& k : approx) {
      EXPECT_EQ(dead_rows.count(static_cast<std::uint32_t>(k.id - 1)), 0u)
          << "tombstoned id " << k.id << " surfaced";
    }
    recall_sum +=
        recall_of(approx, fused_top_ell(live_store, q, ell, config.metric));
  }
  EXPECT_GE(recall_sum / static_cast<double>(queries.size()), 0.85);
}

TEST(AnnGraph, CrossIsaParity) {
  // Graph construction and the beam walk score through the SIMD dispatch
  // table, whose ISAs are byte-identical by contract (test_simd_parity) —
  // so forced-scalar answers must equal dispatched answers bit for bit.
  const std::size_t n = 1200, dim = 8, ell = 12;
  const FlatStore store = make_store(n, dim, 91);
  ann::AnnConfig config;
  Rng rng(92);
  const std::vector<PointD> queries = uniform_points(16, dim, 100.0, rng);

  std::vector<std::vector<Key>> dispatched;
  {
    const ann::KnnGraph graph(store, config);
    ann::AnnSearchScratch scratch;
    KernelScratch kernel_scratch;
    for (const PointD& q : queries) {
      std::vector<Key> keys;
      ann::ann_top_ell(graph, q, ell, config.ef, config.metric, nullptr, keys, scratch,
                       kernel_scratch);
      dispatched.push_back(std::move(keys));
    }
  }
  {
    simd::ScopedForceIsa forced(simd::Isa::Scalar);
    const ann::KnnGraph graph(store, config);
    ann::AnnSearchScratch scratch;
    KernelScratch kernel_scratch;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      std::vector<Key> keys;
      ann::ann_top_ell(graph, queries[i], ell, config.ef, config.metric, nullptr, keys,
                       scratch, kernel_scratch);
      expect_same_keys(dispatched[i], keys, "scalar vs dispatched ann answer");
    }
  }
}

TEST(AnnGraph, GraphSlotBuildsLazilyOnce) {
  const FlatStore store = make_store(600, 4, 13);
  ann::AnnConfig config;
  ann::GraphSlot slot(config);
  EXPECT_EQ(slot.peek(), nullptr);
  const ann::KnnGraph& first = slot.get_or_build(store);
  EXPECT_EQ(slot.peek(), &first);
  const ann::KnnGraph& second = slot.get_or_build(store);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(first.covered(), store.size());
}

// --- serve integration -------------------------------------------------------

ServeConfig approx_serve_config(std::size_t seal_threshold, std::size_t min_points) {
  ServeConfig serve;
  serve.seal_threshold = seal_threshold;
  serve.policy = ScoringPolicy::Approx;
  serve.ann.min_points = min_points;
  serve.ann.ef = 128;
  return serve;
}

std::vector<Key> oracle_top_ell(const std::vector<PointD>& points,
                                const std::vector<PointId>& ids, const PointD& query,
                                std::size_t ell, MetricKind kind) {
  const FlatStore store(points, ids);
  return fused_top_ell(store, query, ell, kind);
}

TEST(AnnServe, ChurnFuzzRecallAndTombstones) {
  // Insert/erase/seal/compact churn against the brute oracle: approximate
  // snapshots never resurrect a deleted id, delta-buffer (unsealed) points
  // are always exact candidates, and recall@ℓ stays ≥ 0.9 every epoch.
  const std::size_t dim = 6, ell = 12;
  const MetricKind kind = MetricKind::SquaredEuclidean;
  SegmentStore store(dim, approx_serve_config(192, 64));
  const CompactionConfig compaction;

  Rng rng(1234);
  std::vector<PointD> live_points;
  std::vector<PointId> live_ids;
  std::unordered_set<PointId> erased;
  PointId next_id = 1;
  KernelScratch scratch;

  for (std::size_t step = 0; step < 1200; ++step) {
    const std::uint64_t roll = rng.below(100);
    if (roll < 70 || live_ids.empty()) {
      PointD p = uniform_points(1, dim, 100.0, rng)[0];
      store.insert(p, next_id);
      live_points.push_back(std::move(p));
      live_ids.push_back(next_id);
      ++next_id;
    } else if (roll < 90) {
      const std::size_t victim = rng.below(live_ids.size());
      ASSERT_TRUE(store.erase(live_ids[victim]).has_value());
      erased.insert(live_ids[victim]);
      live_points[victim] = std::move(live_points.back());
      live_points.pop_back();
      live_ids[victim] = live_ids.back();
      live_ids.pop_back();
    } else if (roll < 95) {
      store.seal();
    } else {
      const SegmentStore::CompactionPlan plan = store.plan_compaction(compaction);
      if (!plan.empty()) {
        store.install_compaction(plan, SegmentStore::merge_segments(plan.victims,
                                                                    store.config()));
      }
    }

    if (step % 60 != 0) continue;
    const SnapshotPtr snap = store.snapshot();
    const std::vector<PointD> queries = uniform_points(4, dim, 100.0, rng);
    std::vector<std::vector<Key>> answers;
    snapshot_approx_top_ell_batch(*snap, queries, ell, kind, answers, scratch);
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      for (const Key& k : answers[qi]) {
        EXPECT_EQ(erased.count(k.id), 0u) << "deleted id " << k.id << " resurfaced";
      }
      const std::vector<Key> oracle =
          oracle_top_ell(live_points, live_ids, queries[qi], ell, kind);
      EXPECT_GE(recall_of(answers[qi], oracle), 0.9)
          << "step " << step << " query " << qi;
    }
  }

  // Delta-buffer rows are always candidates: a query sitting exactly on an
  // unsealed point must return that point first.
  store.seal();
  PointD fresh = uniform_points(1, dim, 100.0, rng)[0];
  store.insert(fresh, next_id);
  const SnapshotPtr snap = store.snapshot();
  std::vector<std::vector<Key>> answers;
  snapshot_approx_top_ell_batch(*snap, std::span<const PointD>(&fresh, 1), ell, kind, answers,
                                scratch);
  ASSERT_FALSE(answers[0].empty());
  EXPECT_EQ(answers[0][0].id, next_id);
  EXPECT_EQ(answers[0][0].rank, 0u);
}

TEST(AnnServe, ConcurrentApproxReadsDuringChurn) {
  // Lazy graph builds race snapshot readers while a writer churns — the
  // TSan leg runs this; correctness assert is "no deleted id surfaces".
  const std::size_t dim = 4, ell = 8;
  SegmentStore store(dim, approx_serve_config(128, 32));
  Rng seed_rng(777);
  {
    std::vector<PointD> points = uniform_points(512, dim, 100.0, seed_rng);
    std::vector<PointId> ids(points.size());
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PointId>(i + 1);
    store.insert_batch(points, ids);
    store.seal();
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  // A prefix of ids 1..512 is erased by the writer; ids ≥ 513 are fresh
  // inserts.
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&store, &stop, &failed, t, dim, ell] {
      Rng rng(9000 + static_cast<std::uint64_t>(t));
      KernelScratch scratch;
      while (!stop.load(std::memory_order_acquire)) {
        const SnapshotPtr snap = store.snapshot();
        const std::vector<PointD> queries = uniform_points(2, dim, 100.0, rng);
        std::vector<std::vector<Key>> answers;
        snapshot_approx_top_ell_batch(*snap, queries, ell, MetricKind::SquaredEuclidean,
                                      answers, scratch);
        for (const auto& keys : answers) {
          for (const Key& k : keys) {
            if (k.id == 0) failed.store(true, std::memory_order_release);
          }
        }
      }
    });
  }
  Rng rng(4242);
  PointId next_id = 513;
  std::unordered_set<PointId> erased;
  for (std::size_t step = 0; step < 400; ++step) {
    if (step % 3 == 0 && step / 3 < 256) {
      const auto victim = static_cast<PointId>(step / 3 + 1);
      store.erase(victim);
      erased.insert(victim);
    } else {
      store.insert(uniform_points(1, dim, 100.0, rng)[0], next_id++);
    }
    if (step % 100 == 99) store.seal();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load());
  // Erased ids must be gone from a quiescent approx answer.
  KernelScratch scratch;
  const SnapshotPtr snap = store.snapshot();
  std::vector<PointD> probes = uniform_points(8, dim, 100.0, rng);
  std::vector<std::vector<Key>> answers;
  snapshot_approx_top_ell_batch(*snap, probes, 32, MetricKind::SquaredEuclidean, answers,
                                scratch);
  for (const auto& keys : answers) {
    for (const Key& k : keys) EXPECT_EQ(erased.count(k.id), 0u);
  }
}

// --- facade routing ----------------------------------------------------------

TEST(AnnService, StaticApproxRoutingAndCacheSeparation) {
  const std::size_t n = 6000, dim = 8;
  Rng rng(31);
  std::vector<PointD> points = uniform_points(n, dim, 100.0, rng);
  ann::AnnConfig ann_config;
  ann_config.min_points = 1024;
  KnnService svc = KnnServiceBuilder()
                       .machines(2)
                       .ell(16)
                       .policy(ScoringPolicy::Approx)
                       .ann(ann_config)
                       .cache_capacity(64)
                       .dataset(std::move(points))
                       .build();
  KnnService exact_svc = KnnServiceBuilder()
                             .machines(2)
                             .ell(16)
                             .policy(ScoringPolicy::Brute)
                             .seed(1)  // same partition as svc (default seed)
                             .dataset([&] {
                               Rng r(31);
                               return uniform_points(n, dim, 100.0, r);
                             }())
                             .build();

  const std::vector<PointD> queries = uniform_points(24, dim, 100.0, rng);
  double recall_sum = 0.0;
  for (const PointD& q : queries) {
    const QueryResult approx = svc.query(q);
    const QueryResult exact = exact_svc.query(q);
    recall_sum += recall_of(approx.keys, exact.keys);
  }
  EXPECT_GE(recall_sum / static_cast<double>(queries.size()), 0.9);

  // Per-call routing between tiers on one service, and cache separation:
  // the exact override must not be served the cached approx answer.
  QueryOptions force_exact;
  force_exact.approx = false;
  const QueryResult exact_on_approx_svc = svc.query(queries[0], force_exact);
  const QueryResult reference = exact_svc.query(queries[0]);
  expect_same_keys(reference.keys, exact_on_approx_svc.keys,
                   "approx=false override on an Approx-policy service");
  const QueryResult exact_again = svc.query(queries[0], force_exact);
  EXPECT_TRUE(exact_again.cache_hit);
  expect_same_keys(reference.keys, exact_again.keys, "cached exact override");
}

TEST(AnnService, LiveApproxNeverReturnsErased) {
  const std::size_t dim = 6;
  ann::AnnConfig ann_config;
  ann_config.min_points = 64;
  Rng rng(47);
  std::vector<PointD> points = uniform_points(1500, dim, 100.0, rng);
  KnnService svc = KnnServiceBuilder()
                       .machines(2)
                       .ell(12)
                       .policy(ScoringPolicy::Approx)
                       .ann(ann_config)
                       .live()
                       .dataset(std::move(points))
                       .build();
  std::vector<PointId> ids = svc.live_ids();
  std::unordered_set<PointId> erased;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    ASSERT_TRUE(svc.erase(ids[i]).has_value());
    erased.insert(ids[i]);
  }
  for (const PointD& q : uniform_points(16, dim, 100.0, rng)) {
    const QueryResult result = svc.query(q);
    for (const Key& k : result.keys) {
      EXPECT_EQ(erased.count(k.id), 0u) << "erased id " << k.id << " in approx answer";
    }
  }
}

}  // namespace
}  // namespace dknn

// Tests for core/session: multi-query sessions with integrated leader
// election — equivalence to independent single-query runs, pipelining
// safety under bandwidth limits, cost amortization, and edge cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/session.hpp"
#include "data/generators.hpp"
#include "rng/rng.hpp"
#include "sim/engine.hpp"

namespace dknn {
namespace {

EngineConfig engine_for(std::uint64_t seed) {
  EngineConfig c;
  c.seed = seed;
  c.measure_compute = false;
  return c;
}

std::vector<ScalarShard> shard_fixture(std::size_t n, std::uint32_t k, std::uint64_t seed) {
  Rng rng(seed);
  auto values = uniform_u64(n, rng);
  return make_scalar_shards(std::move(values), k, PartitionScheme::Random, rng);
}

std::vector<Value> query_fixture(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  return uniform_u64(count, rng);
}

TEST(Session, MatchesIndependentRuns) {
  constexpr std::uint32_t k = 8;
  const auto shards = shard_fixture(2048, k, 1);
  const auto queries = query_fixture(10, 2);
  constexpr std::uint64_t ell = 64;

  const auto session = run_scalar_session(shards, queries, ell, engine_for(3));
  ASSERT_EQ(session.queries.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto scored = score_scalar_shards(shards, queries[q]);
    EXPECT_EQ(session.queries[q].keys, expected_smallest(scored, ell)) << "query " << q;
    EXPECT_EQ(session.queries[q].query, queries[q]);
  }
}

class SessionElectionSweep : public ::testing::TestWithParam<ElectionProtocol> {};

TEST_P(SessionElectionSweep, AnyElectionProtocolGivesCorrectAnswers) {
  constexpr std::uint32_t k = 12;
  const auto shards = shard_fixture(1024, k, 4);
  const auto queries = query_fixture(5, 5);
  SessionConfig config;
  config.election = GetParam();
  const auto session = run_scalar_session(shards, queries, 32, engine_for(6), config);
  EXPECT_LT(session.leader, k);
  if (GetParam() == ElectionProtocol::None) {
    EXPECT_EQ(session.leader, 0u);
    EXPECT_EQ(session.election_rounds, 0u);
  } else {
    EXPECT_GE(session.election_rounds, 1u);
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto scored = score_scalar_shards(shards, queries[q]);
    EXPECT_EQ(session.queries[q].keys, expected_smallest(scored, 32)) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, SessionElectionSweep,
                         ::testing::Values(ElectionProtocol::None, ElectionProtocol::MinId,
                                           ElectionProtocol::Sublinear));

TEST(Session, PipeliningSafeUnderChunkedBandwidth) {
  // Straggling messages from query q must never leak into query q+1 even
  // when every transfer spans multiple rounds.
  constexpr std::uint32_t k = 6;
  const auto shards = shard_fixture(1200, k, 7);
  const auto queries = query_fixture(8, 8);
  auto config = engine_for(9);
  config.bandwidth = BandwidthPolicy::Chunked;
  config.bits_per_round = 128;
  const auto session = run_scalar_session(shards, queries, 48, config);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto scored = score_scalar_shards(shards, queries[q]);
    EXPECT_EQ(session.queries[q].keys, expected_smallest(scored, 48)) << "query " << q;
  }
}

TEST(Session, ElectionCostIsPaidOnce) {
  // Session rounds ~ election + sum of per-query rounds: amortizing the
  // election across queries.
  constexpr std::uint32_t k = 16;
  const auto shards = shard_fixture(2048, k, 10);
  const auto queries = query_fixture(6, 11);
  const auto session = run_scalar_session(shards, queries, 64, engine_for(12));
  std::uint64_t per_query_sum = 0;
  for (const auto& sq : session.queries) {
    per_query_sum += sq.rounds;
    EXPECT_GT(sq.rounds, 0u);
  }
  EXPECT_LE(session.report.rounds, session.election_rounds + per_query_sum + 2);
  EXPECT_GE(session.report.rounds, per_query_sum);
}

TEST(Session, RoundsPerQueryStayLogarithmic) {
  constexpr std::uint32_t k = 32;
  const auto shards = shard_fixture(1 << 14, k, 13);
  const auto queries = query_fixture(5, 14);
  constexpr std::uint64_t ell = 256;
  const auto session = run_scalar_session(shards, queries, ell, engine_for(15));
  for (const auto& sq : session.queries) {
    EXPECT_LE(sq.rounds, 30.0 * std::log2(static_cast<double>(ell)));
  }
}

TEST(Session, EmptyQueryListIsJustElection) {
  const auto shards = shard_fixture(256, 4, 16);
  const auto session = run_scalar_session(shards, {}, 8, engine_for(17));
  EXPECT_TRUE(session.queries.empty());
  EXPECT_LT(session.leader, 4u);
}

TEST(Session, SingleMachineSession) {
  const auto shards = shard_fixture(128, 1, 18);
  const auto queries = query_fixture(3, 19);
  const auto session = run_scalar_session(shards, queries, 10, engine_for(20));
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto scored = score_scalar_shards(shards, queries[q]);
    EXPECT_EQ(session.queries[q].keys, expected_smallest(scored, 10));
  }
  EXPECT_EQ(session.leader, 0u);
}

TEST(Session, DeterministicForSeed) {
  const auto shards = shard_fixture(1024, 8, 21);
  const auto queries = query_fixture(4, 22);
  const auto a = run_scalar_session(shards, queries, 32, engine_for(23));
  const auto b = run_scalar_session(shards, queries, 32, engine_for(23));
  EXPECT_EQ(a.leader, b.leader);
  EXPECT_EQ(a.report.rounds, b.report.rounds);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (std::size_t q = 0; q < a.queries.size(); ++q) {
    EXPECT_EQ(a.queries[q].keys, b.queries[q].keys);
  }
}

// --- vector sessions (k-d tree accelerated) -----------------------------------------

TEST(VectorSession, MatchesBruteScoredRuns) {
  constexpr std::uint32_t k = 6;
  Rng rng(30);
  auto points = uniform_points(900, 3, 80.0, rng);
  auto shards = make_vector_shards(points, k, PartitionScheme::Random, rng);
  const auto indexes = make_vector_indexes(shards);
  auto queries = uniform_points(7, 3, 90.0, rng);

  constexpr std::uint64_t ell = 25;
  const auto session =
      run_vector_session(indexes, queries, ell, engine_for(31));
  ASSERT_EQ(session.queries.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    auto scored = score_vector_shards(shards, queries[q], EuclideanMetric{});
    EXPECT_EQ(session.queries[q].keys, expected_smallest(scored, ell)) << "query " << q;
  }
}

TEST(VectorSession, ElectionIntegration) {
  constexpr std::uint32_t k = 9;
  Rng rng(32);
  auto points = uniform_points(450, 2, 50.0, rng);
  auto shards = make_vector_shards(points, k, PartitionScheme::Random, rng);
  const auto indexes = make_vector_indexes(shards);
  auto queries = uniform_points(3, 2, 50.0, rng);
  SessionConfig config;
  config.election = ElectionProtocol::Sublinear;
  const auto session = run_vector_session(indexes, queries, 12, engine_for(33), config);
  EXPECT_LT(session.leader, k);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    auto scored = score_vector_shards(shards, queries[q], EuclideanMetric{});
    EXPECT_EQ(session.queries[q].keys, expected_smallest(scored, 12)) << "query " << q;
  }
}

TEST(VectorSession, EmptyShardsMixedIn) {
  // Machines with no points participate without contributing.
  std::vector<VectorShard> shards(4);
  Rng rng(34);
  shards[1].points = uniform_points(40, 2, 10.0, rng);
  shards[1].ids = assign_random_ids(40, rng);
  const auto indexes = make_vector_indexes(shards);
  auto queries = uniform_points(2, 2, 10.0, rng);
  const auto session = run_vector_session(indexes, queries, 5, engine_for(35));
  for (std::size_t q = 0; q < queries.size(); ++q) {
    auto scored = score_vector_shards(shards, queries[q], EuclideanMetric{});
    EXPECT_EQ(session.queries[q].keys, expected_smallest(scored, 5)) << "query " << q;
  }
}

TEST(Session, ParallelExecutorMatchesSequential) {
  const auto shards = shard_fixture(2048, 8, 24);
  const auto queries = query_fixture(5, 25);
  auto seq_config = engine_for(26);
  auto par_config = seq_config;
  par_config.parallel = true;
  par_config.threads = 4;
  const auto seq = run_scalar_session(shards, queries, 64, seq_config);
  const auto par = run_scalar_session(shards, queries, 64, par_config);
  EXPECT_EQ(seq.leader, par.leader);
  EXPECT_EQ(seq.report.rounds, par.report.rounds);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(seq.queries[q].keys, par.queries[q].keys);
  }
}

}  // namespace
}  // namespace dknn

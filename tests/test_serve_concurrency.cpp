// Concurrency tests for the live serving subsystem — the races TSan exists
// for: a writer thread inserting/erasing/sealing, background compaction on
// the work-stealing pool, and several query threads coalescing through the
// dynamic-batching front end, all against one SegmentStore.  Correctness
// is still exact: every recorded answer is verified (post-join, serially)
// against a FlatStore rebuilt from the live set at the answer's epoch —
// epochs make "which state did this query see?" a well-posed question
// even under full concurrency.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.hpp"
#include "data/kernels.hpp"
#include "parity_support.hpp"
#include "rng/rng.hpp"
#include "serve/compactor.hpp"
#include "serve/front_end.hpp"
#include "serve/segment_store.hpp"
#include "sim/thread_pool.hpp"

namespace dknn {
namespace {

using testing_support::expect_same_keys;

struct LivePoint {
  PointId id = 0;
  PointD point;
};

std::vector<Key> oracle_top_ell(const std::vector<LivePoint>& live, const PointD& query,
                                std::size_t ell, MetricKind kind) {
  std::vector<PointD> points;
  std::vector<PointId> ids;
  for (const LivePoint& lp : live) {
    points.push_back(lp.point);
    ids.push_back(lp.id);
  }
  const FlatStore store(points, ids);
  return fused_top_ell(store, query, ell, kind);
}

/// Membership history: (epoch, live set) after every membership-changing
/// mutation.  Seal and compaction publish epochs too but never change
/// membership, so the live set at epoch E is the entry with the greatest
/// recorded epoch ≤ E.
struct History {
  std::vector<std::pair<std::uint64_t, std::vector<LivePoint>>> entries;

  [[nodiscard]] const std::vector<LivePoint>& at(std::uint64_t epoch) const {
    std::size_t best = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].first <= epoch) best = i;
    }
    return entries[best].second;
  }
};

TEST(ServeConcurrency, WritersCompactionAndBatchedQueriesRaceSafely) {
  constexpr std::size_t kDim = 3;
  constexpr std::size_t kEll = 6;
  constexpr std::size_t kQueryThreads = 4;
  constexpr std::size_t kQueriesPerThread = 60;
  constexpr int kMutations = 250;

  Rng rng(4242);
  SegmentStore store(kDim, ServeConfig{.seal_threshold = 32, .policy = ScoringPolicy::Auto});
  std::vector<LivePoint> live;
  for (PointId id = 1; id <= 64; ++id) {
    LivePoint lp{id, uniform_points(1, kDim, 50.0, rng)[0]};
    store.insert(lp.point, lp.id);
    live.push_back(std::move(lp));
  }
  History history;
  history.entries.emplace_back(store.epoch(), live);

  ThreadPool pool(2);
  Compactor compactor(store, pool,
                      CompactionConfig{.max_dead_fraction = 0.15, .min_segment_points = 24});
  QueryFrontEnd fe(store,
                   FrontEndConfig{.ell = kEll, .kind = MetricKind::Euclidean, .max_batch = 8,
                                  .max_delay = std::chrono::microseconds{100},
                                  .cache_capacity = 256});

  // A fixed pool of query points shared by all threads: repeats are
  // frequent, so the epoch-keyed cache sees real hit traffic mid-churn.
  const auto query_pool = uniform_points(24, kDim, 50.0, rng);

  std::thread writer([&] {
    Rng wrng(99);
    PointId next_id = 1000;
    for (int step = 0; step < kMutations; ++step) {
      const std::uint64_t op = wrng.below(100);
      if (op < 50 || live.empty()) {
        LivePoint lp{next_id++, uniform_points(1, kDim, 50.0, wrng)[0]};
        const std::uint64_t epoch = store.insert(lp.point, lp.id);
        live.push_back(lp);
        history.entries.emplace_back(epoch, live);
      } else if (op < 85) {
        const std::size_t victim = wrng.below(live.size());
        const auto epoch = store.erase(live[victim].id);
        EXPECT_TRUE(epoch.has_value());
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
        history.entries.emplace_back(*epoch, live);
      } else if (op < 92) {
        store.seal();
      } else {
        compactor.maybe_schedule();  // install lands whenever the pool gets to it
      }
    }
  });

  struct Recorded {
    std::size_t query_index = 0;
    ServeQueryResult result;
  };
  std::vector<std::vector<Recorded>> recorded(kQueryThreads);
  std::vector<std::thread> query_threads;
  for (std::size_t t = 0; t < kQueryThreads; ++t) {
    query_threads.emplace_back([&, t] {
      Rng qrng(7000 + t);
      for (std::size_t i = 0; i < kQueriesPerThread; ++i) {
        const std::size_t pick = qrng.below(query_pool.size());
        recorded[t].push_back(Recorded{pick, fe.query(query_pool[pick])});
      }
    });
  }
  writer.join();
  for (auto& thread : query_threads) thread.join();
  compactor.drain();

  // Post-join verification: every answer must be byte-identical to the
  // oracle at the answer's epoch (cache hits included — a hit only ever
  // returns bytes computed at the same epoch).
  std::size_t verified = 0;
  for (std::size_t t = 0; t < kQueryThreads; ++t) {
    for (const Recorded& rec : recorded[t]) {
      const auto& live_then = history.at(rec.result.epoch);
      ASSERT_NO_FATAL_FAILURE(expect_same_keys(
          oracle_top_ell(live_then, query_pool[rec.query_index], kEll, MetricKind::Euclidean),
          rec.result.keys,
          "thread " + std::to_string(t) + " epoch " + std::to_string(rec.result.epoch)));
      ASSERT_GE(rec.result.batch_size, 1u);
      ++verified;
    }
  }
  EXPECT_EQ(verified, kQueryThreads * kQueriesPerThread);

  const auto stats = fe.stats();
  EXPECT_EQ(stats.queries, kQueryThreads * kQueriesPerThread);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
}

// --- directed: leader-seat wakeup protocol -----------------------------------
//
// The micro-batching seat has three classic lost-wakeup traps: a query that
// arrives while the leader is mid-execute (nobody left to elect it), a
// max_delay == 0 storm (the leader never waits, so election is pure
// notify_all hand-off), and query()/query_batch() interleaving (the batch
// path bypasses the seat but shares the cache).  Each test would *hang* on
// a lost wakeup — gtest's timeout is the assertion — and verifies bytes on
// top.

TEST(ServeConcurrency, ArrivalsMidExecuteAreEventuallyServed) {
  constexpr std::size_t kDim = 2;
  constexpr std::size_t kEll = 4;
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kPerThread = 40;
  Rng rng(51);
  SegmentStore store(kDim, ServeConfig{});
  for (PointId id = 1; id <= 40; ++id) store.insert(uniform_points(1, kDim, 50.0, rng)[0], id);

  // max_batch = 1: every execute scores exactly one query, so every other
  // concurrent arrival lands mid-execute and must be re-elected by the
  // retiring leader's notify_all.
  QueryFrontEnd fe(store, FrontEndConfig{.ell = kEll, .kind = MetricKind::Euclidean,
                                         .max_batch = 1,
                                         .max_delay = std::chrono::microseconds{0},
                                         .cache_capacity = 0});
  const auto query_pool = uniform_points(8, kDim, 50.0, rng);
  std::vector<std::vector<Key>> want;
  for (const PointD& q : query_pool) {
    want.push_back(snapshot_top_ell(*store.snapshot(), q, kEll, MetricKind::Euclidean));
  }

  std::atomic<std::size_t> ready{0};
  std::vector<std::thread> threads;
  std::atomic<std::size_t> mismatches{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }  // start the storm together
      Rng qrng(600 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t pick = qrng.below(query_pool.size());
        const ServeQueryResult result = fe.query(query_pool[pick]);
        if (result.batch_size != 1) mismatches.fetch_add(1);
        if (result.keys.size() != want[pick].size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (std::size_t j = 0; j < want[pick].size(); ++j) {
          if (result.keys[j].rank != want[pick][j].rank ||
              result.keys[j].id != want[pick][j].id) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  const auto stats = fe.stats();
  EXPECT_EQ(stats.queries, kThreads * kPerThread);
  EXPECT_EQ(stats.batches, kThreads * kPerThread);  // max_batch = 1: one each
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
}

TEST(ServeConcurrency, ZeroDelayStormRespectsBatchCapAndLosesNoQuery) {
  constexpr std::size_t kDim = 2;
  constexpr std::size_t kEll = 5;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 50;
  constexpr std::size_t kMaxBatch = 4;
  Rng rng(52);
  SegmentStore store(kDim, ServeConfig{});
  for (PointId id = 1; id <= 60; ++id) store.insert(uniform_points(1, kDim, 50.0, rng)[0], id);

  // max_delay = 0: batches only form from queries already queued when a
  // leader takes the seat, so arrival storms exercise the take-cap path
  // (more than max_batch queued) and the no-wait election hand-off.
  QueryFrontEnd fe(store, FrontEndConfig{.ell = kEll, .kind = MetricKind::Euclidean,
                                         .max_batch = kMaxBatch,
                                         .max_delay = std::chrono::microseconds{0},
                                         .cache_capacity = 128});
  const auto query_pool = uniform_points(12, kDim, 50.0, rng);
  std::vector<std::vector<Key>> want;
  for (const PointD& q : query_pool) {
    want.push_back(snapshot_top_ell(*store.snapshot(), q, kEll, MetricKind::Euclidean));
  }

  std::atomic<std::size_t> ready{0};
  std::atomic<std::size_t> cap_violations{0};
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      Rng qrng(700 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t pick = qrng.below(query_pool.size());
        const ServeQueryResult result = fe.query(query_pool[pick]);
        if (result.batch_size < 1 || result.batch_size > kMaxBatch) cap_violations.fetch_add(1);
        if (result.keys.size() != want[pick].size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (std::size_t j = 0; j < want[pick].size(); ++j) {
          if (result.keys[j].rank != want[pick][j].rank ||
              result.keys[j].id != want[pick][j].id) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cap_violations.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  const auto stats = fe.stats();
  EXPECT_EQ(stats.queries, kThreads * kPerThread);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
}

TEST(ServeConcurrency, InterleavedQueryAndBatchPathsStayByteIdentical) {
  constexpr std::size_t kDim = 3;
  constexpr std::size_t kEll = 4;
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kRounds = 30;
  Rng rng(53);
  SegmentStore store(kDim, ServeConfig{});
  for (PointId id = 1; id <= 50; ++id) store.insert(uniform_points(1, kDim, 50.0, rng)[0], id);

  QueryFrontEnd fe(store, FrontEndConfig{.ell = kEll, .kind = MetricKind::Euclidean,
                                         .max_batch = 4,
                                         .max_delay = std::chrono::microseconds{50},
                                         .cache_capacity = 64});
  const auto query_pool = uniform_points(10, kDim, 50.0, rng);
  std::vector<std::vector<Key>> want;
  for (const PointD& q : query_pool) {
    want.push_back(snapshot_top_ell(*store.snapshot(), q, kEll, MetricKind::Euclidean));
  }

  std::atomic<std::size_t> ready{0};
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      Rng qrng(800 + t);
      const auto check = [&](std::size_t pick, const std::vector<Key>& keys) {
        if (keys.size() != want[pick].size()) {
          mismatches.fetch_add(1);
          return;
        }
        for (std::size_t j = 0; j < want[pick].size(); ++j) {
          if (keys[j].rank != want[pick][j].rank || keys[j].id != want[pick][j].id) {
            mismatches.fetch_add(1);
            return;
          }
        }
      };
      for (std::size_t round = 0; round < kRounds; ++round) {
        if ((round + t) % 2 == 0) {
          // Seat path: coalesces with whoever else is in flight.
          const std::size_t pick = qrng.below(query_pool.size());
          check(pick, fe.query(query_pool[pick]).keys);
        } else {
          // Batch path: bypasses the seat, shares cache + store.
          std::vector<std::size_t> picks(3);
          std::vector<PointD> block;
          for (auto& pick : picks) {
            pick = qrng.below(query_pool.size());
            block.push_back(query_pool[pick]);
          }
          const auto results = fe.query_batch(block);
          for (std::size_t i = 0; i < picks.size(); ++i) check(picks[i], results[i].keys);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  const auto stats = fe.stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
}

TEST(ServeConcurrency, HeldSnapshotIsStableWhileWritersChurn) {
  constexpr std::size_t kDim = 2;
  Rng rng(31);
  SegmentStore store(kDim, ServeConfig{.seal_threshold = 16});
  for (PointId id = 1; id <= 48; ++id) {
    store.insert(uniform_points(1, kDim, 50.0, rng)[0], id);
  }
  const SnapshotPtr held = store.snapshot();
  const PointD query = uniform_points(1, kDim, 50.0, rng)[0];
  const auto reference = snapshot_top_ell(*held, query, 8, MetricKind::Euclidean);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng wrng(32);
    PointId next_id = 100;
    while (!stop.load()) {
      store.insert(uniform_points(1, kDim, 50.0, wrng)[0], next_id++);
      (void)store.erase(1 + wrng.below(next_id - 1));
    }
  });
  // Re-score the held snapshot repeatedly while the writer churns: frozen
  // means frozen — every pass returns the same bytes.
  for (int pass = 0; pass < 200; ++pass) {
    const auto again = snapshot_top_ell(*held, query, 8, MetricKind::Euclidean);
    ASSERT_EQ(again.size(), reference.size()) << "pass " << pass;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(again[i].rank, reference[i].rank) << "pass " << pass;
      ASSERT_EQ(again[i].id, reference[i].id) << "pass " << pass;
    }
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace dknn

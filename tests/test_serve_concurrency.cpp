// Concurrency tests for the live serving subsystem — the races TSan exists
// for: a writer thread inserting/erasing/sealing, background compaction on
// the work-stealing pool, and several query threads coalescing through the
// dynamic-batching front end, all against one SegmentStore.  Correctness
// is still exact: every recorded answer is verified (post-join, serially)
// against a FlatStore rebuilt from the live set at the answer's epoch —
// epochs make "which state did this query see?" a well-posed question
// even under full concurrency.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.hpp"
#include "data/kernels.hpp"
#include "parity_support.hpp"
#include "rng/rng.hpp"
#include "serve/compactor.hpp"
#include "serve/front_end.hpp"
#include "serve/segment_store.hpp"
#include "sim/thread_pool.hpp"

namespace dknn {
namespace {

using testing_support::expect_same_keys;

struct LivePoint {
  PointId id = 0;
  PointD point;
};

std::vector<Key> oracle_top_ell(const std::vector<LivePoint>& live, const PointD& query,
                                std::size_t ell, MetricKind kind) {
  std::vector<PointD> points;
  std::vector<PointId> ids;
  for (const LivePoint& lp : live) {
    points.push_back(lp.point);
    ids.push_back(lp.id);
  }
  const FlatStore store(points, ids);
  return fused_top_ell(store, query, ell, kind);
}

/// Membership history: (epoch, live set) after every membership-changing
/// mutation.  Seal and compaction publish epochs too but never change
/// membership, so the live set at epoch E is the entry with the greatest
/// recorded epoch ≤ E.
struct History {
  std::vector<std::pair<std::uint64_t, std::vector<LivePoint>>> entries;

  [[nodiscard]] const std::vector<LivePoint>& at(std::uint64_t epoch) const {
    std::size_t best = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].first <= epoch) best = i;
    }
    return entries[best].second;
  }
};

TEST(ServeConcurrency, WritersCompactionAndBatchedQueriesRaceSafely) {
  constexpr std::size_t kDim = 3;
  constexpr std::size_t kEll = 6;
  constexpr std::size_t kQueryThreads = 4;
  constexpr std::size_t kQueriesPerThread = 60;
  constexpr int kMutations = 250;

  Rng rng(4242);
  SegmentStore store(kDim, ServeConfig{.seal_threshold = 32, .policy = ScoringPolicy::Auto});
  std::vector<LivePoint> live;
  for (PointId id = 1; id <= 64; ++id) {
    LivePoint lp{id, uniform_points(1, kDim, 50.0, rng)[0]};
    store.insert(lp.point, lp.id);
    live.push_back(std::move(lp));
  }
  History history;
  history.entries.emplace_back(store.epoch(), live);

  ThreadPool pool(2);
  Compactor compactor(store, pool,
                      CompactionConfig{.max_dead_fraction = 0.15, .min_segment_points = 24});
  QueryFrontEnd fe(store,
                   FrontEndConfig{.ell = kEll, .kind = MetricKind::Euclidean, .max_batch = 8,
                                  .max_delay = std::chrono::microseconds{100},
                                  .cache_capacity = 256});

  // A fixed pool of query points shared by all threads: repeats are
  // frequent, so the epoch-keyed cache sees real hit traffic mid-churn.
  const auto query_pool = uniform_points(24, kDim, 50.0, rng);

  std::thread writer([&] {
    Rng wrng(99);
    PointId next_id = 1000;
    for (int step = 0; step < kMutations; ++step) {
      const std::uint64_t op = wrng.below(100);
      if (op < 50 || live.empty()) {
        LivePoint lp{next_id++, uniform_points(1, kDim, 50.0, wrng)[0]};
        const std::uint64_t epoch = store.insert(lp.point, lp.id);
        live.push_back(lp);
        history.entries.emplace_back(epoch, live);
      } else if (op < 85) {
        const std::size_t victim = wrng.below(live.size());
        const auto epoch = store.erase(live[victim].id);
        EXPECT_TRUE(epoch.has_value());
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
        history.entries.emplace_back(*epoch, live);
      } else if (op < 92) {
        store.seal();
      } else {
        compactor.maybe_schedule();  // install lands whenever the pool gets to it
      }
    }
  });

  struct Recorded {
    std::size_t query_index = 0;
    ServeQueryResult result;
  };
  std::vector<std::vector<Recorded>> recorded(kQueryThreads);
  std::vector<std::thread> query_threads;
  for (std::size_t t = 0; t < kQueryThreads; ++t) {
    query_threads.emplace_back([&, t] {
      Rng qrng(7000 + t);
      for (std::size_t i = 0; i < kQueriesPerThread; ++i) {
        const std::size_t pick = qrng.below(query_pool.size());
        recorded[t].push_back(Recorded{pick, fe.query(query_pool[pick])});
      }
    });
  }
  writer.join();
  for (auto& thread : query_threads) thread.join();
  compactor.drain();

  // Post-join verification: every answer must be byte-identical to the
  // oracle at the answer's epoch (cache hits included — a hit only ever
  // returns bytes computed at the same epoch).
  std::size_t verified = 0;
  for (std::size_t t = 0; t < kQueryThreads; ++t) {
    for (const Recorded& rec : recorded[t]) {
      const auto& live_then = history.at(rec.result.epoch);
      ASSERT_NO_FATAL_FAILURE(expect_same_keys(
          oracle_top_ell(live_then, query_pool[rec.query_index], kEll, MetricKind::Euclidean),
          rec.result.keys,
          "thread " + std::to_string(t) + " epoch " + std::to_string(rec.result.epoch)));
      ASSERT_GE(rec.result.batch_size, 1u);
      ++verified;
    }
  }
  EXPECT_EQ(verified, kQueryThreads * kQueriesPerThread);

  const auto stats = fe.stats();
  EXPECT_EQ(stats.queries, kQueryThreads * kQueriesPerThread);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
}

TEST(ServeConcurrency, HeldSnapshotIsStableWhileWritersChurn) {
  constexpr std::size_t kDim = 2;
  Rng rng(31);
  SegmentStore store(kDim, ServeConfig{.seal_threshold = 16});
  for (PointId id = 1; id <= 48; ++id) {
    store.insert(uniform_points(1, kDim, 50.0, rng)[0], id);
  }
  const SnapshotPtr held = store.snapshot();
  const PointD query = uniform_points(1, kDim, 50.0, rng)[0];
  const auto reference = snapshot_top_ell(*held, query, 8, MetricKind::Euclidean);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng wrng(32);
    PointId next_id = 100;
    while (!stop.load()) {
      store.insert(uniform_points(1, kDim, 50.0, wrng)[0], next_id++);
      (void)store.erase(1 + wrng.below(next_id - 1));
    }
  });
  // Re-score the held snapshot repeatedly while the writer churns: frozen
  // means frozen — every pass returns the same bytes.
  for (int pass = 0; pass < 200; ++pass) {
    const auto again = snapshot_top_ell(*held, query, 8, MetricKind::Euclidean);
    ASSERT_EQ(again.size(), reference.size()) << "pass " << pass;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(again[i].rank, reference[i].rank) << "pass " << pass;
      ASSERT_EQ(again[i].id, reference[i].id) << "pass " << pass;
    }
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace dknn

// Tests for the SoA FlatStore and the fused batched scoring/top-ℓ kernels:
// byte-identical parity against the per-query AoS path for all four
// MetricKinds across random dimensions, edge cases (ℓ ≥ n, ℓ = 0, empty
// shards), the batched driver / mlapi paths against their per-query
// equivalents, and the SquaredEuclidean-vs-Euclidean ordering equivalence
// the default scoring now relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/driver.hpp"
#include "core/mlapi.hpp"
#include "data/flat_store.hpp"
#include "data/generators.hpp"
#include "data/ids.hpp"
#include "data/kernels.hpp"
#include "data/simd/dispatch.hpp"
#include "parity_support.hpp"
#include "rng/rng.hpp"
#include "seq/select.hpp"

namespace dknn {
namespace {

using testing_support::expect_same_keys;
using testing_support::reference_top_ell;

constexpr MetricKind kAllKinds[] = {MetricKind::Euclidean, MetricKind::SquaredEuclidean,
                                    MetricKind::Manhattan, MetricKind::Chebyshev};

VectorShard make_shard(std::size_t n, std::size_t dim, Rng& rng) {
  VectorShard shard;
  shard.points = uniform_points(n, dim, 50.0, rng);
  shard.ids = assign_random_ids(n, rng);
  return shard;
}

// --- FlatStore --------------------------------------------------------------

TEST(FlatStore, RoundTripsPoints) {
  Rng rng(11);
  const auto shard = make_shard(37, 5, rng);
  const FlatStore store(shard.points, shard.ids);
  ASSERT_EQ(store.size(), 37u);
  ASSERT_EQ(store.dim(), 5u);
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(store.point(i), shard.points[i]);
    EXPECT_EQ(store.id(i), shard.ids[i]);
  }
}

TEST(FlatStore, ColumnsAreContiguousViews) {
  Rng rng(12);
  const auto shard = make_shard(9, 3, rng);
  const FlatStore store(shard.points, shard.ids);
  for (std::size_t j = 0; j < 3; ++j) {
    const auto col = store.dim_coords(j);
    ASSERT_EQ(col.size(), 9u);
    for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(col[i], shard.points[i][j]);
  }
}

TEST(FlatStore, EmptyStore) {
  const FlatStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.size(), 0u);
  const FlatStore dim_only(4);
  EXPECT_TRUE(dim_only.empty());
  EXPECT_EQ(dim_only.dim(), 4u);
}

TEST(FlatStore, RejectsMisalignedInputs) {
  Rng rng(13);
  auto shard = make_shard(4, 2, rng);
  shard.ids.pop_back();
  EXPECT_THROW((FlatStore{shard.points, shard.ids}), InvariantError);
}

// --- fused kernel parity ----------------------------------------------------

TEST(FusedKernels, ByteIdenticalToAosPathAllMetricsAllDims) {
  Rng rng(21);
  // 1..16 hit the fixed-dimension kernels; 17 and 24 the dynamic fallback.
  const std::size_t dims[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 24};
  for (const MetricKind kind : kAllKinds) {
    for (const std::size_t dim : dims) {
      const std::size_t n = 40 + static_cast<std::size_t>(rng.below(4000));
      const auto shard = make_shard(n, dim, rng);
      const FlatStore store(shard.points, shard.ids);
      const PointD query = uniform_points(1, dim, 50.0, rng)[0];
      for (const std::size_t ell : {std::size_t{1}, std::size_t{17}, n / 2}) {
        const auto expected = reference_top_ell(shard, query, kind, ell);
        const auto actual = fused_top_ell(store, query, ell, kind);
        expect_same_keys(expected, actual, metric_kind_name(kind));
      }
    }
  }
}

TEST(FusedKernels, EllAtLeastNReturnsEverythingSorted) {
  Rng rng(22);
  for (const MetricKind kind : kAllKinds) {
    const auto shard = make_shard(123, 4, rng);
    const FlatStore store(shard.points, shard.ids);
    const PointD query = uniform_points(1, 4, 50.0, rng)[0];
    for (const std::size_t ell : {std::size_t{123}, std::size_t{124}, std::size_t{100000}}) {
      const auto expected = reference_top_ell(shard, query, kind, ell);
      const auto actual = fused_top_ell(store, query, ell, kind);
      ASSERT_EQ(actual.size(), 123u);
      expect_same_keys(expected, actual, metric_kind_name(kind));
      EXPECT_TRUE(std::is_sorted(actual.begin(), actual.end()));
    }
  }
}

TEST(FusedKernels, EmptyShardAndZeroEll) {
  Rng rng(23);
  const auto shard = make_shard(50, 3, rng);
  const FlatStore store(shard.points, shard.ids);
  const FlatStore empty(3);
  const PointD query = uniform_points(1, 3, 50.0, rng)[0];
  for (const MetricKind kind : kAllKinds) {
    EXPECT_TRUE(fused_top_ell(empty, query, 8, kind).empty());
    EXPECT_TRUE(fused_top_ell(store, query, 0, kind).empty());
  }
}

TEST(FusedKernels, RejectsDimensionMismatch) {
  Rng rng(24);
  const auto shard = make_shard(10, 3, rng);
  const FlatStore store(shard.points, shard.ids);
  const PointD query = uniform_points(1, 4, 50.0, rng)[0];
  EXPECT_THROW((void)fused_top_ell(store, query, 2, MetricKind::Euclidean), InvariantError);
}

TEST(FusedKernels, DuplicateCoordinatesTieBreakById) {
  // Many points collapse onto identical coordinates; selection must order
  // ties by id exactly as Key's lexicographic order does.
  Rng rng(25);
  VectorShard shard;
  for (std::size_t i = 0; i < 64; ++i) {
    shard.points.push_back(PointD({static_cast<double>(i % 4), 1.0}));
  }
  shard.ids = assign_random_ids(64, rng);
  const FlatStore store(shard.points, shard.ids);
  const PointD query({0.0, 1.0});
  for (const MetricKind kind : kAllKinds) {
    const auto expected = reference_top_ell(shard, query, kind, 20);
    const auto actual = fused_top_ell(store, query, 20, kind);
    expect_same_keys(expected, actual, metric_kind_name(kind));
  }
}

TEST(FusedKernels, BatchMatchesSingleQuery) {
  Rng rng(26);
  const auto shard = make_shard(2000, 6, rng);
  const FlatStore store(shard.points, shard.ids);
  const auto queries = uniform_points(9, 6, 50.0, rng);
  KernelScratch scratch;
  std::vector<std::vector<Key>> batch;
  for (const MetricKind kind : kAllKinds) {
    fused_top_ell_batch(store, queries, 33, kind, batch, scratch);
    ASSERT_EQ(batch.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      expect_same_keys(fused_top_ell(store, queries[q], 33, kind), batch[q],
                       metric_kind_name(kind));
    }
  }
}

TEST(FusedKernels, ScratchReuseAcrossShapes) {
  // One scratch across stores of different sizes / query counts / ℓ —
  // leftover state must never leak between calls.
  Rng rng(27);
  KernelScratch scratch;
  std::vector<std::vector<Key>> batch;
  for (const std::size_t n : {std::size_t{500}, std::size_t{3}, std::size_t{1500}}) {
    for (const std::size_t ell : {std::size_t{1}, std::size_t{64}}) {
      const auto shard = make_shard(n, 2, rng);
      const FlatStore store(shard.points, shard.ids);
      const auto queries = uniform_points(1 + rng.below(5), 2, 50.0, rng);
      fused_top_ell_batch(store, queries, ell, MetricKind::Manhattan, batch, scratch);
      for (std::size_t q = 0; q < queries.size(); ++q) {
        expect_same_keys(reference_top_ell(shard, queries[q], MetricKind::Manhattan, ell),
                         batch[q], "scratch-reuse");
      }
    }
  }
}

TEST(ScoreStore, MatchesScoreVectorShard) {
  Rng rng(28);
  for (const std::size_t dim : {std::size_t{5}, std::size_t{21}}) {  // fixed + dynamic kernels
    const auto shard = make_shard(777, dim, rng);
    const FlatStore store(shard.points, shard.ids);
    const PointD query = uniform_points(1, dim, 50.0, rng)[0];
    std::vector<Key> soa;
    score_store(store, query, MetricKind::Euclidean, soa);
    const auto aos = score_vector_shard(shard, query, EuclideanMetric{});
    expect_same_keys(aos, soa, "score_store");
  }
}

// --- golden known-answer fixtures -------------------------------------------
//
// Every other kernel test (and the whole of test_parity / test_simd_parity)
// checks paths *against each other* — a bug shared by the reference and
// every ISA would sail through.  These fixtures pin the exact expected Key
// bytes, hand-computed from IEEE-754 bit layouts, so the absolute answer is
// locked too.  Coordinates are chosen so every metric's distance is exactly
// representable (3-4-5 family): for the query at the origin,
//
//   point        id   L2        L2²        L1        L∞
//   (-3, -4)     10   5.0       25.0       7.0       4.0
//   ( 3,  4)     20   5.0       25.0       7.0       4.0   (tie: id order)
//   ( 0,  0)     30   0.0        0.0       0.0       0.0
//   ( 6,  8)     40  10.0      100.0      14.0       8.0
//   ( 0,  2)     50   2.0        4.0       2.0       2.0
//
// Rank constants below are the raw IEEE-754 doubles: 2.0 = 0x4000…,
// 4.0 = 0x4010…, 5.0 = 0x4014…, 7.0 = 0x401C…, 8.0 = 0x4020…,
// 10.0 = 0x4024…, 14.0 = 0x402C…, 25.0 = 0x4039…, 100.0 = 0x4059….

struct GoldenCase {
  MetricKind kind;
  Key expected[5];  ///< ascending (rank, id)
};

/// Restores auto-dispatch even when an ASSERT bails out of the per-ISA
/// block, so a golden failure can't leak a forced ISA into later tests.
using ForcedIsa = simd::ScopedForceIsa;

constexpr GoldenCase kGoldenCases[] = {
    {MetricKind::Euclidean,
     {Key{0x0000000000000000ULL, 30}, Key{0x4000000000000000ULL, 50},
      Key{0x4014000000000000ULL, 10}, Key{0x4014000000000000ULL, 20},
      Key{0x4024000000000000ULL, 40}}},
    {MetricKind::SquaredEuclidean,
     {Key{0x0000000000000000ULL, 30}, Key{0x4010000000000000ULL, 50},
      Key{0x4039000000000000ULL, 10}, Key{0x4039000000000000ULL, 20},
      Key{0x4059000000000000ULL, 40}}},
    {MetricKind::Manhattan,
     {Key{0x0000000000000000ULL, 30}, Key{0x4000000000000000ULL, 50},
      Key{0x401C000000000000ULL, 10}, Key{0x401C000000000000ULL, 20},
      Key{0x402C000000000000ULL, 40}}},
    {MetricKind::Chebyshev,
     {Key{0x0000000000000000ULL, 30}, Key{0x4000000000000000ULL, 50},
      Key{0x4010000000000000ULL, 10}, Key{0x4010000000000000ULL, 20},
      Key{0x4020000000000000ULL, 40}}},
};

TEST(GoldenKernels, ExactKeyBytesEveryMetricEveryIsaEveryPath) {
  // Shard order is scrambled relative to the expected ascending output so
  // selection, not insertion order, produces the ranking.
  VectorShard shard;
  shard.points = {PointD({3.0, 4.0}), PointD({6.0, 8.0}), PointD({0.0, 0.0}),
                  PointD({-3.0, -4.0}), PointD({0.0, 2.0})};
  shard.ids = {20, 40, 30, 10, 50};
  const FlatStore store(shard.points, shard.ids);
  const PointD query({0.0, 0.0});

  for (const GoldenCase& gc : kGoldenCases) {
    SCOPED_TRACE(metric_kind_name(gc.kind));
    // The AoS functor reference must hit the golden bytes too — it is the
    // anchor every parity suite compares against.
    {
      const auto ref = reference_top_ell(shard, query, gc.kind, 5);
      ASSERT_EQ(ref.size(), 5u);
      for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(ref[i].rank, gc.expected[i].rank) << "reference rank at " << i;
        EXPECT_EQ(ref[i].id, gc.expected[i].id) << "reference id at " << i;
      }
    }
    for (std::size_t level = 0; level < simd::kIsaCount; ++level) {
      const auto isa = static_cast<simd::Isa>(level);
      if (!simd::isa_supported(isa)) continue;
      SCOPED_TRACE(simd::isa_name(isa));
      const ForcedIsa pin(isa);
      const auto fused = fused_top_ell(store, query, 5, gc.kind);
      KernelScratch scratch;
      RangeTopEll scorer(store, query, 5, gc.kind, scratch);
      scorer.score_range(0, 2);
      scorer.score_range(2, 5);
      std::vector<Key> ranged;
      scorer.finish(ranged);
      std::vector<Key> scored;
      score_store(store, query, gc.kind, scored);
      const auto materialized = top_ell_smallest(std::span<const Key>(scored), 5);
      ASSERT_EQ(fused.size(), 5u);
      ASSERT_EQ(ranged.size(), 5u);
      ASSERT_EQ(materialized.size(), 5u);
      for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(fused[i].rank, gc.expected[i].rank) << "fused rank at " << i;
        EXPECT_EQ(fused[i].id, gc.expected[i].id) << "fused id at " << i;
        EXPECT_EQ(ranged[i].rank, gc.expected[i].rank) << "range rank at " << i;
        EXPECT_EQ(ranged[i].id, gc.expected[i].id) << "range id at " << i;
        EXPECT_EQ(materialized[i].rank, gc.expected[i].rank) << "materialized rank at " << i;
        EXPECT_EQ(materialized[i].id, gc.expected[i].id) << "materialized id at " << i;
      }
    }
    // Truncation keeps the ascending prefix: ℓ = 3 drops the two largest.
    const auto top3 = fused_top_ell(store, query, 3, gc.kind);
    ASSERT_EQ(top3.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(top3[i].rank, gc.expected[i].rank);
      EXPECT_EQ(top3[i].id, gc.expected[i].id);
    }
  }
}

// The 3-4-5 fixtures above only ever take sqrt of perfect squares, which
// cannot distinguish a correctly-rounded sqrt from a sloppy one.  This
// fixture pins score_store's dispatched sqrt epilogue (KernelOps::sqrt_tile
// — vsqrtpd on the vector ISAs) against hand-pinned IEEE-754 bit patterns
// of *irrational* square roots; IEEE requires sqrt to be correctly
// rounded, so these bytes are exact on every conforming ISA:
//
//   point     id   L2²    L2        = bits
//   (1, 1)    11    2.0   √2        = 0x3FF6A09E667F3BCD
//   (2, 1)    22    5.0   √5        = 0x4001E3779B97F4A8
//   (5, 5)    33   50.0   √50       = 0x401C48C6001F0AC0
//   (3, 4)    44   25.0   5.0       = 0x4014000000000000 (exact control)
//   (0, 0)    55    0.0   0.0       = 0x0000000000000000
TEST(GoldenKernels, ScoreStoreSqrtEpilogueExactBytesEveryIsa) {
  VectorShard shard;
  shard.points = {PointD({1.0, 1.0}), PointD({2.0, 1.0}), PointD({5.0, 5.0}),
                  PointD({3.0, 4.0}), PointD({0.0, 0.0})};
  shard.ids = {11, 22, 33, 44, 55};
  const FlatStore store(shard.points, shard.ids);
  const PointD query({0.0, 0.0});
  // score_store emits keys in point order (no selection).
  constexpr Key kExpected[5] = {
      Key{0x3FF6A09E667F3BCDULL, 11}, Key{0x4001E3779B97F4A8ULL, 22},
      Key{0x401C48C6001F0AC0ULL, 33}, Key{0x4014000000000000ULL, 44},
      Key{0x0000000000000000ULL, 55}};
  for (std::size_t level = 0; level < simd::kIsaCount; ++level) {
    const auto isa = static_cast<simd::Isa>(level);
    if (!simd::isa_supported(isa)) continue;
    SCOPED_TRACE(simd::isa_name(isa));
    const ForcedIsa pin(isa);
    std::vector<Key> scored;
    score_store(store, query, MetricKind::Euclidean, scored);
    ASSERT_EQ(scored.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(scored[i].rank, kExpected[i].rank) << "rank at " << i;
      EXPECT_EQ(scored[i].id, kExpected[i].id) << "id at " << i;
    }
    // Cross-check the fixture against the AoS functor reference.
    const auto aos = score_vector_shard(shard, query, EuclideanMetric{});
    expect_same_keys(aos, scored, "sqrt-epilogue vs AoS");
  }
}

// --- squared-Euclidean default (sqrt-free hot loop) -------------------------

TEST(SquaredEuclideanDefault, SelectsIdenticalIdsToEuclidean) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t dim = 1 + static_cast<std::size_t>(rng.below(8));
    const auto shard = make_shard(600, dim, rng);
    const PointD query = uniform_points(1, dim, 50.0, rng)[0];
    const auto euclid =
        top_ell_smallest(std::span<const Key>(score_vector_shard(shard, query, EuclideanMetric{})),
                         48);
    // Default overload = SquaredEuclidean.
    const auto squared =
        top_ell_smallest(std::span<const Key>(score_vector_shard(shard, query)), 48);
    ASSERT_EQ(euclid.size(), squared.size());
    for (std::size_t i = 0; i < euclid.size(); ++i) {
      EXPECT_EQ(euclid[i].id, squared[i].id) << "trial " << trial << " position " << i;
    }
  }
}

// --- batched driver path ----------------------------------------------------

TEST(BatchDriver, ScoreBatchMatchesPerQueryTopEll) {
  Rng rng(41);
  auto points = uniform_points(900, 4, 50.0, rng);
  const auto shards = make_vector_shards(std::move(points), 5, PartitionScheme::Random, rng);
  const auto stores = make_flat_stores(shards);
  const auto queries = uniform_points(7, 4, 50.0, rng);
  for (const MetricKind kind : kAllKinds) {
    const auto scored = score_vector_shards_batch(stores, queries, 16, kind);
    ASSERT_EQ(scored.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      ASSERT_EQ(scored[q].size(), shards.size());
      for (std::size_t m = 0; m < shards.size(); ++m) {
        expect_same_keys(reference_top_ell(shards[m], queries[q], kind, 16), scored[q][m],
                         metric_kind_name(kind));
      }
    }
  }
}

TEST(BatchDriver, HandlesEmptyShards) {
  // More machines than points: some shards are empty; the batch path must
  // mirror the per-query path including the empty entries.
  Rng rng(42);
  auto points = uniform_points(3, 2, 50.0, rng);
  const auto shards = make_vector_shards(std::move(points), 6, PartitionScheme::FirstHeavy, rng);
  const auto stores = make_flat_stores(shards);
  const auto queries = uniform_points(2, 2, 50.0, rng);
  const auto scored = score_vector_shards_batch(stores, queries, 4, MetricKind::Euclidean);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (std::size_t m = 0; m < shards.size(); ++m) {
      expect_same_keys(reference_top_ell(shards[m], queries[q], MetricKind::Euclidean, 4),
                       scored[q][m], "empty-shard batch");
    }
  }
}

TEST(BatchDriver, RunKnnBatchMatchesPerQueryRuns) {
  Rng rng(43);
  auto points = uniform_points(1200, 3, 50.0, rng);
  const auto shards = make_vector_shards(std::move(points), 8, PartitionScheme::RoundRobin, rng);
  const auto stores = make_flat_stores(shards);
  const auto queries = uniform_points(5, 3, 50.0, rng);
  const std::uint64_t ell = 24;
  const auto scored = score_vector_shards_batch(stores, queries, ell);

  EngineConfig engine;
  engine.seed = 99;
  const auto batch = run_knn_batch(scored, ell, KnnAlgo::DistKnn, engine);
  ASSERT_EQ(batch.per_query.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    // Same answer as the ground truth over the same scored inputs.
    expect_same_keys(expected_smallest(scored[q], ell), batch.per_query[q].keys, "batch run");
    EXPECT_GT(batch.per_query[q].report.rounds, 0u);
  }
  EXPECT_GT(batch.report.rounds, 0u);
  // Per-query round counts must sum to at most the whole-batch figure.
  std::uint64_t sum = 0;
  for (const auto& one : batch.per_query) sum += one.report.rounds;
  EXPECT_LE(sum, batch.report.rounds);
}

TEST(BatchDriver, AllAlgosAgreeOnBatch) {
  Rng rng(44);
  auto points = uniform_points(640, 2, 50.0, rng);
  const auto shards = make_vector_shards(std::move(points), 4, PartitionScheme::RoundRobin, rng);
  const auto stores = make_flat_stores(shards);
  const auto queries = uniform_points(3, 2, 50.0, rng);
  const std::uint64_t ell = 10;
  const auto scored = score_vector_shards_batch(stores, queries, ell);
  EngineConfig engine;
  engine.seed = 7;
  for (const KnnAlgo algo : {KnnAlgo::DistKnn, KnnAlgo::CappedSelect, KnnAlgo::Simple,
                             KnnAlgo::SaukasSong, KnnAlgo::BinSearch}) {
    const auto batch = run_knn_batch(scored, ell, algo, engine);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      expect_same_keys(expected_smallest(scored[q], ell), batch.per_query[q].keys,
                       knn_algo_name(algo));
    }
  }
}

// --- batched mlapi ----------------------------------------------------------

TEST(BatchMlapi, ClassifyBatchMatchesPerQuery) {
  Rng rng(51);
  const GaussianMixture mixture(ClusterSpec{3, 4, 60.0, 2.5}, rng);
  const auto train = mixture.sample(400, rng);
  std::vector<PointD> points;
  std::vector<std::uint32_t> flat_labels;
  for (const auto& sample : train) {
    points.push_back(sample.x);
    flat_labels.push_back(sample.label);
  }
  auto ids = assign_random_ids(points.size(), rng);
  // Shard by hand so points and labels stay aligned per machine.
  const std::uint32_t k = 5;
  std::vector<VectorShard> shards(k);
  std::vector<std::vector<std::uint32_t>> labels(k);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto m = static_cast<std::uint32_t>(i % k);
    shards[m].points.push_back(points[i]);
    shards[m].ids.push_back(ids[i]);
    labels[m].push_back(flat_labels[i]);
  }
  const auto test = mixture.sample(6, rng);
  std::vector<PointD> queries;
  for (const auto& sample : test) queries.push_back(sample.x);

  EngineConfig engine;
  engine.seed = 3;
  const auto batch = classify_batch(shards, labels, queries, 15, engine);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto keyed = make_labeled_key_shards(shards, labels, queries[q]);
    const auto single = classify_distributed(keyed, 15, engine);
    EXPECT_EQ(batch[q].label, single.label) << "query " << q;
    ASSERT_EQ(batch[q].votes.size(), single.votes.size());
    for (std::size_t i = 0; i < single.votes.size(); ++i) {
      EXPECT_EQ(batch[q].votes[i].first.id, single.votes[i].first.id);
      EXPECT_EQ(batch[q].votes[i].second, single.votes[i].second);
    }
  }
  EXPECT_GT(batch[0].run.report.rounds, 0u);  // whole-batch report on result 0
}

TEST(BatchMlapi, RegressBatchMatchesPerQuery) {
  Rng rng(52);
  const auto data = regression_dataset(300, 2, 8.0, 0.05, rng);
  std::vector<PointD> points;
  std::vector<double> flat_targets;
  for (const auto& sample : data) {
    points.push_back(sample.x);
    flat_targets.push_back(sample.y);
  }
  auto ids = assign_random_ids(points.size(), rng);
  const std::uint32_t k = 4;
  std::vector<VectorShard> shards(k);
  std::vector<std::vector<double>> targets(k);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto m = static_cast<std::uint32_t>(i % k);
    shards[m].points.push_back(points[i]);
    shards[m].ids.push_back(ids[i]);
    targets[m].push_back(flat_targets[i]);
  }
  const auto queries = uniform_points(5, 2, 8.0, rng);

  EngineConfig engine;
  engine.seed = 4;
  const auto batch = regress_batch(shards, targets, queries, 12, engine);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto keyed = make_target_key_shards(shards, targets, queries[q]);
    const auto single = regress_distributed(keyed, 12, engine);
    EXPECT_DOUBLE_EQ(batch[q].prediction, single.prediction) << "query " << q;
  }
}

}  // namespace
}  // namespace dknn

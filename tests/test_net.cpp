// Unit tests for src/net: delivery timing under each bandwidth policy, FIFO
// ordering, traffic accounting, strict-mode enforcement, fault injection.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/fault.hpp"
#include "net/network.hpp"
#include "serial/codec.hpp"
#include "support/panic.hpp"

namespace dknn {
namespace {

Envelope make_env(MachineId src, MachineId dst, Tag tag, std::size_t payload_bytes) {
  Envelope env;
  env.src = src;
  env.dst = dst;
  env.tag = tag;
  env.payload = Bytes(payload_bytes, std::byte{0x5A});
  return env;
}

NetworkConfig config(std::uint32_t k, BandwidthPolicy policy, std::uint64_t bits) {
  NetworkConfig c;
  c.world_size = k;
  c.policy = policy;
  c.bits_per_round = bits;
  return c;
}

TEST(Network, DeliversNextRoundUnlimited) {
  Network net(config(2, BandwidthPolicy::Unlimited, 64));
  net.set_current_round(0);
  net.send(make_env(0, 1, 7, 1000));  // large payload still arrives next round
  EXPECT_TRUE(net.collect_delivered(1).empty());
  net.end_round(0);
  auto delivered = net.collect_delivered(1);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].src, 0u);
  EXPECT_EQ(delivered[0].tag, 7u);
  EXPECT_FALSE(net.in_flight());
}

TEST(Network, SelfSendForbidden) {
  Network net(config(2, BandwidthPolicy::Unlimited, 64));
  EXPECT_THROW(net.send(make_env(1, 1, 0, 4)), InvariantError);
}

TEST(Network, BadMachineIdsRejected) {
  Network net(config(2, BandwidthPolicy::Unlimited, 64));
  EXPECT_THROW(net.send(make_env(0, 9, 0, 4)), InvariantError);
  EXPECT_THROW(net.send(make_env(9, 0, 0, 4)), InvariantError);
}

TEST(Network, ChunkedDelaysLargeMessages) {
  // B = 64 bits; a 32-byte (256-bit) message needs ceil(256/64) = 4 rounds.
  Network net(config(2, BandwidthPolicy::Chunked, 64));
  net.set_current_round(0);
  net.send(make_env(0, 1, 1, 32));
  for (std::uint64_t r = 0; r < 3; ++r) {
    net.end_round(r);
    EXPECT_TRUE(net.collect_delivered(1).empty()) << "round " << r;
    net.set_current_round(r + 1);
  }
  net.end_round(3);
  auto delivered = net.collect_delivered(1);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(net.stats().max_delivery_latency(), 4u);
}

TEST(Network, ChunkedSmallMessageNextRound) {
  Network net(config(2, BandwidthPolicy::Chunked, 64));
  net.set_current_round(0);
  net.send(make_env(0, 1, 1, 8));  // exactly 64 bits
  net.end_round(0);
  EXPECT_EQ(net.collect_delivered(1).size(), 1u);
}

TEST(Network, ChunkedFifoPerLink) {
  Network net(config(2, BandwidthPolicy::Chunked, 64));
  net.set_current_round(0);
  net.send(make_env(0, 1, 1, 16));  // 128 bits -> rounds 0 and 1
  net.send(make_env(0, 1, 2, 8));   // 64 bits, waits behind the first
  net.end_round(0);
  EXPECT_TRUE(net.collect_delivered(1).empty());
  net.set_current_round(1);
  net.end_round(1);  // finishes msg1; budget exhausted, msg2 still queued
  auto first = net.collect_delivered(1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].tag, 1u);
  net.set_current_round(2);
  net.end_round(2);  // msg2's 64 bits fit in round 2
  auto second = net.collect_delivered(1);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].tag, 2u);
}

TEST(Network, ChunkedLinksAreIndependent) {
  // Different sources to the same destination do not share bandwidth.
  Network net(config(3, BandwidthPolicy::Chunked, 64));
  net.set_current_round(0);
  net.send(make_env(0, 2, 1, 8));
  net.send(make_env(1, 2, 2, 8));
  net.end_round(0);
  EXPECT_EQ(net.collect_delivered(2).size(), 2u);
}

TEST(Network, ChunkedDirectionsAreIndependent) {
  Network net(config(2, BandwidthPolicy::Chunked, 64));
  net.set_current_round(0);
  net.send(make_env(0, 1, 1, 8));
  net.send(make_env(1, 0, 2, 8));
  net.end_round(0);
  EXPECT_EQ(net.collect_delivered(1).size(), 1u);
  EXPECT_EQ(net.collect_delivered(0).size(), 1u);
}

TEST(Network, StrictRejectsOversizedMessage) {
  Network net(config(2, BandwidthPolicy::Strict, 64));
  net.set_current_round(0);
  EXPECT_THROW(net.send(make_env(0, 1, 1, 9)), InvariantError);  // 72 > 64 bits
}

TEST(Network, StrictRejectsLinkSaturation) {
  Network net(config(2, BandwidthPolicy::Strict, 64));
  net.set_current_round(0);
  net.send(make_env(0, 1, 1, 4));  // 32 bits
  net.send(make_env(0, 1, 2, 4));  // 64 total: ok
  EXPECT_THROW(net.send(make_env(0, 1, 3, 1)), InvariantError);
}

TEST(Network, StrictResetsBudgetEachRound) {
  Network net(config(2, BandwidthPolicy::Strict, 64));
  net.set_current_round(0);
  net.send(make_env(0, 1, 1, 8));
  net.end_round(0);
  net.set_current_round(1);
  EXPECT_NO_THROW(net.send(make_env(0, 1, 2, 8)));
}

TEST(Network, TrafficCounters) {
  Network net(config(3, BandwidthPolicy::Unlimited, 64));
  net.set_current_round(0);
  net.send(make_env(0, 1, 1, 8));
  net.send(make_env(0, 2, 1, 16));
  net.send(make_env(2, 1, 1, 4));
  net.end_round(0);
  (void)net.collect_delivered(1);
  (void)net.collect_delivered(2);
  EXPECT_EQ(net.stats().messages_sent(), 3u);
  EXPECT_EQ(net.stats().messages_delivered(), 3u);
  EXPECT_EQ(net.stats().bits_sent(), (8u + 16u + 4u) * 8u);
  EXPECT_EQ(net.stats().max_message_bits(), 128u);
  EXPECT_EQ(net.stats().max_delivery_latency(), 1u);
}

TEST(Network, EmptyPayloadCountsAsOneBit) {
  // A zero-byte message still occupies the link for a round (models the
  // one-word control messages the paper counts).
  Network net(config(2, BandwidthPolicy::Chunked, 64));
  net.set_current_round(0);
  net.send(make_env(0, 1, 1, 0));
  net.end_round(0);
  EXPECT_EQ(net.collect_delivered(1).size(), 1u);
}

TEST(Network, SequenceNumbersPerSender) {
  Network net(config(3, BandwidthPolicy::Unlimited, 64));
  net.set_current_round(0);
  net.send(make_env(0, 1, 1, 1));
  net.send(make_env(0, 2, 1, 1));
  net.send(make_env(1, 2, 1, 1));
  net.end_round(0);
  auto to1 = net.collect_delivered(1);
  auto to2 = net.collect_delivered(2);
  ASSERT_EQ(to1.size(), 1u);
  ASSERT_EQ(to2.size(), 2u);
  EXPECT_EQ(to1[0].seq, 0u);
  // second message from machine 0 has seq 1; machine 1's first has seq 0.
  EXPECT_EQ(to2[0].seq, 1u);
  EXPECT_EQ(to2[1].seq, 0u);
}

TEST(Network, WorldSizeOneHasNoLinks) {
  Network net(config(1, BandwidthPolicy::Unlimited, 64));
  net.end_round(0);  // must not crash
  EXPECT_TRUE(net.collect_delivered(0).empty());
}

// --- shared-ingress ("one NIC") model -------------------------------------------

TEST(Network, IngressCapSerializesConcurrentSenders) {
  // Three senders ship 8 bytes each to machine 3; per-link B = 64 bits
  // would deliver all in one round, but a 64-bit ingress cap admits only
  // one sender per round.
  NetworkConfig c = config(4, BandwidthPolicy::Chunked, 64);
  c.ingress_bits_per_round = 64;
  Network net(c);
  net.set_current_round(0);
  for (MachineId src = 0; src < 3; ++src) net.send(make_env(src, 3, 1, 8));
  std::size_t delivered = 0;
  for (std::uint64_t round = 0; round < 3; ++round) {
    net.end_round(round);
    const auto batch = net.collect_delivered(3);
    EXPECT_EQ(batch.size(), 1u) << "round " << round;
    delivered += batch.size();
    net.set_current_round(round + 1);
  }
  EXPECT_EQ(delivered, 3u);
}

TEST(Network, IngressCapIsFairAcrossSenders) {
  // With rotation, every sender must finish within ~k rounds of each other
  // even under sustained saturation.
  NetworkConfig c = config(5, BandwidthPolicy::Chunked, 64);
  c.ingress_bits_per_round = 64;
  Network net(c);
  net.set_current_round(0);
  for (MachineId src = 0; src < 4; ++src) {
    net.send(make_env(src, 4, static_cast<Tag>(src), 16));  // 2 rounds each
  }
  std::vector<std::uint64_t> finish(4, 0);
  for (std::uint64_t round = 0; round < 32 && net.in_flight(); ++round) {
    net.end_round(round);
    for (const auto& env : net.collect_delivered(4)) finish[env.tag] = round;
    net.set_current_round(round + 1);
  }
  EXPECT_FALSE(net.in_flight());
  const auto [lo, hi] = std::minmax_element(finish.begin(), finish.end());
  EXPECT_LE(*hi - *lo, 6u);  // no sender starves
}

TEST(Network, IngressCapZeroMeansUnlimited) {
  NetworkConfig c = config(4, BandwidthPolicy::Chunked, 64);
  c.ingress_bits_per_round = 0;
  Network net(c);
  net.set_current_round(0);
  for (MachineId src = 0; src < 3; ++src) net.send(make_env(src, 3, 1, 8));
  net.end_round(0);
  EXPECT_EQ(net.collect_delivered(3).size(), 3u);
}

// --- fault injection -----------------------------------------------------------

TEST(Fault, DropsEverythingAtProbabilityOne) {
  Network net(config(2, BandwidthPolicy::Unlimited, 64));
  FaultPlan plan;
  plan.drop_probability = 1.0;
  FaultInjector injector(net, plan, /*seed=*/1);
  net.set_current_round(0);
  for (int i = 0; i < 10; ++i) net.send(make_env(0, 1, 1, 4));
  net.end_round(0);
  EXPECT_TRUE(net.collect_delivered(1).empty());
  EXPECT_EQ(injector.drops(), 10u);
  // Dropped messages are not counted as sent traffic.
  EXPECT_EQ(net.stats().messages_sent(), 0u);
}

TEST(Fault, RespectsTagFilter) {
  Network net(config(2, BandwidthPolicy::Unlimited, 64));
  FaultPlan plan;
  plan.drop_probability = 1.0;
  plan.only_tag = Tag{7};
  FaultInjector injector(net, plan, 1);
  net.set_current_round(0);
  net.send(make_env(0, 1, 7, 4));
  net.send(make_env(0, 1, 8, 4));
  net.end_round(0);
  auto delivered = net.collect_delivered(1);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].tag, 8u);
  EXPECT_EQ(injector.drops(), 1u);
}

TEST(Fault, RespectsMaxDropsAndFromRound) {
  Network net(config(2, BandwidthPolicy::Unlimited, 64));
  FaultPlan plan;
  plan.drop_probability = 1.0;
  plan.from_round = 1;
  plan.max_drops = 2;
  FaultInjector injector(net, plan, 1);
  net.set_current_round(0);
  net.send(make_env(0, 1, 1, 4));  // round 0: immune
  net.end_round(0);
  net.set_current_round(1);
  for (int i = 0; i < 5; ++i) net.send(make_env(0, 1, 1, 4));  // 2 dropped, 3 pass
  net.end_round(1);
  EXPECT_EQ(injector.drops(), 2u);
  EXPECT_EQ(net.collect_delivered(1).size(), 1u + 3u);
}

TEST(Fault, ZeroProbabilityDropsNothing) {
  Network net(config(2, BandwidthPolicy::Unlimited, 64));
  FaultPlan plan;  // defaults: p = 0
  FaultInjector injector(net, plan, 1);
  net.set_current_round(0);
  for (int i = 0; i < 10; ++i) net.send(make_env(0, 1, 1, 4));
  net.end_round(0);
  EXPECT_EQ(net.collect_delivered(1).size(), 10u);
  EXPECT_EQ(injector.drops(), 0u);
}

}  // namespace
}  // namespace dknn

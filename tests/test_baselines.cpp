// Tests for the comparison algorithms: the paper's simple gather baseline,
// Saukas–Song deterministic selection, and binary-search-on-distance.
// All three must return exactly the same answer as Algorithm 2 / brute
// force, while exhibiting their characteristic round/message profiles.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "core/driver.hpp"
#include "data/generators.hpp"
#include "data/partition.hpp"
#include "rng/rng.hpp"
#include "sim/engine.hpp"
#include "support/bits.hpp"
#include "support/stats.hpp"

namespace dknn {
namespace {

EngineConfig engine_for(std::uint64_t seed) {
  EngineConfig c;
  c.seed = seed;
  c.measure_compute = false;
  return c;
}

std::vector<std::vector<Key>> scored_fixture(std::size_t n, std::uint32_t k,
                                             PartitionScheme scheme, std::uint64_t seed) {
  Rng rng(seed);
  auto values = uniform_u64(n, rng);
  auto shards = make_scalar_shards(std::move(values), k, scheme, rng);
  return score_scalar_shards(shards, rng.between(0, (1ULL << 32) - 1));
}

// --- cross-algorithm agreement grid ------------------------------------------------

class AlgoGrid : public ::testing::TestWithParam<std::tuple<KnnAlgo, std::size_t, std::uint32_t>> {
};

TEST_P(AlgoGrid, MatchesReference) {
  const auto [algo, n, k] = GetParam();
  auto scored = scored_fixture(n, k, PartitionScheme::Random, 100 + n + k);
  for (std::uint64_t ell : {std::uint64_t{1}, static_cast<std::uint64_t>(n / 3),
                            static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(n + 7)}) {
    if (ell == 0) continue;
    const auto result = run_knn(scored, ell, algo, engine_for(ell));
    EXPECT_EQ(result.keys, expected_smallest(scored, ell))
        << knn_algo_name(algo) << " n=" << n << " k=" << k << " ell=" << ell;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AlgoGrid,
    ::testing::Combine(::testing::Values(KnnAlgo::Simple, KnnAlgo::SaukasSong,
                                         KnnAlgo::BinSearch, KnnAlgo::CappedSelect),
                       ::testing::Values(1u, 16u, 256u, 1024u),
                       ::testing::Values(1u, 2u, 8u, 32u)),
    [](const auto& param_info) {
      // NOTE: no structured bindings here — commas inside [] are not
      // protected from the INSTANTIATE macro's argument splitting.
      std::string name = std::string(knn_algo_name(std::get<0>(param_info.param))) + "_n" +
                         std::to_string(std::get<1>(param_info.param)) + "_k" +
                         std::to_string(std::get<2>(param_info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// --- all four algorithms agree pairwise ----------------------------------------------

TEST(Baselines, AllFiveAgree) {
  auto scored = scored_fixture(2000, 16, PartitionScheme::SortedBlocks, 7);
  constexpr std::uint64_t ell = 321;
  const auto reference = expected_smallest(scored, ell);
  for (KnnAlgo algo : {KnnAlgo::DistKnn, KnnAlgo::Simple, KnnAlgo::SaukasSong,
                       KnnAlgo::BinSearch, KnnAlgo::CappedSelect}) {
    EXPECT_EQ(run_knn(scored, ell, algo, engine_for(9)).keys, reference)
        << knn_algo_name(algo);
  }
}

TEST(Baselines, CappedSelectSearchesTheFullCandidateSet) {
  // §2.2's direct variant runs Algorithm 1 on all min(n, kℓ) capped points
  // (no pruning), unlike Algorithm 2's ≤ 11ℓ survivors.
  constexpr std::uint32_t k = 16;
  constexpr std::uint64_t ell = 128;
  auto scored = scored_fixture(1 << 13, k, PartitionScheme::RoundRobin, 20);
  const auto direct = run_knn(scored, ell, KnnAlgo::CappedSelect, engine_for(6));
  const auto sampled = run_knn(scored, ell, KnnAlgo::DistKnn, engine_for(6));
  EXPECT_EQ(direct.keys, sampled.keys);
  EXPECT_EQ(direct.candidates, static_cast<std::uint64_t>(k) * ell);
  EXPECT_LT(sampled.candidates, direct.candidates / 2);
}

TEST(Baselines, SamplingRemovesTheLogKTerm) {
  // The paper's point in §2.2: direct selection over kℓ points costs
  // O(log(kℓ)) = O(log ℓ + log k) iterations, so its round count grows
  // with k; Algorithm 2's sampling keeps the candidate set at O(ℓ)
  // regardless of k. Compare mean select iterations at small vs large k.
  constexpr std::uint64_t ell = 64;
  SampleSet direct_small, direct_large, sampled_large;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto small = scored_fixture(1 << 12, 4, PartitionScheme::RoundRobin, 21);
    auto large = scored_fixture(1 << 14, 256, PartitionScheme::RoundRobin, 22);
    direct_small.add(run_knn(small, ell, KnnAlgo::CappedSelect, engine_for(seed)).iterations);
    direct_large.add(run_knn(large, ell, KnnAlgo::CappedSelect, engine_for(seed)).iterations);
    sampled_large.add(run_knn(large, ell, KnnAlgo::DistKnn, engine_for(seed)).iterations);
  }
  // Direct variant: candidate set grew 64x (kℓ: 256 vs 16384) -> measurably
  // more iterations. Algorithm 2 at k=256 stays near the small-k direct cost.
  EXPECT_GT(direct_large.mean(), direct_small.mean() + 2.0);
  EXPECT_LT(sampled_large.mean(), direct_large.mean());
}

// --- characteristic cost profiles ------------------------------------------------------

TEST(Baselines, SimpleGatherIsLinearRoundsUnderBandwidth) {
  // Under B-bit links the simple method's gather of ℓ keys per machine
  // takes ~ceil(ℓ·|key|/B) rounds — linear in ℓ (the paper's O(ℓ)).
  constexpr std::uint32_t k = 8;
  auto scored = scored_fixture(1 << 13, k, PartitionScheme::RoundRobin, 11);
  auto config = engine_for(1);
  config.bandwidth = BandwidthPolicy::Chunked;
  config.bits_per_round = 256;
  std::vector<double> rounds;
  for (std::uint64_t ell : {64u, 128u, 256u, 512u}) {
    const auto result = run_knn(scored, ell, KnnAlgo::Simple, config);
    EXPECT_EQ(result.keys, expected_smallest(scored, ell));
    rounds.push_back(static_cast<double>(result.report.rounds));
  }
  // Doubling ℓ should roughly double the rounds (ratio in [1.6, 2.4]).
  for (std::size_t i = 1; i < rounds.size(); ++i) {
    EXPECT_GT(rounds[i] / rounds[i - 1], 1.6) << i;
    EXPECT_LT(rounds[i] / rounds[i - 1], 2.4) << i;
  }
}

TEST(Baselines, Algorithm2BeatsSimpleOnRoundsAtLargeEll) {
  // The paper's headline comparison: O(log ℓ) vs O(ℓ) rounds.
  constexpr std::uint32_t k = 8;
  auto scored = scored_fixture(1 << 13, k, PartitionScheme::RoundRobin, 12);
  auto config = engine_for(2);
  config.bandwidth = BandwidthPolicy::Chunked;
  config.bits_per_round = 256;
  constexpr std::uint64_t ell = 512;
  const auto fast = run_knn(scored, ell, KnnAlgo::DistKnn, config);
  const auto slow = run_knn(scored, ell, KnnAlgo::Simple, config);
  EXPECT_EQ(fast.keys, slow.keys);
  EXPECT_LT(fast.report.rounds * 2, slow.report.rounds)
      << "Algorithm 2 should need far fewer rounds at ell=" << ell;
}

TEST(Baselines, SaukasSongIsDeterministic) {
  auto scored = scored_fixture(1024, 8, PartitionScheme::Random, 13);
  const auto a = run_knn(scored, 200, KnnAlgo::SaukasSong, engine_for(1));
  const auto b = run_knn(scored, 200, KnnAlgo::SaukasSong, engine_for(999));  // seed-independent
  EXPECT_EQ(a.keys, b.keys);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.report.rounds, b.report.rounds);
}

TEST(Baselines, SaukasSongIterationsLogarithmic) {
  // Weighted-median discards >= 1/4 of the active set per iteration:
  // iterations <= log_{4/3}(n) + O(1).
  for (std::size_t n : {256u, 1024u, 4096u}) {
    auto scored = scored_fixture(n, 16, PartitionScheme::Random, 14 + n);
    const auto result = run_knn(scored, n / 2, KnnAlgo::SaukasSong, engine_for(3));
    const double bound = std::log(static_cast<double>(n)) / std::log(4.0 / 3.0) + 3.0;
    EXPECT_LE(result.iterations, bound) << "n=" << n;
  }
}

TEST(Baselines, BinSearchProbesBoundedByKeyDomain) {
  // Probes <= bits of the (distance, id) search interval; with 32-bit
  // values and ids <= n^3 the span is far below 2^128, but the guaranteed
  // ceiling is 128.
  auto scored = scored_fixture(2048, 8, PartitionScheme::Random, 15);
  const auto result = run_knn(scored, 700, KnnAlgo::BinSearch, engine_for(4));
  EXPECT_LE(result.iterations, 128u);
  EXPECT_GT(result.iterations, 10u);  // it did actually search
}

TEST(Baselines, BinSearchProbesIndependentOfEll) {
  // Probe count tracks the key-domain width, not ℓ — the contrast with the
  // comparison-based algorithms.
  auto scored = scored_fixture(4096, 8, PartitionScheme::Random, 16);
  const auto small = run_knn(scored, 16, KnnAlgo::BinSearch, engine_for(5));
  const auto large = run_knn(scored, 2048, KnnAlgo::BinSearch, engine_for(5));
  const double ratio = static_cast<double>(large.iterations) /
                       std::max(1.0, static_cast<double>(small.iterations));
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

// --- edge cases across baselines --------------------------------------------------------

class BaselineEdge : public ::testing::TestWithParam<KnnAlgo> {};

TEST_P(BaselineEdge, EmptyDataset) {
  std::vector<std::vector<Key>> scored(4);
  const auto result = run_knn(scored, 5, GetParam(), engine_for(1));
  EXPECT_TRUE(result.keys.empty());
}

TEST_P(BaselineEdge, EllZero) {
  auto scored = scored_fixture(64, 4, PartitionScheme::RoundRobin, 17);
  const auto result = run_knn(scored, 0, GetParam(), engine_for(2));
  EXPECT_TRUE(result.keys.empty());
}

TEST_P(BaselineEdge, SingleMachine) {
  auto scored = scored_fixture(128, 1, PartitionScheme::RoundRobin, 18);
  const auto result = run_knn(scored, 30, GetParam(), engine_for(3));
  EXPECT_EQ(result.keys, expected_smallest(scored, 30));
  EXPECT_EQ(result.report.traffic.messages_sent(), 0u);
}

TEST_P(BaselineEdge, EmptyMachinesMixedIn) {
  std::vector<std::vector<Key>> scored(6);
  scored[1] = {Key{10, 1}, Key{20, 2}};
  scored[3] = {Key{5, 3}};
  scored[5] = {Key{15, 4}, Key{25, 5}, Key{30, 6}};
  const auto result = run_knn(scored, 3, GetParam(), engine_for(4));
  const auto expected = expected_smallest(scored, 3);
  EXPECT_EQ(result.keys, expected);
}

TEST_P(BaselineEdge, NonZeroLeader) {
  auto scored = scored_fixture(256, 4, PartitionScheme::Random, 19);
  KnnConfig config;
  config.leader = 2;
  const auto result = run_knn(scored, 40, GetParam(), engine_for(5), config);
  EXPECT_EQ(result.keys, expected_smallest(scored, 40));
}

INSTANTIATE_TEST_SUITE_P(Algos, BaselineEdge,
                         ::testing::Values(KnnAlgo::DistKnn, KnnAlgo::Simple,
                                           KnnAlgo::SaukasSong, KnnAlgo::BinSearch,
                                           KnnAlgo::CappedSelect),
                         [](const auto& param_info) {
                           std::string name = knn_algo_name(param_info.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

}  // namespace
}  // namespace dknn

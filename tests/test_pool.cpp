// Unit tests for the work-stealing ThreadPool (src/sim/thread_pool.*):
// exactly-once execution under steal pressure, exception propagation to the
// submitter, nested submission at depth without deadlock, deterministic
// drain-on-shutdown, and reproducible per-worker RNG stream derivation.
//
// These tests run meaningfully at any core count (a 4-worker pool on a
// single hardware thread still interleaves through preemption) and are part
// of the TSan job in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "rng/rng.hpp"
#include "sim/thread_pool.hpp"

namespace dknn {
namespace {

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  constexpr int kJobs = 5000;
  for (int i = 0; i < kJobs; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), kJobs);
}

TEST(ThreadPool, ConservesTasksUnderStealPressure) {
  // One root job floods its own deque with children (nested submissions are
  // local), so every other worker must steal to participate.  Conservation:
  // each child increments exactly once, wait_idle sees all of them.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  constexpr int kChildren = 4000;
  pool.submit([&pool, &count] {
    for (int i = 0; i < kChildren; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), kChildren);
}

TEST(ThreadPool, PropagatesExceptionToWaiter) {
  ThreadPool pool(3);
  std::atomic<int> survivors{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 100; ++i) {
    pool.submit([&survivors] { survivors.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error does not poison the pool: other jobs still ran, and the next
  // batch completes cleanly.
  EXPECT_EQ(survivors.load(), 100);
  pool.submit([&survivors] { survivors.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(survivors.load(), 101);
}

TEST(ThreadPool, FirstOfManyExceptionsWins) {
  ThreadPool pool(2);
  for (int i = 0; i < 10; ++i) {
    pool.submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_NO_THROW(pool.wait_idle());  // error slot was drained
}

TEST(ThreadPool, NestedSubmissionAtDepthDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  constexpr int kDepth = 200;
  // Recursive chain: each job spawns the next; with fan-out 2 at every
  // level the pool also sees concurrent nested bursts.
  struct Chain {
    ThreadPool& pool;
    std::atomic<int>& count;
    void run(int depth) const {
      count.fetch_add(1, std::memory_order_relaxed);
      if (depth == 0) return;
      pool.submit([this, depth] { run(depth - 1); });
      pool.submit([this, depth] { run(depth - 1); });
    }
  };
  auto chain = std::make_unique<Chain>(Chain{pool, count});
  pool.submit([&chain] { chain->run(10); });  // 2^11 - 1 jobs
  pool.wait_idle();
  EXPECT_EQ(count.load(), (1 << 11) - 1);

  // And a deep linear chain (depth >> worker count).
  struct Line {
    ThreadPool& pool;
    std::atomic<int>& count;
    void run(int depth) const {
      count.fetch_add(1, std::memory_order_relaxed);
      if (depth > 0) pool.submit([this, depth] { run(depth - 1); });
    }
  };
  count.store(0);
  auto line = std::make_unique<Line>(Line{pool, count});
  pool.submit([&line] { line->run(kDepth); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), kDepth + 1);
}

TEST(ThreadPool, ShutdownDrainsEverySubmittedJob) {
  std::atomic<int> count{0};
  constexpr int kJobs = 2000;
  {
    ThreadPool pool(4);
    for (int i = 0; i < kJobs; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor, not wait_idle: shutdown must still run every job.
  }
  EXPECT_EQ(count.load(), kJobs);
}

TEST(ThreadPool, SingleWorkerAndDefaultConstruction) {
  ThreadPool one(1);
  EXPECT_EQ(one.thread_count(), 1u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    one.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  one.wait_idle();
  EXPECT_EQ(count.load(), 100);

  ThreadPool defaulted;  // threads == 0 → hardware concurrency, min 1
  EXPECT_GE(defaulted.thread_count(), 1u);
  defaulted.wait_idle();  // idle pool: returns immediately
}

TEST(ThreadPool, WaitIdleIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (batch + 1) * 50);
  }
}

TEST(ThreadPool, WorkerStreamsAreAPureFunctionOfSeedAndIndex) {
  // The pool derives worker i's victim-selection stream as
  // Rng(seed).split(i) — the identical derivation the engine uses for
  // machine streams.  Pin that contract here so parallel scheduling
  // randomness stays reproducible run-to-run for a fixed seed.
  const std::uint64_t seed = 0xfeedULL;
  const Rng root_a(seed);
  const Rng root_b(seed);
  for (std::size_t worker = 0; worker < 8; ++worker) {
    Rng a = root_a.split(worker);
    Rng b = root_b.split(worker);
    for (int i = 0; i < 32; ++i) {
      ASSERT_EQ(a.next_u64(), b.next_u64()) << "worker " << worker << " draw " << i;
    }
  }
}

}  // namespace
}  // namespace dknn

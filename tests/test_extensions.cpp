// Tests for the extension features: Hamming-space kNN, the paper's
// footnote-4 approximate-distance scaling, the GaussianMixture train/test
// API, and the cluster (shared-NIC) network model end-to-end.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <map>
#include <vector>

#include "core/driver.hpp"
#include "core/mlapi.hpp"
#include "data/generators.hpp"
#include "data/key.hpp"
#include "rng/rng.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"

namespace dknn {
namespace {

EngineConfig engine_for(std::uint64_t seed) {
  EngineConfig c;
  c.seed = seed;
  c.measure_compute = false;
  return c;
}

// --- Hamming-space kNN ---------------------------------------------------------

TEST(Hamming, MatchesBruteForce) {
  constexpr std::uint32_t k = 8;
  Rng rng(1);
  std::vector<Value> patterns;
  for (int i = 0; i < 1000; ++i) patterns.push_back(rng.next_u64());
  auto shards = make_scalar_shards(std::move(patterns), k, PartitionScheme::Random, rng);
  const Value query = rng.next_u64();
  auto scored = score_hamming_shards(shards, query);
  for (std::uint64_t ell : {1u, 16u, 128u}) {
    const auto result = run_knn(scored, ell, KnnAlgo::DistKnn, engine_for(ell));
    EXPECT_EQ(result.keys, expected_smallest(scored, ell)) << "ell=" << ell;
  }
}

TEST(Hamming, DistancesAreInWordRange) {
  Rng rng(2);
  std::vector<Value> patterns;
  for (int i = 0; i < 100; ++i) patterns.push_back(rng.next_u64());
  ScalarShard shard;
  shard.values = patterns;
  Rng id_rng(3);
  shard.ids = assign_random_ids(patterns.size(), id_rng);
  const auto keys = score_hamming_shard(shard, rng.next_u64());
  for (const auto& key : keys) EXPECT_LE(key.rank, 64u);
}

TEST(Hamming, MassiveTiesAreStillExact) {
  // Distances take at most 65 values; with 2000 points nearly every
  // distance has hundreds of ties, all broken by id.
  constexpr std::uint32_t k = 16;
  Rng rng(4);
  std::vector<Value> patterns;
  for (int i = 0; i < 2000; ++i) patterns.push_back(rng.next_u64() & 0xFF);  // 8-bit space
  auto shards = make_scalar_shards(std::move(patterns), k, PartitionScheme::Random, rng);
  auto scored = score_hamming_shards(shards, 0x0F);
  const auto result = run_knn(scored, 500, KnnAlgo::DistKnn, engine_for(5));
  EXPECT_EQ(result.keys, expected_smallest(scored, 500));
  EXPECT_EQ(result.keys.size(), 500u);
}

TEST(Hamming, NearestOfIdenticalPatternIsDistanceZero) {
  Rng rng(6);
  std::vector<Value> patterns = {0xDEADBEEF, 0xCAFEBABE, 0x12345678};
  auto shards = make_scalar_shards(std::move(patterns), 2, PartitionScheme::RoundRobin, rng);
  auto scored = score_hamming_shards(shards, 0xCAFEBABE);
  const auto result = run_knn(scored, 1, KnnAlgo::DistKnn, engine_for(7));
  ASSERT_EQ(result.keys.size(), 1u);
  EXPECT_EQ(result.keys[0].rank, 0u);
}

// --- footnote-4 approximate distances --------------------------------------------

TEST(Quantize, ClearsLowBits) {
  EXPECT_EQ(quantize_rank(0b11111111, 4), 0b11110000u);
  EXPECT_EQ(quantize_rank(12345, 0), 12345u);
  EXPECT_EQ(quantize_rank(~0ULL, 63), 1ULL << 63);
}

TEST(Quantize, RejectsDroppingEverything) {
  EXPECT_THROW((void)quantize_rank(1, 64), InvariantError);
}

TEST(Quantize, PreservesWeakOrder) {
  Rng rng(8);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::uint64_t a = rng.next_u64(), b = rng.next_u64();
    if (a <= b) {
      EXPECT_LE(quantize_rank(a, 16), quantize_rank(b, 16));
    }
  }
}

TEST(Quantize, ApproximationGuarantee) {
  // Selecting on quantized keys returns points whose TRUE distance exceeds
  // the exact ell-th distance by less than one quantization step.
  constexpr std::uint32_t k = 8;
  constexpr std::uint64_t ell = 50;
  constexpr unsigned drop = 12;
  Rng rng(9);
  auto values = uniform_u64(2000, rng);
  auto shards = make_scalar_shards(std::move(values), k, PartitionScheme::Random, rng);
  for (std::uint64_t qseed = 0; qseed < 5; ++qseed) {
    Rng qrng = rng.split(qseed);
    const Value query = qrng.between(0, (1ULL << 32) - 1);
    auto exact = score_scalar_shards(shards, query);
    auto coarse = quantize_scored_shards(exact, drop);

    const auto result = run_knn(coarse, ell, KnnAlgo::DistKnn, engine_for(qseed));
    ASSERT_EQ(result.keys.size(), ell);

    // true distance of each returned id
    std::map<PointId, std::uint64_t> true_rank;
    for (const auto& shard : exact) {
      for (const auto& key : shard) true_rank[key.id] = key.rank;
    }
    const auto exact_answer = expected_smallest(exact, ell);
    const std::uint64_t exact_worst = exact_answer.back().rank;
    for (const auto& key : result.keys) {
      EXPECT_LT(true_rank.at(key.id), exact_worst + (1ULL << drop))
          << "approximate neighbor too far";
    }
  }
}

TEST(Quantize, DropZeroIsExact) {
  Rng rng(10);
  auto values = uniform_u64(500, rng);
  auto shards = make_scalar_shards(std::move(values), 4, PartitionScheme::Random, rng);
  auto scored = score_scalar_shards(shards, 777);
  auto same = quantize_scored_shards(scored, 0);
  EXPECT_EQ(run_knn(same, 40, KnnAlgo::DistKnn, engine_for(1)).keys,
            expected_smallest(scored, 40));
}

// --- GaussianMixture train/test API -------------------------------------------------

TEST(Mixture, FixedCentersAcrossSamples) {
  Rng rng(11);
  ClusterSpec spec;
  spec.dim = 2;
  spec.clusters = 3;
  spec.center_box = 100.0;
  spec.spread = 0.5;
  const GaussianMixture mixture(spec, rng);
  EXPECT_EQ(mixture.centers().size(), 3u);

  auto train = mixture.sample(300, rng);
  Rng test_rng(12);
  auto test = mixture.sample(100, test_rng);
  // Every sample lies near ITS label's center (20 sigma).
  EuclideanMetric metric;
  for (const auto& lp : train) {
    EXPECT_LT(metric(lp.x, mixture.centers()[lp.label]), 10.0);
  }
  for (const auto& lp : test) {
    EXPECT_LT(metric(lp.x, mixture.centers()[lp.label]), 10.0);
  }
}

TEST(Mixture, TrainTestClassificationEndToEnd) {
  // The regression test for the bug the examples hit: classification must
  // generalize to FRESH samples, which requires train and test to share
  // centers.
  Rng rng(13);
  ClusterSpec spec;
  spec.dim = 3;
  spec.clusters = 4;
  spec.center_box = 80.0;
  spec.spread = 2.0;
  const GaussianMixture mixture(spec, rng);
  auto train = mixture.sample(800, rng);

  std::vector<PointD> points;
  for (const auto& lp : train) points.push_back(lp.x);
  auto shards = make_vector_shards(points, 6, PartitionScheme::Random, rng);
  std::vector<std::vector<std::uint32_t>> labels(6);
  std::map<std::vector<double>, std::uint32_t> by_coords;
  for (const auto& lp : train) by_coords[lp.x.coords] = lp.label;
  for (std::size_t m = 0; m < 6; ++m) {
    for (const auto& p : shards[m].points) labels[m].push_back(by_coords.at(p.coords));
  }

  Rng test_rng(14);
  auto test = mixture.sample(30, test_rng);
  int correct = 0;
  for (std::size_t q = 0; q < test.size(); ++q) {
    auto keyed = make_labeled_key_shards(shards, labels, test[q].x, EuclideanMetric{});
    const auto result = classify_distributed(keyed, 9, engine_for(q));
    correct += (result.label == test[q].label);
  }
  EXPECT_GE(correct, 28);  // well-separated clusters: near-perfect
}

// --- cluster (shared-NIC) model end-to-end -------------------------------------------

TEST(ClusterModel, IngressCapSlowsTheGatherNotTheProtocol) {
  constexpr std::uint32_t k = 16;
  constexpr std::uint64_t ell = 512;
  Rng rng(15);
  auto values = uniform_u64(1 << 13, rng);
  auto shards = make_scalar_shards(std::move(values), k, PartitionScheme::RoundRobin, rng);
  auto scored = score_scalar_shards(shards, 123456);

  auto base = engine_for(16);
  base.bandwidth = BandwidthPolicy::Chunked;
  base.bits_per_round = 256;

  auto nic = base;
  nic.ingress_bits_per_round = 256;

  // Correctness unaffected by the ingress cap.
  const auto simple_base = run_knn(scored, ell, KnnAlgo::Simple, base);
  const auto simple_nic = run_knn(scored, ell, KnnAlgo::Simple, nic);
  EXPECT_EQ(simple_base.keys, simple_nic.keys);
  const auto fast_nic = run_knn(scored, ell, KnnAlgo::DistKnn, nic);
  EXPECT_EQ(fast_nic.keys, simple_nic.keys);

  // The gather baseline serializes through the NIC: ~k x more rounds.
  EXPECT_GT(simple_nic.report.rounds, simple_base.report.rounds * (k / 2));
  // Algorithm 2's small messages suffer far less.
  EXPECT_LT(fast_nic.report.rounds * 5, simple_nic.report.rounds);
}

TEST(ClusterModel, Figure2MechanismRatioGrowsWithK) {
  // The end-to-end mechanism behind Figure 2's k-growth under the cluster
  // model: the ratio at k=16 must exceed the ratio at k=4.
  constexpr std::uint64_t ell = 512;
  CostModelConfig cost;
  double ratios[2] = {0, 0};
  int idx = 0;
  for (std::uint32_t k : {4u, 16u}) {
    Rng rng(17);
    auto values = uniform_u64(1 << 13, rng);
    auto shards = make_scalar_shards(std::move(values), k, PartitionScheme::RoundRobin, rng);
    auto scored = score_scalar_shards(shards, 555);
    auto config = engine_for(18);
    config.bandwidth = BandwidthPolicy::Chunked;
    config.bits_per_round = 256;
    config.ingress_bits_per_round = 256;
    config.measure_compute = true;
    const auto fast = run_knn(scored, ell, KnnAlgo::DistKnn, config);
    const auto slow = run_knn(scored, ell, KnnAlgo::Simple, config);
    ratios[idx++] = bsp_cost(slow.report, cost).total_sec / bsp_cost(fast.report, cost).total_sec;
  }
  EXPECT_GT(ratios[1], ratios[0]);
}

}  // namespace
}  // namespace dknn
